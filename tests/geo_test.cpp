#include <gtest/gtest.h>

#include "geo/road_network.h"
#include "geo/spatial_grid.h"
#include "geo/vec2.h"
#include "util/rng.h"

namespace vcl::geo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -1};
  EXPECT_EQ((a + b), (Vec2{4, 1}));
  EXPECT_EQ((a - b), (Vec2{-2, 3}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
}

TEST(Vec2, NormalizedZeroIsZero) {
  const Vec2 z = Vec2{}.normalized();
  EXPECT_EQ(z, (Vec2{0, 0}));
  const Vec2 u = Vec2{10, 0}.normalized();
  EXPECT_NEAR(u.x, 1.0, 1e-12);
}

TEST(Vec2, AngleBetween) {
  EXPECT_NEAR(angle_between({1, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(angle_between({1, 0}, {-1, 0}), M_PI, 1e-12);
  EXPECT_NEAR(angle_between({1, 0}, {2, 0}), 0.0, 1e-12);
}

// Property: grid query must agree exactly with brute force.
TEST(SpatialGrid, MatchesBruteForce) {
  Rng rng(7);
  SpatialGrid<int> grid(50.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  std::vector<int> out;
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const double r = rng.uniform(10, 300);
    grid.query(c, r, out);
    std::vector<int> expected;
    for (int i = 0; i < 500; ++i) {
      if (distance(pts[static_cast<std::size_t>(i)], c) <= r) {
        expected.push_back(i);
      }
    }
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, expected) << "trial " << trial;
  }
}

TEST(SpatialGrid, NegativeCoordinates) {
  SpatialGrid<int> grid(10.0);
  grid.insert(1, {-95, -95});
  grid.insert(2, {-80, -80});
  std::vector<int> out;
  grid.query({-94, -94}, 5.0, out);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(SpatialGrid, ClearEmpties) {
  SpatialGrid<int> grid(10.0);
  grid.insert(1, {0, 0});
  EXPECT_EQ(grid.size(), 1u);
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  std::vector<int> out;
  grid.query({0, 0}, 100, out);
  EXPECT_TRUE(out.empty());
}

TEST(RoadNetwork, ManhattanGridShape) {
  const RoadNetwork net = make_manhattan_grid(3, 4, 100.0);
  EXPECT_EQ(net.node_count(), 12u);
  // Horizontal: 3 rows * 3 gaps * 2 dirs; vertical: 2 gaps * 4 cols * 2 dirs.
  EXPECT_EQ(net.link_count(), static_cast<std::size_t>(3 * 3 * 2 + 2 * 4 * 2));
}

TEST(RoadNetwork, LinkGeometry) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const LinkId l = net.add_link(a, b, 10.0);
  EXPECT_DOUBLE_EQ(net.link(l).length, 100.0);
  const Vec2 mid = net.position_on_link(l, 50.0);
  EXPECT_NEAR(mid.x, 50.0, 1e-9);
  const Vec2 dir = net.link_direction(l);
  EXPECT_NEAR(dir.x, 1.0, 1e-12);
  // Offsets clamp to the link.
  EXPECT_NEAR(net.position_on_link(l, 1000.0).x, 100.0, 1e-9);
}

TEST(RoadNetwork, ShortestPathOnGrid) {
  const RoadNetwork net = make_manhattan_grid(4, 4, 100.0);
  const NodeId from{0};
  const NodeId to{15};  // opposite corner
  const auto path = net.shortest_path(from, to);
  ASSERT_TRUE(path.has_value());
  // Manhattan distance: 3 + 3 = 6 links.
  EXPECT_EQ(path->size(), 6u);
  // The path is connected.
  NodeId at = from;
  for (const LinkId lid : *path) {
    EXPECT_EQ(net.link(lid).from, at);
    at = net.link(lid).to;
  }
  EXPECT_EQ(at, to);
}

TEST(RoadNetwork, ShortestPathUnreachable) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  net.add_link(a, b, 10.0);  // one-way a->b only
  EXPECT_TRUE(net.shortest_path(a, b).has_value());
  EXPECT_FALSE(net.shortest_path(b, a).has_value());
}

TEST(RoadNetwork, ShortestPathPrefersFasterRoad) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const NodeId c = net.add_node({50, 50});
  net.add_link(a, b, 5.0);   // direct but slow: 20 s
  const LinkId l1 = net.add_link(a, c, 50.0);
  const LinkId l2 = net.add_link(c, b, 50.0);  // detour ~141 m at 50: ~2.8 s
  const auto path = net.shortest_path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<LinkId>{l1, l2}));
}

TEST(RoadNetwork, HighwayHasUturns) {
  const RoadNetwork net = make_highway(2000.0, 500.0);
  // Every node can reach every other node thanks to end U-turns.
  const auto path = net.shortest_path(NodeId{1}, NodeId{0});
  EXPECT_TRUE(path.has_value());
}

TEST(RoadNetwork, BoundingBox) {
  const RoadNetwork net = make_manhattan_grid(2, 3, 100.0);
  const auto [lo, hi] = net.bounding_box();
  EXPECT_EQ(lo, (Vec2{0, 0}));
  EXPECT_EQ(hi, (Vec2{200, 100}));
}

TEST(RoadNetwork, ParkingLotIsSlow) {
  const RoadNetwork net = make_parking_lot(3, 3);
  for (const auto& l : net.links()) EXPECT_LE(l.speed_limit, 5.0);
}

}  // namespace
}  // namespace vcl::geo
