#include <gtest/gtest.h>

#include "attack/adversary.h"
#include "attack/dos.h"
#include "attack/false_data.h"
#include "attack/replay.h"
#include "attack/suppression.h"
#include "attack/sybil.h"
#include "attack/tracker.h"
#include "trust/validators.h"

namespace vcl::attack {
namespace {

TEST(AdversaryRoster, RecruitsRequestedFraction) {
  const auto road = geo::make_manhattan_grid(3, 3, 200.0);
  mobility::TrafficModel traffic(road, Rng(1));
  for (int i = 0; i < 20; ++i) traffic.spawn_parked(LinkId{0}, i * 5.0);
  AdversaryRoster roster;
  Rng rng(2);
  roster.recruit(traffic, 0.25, rng);
  EXPECT_EQ(roster.size(), 5u);
  std::size_t found = 0;
  for (const auto& [vid, v] : traffic.vehicles()) {
    if (roster.is_malicious(v.id)) ++found;
  }
  EXPECT_EQ(found, 5u);
}

TEST(SybilFactoryTest, CredentialsDistinctAndReserved) {
  const auto creds =
      SybilFactory::credentials({VehicleId{1}, VehicleId{2}}, 10);
  EXPECT_EQ(creds.size(), 20u);
  std::set<std::uint64_t> unique(creds.begin(), creds.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto c : creds) EXPECT_GE(c, 1ULL << 48);
}

TEST(FalseData, FabricatedReportsLookPlausible) {
  FalseDataAttacker attacker({101, 102}, Rng(3));
  const auto reports =
      attacker.fabricate(trust::EventType::kAccident, {500, 500}, 10.0, 6);
  EXPECT_EQ(reports.size(), 6u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.positive);
    EXPECT_FALSE(r.truthful);
    EXPECT_FALSE(r.truth_event.valid());  // no real event behind it
    EXPECT_LT(geo::distance(r.location, {500, 500}), 50.0);
  }
  // Credentials cycle over the controlled pool.
  EXPECT_NE(reports[0].reporter_credential, reports[1].reporter_credential);
}

TEST(FalseData, DenialsTargetRealEvent) {
  FalseDataAttacker attacker({101}, Rng(4));
  trust::GroundTruthEvent ev;
  ev.id = EventId{9};
  ev.type = trust::EventType::kIce;
  ev.location = {100, 100};
  const auto reports = attacker.deny(ev, 5.0, 3);
  for (const auto& r : reports) {
    EXPECT_FALSE(r.positive);
    EXPECT_EQ(r.truth_event, EventId{9});
  }
}

TEST(FalseData, SybilAmplifiedAttackSwaysMajority) {
  // 5 honest positive witnesses vs 1 attacker with 20 Sybil credentials.
  trust::EventCluster c;
  c.centroid = {0, 0};
  for (int i = 0; i < 5; ++i) {
    trust::Report r;
    r.positive = true;
    r.reporter_credential = static_cast<std::uint64_t>(i + 1);
    r.reporter_pos = {10, 0};
    c.reports.push_back(r);
  }
  const auto sybils = SybilFactory::credentials({VehicleId{66}}, 20);
  FalseDataAttacker attacker(sybils, Rng(5));
  trust::GroundTruthEvent ev;
  ev.location = {0, 0};
  for (auto& r : attacker.deny(ev, 0.0, 20)) c.reports.push_back(r);
  const trust::MajorityVote majority;
  EXPECT_FALSE(majority.evaluate(c).accepted);  // attack succeeds
}

// ---- Replay -----------------------------------------------------------------

class ReplayFixture : public ::testing::Test {
 protected:
  ReplayFixture() : ta_(1) {
    ta_.register_vehicle(VehicleId{1});
    signer_ = std::make_unique<auth::PseudonymAuth>(ta_, VehicleId{1}, 4);
  }
  auth::TrustedAuthority ta_;
  std::unique_ptr<auth::PseudonymAuth> signer_;
  crypto::OpCounts ops_;
};

TEST_F(ReplayFixture, ReplayedMessageStillVerifies) {
  const crypto::Bytes payload{1, 2, 3};
  const auto tag = signer_->sign(payload, 0.0, ops_);
  ReplayAttacker attacker;
  attacker.capture(payload, *tag, 0.0);
  // Much later, the replayed message still passes signature verification —
  // authentication alone cannot stop replays.
  const auto& captured = attacker.log().front();
  EXPECT_TRUE(
      auth::PseudonymAuth::verify(ta_, captured.payload, captured.tag).ok);
}

TEST_F(ReplayFixture, FreshnessCheckerStopsReplay) {
  FreshnessChecker checker(2.0);
  const crypto::Bytes body{9};
  const auto fresh = make_fresh_payload(body, 100.0, 424242);
  EXPECT_TRUE(checker.accept(fresh, 100.1));
  // Same nonce replayed within the window: duplicate.
  EXPECT_FALSE(checker.accept(fresh, 100.5));
  EXPECT_EQ(checker.rejected_duplicate(), 1u);
  // Replayed much later: stale.
  EXPECT_FALSE(checker.accept(fresh, 200.0));
  EXPECT_EQ(checker.rejected_stale(), 1u);
}

TEST_F(ReplayFixture, FreshMessagesKeepFlowing) {
  FreshnessChecker checker(2.0);
  for (int i = 0; i < 10; ++i) {
    const auto p = make_fresh_payload({1}, 10.0 + i,
                                      static_cast<std::uint64_t>(1000 + i));
    EXPECT_TRUE(checker.accept(p, 10.0 + i));
  }
}

TEST(Freshness, MalformedPayloadRejected) {
  FreshnessChecker checker;
  EXPECT_FALSE(checker.accept(crypto::Bytes{1, 2}, 0.0));
}

// ---- Suppression ---------------------------------------------------------------

TEST(Suppression, MaliciousRelaysBreakDelivery) {
  // Chain of parked vehicles; the middle relays are malicious.
  geo::RoadNetwork road;
  auto prev = road.add_node({0, 0});
  for (int i = 1; i <= 4; ++i) {
    const auto n = road.add_node({450.0 * i, 0});
    road.add_link(prev, n, 14.0);
    prev = n;
  }
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  std::vector<VehicleId> chain;
  for (int i = 0; i <= 10; ++i) {
    const double pos = i * 150.0;
    const auto link = LinkId{static_cast<std::uint64_t>(i / 3)};
    chain.push_back(traffic.spawn_parked(link, pos - 450.0 * (i / 3)));
  }
  net.start_beacons(0.5);

  AdversaryRoster roster;
  for (int i = 3; i <= 7; ++i) roster.add(chain[static_cast<std::size_t>(i)]);
  SuppressedGreedyRouter router(net, roster, SuppressionConfig{1.0, 0.0},
                                Rng(3));
  router.attach();
  net.refresh();
  for (int i = 0; i < 5; ++i) router.originate(chain.front(), chain.back());
  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 0.0);
  EXPECT_GT(router.suppressed(), 0u);
}

TEST(Suppression, DelayVariantEventuallyDelivers) {
  geo::RoadNetwork road;
  auto a = road.add_node({0, 0});
  auto b = road.add_node({600, 0});
  road.add_link(a, b, 14.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  const auto src = traffic.spawn_parked(LinkId{0}, 0.0);
  const auto mid = traffic.spawn_parked(LinkId{0}, 250.0);
  const auto dst = traffic.spawn_parked(LinkId{0}, 500.0);
  net.start_beacons(0.5);
  AdversaryRoster roster;
  roster.add(mid);
  SuppressedGreedyRouter router(net, roster, SuppressionConfig{0.0, 3.0},
                                Rng(3));
  router.attach();
  net.refresh();
  router.originate(src, dst);
  sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 0.0);  // still held
  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 1.0);  // late arrival
  EXPECT_GT(router.metrics().delay().mean(), 3.0);
}

// ---- DoS ------------------------------------------------------------------------

TEST(Dos, FloodingDegradesNeighborReception) {
  const auto road = geo::make_manhattan_grid(2, 2, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  const auto victim_a = traffic.spawn_parked(LinkId{0}, 0.0);
  const auto victim_b = traffic.spawn_parked(LinkId{0}, 150.0);
  const auto flooder = traffic.spawn_parked(LinkId{0}, 75.0);
  net.refresh();

  auto send_many = [&] {
    int delivered = 0;
    for (int i = 0; i < 200; ++i) {
      net::Message m;
      m.id = net.next_message_id();
      m.src = net::Address::vehicle(victim_a);
      m.dst = net::Address::vehicle(victim_b);
      if (net.send(m)) ++delivered;
    }
    return delivered;
  };

  const int before = send_many();
  AdversaryRoster roster;
  roster.add(flooder);
  DosFlooder dos(net, roster, DosConfig{400.0, 512});
  dos.start();
  sim.run_until(sim.now() + 3.0);  // let the junk broadcasts fire
  const int during = send_many();
  EXPECT_LT(during, before - 20);  // measurable degradation
  dos.stop();
  sim.run_until(sim.now() + 1.0);
  const int after = send_many();
  EXPECT_GT(after, during);
  EXPECT_GT(dos.junk_sent(), 0u);
}

// ---- Tracking --------------------------------------------------------------------

TEST(Tracker, StableIdsFullyTracked) {
  std::vector<auth::AirObservation> obs;
  for (int v = 0; v < 3; ++v) {
    for (int t = 0; t < 10; ++t) {
      obs.push_back({t * 1.0,
                     {v * 1000.0 + t * 10.0, 0},
                     static_cast<std::uint64_t>(100 + v),
                     VehicleId{static_cast<std::uint64_t>(v)}});
    }
  }
  const TrackingAdversary adversary;
  const auto score = adversary.analyze(obs);
  EXPECT_GT(score.link_recall, 0.9);
  EXPECT_GT(score.link_precision, 0.9);
}

TEST(Tracker, KinematicLinkingDefeatsNaiveRotation) {
  // One isolated vehicle rotating pseudonyms every observation: position
  // continuity still links it.
  std::vector<auth::AirObservation> obs;
  for (int t = 0; t < 10; ++t) {
    obs.push_back({t * 1.0,
                   {t * 20.0, 0},
                   static_cast<std::uint64_t>(500 + t),  // fresh id each time
                   VehicleId{1}});
  }
  const TrackingAdversary adversary({40.0, true});
  const auto score = adversary.analyze(obs);
  EXPECT_GT(score.link_recall, 0.9);
  // Without kinematics, rotation wins.
  const TrackingAdversary blind({40.0, false});
  EXPECT_DOUBLE_EQ(blind.analyze(obs).link_recall, 0.0);
}

TEST(Tracker, CrowdsConfuseKinematicLinking) {
  // Many vehicles moving together with rotating ids: precision collapses.
  std::vector<auth::AirObservation> obs;
  Rng rng(9);
  for (int t = 0; t < 8; ++t) {
    for (int v = 0; v < 12; ++v) {
      obs.push_back({t * 1.0,
                     {t * 20.0 + rng.uniform(-5, 5), rng.uniform(-5, 5)},
                     static_cast<std::uint64_t>(1000 + t * 100 + v),
                     VehicleId{static_cast<std::uint64_t>(v)}});
    }
  }
  const TrackingAdversary adversary({40.0, true});
  const auto score = adversary.analyze(obs);
  EXPECT_LT(score.link_precision, 0.6);
}

}  // namespace
}  // namespace vcl::attack
