#include <gtest/gtest.h>

#include <cmath>

#include "mobility/trip_generator.h"
#include "routing/cbltr.h"
#include "routing/flooding.h"
#include "routing/greedy_geo.h"
#include "routing/metrics.h"
#include "routing/mozo_routing.h"
#include "routing/quality_greedy.h"

namespace vcl::routing {
namespace {

TEST(LinkLifetime, AlreadyOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(link_lifetime({0, 0}, {0, 0}, {400, 0}, {0, 0}, 300), 0.0);
}

TEST(LinkLifetime, StaticNodesNeverSeparate) {
  EXPECT_TRUE(std::isinf(
      link_lifetime({0, 0}, {10, 0}, {100, 0}, {10, 0}, 300)));
}

TEST(LinkLifetime, HeadOnApproachThenSeparate) {
  // B starts 100 m ahead moving away at 10 m/s relative: leaves 300 m range
  // after (300 - 100) / 10 = 20 s.
  const double t = link_lifetime({0, 0}, {0, 0}, {100, 0}, {10, 0}, 300);
  EXPECT_NEAR(t, 20.0, 1e-6);
}

TEST(LinkLifetime, ApproachingExtendsLifetime) {
  // B ahead, moving toward A then past: lifetime covers pass-through.
  const double toward = link_lifetime({0, 0}, {0, 0}, {200, 0}, {-10, 0}, 300);
  const double away = link_lifetime({0, 0}, {0, 0}, {200, 0}, {10, 0}, 300);
  EXPECT_GT(toward, away);
}

TEST(RoutingMetrics, DeliveryAccounting) {
  RoutingMetrics m;
  net::Message msg;
  msg.id = MessageId{1};
  msg.created = 0.0;
  msg.hops = 3;
  m.on_originate(msg);
  m.on_originate(msg);  // second message never delivered
  m.on_deliver(msg, 2.0);
  m.on_deliver(msg, 5.0);  // duplicate: ignored
  EXPECT_EQ(m.delivered(), 1u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.delay().mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.hops().mean(), 3.0);
  EXPECT_TRUE(m.was_delivered(MessageId{1}));
  EXPECT_FALSE(m.was_delivered(MessageId{2}));
}

TEST(RoutingMetrics, Overhead) {
  RoutingMetrics m;
  net::Message msg;
  msg.id = MessageId{1};
  m.on_originate(msg);
  for (int i = 0; i < 6; ++i) m.on_transmit();
  EXPECT_DOUBLE_EQ(m.overhead(), 6.0);
}

// A chain of parked vehicles 150 m apart: every protocol should get a
// message from one end to the other.
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture()
      : road_(make_chain_road()),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {
    // Vehicles every 150 m along the 1500 m road.
    for (int i = 0; i <= 10; ++i) {
      const double pos = i * 150.0;
      const auto link = LinkId{static_cast<std::uint64_t>(i / 3)};
      const double offset = pos - 450.0 * static_cast<double>(i / 3);
      chain_.push_back(traffic_.spawn_parked(link, offset));
    }
    net_.start_beacons(0.5);
  }

  static geo::RoadNetwork make_chain_road() {
    geo::RoadNetwork net;
    // 4 links of 450 m in a straight line.
    auto prev = net.add_node({0, 0});
    for (int i = 1; i <= 4; ++i) {
      const auto n = net.add_node({450.0 * i, 0});
      net.add_link(prev, n, 14.0);
      prev = n;
    }
    return net;
  }

  template <typename RouterT>
  double run_delivery(RouterT& router, int n_messages = 5) {
    router.attach();
    net_.refresh();
    for (int i = 0; i < n_messages; ++i) {
      router.originate(chain_.front(), chain_.back());
    }
    sim_.run_until(20.0);
    return router.metrics().delivery_ratio();
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
  std::vector<VehicleId> chain_;
};

TEST_F(ChainFixture, FloodingDeliversAlongChain) {
  Flooding router(net_);
  EXPECT_GE(run_delivery(router), 0.8);
  EXPECT_GE(router.metrics().hops().mean(), 2.0);  // genuinely multi-hop
}

TEST_F(ChainFixture, GreedyGeoDeliversAlongChain) {
  GreedyGeo router(net_);
  EXPECT_GE(run_delivery(router), 0.8);
}

TEST_F(ChainFixture, QualityGreedyDeliversAlongChain) {
  QualityGreedy router(net_);
  EXPECT_GE(run_delivery(router), 0.8);
}

TEST_F(ChainFixture, CbltrDeliversAlongChain) {
  Cbltr router(net_);
  EXPECT_GE(run_delivery(router), 0.8);
}

TEST_F(ChainFixture, MozoDeliversAlongChain) {
  cluster::MovingZone zones(net_);
  zones.attach(0.5);
  MozoRouting router(net_, zones);
  net_.refresh();
  zones.update();
  EXPECT_GE(run_delivery(router), 0.8);
}

// In a 2-D scene flooding transmits from (almost) every vehicle while greedy
// uses only the vehicles on one path — the classic overhead gap.
TEST(RoutingOverhead, GreedyBeatsFloodingInDenseScene) {
  const auto road = geo::make_manhattan_grid(4, 4, 150.0);
  auto run = [&](auto make_router) {
    sim::Simulator sim;
    mobility::TrafficModel traffic(road, Rng(21));
    net::Network net(sim, traffic, net::ChannelConfig{}, Rng(22));
    // One parked vehicle near every intersection: a dense 2-D cloud.
    std::vector<VehicleId> ids;
    for (const auto& node : road.nodes()) {
      const LinkId l = node.out_links.front();
      ids.push_back(traffic.spawn_parked(l, 1.0));
    }
    net.start_beacons(0.5);
    auto router = make_router(net);
    router->attach();
    net.refresh();
    for (int i = 0; i < 5; ++i) router->originate(ids.front(), ids.back());
    sim.run_until(20.0);
    return std::pair<double, double>{router->metrics().delivery_ratio(),
                                     router->metrics().overhead()};
  };
  const auto [flood_dr, flood_oh] = run([](net::Network& n) {
    return std::make_unique<Flooding>(n);
  });
  const auto [greedy_dr, greedy_oh] = run([](net::Network& n) {
    return std::make_unique<GreedyGeo>(n);
  });
  EXPECT_GE(flood_dr, 0.8);
  EXPECT_GE(greedy_dr, 0.8);
  EXPECT_LT(greedy_oh, flood_oh);
}

TEST_F(ChainFixture, TtlLimitsPropagation) {
  RouterConfig cfg;
  cfg.default_ttl = 2;  // not enough for a ~10-hop chain
  Flooding router(net_, cfg);
  router.attach();
  net_.refresh();
  router.originate(chain_.front(), chain_.back());
  sim_.run_until(20.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 0.0);
}

TEST_F(ChainFixture, DirectNeighborDeliveredFirstHop) {
  GreedyGeo router(net_);
  router.attach();
  net_.refresh();
  router.originate(chain_[0], chain_[1]);
  sim_.run_until(5.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 1.0);
  EXPECT_LE(router.metrics().hops().mean(), 2.0);
}

// Mobile scenario: moving vehicles on a grid, sanity across protocols.
TEST(RoutingMobile, GreedyDeliversInMovingTraffic) {
  const auto road = geo::make_manhattan_grid(5, 5, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(11));
  mobility::TripGeneratorConfig cfg;
  cfg.target_population = 80;
  mobility::TripGenerator gen(traffic, cfg, Rng(12));
  gen.prefill();
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(13));
  traffic.attach(sim, 0.1);
  gen.attach(sim);
  net.start_beacons(1.0);

  GreedyGeo router(net);
  router.attach();
  net.refresh();

  Rng pick(14);
  std::vector<VehicleId> ids;
  for (const auto& [vid, v] : traffic.vehicles()) ids.push_back(v.id);
  for (int i = 0; i < 20; ++i) {
    const VehicleId src = pick.pick(ids);
    const VehicleId dst = pick.pick(ids);
    if (src == dst) continue;
    router.originate(src, dst);
  }
  sim.run_until(30.0);
  EXPECT_GE(router.metrics().delivery_ratio(), 0.5);
}

}  // namespace
}  // namespace vcl::routing
