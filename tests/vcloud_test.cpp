#include <gtest/gtest.h>

#include "cluster/moving_zone.h"
#include "vcloud/cloud.h"
#include "vcloud/replication.h"

namespace vcl::vcloud {
namespace {

TEST(ResourceProfile, ScalesWithAutomation) {
  const auto lo = profile_for(mobility::AutomationLevel::kNoAutomation);
  const auto hi = profile_for(mobility::AutomationLevel::kFullAutomation);
  EXPECT_GT(hi.compute, lo.compute);
  EXPECT_GT(hi.storage_mb, lo.storage_mb);
  EXPECT_GT(hi.sensor_count, lo.sensor_count);
}

TEST(ResourcePool, Aggregates) {
  ResourcePool pool;
  pool.add(profile_for(mobility::AutomationLevel::kNoAutomation));
  pool.add(profile_for(mobility::AutomationLevel::kFullAutomation));
  EXPECT_EQ(pool.members, 2u);
  EXPECT_GT(pool.compute, 0.0);
}

TEST(Workload, GeneratesPositiveTasks) {
  WorkloadGenerator gen({}, Rng(1));
  for (const Task& t : gen.batch(10.0, 50)) {
    EXPECT_GT(t.work, 0.0);
    EXPECT_GT(t.input_mb, 0.0);
    EXPECT_EQ(t.created, 10.0);
    EXPECT_GT(t.deadline, 10.0);
  }
}

TEST(Handover, CheckpointGrowsWithProgress) {
  HandoverConfig cfg;
  Task t;
  t.work = 100;
  t.progress = 0;
  const double empty = checkpoint_mb(t, cfg);
  t.progress = 50;
  EXPECT_GT(checkpoint_mb(t, cfg), empty);
}

TEST(Handover, EncryptionAddsLatency) {
  HandoverConfig enc;
  HandoverConfig plain = enc;
  plain.encrypted = false;
  Task t;
  t.progress = 10;
  const crypto::CostModel costs;
  const ResourceProfile p;
  EXPECT_GT(migration_latency(t, p, p, enc, costs),
            migration_latency(t, p, p, plain, costs));
}

TEST(Schedulers, GreedyPicksFastestIdle) {
  GreedyResourceScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(3);
  workers[0].id = VehicleId{1};
  workers[0].profile.compute = 5;
  workers[1].id = VehicleId{2};
  workers[1].profile.compute = 9;
  workers[1].busy = true;  // fastest but busy
  workers[2].id = VehicleId{3};
  workers[2].profile.compute = 7;
  Task t;
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{3});
}

TEST(Schedulers, DwellAwareAvoidsShortStayers) {
  DwellAwareScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(2);
  workers[0].id = VehicleId{1};
  workers[0].profile.compute = 10;  // fast...
  workers[0].dwell_seconds = 1.0;   // ...but leaving immediately
  workers[1].id = VehicleId{2};
  workers[1].profile.compute = 2;
  workers[1].dwell_seconds = 1000.0;
  Task t;
  t.work = 20;  // needs 2 s on fast, 10 s on slow
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{2});
}

TEST(Schedulers, DwellAwareFallsBackToLongestStayer) {
  DwellAwareScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(2);
  workers[0].id = VehicleId{1};
  workers[0].dwell_seconds = 3.0;
  workers[0].profile.compute = 1;
  workers[1].id = VehicleId{2};
  workers[1].dwell_seconds = 5.0;
  workers[1].profile.compute = 1;
  Task t;
  t.work = 100;  // nobody can finish: prefer the longest stayer
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{2});
}

TEST(Schedulers, NoIdleWorkerDefers) {
  RandomScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(1);
  workers[0].id = VehicleId{1};
  workers[0].busy = true;
  Task t;
  EXPECT_FALSE(sched.pick(t, workers, rng).valid());
}

TEST(Broker, ElectsCapableLongStayer) {
  BrokerElection broker;
  std::vector<WorkerView> members(2);
  members[0].id = VehicleId{1};
  members[0].profile.compute = 10;
  members[0].dwell_seconds = 2.0;  // capable but leaving
  members[1].id = VehicleId{2};
  members[1].profile.compute = 4;
  members[1].dwell_seconds = 200.0;
  EXPECT_EQ(broker.elect(members), VehicleId{2});
  EXPECT_EQ(broker.changes(), 0u);  // first election is free
}

TEST(Broker, HysteresisPreventsChurn) {
  BrokerElection broker;
  std::vector<WorkerView> members(2);
  members[0].id = VehicleId{1};
  members[0].profile.compute = 5;
  members[0].dwell_seconds = 100;
  members[1].id = VehicleId{2};
  members[1].profile.compute = 5.1;  // marginally better
  members[1].dwell_seconds = 100;
  broker.elect(members);
  const VehicleId first = broker.current();
  // Marginal difference: the incumbent must survive repeated elections.
  for (int i = 0; i < 5; ++i) broker.elect(members);
  EXPECT_EQ(broker.current(), first);
}

// ---- VehicularCloud end-to-end -------------------------------------------------

class CloudFixture : public ::testing::Test {
 protected:
  CloudFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  // A stationary member cloud over parked vehicles.
  std::unique_ptr<VehicularCloud> make_stationary_cloud(
      int members, CloudConfig config = {},
      std::unique_ptr<Scheduler> sched = nullptr) {
    for (int i = 0; i < members; ++i) {
      traffic_.spawn_parked(LinkId{0}, 10.0 * i);
    }
    net_.refresh();
    auto cloud = std::make_unique<VehicularCloud>(
        CloudId{1}, net_, stationary_membership(traffic_, {100, 0}, 400.0),
        fixed_region({100, 0}, 400.0),
        sched != nullptr ? std::move(sched)
                         : std::make_unique<GreedyResourceScheduler>(),
        config, Rng(3));
    cloud->refresh();
    return cloud;
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

TEST_F(CloudFixture, MembersJoin) {
  auto cloud = make_stationary_cloud(5);
  EXPECT_EQ(cloud->member_count(), 5u);
  EXPECT_TRUE(cloud->broker().valid());
  EXPECT_EQ(cloud->pool().members, 5u);
}

TEST_F(CloudFixture, TasksComplete) {
  auto cloud = make_stationary_cloud(4);
  Task t;
  t.work = 5.0;
  t.deadline = 0.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(60.0);
  const Task* done = cloud->find_task(id);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_EQ(cloud->stats().completed, 1u);
  EXPECT_GT(done->completed_at, 0.0);
}

TEST_F(CloudFixture, ParallelTasksUseMultipleWorkers) {
  auto cloud = make_stationary_cloud(4);
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.work = 10.0;
    cloud->submit(t);
  }
  sim_.run_until(300.0);
  EXPECT_EQ(cloud->stats().completed, 4u);
  EXPECT_TRUE(cloud->drained());
}

TEST_F(CloudFixture, QueueDrainsWhenWorkersFree) {
  auto cloud = make_stationary_cloud(1);
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.work = 2.0;
    cloud->submit(t);
  }
  EXPECT_GE(cloud->pending_count(), 2u);  // one runs, rest queue
  sim_.run_until(60.0);
  cloud->refresh();
  sim_.run_until(120.0);
  EXPECT_EQ(cloud->stats().completed, 3u);
}

TEST_F(CloudFixture, DeadlineExpiry) {
  auto cloud = make_stationary_cloud(1);
  Task t;
  t.work = 1000.0;  // cannot finish in time
  t.deadline = 5.0;
  cloud->submit(t);
  // Refresh periodically so expiry is detected.
  for (double time = 1.0; time <= 20.0; time += 1.0) {
    sim_.run_until(time);
    cloud->refresh();
  }
  EXPECT_EQ(cloud->stats().expired, 1u);
}

TEST_F(CloudFixture, DepartureWithHandoverMigrates) {
  CloudConfig config;
  config.handover.enabled = true;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 50.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  // Remove the worker running the task.
  const Task* running = cloud->find_task(id);
  ASSERT_NE(running, nullptr);
  ASSERT_EQ(running->state, TaskState::kRunning);
  traffic_.despawn(running->worker);
  cloud->refresh();
  sim_.run_until(300.0);
  cloud->refresh();
  sim_.run_until(600.0);
  const Task* done = cloud->find_task(id);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_GE(done->migrations, 1);
  EXPECT_EQ(cloud->stats().migrations, 1u);
  EXPECT_DOUBLE_EQ(cloud->stats().wasted_work, 0.0);  // progress preserved
}

TEST_F(CloudFixture, MigrationTargetDepartingDoesNotInflateProgress) {
  // Regression: a task whose migration TARGET dies mid-transfer must not
  // double-count progress from its stale run_started.
  CloudConfig config;
  config.handover.enabled = true;
  // Big checkpoints make the transfer slow enough to interrupt.
  config.handover.checkpoint_mb_base = 50.0;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 100.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  const Task* running = cloud->find_task(id);
  ASSERT_EQ(running->state, TaskState::kRunning);
  const double progress_before = running->progress;  // 0: counted lazily
  (void)progress_before;
  // Kill the worker: migration to a new target begins.
  traffic_.despawn(running->worker);
  cloud->refresh();
  const Task* migrating = cloud->find_task(id);
  ASSERT_EQ(migrating->state, TaskState::kMigrating);
  const double progress_at_interrupt = migrating->progress;
  EXPECT_GT(progress_at_interrupt, 0.0);
  EXPECT_LT(progress_at_interrupt, 100.0);
  // Kill the migration target mid-transfer.
  traffic_.despawn(migrating->worker);
  cloud->refresh();
  const Task* after = cloud->find_task(id);
  // No progress may have appeared out of thin air.
  EXPECT_DOUBLE_EQ(after->progress, progress_at_interrupt);
  // And the task still finishes on the remaining worker.
  for (int i = 0; i < 200; ++i) {
    sim_.run_until(sim_.now() + 5.0);
    cloud->refresh();
  }
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
}

TEST_F(CloudFixture, DepartureWithoutHandoverWastesWork) {
  CloudConfig config;
  config.handover.enabled = false;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 50.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  const Task* running = cloud->find_task(id);
  ASSERT_EQ(running->state, TaskState::kRunning);
  traffic_.despawn(running->worker);
  cloud->refresh();
  sim_.run_until(600.0);
  cloud->refresh();
  sim_.run_until(1200.0);
  const Task* done = cloud->find_task(id);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_GT(cloud->stats().wasted_work, 0.0);
  EXPECT_EQ(cloud->stats().reallocations, 1u);
  EXPECT_EQ(done->migrations, 0);
}

TEST_F(CloudFixture, RsuCloudEmptiesWhenRsuFails) {
  for (int i = 0; i < 4; ++i) traffic_.spawn_parked(LinkId{0}, 20.0 * i);
  const RsuId rsu = net_.rsus().add({50, 0}, 500.0);
  net_.refresh();
  VehicularCloud cloud(CloudId{2}, net_, rsu_membership(net_, rsu),
                       rsu_region(net_, rsu),
                       std::make_unique<GreedyResourceScheduler>(), {},
                       Rng(4));
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 4u);
  net_.rsus().set_online(rsu, false);
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 0u);
}

TEST_F(CloudFixture, DynamicCloudFollowsCluster) {
  for (int i = 0; i < 5; ++i) traffic_.spawn_parked(LinkId{0}, 30.0 * i);
  net_.refresh();
  cluster::MovingZone zones(net_);
  zones.update();
  auto membership = largest_cluster_membership(zones);
  VehicularCloud cloud(CloudId{3}, net_, membership,
                       members_centroid_region(traffic_, membership, 300.0),
                       std::make_unique<GreedyResourceScheduler>(), {},
                       Rng(5));
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 5u);
  EXPECT_GT(cloud.region().radius, 0.0);
}

// ---- Replication ----------------------------------------------------------------

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture() {
    for (int i = 0; i < 10; ++i) live_.push_back(VehicleId{static_cast<std::uint64_t>(i)});
  }

  ReplicationManager make_manager(std::size_t target) {
    ReplicationConfig cfg;
    cfg.target_replicas = target;
    return ReplicationManager([this] { return live_; }, cfg, Rng(1));
  }

  std::vector<VehicleId> live_;
};

TEST_F(ReplicationFixture, StorePlacesTargetReplicas) {
  auto mgr = make_manager(3);
  const FileId id = mgr.store(crypto::Bytes(1000, 7));
  EXPECT_EQ(mgr.live_replicas(id), 3u);
  EXPECT_TRUE(mgr.available(id));
  const StoredFile* f = mgr.find(id);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->merkle_root, crypto::Digest{});
}

TEST_F(ReplicationFixture, ChurnReducesThenRepairRestores) {
  auto mgr = make_manager(4);
  const FileId id = mgr.store(crypto::Bytes(1000, 7));
  // Kill 7 of 10 members.
  live_.erase(live_.begin(), live_.begin() + 7);
  const std::size_t after_churn = mgr.live_replicas(id);
  EXPECT_LT(after_churn, 4u);
  mgr.refresh();
  // Only 3 members remain: replicas capped by population.
  EXPECT_EQ(mgr.live_replicas(id), 3u);
  EXPECT_GT(mgr.repair_copies(), 0u);
}

TEST_F(ReplicationFixture, FileLostWhenAllHoldersDie) {
  auto mgr = make_manager(2);
  const FileId id = mgr.store(crypto::Bytes(100, 1));
  const StoredFile* f = mgr.find(id);
  // Remove exactly the holders.
  std::erase_if(live_, [&](VehicleId v) {
    return std::find(f->holders.begin(), f->holders.end(), v.value()) !=
           f->holders.end();
  });
  EXPECT_FALSE(mgr.available(id));
  mgr.refresh();  // nothing to copy from
  EXPECT_FALSE(mgr.available(id));
}

TEST_F(ReplicationFixture, MoreReplicasSurviveMoreChurn) {
  auto low = make_manager(1);
  auto high = make_manager(5);
  std::vector<FileId> low_ids, high_ids;
  for (int i = 0; i < 30; ++i) {
    low_ids.push_back(low.store(crypto::Bytes(100, 1)));
    high_ids.push_back(high.store(crypto::Bytes(100, 1)));
  }
  // Half the population goes offline.
  live_.resize(5);
  std::size_t low_alive = 0, high_alive = 0;
  for (int i = 0; i < 30; ++i) {
    low_alive += low.available(low_ids[static_cast<std::size_t>(i)]);
    high_alive += high.available(high_ids[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(high_alive, low_alive);
}

}  // namespace
}  // namespace vcl::vcloud
