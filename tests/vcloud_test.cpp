#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>
#include <string>

#include "cluster/moving_zone.h"
#include "vcloud/cloud.h"
#include "vcloud/replication.h"

namespace vcl::vcloud {
namespace {

TEST(ResourceProfile, ScalesWithAutomation) {
  const auto lo = profile_for(mobility::AutomationLevel::kNoAutomation);
  const auto hi = profile_for(mobility::AutomationLevel::kFullAutomation);
  EXPECT_GT(hi.compute, lo.compute);
  EXPECT_GT(hi.storage_mb, lo.storage_mb);
  EXPECT_GT(hi.sensor_count, lo.sensor_count);
}

TEST(ResourcePool, Aggregates) {
  ResourcePool pool;
  pool.add(profile_for(mobility::AutomationLevel::kNoAutomation));
  pool.add(profile_for(mobility::AutomationLevel::kFullAutomation));
  EXPECT_EQ(pool.members, 2u);
  EXPECT_GT(pool.compute, 0.0);
}

TEST(Workload, GeneratesPositiveTasks) {
  WorkloadGenerator gen({}, Rng(1));
  for (const Task& t : gen.batch(10.0, 50)) {
    EXPECT_GT(t.work, 0.0);
    EXPECT_GT(t.input_mb, 0.0);
    EXPECT_EQ(t.created, 10.0);
    EXPECT_GT(t.deadline, 10.0);
  }
}

TEST(TaskStateLabels, CoversEveryState) {
  const TaskState all[] = {
      TaskState::kPending,   TaskState::kRunning,   TaskState::kMigrating,
      TaskState::kCrashRecovering, TaskState::kCompleted, TaskState::kFailed,
      TaskState::kExpired};
  std::set<std::string> seen;
  for (const TaskState s : all) {
    const std::string label = to_string(s);
    EXPECT_NE(label, "unknown");
    seen.insert(label);
  }
  EXPECT_EQ(seen.size(), std::size(all));  // every label is distinct
}

TEST(Handover, CheckpointGrowsWithProgress) {
  HandoverConfig cfg;
  Task t;
  t.work = 100;
  t.progress = 0;
  const double empty = checkpoint_mb(t, cfg);
  t.progress = 50;
  EXPECT_GT(checkpoint_mb(t, cfg), empty);
}

TEST(Handover, EncryptionAddsLatency) {
  HandoverConfig enc;
  HandoverConfig plain = enc;
  plain.encrypted = false;
  Task t;
  t.progress = 10;
  const crypto::CostModel costs;
  const ResourceProfile p;
  EXPECT_GT(migration_latency(t, p, p, enc, costs),
            migration_latency(t, p, p, plain, costs));
}

TEST(Handover, ZeroProgressCheckpointIsBaseSize) {
  HandoverConfig cfg;
  Task t;
  t.work = 100;
  t.progress = 0;
  EXPECT_DOUBLE_EQ(checkpoint_mb(t, cfg), cfg.checkpoint_mb_base);
}

TEST(Handover, UnencryptedMigrationIsTransferOnly) {
  HandoverConfig cfg;
  cfg.encrypted = false;
  Task t;
  t.progress = 10;
  const crypto::CostModel costs;
  const ResourceProfile p;
  const double mb = checkpoint_mb(t, cfg);
  const double transfer = mb * 8.0 / std::max(p.bandwidth_mbps, 0.1);
  EXPECT_DOUBLE_EQ(migration_latency(t, p, p, cfg, costs), transfer);
}

TEST(Handover, MigrationLatencyMonotonicInProgress) {
  HandoverConfig cfg;
  const crypto::CostModel costs;
  const ResourceProfile p;
  Task t;
  t.work = 100;
  double prev = -1.0;
  for (const double progress : {0.0, 10.0, 40.0, 90.0}) {
    t.progress = progress;
    const double lat = migration_latency(t, p, p, cfg, costs);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST(Dependability, RetryBackoffGrowsAndStaysPositive) {
  RetryConfig cfg;
  cfg.ack_timeout = 0.5;
  cfg.backoff = 2.0;
  cfg.jitter = 0.25;
  Rng rng(7);
  double prev_hi = 0.0;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double nominal = cfg.ack_timeout * std::pow(cfg.backoff, attempt - 1);
    for (int i = 0; i < 50; ++i) {
      const SimTime d = retry_backoff(cfg, attempt, rng);
      EXPECT_GT(d, 0.0);
      EXPECT_GE(d, nominal * (1.0 - cfg.jitter) - 1e-12);
      EXPECT_LE(d, nominal * (1.0 + cfg.jitter) + 1e-12);
    }
    EXPECT_GT(nominal * (1.0 - cfg.jitter), prev_hi / 4.0);  // keeps growing
    prev_hi = nominal * (1.0 + cfg.jitter);
  }
}

TEST(Dependability, DetectorSweepsOnlySilentWorkers) {
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 1.0;
  cfg.missed_beats_to_kill = 3;
  FailureDetector det(cfg);
  det.track(VehicleId{1}, 0.0);
  det.track(VehicleId{2}, 0.0);
  det.observe(VehicleId{1}, 2.5);  // v1 keeps beating, v2 goes silent
  EXPECT_TRUE(det.sweep(2.9).empty());  // nobody past k*period yet
  const auto dead = det.sweep(3.5);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], VehicleId{2});
  det.forget(VehicleId{2});
  EXPECT_TRUE(det.sweep(3.5).empty());
  // reset_all grants a fresh grace window (new broker re-sync semantics).
  det.track(VehicleId{2}, 3.5);
  det.reset_all(100.0);
  EXPECT_TRUE(det.sweep(102.9).empty());
}

TEST(Dependability, RetryBackoffDeterministicAndBaseGrowsMonotonically) {
  RetryConfig cfg;
  cfg.ack_timeout = 0.5;
  cfg.backoff = 2.0;
  cfg.jitter = 0.5;
  // Same Rng state, same jittered delays — retries replay exactly.
  Rng a(99), b(99);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(retry_backoff(cfg, attempt, a),
                     retry_backoff(cfg, attempt, b));
  }
  // With jitter off, the base schedule is strictly exponential.
  cfg.jitter = 0.0;
  Rng rng(1);
  SimTime prev = 0.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const SimTime d = retry_backoff(cfg, attempt, rng);
    EXPECT_GT(d, prev);
    if (attempt > 1) EXPECT_DOUBLE_EQ(d, prev * cfg.backoff);
    prev = d;
  }
}

TEST(Dependability, DetectorForgetAndResetEdgeCases) {
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 1.0;
  cfg.missed_beats_to_kill = 3;
  FailureDetector det(cfg);
  // forget() of an id that was never tracked is a no-op.
  det.forget(VehicleId{7});
  EXPECT_EQ(det.tracked_count(), 0u);

  det.track(VehicleId{5}, 0.0);
  det.track(VehicleId{2}, 0.0);
  det.track(VehicleId{9}, 0.0);
  det.forget(VehicleId{7});  // still untracked: the others are untouched
  EXPECT_EQ(det.tracked_count(), 3u);
  const auto ids = det.tracked_ids();
  ASSERT_EQ(ids.size(), 3u);  // sorted, deterministic
  EXPECT_EQ(ids[0], VehicleId{2});
  EXPECT_EQ(ids[1], VehicleId{5});
  EXPECT_EQ(ids[2], VehicleId{9});

  // Broker change at t=9: only v5 has beaten recently. Without the fresh
  // grace window an immediate sweep would mass-kill v2 and v9.
  det.observe(VehicleId{5}, 8.5);
  det.reset_all(9.0);
  EXPECT_TRUE(det.sweep(9.1).empty());
  EXPECT_TRUE(det.sweep(11.9).empty());
  // The window is a grace period, not amnesty: staying silent past it still
  // gets a worker declared dead.
  const auto dead = det.sweep(12.5);
  ASSERT_EQ(dead.size(), 3u);
}

TEST(Schedulers, GreedyPicksFastestIdle) {
  GreedyResourceScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(3);
  workers[0].id = VehicleId{1};
  workers[0].profile.compute = 5;
  workers[1].id = VehicleId{2};
  workers[1].profile.compute = 9;
  workers[1].busy = true;  // fastest but busy
  workers[2].id = VehicleId{3};
  workers[2].profile.compute = 7;
  Task t;
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{3});
}

TEST(Schedulers, DwellAwareAvoidsShortStayers) {
  DwellAwareScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(2);
  workers[0].id = VehicleId{1};
  workers[0].profile.compute = 10;  // fast...
  workers[0].dwell_seconds = 1.0;   // ...but leaving immediately
  workers[1].id = VehicleId{2};
  workers[1].profile.compute = 2;
  workers[1].dwell_seconds = 1000.0;
  Task t;
  t.work = 20;  // needs 2 s on fast, 10 s on slow
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{2});
}

TEST(Schedulers, DwellAwareFallsBackToLongestStayer) {
  DwellAwareScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(2);
  workers[0].id = VehicleId{1};
  workers[0].dwell_seconds = 3.0;
  workers[0].profile.compute = 1;
  workers[1].id = VehicleId{2};
  workers[1].dwell_seconds = 5.0;
  workers[1].profile.compute = 1;
  Task t;
  t.work = 100;  // nobody can finish: prefer the longest stayer
  EXPECT_EQ(sched.pick(t, workers, rng), VehicleId{2});
}

TEST(Schedulers, NoIdleWorkerDefers) {
  RandomScheduler sched;
  Rng rng(1);
  std::vector<WorkerView> workers(1);
  workers[0].id = VehicleId{1};
  workers[0].busy = true;
  Task t;
  EXPECT_FALSE(sched.pick(t, workers, rng).valid());
}

TEST(Broker, ElectsCapableLongStayer) {
  BrokerElection broker;
  std::vector<WorkerView> members(2);
  members[0].id = VehicleId{1};
  members[0].profile.compute = 10;
  members[0].dwell_seconds = 2.0;  // capable but leaving
  members[1].id = VehicleId{2};
  members[1].profile.compute = 4;
  members[1].dwell_seconds = 200.0;
  EXPECT_EQ(broker.elect(members), VehicleId{2});
  EXPECT_EQ(broker.changes(), 0u);  // first election is free
}

TEST(Broker, HysteresisPreventsChurn) {
  BrokerElection broker;
  std::vector<WorkerView> members(2);
  members[0].id = VehicleId{1};
  members[0].profile.compute = 5;
  members[0].dwell_seconds = 100;
  members[1].id = VehicleId{2};
  members[1].profile.compute = 5.1;  // marginally better
  members[1].dwell_seconds = 100;
  broker.elect(members);
  const VehicleId first = broker.current();
  // Marginal difference: the incumbent must survive repeated elections.
  for (int i = 0; i < 5; ++i) broker.elect(members);
  EXPECT_EQ(broker.current(), first);
}

// ---- VehicularCloud end-to-end -------------------------------------------------

class CloudFixture : public ::testing::Test {
 protected:
  CloudFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  // A stationary member cloud over parked vehicles.
  std::unique_ptr<VehicularCloud> make_stationary_cloud(
      int members, CloudConfig config = {},
      std::unique_ptr<Scheduler> sched = nullptr) {
    for (int i = 0; i < members; ++i) {
      traffic_.spawn_parked(LinkId{0}, 10.0 * i);
    }
    net_.refresh();
    auto cloud = std::make_unique<VehicularCloud>(
        CloudId{1}, net_, stationary_membership(traffic_, {100, 0}, 400.0),
        fixed_region({100, 0}, 400.0),
        sched != nullptr ? std::move(sched)
                         : std::make_unique<GreedyResourceScheduler>(),
        config, Rng(3));
    cloud->refresh();
    return cloud;
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

TEST_F(CloudFixture, MembersJoin) {
  auto cloud = make_stationary_cloud(5);
  EXPECT_EQ(cloud->member_count(), 5u);
  EXPECT_TRUE(cloud->broker().valid());
  EXPECT_EQ(cloud->pool().members, 5u);
}

TEST_F(CloudFixture, TasksComplete) {
  auto cloud = make_stationary_cloud(4);
  Task t;
  t.work = 5.0;
  t.deadline = 0.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(60.0);
  const Task* done = cloud->find_task(id);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_EQ(cloud->stats().completed, 1u);
  EXPECT_GT(done->completed_at, 0.0);
}

TEST_F(CloudFixture, ParallelTasksUseMultipleWorkers) {
  auto cloud = make_stationary_cloud(4);
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.work = 10.0;
    cloud->submit(t);
  }
  sim_.run_until(300.0);
  EXPECT_EQ(cloud->stats().completed, 4u);
  EXPECT_TRUE(cloud->drained());
}

TEST_F(CloudFixture, QueueDrainsWhenWorkersFree) {
  auto cloud = make_stationary_cloud(1);
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.work = 2.0;
    cloud->submit(t);
  }
  EXPECT_GE(cloud->pending_count(), 2u);  // one runs, rest queue
  sim_.run_until(60.0);
  cloud->refresh();
  sim_.run_until(120.0);
  EXPECT_EQ(cloud->stats().completed, 3u);
}

TEST_F(CloudFixture, DeadlineExpiry) {
  auto cloud = make_stationary_cloud(1);
  Task t;
  t.work = 1000.0;  // cannot finish in time
  t.deadline = 5.0;
  cloud->submit(t);
  // Refresh periodically so expiry is detected.
  for (double time = 1.0; time <= 20.0; time += 1.0) {
    sim_.run_until(time);
    cloud->refresh();
  }
  EXPECT_EQ(cloud->stats().expired, 1u);
}

TEST_F(CloudFixture, DepartureWithHandoverMigrates) {
  CloudConfig config;
  config.handover.enabled = true;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 50.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  // Remove the worker running the task.
  const Task* running = cloud->find_task(id);
  ASSERT_NE(running, nullptr);
  ASSERT_EQ(running->state, TaskState::kRunning);
  traffic_.despawn(running->worker);
  cloud->refresh();
  sim_.run_until(300.0);
  cloud->refresh();
  sim_.run_until(600.0);
  const Task* done = cloud->find_task(id);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_GE(done->migrations, 1);
  EXPECT_EQ(cloud->stats().migrations, 1u);
  EXPECT_DOUBLE_EQ(cloud->stats().wasted_work, 0.0);  // progress preserved
}

TEST_F(CloudFixture, MigrationTargetDepartingDoesNotInflateProgress) {
  // Regression: a task whose migration TARGET dies mid-transfer must not
  // double-count progress from its stale run_started.
  CloudConfig config;
  config.handover.enabled = true;
  // Big checkpoints make the transfer slow enough to interrupt.
  config.handover.checkpoint_mb_base = 50.0;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 100.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  const Task* running = cloud->find_task(id);
  ASSERT_EQ(running->state, TaskState::kRunning);
  const double progress_before = running->progress;  // 0: counted lazily
  (void)progress_before;
  // Kill the worker: migration to a new target begins.
  traffic_.despawn(running->worker);
  cloud->refresh();
  const Task* migrating = cloud->find_task(id);
  ASSERT_EQ(migrating->state, TaskState::kMigrating);
  const double progress_at_interrupt = migrating->progress;
  EXPECT_GT(progress_at_interrupt, 0.0);
  EXPECT_LT(progress_at_interrupt, 100.0);
  // Kill the migration target mid-transfer.
  traffic_.despawn(migrating->worker);
  cloud->refresh();
  const Task* after = cloud->find_task(id);
  // No progress may have appeared out of thin air.
  EXPECT_DOUBLE_EQ(after->progress, progress_at_interrupt);
  // And the task still finishes on the remaining worker.
  for (int i = 0; i < 200; ++i) {
    sim_.run_until(sim_.now() + 5.0);
    cloud->refresh();
  }
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
}

TEST_F(CloudFixture, DepartureWithoutHandoverWastesWork) {
  CloudConfig config;
  config.handover.enabled = false;
  auto cloud = make_stationary_cloud(3, config);
  Task t;
  t.work = 50.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(5.0);
  const Task* running = cloud->find_task(id);
  ASSERT_EQ(running->state, TaskState::kRunning);
  traffic_.despawn(running->worker);
  cloud->refresh();
  sim_.run_until(600.0);
  cloud->refresh();
  sim_.run_until(1200.0);
  const Task* done = cloud->find_task(id);
  EXPECT_EQ(done->state, TaskState::kCompleted);
  EXPECT_GT(cloud->stats().wasted_work, 0.0);
  EXPECT_EQ(cloud->stats().reallocations, 1u);
  EXPECT_EQ(done->migrations, 0);
}

TEST_F(CloudFixture, RsuCloudEmptiesWhenRsuFails) {
  for (int i = 0; i < 4; ++i) traffic_.spawn_parked(LinkId{0}, 20.0 * i);
  const RsuId rsu = net_.rsus().add({50, 0}, 500.0);
  net_.refresh();
  VehicularCloud cloud(CloudId{2}, net_, rsu_membership(net_, rsu),
                       rsu_region(net_, rsu),
                       std::make_unique<GreedyResourceScheduler>(), {},
                       Rng(4));
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 4u);
  net_.rsus().set_online(rsu, false);
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 0u);
}

TEST_F(CloudFixture, DynamicCloudFollowsCluster) {
  for (int i = 0; i < 5; ++i) traffic_.spawn_parked(LinkId{0}, 30.0 * i);
  net_.refresh();
  cluster::MovingZone zones(net_);
  zones.update();
  auto membership = largest_cluster_membership(zones);
  VehicularCloud cloud(CloudId{3}, net_, membership,
                       members_centroid_region(traffic_, membership, 300.0),
                       std::make_unique<GreedyResourceScheduler>(), {},
                       Rng(5));
  cloud.refresh();
  EXPECT_EQ(cloud.member_count(), 5u);
  EXPECT_GT(cloud.region().radius, 0.0);
}

// ---- Dependability: crashes, heartbeats, retry, checkpoints, replicas ---------

TEST_F(CloudFixture, CrashWithoutDetectorHangsForever) {
  CloudConfig config;  // every dependability knob off: the §III collapse case
  auto cloud = make_stationary_cloud(3, config);
  cloud->attach();
  Task t;
  t.work = 30.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(2.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  const VehicleId victim = cloud->find_task(id)->worker;
  cloud->crash_worker(victim);
  traffic_.despawn(victim);
  sim_.run_until(500.0);
  // Nobody ever tells the cloud: the task hangs on the zombie forever.
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  EXPECT_EQ(cloud->stats().completed, 0u);
  EXPECT_TRUE(cloud->worker_crashed(victim));
}

TEST_F(CloudFixture, HeartbeatLossWithoutCrashIsFalsePositive) {
  CloudConfig config;
  config.dependability.detector.enabled = true;
  config.dependability.detector.heartbeat_period = 1.0;
  config.dependability.detector.missed_beats_to_kill = 3;
  auto cloud = make_stationary_cloud(4, config);
  cloud->attach();
  Task t;
  t.work = 60.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(2.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  // Jam the whole lot: every heartbeat is lost, but NOBODY crashed.
  const std::uint64_t token = net_.channel().add_blackout({{100, 0}, 5000.0});
  sim_.run_until(10.0);
  EXPECT_GE(cloud->stats().false_positive_kills, 1u);
  EXPECT_EQ(cloud->stats().crash_kills, 0u);
  // The blackout lifts: falsely-killed live workers re-join on refresh and
  // the task still completes.
  net_.channel().remove_blackout(token);
  sim_.run_until(400.0);
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
}

TEST_F(CloudFixture, CrashRecoveryResumesFromCheckpoint) {
  CloudConfig config;
  config.dependability.detector.enabled = true;
  config.dependability.checkpoint.enabled = true;
  config.dependability.checkpoint.period = 2.0;
  auto cloud = make_stationary_cloud(4, config);
  cloud->attach();
  Task t;
  t.work = 200.0;  // long enough to still be running at the crash
  const TaskId id = cloud->submit(t);
  sim_.run_until(11.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  const VehicleId victim = cloud->find_task(id)->worker;
  cloud->crash_worker(victim);
  traffic_.despawn(victim);
  const double at_crash = cloud->find_task(id)->progress;
  const double checkpointed = cloud->find_task(id)->checkpoint_progress;
  EXPECT_GT(at_crash, 0.0);
  EXPECT_GT(checkpointed, 0.0);
  EXPECT_LE(checkpointed, at_crash);
  sim_.run_until(2000.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
  EXPECT_EQ(cloud->stats().crash_kills, 1u);
  EXPECT_EQ(cloud->stats().false_positive_kills, 0u);
  ASSERT_EQ(cloud->stats().detection_latency.count(), 1u);
  EXPECT_GE(cloud->stats().detection_latency.mean(),
            config.dependability.detector.heartbeat_period *
                config.dependability.detector.missed_beats_to_kill);
  EXPECT_GT(cloud->stats().checkpoints, 0u);
  EXPECT_GT(cloud->stats().checkpoint_mb, 0.0);
  // Only the delta since the last checkpoint was lost.
  EXPECT_NEAR(cloud->stats().wasted_work, at_crash - checkpointed, 1e-9);
  EXPECT_LT(cloud->stats().wasted_work, at_crash);
}

TEST_F(CloudFixture, CrashRecoveryWithoutCheckpointRestartsFromZero) {
  CloudConfig config;
  config.dependability.detector.enabled = true;  // checkpointing OFF
  auto cloud = make_stationary_cloud(4, config);
  cloud->attach();
  Task t;
  t.work = 200.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(11.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  const VehicleId victim = cloud->find_task(id)->worker;
  cloud->crash_worker(victim);
  traffic_.despawn(victim);
  const double at_crash = cloud->find_task(id)->progress;
  EXPECT_GT(at_crash, 0.0);
  sim_.run_until(2000.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
  // Everything earned before the crash was thrown away.
  EXPECT_NEAR(cloud->stats().wasted_work, at_crash, 1e-9);
  EXPECT_GE(cloud->stats().reallocations, 1u);
  EXPECT_EQ(cloud->stats().crash_kills, 1u);
}

TEST_F(CloudFixture, SoleWorkerCrashLeavesTaskCrashRecovering) {
  CloudConfig config;
  config.dependability.detector.enabled = true;
  auto cloud = make_stationary_cloud(1, config);
  cloud->attach();
  Task t;
  t.work = 50.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(2.0);
  const VehicleId victim = cloud->find_task(id)->worker;
  cloud->crash_worker(victim);
  traffic_.despawn(victim);
  sim_.run_until(30.0);
  // Declared dead, rolled back, re-queued — but no worker remains.
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCrashRecovering);
  EXPECT_EQ(cloud->stats().crash_kills, 1u);
  EXPECT_EQ(cloud->pending_count(), 1u);
}

TEST_F(CloudFixture, DispatchRetriesUnderBlackoutThenCompletes) {
  CloudConfig config;
  config.dependability.retry.enabled = true;
  config.dependability.retry.max_attempts = 3;
  config.dependability.retry.ack_timeout = 0.5;
  auto cloud = make_stationary_cloud(3, config);
  cloud->attach();
  const std::uint64_t token = net_.channel().add_blackout({{100, 0}, 5000.0});
  Task t;
  t.work = 10.0;
  const TaskId id = cloud->submit(t);
  EXPECT_GE(cloud->stats().retries, 1u);  // the first send fails right away
  sim_.run_until(5.0);
  EXPECT_EQ(cloud->stats().completed, 0u);  // nothing got through
  net_.channel().remove_blackout(token);
  sim_.run_until(200.0);
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
  EXPECT_GT(cloud->stats().retries, 1u);
}

TEST_F(CloudFixture, SpeculativeReplicaFirstFinisherWins) {
  CloudConfig config;
  config.dependability.speculation.enabled = true;
  config.dependability.speculation.min_spare_workers = 1;
  auto cloud = make_stationary_cloud(4, config);
  cloud->attach();
  Task t;
  t.work = 20.0;
  t.deadline = 500.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(300.0);
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
  EXPECT_EQ(cloud->stats().completed, 1u);  // the loser does not double-count
  EXPECT_EQ(cloud->stats().replicas_launched, 1u);
  EXPECT_GT(cloud->stats().redundant_work, 0.0);  // the loser's effort
}

TEST_F(CloudFixture, ReplicaRescuesCrashedPrimary) {
  CloudConfig config;
  config.dependability.detector.enabled = true;
  config.dependability.speculation.enabled = true;
  auto cloud = make_stationary_cloud(4, config);
  cloud->attach();
  Task t;
  t.work = 60.0;
  t.deadline = 1000.0;
  const TaskId id = cloud->submit(t);
  sim_.run_until(2.0);
  ASSERT_EQ(cloud->find_task(id)->state, TaskState::kRunning);
  const VehicleId primary = cloud->find_task(id)->worker;
  cloud->crash_worker(primary);
  traffic_.despawn(primary);
  sim_.run_until(900.0);
  EXPECT_EQ(cloud->find_task(id)->state, TaskState::kCompleted);
  EXPECT_EQ(cloud->stats().crash_kills, 1u);
  EXPECT_EQ(cloud->stats().replicas_launched, 1u);
}

TEST_F(CloudFixture, StatsReportingIsWellFormed) {
  auto cloud = make_stationary_cloud(2);
  Task t;
  t.work = 5.0;
  cloud->submit(t);
  sim_.run_until(60.0);
  const CloudStats& s = cloud->stats();
  EXPECT_FALSE(s.to_string().empty());
  EXPECT_EQ(CloudStats::table_columns().size(), s.table_row().size());
  EXPECT_DOUBLE_EQ(s.completion_rate(), 1.0);
}

// ---- Replication ----------------------------------------------------------------

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture() {
    for (int i = 0; i < 10; ++i) live_.push_back(VehicleId{static_cast<std::uint64_t>(i)});
  }

  ReplicationManager make_manager(std::size_t target) {
    ReplicationConfig cfg;
    cfg.target_replicas = target;
    return ReplicationManager([this] { return live_; }, cfg, Rng(1));
  }

  std::vector<VehicleId> live_;
};

TEST_F(ReplicationFixture, StorePlacesTargetReplicas) {
  auto mgr = make_manager(3);
  const FileId id = mgr.store(crypto::Bytes(1000, 7));
  EXPECT_EQ(mgr.live_replicas(id), 3u);
  EXPECT_TRUE(mgr.available(id));
  const StoredFile* f = mgr.find(id);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->merkle_root, crypto::Digest{});
}

TEST_F(ReplicationFixture, ChurnReducesThenRepairRestores) {
  auto mgr = make_manager(4);
  const FileId id = mgr.store(crypto::Bytes(1000, 7));
  // Kill 7 of 10 members.
  live_.erase(live_.begin(), live_.begin() + 7);
  const std::size_t after_churn = mgr.live_replicas(id);
  EXPECT_LT(after_churn, 4u);
  mgr.refresh();
  // Only 3 members remain: replicas capped by population.
  EXPECT_EQ(mgr.live_replicas(id), 3u);
  EXPECT_GT(mgr.repair_copies(), 0u);
}

TEST_F(ReplicationFixture, FileLostWhenAllHoldersDie) {
  auto mgr = make_manager(2);
  const FileId id = mgr.store(crypto::Bytes(100, 1));
  const StoredFile* f = mgr.find(id);
  // Remove exactly the holders.
  std::erase_if(live_, [&](VehicleId v) {
    return std::find(f->holders.begin(), f->holders.end(), v.value()) !=
           f->holders.end();
  });
  EXPECT_FALSE(mgr.available(id));
  mgr.refresh();  // nothing to copy from
  EXPECT_FALSE(mgr.available(id));
}

TEST_F(ReplicationFixture, MoreReplicasSurviveMoreChurn) {
  auto low = make_manager(1);
  auto high = make_manager(5);
  std::vector<FileId> low_ids, high_ids;
  for (int i = 0; i < 30; ++i) {
    low_ids.push_back(low.store(crypto::Bytes(100, 1)));
    high_ids.push_back(high.store(crypto::Bytes(100, 1)));
  }
  // Half the population goes offline.
  live_.resize(5);
  std::size_t low_alive = 0, high_alive = 0;
  for (int i = 0; i < 30; ++i) {
    low_alive += low.available(low_ids[static_cast<std::size_t>(i)]);
    high_alive += high.available(high_ids[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(high_alive, low_alive);
}

}  // namespace
}  // namespace vcl::vcloud
