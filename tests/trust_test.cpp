#include <gtest/gtest.h>

#include "trust/classifier.h"
#include "trust/dempster_shafer.h"
#include "trust/reputation.h"
#include "trust/validators.h"

namespace vcl::trust {
namespace {

Report make_report(EventType type, geo::Vec2 loc, SimTime t, bool positive,
                   std::uint64_t credential = 1,
                   geo::Vec2 reporter_pos = {0, 0}) {
  Report r;
  r.type = type;
  r.location = loc;
  r.time = t;
  r.positive = positive;
  r.reporter_credential = credential;
  r.reporter_pos = reporter_pos;
  return r;
}

// ---- Classifier ----------------------------------------------------------------

TEST(Classifier, GroupsNearbySameTypeReports) {
  MessageClassifier c;
  std::vector<Report> reports;
  for (int i = 0; i < 5; ++i) {
    reports.push_back(make_report(EventType::kAccident,
                                  {100.0 + i * 10, 0}, i * 1.0, true));
  }
  const auto clusters = c.classify(reports);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].reports.size(), 5u);
}

TEST(Classifier, SeparatesDistantEvents) {
  MessageClassifier c;
  std::vector<Report> reports;
  reports.push_back(make_report(EventType::kAccident, {0, 0}, 0.0, true));
  reports.push_back(make_report(EventType::kAccident, {1000, 0}, 1.0, true));
  EXPECT_EQ(c.classify(reports).size(), 2u);
}

TEST(Classifier, SeparatesDifferentTypes) {
  MessageClassifier c;
  std::vector<Report> reports;
  reports.push_back(make_report(EventType::kAccident, {0, 0}, 0.0, true));
  reports.push_back(make_report(EventType::kIce, {10, 0}, 1.0, true));
  EXPECT_EQ(c.classify(reports).size(), 2u);
}

TEST(Classifier, SeparatesByTimeWindow) {
  MessageClassifier c({200.0, 15.0});
  std::vector<Report> reports;
  reports.push_back(make_report(EventType::kIce, {0, 0}, 0.0, true));
  reports.push_back(make_report(EventType::kIce, {5, 0}, 100.0, true));
  EXPECT_EQ(c.classify(reports).size(), 2u);
}

TEST(Classifier, ConflictingClaimsStayTogether) {
  // A denial of the same event clusters with the assertions — that's the
  // point: validators see the conflict.
  MessageClassifier c;
  std::vector<Report> reports;
  reports.push_back(make_report(EventType::kAccident, {0, 0}, 0.0, true));
  reports.push_back(make_report(EventType::kAccident, {20, 0}, 1.0, false));
  const auto clusters = c.classify(reports);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].reports.size(), 2u);
}

TEST(Classifier, CentroidTracksMembers) {
  MessageClassifier c;
  std::vector<Report> reports;
  reports.push_back(make_report(EventType::kIce, {0, 0}, 0.0, true));
  reports.push_back(make_report(EventType::kIce, {100, 0}, 1.0, true));
  const auto clusters = c.classify(reports);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NEAR(clusters[0].centroid.x, 50.0, 1e-9);
}

TEST(Classifier, PurityMetric) {
  EventCluster pure;
  pure.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, true));
  pure.reports.back().truth_event = EventId{1};
  pure.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, true));
  pure.reports.back().truth_event = EventId{1};
  EventCluster mixed = pure;
  mixed.reports.back().truth_event = EventId{2};
  EXPECT_DOUBLE_EQ(MessageClassifier::purity({pure}), 1.0);
  EXPECT_DOUBLE_EQ(MessageClassifier::purity({pure, mixed}), 0.5);
}

// ---- Validators -----------------------------------------------------------------

EventCluster cluster_with(int positive, int negative) {
  EventCluster c;
  c.centroid = {0, 0};
  for (int i = 0; i < positive; ++i) {
    c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, true,
                                    static_cast<std::uint64_t>(i + 1),
                                    {20, 0}));
  }
  for (int i = 0; i < negative; ++i) {
    c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, false,
                                    static_cast<std::uint64_t>(100 + i),
                                    {20, 0}));
  }
  return c;
}

TEST(MajorityVoteTest, AcceptsMajorityPositive) {
  const MajorityVote v;
  EXPECT_TRUE(v.evaluate(cluster_with(4, 1)).accepted);
  EXPECT_FALSE(v.evaluate(cluster_with(1, 4)).accepted);
  EXPECT_FALSE(v.evaluate(cluster_with(0, 0)).accepted);
}

TEST(MajorityVoteTest, TieRejects) {
  const MajorityVote v;
  EXPECT_FALSE(v.evaluate(cluster_with(2, 2)).accepted);  // 0.5 not > 0.5
}

TEST(DistanceWeightedTest, CloseWitnessesOutweighFar) {
  const DistanceWeightedVote v(100.0);
  EventCluster c;
  c.centroid = {0, 0};
  // One close positive witness vs two far negative ones.
  c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, true, 1, {5, 0}));
  c.reports.push_back(
      make_report(EventType::kIce, {0, 0}, 0, false, 2, {900, 0}));
  c.reports.push_back(
      make_report(EventType::kIce, {0, 0}, 0, false, 3, {900, 0}));
  EXPECT_TRUE(v.evaluate(c).accepted);
  const MajorityVote mv;
  EXPECT_FALSE(mv.evaluate(c).accepted);  // plain majority gets it wrong
}

TEST(BayesianTest, ConfidenceGrowsWithWitnesses) {
  const BayesianInference v(0.8);
  const double one = v.evaluate(cluster_with(1, 0)).score;
  const double three = v.evaluate(cluster_with(3, 0)).score;
  EXPECT_GT(three, one);
  EXPECT_GT(one, 0.5);
}

TEST(BayesianTest, BalancedEvidenceIsUncertain) {
  const BayesianInference v(0.8);
  EXPECT_NEAR(v.evaluate(cluster_with(2, 2)).score, 0.5, 1e-9);
}

TEST(DempsterShaferTest, MassCombination) {
  MassAssignment a{0.6, 0.0, 0.4};
  MassAssignment b{0.6, 0.0, 0.4};
  const MassAssignment c = a.combine(b);
  EXPECT_GT(c.event, 0.8);  // agreement strengthens belief
  EXPECT_NEAR(c.event + c.no_event + c.theta, 1.0, 1e-9);
}

TEST(DempsterShaferTest, ConflictReducesBelief) {
  MassAssignment a{0.6, 0.0, 0.4};
  MassAssignment b{0.0, 0.6, 0.4};
  const MassAssignment c = a.combine(b);
  EXPECT_NEAR(c.event, c.no_event, 1e-9);
}

TEST(DempsterShaferTest, ValidatorAcceptsConsensus) {
  const DempsterShafer v;
  EXPECT_TRUE(v.evaluate(cluster_with(4, 0)).accepted);
  EXPECT_FALSE(v.evaluate(cluster_with(0, 4)).accepted);
}

TEST(DempsterShaferTest, SingleWitnessLessConfidentThanBayes) {
  const DempsterShafer ds(0.5);
  const BayesianInference bayes(0.8);
  const auto c = cluster_with(1, 0);
  EXPECT_LT(ds.evaluate(c).score, bayes.evaluate(c).score);
}

// ---- Reputation ------------------------------------------------------------------

TEST(Reputation, StartsNeutral) {
  const ReputationStore store;
  EXPECT_DOUBLE_EQ(store.score(42), 0.5);
}

TEST(Reputation, LearnsFromOutcomes) {
  ReputationStore store;
  for (int i = 0; i < 10; ++i) store.record(1, true);
  for (int i = 0; i < 10; ++i) store.record(2, false);
  EXPECT_GT(store.score(1), 0.85);
  EXPECT_LT(store.score(2), 0.15);
}

TEST(Reputation, WeightedVoteFollowsReputation) {
  ReputationStore store;
  for (int i = 0; i < 10; ++i) store.record(1, true);   // trusted
  for (int i = 0; i < 10; ++i) store.record(100, false);  // liar
  const ReputationWeightedVote v(store);
  EventCluster c;
  c.centroid = {0, 0};
  // Trusted credential says yes; two known liars say no.
  c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, true, 1));
  c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, false, 100));
  c.reports.push_back(make_report(EventType::kIce, {0, 0}, 0, false, 100));
  EXPECT_TRUE(v.evaluate(c).accepted);
}

TEST(Reputation, PseudonymRotationDefeatsIt) {
  // The paper's point: fresh credentials are strangers.
  ReputationStore store;
  for (int i = 0; i < 50; ++i) store.record(7, false);  // liar under cred 7
  // The liar rotates to credential 8: reputation resets to neutral.
  EXPECT_DOUBLE_EQ(store.score(8), 0.5);
}

}  // namespace
}  // namespace vcl::trust
