// Tests for the §V extension features: result aggregation, the secure
// bootstrap protocol, and cluster split/merge tracking.
#include <gtest/gtest.h>

#include "cluster/speed_clustering.h"
#include "cluster/stability.h"
#include "core/bootstrap.h"
#include "core/scenario.h"
#include "vcloud/aggregate.h"
#include "vcloud/cloudlet.h"

namespace vcl {
namespace {

// ---- Aggregation ---------------------------------------------------------------

class AggregateFixture : public ::testing::Test {
 protected:
  AggregateFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  std::unique_ptr<vcloud::VehicularCloud> make_cloud(int members) {
    for (int i = 0; i < members; ++i) {
      traffic_.spawn_parked(LinkId{0}, 10.0 * i);
    }
    net_.refresh();
    auto cloud = std::make_unique<vcloud::VehicularCloud>(
        CloudId{1}, net_,
        vcloud::stationary_membership(traffic_, {100, 0}, 500.0),
        vcloud::fixed_region({100, 0}, 500.0),
        std::make_unique<vcloud::GreedyResourceScheduler>(),
        vcloud::CloudConfig{}, Rng(3));
    cloud->refresh();
    return cloud;
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

TEST_F(AggregateFixture, JobCompletesWhenAllPartsDo) {
  auto cloud = make_cloud(5);
  vcloud::Aggregator aggregator(*cloud);
  aggregator.attach(sim_, 1.0);
  vcloud::AggregateJobSpec spec;
  spec.total_work = 50.0;
  spec.parts = 8;
  const TaskId job = aggregator.submit(spec);
  EXPECT_EQ(aggregator.active_jobs(), 1u);
  // Keep dispatching as workers free up.
  sim_.schedule_every(1.0, [&] { cloud->refresh(); });
  sim_.run_until(300.0);
  const auto* status = aggregator.status(job);
  ASSERT_NE(status, nullptr);
  EXPECT_TRUE(status->completed);
  EXPECT_EQ(status->parts_completed, 8u);
  EXPECT_EQ(status->parts_failed, 0u);
  EXPECT_NE(status->result_root, crypto::Digest{});
  EXPECT_EQ(aggregator.active_jobs(), 0u);
}

TEST_F(AggregateFixture, JobFailsWhenPartsExpire) {
  auto cloud = make_cloud(1);
  vcloud::Aggregator aggregator(*cloud);
  aggregator.attach(sim_, 1.0);
  vcloud::AggregateJobSpec spec;
  spec.total_work = 10000.0;  // cannot finish
  spec.parts = 4;
  spec.deadline = 10.0;
  const TaskId job = aggregator.submit(spec);
  sim_.schedule_every(1.0, [&] { cloud->refresh(); });
  sim_.run_until(60.0);
  const auto* status = aggregator.status(job);
  ASSERT_NE(status, nullptr);
  EXPECT_TRUE(status->failed);
  EXPECT_FALSE(status->completed);
  EXPECT_GT(status->parts_failed, 0u);
}

TEST_F(AggregateFixture, ResultRootIsDeterministicPerCompletion) {
  auto cloud = make_cloud(4);
  vcloud::Aggregator aggregator(*cloud);
  vcloud::AggregateJobSpec spec;
  spec.total_work = 20.0;
  spec.parts = 4;
  const TaskId job = aggregator.submit(spec);
  sim_.schedule_every(1.0, [&] {
    cloud->refresh();
    aggregator.poll(sim_.now());
  });
  sim_.run_until(120.0);
  const auto* status = aggregator.status(job);
  ASSERT_TRUE(status->completed);
  const crypto::Digest root = status->result_root;
  aggregator.poll(sim_.now());  // re-polling must not change the root
  EXPECT_EQ(aggregator.status(job)->result_root, root);
}

TEST_F(AggregateFixture, MultipleConcurrentJobs) {
  auto cloud = make_cloud(6);
  vcloud::Aggregator aggregator(*cloud);
  aggregator.attach(sim_, 1.0);
  std::vector<TaskId> jobs;
  for (int i = 0; i < 3; ++i) {
    vcloud::AggregateJobSpec spec;
    spec.total_work = 30.0;
    spec.parts = 5;
    jobs.push_back(aggregator.submit(spec));
  }
  sim_.schedule_every(1.0, [&] { cloud->refresh(); });
  sim_.run_until(600.0);
  for (const TaskId job : jobs) {
    EXPECT_TRUE(aggregator.status(job)->completed);
  }
}

// ---- Bootstrap -------------------------------------------------------------------

TEST(Bootstrap, VehiclesJoinViaRsu) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 30;
  cfg.seed = 3;
  cfg.rsu_spacing = 500.0;  // full coverage
  core::Scenario scenario(cfg);
  scenario.start();
  auth::TrustedAuthority ta(1);
  core::BootstrapProtocol bootstrap(scenario.network(), ta);
  bootstrap.attach(1.0);
  scenario.run_for(20.0);
  EXPECT_GE(bootstrap.joined_count(), 25u);
  EXPECT_GT(bootstrap.via_rsu_count(), 0u);
  EXPECT_GT(bootstrap.join_latency().mean(), 0.0);
  // Joined vehicles can sign immediately.
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    if (!bootstrap.joined(v.id)) continue;
    auto* signer = bootstrap.signer(v.id);
    ASSERT_NE(signer, nullptr);
    crypto::OpCounts ops;
    const auto tag = signer->sign({1, 2}, scenario.simulator().now(), ops);
    ASSERT_TRUE(tag.has_value());
    EXPECT_TRUE(auth::PseudonymAuth::verify(ta, {1, 2}, *tag).ok);
    break;
  }
}

TEST(Bootstrap, RelayJoinWithoutInfrastructure) {
  // No RSUs: the first vehicles cannot join until someone is joined; seed
  // one vehicle manually via a temporary RSU, then remove it.
  core::ScenarioConfig cfg;
  cfg.vehicles = 30;
  cfg.seed = 4;
  core::Scenario scenario(cfg);
  scenario.start();
  auth::TrustedAuthority ta(1);
  const auto [lo, hi] = scenario.road().bounding_box();
  const RsuId seed_rsu = scenario.network().rsus().add(
      {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}, 400.0);
  core::BootstrapProtocol bootstrap(scenario.network(), ta);
  bootstrap.attach(1.0);
  scenario.run_for(10.0);
  scenario.network().rsus().set_online(seed_rsu, false);
  scenario.run_for(60.0);
  // Relay joins must have happened (seed RSU covered only the center).
  EXPECT_GT(bootstrap.via_relay_count(), 0u);
  EXPECT_GE(bootstrap.joined_count(), 15u);
}

TEST(Bootstrap, NobodyJoinsWithNoTrustPath) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 20;
  cfg.seed = 5;
  core::Scenario scenario(cfg);  // no RSUs, nobody joined
  scenario.start();
  auth::TrustedAuthority ta(1);
  core::BootstrapProtocol bootstrap(scenario.network(), ta);
  bootstrap.attach(1.0);
  scenario.run_for(30.0);
  EXPECT_EQ(bootstrap.joined_count(), 0u);
}

TEST(Bootstrap, SessionKeysAgree) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 10;
  cfg.seed = 6;
  cfg.rsu_spacing = 400.0;
  core::Scenario scenario(cfg);
  scenario.start();
  auth::TrustedAuthority ta(1);
  core::BootstrapProtocol bootstrap(scenario.network(), ta);
  bootstrap.attach(1.0);
  scenario.run_for(20.0);
  std::vector<VehicleId> joined;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    if (bootstrap.joined(v.id)) joined.push_back(v.id);
  }
  ASSERT_GE(joined.size(), 2u);
  const auto kab = bootstrap.session_key(joined[0], joined[1]);
  const auto kba = bootstrap.session_key(joined[1], joined[0]);
  ASSERT_TRUE(kab.has_value());
  ASSERT_TRUE(kba.has_value());
  EXPECT_TRUE(crypto::digest_equal(*kab, *kba));
  // Distinct pairs get distinct keys.
  if (joined.size() >= 3) {
    const auto kac = bootstrap.session_key(joined[0], joined[2]);
    EXPECT_FALSE(crypto::digest_equal(*kab, *kac));
  }
}

TEST(Bootstrap, UnjoinedHaveNoSessionKey) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 5;
  core::Scenario scenario(cfg);
  scenario.start();
  auth::TrustedAuthority ta(1);
  core::BootstrapProtocol bootstrap(scenario.network(), ta);
  EXPECT_FALSE(
      bootstrap.session_key(VehicleId{0}, VehicleId{1}).has_value());
}

// ---- Split / merge tracking ---------------------------------------------------

class SplitMergeFixture : public ::testing::Test {
 protected:
  SplitMergeFixture()
      : road_(geo::make_manhattan_grid(2, 12, 400.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

TEST_F(SplitMergeFixture, MergeDetectedWhenGroupsJoin) {
  // Two separate parked groups; then teleport group B next to group A.
  std::vector<VehicleId> group_b;
  for (double off : {0.0, 40.0, 80.0}) traffic_.spawn_parked(LinkId{0}, off);
  for (double off : {0.0, 40.0, 80.0}) {
    group_b.push_back(traffic_.spawn_parked(LinkId{8}, off));  // far away
  }
  for (int i = 0; i < 3; ++i) net_.refresh();  // tolerate beacon loss
  cluster::SpeedClustering mgr(net_);
  cluster::StabilityTracker tracker(mgr);
  mgr.update();
  tracker.observe(0.0);
  ASSERT_EQ(mgr.clusters().size(), 2u);

  // Teleport B next to A.
  for (std::size_t i = 0; i < group_b.size(); ++i) {
    auto* v = traffic_.find_mutable(group_b[i]);
    v->link = LinkId{0};
    v->offset = 120.0 + 40.0 * static_cast<double>(i);
  }
  // Refresh world positions (parked vehicles are not advanced by step()).
  traffic_.step(0.01);
  for (int i = 0; i < 3; ++i) net_.refresh();
  mgr.update();
  tracker.observe(1.0);
  EXPECT_EQ(mgr.clusters().size(), 1u);
  EXPECT_GE(tracker.merges(), 1u);
  EXPECT_EQ(tracker.splits(), 0u);
}

TEST_F(SplitMergeFixture, SplitDetectedWhenGroupSeparates) {
  std::vector<VehicleId> all;
  for (double off : {0.0, 40.0, 80.0, 120.0, 160.0, 200.0}) {
    all.push_back(traffic_.spawn_parked(LinkId{0}, off));
  }
  net_.refresh();
  cluster::SpeedClustering mgr(net_);
  cluster::StabilityTracker tracker(mgr);
  mgr.update();
  tracker.observe(0.0);
  ASSERT_EQ(mgr.clusters().size(), 1u);

  // Move half the group far away.
  for (std::size_t i = 3; i < all.size(); ++i) {
    auto* v = traffic_.find_mutable(all[i]);
    v->link = LinkId{8};
    v->offset = 40.0 * static_cast<double>(i - 3);
  }
  traffic_.step(0.01);
  for (int i = 0; i < 5; ++i) net_.refresh();  // old entries expire (ttl 3s)
  sim_.run_until(5.0);
  net_.refresh();
  mgr.update();
  tracker.observe(5.0);
  EXPECT_EQ(mgr.clusters().size(), 2u);
  EXPECT_GE(tracker.splits() + tracker.merges(), 1u);
}

TEST_F(SplitMergeFixture, StableSceneHasNoEvents) {
  for (double off : {0.0, 40.0, 80.0}) traffic_.spawn_parked(LinkId{0}, off);
  net_.refresh();
  cluster::SpeedClustering mgr(net_);
  cluster::StabilityTracker tracker(mgr);
  for (int round = 0; round < 10; ++round) {
    net_.refresh();
    mgr.update();
    tracker.observe(static_cast<double>(round));
  }
  EXPECT_EQ(tracker.merges(), 0u);
  EXPECT_EQ(tracker.splits(), 0u);
}

// ---- Cloudlets ---------------------------------------------------------------

class CloudletFixture : public ::testing::Test {
 protected:
  CloudletFixture() {
    core::ScenarioConfig cfg;
    cfg.vehicles = 50;
    cfg.seed = 8;
    cfg.rsu_spacing = 600.0;
    cfg.rsu_range = 350.0;  // partial coverage: some vehicles uncovered
    scenario_ = std::make_unique<core::Scenario>(cfg);
    scenario_->start();
    grid_ = std::make_unique<vcloud::CloudletGrid>(
        scenario_->network(), vcloud::CloudletConfig{},
        scenario_->fork_rng(44));
    grid_->attach();
  }
  std::unique_ptr<core::Scenario> scenario_;
  std::unique_ptr<vcloud::CloudletGrid> grid_;
};

TEST_F(CloudletFixture, OneCloudPerRsu) {
  EXPECT_EQ(grid_->cloudlets().size(),
            scenario_->network().rsus().count());
}

TEST_F(CloudletFixture, CoveredVehiclesGetLocalCloudlet) {
  scenario_->run_for(2.0);
  std::size_t covered = 0;
  for (const auto& [vid, v] : scenario_->traffic().vehicles()) {
    if (grid_->cloudlet_for(v.id) != nullptr) ++covered;
  }
  EXPECT_GT(covered, 0u);
}

TEST_F(CloudletFixture, SubmitPrefersLocalFallsBackToCentral) {
  scenario_->run_for(2.0);
  std::size_t local = 0;
  std::size_t central = 0;
  for (const auto& [vid, v] : scenario_->traffic().vehicles()) {
    vcloud::Task t;
    t.work = 2.0;
    const auto result = grid_->submit(v.id, std::move(t));
    (result.to_central ? central : local) += 1;
  }
  EXPECT_GT(local, 0u);
  EXPECT_GT(central, 0u);  // partial coverage forces some central offloads
  scenario_->run_for(120.0);
  EXPECT_GT(grid_->cloudlet_completed(), 0u);
  EXPECT_EQ(grid_->central().completed, grid_->central().submitted);
  // Central latency includes the WAN round trip.
  EXPECT_GE(grid_->central().latency.min(), 0.08);
}

TEST_F(CloudletFixture, RoamingCountsHandoffsNotAttaches) {
  scenario_->run_for(120.0);
  // Moving vehicles crossing 600 m-spaced cloudlets must hand off.
  EXPECT_GT(grid_->handoffs(), 0u);
}

TEST_F(CloudletFixture, CentralMeetsDeadlinesItCanMeet) {
  scenario_->run_for(2.0);
  // Find an uncovered vehicle for a central submission with a deadline.
  VehicleId uncovered;
  for (const auto& [vid, v] : scenario_->traffic().vehicles()) {
    if (grid_->cloudlet_for(v.id) == nullptr) {
      uncovered = v.id;
      break;
    }
  }
  if (!uncovered.valid()) GTEST_SKIP() << "full coverage this seed";
  vcloud::Task ok;
  ok.work = 1.0;
  ok.deadline = scenario_->simulator().now() + 30.0;
  ASSERT_TRUE(grid_->submit(uncovered, std::move(ok)).to_central);
  vcloud::Task impossible;
  impossible.work = 1.0;
  impossible.deadline = scenario_->simulator().now() + 0.01;  // < WAN RTT
  ASSERT_TRUE(grid_->submit(uncovered, std::move(impossible)).to_central);
  scenario_->run_for(40.0);
  EXPECT_EQ(grid_->central().completed, 1u);  // the impossible one expired
}

}  // namespace
}  // namespace vcl
