#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mobility/idm.h"
#include "mobility/traffic.h"
#include "mobility/trip_generator.h"
#include "sim/simulator.h"

namespace vcl::mobility {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Idm, FreeRoadAcceleratesTowardDesiredSpeed) {
  IdmParams p;
  p.desired_speed = 30.0;
  EXPECT_GT(idm_acceleration(10.0, 0.0, kInf, p), 0.0);
  EXPECT_NEAR(idm_acceleration(30.0, 0.0, kInf, p), 0.0, 1e-9);
  EXPECT_LT(idm_acceleration(35.0, 0.0, kInf, p), 0.0);
}

TEST(Idm, BrakesWhenGapSmall) {
  IdmParams p;
  EXPECT_LT(idm_acceleration(20.0, 0.0, 3.0, p), -1.0);
}

TEST(Idm, DecelerationIsBounded) {
  IdmParams p;
  const double a = idm_acceleration(40.0, 40.0, 0.1, p);
  EXPECT_GE(a, -3.0 * p.comfort_decel - 1e-9);
}

// Property sweep: across speeds/gaps, acceleration stays within the
// physical envelope.
class IdmEnvelope : public ::testing::TestWithParam<double> {};

TEST_P(IdmEnvelope, AccelWithinBounds) {
  IdmParams p;
  const double speed = GetParam();
  for (double gap = 0.5; gap < 200.0; gap *= 2) {
    for (double approach = -10.0; approach <= 20.0; approach += 5.0) {
      const double a = idm_acceleration(speed, approach, gap, p);
      EXPECT_LE(a, p.max_accel + 1e-9);
      EXPECT_GE(a, -3.0 * p.comfort_decel - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, IdmEnvelope,
                         ::testing::Values(0.0, 5.0, 15.0, 30.0, 45.0));

class TrafficFixture : public ::testing::Test {
 protected:
  TrafficFixture()
      : net_(geo::make_manhattan_grid(4, 4, 200.0)),
        traffic_(net_, Rng(42)) {}

  geo::RoadNetwork net_;
  TrafficModel traffic_;
};

TEST_F(TrafficFixture, SpawnPlacesVehicleAtRouteStart) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{15});
  ASSERT_TRUE(path);
  const VehicleId id = traffic_.spawn(*path, 10.0);
  const VehicleState* v = traffic_.find(id);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->link, path->front());
  EXPECT_DOUBLE_EQ(v->offset, 0.0);
  EXPECT_DOUBLE_EQ(v->speed, 10.0);
}

TEST_F(TrafficFixture, StepAdvancesVehicle) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{15});
  const VehicleId id = traffic_.spawn(*path, 10.0);
  traffic_.step(1.0);
  const VehicleState* v = traffic_.find(id);
  ASSERT_NE(v, nullptr);
  EXPECT_GT(v->offset, 5.0);  // moved roughly speed * dt
}

TEST_F(TrafficFixture, VehicleCrossesLinkBoundaries) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{15});
  const VehicleId id = traffic_.spawn(*path, 13.0);
  for (int i = 0; i < 300; ++i) traffic_.step(0.5);
  // After 150 s at ~13 m/s the vehicle passed several 200 m links (or
  // finished the trip and was despawned — also evidence of link crossing).
  const VehicleState* v = traffic_.find(id);
  if (v != nullptr) {
    EXPECT_GT(v->route_index, 0u);
  } else {
    SUCCEED();
  }
}

TEST_F(TrafficFixture, ArrivedVehicleDespawnsWithoutHandler) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{1});  // one link
  const VehicleId id = traffic_.spawn(*path, 15.0);
  for (int i = 0; i < 100; ++i) traffic_.step(0.5);
  EXPECT_EQ(traffic_.find(id), nullptr);
}

TEST_F(TrafficFixture, ArrivalHandlerKeepsVehicleAlive) {
  traffic_.set_arrival_handler(
      [this](const VehicleState& v) -> std::optional<std::vector<LinkId>> {
        const NodeId end = net_.link(v.link).to;
        // Bounce back along any outgoing link.
        return std::vector<LinkId>{net_.node(end).out_links.front()};
      });
  const auto path = net_.shortest_path(NodeId{0}, NodeId{1});
  const VehicleId id = traffic_.spawn(*path, 15.0);
  for (int i = 0; i < 200; ++i) traffic_.step(0.5);
  EXPECT_NE(traffic_.find(id), nullptr);
}

TEST_F(TrafficFixture, ParkedVehicleDoesNotMove) {
  const VehicleId id = traffic_.spawn_parked(LinkId{0}, 50.0);
  const geo::Vec2 before = traffic_.find(id)->pos;
  for (int i = 0; i < 50; ++i) traffic_.step(0.5);
  const VehicleState* v = traffic_.find(id);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->pos, before);
  EXPECT_TRUE(v->parked);
}

TEST_F(TrafficFixture, FollowerNeverOvertakesLeaderOnLane) {
  // Leader crawls; follower starts fast behind it.
  const auto path = net_.shortest_path(NodeId{0}, NodeId{3});
  ASSERT_TRUE(path);
  const VehicleId leader = traffic_.spawn(*path, 1.0, {}, 0.1);
  VehicleState* lv = traffic_.find_mutable(leader);
  lv->offset = 60.0;
  const VehicleId follower = traffic_.spawn(*path, 20.0);
  for (int i = 0; i < 200; ++i) {
    traffic_.step(0.1);
    const VehicleState* l = traffic_.find(leader);
    const VehicleState* f = traffic_.find(follower);
    if (l == nullptr || f == nullptr) break;
    if (l->link == f->link && l->lane == f->lane) {
      EXPECT_GE(l->offset - f->offset, 0.0)
          << "follower overtook leader in-lane at step " << i;
    }
  }
}

TEST_F(TrafficFixture, WorldFramePositionsOnNetwork) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{15});
  const VehicleId id = traffic_.spawn(*path, 10.0);
  traffic_.step(0.5);
  const VehicleState* v = traffic_.find(id);
  const auto [lo, hi] = net_.bounding_box();
  EXPECT_GE(v->pos.x, lo.x - 10);
  EXPECT_LE(v->pos.x, hi.x + 10);
}

TEST_F(TrafficFixture, DwellPredictionFiniteForExitingVehicle) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{3});
  const VehicleId id = traffic_.spawn(*path, 10.0);
  // Disc around the start; the route exits it.
  const double t = traffic_.predict_time_to_exit(id, {0, 0}, 150.0);
  EXPECT_TRUE(std::isfinite(t));
  // Roughly 150 m at 10 m/s.
  EXPECT_NEAR(t, 15.0, 5.0);
}

TEST_F(TrafficFixture, DwellPredictionInfiniteForParked) {
  const VehicleId id = traffic_.spawn_parked(LinkId{0}, 10.0);
  EXPECT_TRUE(std::isinf(traffic_.predict_time_to_exit(id, {0, 0}, 500.0)));
}

TEST_F(TrafficFixture, OracleUsesSpeedLimits) {
  const auto path = net_.shortest_path(NodeId{0}, NodeId{3});
  const VehicleId id = traffic_.spawn(*path, 2.0);  // crawling now
  const double est = traffic_.predict_time_to_exit(id, {0, 0}, 150.0);
  const double oracle = traffic_.oracle_time_to_exit(id, {0, 0}, 150.0);
  // Oracle assumes the vehicle will speed up to the limit, so exits sooner.
  EXPECT_LT(oracle, est);
}

TEST(TripGenerator, PrefillReachesTarget) {
  const auto net = geo::make_manhattan_grid(5, 5, 150.0);
  TrafficModel traffic(net, Rng(1));
  TripGeneratorConfig cfg;
  cfg.target_population = 40;
  TripGenerator gen(traffic, cfg, Rng(2));
  gen.prefill();
  EXPECT_EQ(traffic.vehicle_count(), 40u);
}

TEST(TripGenerator, KeepAliveMaintainsPopulation) {
  const auto net = geo::make_manhattan_grid(5, 5, 150.0);
  TrafficModel traffic(net, Rng(1));
  TripGeneratorConfig cfg;
  cfg.target_population = 30;
  TripGenerator gen(traffic, cfg, Rng(2));
  sim::Simulator sim;
  traffic.attach(sim, 0.1);
  gen.attach(sim);
  gen.prefill();
  sim.run_until(120.0);
  EXPECT_GE(traffic.vehicle_count(), 25u);
  EXPECT_LE(traffic.vehicle_count(), 31u);
}

TEST(TripGenerator, RoutesAreConnected) {
  const auto net = geo::make_manhattan_grid(5, 5, 150.0);
  TrafficModel traffic(net, Rng(1));
  TripGenerator gen(traffic, {}, Rng(3));
  for (int i = 0; i < 20; ++i) {
    const auto route = gen.random_route();
    ASSERT_FALSE(route.empty());
    for (std::size_t j = 0; j + 1 < route.size(); ++j) {
      EXPECT_EQ(net.link(route[j]).to, net.link(route[j + 1]).from);
    }
  }
}

}  // namespace
}  // namespace vcl::mobility
