#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "exp/campaign.h"
#include "exp/replicator.h"
#include "exp/sweep.h"
#include "exp/thread_pool.h"
#include "util/rng.h"

namespace vcl::exp {
namespace {

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    futures.reserve(100);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([&count] { ++count; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(pool.stats().executed, 100u);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { ++count; });
    }
    // No get(): the destructor must still run everything before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExceptionReachesFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] {});
  EXPECT_NO_THROW(good.get());
  EXPECT_EQ(pool.stats().executed, 2u);
}

TEST(ThreadPool, IdleWorkerStealsFromBlockedPeer) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  // One worker parks on the blocker; once it has STARTED, later tasks
  // round-robin into both deques and the free worker must steal the blocked
  // worker's share. (Without the started-gate the blocked worker could drain
  // its own deque first and no steal would ever happen.)
  auto blocker = pool.submit([gate, &started] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 10);
  EXPECT_GE(pool.stats().stolen, 1u);
  release.set_value();
  blocker.get();
}

TEST(ThreadPool, BoundedQueueBlocksSubmitUntilSpaceFrees) {
  ThreadPool pool(1, /*queue_capacity=*/2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });
  std::atomic<int> count{0};
  // Submitted from a helper thread because submit() must block once two
  // tasks are pending behind the gated worker.
  std::thread submitter([&] {
    for (int i = 0; i < 8; ++i) pool.submit([&count] { ++count; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LT(count.load(), 8);  // the queue bound throttled the submitter
  release.set_value();
  submitter.join();
  blocker.get();
  // Destructor drains the rest.
  while (count.load() < 8) std::this_thread::yield();
  EXPECT_EQ(count.load(), 8);
}

// ---- Seed derivation ------------------------------------------------------

TEST(RepSeed, RepZeroKeepsBaseSeed) {
  EXPECT_EQ(rep_seed(1234, 0), 1234u);
  EXPECT_EQ(rep_seed(0, 0), 0u);
}

TEST(RepSeed, MatchesRngForkDerivation) {
  for (const std::uint64_t base : {5ULL, 44ULL, 1234ULL}) {
    for (std::size_t r = 1; r < 5; ++r) {
      EXPECT_EQ(rep_seed(base, r), Rng(base).fork(r).seed());
    }
  }
}

TEST(RepSeed, DistinctAcrossReps) {
  std::set<std::uint64_t> seen;
  for (std::size_t r = 0; r < 64; ++r) seen.insert(rep_seed(11, r));
  EXPECT_EQ(seen.size(), 64u);
}

// ---- replicate ------------------------------------------------------------

RepReport stochastic_rep(const RepContext& ctx) {
  Rng rng(ctx.seed);
  RepReport rep;
  for (int i = 0; i < 16; ++i) rep.dist("x").add(rng.uniform());
  rep.value("rep_index", static_cast<double>(ctx.rep));
  return rep;
}

TEST(Replicate, AggregateBitIdenticalAcrossJobCounts) {
  ReplicateOptions serial{/*reps=*/8, /*jobs=*/1, /*base_seed=*/99, /*out_dir=*/{}};
  ReplicateOptions parallel{/*reps=*/8, /*jobs=*/8, /*base_seed=*/99, /*out_dir=*/{}};
  const auto a = replicate(serial, stochastic_rep);
  const auto b = replicate(parallel, stochastic_rep);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, sa] : a) {
    const Summary& sb = b.at(name);
    EXPECT_EQ(sa.n(), sb.n());
    EXPECT_EQ(sa.mean(), sb.mean());      // bit-identical, not just close
    EXPECT_EQ(sa.stddev(), sb.stddev());
    EXPECT_EQ(sa.ci95(), sb.ci95());
    EXPECT_EQ(sa.pooled.count(), sb.pooled.count());
    EXPECT_EQ(sa.pooled.mean(), sb.pooled.mean());
    EXPECT_EQ(sa.pooled.percentile(95), sb.pooled.percentile(95));
  }
}

RepReport tailed_rep(const RepContext& ctx) {
  Rng rng(ctx.seed);
  RepReport rep;
  auto& t = rep.tail("latency");
  for (int i = 0; i < 200; ++i) t.add(std::exp(rng.normal(-3.0, 1.5)));
  rep.value("rep_index", static_cast<double>(ctx.rep));
  return rep;
}

TEST(Replicate, TailSketchesBitIdenticalAcrossJobCounts) {
  // Tail sketches fold in fixed rep order regardless of which worker
  // finished first, and bucket-count merges are exact — so every quantile
  // (and even the order-sensitive sum) is bit-identical for any --jobs.
  ReplicateOptions serial{/*reps=*/8, /*jobs=*/1, /*base_seed=*/99, /*out_dir=*/{}};
  ReplicateOptions parallel{/*reps=*/8, /*jobs=*/8, /*base_seed=*/99, /*out_dir=*/{}};
  const auto a = replicate(serial, tailed_rep);
  const auto b = replicate(parallel, tailed_rep);
  const Summary& sa = a.at("latency");
  const Summary& sb = b.at("latency");
  ASSERT_TRUE(sa.has_tail);
  ASSERT_TRUE(sb.has_tail);
  EXPECT_EQ(sa.tail.count(), sb.tail.count());
  EXPECT_EQ(sa.tail.count(), 8u * 200u);
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(sa.tail.quantile(q), sb.tail.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(sa.tail.sum(), sb.tail.sum());
  EXPECT_EQ(sa.tail.min(), sb.tail.min());
}

TEST(Replicate, RepZeroSeesBaseSeedAndOthersDiffer) {
  ReplicateOptions opts{/*reps=*/4, /*jobs=*/1, /*base_seed=*/77, /*out_dir=*/{}};
  std::vector<std::uint64_t> seeds(4, 0);
  replicate(opts, [&](const RepContext& ctx) {
    seeds[ctx.rep] = ctx.seed;
    RepReport rep;
    rep.value("x", 0.0);
    return rep;
  });
  EXPECT_EQ(seeds[0], 77u);
  for (std::size_t r = 1; r < 4; ++r) EXPECT_NE(seeds[r], 77u);
}

TEST(Replicate, SummaryCi95MatchesHandComputation) {
  ReplicateOptions opts{/*reps=*/4, /*jobs=*/1, /*base_seed=*/0, /*out_dir=*/{}};
  const auto summary = replicate(opts, [](const RepContext& ctx) {
    RepReport rep;
    rep.value("v", static_cast<double>(ctx.rep));  // 0, 1, 2, 3
    return rep;
  });
  const Summary& s = summary.at("v");
  EXPECT_EQ(s.n(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  const double stddev = std::sqrt(5.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), stddev);
  EXPECT_DOUBLE_EQ(s.ci95(), student_t95(3) * stddev / 2.0);
}

TEST(Replicate, PooledMergesWithinRunDistributions) {
  ReplicateOptions opts{/*reps=*/3, /*jobs=*/1, /*base_seed=*/0, /*out_dir=*/{}};
  const auto summary = replicate(opts, [](const RepContext& ctx) {
    RepReport rep;
    auto& d = rep.dist("x");
    d.add(static_cast<double>(ctx.rep));
    d.add(static_cast<double>(ctx.rep) + 10.0);
    return rep;
  });
  const Summary& s = summary.at("x");
  EXPECT_EQ(s.n(), 3u);           // one mean per replication
  EXPECT_EQ(s.pooled.count(), 6u);  // every sample pooled
  EXPECT_DOUBLE_EQ(s.pooled.max(), 12.0);
}

TEST(Replicate, FirstExceptionInRepOrderIsRethrown) {
  for (const std::size_t jobs : {1UL, 4UL}) {
    ReplicateOptions opts{/*reps=*/6, /*jobs=*/jobs, /*base_seed=*/0, /*out_dir=*/{}};
    try {
      replicate(opts, [](const RepContext& ctx) -> RepReport {
        if (ctx.rep == 2 || ctx.rep == 4) {
          throw std::runtime_error("rep " + std::to_string(ctx.rep));
        }
        return {};
      });
      FAIL() << "replicate() should have rethrown (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rep 2") << "jobs=" << jobs;
    }
  }
}

TEST(Replicate, OutDirCreatesOneDirectoryPerReplication) {
  // The per-replication telemetry export path: rep k gets
  // "<out_dir>/rep<k>", pre-created before any parallel dispatch so the
  // replication fn can write into it without filesystem races.
  const std::string root =
      ::testing::TempDir() + "vcl_replicate_out/deep/tree";
  ReplicateOptions opts{/*reps=*/3, /*jobs=*/2, /*base_seed=*/5, root};
  replicate(opts, [](const RepContext& ctx) {
    EXPECT_FALSE(ctx.out_dir.empty());
    std::ofstream(ctx.out_dir + "/marker.txt") << ctx.rep << "\n";
    RepReport rep;
    rep.value("x", 0.0);
    return rep;
  });
  for (std::size_t r = 0; r < 3; ++r) {
    const std::string dir = root + "/rep" + std::to_string(r);
    EXPECT_TRUE(std::filesystem::is_directory(dir)) << dir;
    EXPECT_TRUE(std::filesystem::exists(dir + "/marker.txt")) << dir;
  }
  EXPECT_FALSE(std::filesystem::exists(root + "/rep3"));
}

TEST(Replicate, EmptyOutDirLeavesContextsPathless) {
  ReplicateOptions opts{/*reps=*/2, /*jobs=*/1, /*base_seed=*/5,
                        /*out_dir=*/{}};
  replicate(opts, [](const RepContext& ctx) {
    EXPECT_TRUE(ctx.out_dir.empty());
    RepReport rep;
    rep.value("x", 0.0);
    return rep;
  });
}

// ---- Sweep ----------------------------------------------------------------

struct ToyConfig {
  int value = 0;
  std::string tag;
};

TEST(Sweep, CartesianGridFirstAxisSlowest) {
  Sweep<ToyConfig> sweep;
  sweep.axis("a")
      .point("a0", [](ToyConfig&) {})
      .point("a1", [](ToyConfig&) {});
  sweep.axis("b")
      .point("b0", [](ToyConfig&) {})
      .point("b1", [](ToyConfig&) {})
      .point("b2", [](ToyConfig&) {});
  const auto cells = sweep.cells();
  ASSERT_EQ(cells.size(), 6u);
  const std::vector<std::string> expect = {"a0/b0", "a0/b1", "a0/b2",
                                           "a1/b0", "a1/b1", "a1/b2"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].label(), expect[i]);
  }
}

TEST(Sweep, MutatorsApplyInAxisOrder) {
  Sweep<ToyConfig> sweep;
  sweep.axis("set").point("five", [](ToyConfig& c) { c.value = 5; });
  sweep.axis("scale").point("x3", [](ToyConfig& c) { c.value *= 3; });
  const auto cells = sweep.cells();
  ASSERT_EQ(cells.size(), 1u);
  ToyConfig base;
  base.value = 1;
  const ToyConfig made = cells[0].make(base);
  EXPECT_EQ(made.value, 15);  // set THEN scale, never the reverse
  EXPECT_EQ(base.value, 1);   // make() copies; the base is untouched
}

TEST(Sweep, EmptySweepHasNoCells) {
  Sweep<ToyConfig> sweep;
  EXPECT_TRUE(sweep.cells().empty());
}

// ---- Campaign -------------------------------------------------------------

// argv helper: Campaign scans a mutable char** like main() receives.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(Campaign, ParsesRepsAndJobsFlags) {
  Argv args({"bench", "--reps", "4", "--jobs", "2"});
  Campaign campaign("bench", args.argc(), args.argv());
  EXPECT_EQ(campaign.reps(), 4u);
  EXPECT_EQ(campaign.jobs(), 2u);
}

TEST(Campaign, DefaultsToSingleRepAndClampsZeroReps) {
  Argv plain({"bench"});
  Campaign a("bench", plain.argc(), plain.argv());
  EXPECT_EQ(a.reps(), 1u);
  EXPECT_EQ(a.jobs(), 1u);

  Argv zero({"bench", "--reps", "0"});
  Campaign b("bench", zero.argc(), zero.argv());
  EXPECT_EQ(b.reps(), 1u);
}

TEST(Campaign, SingleRepJsonMatchesPlainReporterOutput) {
  // The compatibility contract: at --reps 1 a stat cell is indistinguishable
  // from the plain cell the pre-engine benches emitted.
  Argv args({"bench"});
  Campaign campaign("bench", args.argc(), args.argv());
  const auto summary = campaign.replicate(7, [](const RepContext&) {
    RepReport rep;
    rep.value("m", 2.5);
    return rep;
  });
  campaign.emit("t", {"label", "m"},
                {{Cell("row"), Cell(summary.at("m"), 1)}});

  Argv plain_args({"bench"});
  obs::BenchReporter plain("bench", plain_args.argc(), plain_args.argv());
  Table table("t", {"label", "m"});
  table.add_row({"row", Table::num(2.5, 1)});
  plain.add(table);

  const auto tables_part = [](const std::string& json) {
    return json.substr(json.find("\"tables\""));
  };
  EXPECT_EQ(tables_part(campaign.reporter().to_json()),
            tables_part(plain.to_json()));
}

TEST(Campaign, ReplicatedCellsCarryStatsInJson) {
  Argv args({"bench", "--reps", "3"});
  Campaign campaign("bench", args.argc(), args.argv());
  const auto summary = campaign.replicate(7, [](const RepContext& ctx) {
    RepReport rep;
    rep.value("m", static_cast<double>(ctx.rep));
    return rep;
  });
  campaign.emit("t", {"label", "m"},
                {{Cell("row"), Cell(summary.at("m"), 2)}});
  const std::string json = campaign.reporter().to_json();
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"ci95\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":3"), std::string::npos);
  EXPECT_NE(json.find("\"reps\":3"), std::string::npos);
}

TEST(Campaign, TelemetryDirRoutesEachReplicateCallToItsOwnCell) {
  const std::string root = ::testing::TempDir() + "vcl_campaign_tel";
  Argv args({"bench", "--reps", "2", "--telemetry-dir", root});
  Campaign campaign("bench", args.argc(), args.argv());
  EXPECT_EQ(campaign.telemetry_dir(), root);

  std::vector<std::string> seen;
  auto rep_fn = [&seen](const RepContext& ctx) {
    seen.push_back(ctx.out_dir);
    RepReport rep;
    rep.value("x", 0.0);
    return rep;
  };
  campaign.replicate(1, rep_fn);  // sweep cell 0
  campaign.replicate(2, rep_fn);  // sweep cell 1
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], root + "/cell0/rep0");
  EXPECT_EQ(seen[1], root + "/cell0/rep1");
  EXPECT_EQ(seen[2], root + "/cell1/rep0");
  EXPECT_EQ(seen[3], root + "/cell1/rep1");
  for (const auto& dir : seen) {
    EXPECT_TRUE(std::filesystem::is_directory(dir)) << dir;
  }
}

TEST(Campaign, WithoutTelemetryDirReplicationsStayPathless) {
  Argv args({"bench", "--reps", "2"});
  Campaign campaign("bench", args.argc(), args.argv());
  EXPECT_TRUE(campaign.telemetry_dir().empty());
  campaign.replicate(1, [](const RepContext& ctx) {
    EXPECT_TRUE(ctx.out_dir.empty());
    RepReport rep;
    rep.value("x", 0.0);
    return rep;
  });
}

// ---- End-to-end determinism on the real system ----------------------------

// The acceptance property behind `bench --reps N --jobs J`: the emitted JSON
// document (modulo the wall_s scalar) is byte-identical for any job count,
// because replication seeds depend only on the rep index and reduction runs
// in replication order.
std::string run_mini_campaign(std::size_t jobs) {
  Argv args({"bench", "--reps", "6", "--jobs", std::to_string(jobs)});
  Campaign campaign("mini", args.argc(), args.argv());
  const auto summary = campaign.replicate(21, [](const RepContext& ctx) {
    core::SystemConfig cfg;
    cfg.scenario.vehicles = 15;
    cfg.scenario.seed = ctx.seed;
    core::VehicularCloudSystem system(cfg);
    system.start();
    vcloud::WorkloadGenerator workload({4.0, 1.0, 0.2, 30.0},
                                       system.scenario().fork_rng(9));
    auto& sim = system.scenario().simulator();
    sim.schedule_every(2.0, [&] {
      system.cloud().submit(workload.next(sim.now()));
    });
    system.run_for(40.0);
    const auto& st = system.cloud().stats();
    RepReport rep;
    rep.value("completed", static_cast<double>(st.completed));
    rep.value("members", static_cast<double>(system.cloud().member_count()));
    rep.value("latency", st.latency.mean());
    return rep;
  });
  campaign.emit("mini", {"completed", "members", "latency"},
                {{Cell(summary.at("completed"), 1),
                  Cell(summary.at("members"), 1),
                  Cell(summary.at("latency"), 3)}});
  const std::string json = campaign.reporter().to_json();
  return json.substr(json.find("\"tables\""));  // strips the wall_s scalar
}

TEST(Campaign, RealSystemJsonByteIdenticalForAnyJobCount) {
  const std::string serial = run_mini_campaign(1);
  const std::string parallel = run_mini_campaign(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace vcl::exp
