#include <gtest/gtest.h>

#include "mobility/traffic.h"
#include "net/channel.h"
#include "net/network.h"
#include "net/rsu.h"
#include "sim/simulator.h"

namespace vcl::net {
namespace {

TEST(Channel, PerfectAtShortRange) {
  const Channel ch;
  const double p = ch.reception_probability({0, 0}, {50, 0}, 0);
  EXPECT_GT(p, 0.9);
}

TEST(Channel, ZeroBeyondMaxRange) {
  const Channel ch;
  EXPECT_DOUBLE_EQ(ch.reception_probability({0, 0}, {301, 0}, 0), 0.0);
}

TEST(Channel, MonotoneInDistance) {
  const Channel ch;
  double prev = 1.0;
  for (double d = 10; d <= 300; d += 10) {
    const double p = ch.reception_probability({0, 0}, {d, 0}, 0);
    EXPECT_LE(p, prev + 1e-12) << "at distance " << d;
    prev = p;
  }
}

TEST(Channel, DensityErodesReception) {
  const Channel ch;
  const double quiet = ch.reception_probability({0, 0}, {100, 0}, 0);
  const double busy = ch.reception_probability({0, 0}, {100, 0}, 100);
  EXPECT_LT(busy, quiet);
}

TEST(Channel, HopDelayGrowsWithSizeAndDensity) {
  const Channel ch;
  EXPECT_LT(ch.hop_delay(100, 0), ch.hop_delay(10000, 0));
  EXPECT_LT(ch.hop_delay(100, 0), ch.hop_delay(100, 50));
  EXPECT_GT(ch.hop_delay(100, 0), 0.0);
}

TEST(Channel, AttemptRespectsCutoff) {
  const Channel ch;
  Rng rng(1);
  const ReceptionResult r = ch.attempt({0, 0}, {500, 0}, 100, 0, rng);
  EXPECT_FALSE(r.received);
}

TEST(RsuField, CoveringPicksNearestOnline) {
  RsuField field;
  const RsuId a = field.add({0, 0}, 300);
  const RsuId b = field.add({400, 0}, 300);
  const Rsu* r = field.covering({350, 0});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, b);
  field.set_online(b, false);
  r = field.covering({350, 0});
  // a is 350 m away with 300 m range: uncovered now.
  EXPECT_EQ(r, nullptr);
  (void)a;
}

TEST(RsuField, FailAllAndRestore) {
  RsuField field;
  field.add({0, 0});
  field.add({100, 0});
  EXPECT_EQ(field.online_count(), 2u);
  field.fail_all();
  EXPECT_EQ(field.online_count(), 0u);
  EXPECT_EQ(field.covering({0, 0}), nullptr);
  field.restore_all();
  EXPECT_EQ(field.online_count(), 2u);
}

TEST(RsuField, PlaceGridCoversBoundingBox) {
  const auto net = geo::make_manhattan_grid(3, 3, 500.0);
  RsuField field;
  field.place_grid(net, 500.0, 400.0);
  EXPECT_EQ(field.count(), 9u);  // 3x3 grid of RSUs
}

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, ChannelConfig{}, Rng(2)) {}

  // Parks a vehicle at a fixed world position (via link 0 offsets).
  VehicleId park_at(double offset) {
    return traffic_.spawn_parked(LinkId{0}, offset);
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  Network net_;
};

TEST_F(NetworkFixture, UnicastDeliversInRange) {
  const VehicleId a = park_at(0.0);
  const VehicleId b = park_at(100.0);
  net_.refresh();
  int received = 0;
  net_.set_handler(Address::vehicle(b), [&](const Message& m) {
    ++received;
    EXPECT_EQ(m.src, Address::vehicle(a));
    EXPECT_EQ(m.hops, 1);
  });
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::vehicle(b);
  EXPECT_TRUE(net_.send(msg));
  sim_.run_until(1.0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net_.stats().unicast_delivered, 1u);
}

TEST_F(NetworkFixture, UnicastFailsOutOfRange) {
  const VehicleId a = park_at(0.0);
  // 200 m links: offset on a far link. Use grid node distances: put the
  // second vehicle on the opposite corner link (distance >> 300 m).
  const VehicleId b = traffic_.spawn_parked(LinkId{road_.link_count() - 1},
                                            100.0);
  net_.refresh();
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::vehicle(b);
  EXPECT_FALSE(net_.send(msg));
  EXPECT_EQ(net_.stats().dropped, 1u);
}

TEST_F(NetworkFixture, SendViaPreservesFinalDestination) {
  const VehicleId a = park_at(0.0);
  const VehicleId relay = park_at(150.0);
  const VehicleId b = park_at(190.0);
  net_.refresh();
  Address seen_dst;
  net_.set_handler(Address::vehicle(relay), [&](const Message& m) {
    seen_dst = m.dst;
  });
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::vehicle(b);  // final destination
  EXPECT_TRUE(net_.send_via(msg, Address::vehicle(relay)));
  sim_.run_until(1.0);
  EXPECT_EQ(seen_dst, Address::vehicle(b));
}

TEST_F(NetworkFixture, BroadcastReachesNeighbors) {
  const VehicleId a = park_at(100.0);
  park_at(0.0);
  park_at(180.0);
  net_.refresh();
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::broadcast();
  const std::size_t reached = net_.broadcast(msg);
  EXPECT_EQ(reached, 2u);
}

TEST_F(NetworkFixture, DefaultVehicleHandlerReceives) {
  const VehicleId a = park_at(0.0);
  const VehicleId b = park_at(120.0);
  net_.refresh();
  VehicleId handled;
  net_.set_default_vehicle_handler(
      [&](VehicleId self, const Message&) { handled = self; });
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::vehicle(b);
  EXPECT_TRUE(net_.send(msg));
  sim_.run_until(1.0);
  EXPECT_EQ(handled, b);
}

TEST_F(NetworkFixture, BeaconsFillNeighborTables) {
  const VehicleId a = park_at(0.0);
  const VehicleId b = park_at(150.0);
  net_.start_beacons(1.0);
  sim_.run_until(2.5);
  const auto& na = net_.neighbors(a);
  ASSERT_EQ(na.size(), 1u);
  EXPECT_EQ(na[0].id, b);
  EXPECT_GT(na[0].last_heard, 0.0);
}

TEST_F(NetworkFixture, RsuCoversVehicle) {
  const VehicleId a = park_at(50.0);
  net_.rsus().add({60.0, 0.0}, 500.0);
  net_.refresh();
  EXPECT_NE(net_.reachable_rsu(a), nullptr);
  net_.rsus().fail_all();
  EXPECT_EQ(net_.reachable_rsu(a), nullptr);
}

TEST_F(NetworkFixture, VehicleToRsuUnicastUsesRsuRange) {
  const VehicleId a = park_at(0.0);
  const RsuId r = net_.rsus().add({450.0, 0.0}, 1200.0);
  net_.refresh();
  int received = 0;
  net_.set_handler(Address::rsu(r), [&](const Message&) { ++received; });
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::vehicle(a);
  msg.dst = Address::rsu(r);
  // 450 m exceeds vehicle range (300) but sits well inside the RSU's reach.
  EXPECT_TRUE(net_.send(msg));
  sim_.run_until(1.0);
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkFixture, BackhaulIsReliableAndDelayed) {
  const RsuId r1 = net_.rsus().add({0, 0});
  const RsuId r2 = net_.rsus().add({5000, 0});
  SimTime arrival = -1;
  net_.set_handler(Address::rsu(r2),
                   [&](const Message&) { arrival = sim_.now(); });
  Message msg;
  msg.id = net_.next_message_id();
  msg.src = Address::rsu(r1);
  msg.dst = Address::rsu(r2);
  net_.send_backhaul(r1, r2, msg);
  sim_.run_until(1.0);
  EXPECT_NEAR(arrival, net_.backhaul_latency(), 1e-9);
}

TEST_F(NetworkFixture, BackhaulDropsWhenOffline) {
  const RsuId r1 = net_.rsus().add({0, 0});
  const RsuId r2 = net_.rsus().add({5000, 0});
  net_.rsus().set_online(r2, false);
  int received = 0;
  net_.set_handler(Address::rsu(r2), [&](const Message&) { ++received; });
  Message msg;
  msg.src = Address::rsu(r1);
  msg.dst = Address::rsu(r2);
  net_.send_backhaul(r1, r2, msg);
  sim_.run_until(1.0);
  EXPECT_EQ(received, 0);
}

TEST(MessageKind, Names) {
  EXPECT_STREQ(to_string(MessageKind::kBeacon), "beacon");
  EXPECT_STREQ(to_string(MessageKind::kTaskMigrate), "task_migrate");
}

TEST(Address, KeysDistinguishTypes) {
  EXPECT_NE(Address::vehicle(VehicleId{5}).key(),
            Address::rsu(RsuId{5}).key());
  EXPECT_EQ(Address::vehicle(VehicleId{5}),
            Address::vehicle(VehicleId{5}));
}

}  // namespace
}  // namespace vcl::net
