// Tests for the remaining §III threats (MITM, traffic-flow analysis) and
// the §V.A management snapshot archive, plus an end-to-end integration
// test: a sticky data-policy package crossing the multi-hop network.
#include <gtest/gtest.h>

#include "access/sticky_package.h"
#include "attack/flow_analysis.h"
#include "attack/mitm.h"
#include "auth/pseudonym.h"
#include "core/scenario.h"
#include "core/snapshot.h"

namespace vcl {
namespace {

// ---- MITM -------------------------------------------------------------------------

class MitmFixture : public ::testing::Test {
 protected:
  MitmFixture() : traffic_(make_road(), Rng(1)) {}

  // three parked vehicles in a line; middle one can be made malicious
  static geo::RoadNetwork& make_road() {
    static geo::RoadNetwork road = [] {
      geo::RoadNetwork r;
      const auto a = r.add_node({0, 0});
      const auto b = r.add_node({600, 0});
      r.add_link(a, b, 14.0);
      return r;
    }();
    return road;
  }

  mobility::TrafficModel traffic_;
  sim::Simulator sim_;
};

TEST_F(MitmFixture, RelayAltersPayloadAndSignatureCatchesIt) {
  net::Network net(sim_, traffic_, net::ChannelConfig{}, Rng(2));
  const auto src = traffic_.spawn_parked(LinkId{0}, 0.0);
  const auto mid = traffic_.spawn_parked(LinkId{0}, 250.0);
  const auto dst = traffic_.spawn_parked(LinkId{0}, 500.0);
  net.start_beacons(0.5);

  attack::AdversaryRoster roster;
  roster.add(mid);
  attack::MitmGreedyRouter router(net, roster, attack::MitmConfig{1.0},
                                  Rng(3));
  router.attach();
  net.refresh();

  // Sign the payload end-to-end before sending.
  auth::TrustedAuthority ta(7);
  ta.register_vehicle(src);
  auth::PseudonymAuth signer(ta, src, 4);
  crypto::OpCounts ops;
  const crypto::Bytes payload{10, 20, 30, 40};
  const auto tag = signer.sign(payload, 0.0, ops);

  // Intercept delivery at the destination to inspect the payload.
  crypto::Bytes received;
  net.set_handler(net::Address::vehicle(dst), [&](const net::Message& m) {
    if (m.dst.is_vehicle() && m.dst.as_vehicle() == dst) {
      received = m.payload;
    } else {
      // Not for us: hand back to the router's forwarding logic. (The
      // specific handler overrides the default; emulate pass-through.)
    }
  });

  // Originate manually so we can attach the payload.
  net::Message msg;
  msg.id = net.next_message_id();
  msg.src = net::Address::vehicle(src);
  msg.dst = net::Address::vehicle(dst);
  msg.created = sim_.now();
  msg.ttl = 8;
  msg.payload = payload;
  if (const auto pos = net.position_of(msg.dst)) {
    msg.dst_pos = *pos;
    msg.has_dst_pos = true;
  }
  // First hop: src -> mid (the MITM relay); the router's handler runs on
  // mid because the specific handler is only registered for dst. The 250 m
  // hop is lossy; retry until one attempt lands (independent samples).
  bool sent = false;
  for (int attempt = 0; attempt < 500 && !sent; ++attempt) {
    sent = net.send_via(msg, net::Address::vehicle(mid));
  }
  ASSERT_TRUE(sent);
  sim_.run_until(25.0);

  ASSERT_FALSE(received.empty());
  EXPECT_NE(received, payload);  // altered in flight
  EXPECT_GE(router.tampered(), 1u);
  // End-to-end signature detects the alteration.
  EXPECT_TRUE(auth::PseudonymAuth::verify(ta, payload, *tag).ok);
  EXPECT_FALSE(auth::PseudonymAuth::verify(ta, received, *tag).ok);
}

TEST_F(MitmFixture, HonestRelayPreservesPayload) {
  net::Network net(sim_, traffic_, net::ChannelConfig{}, Rng(4));
  const auto src = traffic_.spawn_parked(LinkId{0}, 0.0);
  traffic_.spawn_parked(LinkId{0}, 250.0);
  const auto dst = traffic_.spawn_parked(LinkId{0}, 500.0);
  net.start_beacons(0.5);
  attack::AdversaryRoster empty_roster;
  attack::MitmGreedyRouter router(net, empty_roster, attack::MitmConfig{1.0},
                                  Rng(5));
  router.attach();
  net.refresh();
  crypto::Bytes received;
  net.set_handler(net::Address::vehicle(dst), [&](const net::Message& m) {
    received = m.payload;
  });
  // Broadcast fresh copies until one crosses the lossy first hop (the
  // 250 m link fails often by design; retrying is what real senders do).
  sim_.schedule_every(1.0, [&] {
    if (!received.empty()) return;
    net::Message msg;
    msg.id = net.next_message_id();
    msg.src = net::Address::vehicle(src);
    msg.dst = net::Address::vehicle(dst);
    msg.payload = {1, 2, 3};
    msg.ttl = 8;
    msg.created = sim_.now();
    if (const auto pos = net.position_of(msg.dst)) {
      msg.dst_pos = *pos;
      msg.has_dst_pos = true;
    }
    net.broadcast(msg);
  });
  sim_.run_until(60.0);
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received, (crypto::Bytes{1, 2, 3}));
  EXPECT_EQ(router.tampered(), 0u);
}

// ---- Flow analysis -----------------------------------------------------------------

TEST(FlowAnalysis, IdentifiesHeavyTalkers) {
  attack::FlowAnalyzer analyzer;
  // Coordinators 1 and 2 send lots; members 3..10 send beacons only.
  for (int round = 0; round < 50; ++round) {
    analyzer.observe(VehicleId{1}, 1024);
    analyzer.observe(VehicleId{2}, 800);
    for (std::uint64_t m = 3; m <= 10; ++m) {
      analyzer.observe(VehicleId{m}, 100);
    }
  }
  const auto top = analyzer.top_talkers(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], VehicleId{1});
  EXPECT_EQ(top[1], VehicleId{2});
  EXPECT_DOUBLE_EQ(
      analyzer.role_identification_recall({VehicleId{1}, VehicleId{2}}), 1.0);
}

TEST(FlowAnalysis, PaddingDefenseFlattensTheSignal) {
  attack::FlowAnalyzer analyzer;
  Rng rng(3);
  // With padding, every vehicle emits the same volume; the adversary's
  // top-k is as good as random.
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t m = 1; m <= 20; ++m) {
      analyzer.observe(VehicleId{m}, 1024);  // uniform dummy-padded traffic
    }
  }
  const double recall =
      analyzer.role_identification_recall({VehicleId{7}, VehicleId{13}});
  // Deterministic tie-break picks lowest ids: recall for {7,13} is 0.
  EXPECT_LE(recall, 0.5);
}

TEST(FlowAnalysis, RecallWithEmptyTruthIsZero) {
  attack::FlowAnalyzer analyzer;
  analyzer.observe(VehicleId{1}, 10);
  EXPECT_DOUBLE_EQ(analyzer.role_identification_recall({}), 0.0);
}

// ---- Topology archive ----------------------------------------------------------------

TEST(TopologyArchive, CapturesAndQueries) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 20;
  cfg.seed = 9;
  core::Scenario scenario(cfg);
  scenario.start();
  core::TopologyArchive archive(scenario.network(), {5.0, 10});
  archive.attach();
  scenario.run_for(30.0);
  EXPECT_GE(archive.snapshot_count(), 5u);
  EXPECT_GT(archive.records_held(), 0u);
  // Query the whole map over the whole window: everything comes back.
  const auto [lo, hi] = scenario.road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  const auto hits = archive.query(center, 1e6, 0.0, 1e6);
  EXPECT_EQ(hits.size(), archive.records_held());
  // A zero-radius query around nowhere returns nothing.
  EXPECT_TRUE(archive.query({-9999, -9999}, 1.0, 0.0, 1e6).empty());
}

TEST(TopologyArchive, RetentionBoundsPrivacyExposure) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 10;
  cfg.seed = 10;
  core::Scenario scenario(cfg);
  scenario.start();
  core::TopologyArchive small(scenario.network(), {1.0, 5});
  core::TopologyArchive large(scenario.network(), {1.0, 50});
  small.attach();
  large.attach();
  scenario.run_for(60.0);
  EXPECT_EQ(small.snapshot_count(), 5u);     // ring buffer capped
  EXPECT_GT(large.snapshot_count(), 40u);
  EXPECT_LT(small.records_held(), large.records_held());
  // The short-retention archive cannot answer old queries.
  EXPECT_TRUE(small.query({0, 0}, 1e6, 0.0, small.oldest() - 0.5).empty());
}

TEST(TopologyArchive, UsesCredentialMapping) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 5;
  core::Scenario scenario(cfg);
  scenario.start();
  core::TopologyArchive archive(
      scenario.network(), {1.0, 10},
      [](VehicleId v) { return v.value() + 5000; });
  archive.capture();
  const auto hits = archive.query({0, 0}, 1e9, 0.0, 1e9);
  ASSERT_FALSE(hits.empty());
  for (const auto& e : hits) {
    EXPECT_EQ(e.credential, e.vehicle.value() + 5000);
  }
}

// ---- Integration: sticky package over the multi-hop network ----------------------------

TEST(Integration, PolicyPackageTravelsWithData) {
  // Owner seals data under a policy, ships the package id over the routed
  // network to a far vehicle; the receiver enforces the policy locally —
  // no callback to the owner (paper §V.C "access control travels with the
  // data").
  core::ScenarioConfig cfg;
  cfg.vehicles = 60;
  cfg.seed = 21;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.run_for(3.0);

  access::AbeAuthority authority(1);
  crypto::Drbg drbg(std::uint64_t{2});
  const crypto::Bytes owner_key = drbg.generate(32);
  const auto policy = access::Policy::parse("role:head | clearance:gold");
  crypto::OpCounts ops;
  access::StickyPackage package(authority, crypto::Bytes{42, 43, 44},
                                policy->clone(), owner_key, 555, drbg, ops);

  routing::GreedyGeo router(scenario.network());
  router.attach();
  scenario.network().refresh();
  std::vector<VehicleId> ids;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    ids.push_back(v.id);
  }
  std::sort(ids.begin(), ids.end());
  const MessageId mid = router.originate(ids.front(), ids.back(), 2048);
  scenario.run_for(30.0);
  ASSERT_TRUE(router.metrics().was_delivered(mid));

  // Receiver-side enforcement, far from the owner.
  const access::AttributeSet good{"clearance:gold"};
  const auto good_key = authority.keygen(good);
  EXPECT_TRUE(package.access(good_key, good, 9001, 30.0, ops).has_value());
  const access::AttributeSet bad{"role:member"};
  const auto bad_key = authority.keygen(bad);
  EXPECT_FALSE(package.access(bad_key, bad, 9002, 31.0, ops).has_value());
  EXPECT_EQ(package.log().size(), 2u);
  EXPECT_TRUE(package.log().verify_chain());
}

}  // namespace
}  // namespace vcl
