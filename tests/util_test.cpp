#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/ids.h"
#include "util/quantile_sketch.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace vcl {
namespace {

TEST(Ids, DistinctTypesCompare) {
  const VehicleId a{1};
  const VehicleId b{1};
  const VehicleId c{2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(Ids, DefaultIsInvalid) {
  const VehicleId v;
  EXPECT_FALSE(v.valid());
  EXPECT_TRUE(VehicleId{0}.valid());
}

TEST(Ids, Hashable) {
  std::unordered_map<VehicleId, int> m;
  m[VehicleId{7}] = 42;
  EXPECT_EQ(m.at(VehicleId{7}), 42);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng a(42);
  const Rng child1 = a.fork(7);
  a.uniform();  // consume from parent
  const Rng child2 = Rng(42).fork(7);
  Rng c1 = child1, c2 = child2;
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, ForkSaltsProduceDistinctStreams) {
  Rng a(42);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (f1.uniform() == f2.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, PoissonMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += r.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.percentile(50), 0.0);
}

TEST(Accumulator, Percentiles) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(i);
  EXPECT_NEAR(acc.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(acc.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(acc.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(acc.percentile(95), 95.05, 0.2);
}

TEST(Accumulator, PercentileWithoutRetentionIsNaN) {
  // Documented contract: keep_samples=false means percentile() returns
  // quiet NaN — it never interpolates from moments, and it never returns a
  // silent 0.0 that reads like a measured latency downstream.
  Accumulator acc(/*keep_samples=*/false);
  for (int i = 1; i <= 100; ++i) acc.add(i);
  EXPECT_TRUE(std::isnan(acc.percentile(50)));
  EXPECT_TRUE(std::isnan(acc.percentile(99)));
  // Moments stay fully usable without retention.
  EXPECT_EQ(acc.count(), 100u);
  EXPECT_DOUBLE_EQ(acc.mean(), 50.5);
}

TEST(Accumulator, PercentileOneElement) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(acc.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(acc.percentile(100), 42.0);
}

TEST(Accumulator, PercentileTwoElementInterpolation) {
  Accumulator acc;
  acc.add(10.0);
  acc.add(20.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(acc.percentile(100), 20.0);
  EXPECT_DOUBLE_EQ(acc.percentile(25), 12.5);
}

TEST(Accumulator, MergeMatchesSingleStream) {
  Accumulator a;
  Accumulator b;
  Accumulator whole;
  for (const double v : {2.0, 4.0, 4.0, 4.0}) {
    a.add(v);
    whole.add(v);
  }
  for (const double v : {5.0, 5.0, 7.0, 9.0}) {
    b.add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.percentile(50), whole.percentile(50));
}

TEST(Accumulator, MergeEmptySides) {
  Accumulator a;
  Accumulator empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Accumulator target;
  target.merge(a);  // merging into empty copies
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
  EXPECT_DOUBLE_EQ(target.percentile(100), 3.0);
}

TEST(Accumulator, MergeRespectsRetentionFlags) {
  Accumulator keep;
  Accumulator stream(/*keep_samples=*/false);
  keep.add(1.0);
  stream.add(100.0);
  keep.merge(stream);
  EXPECT_EQ(keep.count(), 2u);
  // The non-retaining side contributed no samples: percentile covers only
  // the locally retained values.
  EXPECT_DOUBLE_EQ(keep.percentile(100), 1.0);
  EXPECT_DOUBLE_EQ(keep.max(), 100.0);  // but the moments saw everything
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first
  h.add(100.0);   // clamps to last
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BothEndsClampIntoTerminalBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1e300);
  h.add(-0.0001);
  h.add(1e300);
  h.add(10.0);  // hi itself is out of [lo, hi) and clamps to the last bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(h.bucket(i), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, SingleBucketTakesEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add(-5.0);
  h.add(0.5);
  h.add(99.0);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
}

TEST(Ratio, EmptyIsZero) {
  const Ratio r;
  EXPECT_EQ(r.total(), 0u);
  EXPECT_EQ(r.hits(), 0u);
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(Ratio, Value) {
  Ratio r;
  r.hit();
  r.hit();
  r.miss();
  EXPECT_NEAR(r.value(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.total(), 3u);
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

// ---- Rng::fork stream independence (experiment-engine seed derivation) ----

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> draws(Rng rng, std::size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform();
  return out;
}

TEST(RngFork, ParentAndChildStreamsUncorrelated) {
  // 10k paired draws; for truly independent streams |r| concentrates near
  // 1/sqrt(n) ~ 0.01, so 0.05 catches any systematic leakage without flaking.
  Rng parent(20260806);
  const std::vector<double> child = draws(parent.fork(1), 10000);
  const std::vector<double> own = draws(parent, 10000);
  EXPECT_LT(std::abs(pearson(own, child)), 0.05);
}

TEST(RngFork, SiblingStreamsPairwiseUncorrelated) {
  Rng parent(97);
  const std::vector<std::uint64_t> salts = {1, 2, 3, 1000000007ULL};
  std::vector<std::vector<double>> streams;
  for (const auto s : salts) streams.push_back(draws(parent.fork(s), 10000));
  for (std::size_t a = 0; a < streams.size(); ++a) {
    for (std::size_t b = a + 1; b < streams.size(); ++b) {
      EXPECT_LT(std::abs(pearson(streams[a], streams[b])), 0.05)
          << "salts " << salts[a] << " vs " << salts[b];
    }
  }
}

TEST(RngFork, DistinctSaltsNeverShareASequence) {
  Rng parent(7);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = a + 1; b < 8; ++b) {
      EXPECT_NE(parent.fork(a).seed(), parent.fork(b).seed());
      EXPECT_NE(draws(parent.fork(a), 32), draws(parent.fork(b), 32))
          << "fork(" << a << ") and fork(" << b << ") collided";
    }
  }
}

// ---- Accumulator::merge properties (parallel reduction contract) ----------

std::vector<Accumulator> shards(const std::vector<double>& values,
                                std::size_t k, bool keep_samples = true) {
  std::vector<Accumulator> out(k, Accumulator(keep_samples));
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i % k].add(values[i]);
  }
  return out;
}

std::vector<double> stochastic_values(std::size_t n) {
  Rng rng(314159);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.normal(5.0, 3.0);
  return out;
}

void expect_moments_near(const Accumulator& a, const Accumulator& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
  EXPECT_NEAR(a.sum(), b.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(AccumulatorMerge, FoldOrderInvariantToWithinTolerance) {
  const std::vector<double> values = stochastic_values(1000);
  const std::size_t k = 8;

  Accumulator left;  // ((s0+s1)+s2)+...
  for (const auto& s : shards(values, k)) left.merge(s);

  Accumulator right;  // s7+(s6+(...)) — fold from the other end
  {
    const auto ss = shards(values, k);
    Accumulator acc;
    for (std::size_t i = ss.size(); i-- > 0;) {
      Accumulator next = ss[i];
      next.merge(acc);
      acc = next;
    }
    right = acc;
  }

  Accumulator tree;  // balanced pairwise tree
  {
    std::vector<Accumulator> level = shards(values, k);
    while (level.size() > 1) {
      std::vector<Accumulator> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        Accumulator m = level[i];
        m.merge(level[i + 1]);
        next.push_back(m);
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = next;
    }
    tree = level[0];
  }

  expect_moments_near(left, right);
  expect_moments_near(left, tree);
}

TEST(AccumulatorMerge, MergeWithEmptyIsIdentity) {
  const std::vector<double> values = stochastic_values(64);
  Accumulator full;
  for (const double v : values) full.add(v);

  Accumulator left = full;
  left.merge(Accumulator());  // right identity
  expect_moments_near(left, full);
  EXPECT_DOUBLE_EQ(left.percentile(50), full.percentile(50));

  Accumulator right;  // left identity
  right.merge(full);
  expect_moments_near(right, full);
  EXPECT_DOUBLE_EQ(right.percentile(50), full.percentile(50));
}

TEST(AccumulatorMerge, NoRetentionMergeKeepsMomentsButNoPercentiles) {
  // The keep_samples=false contract: moments of the union are exact, but
  // percentile() must return NaN rather than inventing an answer.
  const std::vector<double> values = stochastic_values(200);
  Accumulator expect_acc(false);
  for (const double v : values) expect_acc.add(v);

  Accumulator merged(false);
  for (const auto& s : shards(values, 4, /*keep_samples=*/false)) {
    merged.merge(s);
  }
  expect_moments_near(merged, expect_acc);
  EXPECT_TRUE(std::isnan(merged.percentile(50)));
  EXPECT_TRUE(std::isnan(merged.percentile(95)));
}

// ---- Student-t table (confidence intervals) -------------------------------

TEST(StudentT, KnownCriticalValues) {
  EXPECT_DOUBLE_EQ(student_t95(0), 0.0);
  EXPECT_NEAR(student_t95(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t95(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t95(15), 2.131, 1e-3);
  EXPECT_NEAR(student_t95(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t95(1000), 1.960, 1e-3);
  // Monotone non-increasing in df.
  for (std::size_t df = 1; df < 50; ++df) {
    EXPECT_LE(student_t95(df + 1), student_t95(df)) << "df=" << df;
  }
}

TEST(StudentT, Ci95HalfWidth) {
  Accumulator reps;
  EXPECT_DOUBLE_EQ(ci95_half_width(reps), 0.0);  // empty
  reps.add(3.0);
  EXPECT_DOUBLE_EQ(ci95_half_width(reps), 0.0);  // one rep: no interval
  reps.add(5.0);
  // n=2: t95(1) * stddev / sqrt(2), stddev = sqrt(2).
  EXPECT_NEAR(ci95_half_width(reps), student_t95(1), 1e-9);
}

// ---- QuantileSketch --------------------------------------------------------

// Exact percentile with the sketch's rank convention: the value at rank
// floor(q * (n - 1)) of the sorted sample.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1));
  return xs[rank];
}

void expect_within_relative_error(const QuantileSketch& sk,
                                  const std::vector<double>& xs,
                                  const char* label) {
  for (const double q : {0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double exact = exact_quantile(xs, q);
    const double est = sk.quantile(q);
    if (exact < QuantileSketch::kMinTrackable) {
      EXPECT_EQ(est, 0.0) << label << " q=" << q;
    } else {
      EXPECT_NEAR(est, exact, sk.relative_error() * exact * (1 + 1e-9))
          << label << " q=" << q;
    }
  }
}

TEST(QuantileSketch, EmptyIsNaNAndZeroedMoments) {
  const QuantileSketch sk;
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
  EXPECT_TRUE(std::isnan(sk.percentile(99)));
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.min(), 0.0);
  EXPECT_EQ(sk.max(), 0.0);
  EXPECT_EQ(sk.mean(), 0.0);
}

TEST(QuantileSketch, AccuracyOnAdversarialDistributions) {
  Rng rng(20260808);
  struct Case {
    const char* label;
    std::vector<double> xs;
  };
  std::vector<Case> cases;
  {  // Uniform: dense mid-range mass.
    Case c{"uniform", {}};
    for (int i = 0; i < 5000; ++i) c.xs.push_back(rng.uniform(0.1, 10.0));
    cases.push_back(std::move(c));
  }
  {  // Heavy tail (exp of normal, lognormal-ish): spans several decades.
    Case c{"lognormal", {}};
    for (int i = 0; i < 5000; ++i) {
      c.xs.push_back(std::exp(rng.normal(0.0, 2.0)));
    }
    cases.push_back(std::move(c));
  }
  {  // Bimodal with a 9-decade gap: buckets far apart, nothing between.
    Case c{"bimodal", {}};
    for (int i = 0; i < 2000; ++i) {
      c.xs.push_back(rng.bernoulli(0.5) ? rng.uniform(1e-6, 2e-6)
                                        : rng.uniform(1e3, 2e3));
    }
    cases.push_back(std::move(c));
  }
  {  // Constant: every quantile must hit it exactly (clamped to min/max).
    Case c{"constant", std::vector<double>(100, 3.14)};
    cases.push_back(std::move(c));
  }
  {  // Geometric ladder: one value per bucket across the whole range.
    Case c{"geometric", {}};
    for (int i = 0; i < 600; ++i) c.xs.push_back(1e-6 * std::pow(1.05, i));
    cases.push_back(std::move(c));
  }
  for (const auto& c : cases) {
    QuantileSketch sk;
    for (const double x : c.xs) sk.add(x);
    ASSERT_EQ(sk.count(), c.xs.size()) << c.label;
    expect_within_relative_error(sk, c.xs, c.label);
    // min/max are tracked exactly, and every estimate is clamped into them.
    const auto [lo, hi] = std::minmax_element(c.xs.begin(), c.xs.end());
    EXPECT_DOUBLE_EQ(sk.min(), *lo) << c.label;
    EXPECT_DOUBLE_EQ(sk.max(), *hi) << c.label;
    EXPECT_GE(sk.quantile(0.0), *lo) << c.label;
    EXPECT_LE(sk.quantile(1.0), *hi) << c.label;
  }
}

TEST(QuantileSketch, ZeroAndNegativeRouteToZeroBucket) {
  QuantileSketch sk;
  sk.add(0.0);
  sk.add(-5.0);
  sk.add(1e-12);  // below kMinTrackable
  EXPECT_EQ(sk.zero_count(), 3u);
  EXPECT_EQ(sk.count(), 3u);
  EXPECT_EQ(sk.bucket_count(), 0u);
  EXPECT_EQ(sk.quantile(0.5), 0.0);
  sk.add(100.0);
  // Three of four samples are zero: the median is still the zero bucket.
  EXPECT_EQ(sk.quantile(0.5), 0.0);
  EXPECT_NEAR(sk.quantile(1.0), 100.0, 1e-9);
}

TEST(QuantileSketch, MergeMatchesBulkAddBitIdentically) {
  Rng rng(7);
  QuantileSketch bulk;
  QuantileSketch a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double x = std::exp(rng.normal(0.0, 3.0));
    bulk.add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  QuantileSketch merged;
  merged.merge(a);
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), bulk.count());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.quantile(q), bulk.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeFoldOrderIsBitIdentical) {
  // Integer bucket counts make merge associative and commutative EXACTLY,
  // which is what lets exp::Replicator fold worker results in any grouping
  // without perturbing a single output bit.
  Rng rng(99);
  std::vector<QuantileSketch> parts(5);
  for (auto& p : parts) {
    const int n = static_cast<int>(rng.uniform_int(10, 400));
    for (int i = 0; i < n; ++i) p.add(std::exp(rng.normal(-2.0, 2.5)));
  }
  auto fold = [&](std::vector<std::size_t> order) {
    QuantileSketch acc;
    for (const std::size_t i : order) acc.merge(parts[i]);
    return acc;
  };
  const QuantileSketch fwd = fold({0, 1, 2, 3, 4});
  const QuantileSketch rev = fold({4, 3, 2, 1, 0});
  const QuantileSketch mix = fold({2, 0, 4, 1, 3});
  // Pairwise tree fold, like a parallel reduction would produce.
  QuantileSketch left, right;
  left.merge(parts[0]);
  left.merge(parts[1]);
  right.merge(parts[2]);
  right.merge(parts[3]);
  right.merge(parts[4]);
  QuantileSketch tree;
  tree.merge(left);
  tree.merge(right);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(fwd.quantile(q), rev.quantile(q)) << "q=" << q;
    EXPECT_EQ(fwd.quantile(q), mix.quantile(q)) << "q=" << q;
    EXPECT_EQ(fwd.quantile(q), tree.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(fwd.count(), tree.count());
  EXPECT_EQ(fwd.min(), tree.min());
  EXPECT_EQ(fwd.max(), tree.max());
}

TEST(QuantileSketch, MergeLayoutMismatchThrows) {
  QuantileSketch a(0.01, 2048);
  QuantileSketch alpha_mismatch(0.02, 2048);
  QuantileSketch bound_mismatch(0.01, 1024);
  EXPECT_THROW(a.merge(alpha_mismatch), std::invalid_argument);
  EXPECT_THROW(a.merge(bound_mismatch), std::invalid_argument);
}

TEST(QuantileSketch, CollapseBoundsMemoryAndKeepsTheTail) {
  // Force collapse: a tiny bucket budget against a range that needs far
  // more. Memory must stay bounded and the TAIL quantiles must stay
  // alpha-accurate — only the low extreme is allowed to degrade.
  QuantileSketch sk(0.01, 32);
  std::vector<double> xs;
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.uniform(std::log(1e-6), std::log(1e6)));
    xs.push_back(x);
    sk.add(x);
  }
  EXPECT_LE(sk.bucket_count(), 32u);
  EXPECT_EQ(sk.count(), xs.size());
  for (const double q : {0.99, 0.999, 1.0}) {
    const double exact = exact_quantile(xs, q);
    EXPECT_NEAR(sk.quantile(q), exact, sk.relative_error() * exact * (1 + 1e-9))
        << "q=" << q;
  }
}

TEST(QuantileSketch, BucketsRoundTripThroughSnapshot) {
  // add_bucket/add_zero must exactly reproduce quantile state: this is the
  // contract sketches.json reconstruction (tools/vcl_report) relies on.
  Rng rng(5);
  QuantileSketch orig;
  for (int i = 0; i < 1000; ++i) orig.add(std::exp(rng.normal(0.0, 2.0)));
  orig.add(0.0);
  orig.add(-1.0);

  QuantileSketch rebuilt(orig.relative_error(), orig.max_buckets());
  for (const auto& b : orig.buckets()) rebuilt.add_bucket(b.index, b.count);
  rebuilt.add_zero(orig.zero_count());
  EXPECT_EQ(rebuilt.count(), orig.count());
  EXPECT_EQ(rebuilt.zero_count(), orig.zero_count());
  EXPECT_EQ(rebuilt.bucket_count(), orig.bucket_count());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(rebuilt.quantile(q), orig.quantile(q)) << "q=" << q;
  }
  // Zero-count restores are no-ops, not spurious buckets.
  QuantileSketch empty_restore;
  empty_restore.add_bucket(5, 0);
  empty_restore.add_zero(0);
  EXPECT_EQ(empty_restore.count(), 0u);
  EXPECT_EQ(empty_restore.bucket_count(), 0u);
}

}  // namespace
}  // namespace vcl
