// Storage service tests (DESIGN.md §10): config validation, lease timing
// edges, quorum write/read against a parked cloud, graceful degradation
// under a blackout, the storage-targeted storm shape, and the end-to-end
// oracle demo — the deliberately broken repair pipeline loses acked data,
// the storage-durability invariant catches it, and the failing fault plan
// shrinks to a handful of events.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/chaos.h"
#include "core/system.h"
#include "fault/chaos.h"
#include "storage/lease.h"
#include "storage/service.h"

namespace vcl {
namespace {

// ---- config validation ------------------------------------------------------

TEST(StorageConfig, DefaultIsValid) {
  EXPECT_EQ(storage::validate(storage::StorageConfig{}), "");
}

TEST(StorageConfig, RejectsQuorumAndIntervalMistakes) {
  storage::StorageConfig cfg;
  cfg.write_quorum = 4;  // W > N
  EXPECT_NE(storage::validate(cfg), "");

  cfg = {};
  cfg.read_quorum = 4;  // R > N
  EXPECT_NE(storage::validate(cfg), "");

  cfg = {};
  cfg.replicas = 4;  // W + R = N: quorums can miss each other
  EXPECT_NE(storage::validate(cfg), "");

  cfg = {};
  cfg.lease_duration = 0.0;
  EXPECT_NE(storage::validate(cfg), "");

  cfg = {};
  cfg.op_deadline = -1.0;
  EXPECT_NE(storage::validate(cfg), "");

  cfg = {};
  cfg.repair_rate = 0;
  EXPECT_NE(storage::validate(cfg), "");
}

TEST(StorageConfig, SystemStartThrowsOnInvalidConfig) {
  core::SystemConfig sys;
  sys.scenario.environment = core::Environment::kParkingLot;
  sys.scenario.vehicles = 10;
  sys.scenario.vehicles_parked = true;
  sys.architecture = core::CloudArchitecture::kStationary;
  sys.storage.enabled = true;
  sys.storage.write_quorum = 9;  // > replicas
  core::VehicularCloudSystem system(sys);
  EXPECT_THROW(system.start(), std::invalid_argument);
}

// ---- lease timing edges -----------------------------------------------------

TEST(LeaseTable, RenewalRacingExpiryAtTheSameInstantSucceeds) {
  storage::LeaseTable leases(3.0);
  const VehicleId v{7};
  leases.grant(v, 10.0);  // expires at 13.0
  EXPECT_TRUE(leases.held(v, 13.0));       // expiry instant inclusive
  EXPECT_TRUE(leases.renew(v, 13.0));      // renewal wins the race
  EXPECT_TRUE(leases.held(v, 16.0));       // extended to 16.0
  EXPECT_FALSE(leases.held(v, 16.0 + 1e-9));
}

TEST(LeaseTable, HolderSilentBetweenGrantAndFirstRenewalExpires) {
  storage::LeaseTable leases(3.0);
  const VehicleId v{7};
  leases.grant(v, 0.0);
  // The holder crashes before its first heartbeat: no renewals arrive.
  EXPECT_FALSE(leases.renew(v, 3.5));  // too late — expired leases stay dead
  EXPECT_FALSE(leases.held(v, 3.5));
  const std::vector<VehicleId> expired = leases.expired(3.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], v);
  // It stays *known* (suspect) until explicitly revoked: expiry never
  // deletes bookkeeping, only the repair pipeline does.
  EXPECT_TRUE(leases.known(v));
}

TEST(LeaseTable, RepairReGrantsARecoveredHolder) {
  storage::LeaseTable leases(2.0);
  const VehicleId v{3};
  leases.grant(v, 0.0);
  EXPECT_FALSE(leases.held(v, 5.0));   // expired long ago
  EXPECT_FALSE(leases.renew(v, 5.0));  // renewal alone cannot revive it
  leases.grant(v, 5.0);                // the repair pipeline re-grants
  EXPECT_TRUE(leases.held(v, 7.0));
  EXPECT_TRUE(leases.renew(v, 6.0));
}

// ---- quorum operations against a parked cloud -------------------------------

core::SystemConfig parked_storage_system(std::uint64_t seed) {
  core::SystemConfig sys;
  sys.scenario.environment = core::Environment::kParkingLot;
  sys.scenario.seed = seed;
  sys.scenario.vehicles = 20;
  sys.scenario.vehicles_parked = true;
  sys.architecture = core::CloudArchitecture::kStationary;
  sys.stationary_radius = 5000.0;
  sys.cloud.dependability.detector.enabled = true;
  sys.storage.enabled = true;
  return sys;
}

TEST(StorageService, QuorumWriteThenFreshRead) {
  core::VehicularCloudSystem system(parked_storage_system(11));
  system.start();
  system.run_for(2.0);
  storage::StorageService& store = *system.storage();
  auto& sim = system.scenario().simulator();

  const FileId object = store.create(sim.now());
  EXPECT_EQ(store.object_ids().size(), 1u);

  const storage::WriteResult w = store.put(1, object, sim.now());
  ASSERT_TRUE(w.acked);
  EXPECT_EQ(w.version, 1u);
  EXPECT_GE(w.replicas, store.config().write_quorum);
  EXPECT_EQ(store.acked_version(object), 1u);

  const storage::ReadResult r = store.get(1, object, sim.now());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.version, 1u);
  EXPECT_GE(r.responses, store.config().read_quorum);
  EXPECT_GE(store.live_replicas(object), store.config().write_quorum);
}

TEST(StorageService, ReadDegradesInsideABlackoutAndRecoversAfter) {
  core::VehicularCloudSystem system(parked_storage_system(12));
  system.start();
  system.run_for(2.0);
  storage::StorageService& store = *system.storage();
  auto& sim = system.scenario().simulator();

  const FileId object = store.create(sim.now());
  ASSERT_TRUE(store.put(1, object, sim.now()).acked);

  // A blackout blanketing the whole lot: every radio leg is lost, so a
  // quorum of R distinct replicas is unreachable. The read must degrade
  // (or fail outright) — never report a fresh quorum read.
  const auto [lo, hi] = system.scenario().road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  auto& channel = system.scenario().network().channel();
  const std::uint64_t token = channel.add_blackout({center, 1e6});
  const storage::ReadResult dark = store.get(1, object, sim.now());
  EXPECT_TRUE(!dark.ok || dark.degraded);

  channel.remove_blackout(token);
  const storage::ReadResult light = store.get(1, object, sim.now());
  ASSERT_TRUE(light.ok);
  EXPECT_FALSE(light.degraded);
  EXPECT_EQ(light.version, store.acked_version(object));
}

// ---- storage-targeted storm shape -------------------------------------------

fault::ChaosConfig storage_storm_config() {
  fault::ChaosConfig cfg;
  cfg.base.horizon = 100.0;
  cfg.base.blackout_lo = {0, 0};
  cfg.base.blackout_hi = {1000, 1000};
  cfg.base.blackout_radius = 300.0;
  cfg.storms.storage_rate = 0.05;
  cfg.storms.storage_crashes = 2;
  cfg.storms.storage_blackout_duration = 8.0;
  return cfg;
}

TEST(ChaosPlanner, StorageStormPairsABlackoutWithTaggedCrashes) {
  const fault::ChaosPlanner planner(storage_storm_config());
  const fault::FaultPlan plan = planner.plan(5);
  ASSERT_FALSE(plan.empty());

  std::size_t blackouts = 0;
  std::vector<const fault::FaultEvent*> tagged;
  for (const fault::FaultEvent& e : plan) {
    if (e.kind == fault::FaultKind::kRadioBlackout) ++blackouts;
    if (e.kind == fault::FaultKind::kVehicleCrash) {
      EXPECT_NE(e.storage_tag, 0u);  // this config only emits storage storms
      tagged.push_back(&e);
    }
  }
  EXPECT_GT(blackouts, 0u);
  ASSERT_GE(tagged.size(), 2u);
  // Crashes of one storm share the tag and fire strictly inside the
  // blackout window; with 2 crashes per storm consecutive pairs match.
  EXPECT_EQ(tagged[0]->storage_tag, tagged[1]->storage_tag);

  // Deterministic per seed.
  const fault::FaultPlan again = planner.plan(5);
  ASSERT_EQ(plan.size(), again.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].at, again[i].at);
    EXPECT_EQ(plan[i].storage_tag, again[i].storage_tag);
  }
}

TEST(ChaosPlanner, StorageTagRoundTripsThroughJsonl) {
  const fault::ChaosPlanner planner(storage_storm_config());
  const fault::FaultPlan plan = planner.plan(9);
  ASSERT_FALSE(plan.empty());

  std::stringstream buf;
  fault::FaultPlanMeta meta;
  meta.seed = 9;
  fault::write_fault_plan_jsonl(plan, meta, buf);

  fault::FaultPlan parsed;
  fault::FaultPlanMeta parsed_meta;
  std::string error;
  ASSERT_TRUE(fault::parse_fault_plan_jsonl(buf, parsed, parsed_meta, &error))
      << error;
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, plan[i].kind);
    EXPECT_EQ(parsed[i].at, plan[i].at);
    EXPECT_EQ(parsed[i].storage_tag, plan[i].storage_tag);
  }
}

TEST(ChaosConfigValidation, StorageStormNeedsAUsableBlackoutBox) {
  fault::ChaosConfig cfg;
  cfg.storms.storage_rate = 0.01;  // box left at its all-zero default
  EXPECT_NE(fault::validate(cfg), "");

  cfg = storage_storm_config();
  cfg.storms.storage_crashes = 0;
  EXPECT_NE(fault::validate(cfg), "");

  cfg = storage_storm_config();
  cfg.storms.storage_blackout_duration = 0.0;
  EXPECT_NE(fault::validate(cfg), "");

  EXPECT_EQ(fault::validate(storage_storm_config()), "");
}

// ---- oracle unit behavior ---------------------------------------------------

TEST(InvariantOracle, MonotonicReadsCatchAQuorumReadGoingBackwards) {
  vcloud::InvariantOracle oracle(77);
  const FileId object{1};
  oracle.on_storage_read(/*client=*/4, object, /*version=*/5,
                         /*degraded=*/false, 10.0);
  EXPECT_TRUE(oracle.ok());
  // A degraded (stale-risk flagged) read is exempt by contract.
  oracle.on_storage_read(4, object, 2, /*degraded=*/true, 11.0);
  EXPECT_TRUE(oracle.ok());
  // A *quorum* read below the client's floor is a hard violation.
  oracle.on_storage_read(4, object, 3, /*degraded=*/false, 12.0);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations()[0].invariant, "storage-monotonic-reads");
  // Another client has its own floor.
  oracle.on_storage_read(5, object, 3, /*degraded=*/false, 13.0);
  EXPECT_EQ(oracle.violation_count(), 1u);
}

// ---- end-to-end: chaos soak and the seeded repair bug -----------------------

core::ChaosScenarioConfig short_storage_episode(std::uint64_t seed) {
  core::ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  cfg.storage = true;
  return cfg;
}

TEST(ChaosStorage, ShortSoakIsCleanAndExercisesTheService) {
  std::size_t acked = 0;
  std::size_t checks = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const core::ChaosEpisode episode =
        core::run_chaos_episode(short_storage_episode(seed));
    EXPECT_TRUE(episode.ok())
        << "seed " << seed << ": "
        << (episode.violations.empty() ? std::string("?")
                                       : episode.violations[0].to_string());
    acked += episode.storage_writes_acked;
    checks += episode.checks_run;
  }
  EXPECT_GT(acked, 0u);   // the episodes really served storage traffic
  EXPECT_GT(checks, 0u);  // and the oracle really scanned them
}

TEST(ChaosStorage, SeededRepairBugIsCaughtAndShrinksSmall) {
  // Scan a few seeds for an episode where the armed repair bug destroys an
  // acked object (any blackout outliving the lease duration suffices).
  core::ChaosScenarioConfig bad_cfg;
  core::ChaosEpisode bad;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    core::ChaosScenarioConfig cfg = short_storage_episode(seed);
    cfg.inject_repair_bug = true;
    const core::ChaosEpisode episode = core::run_chaos_episode(cfg);
    if (!episode.ok()) {
      bad_cfg = cfg;
      bad = episode;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..10 triggered the armed repair bug";

  // The loss is reported as the no-acked-write-loss invariant.
  const bool durability_fired = std::any_of(
      bad.violations.begin(), bad.violations.end(),
      [](const vcloud::InvariantViolation& v) {
        return v.invariant == "storage-durability";
      });
  EXPECT_TRUE(durability_fired)
      << "first stored violation: " << bad.violations[0].to_string();

  // The schedule shrinks to a small core (storm shapes arrive as blackout +
  // tagged-crash clusters; the bug needs only one long-enough blackout).
  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        return !core::run_chaos_episode(bad_cfg, candidate).ok();
      });
  EXPECT_LE(minimal.size(), 5u);
  ASSERT_FALSE(core::run_chaos_episode(bad_cfg, minimal).ok());

  // Disarm the bug and replay the same minimal schedule: the healthy
  // repair pipeline survives it.
  core::ChaosScenarioConfig fixed = bad_cfg;
  fixed.inject_repair_bug = false;
  EXPECT_TRUE(core::run_chaos_episode(fixed, minimal).ok());
}

TEST(ChaosStorage, ReproFileCarriesStorageFlags) {
  core::ChaosScenarioConfig cfg = short_storage_episode(3);
  cfg.inject_repair_bug = true;
  const fault::FaultPlan plan;  // flags matter here, not events

  std::stringstream buf;
  core::write_chaos_repro(cfg, plan, buf);
  core::ChaosScenarioConfig loaded;
  fault::FaultPlan loaded_plan;
  std::string error;
  ASSERT_TRUE(core::load_chaos_repro(buf, loaded, loaded_plan, &error))
      << error;
  EXPECT_TRUE(loaded.storage);
  EXPECT_TRUE(loaded.inject_repair_bug);
  EXPECT_EQ(loaded.seed, cfg.seed);
}

}  // namespace
}  // namespace vcl
