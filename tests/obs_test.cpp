#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/system.h"
#include "obs/bench_output.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace vcl::obs {
namespace {

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\n");
  w.key("n").value(1.5);
  w.key("arr").begin_array();
  w.value(std::uint64_t{7});
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"s":"a\"b\\c\n","n":1.5,"arr":[7,true,null]})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, ValueAutoDistinguishesNumbersFromStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value_auto("3.25");
  w.value_auto("-17");
  w.value_auto("1e3");
  w.value_auto("12ab");  // partial parse -> string
  w.value_auto("");
  w.value_auto("kinematic");
  w.end_array();
  EXPECT_EQ(os.str(), R"([3.25,-17,1000,"12ab","","kinematic"])");
}

// ---- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder rec(16);
  rec.record(1.0, TraceCategory::kNet, "net.tx", {{"bytes", 100.0}});
  rec.record(2.0, TraceCategory::kTask, "task.submit",
             {{"task", 1.0}, {"work", 20.0}});
  ASSERT_EQ(rec.size(), 2u);
  const auto evs = rec.events();
  EXPECT_DOUBLE_EQ(evs[0].t, 1.0);
  EXPECT_STREQ(evs[0].name, "net.tx");
  EXPECT_EQ(evs[0].n_fields, 1);
  EXPECT_STREQ(evs[0].fields[0].key, "bytes");
  EXPECT_DOUBLE_EQ(evs[0].fields[0].value, 100.0);
  EXPECT_EQ(evs[1].cat, TraceCategory::kTask);
  EXPECT_EQ(evs[1].n_fields, 2);
}

TEST(TraceRecorder, MaskFiltersCategories) {
  TraceRecorder rec(16, category_bit(TraceCategory::kFault));
  EXPECT_FALSE(rec.enabled(TraceCategory::kNet));
  EXPECT_TRUE(rec.enabled(TraceCategory::kFault));
  rec.record(1.0, TraceCategory::kNet, "net.tx");
  rec.record(2.0, TraceCategory::kFault, "fault.crash");
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_STREQ(rec.events()[0].name, "fault.crash");
  EXPECT_EQ(rec.recorded(), 1u);  // masked events never count as recorded
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsLoss) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(i, TraceCategory::kSim, "tick", {{"i", double(i)}});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto evs = rec.events();
  // Oldest-first reconstruction: the last four ticks, in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].t, 6.0 + i);
  }
}

TEST(TraceRecorder, ExtraFieldsBeyondMaxAreDropped) {
  TraceRecorder rec(4);
  rec.record(0.0, TraceCategory::kSim, "big",
             {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
  EXPECT_EQ(rec.events()[0].n_fields, TraceRecorder::kMaxFields);
}

TEST(TraceRecorder, JsonlOneObjectPerLine) {
  TraceRecorder rec(8);
  rec.record(1.5, TraceCategory::kTask, "task.submit", {{"task", 1.0}});
  rec.record(2.0, TraceCategory::kNet, "net.drop");
  std::ostringstream os;
  rec.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"t\":1.5,\"cat\":\"task\",\"name\":\"task.submit\",\"task\":1}\n"
            "{\"t\":2,\"cat\":\"net\",\"name\":\"net.drop\"}\n");
}

TEST(TraceRecorder, ChromeTraceShape) {
  TraceRecorder rec(8);
  rec.record(1.5, TraceCategory::kFault, "fault.crash", {{"vehicle", 3.0}});
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string doc = os.str();
  // Instant event at sim 1.5s -> 1.5e6 trace microseconds on the fault track.
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"fault.crash\",\"cat\":\"fault\",\"ph\":\"i\","
                     "\"s\":\"g\",\"ts\":1500000"),
            std::string::npos);
  // Per-category track names ride thread_name metadata events.
  EXPECT_NE(doc.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\":\"task\"}"), std::string::npos);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(4);
  rec.record(1.0, TraceCategory::kSim, "x");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry reg;
  auto& c = reg.counter("net.unicast.sent");
  c.inc();
  c.inc(2.5);
  double depth = 7.0;
  reg.gauge("cloud.task.pending", [&depth] { return depth; });
  auto& h = reg.histogram("cloud.task.latency");
  h.add(1.0);
  h.add(3.0);

  EXPECT_EQ(reg.metric_count(), 3u);
  EXPECT_DOUBLE_EQ(reg.value("net.unicast.sent"), 3.5);
  EXPECT_DOUBLE_EQ(reg.value("cloud.task.pending"), 7.0);
  EXPECT_DOUBLE_EQ(reg.value("cloud.task.latency"), 2.0);  // mean
  EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);
  // counter() is idempotent: same name -> same counter.
  reg.counter("net.unicast.sent").inc();
  EXPECT_DOUBLE_EQ(reg.value("net.unicast.sent"), 4.5);
}

TEST(MetricsRegistry, SamplerProducesTimeSeries) {
  sim::Simulator sim;
  MetricsRegistry reg;
  auto& c = reg.counter("a.ticks.count");
  reg.gauge("b.clock.now", [&sim] { return sim.now(); });
  // Tick off the sampler's phase so same-instant tie order can't matter.
  sim.schedule_every(1.0, [&c] { c.inc(); }, 0.5);
  reg.start_sampling(sim, 2.0);
  sim.run_until(6.5);

  // Baseline at t=0 plus samples at t=2,4,6.
  ASSERT_EQ(reg.sample_count(), 4u);
  ASSERT_EQ(reg.series_columns(),
            (std::vector<std::string>{"a.ticks.count", "b.clock.now"}));

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "t,a.ticks.count,b.clock.now\n"
            "0,0,0\n"
            "2,2,2\n"
            "4,4,4\n"
            "6,6,6\n");

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_EQ(json.str(),
            "{\"columns\":[\"t\",\"a.ticks.count\",\"b.clock.now\"],"
            "\"samples\":[[0,0,0],[2,2,2],[4,4,4],[6,6,6]]}\n");
}

TEST(MetricsRegistry, HistogramContributesCountAndMeanColumns) {
  sim::Simulator sim;
  MetricsRegistry reg;
  auto& h = reg.histogram("x.latency");
  h.add(2.0);
  h.add(4.0);
  reg.sample(0.0);
  ASSERT_EQ(reg.series_columns(),
            (std::vector<std::string>{"x.latency.count", "x.latency.mean"}));
  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_EQ(csv.str(), "t,x.latency.count,x.latency.mean\n0,2,3\n");
}

// ---- BenchReporter ----------------------------------------------------------

TEST(BenchReporter, ParsesJsonFlagAndEmitsSchema) {
  const char* argv[] = {"bench_x", "--runs", "3", "--json", "/tmp/out.json"};
  BenchReporter rep("bench_x", 5, const_cast<char**>(argv));
  EXPECT_TRUE(rep.enabled());
  EXPECT_EQ(rep.path(), "/tmp/out.json");

  Table t("demo", {"mode", "rate"});
  t.add_row({"greedy", "0.93"});
  rep.add(t);
  rep.add_scalar("wall_s", 1.25);

  EXPECT_EQ(rep.to_json(),
            "{\"schema\":\"vcl-bench-v1\",\"bench\":\"bench_x\","
            "\"scalars\":{\"wall_s\":1.25},"
            "\"tables\":[{\"title\":\"demo\",\"columns\":[\"mode\",\"rate\"],"
            "\"rows\":[[\"greedy\",0.93]]}]}\n");
}

TEST(BenchReporter, InertWithoutFlag) {
  const char* argv[] = {"bench_x"};
  BenchReporter rep("bench_x", 1, const_cast<char**>(argv));
  EXPECT_FALSE(rep.enabled());
  EXPECT_TRUE(rep.write());  // no-op succeeds
}

TEST(BenchReporter, WritesFile) {
  const std::string path = ::testing::TempDir() + "vcl_bench_out.json";
  const char* argv[] = {"bench_x", "--json", path.c_str()};
  BenchReporter rep("bench_x", 3, const_cast<char**>(argv));
  rep.add_scalar("n", 2.0);
  ASSERT_TRUE(rep.write());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\":\"vcl-bench-v1\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"n\":2"), std::string::npos);
}

// ---- end-to-end through VehicularCloudSystem --------------------------------

core::SystemConfig telemetry_config() {
  core::SystemConfig config;
  config.scenario.vehicles = 20;
  // Hardened dispatch/heartbeats make the cloud talk over the network, so
  // the trace exercises the net.* category too.
  config.cloud.dependability.detector.enabled = true;
  config.telemetry.tracing = true;
  config.telemetry.metrics = true;
  config.telemetry.sample_period = 1.0;
  config.telemetry.profile_kernel = true;
  return config;
}

TEST(SystemTelemetry, DisabledByDefault) {
  core::SystemConfig config;
  config.scenario.vehicles = 5;
  core::VehicularCloudSystem system(config);
  system.start();
  EXPECT_EQ(system.telemetry(), nullptr);
  EXPECT_FALSE(system.scenario().simulator().profiling());
}

TEST(SystemTelemetry, FullRunProducesTraceMetricsAndProfile) {
  core::VehicularCloudSystem system(telemetry_config());
  system.start();
  ASSERT_NE(system.telemetry(), nullptr);
  vcloud::WorkloadConfig workload;
  workload.mean_work = 5.0;
  system.submit_workload(workload, 10);
  system.run_for(30.0);

  obs::Telemetry& tel = *system.telemetry();
  // Tracing: submissions and dispatches left task.* events on the ring.
  const auto evs = tel.trace.events();
  ASSERT_FALSE(evs.empty());
  std::size_t submits = 0;
  std::size_t net_events = 0;
  for (const auto& ev : evs) {
    if (std::string(ev.name) == "task.submit") ++submits;
    if (ev.cat == TraceCategory::kNet) ++net_events;
  }
  EXPECT_EQ(submits, 10u);
  EXPECT_GT(net_events, 0u);

  // Metrics: the sampler ran every second and captured >= 5 series.
  EXPECT_GE(tel.metrics.series_columns().size(), 5u);
  EXPECT_GE(tel.metrics.sample_count(), 30u);
  EXPECT_DOUBLE_EQ(tel.metrics.value("cloud.task.submitted"), 10.0);

  // Exports parse-shaped output without crashing.
  std::ostringstream trace_json;
  tel.trace.write_chrome_trace(trace_json);
  EXPECT_NE(trace_json.str().find("\"traceEvents\""), std::string::npos);
  std::ostringstream csv;
  tel.metrics.write_csv(csv);
  EXPECT_EQ(csv.str().compare(0, 2, "t,"), 0);

  // Kernel profile: labeled activities attributed events.
  const auto prof = system.scenario().simulator().profile();
  ASSERT_FALSE(prof.empty());
  bool saw_mobility = false;
  for (const auto& e : prof) {
    if (e.label == "mobility.step") saw_mobility = true;
  }
  EXPECT_TRUE(saw_mobility);
  EXPECT_GT(system.scenario().simulator().queue_high_water(), 0u);
}

TEST(SystemTelemetry, TraceCategoryMaskRespected) {
  core::SystemConfig config = telemetry_config();
  config.telemetry.profile_kernel = false;
  config.telemetry.metrics = false;
  config.telemetry.trace_categories = category_bit(TraceCategory::kTask);
  core::VehicularCloudSystem system(config);
  system.start();
  vcloud::WorkloadConfig workload;
  system.submit_workload(workload, 5);
  system.run_for(10.0);
  const auto evs = system.telemetry()->trace.events();
  ASSERT_FALSE(evs.empty());
  for (const auto& ev : evs) EXPECT_EQ(ev.cat, TraceCategory::kTask);
}

TEST(SystemTelemetry, TelemetryOffMatchesSeedDeterminism) {
  // A telemetry-on run must not perturb the simulation itself: final cloud
  // stats match a telemetry-off run with the same seed bit for bit.
  core::SystemConfig off;
  off.scenario.vehicles = 20;
  core::SystemConfig on = off;
  on.telemetry.tracing = true;
  on.telemetry.profile_kernel = true;

  auto run = [](const core::SystemConfig& cfg) {
    core::VehicularCloudSystem system(cfg);
    system.start();
    vcloud::WorkloadConfig workload;
    system.submit_workload(workload, 8);
    system.run_for(25.0);
    return std::make_tuple(system.cloud().stats().completed,
                           system.cloud().stats().submitted,
                           system.cloud().stats().latency.sum(),
                           system.scenario().simulator().events_processed());
  };
  EXPECT_EQ(run(off), run(on));
}

}  // namespace
}  // namespace vcl::obs
