#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/system.h"
#include "obs/bench_output.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace vcl::obs {
namespace {

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\n");
  w.key("n").value(1.5);
  w.key("arr").begin_array();
  w.value(std::uint64_t{7});
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"s":"a\"b\\c\n","n":1.5,"arr":[7,true,null]})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, ValueAutoDistinguishesNumbersFromStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value_auto("3.25");
  w.value_auto("-17");
  w.value_auto("1e3");
  w.value_auto("12ab");  // partial parse -> string
  w.value_auto("");
  w.value_auto("kinematic");
  w.end_array();
  EXPECT_EQ(os.str(), R"([3.25,-17,1000,"12ab","","kinematic"])");
}

// ---- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder rec(16);
  rec.record(1.0, TraceCategory::kNet, "net.tx", {{"bytes", 100.0}});
  rec.record(2.0, TraceCategory::kTask, "task.submit",
             {{"task", 1.0}, {"work", 20.0}});
  ASSERT_EQ(rec.size(), 2u);
  const auto evs = rec.events();
  EXPECT_DOUBLE_EQ(evs[0].t, 1.0);
  EXPECT_STREQ(evs[0].name, "net.tx");
  EXPECT_EQ(evs[0].n_fields, 1);
  EXPECT_STREQ(evs[0].fields[0].key, "bytes");
  EXPECT_DOUBLE_EQ(evs[0].fields[0].value, 100.0);
  EXPECT_EQ(evs[1].cat, TraceCategory::kTask);
  EXPECT_EQ(evs[1].n_fields, 2);
}

TEST(TraceRecorder, MaskFiltersCategories) {
  TraceRecorder rec(16, category_bit(TraceCategory::kFault));
  EXPECT_FALSE(rec.enabled(TraceCategory::kNet));
  EXPECT_TRUE(rec.enabled(TraceCategory::kFault));
  rec.record(1.0, TraceCategory::kNet, "net.tx");
  rec.record(2.0, TraceCategory::kFault, "fault.crash");
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_STREQ(rec.events()[0].name, "fault.crash");
  EXPECT_EQ(rec.recorded(), 1u);  // masked events never count as recorded
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsLoss) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(i, TraceCategory::kSim, "tick", {{"i", double(i)}});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto evs = rec.events();
  // Oldest-first reconstruction: the last four ticks, in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].t, 6.0 + i);
  }
}

TEST(TraceRecorder, ExtraFieldsBeyondMaxAreDropped) {
  TraceRecorder rec(4);
  rec.record(0.0, TraceCategory::kSim, "big",
             {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
  EXPECT_EQ(rec.events()[0].n_fields, TraceRecorder::kMaxFields);
  // The overflow is counted, not silently lost, and surfaces in the JSONL
  // metadata record alongside the ring accounting.
  EXPECT_EQ(rec.dropped_fields(), 1u);
  rec.record(0.5, TraceCategory::kSim, "bigger",
             {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}, {"f", 6}});
  EXPECT_EQ(rec.dropped_fields(), 3u);
  std::ostringstream os;
  rec.write_jsonl(os);
  EXPECT_NE(os.str().find("\"dropped_fields\":3"), std::string::npos);
}

TEST(TraceRecorder, JsonlOneObjectPerLine) {
  TraceRecorder rec(8);
  rec.record(1.5, TraceCategory::kTask, "task.submit", {{"task", 1.0}});
  rec.record(2.0, TraceCategory::kNet, "net.drop");
  std::ostringstream os;
  rec.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"meta\":\"vcl-trace-v1\",\"capacity\":8,\"recorded\":2,"
            "\"retained\":2,\"overwritten\":0,\"dropped_fields\":0}\n"
            "{\"t\":1.5,\"cat\":\"task\",\"name\":\"task.submit\",\"task\":1}\n"
            "{\"t\":2,\"cat\":\"net\",\"name\":\"net.drop\"}\n");
}

TEST(TraceRecorder, ChromeTraceShape) {
  TraceRecorder rec(8);
  rec.record(1.5, TraceCategory::kFault, "fault.crash", {{"vehicle", 3.0}});
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string doc = os.str();
  // Instant event at sim 1.5s -> 1.5e6 trace microseconds on the fault track.
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"fault.crash\",\"cat\":\"fault\",\"ph\":\"i\","
                     "\"s\":\"g\",\"ts\":1500000"),
            std::string::npos);
  // Per-category track names ride thread_name metadata events.
  EXPECT_NE(doc.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\":\"task\"}"), std::string::npos);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(4);
  rec.record(1.0, TraceCategory::kSim, "x");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

// ---- Causal spans -----------------------------------------------------------

TEST(TraceSpans, BeginEndCarryCausalIds) {
  TraceRecorder rec(16);
  const std::uint64_t trace = rec.new_trace_id();
  const std::uint64_t root = rec.begin_span(
      1.0, TraceCategory::kTask, "task.life", TraceContext{trace, 0},
      {{"task", 7.0}});
  ASSERT_NE(root, 0u);
  const std::uint64_t leg = rec.begin_span(1.0, TraceCategory::kTask,
                                           "leg.queue",
                                           TraceContext{trace, root});
  ASSERT_NE(leg, 0u);
  EXPECT_NE(leg, root);  // span ids are unique within the recorder
  rec.end_span(3.0, TraceCategory::kTask, "leg.queue",
               TraceContext{trace, leg});
  rec.end_span(4.0, TraceCategory::kTask, "task.life",
               TraceContext{trace, root}, {{"outcome", kOutcomeCompleted}});

  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].phase, TracePhase::kBegin);
  EXPECT_EQ(evs[0].trace_id, trace);
  EXPECT_EQ(evs[0].span_id, root);
  EXPECT_EQ(evs[0].parent_id, 0u);  // root span
  EXPECT_EQ(evs[1].phase, TracePhase::kBegin);
  EXPECT_EQ(evs[1].span_id, leg);
  EXPECT_EQ(evs[1].parent_id, root);  // child points at the root span
  EXPECT_EQ(evs[2].phase, TracePhase::kEnd);
  EXPECT_EQ(evs[2].span_id, leg);
  EXPECT_EQ(evs[3].phase, TracePhase::kEnd);
  EXPECT_EQ(evs[3].span_id, root);
  EXPECT_EQ(evs[3].trace_id, trace);
}

TEST(TraceSpans, MaskedCategoryYieldsZeroIdAndEndOfZeroIsNoOp) {
  TraceRecorder rec(16, category_bit(TraceCategory::kNet));
  const std::uint64_t id = rec.begin_span(
      1.0, TraceCategory::kTask, "task.life", TraceContext{1, 0});
  EXPECT_EQ(id, 0u);
  rec.end_span(2.0, TraceCategory::kTask, "task.life", TraceContext{1, id});
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceSpans, JsonlCarriesPhaseAndIdKeys) {
  TraceRecorder rec(8);
  const std::uint64_t trace = rec.new_trace_id();
  const std::uint64_t root = rec.begin_span(
      0.5, TraceCategory::kTask, "task.life", TraceContext{trace, 0});
  const std::uint64_t leg = rec.begin_span(0.5, TraceCategory::kTask,
                                           "leg.queue",
                                           TraceContext{trace, root});
  rec.end_span(2.0, TraceCategory::kTask, "leg.queue",
               TraceContext{trace, leg});
  std::ostringstream os;
  rec.write_jsonl(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace\":" + std::to_string(trace)),
            std::string::npos);
  EXPECT_NE(doc.find("\"span\":" + std::to_string(root)), std::string::npos);
  EXPECT_NE(doc.find("\"parent\":" + std::to_string(root)),
            std::string::npos);
  // Context-free instants stay byte-identical to the pre-span format: no
  // ph/trace/span/parent keys appear on them.
  rec.clear();
  rec.record(1.0, TraceCategory::kNet, "net.drop");
  std::ostringstream plain;
  rec.write_jsonl(plain);
  EXPECT_NE(plain.str().find("{\"t\":1,\"cat\":\"net\",\"name\":"
                             "\"net.drop\"}\n"),
            std::string::npos);
}

TEST(TraceSpans, ChromeTraceFoldsMatchedPairsIntoCompleteSlices) {
  TraceRecorder rec(8);
  const std::uint64_t trace = rec.new_trace_id();
  const std::uint64_t root = rec.begin_span(
      1.0, TraceCategory::kTask, "task.life", TraceContext{trace, 0});
  rec.end_span(3.0, TraceCategory::kTask, "task.life",
               TraceContext{trace, root});
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string doc = os.str();
  // Matched B/E pair -> one complete "X" slice of 2 s == 2e6 trace us.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":2000000"), std::string::npos);
  // Ring accounting rides along for consumers of the Perfetto view.
  EXPECT_NE(doc.find("\"otherData\""), std::string::npos);
}

// ---- TraceAnalysis ----------------------------------------------------------

TEST(TraceAnalysis, BreakdownLegsSumToEndToEnd) {
  TraceRecorder rec(64);
  const std::uint64_t trace = rec.new_trace_id();
  TraceContext root_ctx{trace, 0};
  root_ctx.span_id = rec.begin_span(0.0, TraceCategory::kTask, "task.life",
                                    root_ctx, {{"task", 42.0}});
  // Legs partition [0, 10]: queue [0,2], dispatch [2,3], exec [3,10] with
  // 1 s of input transfer that the analyzer re-attributes to the network.
  std::uint64_t leg =
      rec.begin_span(0.0, TraceCategory::kTask, "leg.queue", root_ctx);
  rec.end_span(2.0, TraceCategory::kTask, "leg.queue",
               TraceContext{trace, leg});
  leg = rec.begin_span(2.0, TraceCategory::kTask, "leg.dispatch", root_ctx);
  rec.end_span(3.0, TraceCategory::kTask, "leg.dispatch",
               TraceContext{trace, leg});
  leg = rec.begin_span(3.0, TraceCategory::kTask, "leg.exec", root_ctx,
                       {{"input_s", 1.0}});
  rec.end_span(10.0, TraceCategory::kTask, "leg.exec",
               TraceContext{trace, leg});
  rec.end_span(10.0, TraceCategory::kTask, "task.life", root_ctx,
               {{"outcome", kOutcomeCompleted}});

  std::stringstream ss;
  rec.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  std::string error;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta, &error)) << error;
  EXPECT_TRUE(meta.complete());

  const TraceAnalysis analysis(events);
  ASSERT_EQ(analysis.tasks().size(), 1u);
  const TaskBreakdown& bd = analysis.tasks()[0];
  EXPECT_EQ(bd.trace_id, trace);
  EXPECT_DOUBLE_EQ(bd.task, 42.0);
  EXPECT_EQ(bd.outcome, "completed");
  EXPECT_DOUBLE_EQ(bd.end_to_end(), 10.0);
  EXPECT_DOUBLE_EQ(bd.queueing, 2.0);
  EXPECT_DOUBLE_EQ(bd.network, 2.0);  // 1 s dispatch + 1 s input transfer
  EXPECT_DOUBLE_EQ(bd.compute, 6.0);  // exec minus its input share
  EXPECT_DOUBLE_EQ(bd.recovery, 0.0);
  EXPECT_DOUBLE_EQ(bd.other, 0.0);
  EXPECT_DOUBLE_EQ(bd.legs_sum(), bd.end_to_end());
  EXPECT_EQ(analysis.orphaned_spans(), 0u);
  EXPECT_EQ(analysis.unmatched_ends(), 0u);
}

TEST(TraceAnalysis, OrphanedSpansAreDiagnosedNotInvented) {
  TraceRecorder rec(64);
  const std::uint64_t trace = rec.new_trace_id();
  TraceContext root_ctx{trace, 0};
  root_ctx.span_id =
      rec.begin_span(1.0, TraceCategory::kTask, "task.life", root_ctx);
  rec.begin_span(1.0, TraceCategory::kTask, "leg.queue", root_ctx);
  // Run ends here: neither span is ever closed.
  std::stringstream ss;
  rec.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta));
  const TraceAnalysis analysis(events);
  ASSERT_EQ(analysis.tasks().size(), 1u);
  // The open root is reported as the task's outcome, not double-counted as
  // an orphan; the unclosed leg is.
  EXPECT_EQ(analysis.tasks()[0].outcome, "open");
  EXPECT_EQ(analysis.tasks()[0].orphaned_spans, 1u);
  EXPECT_EQ(analysis.orphaned_spans(), 1u);
}

TEST(TraceAnalysis, FaultWindowAnnotationsMergeAndSplitTaskTime) {
  TraceRecorder rec(64);
  // Two overlapping storm windows [2,5] + [4,8] (merge to [2,8]) and a
  // disjoint one [20,22], stamped the way fault::FaultInjector does.
  rec.record(2.0, TraceCategory::kFault, "fault.window",
             {{"start", 2.0}, {"end", 5.0}, {"radius", 100.0}});
  rec.record(4.0, TraceCategory::kFault, "fault.window",
             {{"start", 4.0}, {"end", 8.0}, {"radius", 100.0}});
  rec.record(20.0, TraceCategory::kFault, "fault.window",
             {{"start", 20.0}, {"end", 22.0}, {"radius", 100.0}});
  const std::uint64_t trace = rec.new_trace_id();
  TraceContext root_ctx{trace, 0};
  root_ctx.span_id = rec.begin_span(0.0, TraceCategory::kTask, "task.life",
                                    root_ctx, {{"task", 1.0}});
  rec.end_span(10.0, TraceCategory::kTask, "task.life", root_ctx,
               {{"outcome", kOutcomeCompleted}});

  std::stringstream ss;
  rec.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta));

  const auto windows = extract_fault_windows(events);
  ASSERT_EQ(windows.size(), 2u);  // overlap merged into a disjoint union
  EXPECT_DOUBLE_EQ(windows[0].start, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 8.0);
  EXPECT_DOUBLE_EQ(windows[1].start, 20.0);
  EXPECT_DOUBLE_EQ(storm_overlap(windows, 0.0, 10.0), 6.0);
  EXPECT_DOUBLE_EQ(storm_overlap(windows, 9.0, 12.0), 0.0);
  EXPECT_DOUBLE_EQ(storm_overlap(windows, 7.0, 21.0), 2.0);  // 1 + 1

  const TraceAnalysis analysis(events);
  ASSERT_EQ(analysis.tasks().size(), 1u);
  const TaskBreakdown& bd = analysis.tasks()[0];
  EXPECT_DOUBLE_EQ(bd.storm, 6.0);  // [0,10] ∩ [2,8]
  EXPECT_DOUBLE_EQ(bd.clear_sky(), 4.0);
  ASSERT_EQ(analysis.fault_windows().size(), 2u);
}

TEST(TraceAnalysis, StorageRootsGetTheirOwnBreakdown) {
  TraceRecorder rec(64);
  rec.record(1.0, TraceCategory::kFault, "fault.window",
             {{"start", 1.0}, {"end", 2.0}, {"radius", 50.0}});
  // A storage.put whose two attempt legs partition [1.0, 1.5] exactly,
  // writing to holders 7 and 3.
  const std::uint64_t trace = rec.new_trace_id();
  TraceContext op{trace, 0};
  op.span_id = rec.begin_span(1.0, TraceCategory::kStorage, "storage.put", op,
                              {{"object", 4.0}, {"version", 2.0}});
  TraceContext leg{trace, op.span_id};
  leg.span_id =
      rec.begin_span(1.0, TraceCategory::kStorage, "storage.leg.attempt", op,
                     {{"attempt", 1.0}});
  rec.record(1.0, TraceCategory::kStorage, "storage.replica.write", leg,
             {{"holder", 7.0}, {"version", 2.0}});
  rec.end_span(1.2, TraceCategory::kStorage, "storage.leg.attempt", leg);
  leg.span_id =
      rec.begin_span(1.2, TraceCategory::kStorage, "storage.leg.attempt", op,
                     {{"attempt", 2.0}});
  rec.record(1.2, TraceCategory::kStorage, "storage.replica.write", leg,
             {{"holder", 3.0}, {"version", 2.0}});
  rec.end_span(1.5, TraceCategory::kStorage, "storage.leg.attempt", leg);
  rec.end_span(1.5, TraceCategory::kStorage, "storage.put", op,
               {{"acked", 1.0}, {"replicas", 2.0}});
  // A root the analyzer has never heard of: skipped and counted, not fatal.
  TraceContext weird{rec.new_trace_id(), 0};
  weird.span_id =
      rec.begin_span(3.0, TraceCategory::kTask, "weird.root", weird);
  rec.end_span(4.0, TraceCategory::kTask, "weird.root", weird);

  std::stringstream ss;
  rec.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta));
  const TraceAnalysis analysis(events);

  EXPECT_TRUE(analysis.tasks().empty());  // neither root is a task
  EXPECT_EQ(analysis.unknown_roots(), 1u);
  ASSERT_EQ(analysis.storage_ops().size(), 1u);
  const StorageOpBreakdown& put = analysis.storage_ops()[0];
  EXPECT_EQ(put.kind, "put");
  EXPECT_DOUBLE_EQ(put.object, 4.0);
  EXPECT_TRUE(put.closed);
  EXPECT_TRUE(put.ok);
  EXPECT_EQ(put.attempts, 2);
  EXPECT_DOUBLE_EQ(put.e2e(), 0.5);
  EXPECT_DOUBLE_EQ(put.legs, put.e2e());  // legs partition the op exactly
  ASSERT_EQ(put.replicas.size(), 2u);     // sorted, deduped holder set
  EXPECT_EQ(put.replicas[0], 3u);
  EXPECT_EQ(put.replicas[1], 7u);
  EXPECT_TRUE(put.in_storm);
  EXPECT_DOUBLE_EQ(put.storm, 0.5);  // fully inside [1,2]
}

// ---- storage tracing end-to-end ---------------------------------------------

core::SystemConfig traced_storage_system(std::uint64_t seed, bool tracing) {
  core::SystemConfig sys;
  sys.scenario.environment = core::Environment::kParkingLot;
  sys.scenario.seed = seed;
  sys.scenario.vehicles = 20;
  sys.scenario.vehicles_parked = true;
  sys.architecture = core::CloudArchitecture::kStationary;
  sys.stationary_radius = 5000.0;
  sys.cloud.dependability.detector.enabled = true;
  sys.storage.enabled = true;
  sys.telemetry.tracing = tracing;
  return sys;
}

TEST(StorageTelemetry, StorageSpansPartitionOpLatency) {
  core::VehicularCloudSystem system(traced_storage_system(31, true));
  system.start();
  system.run_for(2.0);
  auto& store = *system.storage();
  auto& sim = system.scenario().simulator();

  const FileId object = store.create(sim.now());
  ASSERT_TRUE(store.put(1, object, sim.now()).acked);
  ASSERT_TRUE(store.get(2, object, sim.now()).ok);
  // Under a blanket blackout every radio leg is lost, so the op burns its
  // whole retry budget: attempts > 1 and non-zero virtual elapsed time.
  const auto [lo, hi] = system.scenario().road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  auto& channel = system.scenario().network().channel();
  const std::uint64_t token = channel.add_blackout({center, 1e6});
  store.get(3, object, sim.now());
  channel.remove_blackout(token);

  EXPECT_EQ(store.stats().put_latency_tail.count(), 1u);
  EXPECT_EQ(store.stats().get_latency_tail.count(), 2u);

  std::stringstream ss;
  system.telemetry()->trace.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta));
  const TraceAnalysis analysis(events);

  ASSERT_EQ(analysis.storage_ops().size(), 3u);
  std::size_t puts = 0, gets = 0;
  bool saw_retries = false;
  for (const StorageOpBreakdown& bd : analysis.storage_ops()) {
    ASSERT_TRUE(bd.closed);
    (bd.kind == "put" ? puts : gets) += 1;
    EXPECT_DOUBLE_EQ(bd.object, static_cast<double>(object.value()));
    EXPECT_GE(bd.attempts, 1);
    // The partition invariant: attempt legs sum EXACTLY to the op's
    // end-to-end time (each leg spans [its start, the next one's start)).
    EXPECT_NEAR(bd.legs, bd.e2e(), 1e-9) << bd.kind;
    if (bd.attempts > 1) {
      saw_retries = true;
      EXPECT_GT(bd.e2e(), 0.0);
    }
    if (bd.ok) {
      EXPECT_FALSE(bd.replicas.empty());
    }
  }
  EXPECT_EQ(puts, 1u);
  EXPECT_EQ(gets, 2u);
  EXPECT_TRUE(saw_retries);  // the blacked-out get retried
  EXPECT_EQ(analysis.unknown_roots(), 0u);
}

TEST(StorageTelemetry, TracingOffLeavesStorageBehaviorUntouched) {
  // Instrumentation draws no randomness and allocates no ids when off, so
  // the same seed must produce bit-identical storage behavior either way.
  auto run = [](bool tracing) {
    core::VehicularCloudSystem system(traced_storage_system(33, tracing));
    system.start();
    system.run_for(2.0);
    auto& store = *system.storage();
    auto& sim = system.scenario().simulator();
    const FileId object = store.create(sim.now());
    const auto w = store.put(1, object, sim.now());
    const auto r = store.get(2, object, sim.now());
    system.run_for(10.0);
    return std::make_tuple(w.acked, w.version, w.replicas, r.ok, r.version,
                           store.stats().writes_acked,
                           store.stats().repair_copies,
                           store.stats().put_latency_tail.sum(),
                           store.stats().get_latency_tail.sum(),
                           system.scenario().simulator().events_processed());
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry reg;
  auto& c = reg.counter("net.unicast.sent");
  c.inc();
  c.inc(2.5);
  double depth = 7.0;
  reg.gauge("cloud.task.pending", [&depth] { return depth; });
  auto& h = reg.histogram("cloud.task.latency");
  h.add(1.0);
  h.add(3.0);

  EXPECT_EQ(reg.metric_count(), 3u);
  EXPECT_DOUBLE_EQ(reg.value("net.unicast.sent"), 3.5);
  EXPECT_DOUBLE_EQ(reg.value("cloud.task.pending"), 7.0);
  EXPECT_DOUBLE_EQ(reg.value("cloud.task.latency"), 2.0);  // mean
  EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);
  // counter() is idempotent: same name -> same counter.
  reg.counter("net.unicast.sent").inc();
  EXPECT_DOUBLE_EQ(reg.value("net.unicast.sent"), 4.5);
}

TEST(MetricsRegistry, SamplerProducesTimeSeries) {
  sim::Simulator sim;
  MetricsRegistry reg;
  auto& c = reg.counter("a.ticks.count");
  reg.gauge("b.clock.now", [&sim] { return sim.now(); });
  // Tick off the sampler's phase so same-instant tie order can't matter.
  sim.schedule_every(1.0, [&c] { c.inc(); }, 0.5);
  reg.start_sampling(sim, 2.0);
  sim.run_until(6.5);

  // Baseline at t=0 plus samples at t=2,4,6.
  ASSERT_EQ(reg.sample_count(), 4u);
  ASSERT_EQ(reg.series_columns(),
            (std::vector<std::string>{"a.ticks.count", "b.clock.now"}));

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "t,a.ticks.count,b.clock.now\n"
            "0,0,0\n"
            "2,2,2\n"
            "4,4,4\n"
            "6,6,6\n");

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_EQ(json.str(),
            "{\"columns\":[\"t\",\"a.ticks.count\",\"b.clock.now\"],"
            "\"samples\":[[0,0,0],[2,2,2],[4,4,4],[6,6,6]]}\n");
}

TEST(MetricsRegistry, HistogramContributesCountAndMeanColumns) {
  sim::Simulator sim;
  MetricsRegistry reg;
  auto& h = reg.histogram("x.latency");
  h.add(2.0);
  h.add(4.0);
  reg.sample(0.0);
  ASSERT_EQ(reg.series_columns(),
            (std::vector<std::string>{"x.latency.count", "x.latency.mean"}));
  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_EQ(csv.str(), "t,x.latency.count,x.latency.mean\n0,2,3\n");
}

// ---- BenchReporter ----------------------------------------------------------

TEST(BenchReporter, ParsesJsonFlagAndEmitsSchema) {
  const char* argv[] = {"bench_x", "--runs", "3", "--json", "/tmp/out.json"};
  BenchReporter rep("bench_x", 5, const_cast<char**>(argv));
  EXPECT_TRUE(rep.enabled());
  EXPECT_EQ(rep.path(), "/tmp/out.json");

  Table t("demo", {"mode", "rate"});
  t.add_row({"greedy", "0.93"});
  rep.add(t);
  rep.add_scalar("wall_s", 1.25);

  EXPECT_EQ(rep.to_json(),
            "{\"schema\":\"vcl-bench-v1\",\"bench\":\"bench_x\","
            "\"scalars\":{\"wall_s\":1.25},"
            "\"tables\":[{\"title\":\"demo\",\"columns\":[\"mode\",\"rate\"],"
            "\"rows\":[[\"greedy\",0.93]]}]}\n");
}

TEST(BenchReporter, InertWithoutFlag) {
  const char* argv[] = {"bench_x"};
  BenchReporter rep("bench_x", 1, const_cast<char**>(argv));
  EXPECT_FALSE(rep.enabled());
  EXPECT_TRUE(rep.write());  // no-op succeeds
}

TEST(BenchReporter, WritesFile) {
  const std::string path = ::testing::TempDir() + "vcl_bench_out.json";
  const char* argv[] = {"bench_x", "--json", path.c_str()};
  BenchReporter rep("bench_x", 3, const_cast<char**>(argv));
  rep.add_scalar("n", 2.0);
  ASSERT_TRUE(rep.write());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\":\"vcl-bench-v1\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"n\":2"), std::string::npos);
}

// ---- end-to-end through VehicularCloudSystem --------------------------------

core::SystemConfig telemetry_config() {
  core::SystemConfig config;
  config.scenario.vehicles = 20;
  // Hardened dispatch/heartbeats make the cloud talk over the network, so
  // the trace exercises the net.* category too.
  config.cloud.dependability.detector.enabled = true;
  config.telemetry.tracing = true;
  config.telemetry.metrics = true;
  config.telemetry.sample_period = 1.0;
  config.telemetry.profile_kernel = true;
  return config;
}

TEST(SystemTelemetry, DisabledByDefault) {
  core::SystemConfig config;
  config.scenario.vehicles = 5;
  core::VehicularCloudSystem system(config);
  system.start();
  EXPECT_EQ(system.telemetry(), nullptr);
  EXPECT_FALSE(system.scenario().simulator().profiling());
}

TEST(SystemTelemetry, FullRunProducesTraceMetricsAndProfile) {
  core::VehicularCloudSystem system(telemetry_config());
  system.start();
  ASSERT_NE(system.telemetry(), nullptr);
  vcloud::WorkloadConfig workload;
  workload.mean_work = 5.0;
  system.submit_workload(workload, 10);
  system.run_for(30.0);

  obs::Telemetry& tel = *system.telemetry();
  // Tracing: submissions and dispatches left task.* events on the ring.
  const auto evs = tel.trace.events();
  ASSERT_FALSE(evs.empty());
  std::size_t submits = 0;
  std::size_t net_events = 0;
  for (const auto& ev : evs) {
    if (std::string(ev.name) == "task.submit") ++submits;
    if (ev.cat == TraceCategory::kNet) ++net_events;
  }
  EXPECT_EQ(submits, 10u);
  EXPECT_GT(net_events, 0u);

  // Metrics: the sampler ran every second and captured >= 5 series.
  EXPECT_GE(tel.metrics.series_columns().size(), 5u);
  EXPECT_GE(tel.metrics.sample_count(), 30u);
  EXPECT_DOUBLE_EQ(tel.metrics.value("cloud.task.submitted"), 10.0);

  // Exports parse-shaped output without crashing.
  std::ostringstream trace_json;
  tel.trace.write_chrome_trace(trace_json);
  EXPECT_NE(trace_json.str().find("\"traceEvents\""), std::string::npos);
  std::ostringstream csv;
  tel.metrics.write_csv(csv);
  EXPECT_EQ(csv.str().compare(0, 2, "t,"), 0);

  // Kernel profile: labeled activities attributed events.
  const auto prof = system.scenario().simulator().profile();
  ASSERT_FALSE(prof.empty());
  bool saw_mobility = false;
  for (const auto& e : prof) {
    if (e.label == "mobility.step") saw_mobility = true;
  }
  EXPECT_TRUE(saw_mobility);
  EXPECT_GT(system.scenario().simulator().queue_high_water(), 0u);
}

TEST(SystemTelemetry, TraceCategoryMaskRespected) {
  core::SystemConfig config = telemetry_config();
  config.telemetry.profile_kernel = false;
  config.telemetry.metrics = false;
  config.telemetry.trace_categories = category_bit(TraceCategory::kTask);
  core::VehicularCloudSystem system(config);
  system.start();
  vcloud::WorkloadConfig workload;
  system.submit_workload(workload, 5);
  system.run_for(10.0);
  const auto evs = system.telemetry()->trace.events();
  ASSERT_FALSE(evs.empty());
  for (const auto& ev : evs) EXPECT_EQ(ev.cat, TraceCategory::kTask);
}

TEST(SystemTelemetry, TelemetryOffMatchesSeedDeterminism) {
  // A telemetry-on run must not perturb the simulation itself: final cloud
  // stats match a telemetry-off run with the same seed bit for bit.
  core::SystemConfig off;
  off.scenario.vehicles = 20;
  core::SystemConfig on = off;
  on.telemetry.tracing = true;
  on.telemetry.profile_kernel = true;

  auto run = [](const core::SystemConfig& cfg) {
    core::VehicularCloudSystem system(cfg);
    system.start();
    vcloud::WorkloadConfig workload;
    system.submit_workload(workload, 8);
    system.run_for(25.0);
    return std::make_tuple(system.cloud().stats().completed,
                           system.cloud().stats().submitted,
                           system.cloud().stats().latency.sum(),
                           system.scenario().simulator().events_processed());
  };
  EXPECT_EQ(run(off), run(on));
}

TEST(SystemTelemetry, TracingIsInertUnderInjectedCrashes) {
  // The determinism contract must survive the hardened path too: heartbeats,
  // retries, checkpoints and crash recovery all emit spans, and none of it
  // may perturb the simulation.
  core::SystemConfig off;
  off.scenario.vehicles = 20;
  off.cloud.dependability.detector.enabled = true;
  off.cloud.dependability.retry.enabled = true;
  off.cloud.dependability.checkpoint.enabled = true;
  off.faults.vehicle_crash_rate = 0.05;
  off.faults.horizon = 60.0;
  core::SystemConfig on = off;
  on.telemetry.tracing = true;

  auto run = [](const core::SystemConfig& cfg) {
    core::VehicularCloudSystem system(cfg);
    system.start();
    vcloud::WorkloadConfig workload;
    system.submit_workload(workload, 12);
    system.run_for(60.0);
    return std::make_tuple(system.cloud().stats().completed,
                           system.cloud().stats().submitted,
                           system.cloud().stats().crash_kills,
                           system.cloud().stats().latency.sum(),
                           system.scenario().simulator().events_processed());
  };
  EXPECT_EQ(run(off), run(on));
}

TEST(SystemTelemetry, CrashedTaskKeepsOneCausalTreeAcrossRecovery) {
  // The PR's acceptance scenario: a task whose worker crashes mid-execution
  // is detected, recovered and completed under ONE trace_id, and the
  // reassembled legs still partition its whole lifetime.
  core::SystemConfig config;
  config.scenario.environment = core::Environment::kParkingLot;
  config.scenario.vehicles = 12;
  config.scenario.vehicles_parked = true;
  config.architecture = core::CloudArchitecture::kStationary;
  config.stationary_radius = 5000.0;
  config.cloud.dependability.detector.enabled = true;
  config.cloud.dependability.retry.enabled = true;
  config.cloud.dependability.checkpoint.enabled = true;
  config.telemetry.tracing = true;
  core::VehicularCloudSystem system(config);
  system.start();

  vcloud::Task spec;
  spec.work = 50.0;
  spec.deadline = 0.0;  // none: the crash must not expire it
  const TaskId id = system.submit(spec);
  system.run_for(5.0);
  const vcloud::Task* task = system.cloud().find_task(id);
  ASSERT_NE(task, nullptr);
  ASSERT_EQ(task->state, vcloud::TaskState::kRunning);
  const std::uint64_t trace_id = task->trace.trace_id;
  ASSERT_NE(trace_id, 0u);
  system.cloud().crash_worker(task->worker);
  system.run_for(600.0);

  task = system.cloud().find_task(id);
  ASSERT_NE(task, nullptr);
  ASSERT_EQ(task->state, vcloud::TaskState::kCompleted);
  // The terminal transition closed the root span but kept the tree's id.
  EXPECT_EQ(task->trace.trace_id, trace_id);
  EXPECT_EQ(task->trace.span_id, 0u);

  std::stringstream ss;
  system.telemetry()->trace.write_jsonl(ss);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  std::string error;
  ASSERT_TRUE(parse_trace_jsonl(ss, events, meta, &error)) << error;
  ASSERT_TRUE(meta.complete());

  const TraceAnalysis analysis(events);
  const TaskBreakdown* bd = analysis.find(trace_id);
  ASSERT_NE(bd, nullptr);
  EXPECT_EQ(bd->outcome, "completed");
  EXPECT_GE(bd->crashes, 1);
  EXPECT_GT(bd->recovery, 0.0);  // detection latency is attributed, not lost
  EXPECT_GT(bd->compute, 0.0);
  EXPECT_EQ(bd->orphaned_spans, 0u);
  EXPECT_NEAR(bd->legs_sum(), bd->end_to_end(), 1e-9);

  // The whole story — submit, dispatch, exec, crash, recover, re-exec,
  // complete — rode a single causal tree.
  std::size_t in_tree = 0;
  bool saw_recover = false;
  for (const auto& ev : system.telemetry()->trace.events()) {
    if (ev.trace_id != trace_id) continue;
    ++in_tree;
    if (std::string(ev.name) == "leg.recover") saw_recover = true;
  }
  EXPECT_GE(in_tree, 10u);
  EXPECT_TRUE(saw_recover);
}

// ---- write_telemetry --------------------------------------------------------

TEST(Telemetry, WriteTelemetryCreatesTheExportTree) {
  TelemetryConfig cfg;
  cfg.tracing = true;
  cfg.metrics = true;
  Telemetry tel(cfg);
  tel.trace.record(1.0, TraceCategory::kTask, "task.submit");
  tel.metrics.counter("x.count").inc();
  tel.metrics.sample(0.0);

  const std::string dir =
      ::testing::TempDir() + "vcl_write_telemetry/nested/rep0";
  ASSERT_TRUE(write_telemetry(tel, dir));  // creates the directories
  EXPECT_TRUE(std::filesystem::exists(dir + "/trace.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/trace_chrome.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.csv"));

  std::ifstream in(dir + "/trace.jsonl");
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_NE(first_line.find("\"meta\":\"vcl-trace-v1\""), std::string::npos);
}

// ---- run-health report (tools/vcl_report) -----------------------------------

TEST(RunHealth, MergesArtifactsAndAttributesStormLatency) {
  TelemetryConfig cfg;
  cfg.tracing = true;
  cfg.metrics = true;
  Telemetry tel(cfg);
  // One fault window [1,2]; a put fully inside it, a get in clear sky.
  tel.trace.record(1.0, TraceCategory::kFault, "fault.window",
                   {{"start", 1.0}, {"end", 2.0}, {"radius", 9.0}});
  {
    TraceContext op{tel.trace.new_trace_id(), 0};
    op.span_id = tel.trace.begin_span(1.0, TraceCategory::kStorage,
                                      "storage.put", op, {{"object", 1.0}});
    tel.trace.end_span(1.5, TraceCategory::kStorage, "storage.put", op,
                       {{"acked", 1.0}});
  }
  {
    TraceContext op{tel.trace.new_trace_id(), 0};
    op.span_id = tel.trace.begin_span(5.0, TraceCategory::kStorage,
                                      "storage.get", op, {{"object", 1.0}});
    tel.trace.end_span(5.25, TraceCategory::kStorage, "storage.get", op,
                       {{"ok", 1.0}});
  }
  {
    TraceContext task{tel.trace.new_trace_id(), 0};
    task.span_id = tel.trace.begin_span(0.0, TraceCategory::kTask,
                                        "task.life", task, {{"task", 1.0}});
    tel.trace.end_span(4.0, TraceCategory::kTask, "task.life", task,
                       {{"outcome", kOutcomeCompleted}});
  }
  tel.metrics.counter("x.count").inc();
  tel.metrics.counter("x.count").inc();
  auto& sk = tel.metrics.sketch("demo.latency");
  sk.add(0.1);
  sk.add(0.2);
  sk.add(0.4);
  tel.metrics.sample(0.0);

  const std::string dir = ::testing::TempDir() + "vcl_run_health/rep0";
  ASSERT_TRUE(write_telemetry(tel, dir));
  {
    std::ofstream v(dir + "/violations.jsonl");
    v << R"({"meta":"vcl-violations-v1","seed":7,"checks_run":100,)"
      << R"("violations":2})" << "\n"
      << R"({"t":1.5,"invariant":"storage.durability",)"
      << R"("detail":"object 1 lost every copy","task":3,"seed":7})" << "\n"
      << R"({"t":2.5,"invariant":"task.conservation",)"
      << R"("detail":"states do not sum","seed":7})" << "\n";
  }

  RunHealth h;
  std::string error;
  ASSERT_TRUE(build_run_health({dir}, h, &error)) << error;
  EXPECT_TRUE(h.have_trace);
  EXPECT_TRUE(h.have_metrics);
  EXPECT_TRUE(h.have_sketches);
  EXPECT_TRUE(h.have_violations);

  EXPECT_EQ(h.tasks, 1u);
  EXPECT_EQ(h.tasks_closed, 1u);
  EXPECT_DOUBLE_EQ(h.task_e2e_s, 4.0);
  EXPECT_DOUBLE_EQ(h.task_storm_s, 1.0);  // [0,4] ∩ [1,2]
  EXPECT_EQ(h.storage_ops, 2u);
  EXPECT_EQ(h.storage_in_storm, 1u);
  EXPECT_EQ(h.fault_windows, 1u);
  EXPECT_DOUBLE_EQ(h.fault_window_s, 1.0);
  // The storm/clear split is exactly what the acceptance criterion wants:
  // the in-storm put latency lands in put_storm_tail, nothing leaks into
  // the clear-sky cell (and vice versa for the get).
  EXPECT_EQ(h.put_storm_tail.count(), 1u);
  EXPECT_EQ(h.put_clear_tail.count(), 0u);
  EXPECT_DOUBLE_EQ(h.put_storm_tail.max(), 0.5);
  EXPECT_EQ(h.get_storm_tail.count(), 0u);
  EXPECT_EQ(h.get_clear_tail.count(), 1u);
  EXPECT_DOUBLE_EQ(h.get_clear_tail.max(), 0.25);

  EXPECT_DOUBLE_EQ(h.counters.at("x.count"), 2.0);
  ASSERT_EQ(h.sketches.count("demo.latency"), 1u);
  const QuantileSketch& rebuilt = h.sketches.at("demo.latency");
  EXPECT_EQ(rebuilt.count(), 3u);
  // Reconstruction from bucket snapshots reproduces quantiles exactly.
  EXPECT_EQ(rebuilt.quantile(0.5), sk.quantile(0.5));
  EXPECT_EQ(rebuilt.quantile(0.999), sk.quantile(0.999));

  EXPECT_EQ(h.checks_run, 100u);
  EXPECT_EQ(h.violation_count, 2u);
  ASSERT_EQ(h.violations.size(), 2u);
  EXPECT_EQ(h.violations[0].invariant, "storage.durability");
  EXPECT_DOUBLE_EQ(h.violations[0].task, 3.0);
  EXPECT_DOUBLE_EQ(h.violations[1].task, -1.0);  // not task-scoped

  // Merging the same directory twice doubles every additive aggregate —
  // and sketch merges stay exact (bucket-count addition).
  RunHealth twice;
  ASSERT_TRUE(build_run_health({dir, dir}, twice, &error)) << error;
  EXPECT_EQ(twice.storage_ops, 4u);
  EXPECT_DOUBLE_EQ(twice.counters.at("x.count"), 4.0);
  EXPECT_EQ(twice.sketches.at("demo.latency").count(), 6u);
  // A doubled distribution has the same shape: the median bucket (and the
  // exact extremes) must not move.
  EXPECT_EQ(twice.sketches.at("demo.latency").quantile(0.5),
            rebuilt.quantile(0.5));
  EXPECT_EQ(twice.sketches.at("demo.latency").max(), rebuilt.max());
  EXPECT_EQ(twice.violation_count, 4u);

  // The writers must render both views without tripping over anything.
  std::ostringstream text, json;
  write_health_text(text, h);
  write_health_json(json, h);
  EXPECT_NE(text.str().find("2 VIOLATION"), std::string::npos);
  EXPECT_NE(json.str().find("\"schema\":\"vcl-report-v1\""), std::string::npos);
  EXPECT_NE(json.str().find("\"in_storm\""), std::string::npos);
}

TEST(RunHealth, EmptyDirectoryIsAnErrorNotAnEmptyReport) {
  const std::string dir = ::testing::TempDir() + "vcl_run_health_empty";
  std::filesystem::create_directories(dir);
  RunHealth h;
  std::string error;
  EXPECT_FALSE(build_run_health({dir}, h, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace vcl::obs
