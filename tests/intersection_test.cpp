// Intersection control: fixed-cycle signals and virtual traffic lights.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/vtl.h"
#include "mobility/intersection.h"

namespace vcl {
namespace {

using mobility::ApproachGroup;

TEST(ApproachGroupTest, ClassifiesByDominantAxis) {
  geo::RoadNetwork net;
  const auto a = net.add_node({0, 0});
  const auto b = net.add_node({100, 0});
  const auto c = net.add_node({0, 100});
  const auto ew = net.add_link(a, b, 10.0);
  const auto ns = net.add_link(a, c, 10.0);
  EXPECT_EQ(mobility::approach_group(net, ew), ApproachGroup::kEastWest);
  EXPECT_EQ(mobility::approach_group(net, ns), ApproachGroup::kNorthSouth);
}

TEST(IntersectionMapTest, OnlyRealIntersectionsSignalized) {
  // A 3x3 grid: the center node has 4 incoming links; corners have 2.
  const auto net = geo::make_manhattan_grid(3, 3, 100.0);
  const mobility::IntersectionMap map(net);
  EXPECT_TRUE(map.is_signalized(NodeId{4}));   // center
  EXPECT_FALSE(map.is_signalized(NodeId{0}));  // corner
  EXPECT_FALSE(map.signalized().empty());
}

TEST(FixedCycle, AlternatesGroups) {
  const auto net = geo::make_manhattan_grid(3, 3, 100.0);
  sim::Simulator sim;
  mobility::FixedCycleController ctrl(net, sim, 10.0);
  // Find an EW link into the center node.
  LinkId ew_link, ns_link;
  for (const auto& l : net.links()) {
    if (!(l.to == NodeId{4})) continue;
    if (mobility::approach_group(net, l.id) == ApproachGroup::kEastWest) {
      ew_link = l.id;
    } else {
      ns_link = l.id;
    }
  }
  ASSERT_TRUE(ew_link.valid());
  ASSERT_TRUE(ns_link.valid());
  // At any instant exactly one of the groups has green.
  bool saw_ew = false;
  bool saw_ns = false;
  for (double t = 0.5; t < 40.0; t += 5.0) {
    sim.run_until(t);
    const bool ew = ctrl.can_enter(ew_link, VehicleId{1});
    const bool ns = ctrl.can_enter(ns_link, VehicleId{1});
    EXPECT_NE(ew, ns) << "both groups green/red at t=" << t;
    saw_ew = saw_ew || ew;
    saw_ns = saw_ns || ns;
  }
  EXPECT_TRUE(saw_ew);
  EXPECT_TRUE(saw_ns);
}

TEST(FixedCycle, NonSignalizedAlwaysGreen) {
  const auto net = geo::make_manhattan_grid(3, 3, 100.0);
  sim::Simulator sim;
  mobility::FixedCycleController ctrl(net, sim, 10.0);
  // A link into a corner node (2 in-links) is never gated.
  for (const auto& l : net.links()) {
    if (l.to == NodeId{0}) {
      for (double t = 0; t < 40; t += 3) {
        sim.run_until(t);
        EXPECT_TRUE(ctrl.can_enter(l.id, VehicleId{1}));
      }
      break;
    }
  }
}

TEST(RedLight, VehicleStopsAtStopLine) {
  const auto net = geo::make_manhattan_grid(3, 3, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(net, Rng(1));
  // Permanent red for everything into the center node.
  traffic.set_right_of_way([&](LinkId link, VehicleId) {
    return !(net.link(link).to == NodeId{4});
  });
  // Route through the center.
  const auto path = net.shortest_path(NodeId{3}, NodeId{5});  // 3 -> 4 -> 5
  ASSERT_TRUE(path.has_value());
  const auto v = traffic.spawn(*path, 13.0);
  for (int i = 0; i < 600; ++i) traffic.step(0.1);
  const auto* state = traffic.find(v);
  ASSERT_NE(state, nullptr);
  // Still on the first link, stopped at the line.
  EXPECT_EQ(state->link, path->front());
  EXPECT_LT(state->speed, 0.5);
  EXPECT_GT(state->offset, net.link(path->front()).length - 20.0);
}

TEST(RedLight, GreenReleasesTheQueue) {
  const auto net = geo::make_manhattan_grid(3, 3, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(net, Rng(1));
  bool red = true;
  traffic.set_right_of_way([&](LinkId link, VehicleId) {
    return !red || !(net.link(link).to == NodeId{4});
  });
  const auto path = net.shortest_path(NodeId{3}, NodeId{5});
  const auto v = traffic.spawn(*path, 13.0);
  for (int i = 0; i < 300; ++i) traffic.step(0.1);
  ASSERT_EQ(traffic.find(v)->link, path->front());  // held at the line
  red = false;
  for (int i = 0; i < 300; ++i) traffic.step(0.1);
  const auto* state = traffic.find(v);
  // Released: crossed the junction (or finished the route and despawned).
  if (state != nullptr) {
    EXPECT_NE(state->link, path->front());
  }
}

class VtlFixture : public ::testing::Test {
 protected:
  VtlFixture() {
    core::ScenarioConfig cfg;
    cfg.vehicles = 50;
    cfg.seed = 17;
    cfg.grid_rows = 4;
    cfg.grid_cols = 4;
    scenario_ = std::make_unique<core::Scenario>(cfg);
    scenario_->start();
  }
  std::unique_ptr<core::Scenario> scenario_;
};

TEST_F(VtlFixture, ElectsLeadersAtBusyJunctions) {
  core::VtlController vtl(scenario_->network());
  vtl.attach();
  scenario_->network().traffic().set_right_of_way(
      [&vtl](LinkId l, VehicleId v) { return vtl.can_enter(l, v); });
  scenario_->run_for(30.0);
  std::size_t with_leader = 0;
  for (const NodeId node : vtl.intersections().signalized()) {
    if (vtl.leader(node).valid()) ++with_leader;
  }
  EXPECT_GT(with_leader, 0u);
}

TEST_F(VtlFixture, LeadersAreApproachingVehicles) {
  core::VtlController vtl(scenario_->network());
  vtl.decide();
  for (const NodeId node : vtl.intersections().signalized()) {
    const VehicleId leader = vtl.leader(node);
    if (!leader.valid()) continue;
    const auto* v = scenario_->traffic().find(leader);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(scenario_->road().link(v->link).to, node);
  }
}

TEST_F(VtlFixture, OneGroupGreenPerControlledJunction) {
  core::VtlController vtl(scenario_->network());
  vtl.decide();
  const auto& net = scenario_->road();
  for (const NodeId node : vtl.intersections().signalized()) {
    if (!vtl.leader(node).valid()) continue;  // uncontrolled when empty
    bool ew_green = false;
    bool ns_green = false;
    for (const auto& l : net.links()) {
      if (!(l.to == node)) continue;
      const bool green = vtl.can_enter(l.id, VehicleId{0});
      if (mobility::approach_group(net, l.id) == ApproachGroup::kEastWest) {
        ew_green = ew_green || green;
      } else {
        ns_green = ns_green || green;
      }
    }
    EXPECT_NE(ew_green, ns_green) << "junction " << node;
  }
}

TEST_F(VtlFixture, TrafficKeepsFlowingUnderVtl) {
  core::VtlController vtl(scenario_->network());
  vtl.attach();
  scenario_->network().traffic().set_right_of_way(
      [&vtl](LinkId l, VehicleId v) { return vtl.can_enter(l, v); });
  core::StopMeter meter(scenario_->traffic());
  meter.attach(scenario_->simulator());
  scenario_->run_for(120.0);
  // Controlled but not gridlocked: plenty of movement.
  EXPECT_GT(meter.mean_speed(), 2.0);
  EXPECT_LT(meter.stopped_fraction(), 0.7);
}

TEST(StopMeterTest, CountsStoppedVehicles) {
  const auto net = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(net, Rng(1));
  traffic.spawn_parked(LinkId{0}, 10.0);  // parked: excluded
  const auto path = net.shortest_path(NodeId{0}, NodeId{3});
  traffic.spawn(*path, 10.0);  // moving
  core::StopMeter meter(traffic);
  meter.sample();
  EXPECT_DOUBLE_EQ(meter.stopped_fraction(), 0.0);
  EXPECT_NEAR(meter.mean_speed(), 10.0, 1e-9);
}

}  // namespace
}  // namespace vcl
