#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace vcl::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until(10.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(h);
  sim.run_until(10.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, RecurringFiresPeriodically) {
  Simulator sim;
  int count = 0;
  sim.schedule_every(1.0, [&] { ++count; });
  sim.run_until(5.5);
  EXPECT_EQ(count, 5);  // at t=1..5
}

TEST(Simulator, RecurringFirstOverride) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_every(2.0, [&] { times.push_back(sim.now()); }, 0.5);
  sim.run_until(5.0);
  ASSERT_GE(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
  EXPECT_DOUBLE_EQ(times[2], 4.5);
}

TEST(Simulator, CancelRecurringStopsFutureFirings) {
  Simulator sim;
  int count = 0;
  const EventHandle h = sim.schedule_every(1.0, [&] { ++count; });
  sim.schedule_at(3.5, [&] { sim.cancel(h); });
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step(10.0));
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step(10.0));
  EXPECT_FALSE(sim.step(10.0));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StepRespectsHorizon) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(5.0, [&] { ++count; });
  EXPECT_FALSE(sim.step(4.0));
  EXPECT_EQ(count, 0);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_until(100.0);
  EXPECT_EQ(sim.events_processed(), 7u);
}

// Regression: cancelling a recurring activity used to park its rid in the
// cancelled-set forever (the rid never appears in the event queue, so the
// reap-on-pop path could never erase it). The set must stay empty.
TEST(Simulator, CancelRecurringDoesNotLeakCancellationEntries) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    const EventHandle h = sim.schedule_every(1.0, [&fired] { ++fired; });
    sim.cancel(h);
  }
  EXPECT_EQ(sim.pending_cancellations(), 0u);
  sim.run_until(10.0);
  // The already-queued first ticks pop as dead no-ops, but the callback
  // never runs and nothing parks in the cancelled-set.
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_cancellations(), 0u);
}

TEST(Simulator, CancelOneShotParksThenReaps) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(1.0, [] {});
  sim.cancel(h);
  // One-shot cancellations park until the queue pops the dead event...
  EXPECT_EQ(sim.pending_cancellations(), 1u);
  sim.run_until(2.0);
  // ...at which point the entry is reaped.
  EXPECT_EQ(sim.pending_cancellations(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelInvalidHandleIsNoOp) {
  Simulator sim;
  sim.cancel(EventHandle{});
  EXPECT_EQ(sim.pending_cancellations(), 0u);
}

TEST(Simulator, ProfilingAttributesEventsToLabels) {
  Simulator sim;
  sim.enable_profiling(true);
  sim.schedule_every(1.0, [] {}, -1.0, "tick.a");
  sim.schedule_at(2.5, [] {}, "shot.b");
  sim.schedule_at(3.5, [] {});  // unlabeled
  sim.run_until(5.0);

  const std::vector<ProfileEntry> prof = sim.profile();
  std::uint64_t total = 0;
  std::uint64_t ticks = 0;
  bool saw_unlabeled = false;
  for (const ProfileEntry& e : prof) {
    total += e.events;
    EXPECT_GE(e.wall_seconds, 0.0);
    if (e.label == "tick.a") ticks = e.events;
    if (e.label == "(unlabeled)") saw_unlabeled = true;
  }
  EXPECT_EQ(total, sim.events_processed());
  EXPECT_EQ(ticks, 5u);  // t=1..5
  EXPECT_TRUE(saw_unlabeled);
}

TEST(Simulator, ProfilingOffKeepsProfileEmpty) {
  Simulator sim;
  sim.schedule_at(1.0, [] {}, "shot");
  sim.run_until(2.0);
  EXPECT_TRUE(sim.profile().empty());
}

TEST(Simulator, QueueHighWaterTracksPeakDepth) {
  Simulator sim;
  EXPECT_EQ(sim.queue_high_water(), 0u);
  for (int i = 0; i < 17; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.queue_high_water(), 17u);
  sim.run_until(100.0);
  EXPECT_EQ(sim.queue_high_water(), 17u);  // high water persists after drain
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run_until(100.0);
  EXPECT_EQ(depth, 5);
}

}  // namespace
}  // namespace vcl::sim
