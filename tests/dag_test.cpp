// DAG task-graph tests (DESIGN.md §11): graph validation (cycles named by
// their back-edge, weight/bounds errors), deterministic sealing, workload
// generator shapes, config validation against the fleet size, decomposition
// scheduling end-to-end on a parked cloud (none / blind-k /
// reliability-aware), dwell-prediction edge cases, trace reduction of a
// whole graph run, the DAG-targeted chaos storm shape, and the end-to-end
// oracle demo — the deliberately stranded-node scheduler bug is caught by
// dag-node-liveness and its fault plan shrinks to a handful of events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/chaos.h"
#include "core/system.h"
#include "dag/generator.h"
#include "dag/scheduler.h"
#include "dag/task_graph.h"
#include "fault/chaos.h"
#include "geo/road_network.h"
#include "mobility/traffic.h"
#include "obs/trace_analysis.h"
#include "vcloud/dwell.h"

namespace vcl {
namespace {

// Source -> {left, right} -> sink, with fixed weights so derived quantities
// are exact.
dag::TaskGraph diamond_graph() {
  dag::TaskGraph g;
  const std::size_t src = g.add_node(4.0, 0.2);
  const std::size_t left = g.add_node(6.0, 0.2);
  const std::size_t right = g.add_node(2.0, 0.2);
  const std::size_t sink = g.add_node(3.0, 0.2);
  g.add_edge(src, left, 1.0);
  g.add_edge(src, right, 1.0);
  g.add_edge(left, sink, 0.5);
  g.add_edge(right, sink, 0.5);
  g.seal();
  return g;
}

// ---- graph validation -------------------------------------------------------

TEST(TaskGraphValidation, EmptyGraphIsRejected) {
  dag::TaskGraph g;
  EXPECT_NE(dag::validate(g), "");
  EXPECT_THROW(g.seal(), std::invalid_argument);
}

TEST(TaskGraphValidation, CycleIsReportedByItsBackEdge) {
  dag::TaskGraph g;
  g.add_node(1.0);
  g.add_node(1.0);
  g.add_node(1.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // closes the cycle
  const std::string problem = dag::validate(g);
  EXPECT_NE(problem.find("back-edge"), std::string::npos) << problem;
  try {
    g.seal();
    FAIL() << "seal() accepted a cyclic graph";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("TaskGraph: "), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("back-edge"), std::string::npos);
  }
}

TEST(TaskGraphValidation, NegativeWeightsAreRejected) {
  dag::TaskGraph g;
  g.add_node(-1.0);
  EXPECT_NE(dag::validate(g), "");

  dag::TaskGraph h;
  h.add_node(1.0);
  h.add_node(1.0);
  h.add_edge(0, 1, -0.5);
  EXPECT_NE(dag::validate(h), "");
}

TEST(TaskGraphValidation, EdgeBoundsAndSelfLoopsAreRejected) {
  dag::TaskGraph g;
  g.add_node(1.0);
  g.add_edge(0, 7);  // `to` out of range
  EXPECT_NE(dag::validate(g), "");

  dag::TaskGraph h;
  h.add_node(1.0);
  h.add_node(1.0);
  h.add_edge(1, 1);  // self-loop
  EXPECT_NE(dag::validate(h), "");
}

// ---- sealing and derived quantities -----------------------------------------

TEST(TaskGraph, SealBuildsTopoOrderAndDerivedQuantities) {
  const dag::TaskGraph g = diamond_graph();
  ASSERT_TRUE(g.sealed());
  ASSERT_EQ(g.size(), 4u);

  // Kahn's algorithm, smallest-ready-index-first: the diamond's order is
  // exactly the construction order.
  const std::vector<std::size_t> expected_topo = {0, 1, 2, 3};
  EXPECT_EQ(g.topo_order(), expected_topo);

  std::vector<std::size_t> sink_parents = g.parents(3);
  std::sort(sink_parents.begin(), sink_parents.end());
  EXPECT_EQ(sink_parents, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(g.children(0).size(), 2u);
  EXPECT_TRUE(g.parents(0).empty());

  // Heaviest chain from the source: 4 + 6 + 3.
  EXPECT_DOUBLE_EQ(g.critical_weight(0), 13.0);
  EXPECT_DOUBLE_EQ(g.critical_weight(3), 3.0);
  // Dispatch input = sum of incoming transfers.
  EXPECT_DOUBLE_EQ(g.input_mb(0), 0.0);
  EXPECT_DOUBLE_EQ(g.input_mb(3), 1.0);
  EXPECT_DOUBLE_EQ(g.total_work(), 15.0);
}

TEST(TaskGraph, SealIsIdempotent) {
  dag::TaskGraph g = diamond_graph();
  g.seal();  // second seal: no throw, same graph
  EXPECT_EQ(g.topo_order().size(), 4u);
}

// ---- workload generator -----------------------------------------------------

TEST(DagWorkloadGenerator, ShapesHaveCanonicalStructure) {
  dag::DagWorkloadConfig cfg;
  cfg.chain_length = 6;
  cfg.fanout = 5;
  cfg.layers = 4;
  cfg.layer_width = 3;
  dag::DagWorkloadGenerator gen(cfg, Rng(99));

  const dag::TaskGraph chain = gen.make(dag::DagShape::kChain);
  EXPECT_EQ(chain.size(), 6u);
  EXPECT_EQ(chain.edges().size(), 5u);

  const dag::TaskGraph fj = gen.make(dag::DagShape::kForkJoin);
  EXPECT_EQ(fj.size(), 7u);           // source + 5 maps + reduce
  EXPECT_EQ(fj.edges().size(), 10u);  // fan out + fan in

  const dag::TaskGraph dia = gen.make(dag::DagShape::kDiamond);
  EXPECT_EQ(dia.size(), 4u);
  EXPECT_EQ(dia.edges().size(), 4u);

  const dag::TaskGraph layered = gen.make(dag::DagShape::kLayered);
  EXPECT_EQ(layered.size(), 12u);  // 4 layers x 3 nodes
  // Every non-source node keeps at least one parent in the previous layer.
  for (std::size_t i = 3; i < layered.size(); ++i) {
    EXPECT_GE(layered.parents(i).size(), 1u) << "node " << i;
  }
}

TEST(DagWorkloadGenerator, StreamIsDeterministicPerSeed) {
  const dag::DagWorkloadConfig cfg;
  dag::DagWorkloadGenerator a(cfg, Rng(7));
  dag::DagWorkloadGenerator b(cfg, Rng(7));
  for (int draw = 0; draw < 8; ++draw) {
    const dag::TaskGraph ga = a.next();
    const dag::TaskGraph gb = b.next();
    ASSERT_EQ(ga.size(), gb.size()) << "draw " << draw;
    ASSERT_EQ(ga.edges().size(), gb.edges().size()) << "draw " << draw;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_DOUBLE_EQ(ga.node(i).work, gb.node(i).work);
      EXPECT_DOUBLE_EQ(ga.node(i).output_mb, gb.node(i).output_mb);
    }
    for (std::size_t i = 0; i < ga.edges().size(); ++i) {
      EXPECT_EQ(ga.edges()[i].from, gb.edges()[i].from);
      EXPECT_EQ(ga.edges()[i].to, gb.edges()[i].to);
      EXPECT_DOUBLE_EQ(ga.edges()[i].transfer_mb, gb.edges()[i].transfer_mb);
    }
  }
}

TEST(DagWorkloadGenerator, NextCyclesTheFourShapes) {
  dag::DagWorkloadConfig cfg;
  cfg.chain_length = 5;
  cfg.fanout = 3;
  dag::DagWorkloadGenerator gen(cfg, Rng(3));
  EXPECT_EQ(gen.next().size(), 5u);                          // chain
  EXPECT_EQ(gen.next().size(), 5u);                          // fork-join: 2+3
  EXPECT_EQ(gen.next().size(), 4u);                          // diamond
  EXPECT_EQ(gen.next().size(), cfg.layers * cfg.layer_width);  // layered
  EXPECT_EQ(gen.next().size(), 5u);                          // chain again
}

// ---- config validation ------------------------------------------------------

TEST(DagConfigValidation, DefaultIsValid) {
  EXPECT_EQ(dag::validate(dag::DagConfig{}), "");
}

TEST(DagConfigValidation, RejectsBadKnobs) {
  dag::DagConfig cfg;
  cfg.replicas = 0;
  EXPECT_NE(dag::validate(cfg), "");

  cfg = {};
  cfg.replicas = 4;
  cfg.max_node_attempts = 3;  // budget below k
  EXPECT_NE(dag::validate(cfg), "");

  cfg = {};
  cfg.dwell_margin = 0.0;
  EXPECT_NE(dag::validate(cfg), "");

  cfg = {};
  cfg.check_period = 0.0;
  EXPECT_NE(dag::validate(cfg), "");

  cfg = {};
  cfg.graph_deadline = -1.0;
  EXPECT_NE(dag::validate(cfg), "");
}

TEST(DagConfigValidation, ReplicationBeyondTheFleetIsRejected) {
  dag::DagConfig cfg;
  cfg.replicas = 5;
  cfg.max_node_attempts = 6;
  const std::string problem = dag::validate(cfg, /*fleet_size=*/4);
  EXPECT_NE(problem.find("exceeds the fleet"), std::string::npos) << problem;
  EXPECT_EQ(dag::validate(cfg, 5), "");
  EXPECT_EQ(dag::validate(cfg, 0), "");  // fleet unknown: no fleet check
}

TEST(DagConfigValidation, SystemStartThrowsOnInvalidConfig) {
  core::SystemConfig sys;
  sys.scenario.environment = core::Environment::kParkingLot;
  sys.scenario.vehicles = 3;
  sys.scenario.vehicles_parked = true;
  sys.architecture = core::CloudArchitecture::kStationary;
  sys.dag.enabled = true;
  sys.dag.replicas = 8;  // > fleet
  sys.dag.max_node_attempts = 8;
  core::VehicularCloudSystem system(sys);
  EXPECT_THROW(system.start(), std::invalid_argument);
}

// ---- decomposition scheduling on a parked cloud -----------------------------

core::SystemConfig parked_dag_system(std::uint64_t seed) {
  core::SystemConfig sys;
  sys.scenario.environment = core::Environment::kParkingLot;
  sys.scenario.seed = seed;
  sys.scenario.vehicles = 20;
  sys.scenario.vehicles_parked = true;
  sys.architecture = core::CloudArchitecture::kStationary;
  sys.stationary_radius = 5000.0;
  sys.cloud.dependability.detector.enabled = true;
  sys.dag.enabled = true;
  return sys;
}

TEST(DagScheduler, DiamondCompletesOnAParkedCloud) {
  core::VehicularCloudSystem system(parked_dag_system(21));
  system.start();
  system.run_for(2.0);
  auto& sim = system.scenario().simulator();

  const std::uint64_t id = system.dag()->submit_graph(diamond_graph(),
                                                      sim.now());
  system.run_for(120.0);

  EXPECT_TRUE(system.dag()->graph_completed(id));
  EXPECT_TRUE(system.dag()->all_done());
  EXPECT_EQ(system.dag()->active_graphs(), 0u);
  const dag::DagStats& stats = system.dag()->stats();
  EXPECT_EQ(stats.graphs_submitted, 1u);
  EXPECT_EQ(stats.graphs_completed, 1u);
  EXPECT_EQ(stats.graphs_failed, 0u);
  EXPECT_EQ(stats.nodes_succeeded, 4u);
  EXPECT_GE(stats.nodes_submitted, 4u);
  // One intermediate routed per dependency edge consumed.
  EXPECT_EQ(stats.transfers, 4u);
  EXPECT_DOUBLE_EQ(stats.transfer_mb, 3.0);
  EXPECT_EQ(stats.makespan.count(), 1u);
  EXPECT_GT(stats.makespan.mean(), 0.0);
  EXPECT_EQ(stats.node_latency.count(), 4u);
}

TEST(DagScheduler, BlindKPaysUpfrontReplicasAtEqualBudget) {
  std::size_t none_submitted = 0;
  std::size_t blind_submitted = 0;
  for (const dag::DagPolicy policy :
       {dag::DagPolicy::kNone, dag::DagPolicy::kBlindK}) {
    core::SystemConfig sys = parked_dag_system(22);
    sys.dag.policy = policy;
    sys.dag.replicas = 2;
    core::VehicularCloudSystem system(sys);
    system.start();
    system.run_for(2.0);
    auto& sim = system.scenario().simulator();
    const std::uint64_t id = system.dag()->submit_graph(diamond_graph(),
                                                        sim.now());
    system.run_for(120.0);
    ASSERT_TRUE(system.dag()->graph_completed(id))
        << dag::to_string(policy);
    const dag::DagStats& stats = system.dag()->stats();
    if (policy == dag::DagPolicy::kNone) {
      none_submitted = stats.nodes_submitted;
      EXPECT_EQ(stats.blind_replicas, 0u);
    } else {
      blind_submitted = stats.nodes_submitted;
      // One extra up-front copy per node at k = 2.
      EXPECT_EQ(stats.blind_replicas, 4u);
    }
  }
  EXPECT_EQ(none_submitted, 4u);
  EXPECT_EQ(blind_submitted, 8u);
}

TEST(DagScheduler, ReliabilityAwareBacksUpACrashedHost) {
  core::SystemConfig sys = parked_dag_system(23);
  sys.dag.policy = dag::DagPolicy::kReliabilityAware;
  sys.dag.replicas = 2;
  sys.dag.check_period = 0.5;
  core::VehicularCloudSystem system(sys);
  system.start();
  system.run_for(2.0);
  auto& sim = system.scenario().simulator();

  // One long node, so the crash lands mid-execution.
  dag::TaskGraph g;
  g.add_node(60.0);
  const std::uint64_t id = system.dag()->submit_graph(std::move(g), sim.now());

  // Run until the attempt is dispatched, then find its worker.
  VehicleId worker;
  for (int i = 0; i < 100 && !worker.valid(); ++i) {
    system.run_for(0.5);
    system.cloud().for_each_task([&](const vcloud::Task& t) {
      if (t.state == vcloud::TaskState::kRunning) worker = t.worker;
    });
  }
  ASSERT_TRUE(worker.valid());

  // Crash the host the way the injector does: cloud snapshot first, then
  // the vehicle vanishes from traffic. The host is now a zombie — the
  // failure detector has not fired, the task still reads kRunning — but its
  // dwell prediction is already zero.
  system.cloud().crash_worker(worker);
  system.scenario().traffic().despawn(worker);
  EXPECT_DOUBLE_EQ(system.cloud().worker_dwell(worker), 0.0);

  // The next reliability scan flags the doomed attempt and launches a
  // backup before the detector declares the worker dead.
  system.run_for(1.5);
  EXPECT_GE(system.dag()->stats().backups, 1u);

  system.run_for(200.0);
  EXPECT_TRUE(system.dag()->graph_completed(id));
}

// ---- dwell-prediction edge cases --------------------------------------------

TEST(DwellPrediction, DespawnedVehiclePredictsZeroDwell) {
  const geo::RoadNetwork net = geo::make_manhattan_grid(4, 4, 200.0);
  mobility::TrafficModel traffic(net, Rng(1));
  const auto path = net.shortest_path(NodeId{0}, NodeId{3});
  ASSERT_TRUE(path);
  const VehicleId v = traffic.spawn(*path, 10.0);
  traffic.despawn(v);
  EXPECT_DOUBLE_EQ(
      vcloud::estimate_dwell(traffic, v, {0, 0}, 500.0,
                             vcloud::DwellMode::kKinematic),
      0.0);
  EXPECT_DOUBLE_EQ(vcloud::estimate_dwell(traffic, v, {0, 0}, 500.0,
                                          vcloud::DwellMode::kOracle),
                   0.0);
}

TEST(DwellPrediction, ParkedVehiclePredictsInfiniteDwell) {
  const geo::RoadNetwork net = geo::make_manhattan_grid(4, 4, 200.0);
  mobility::TrafficModel traffic(net, Rng(1));
  const VehicleId parked = traffic.spawn_parked(LinkId{0}, 10.0);
  EXPECT_TRUE(std::isinf(vcloud::estimate_dwell(
      traffic, parked, {0, 0}, 500.0, vcloud::DwellMode::kKinematic)));
  // kNaive assumes every known vehicle stays forever.
  EXPECT_TRUE(std::isinf(vcloud::estimate_dwell(
      traffic, parked, {0, 0}, 500.0, vcloud::DwellMode::kNaive)));
}

TEST(DwellPrediction, DepartureExactlyAtPredictedFinishIsNotAtRisk) {
  const geo::RoadNetwork net = geo::make_manhattan_grid(4, 4, 200.0);
  mobility::TrafficModel traffic(net, Rng(1));
  const auto path = net.shortest_path(NodeId{0}, NodeId{3});
  ASSERT_TRUE(path);
  const VehicleId v = traffic.spawn(*path, 10.0);

  // estimate_dwell(kKinematic) is exactly the route walk the mobility layer
  // computes — the scheduler sees the same number the traffic model does.
  const double dwell = vcloud::estimate_dwell(
      traffic, v, {0, 0}, 150.0, vcloud::DwellMode::kKinematic);
  EXPECT_DOUBLE_EQ(dwell, traffic.predict_time_to_exit(v, {0, 0}, 150.0));
  ASSERT_TRUE(std::isfinite(dwell));
  ASSERT_GT(dwell, 0.0);

  // The risk predicate is strict: a host predicted to depart exactly at the
  // attempt's predicted finish (margin 1.0, remaining == dwell) is NOT
  // flagged; any margin above 1.0 flags it.
  const double expected_remaining = dwell;
  EXPECT_FALSE(dwell < 1.0 * expected_remaining);
  EXPECT_TRUE(dwell < 1.25 * expected_remaining);
}

// ---- trace reduction of a whole graph run -----------------------------------

TEST(DagTrace, ReductionRecoversGraphCriticalPathAndPartition) {
  core::SystemConfig sys = parked_dag_system(31);
  sys.telemetry.tracing = true;
  core::VehicularCloudSystem system(sys);
  system.start();
  system.run_for(2.0);
  auto& sim = system.scenario().simulator();
  const std::uint64_t id = system.dag()->submit_graph(diamond_graph(),
                                                      sim.now());
  system.run_for(120.0);
  ASSERT_TRUE(system.dag()->graph_completed(id));

  std::stringstream buf;
  ASSERT_NE(system.telemetry(), nullptr);
  system.telemetry()->trace.write_jsonl(buf);

  std::vector<obs::ParsedEvent> events;
  obs::TraceMeta meta;
  std::string error;
  ASSERT_TRUE(obs::parse_trace_jsonl(buf, events, meta, &error)) << error;
  ASSERT_TRUE(meta.complete());

  const obs::TraceAnalysis analysis(events);
  ASSERT_EQ(analysis.dags().size(), 1u);
  const obs::DagRunBreakdown& run = analysis.dags()[0];
  EXPECT_TRUE(run.closed);
  EXPECT_EQ(run.outcome, "completed");
  EXPECT_DOUBLE_EQ(run.graph, static_cast<double>(id));
  EXPECT_EQ(run.nodes_declared, 4u);
  ASSERT_EQ(run.nodes.size(), 4u);
  for (const obs::DagNodeBreakdown& node : run.nodes) {
    EXPECT_EQ(node.outcome, "completed") << "node " << node.node;
    EXPECT_GE(node.attempts, 1);
    EXPECT_GT(node.end_to_end(), 0.0);
  }
  EXPECT_EQ(run.edges.size(), 4u);
  // The measured critical path of a diamond is source -> one branch -> sink.
  ASSERT_EQ(run.critical_path.size(), 3u);
  EXPECT_EQ(run.critical_path.front(), 0u);
  EXPECT_EQ(run.critical_path.back(), 3u);
  EXPECT_GT(run.critical_len, 0.0);
  EXPECT_GT(run.makespan(), 0.0);
  // The leg-partition invariant vcl_traceview --dag asserts: every
  // completed node's legs partition its end-to-end latency exactly.
  EXPECT_LE(run.partition_max_dev, 1e-6);

  // The per-run report renders without tripping anything.
  std::ostringstream report;
  analysis.write_dag_report(report, meta);
  EXPECT_NE(report.str().find("critical path"), std::string::npos);
}

// ---- oracle -----------------------------------------------------------------

TEST(DagOracle, CleanRunKeepsTheOracleQuiet) {
  core::SystemConfig sys = parked_dag_system(41);
  sys.invariant_oracle = true;
  sys.dag.policy = dag::DagPolicy::kReliabilityAware;
  core::VehicularCloudSystem system(sys);
  system.start();
  system.run_for(2.0);
  auto& sim = system.scenario().simulator();

  dag::DagWorkloadGenerator gen(dag::DagWorkloadConfig{},
                                system.scenario().fork_rng(78));
  for (int i = 0; i < 4; ++i) {
    system.dag()->submit_graph(gen.next(), sim.now());
    system.run_for(30.0);
  }
  system.run_for(200.0);

  ASSERT_NE(system.oracle(), nullptr);
  EXPECT_TRUE(system.oracle()->ok())
      << system.oracle()->violations()[0].to_string();
  EXPECT_GT(system.oracle()->checks_run(), 0u);
  EXPECT_GT(system.dag()->stats().graphs_completed, 0u);
}

TEST(DagOracle, DoubleSuccessCommitFiresTerminalOnce) {
  vcloud::InvariantOracle oracle(5);
  oracle.on_dag_node_terminal(/*graph=*/1, /*node=*/0, 1.0);
  EXPECT_TRUE(oracle.ok());
  oracle.on_dag_node_terminal(1, 0, 2.0);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations()[0].invariant, "dag-terminal-once");
}

// ---- DAG-targeted storm shape -----------------------------------------------

fault::ChaosConfig dag_storm_config() {
  fault::ChaosConfig cfg;
  cfg.base.horizon = 200.0;
  cfg.storms.dag_rate = 0.05;
  cfg.storms.dag_window = 6.0;
  cfg.storms.dag_crashes = 3;
  return cfg;
}

TEST(ChaosPlanner, DagStormCrashesShareATagAndSpanTheWindow) {
  const fault::ChaosPlanner planner(dag_storm_config());
  const fault::FaultPlan plan = planner.plan(5);
  ASSERT_FALSE(plan.empty());

  std::map<std::uint64_t, std::vector<double>> by_tag;
  for (const fault::FaultEvent& e : plan) {
    if (e.kind == fault::FaultKind::kVehicleCrash) {
      EXPECT_NE(e.dag_tag, 0u);  // this config only emits dag storms
      by_tag[e.dag_tag].push_back(e.at);
    }
  }
  ASSERT_FALSE(by_tag.empty());
  for (const auto& [tag, times] : by_tag) {
    ASSERT_EQ(times.size(), 3u) << "tag " << tag;
    // Crashes spread across the storm window: t, t + w/3, t + 2w/3.
    EXPECT_NEAR(times.back() - times.front(), 6.0 * 2.0 / 3.0, 1e-9);
  }

  // Deterministic per seed.
  const fault::FaultPlan again = planner.plan(5);
  ASSERT_EQ(plan.size(), again.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].at, again[i].at);
    EXPECT_EQ(plan[i].dag_tag, again[i].dag_tag);
  }
}

TEST(ChaosPlanner, DagTagRoundTripsThroughJsonl) {
  const fault::ChaosPlanner planner(dag_storm_config());
  const fault::FaultPlan plan = planner.plan(9);
  ASSERT_FALSE(plan.empty());

  std::stringstream buf;
  fault::FaultPlanMeta meta;
  meta.seed = 9;
  fault::write_fault_plan_jsonl(plan, meta, buf);

  fault::FaultPlan parsed;
  fault::FaultPlanMeta parsed_meta;
  std::string error;
  ASSERT_TRUE(fault::parse_fault_plan_jsonl(buf, parsed, parsed_meta, &error))
      << error;
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, plan[i].kind);
    EXPECT_EQ(parsed[i].at, plan[i].at);
    EXPECT_EQ(parsed[i].dag_tag, plan[i].dag_tag);
  }
}

TEST(ChaosConfigValidation, DagStormKnobsAreChecked) {
  fault::ChaosConfig cfg = dag_storm_config();
  cfg.storms.dag_crashes = 0;
  EXPECT_NE(fault::validate(cfg), "");

  cfg = dag_storm_config();
  cfg.storms.dag_window = 0.0;
  EXPECT_NE(fault::validate(cfg), "");

  cfg = dag_storm_config();
  cfg.storms.dag_rate = -0.1;
  EXPECT_NE(fault::validate(cfg), "");

  EXPECT_EQ(fault::validate(dag_storm_config()), "");
}

// ---- end-to-end: chaos episodes and the seeded scheduler bug ----------------

core::ChaosScenarioConfig short_dag_episode(std::uint64_t seed) {
  core::ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  cfg.dag = true;
  return cfg;
}

TEST(ChaosDag, ShortSoakIsCleanAndRunsGraphs) {
  std::size_t graphs = 0;
  std::size_t nodes = 0;
  std::size_t checks = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const core::ChaosEpisode episode =
        core::run_chaos_episode(short_dag_episode(seed));
    EXPECT_TRUE(episode.ok())
        << "seed " << seed << ": "
        << (episode.violations.empty() ? std::string("?")
                                       : episode.violations[0].to_string());
    graphs += episode.dag_graphs_submitted;
    nodes += episode.dag_nodes_succeeded;
    checks += episode.checks_run;
  }
  EXPECT_GT(graphs, 0u);  // the episodes really ran graph workloads
  EXPECT_GT(nodes, 0u);
  EXPECT_GT(checks, 0u);  // and the oracle really scanned them
}

TEST(ChaosDag, EpisodeIsDeterministic) {
  const core::ChaosScenarioConfig cfg = short_dag_episode(4);
  const core::ChaosEpisode a = core::run_chaos_episode(cfg);
  const core::ChaosEpisode b = core::run_chaos_episode(cfg);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.dag_graphs_submitted, b.dag_graphs_submitted);
  EXPECT_EQ(a.dag_graphs_completed, b.dag_graphs_completed);
  EXPECT_EQ(a.dag_graphs_failed, b.dag_graphs_failed);
  EXPECT_EQ(a.dag_nodes_succeeded, b.dag_nodes_succeeded);
  EXPECT_EQ(a.dag_backups, b.dag_backups);
}

TEST(ChaosDag, SeededSchedulerBugIsCaughtAndShrinksSmall) {
  // Scan a few seeds for an episode where the armed stranded-node bug
  // leaves a live graph with a dead node (any graph pushed past its
  // deadline suffices, so crank the fault intensity).
  core::ChaosScenarioConfig bad_cfg;
  core::ChaosEpisode bad;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    core::ChaosScenarioConfig cfg = short_dag_episode(seed);
    cfg.inject_dag_bug = true;
    cfg.intensity = 3.0;
    const core::ChaosEpisode episode = core::run_chaos_episode(cfg);
    if (!episode.ok()) {
      bad_cfg = cfg;
      bad = episode;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..10 triggered the armed scheduler bug";

  // The strand is reported as the dag-node-liveness invariant.
  const bool liveness_fired = std::any_of(
      bad.violations.begin(), bad.violations.end(),
      [](const vcloud::InvariantViolation& v) {
        return v.invariant == "dag-node-liveness";
      });
  EXPECT_TRUE(liveness_fired)
      << "first stored violation: " << bad.violations[0].to_string();

  // The schedule shrinks to a small core: stranding one node needs only
  // the few crashes that push one graph past its deadline.
  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        return !core::run_chaos_episode(bad_cfg, candidate).ok();
      });
  EXPECT_LE(minimal.size(), 6u);
  ASSERT_FALSE(core::run_chaos_episode(bad_cfg, minimal).ok());

  // Disarm the bug and replay the same minimal schedule: the healthy
  // scheduler resubmits (or fails the graph cleanly) and stays invariant-
  // clean.
  core::ChaosScenarioConfig fixed = bad_cfg;
  fixed.inject_dag_bug = false;
  EXPECT_TRUE(core::run_chaos_episode(fixed, minimal).ok());
}

TEST(ChaosDag, ReproFileCarriesDagFlags) {
  core::ChaosScenarioConfig cfg = short_dag_episode(3);
  cfg.inject_dag_bug = true;
  const fault::FaultPlan plan;  // flags matter here, not events

  std::stringstream buf;
  core::write_chaos_repro(cfg, plan, buf);
  core::ChaosScenarioConfig loaded;
  fault::FaultPlan loaded_plan;
  std::string error;
  ASSERT_TRUE(core::load_chaos_repro(buf, loaded, loaded_plan, &error))
      << error;
  EXPECT_TRUE(loaded.dag);
  EXPECT_TRUE(loaded.inject_dag_bug);
  EXPECT_EQ(loaded.seed, cfg.seed);
}

}  // namespace
}  // namespace vcl
