// Cross-module property tests: invariants that must hold for ANY input,
// swept over randomized instances (parameterized by seed).
#include <gtest/gtest.h>

#include <map>

#include "access/policy.h"
#include "core/scenario.h"
#include "net/channel.h"
#include "vcloud/cloud.h"

namespace vcl {
namespace {

// ---- Channel monotonicity -------------------------------------------------------

class ChannelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChannelProperty, ProbabilityMonotoneInDistanceAndDensity) {
  const auto density = static_cast<std::size_t>(GetParam());
  const net::Channel ch;
  double prev = 1.1;
  for (double d = 0; d <= 320; d += 5) {
    const double p = ch.reception_probability({0, 0}, {d, 0}, density);
    EXPECT_LE(p, prev + 1e-12) << "distance " << d;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Higher density never helps.
    EXPECT_LE(ch.reception_probability({0, 0}, {d, 0}, density + 10),
              p + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ChannelProperty,
                         ::testing::Values(0, 5, 20, 80));

// ---- Random policy round-trip -----------------------------------------------------

std::unique_ptr<access::Policy> random_policy(Rng& rng, int depth) {
  const std::vector<std::string> attrs = {"a", "b", "c", "d", "e"};
  std::function<std::string(int)> gen = [&](int d) -> std::string {
    if (d <= 0 || rng.bernoulli(0.4)) {
      return attrs[rng.index(attrs.size())];
    }
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<std::string> children;
    for (int i = 0; i < n; ++i) children.push_back(gen(d - 1));
    std::string out;
    if (kind == 0) {  // AND
      out = "(" + children[0];
      for (int i = 1; i < n; ++i) out += " & " + children[static_cast<std::size_t>(i)];
      out += ")";
    } else if (kind == 1) {  // OR
      out = "(" + children[0];
      for (int i = 1; i < n; ++i) out += " | " + children[static_cast<std::size_t>(i)];
      out += ")";
    } else {  // threshold
      const int k = static_cast<int>(rng.uniform_int(1, n));
      out = std::to_string(k) + "of(" + children[0];
      for (int i = 1; i < n; ++i) out += ", " + children[static_cast<std::size_t>(i)];
      out += ")";
    }
    return out;
  };
  const std::string text = gen(depth);
  auto parsed = access::Policy::parse(text);
  if (!parsed) return nullptr;
  return std::make_unique<access::Policy>(std::move(*parsed));
}

class PolicyProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolicyProperty, ToStringRoundTripPreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    auto policy = random_policy(rng, 3);
    ASSERT_NE(policy, nullptr);
    const auto reparsed = access::Policy::parse(policy->to_string());
    ASSERT_TRUE(reparsed.has_value()) << policy->to_string();
    // Same satisfaction on all 32 subsets of {a..e}.
    const std::vector<std::string> attrs = {"a", "b", "c", "d", "e"};
    for (unsigned mask = 0; mask < 32; ++mask) {
      access::AttributeSet set;
      for (unsigned bit = 0; bit < 5; ++bit) {
        if (mask & (1u << bit)) set.add(attrs[bit]);
      }
      EXPECT_EQ(policy->satisfied(set), reparsed->satisfied(set))
          << policy->to_string() << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty, ::testing::Range(1, 5));

// Monotonicity: adding attributes can never un-satisfy a policy (no
// negations in the language).
TEST(PolicyProperty2, SatisfactionIsMonotone) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    auto policy = random_policy(rng, 3);
    ASSERT_NE(policy, nullptr);
    const std::vector<std::string> attrs = {"a", "b", "c", "d", "e"};
    for (unsigned mask = 0; mask < 32; ++mask) {
      access::AttributeSet set;
      for (unsigned bit = 0; bit < 5; ++bit) {
        if (mask & (1u << bit)) set.add(attrs[bit]);
      }
      if (!policy->satisfied(set)) continue;
      // Any superset stays satisfied.
      access::AttributeSet superset = set;
      superset.add(attrs[rng.index(attrs.size())]);
      EXPECT_TRUE(policy->satisfied(superset)) << policy->to_string();
    }
  }
}

// ---- Event-queue ordering under random operations ----------------------------------

class SimulatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorProperty, EventsAlwaysFireInNondecreasingTime) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::Simulator sim;
  std::vector<double> fired;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    const double at = rng.uniform(0, 100);
    handles.push_back(
        sim.schedule_at(at, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random third.
  for (std::size_t i = 0; i < handles.size(); i += 3) sim.cancel(handles[i]);
  sim.run_until(200.0);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 200u - 67u);  // 67 cancelled (indices 0,3,...,198)
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty, ::testing::Range(1, 5));

// ---- Mobility: route consistency over long runs -----------------------------------

class MobilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MobilityProperty, VehiclesStayOnTheirRoutes) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 40;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  core::Scenario scenario(cfg);
  scenario.start();
  for (int step = 0; step < 30; ++step) {
    scenario.run_for(2.0);
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      if (v.parked) continue;
      ASSERT_LT(v.route_index, v.route.size());
      EXPECT_EQ(v.link, v.route[v.route_index]);
      EXPECT_GE(v.offset, 0.0);
      EXPECT_LE(v.offset,
                scenario.road().link(v.link).length + 1e-6);
      EXPECT_GE(v.speed, 0.0);
      // Consecutive route links are connected.
      if (v.route_index + 1 < v.route.size()) {
        EXPECT_EQ(scenario.road().link(v.link).to,
                  scenario.road().link(v.route[v.route_index + 1]).from);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobilityProperty, ::testing::Range(1, 4));

// ---- Cloud accounting invariants ---------------------------------------------------

class CloudProperty : public ::testing::TestWithParam<int> {};

TEST_P(CloudProperty, TaskAccountingBalancesUnderChurn) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto road = geo::make_manhattan_grid(3, 3, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(seed));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(seed + 1));
  std::vector<VehicleId> members;
  for (int i = 0; i < 8; ++i) {
    members.push_back(traffic.spawn_parked(LinkId{0}, 15.0 * i));
  }
  net.refresh();
  vcloud::CloudConfig config;
  config.handover.enabled = (seed % 2) == 0;  // both recovery paths
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, vcloud::stationary_membership(traffic, {60, 0}, 500.0),
      vcloud::fixed_region({60, 0}, 500.0),
      std::make_unique<vcloud::RandomScheduler>(), config, Rng(seed + 2));
  cloud.refresh();

  Rng rng(seed + 3);
  std::vector<TaskId> ids;
  // Random interleaving of submissions, time and churn.
  for (int round = 0; round < 40; ++round) {
    if (rng.bernoulli(0.7)) {
      vcloud::Task t;
      t.work = rng.uniform(1.0, 30.0);
      if (rng.bernoulli(0.3)) t.deadline = sim.now() + rng.uniform(5, 60);
      ids.push_back(cloud.submit(std::move(t)));
    }
    if (rng.bernoulli(0.2) && !members.empty()) {
      // Kill a random member (and respawn a new one to keep capacity).
      const std::size_t idx = rng.index(members.size());
      traffic.despawn(members[idx]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(idx));
      members.push_back(
          traffic.spawn_parked(LinkId{0}, rng.uniform(0.0, 150.0)));
      net.refresh();
    }
    sim.run_until(sim.now() + rng.uniform(0.5, 5.0));
    cloud.refresh();

    // INVARIANTS after every round:
    const auto& st = cloud.stats();
    std::size_t pending = 0, running = 0, migrating = 0, completed = 0,
                failed = 0, expired = 0;
    std::map<std::uint64_t, int> worker_load;
    for (const TaskId id : ids) {
      const vcloud::Task* t = cloud.find_task(id);
      ASSERT_NE(t, nullptr);
      switch (t->state) {
        case vcloud::TaskState::kPending: ++pending; break;
        case vcloud::TaskState::kRunning:
          ++running;
          ++worker_load[t->worker.value()];
          break;
        case vcloud::TaskState::kMigrating: ++migrating; break;
        case vcloud::TaskState::kCompleted: ++completed; break;
        case vcloud::TaskState::kFailed: ++failed; break;
        case vcloud::TaskState::kExpired: ++expired; break;
      }
      EXPECT_GE(t->progress, 0.0);
      EXPECT_LE(t->progress, t->work + 1e-9);
    }
    // One running task per worker, max.
    for (const auto& [worker, load] : worker_load) {
      EXPECT_LE(load, 1) << "worker " << worker << " double-booked";
    }
    // Stats agree with task states.
    EXPECT_EQ(st.submitted, ids.size());
    EXPECT_EQ(st.completed, completed);
    EXPECT_EQ(st.expired, expired);
    EXPECT_EQ(pending + running + migrating + completed + failed + expired,
              ids.size());
  }
  // Eventually everything settles into a terminal state.
  for (int i = 0; i < 400; ++i) {
    sim.run_until(sim.now() + 5.0);
    cloud.refresh();
    if (cloud.drained()) break;
  }
  EXPECT_TRUE(cloud.drained());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CloudProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace vcl
