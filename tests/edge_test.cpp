// Edge cases and robustness tests across modules.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/system.h"
#include "net/dissemination.h"
#include "routing/greedy_geo.h"
#include "vcloud/cloud.h"

namespace vcl {
namespace {

// ---- Mobility edges -------------------------------------------------------------

TEST(LaneChange, FastFollowerEscapesSlowLeader) {
  // Multi-lane highway: a crawling leader and a fast follower on lane 0.
  const auto road = geo::make_highway(3000.0, 1000.0, 33.3, 3);
  mobility::TrafficModel traffic(road, Rng(3));
  const auto leader = traffic.spawn({LinkId{0}, LinkId{1}}, 2.0,
                                    mobility::AutomationLevel::kNoAutomation,
                                    0.05);  // crawls at ~1.7 m/s
  traffic.find_mutable(leader)->offset = 150.0;
  const auto follower = traffic.spawn({LinkId{0}, LinkId{1}}, 25.0);
  bool changed_lane = false;
  for (int i = 0; i < 1200; ++i) {
    traffic.step(0.1);
    const auto* f = traffic.find(follower);
    if (f == nullptr) break;
    if (f->lane != 0) changed_lane = true;
  }
  EXPECT_TRUE(changed_lane);
}

TEST(Mobility, ZeroVehicleStepIsSafe) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  mobility::TrafficModel traffic(road, Rng(1));
  traffic.step(0.1);  // must not crash
  EXPECT_EQ(traffic.vehicle_count(), 0u);
  EXPECT_EQ(traffic.find(VehicleId{42}), nullptr);
}

TEST(Mobility, DespawnDuringStepViaHandler) {
  // Arrival handler that declines re-routing: vehicle removed mid-step.
  geo::RoadNetwork road;
  const auto a = road.add_node({0, 0});
  const auto b = road.add_node({50, 0});
  road.add_link(a, b, 30.0);
  mobility::TrafficModel traffic(road, Rng(1));
  traffic.set_arrival_handler(
      [](const mobility::VehicleState&)
          -> std::optional<std::vector<LinkId>> { return std::nullopt; });
  traffic.spawn({LinkId{0}}, 20.0);
  for (int i = 0; i < 100; ++i) traffic.step(0.1);
  EXPECT_EQ(traffic.vehicle_count(), 0u);
}

// ---- Scale sanity -----------------------------------------------------------------

TEST(Scale, ThreeHundredVehiclesSimulate) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 300;
  cfg.grid_rows = 8;
  cfg.grid_cols = 8;
  cfg.seed = 99;
  core::Scenario scenario(cfg);
  scenario.run_for(30.0);
  EXPECT_GE(scenario.traffic().vehicle_count(), 280u);
  // Neighbor tables exist and the fabric works at scale.
  routing::GreedyGeo router(scenario.network());
  router.attach();
  scenario.network().refresh();
  std::vector<VehicleId> ids;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    ids.push_back(v.id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i + 1 < ids.size(); i += 40) {
    router.originate(ids[i], ids[i + 1]);
  }
  scenario.run_for(20.0);
  EXPECT_GT(router.metrics().delivery_ratio(), 0.5);
}

// ---- Cloud edges ------------------------------------------------------------------

TEST(CloudEdge, SubmitWithNoMembersQueues) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, [] { return std::vector<VehicleId>{}; },
      vcloud::fixed_region({0, 0}, 100.0),
      std::make_unique<vcloud::RandomScheduler>(), vcloud::CloudConfig{},
      Rng(3));
  cloud.refresh();
  vcloud::Task t;
  t.work = 1.0;
  const TaskId id = cloud.submit(std::move(t));
  sim.run_until(10.0);
  cloud.refresh();
  EXPECT_EQ(cloud.find_task(id)->state, vcloud::TaskState::kPending);
  EXPECT_EQ(cloud.pending_count(), 1u);
  EXPECT_FALSE(cloud.broker().valid());
}

TEST(CloudEdge, MembersArrivingLaterDrainTheQueue) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, vcloud::stationary_membership(traffic, {0, 0}, 500.0),
      vcloud::fixed_region({0, 0}, 500.0),
      std::make_unique<vcloud::RandomScheduler>(), vcloud::CloudConfig{},
      Rng(3));
  cloud.refresh();
  vcloud::Task t;
  t.work = 2.0;
  cloud.submit(std::move(t));
  EXPECT_EQ(cloud.pending_count(), 1u);
  traffic.spawn_parked(LinkId{0}, 10.0);  // capacity arrives late
  net.refresh();
  cloud.refresh();
  sim.run_until(30.0);
  EXPECT_EQ(cloud.stats().completed, 1u);
}

TEST(CloudEdge, ZeroWorkTaskCompletesImmediately) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  traffic.spawn_parked(LinkId{0}, 10.0);
  net.refresh();
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, vcloud::stationary_membership(traffic, {0, 0}, 500.0),
      vcloud::fixed_region({0, 0}, 500.0),
      std::make_unique<vcloud::RandomScheduler>(), vcloud::CloudConfig{},
      Rng(3));
  cloud.refresh();
  vcloud::Task t;
  t.work = 0.0;
  t.input_mb = 0.0;
  const TaskId id = cloud.submit(std::move(t));
  sim.run_until(1.0);
  EXPECT_EQ(cloud.find_task(id)->state, vcloud::TaskState::kCompleted);
}

// ---- Network edges -----------------------------------------------------------------

TEST(NetworkEdge, SendToDespawnedVehicleDrops) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  const auto a = traffic.spawn_parked(LinkId{0}, 0.0);
  const auto b = traffic.spawn_parked(LinkId{0}, 50.0);
  net.refresh();
  traffic.despawn(b);
  net::Message msg;
  msg.id = net.next_message_id();
  msg.src = net::Address::vehicle(a);
  msg.dst = net::Address::vehicle(b);
  EXPECT_FALSE(net.send(msg));
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(NetworkEdge, BroadcastFromGhostReachesNobody) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  net::Message msg;
  msg.id = net.next_message_id();
  msg.src = net::Address::vehicle(VehicleId{404});
  msg.dst = net::Address::broadcast();
  EXPECT_EQ(net.broadcast(msg), 0u);
}

TEST(NetworkEdge, SelfSendDoesNotLoop) {
  const auto road = geo::make_manhattan_grid(2, 2, 100.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  const auto a = traffic.spawn_parked(LinkId{0}, 0.0);
  net.refresh();
  int received = 0;
  net.set_handler(net::Address::vehicle(a),
                  [&](const net::Message&) { ++received; });
  net::Message msg;
  msg.id = net.next_message_id();
  msg.src = net::Address::vehicle(a);
  msg.dst = net::Address::vehicle(a);
  (void)net.send(msg);  // distance 0: delivered to itself, once
  sim.run_until(1.0);
  EXPECT_LE(received, 1);
}

// ---- System edges ------------------------------------------------------------------

TEST(SystemEdge, HighwayEnvironmentWorks) {
  core::SystemConfig cfg;
  cfg.scenario.environment = core::Environment::kHighway;
  cfg.scenario.vehicles = 40;
  cfg.scenario.seed = 77;
  core::VehicularCloudSystem system(cfg);
  system.start();
  vcloud::Task t;
  t.work = 3.0;
  system.submit(t);
  system.run_for(60.0);
  EXPECT_GE(system.cloud().stats().completed, 0u);  // no crash; cloud runs
  EXPECT_GT(system.scenario().traffic().vehicle_count(), 10u);
}

TEST(DisseminationEdge, EmptySlotIsIdempotent) {
  net::DisseminationScheduler sched(net::DisseminationPolicy::kDeficitFair);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(sched.serve_slot(i).valid());
  }
  EXPECT_EQ(sched.served_requests(), 0u);
  EXPECT_DOUBLE_EQ(sched.jain_fairness(), 1.0);
}

}  // namespace
}  // namespace vcl
