// Bus-trajectory ferry routing (Sun et al. [36]).
#include <gtest/gtest.h>

#include "routing/bus_ferry.h"
#include "routing/greedy_geo.h"

namespace vcl::routing {
namespace {

TEST(BusRegistryTest, RegistersAndCovers) {
  const auto net = geo::make_manhattan_grid(4, 4, 300.0);
  BusRegistry registry;
  EXPECT_FALSE(registry.is_bus(VehicleId{1}));
  const auto loop =
      build_loop_route(net, {NodeId{0}, NodeId{3}, NodeId{15}, NodeId{12}}, 1);
  ASSERT_FALSE(loop.empty());
  registry.register_bus(VehicleId{1}, loop);
  EXPECT_TRUE(registry.is_bus(VehicleId{1}));
  // The loop passes the corners but not far outside the grid.
  EXPECT_TRUE(registry.route_covers(VehicleId{1}, {900, 0}, 150.0, net));
  EXPECT_FALSE(registry.route_covers(VehicleId{1}, {5000, 5000}, 150.0, net));
}

TEST(BusRegistryTest, LoopRouteIsConnectedAndCyclic) {
  const auto net = geo::make_manhattan_grid(4, 4, 300.0);
  const auto loop =
      build_loop_route(net, {NodeId{0}, NodeId{15}}, 3);
  ASSERT_FALSE(loop.empty());
  for (std::size_t i = 0; i + 1 < loop.size(); ++i) {
    EXPECT_EQ(net.link(loop[i]).to, net.link(loop[i + 1]).from);
  }
  // Cyclic: ends where it starts.
  EXPECT_EQ(net.link(loop.back()).to, net.link(loop.front()).from);
}

TEST(BusRegistryTest, UnreachableStopsGiveEmptyRoute) {
  geo::RoadNetwork net;
  const auto a = net.add_node({0, 0});
  const auto b = net.add_node({100, 0});
  net.add_link(a, b, 10.0);  // one-way, no return: loop impossible
  EXPECT_TRUE(build_loop_route(net, {a, b}, 1).empty());
}

// Sparse-island scenario: two clusters of parked vehicles 2 km apart, far
// beyond radio range, connected only by a bus shuttling between them.
class FerryFixture : public ::testing::Test {
 protected:
  FerryFixture()
      : road_(geo::make_manhattan_grid(2, 8, 300.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {
    // Island A at the west end, island B at the east end (x: 0 vs 2100).
    west_ = traffic_.spawn_parked(LinkId{0}, 0.0);
    traffic_.spawn_parked(LinkId{0}, 60.0);
    // Find an eastmost bottom-row link.
    for (const auto& l : road_.links()) {
      const auto p = road_.position_on_link(l.id, 0.0);
      if (p.x >= 1800 && p.y < 10 &&
          road_.link_direction(l.id).x > 0.9) {
        east_link_ = l.id;
      }
    }
    east_ = traffic_.spawn_parked(east_link_, 250.0);

    // The bus loops the full row, west to east and back, many times.
    const auto loop = build_loop_route(
        road_, {NodeId{0}, NodeId{7}}, 40);
    EXPECT_FALSE(loop.empty());
    bus_ = traffic_.spawn(loop, 14.0, mobility::AutomationLevel::kHighAutomation,
                          1.0);
    registry_.register_bus(bus_, loop);
    traffic_.attach(sim_, 0.1);
    net_.start_beacons(0.5);
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
  BusRegistry registry_;
  VehicleId west_, east_, bus_;
  LinkId east_link_;
};

TEST_F(FerryFixture, BusBridgesDisconnectedIslands) {
  BusFerryRouting router(net_, registry_);
  router.attach();
  net_.refresh();
  router.originate(west_, east_);
  // The bus needs to drive ~2 km: give it time.
  sim_.run_until(400.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 1.0);
  EXPECT_GE(router.ferry_handoffs(), 1u);
  // End-to-end delay is dominated by the bus ride (minutes, not ms).
  EXPECT_GT(router.metrics().delay().mean(), 30.0);
}

TEST_F(FerryFixture, ConnectedPathPatienceCannotCross) {
  // Greedy with its normal connected-path message lifetime (30 s): the bus
  // ride takes minutes, so the message dies in a buffer long before the
  // islands connect. (With DTN-scale patience greedy's carry-and-forward
  // would eventually cross too — the ferry protocol's contribution is
  // choosing the carrier whose published trajectory guarantees it.)
  GreedyGeo router(net_);
  router.attach();
  net_.refresh();
  router.originate(west_, east_);
  sim_.run_until(400.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 0.0);
}

TEST_F(FerryFixture, BusHoldsCargoUntilDestinationArea) {
  BusFerryRouting router(net_, registry_);
  router.attach();
  net_.refresh();
  router.originate(west_, east_);
  // Early on (bus still near the west island), nothing delivered.
  sim_.run_until(30.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 0.0);
  sim_.run_until(400.0);
  EXPECT_DOUBLE_EQ(router.metrics().delivery_ratio(), 1.0);
}

}  // namespace
}  // namespace vcl::routing
