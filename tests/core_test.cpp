#include <gtest/gtest.h>

#include "core/emergency.h"
#include "core/pipeline.h"
#include "core/scenario.h"
#include "core/system.h"

namespace vcl::core {
namespace {

TEST(Scenario, CityScenarioRuns) {
  ScenarioConfig cfg;
  cfg.vehicles = 30;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  Scenario s(cfg);
  s.run_for(10.0);
  EXPECT_GE(s.traffic().vehicle_count(), 25u);
  EXPECT_GT(s.simulator().now(), 9.9);
}

TEST(Scenario, ParkedPopulation) {
  ScenarioConfig cfg;
  cfg.environment = Environment::kParkingLot;
  cfg.vehicles = 20;
  cfg.vehicles_parked = true;
  Scenario s(cfg);
  s.start();
  EXPECT_EQ(s.traffic().vehicle_count(), 20u);
  for (const auto& [vid, v] : s.traffic().vehicles()) {
    EXPECT_TRUE(v.parked);
  }
}

TEST(Scenario, RsuDeployment) {
  ScenarioConfig cfg;
  cfg.rsu_spacing = 400.0;
  Scenario s(cfg);
  EXPECT_GT(s.network().rsus().count(), 0u);
}

TEST(Scenario, DeterministicAcrossRuns) {
  auto run = [] {
    ScenarioConfig cfg;
    cfg.vehicles = 20;
    cfg.seed = 99;
    Scenario s(cfg);
    s.run_for(20.0);
    double checksum = 0;
    for (const auto& [vid, v] : s.traffic().vehicles()) {
      checksum += v.pos.x + v.pos.y + v.speed;
    }
    return checksum;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(System, DynamicSystemCompletesTasks) {
  SystemConfig cfg;
  cfg.scenario.vehicles = 40;
  cfg.architecture = CloudArchitecture::kDynamic;
  VehicularCloudSystem system(cfg);
  system.start();
  vcloud::WorkloadConfig workload;
  workload.mean_work = 5.0;
  workload.relative_deadline = 0.0;
  system.submit_workload(workload, 10);
  system.run_for(120.0);
  EXPECT_GT(system.cloud().stats().completed, 5u);
}

TEST(System, StationarySystemOnParkingLot) {
  SystemConfig cfg;
  cfg.scenario.environment = Environment::kParkingLot;
  cfg.scenario.vehicles = 30;
  cfg.scenario.vehicles_parked = true;
  cfg.architecture = CloudArchitecture::kStationary;
  cfg.stationary_radius = 2000.0;
  VehicularCloudSystem system(cfg);
  system.start();
  EXPECT_GT(system.cloud().member_count(), 10u);
  vcloud::Task t;
  t.work = 3.0;
  system.submit(t);
  system.run_for(30.0);
  EXPECT_EQ(system.cloud().stats().completed, 1u);
}

TEST(System, InfrastructureSystemUsesRsu) {
  SystemConfig cfg;
  cfg.scenario.vehicles = 40;
  cfg.scenario.rsu_spacing = 600.0;
  cfg.architecture = CloudArchitecture::kInfrastructureBased;
  VehicularCloudSystem system(cfg);
  system.start();
  system.run_for(5.0);
  EXPECT_GT(system.cloud().member_count(), 0u);
}

TEST(System, RegistersVehiclesWithAuthority) {
  SystemConfig cfg;
  cfg.scenario.vehicles = 10;
  VehicularCloudSystem system(cfg);
  system.start();
  for (const auto& [vid, v] : system.scenario().traffic().vehicles()) {
    EXPECT_TRUE(system.authority().is_registered(v.id));
  }
}

// ---- Emergency -----------------------------------------------------------------

TEST(Emergency, FailsRsusInRadius) {
  ScenarioConfig cfg;
  cfg.rsu_spacing = 400.0;
  Scenario s(cfg);
  s.start();
  EmergencyController ctrl(s.network());
  const std::size_t online_before = s.network().rsus().online_count();
  ASSERT_GT(online_before, 0u);
  ctrl.declare_emergency({500, 500}, 600.0);
  EXPECT_EQ(ctrl.mode(), OperatingMode::kEmergency);
  EXPECT_LT(s.network().rsus().online_count(), online_before);
  EXPECT_GT(ctrl.rsus_failed(), 0u);
  ctrl.all_clear();
  EXPECT_EQ(ctrl.mode(), OperatingMode::kNormal);
  EXPECT_EQ(s.network().rsus().online_count(), online_before);
}

TEST(Emergency, ListenersNotified) {
  ScenarioConfig cfg;
  Scenario s(cfg);
  s.start();
  EmergencyController ctrl(s.network());
  std::vector<OperatingMode> seen;
  ctrl.add_listener([&](OperatingMode m, geo::Vec2, double) {
    seen.push_back(m);
  });
  ctrl.declare_emergency({0, 0}, 100.0);
  ctrl.declare_emergency({0, 0}, 100.0);  // idempotent
  ctrl.all_clear();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], OperatingMode::kEmergency);
  EXPECT_EQ(seen[1], OperatingMode::kNormal);
  EXPECT_EQ(ctrl.mode_switches(), 2u);
}

// ---- Secure pipeline -------------------------------------------------------------

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : ta_(1),
        abe_(2),
        drbg_(std::uint64_t{3}),
        owner_key_(drbg_.generate(32)) {
    ta_.register_vehicle(VehicleId{1});
    signer_ = std::make_unique<auth::PseudonymAuth>(ta_, VehicleId{1}, 4);
  }

  SecurePipeline::AuthInput make_auth(const crypto::Bytes& payload) {
    SecurePipeline::AuthInput in;
    in.protocol = AuthProtocolKind::kPseudonym;
    in.ta = &ta_;
    in.payload = payload;
    crypto::OpCounts ops;
    in.tag = *signer_->sign(payload, 0.0, ops);
    return in;
  }

  auth::TrustedAuthority ta_;
  access::AbeAuthority abe_;
  crypto::Drbg drbg_;
  crypto::Bytes owner_key_;
  std::unique_ptr<auth::PseudonymAuth> signer_;
};

TEST_F(PipelineFixture, AllStagesPass) {
  SecurePipeline pipeline({});
  const crypto::Bytes payload{1, 2, 3};
  const auto auth_in = make_auth(payload);

  const auto policy = access::Policy::parse("role:member");
  crypto::OpCounts ops;
  access::StickyPackage pkg(abe_, crypto::Bytes{9}, policy->clone(),
                            owner_key_, 1, drbg_, ops);
  const access::AttributeSet attrs{"role:member"};
  const auto key = abe_.keygen(attrs);
  SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};

  trust::EventCluster cluster;
  for (int i = 0; i < 4; ++i) {
    trust::Report r;
    r.positive = true;
    cluster.reports.push_back(r);
  }
  const trust::MajorityVote validator;
  SecurePipeline::TrustInput trust_in{&validator, &cluster};

  const PipelineResult result = pipeline.process(auth_in, authz, trust_in, 0.0);
  EXPECT_TRUE(result.authenticated);
  EXPECT_TRUE(result.authorized);
  EXPECT_TRUE(result.trusted);
  EXPECT_TRUE(result.accepted);
  EXPECT_GT(result.latency, 0.0);
}

TEST_F(PipelineFixture, BadSignatureRejectsAtAuthentication) {
  SecurePipeline pipeline({});
  auto auth_in = make_auth({1, 2, 3});
  auth_in.payload[0] ^= 1;  // tamper
  const PipelineResult result =
      pipeline.process(auth_in, {}, {}, 0.0);
  EXPECT_FALSE(result.accepted);
  EXPECT_STREQ(result.rejected_at, "authentication");
}

TEST_F(PipelineFixture, WrongAttributesRejectAtAuthorization) {
  SecurePipeline pipeline({});
  const auto auth_in = make_auth({5});
  const auto policy = access::Policy::parse("role:head");
  crypto::OpCounts ops;
  access::StickyPackage pkg(abe_, crypto::Bytes{9}, policy->clone(),
                            owner_key_, 1, drbg_, ops);
  const access::AttributeSet attrs{"role:member"};
  const auto key = abe_.keygen(attrs);
  SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};
  const PipelineResult result = pipeline.process(auth_in, authz, {}, 0.0);
  EXPECT_TRUE(result.authenticated);
  EXPECT_FALSE(result.accepted);
  EXPECT_STREQ(result.rejected_at, "authorization");
  // The denial is on the package's audit log.
  EXPECT_EQ(pkg.log().size(), 1u);
}

TEST_F(PipelineFixture, UntrustedContentRejectsAtTrust) {
  SecurePipeline pipeline({});
  const auto auth_in = make_auth({5});
  trust::EventCluster cluster;
  for (int i = 0; i < 4; ++i) {
    trust::Report r;
    r.positive = false;  // everyone denies the event
    cluster.reports.push_back(r);
  }
  const trust::MajorityVote validator;
  const PipelineResult result =
      pipeline.process(auth_in, {}, {&validator, &cluster}, 0.0);
  EXPECT_FALSE(result.accepted);
  EXPECT_STREQ(result.rejected_at, "trust");
}

TEST_F(PipelineFixture, BudgetChecked) {
  PipelineConfig cfg;
  cfg.budget = 1 * kMicroseconds;  // impossible budget
  SecurePipeline pipeline(cfg);
  const auto auth_in = make_auth({5});
  const PipelineResult result = pipeline.process(auth_in, {}, {}, 0.0);
  EXPECT_TRUE(result.accepted);
  EXPECT_FALSE(result.within_budget);
}

TEST(PipelineNames, ProtocolNames) {
  EXPECT_STREQ(to_string(AuthProtocolKind::kPseudonym), "pseudonym");
  EXPECT_STREQ(to_string(CloudArchitecture::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(OperatingMode::kEmergency), "emergency");
}

}  // namespace
}  // namespace vcl::core
