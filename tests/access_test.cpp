#include <gtest/gtest.h>

#include "access/abe.h"
#include "access/audit_log.h"
#include "access/policy.h"
#include "access/role_manager.h"
#include "access/sticky_package.h"

namespace vcl::access {
namespace {

// ---- Attribute sets ----------------------------------------------------------

TEST(AttributeSet, BasicOps) {
  AttributeSet s{"role:head", "zone:a"};
  EXPECT_TRUE(s.has("role:head"));
  EXPECT_FALSE(s.has("role:member"));
  s.add("x");
  s.remove("zone:a");
  EXPECT_EQ(s.size(), 2u);
}

TEST(AttributeSet, SetKeyedReplaces) {
  AttributeSet s{"role:member", "zone:a"};
  s.set_keyed("role", "head");
  EXPECT_TRUE(s.has("role:head"));
  EXPECT_FALSE(s.has("role:member"));
  EXPECT_EQ(s.get_keyed("role"), "head");
  EXPECT_EQ(s.get_keyed("missing"), "");
}

// ---- Policy parsing / evaluation ----------------------------------------------

TEST(Policy, ParseSingleAttribute) {
  const auto p = Policy::parse("role:head");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"role:head"}));
  EXPECT_FALSE(p->satisfied({"role:member"}));
  EXPECT_EQ(p->leaf_count(), 1u);
}

TEST(Policy, ParseAndOr) {
  const auto p = Policy::parse("(a & b) | c");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"a", "b"}));
  EXPECT_TRUE(p->satisfied({"c"}));
  EXPECT_FALSE(p->satisfied({"a"}));
  EXPECT_EQ(p->leaf_count(), 3u);
}

TEST(Policy, ParseThreshold) {
  const auto p = Policy::parse("2of(a, b, c)");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->satisfied({"a"}));
  EXPECT_TRUE(p->satisfied({"a", "c"}));
  EXPECT_TRUE(p->satisfied({"a", "b", "c"}));
}

TEST(Policy, ParseNested) {
  const auto p = Policy::parse("2of(role:head & zone:z1, level:4, sensor:cam)");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"level:4", "sensor:cam"}));
  EXPECT_TRUE(p->satisfied({"role:head", "zone:z1", "level:4"}));
  EXPECT_FALSE(p->satisfied({"role:head", "level:4"}));  // AND incomplete
}

TEST(Policy, ParseErrors) {
  EXPECT_FALSE(Policy::parse("").has_value());
  EXPECT_FALSE(Policy::parse("a &").has_value());
  EXPECT_FALSE(Policy::parse("(a | b").has_value());
  EXPECT_FALSE(Policy::parse("5of(a, b)").has_value());  // k > n
  EXPECT_FALSE(Policy::parse("0of(a)").has_value());
  EXPECT_FALSE(Policy::parse("a b").has_value());  // trailing junk
}

TEST(Policy, RoundTripToString) {
  const auto p = Policy::parse("(a & b) | 2of(c, d, e)");
  ASSERT_TRUE(p.has_value());
  const auto reparsed = Policy::parse(p->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->satisfied({"a", "b"}));
  EXPECT_TRUE(reparsed->satisfied({"c", "e"}));
  EXPECT_FALSE(reparsed->satisfied({"c"}));
}

TEST(Policy, CloneIsIndependent) {
  auto p = Policy::parse("a & b");
  const Policy c = p->clone();
  EXPECT_EQ(c.leaf_count(), 2u);
  EXPECT_TRUE(c.satisfied({"a", "b"}));
}

// ---- ABE ----------------------------------------------------------------------

class AbeFixture : public ::testing::Test {
 protected:
  AbeFixture() : authority_(31337), drbg_(std::uint64_t{55}) {}
  AbeAuthority authority_;
  crypto::Drbg drbg_;
  crypto::OpCounts ops_;
};

TEST_F(AbeFixture, DecryptWithSatisfyingAttributes) {
  const auto policy = Policy::parse("a & b");
  const auto& g = crypto::default_group();
  const std::uint64_t m = g.pow_g(12345);
  const auto ct = authority_.encrypt(m, *policy, drbg_, ops_);
  const AttributeSet attrs{"a", "b"};
  const auto key = authority_.keygen(attrs);
  const auto out = AbeAuthority::decrypt(ct, key, attrs, ops_);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(AbeFixture, DecryptFailsWithoutSatisfaction) {
  const auto policy = Policy::parse("a & b");
  const auto ct = authority_.encrypt(crypto::default_group().pow_g(7), *policy,
                                     drbg_, ops_);
  const AttributeSet attrs{"a"};
  const auto key = authority_.keygen(attrs);
  EXPECT_FALSE(AbeAuthority::decrypt(ct, key, attrs, ops_).has_value());
}

TEST_F(AbeFixture, ThresholdGateWorks) {
  const auto policy = Policy::parse("2of(a, b, c)");
  const auto& g = crypto::default_group();
  const std::uint64_t m = g.pow_g(999);
  const auto ct = authority_.encrypt(m, *policy, drbg_, ops_);
  for (const AttributeSet& good :
       {AttributeSet{"a", "b"}, AttributeSet{"b", "c"}, AttributeSet{"a", "c"},
        AttributeSet{"a", "b", "c"}}) {
    const auto key = authority_.keygen(good);
    const auto out = AbeAuthority::decrypt(ct, key, good, ops_);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, m);
  }
  for (const AttributeSet& bad :
       {AttributeSet{"a"}, AttributeSet{"c"}, AttributeSet{}}) {
    const auto key = authority_.keygen(bad);
    EXPECT_FALSE(AbeAuthority::decrypt(ct, key, bad, ops_).has_value());
  }
}

// Property sweep: decrypt succeeds iff the attribute set satisfies the
// policy, across several policies and attribute subsets.
class AbeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(AbeProperty, DecryptIffSatisfied) {
  AbeAuthority authority(777);
  crypto::Drbg drbg(std::uint64_t{11});
  crypto::OpCounts ops;
  const auto policy = Policy::parse(GetParam());
  ASSERT_TRUE(policy.has_value());
  const auto& g = crypto::default_group();
  const std::uint64_t m = g.pow_g(4242);
  const auto ct = authority.encrypt(m, *policy, drbg, ops);

  const std::vector<Attribute> universe{"a", "b", "c", "d"};
  for (unsigned mask = 0; mask < 16; ++mask) {
    AttributeSet attrs;
    for (unsigned bit = 0; bit < 4; ++bit) {
      if (mask & (1u << bit)) attrs.add(universe[bit]);
    }
    const auto key = authority.keygen(attrs);
    const auto out = AbeAuthority::decrypt(ct, key, attrs, ops);
    if (policy->satisfied(attrs)) {
      ASSERT_TRUE(out.has_value()) << GetParam() << " mask=" << mask;
      EXPECT_EQ(*out, m);
    } else {
      EXPECT_FALSE(out.has_value()) << GetParam() << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, AbeProperty,
                         ::testing::Values("a", "a & b", "a | b",
                                           "(a & b) | (c & d)",
                                           "2of(a, b, c)", "3of(a, b, c, d)",
                                           "a & 2of(b, c, d)",
                                           "(a | b) & (c | d)"));

TEST_F(AbeFixture, SealOpenRoundTrip) {
  const auto policy = Policy::parse("a");
  const crypto::Bytes payload = drbg_.generate(500);
  const auto pkg = authority_.seal(payload, *policy, drbg_, ops_);
  EXPECT_NE(pkg.body, payload);
  const AttributeSet attrs{"a"};
  const auto key = authority_.keygen(attrs);
  const auto out = AbeAuthority::open(pkg, key, attrs, ops_);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST_F(AbeFixture, SealTamperDetected) {
  const auto policy = Policy::parse("a");
  auto pkg = authority_.seal(drbg_.generate(100), *policy, drbg_, ops_);
  pkg.body[0] ^= 1;
  const AttributeSet attrs{"a"};
  const auto key = authority_.keygen(attrs);
  EXPECT_FALSE(AbeAuthority::open(pkg, key, attrs, ops_).has_value());
}

TEST_F(AbeFixture, OpsCountLeaves) {
  const auto policy = Policy::parse("a & b & c");
  crypto::OpCounts ops;
  (void)authority_.encrypt(1, *policy, drbg_, ops);
  EXPECT_EQ(ops.abe_encrypt_leaves, 3u);
}

// ---- Audit log -----------------------------------------------------------------

TEST(AuditLog, ChainVerifies) {
  AuditLog log;
  for (int i = 0; i < 5; ++i) {
    log.append({static_cast<double>(i), 100u + static_cast<unsigned>(i), 7,
                "read", i % 2 == 0});
  }
  EXPECT_EQ(log.size(), 5u);
  EXPECT_TRUE(log.verify_chain());
}

TEST(AuditLog, TamperDetected) {
  AuditLog log;
  log.append({0.0, 1, 7, "read", true});
  log.append({1.0, 2, 7, "read", false});
  log.mutable_records()[0].granted = false;  // rewrite history
  EXPECT_FALSE(log.verify_chain());
}

TEST(AuditLog, TruncationDetected) {
  AuditLog log;
  log.append({0.0, 1, 7, "read", true});
  log.append({1.0, 2, 7, "read", true});
  log.mutable_records().pop_back();
  EXPECT_FALSE(log.verify_chain());
}

// ---- Sticky packages ------------------------------------------------------------

class StickyFixture : public ::testing::Test {
 protected:
  StickyFixture()
      : authority_(5),
        drbg_(std::uint64_t{66}),
        owner_key_(drbg_.generate(32)) {}

  StickyPackage make_package(const std::string& policy_text) {
    const auto policy = Policy::parse(policy_text);
    return StickyPackage(authority_, crypto::Bytes{10, 20, 30},
                         policy->clone(), owner_key_, 42, drbg_, ops_);
  }

  AbeAuthority authority_;
  crypto::Drbg drbg_;
  crypto::Bytes owner_key_;
  crypto::OpCounts ops_;
};

TEST_F(StickyFixture, AuthorizedAccessReturnsData) {
  StickyPackage pkg = make_package("role:head");
  const AttributeSet attrs{"role:head"};
  const auto key = authority_.keygen(attrs);
  const auto data = pkg.access(key, attrs, 1001, 5.0, ops_);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, (crypto::Bytes{10, 20, 30}));
}

TEST_F(StickyFixture, UnauthorizedAccessDeniedButLogged) {
  StickyPackage pkg = make_package("role:head");
  const AttributeSet attrs{"role:member"};
  const auto key = authority_.keygen(attrs);
  EXPECT_FALSE(pkg.access(key, attrs, 1002, 5.0, ops_).has_value());
  ASSERT_EQ(pkg.log().size(), 1u);
  EXPECT_FALSE(pkg.log().records()[0].granted);
  EXPECT_EQ(pkg.log().records()[0].accessor, 1002u);
  EXPECT_TRUE(pkg.log().verify_chain());
}

TEST_F(StickyFixture, EveryAccessAppendsAudit) {
  StickyPackage pkg = make_package("a");
  const AttributeSet good{"a"};
  const AttributeSet bad{"b"};
  const auto gk = authority_.keygen(good);
  const auto bk = authority_.keygen(bad);
  (void)pkg.access(gk, good, 1, 0.0, ops_);
  (void)pkg.access(bk, bad, 2, 1.0, ops_);
  (void)pkg.access(gk, good, 3, 2.0, ops_);
  EXPECT_EQ(pkg.log().size(), 3u);
  EXPECT_TRUE(pkg.log().verify_chain());
}

TEST_F(StickyFixture, EnvelopeDetectsPolicyTamper) {
  StickyPackage pkg = make_package("role:head");
  EXPECT_TRUE(pkg.verify_envelope(owner_key_));
  pkg.tamper_policy_text("role:anyone");
  EXPECT_FALSE(pkg.verify_envelope(owner_key_));
}

TEST_F(StickyFixture, EnvelopeNeedsOwnerKey)  {
  StickyPackage pkg = make_package("a");
  crypto::Drbg other(std::uint64_t{67});
  EXPECT_FALSE(pkg.verify_envelope(other.generate(32)));
}

// ---- Role manager ----------------------------------------------------------------

TEST(RoleManager, HeadGetsHeadAttributes) {
  RoleManager rm;
  VehicleContext ctx;
  ctx.is_cluster_head = true;
  ctx.zone = "z3";
  const AttributeSet attrs = rm.attributes_for(ctx);
  EXPECT_TRUE(attrs.has("role:head"));
  EXPECT_TRUE(attrs.has("can:assign-tasks"));
  EXPECT_TRUE(attrs.has("zone:z3"));
  EXPECT_FALSE(attrs.has("role:member"));
}

TEST(RoleManager, EmergencyGrantsExtraAttributes) {
  RoleManager rm;
  VehicleContext ctx;
  const AttributeSet normal = rm.attributes_for(ctx);
  ctx.emergency = true;
  const AttributeSet emergency = rm.attributes_for(ctx);
  EXPECT_FALSE(normal.has("can:read-safety-data"));
  EXPECT_TRUE(emergency.has("can:read-safety-data"));
}

TEST(RoleManager, SlowVehiclesCanBuffer) {
  RoleManager rm;
  VehicleContext ctx;
  ctx.speed = 2.0;
  EXPECT_TRUE(rm.attributes_for(ctx).has("can:buffer-content"));
  ctx.speed = 30.0;
  EXPECT_FALSE(rm.attributes_for(ctx).has("can:buffer-content"));
  EXPECT_TRUE(rm.attributes_for(ctx).has("band:fast"));
}

TEST(RoleManager, SwitchDeltaCountsChanges) {
  RoleManager rm;
  VehicleContext before;
  VehicleContext after = before;
  EXPECT_EQ(rm.switch_delta(before, after), 0u);
  after.is_cluster_head = true;
  EXPECT_GT(rm.switch_delta(before, after), 0u);
}

TEST(RoleManager, CustomRules) {
  RoleManager rm;
  rm.add_rule({"vip",
               [](const VehicleContext& c) { return c.zone == "vip"; },
               {"tier:vip"},
               false});
  VehicleContext ctx;
  ctx.zone = "vip";
  EXPECT_TRUE(rm.attributes_for(ctx).has("tier:vip"));
}

}  // namespace
}  // namespace vcl::access
