#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "attack/adversary.h"
#include "core/system.h"
#include "vcloud/admission.h"
#include "vcloud/cloud.h"
#include "vcloud/invariant_oracle.h"

// ---- AdversaryConfig validation ---------------------------------------------

namespace vcl::attack {
namespace {

TEST(AdversaryValidation, DisabledConfigIsAlwaysValid) {
  AdversaryConfig cfg;  // enabled == false
  cfg.sybil_rate = -5.0;
  cfg.freshness_window = -1.0;
  EXPECT_TRUE(validate(cfg, 0).empty());
  EXPECT_NO_THROW(validate_or_throw(cfg, 0));
}

TEST(AdversaryValidation, RejectsBadConfigsWithMessages) {
  const auto problem = [](auto mutate) {
    AdversaryConfig cfg;
    cfg.enabled = true;
    mutate(cfg);
    return validate(cfg, /*fleet_size=*/20);
  };
  EXPECT_EQ(problem([](AdversaryConfig& c) { c.sybil_rate = -0.1; }),
            "sybil_rate is negative");
  EXPECT_EQ(problem([](AdversaryConfig& c) { c.revoke_rate = -1.0; }),
            "revoke_rate is negative");
  EXPECT_EQ(problem([](AdversaryConfig& c) { c.replay_rate = -1.0; }),
            "replay_rate is negative");
  EXPECT_EQ(problem([](AdversaryConfig& c) {
              c.sybil_rate = 0.1;
              c.sybil_count = 0;
            }),
            "sybil_count must be >= 1");
  EXPECT_EQ(problem([](AdversaryConfig& c) {
              c.sybil_rate = 0.1;
              c.sybil_count = 21;
            }),
            "sybil_count exceeds the fleet size");
  EXPECT_EQ(problem([](AdversaryConfig& c) { c.freshness_window = 0.0; }),
            "freshness_window must be positive");
  // A sane attack config passes.
  EXPECT_TRUE(problem([](AdversaryConfig& c) {
                c.sybil_rate = 0.05;
                c.revoke_rate = 0.02;
                c.replay_rate = 0.02;
              }).empty());
  // freshness_window only matters when the defense consults it.
  EXPECT_TRUE(problem([](AdversaryConfig& c) {
                c.defend = false;
                c.freshness_window = 0.0;
              }).empty());
}

TEST(AdversaryValidation, ThrowsPrefixedInvalidArgument) {
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.sybil_rate = -0.1;
  try {
    validate_or_throw(cfg, 20);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "AdversaryConfig: sybil_rate is negative");
  }
}

}  // namespace
}  // namespace vcl::attack

// ---- AdmissionControl unit behavior -----------------------------------------

namespace vcl::vcloud {
namespace {

TEST(AdmissionControl, RevocationInvisibleUntilCrlDelivery) {
  AdmissionControl adm(AdmissionConfig{});
  const VehicleId v{7};
  adm.note_revoked(v, 1.0);
  // Authority-side truth only: no RSU holds the CRL yet, so nothing is
  // visible, evictable or horizon-bounded — this gap IS the §IV race.
  EXPECT_FALSE(adm.revoked_visible(v, 100.0));
  EXPECT_FALSE(adm.should_evict(v, 100.0));
  EXPECT_TRUE(std::isinf(adm.revocation_horizon(v)));
  EXPECT_EQ(adm.stats().revocations, 1u);

  adm.deliver_crl(v, /*visible_at=*/5.0, /*horizon_at=*/9.0, 5.0);
  EXPECT_FALSE(adm.revoked_visible(v, 4.999));
  // Revocation landing exactly at a refresh tick evicts on THAT refresh —
  // the boundary is inclusive, the member does not survive one extra round.
  EXPECT_TRUE(adm.revoked_visible(v, 5.0));
  EXPECT_TRUE(adm.should_evict(v, 5.0));
  EXPECT_DOUBLE_EQ(adm.revocation_horizon(v), 9.0);
}

TEST(AdmissionControl, RevokedArrivalIsRefusedAndCounted) {
  AdmissionControl adm(AdmissionConfig{});
  const VehicleId v{3};
  EXPECT_TRUE(adm.allow_arrival(v, 1.0));
  adm.deliver_crl(v, 2.0, 6.0, 2.0);
  EXPECT_FALSE(adm.allow_arrival(v, 2.0));
  EXPECT_EQ(adm.stats().arrivals_rejected, 1u);
  // Revoked claims are rejected outright, never quarantined.
  EXPECT_EQ(adm.offer_claim(v, /*fabricated=*/false, 3.0),
            AdmissionControl::ClaimOutcome::kRejected);
}

TEST(AdmissionControl, SupersededCrlReadmits) {
  AdmissionControl adm(AdmissionConfig{});
  const VehicleId v{9};
  adm.deliver_crl(v, 2.0, 6.0, 2.0);
  ASSERT_TRUE(adm.revoked_visible(v, 3.0));

  // A superseding CRL clears the entry. The Bloom filter is append-only so
  // it still answers "maybe revoked" — the erased exact map must override.
  adm.lift_revocation(v);
  EXPECT_TRUE(adm.crl().is_revoked(v.value()));  // stale Bloom positive
  EXPECT_FALSE(adm.revoked_visible(v, 100.0));
  EXPECT_TRUE(std::isinf(adm.revocation_horizon(v)));
  EXPECT_TRUE(adm.allow_arrival(v, 100.0));
  EXPECT_EQ(adm.offer_claim(v, /*fabricated=*/false, 100.0),
            AdmissionControl::ClaimOutcome::kAdmitted);
  EXPECT_TRUE(adm.was_admitted_claim(v));
}

TEST(AdmissionControl, ReplayFreshnessBoundaryIsStrict) {
  AdmissionConfig cfg;
  cfg.freshness_window = 2.0;
  AdmissionControl adm(cfg);
  // Age exactly equal to the window is NOT stale (strict-staleness
  // boundary): the message squeaks through.
  EXPECT_TRUE(adm.accept_replay(/*original_ts=*/8.0, /*nonce=*/1, 10.0));
  // One tick past the window dies at the door.
  EXPECT_FALSE(adm.accept_replay(7.9, 2, 10.0));
  EXPECT_EQ(adm.stats().replays_seen, 2u);
  EXPECT_EQ(adm.stats().replays_accepted, 1u);
  EXPECT_EQ(adm.stats().replays_rejected, 1u);
}

TEST(AdmissionControl, RememberedNonceDiesEvenInsideWindow) {
  AdmissionConfig cfg;
  cfg.freshness_window = 2.0;
  AdmissionControl adm(cfg);
  EXPECT_TRUE(adm.accept_replay(9.5, /*nonce=*/5, 10.0));
  // Same capture re-sent fresh: the nonce memory alone kills it.
  EXPECT_FALSE(adm.accept_replay(9.6, 5, 10.1));
  EXPECT_EQ(adm.stats().replays_rejected, 1u);
}

TEST(AdmissionControl, StrictPolicyQuarantinesEverySybil) {
  AdmissionControl adm(AdmissionConfig{});  // max_unverified_admissions == 0
  const VehicleId fake{(1ULL << 48) | 1};
  adm.note_fabricated(fake);
  EXPECT_TRUE(adm.is_fabricated(fake));
  EXPECT_EQ(adm.offer_claim(fake, /*fabricated=*/true, 1.0),
            AdmissionControl::ClaimOutcome::kQuarantined);
  EXPECT_TRUE(adm.is_quarantined(fake));
  EXPECT_EQ(adm.quarantined_count(), 1u);
  EXPECT_FALSE(adm.was_admitted_claim(fake));
  EXPECT_EQ(adm.stats().sybil_claims, 1u);
  EXPECT_EQ(adm.stats().sybil_quarantined, 1u);
  EXPECT_EQ(adm.stats().sybil_admitted, 0u);
}

TEST(AdmissionControl, UnverifiedToleranceAdmitsUpToBound) {
  AdmissionConfig cfg;
  cfg.max_unverified_admissions = 1;
  AdmissionControl adm(cfg);
  const VehicleId a{(1ULL << 48) | 1}, b{(1ULL << 48) | 2};
  EXPECT_EQ(adm.offer_claim(a, true, 1.0),
            AdmissionControl::ClaimOutcome::kAdmitted);
  EXPECT_TRUE(adm.was_admitted_claim(a));
  EXPECT_EQ(adm.offer_claim(b, true, 2.0),
            AdmissionControl::ClaimOutcome::kQuarantined);
  EXPECT_EQ(adm.stats().sybil_admitted, 1u);
  EXPECT_EQ(adm.stats().sybil_quarantined, 1u);
}

TEST(AdmissionControl, DefenseOffOpensTheDoorButKeepsBooks) {
  AdmissionConfig cfg;
  cfg.defend = false;
  AdmissionControl adm(cfg);
  const VehicleId fake{(1ULL << 48) | 4}, v{11};
  // Claims become members, stale replays pass, revocations evict nobody —
  // the E24 vulnerable baseline.
  EXPECT_EQ(adm.offer_claim(fake, true, 1.0),
            AdmissionControl::ClaimOutcome::kAdmitted);
  EXPECT_TRUE(adm.accept_replay(/*original_ts=*/0.0, 1, 100.0));
  adm.deliver_crl(v, 2.0, 6.0, 2.0);
  EXPECT_FALSE(adm.should_evict(v, 50.0));
  EXPECT_TRUE(adm.allow_arrival(v, 50.0));
  // ...but the pollution stays measurable.
  EXPECT_EQ(adm.stats().sybil_claims, 1u);
  EXPECT_EQ(adm.stats().sybil_admitted, 1u);
  EXPECT_EQ(adm.stats().replays_seen, 1u);
  EXPECT_EQ(adm.stats().replays_accepted, 1u);
  EXPECT_EQ(adm.stats().crl_deliveries, 1u);
}

}  // namespace
}  // namespace vcl::vcloud

// ---- oracle auth invariants over a live cloud -------------------------------

namespace vcl::vcloud {
namespace {

class AdmissionOracleFixture : public ::testing::Test {
 protected:
  AdmissionOracleFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  std::unique_ptr<VehicularCloud> make_stationary_cloud(int members) {
    for (int i = 0; i < members; ++i) {
      traffic_.spawn_parked(LinkId{0}, 10.0 * i);
    }
    net_.refresh();
    auto cloud = std::make_unique<VehicularCloud>(
        CloudId{1}, net_, stationary_membership(traffic_, {100, 0}, 400.0),
        fixed_region({100, 0}, 400.0),
        std::make_unique<GreedyResourceScheduler>(), CloudConfig{}, Rng(3));
    cloud->refresh();
    return cloud;
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

// With the defense off a fabricated claim becomes a member; the armed
// oracle flags the pollution the moment it exceeds the policy bound.
TEST_F(AdmissionOracleFixture, SybilMemberBeyondBoundIsAViolation) {
  auto cloud = make_stationary_cloud(4);
  AdmissionConfig cfg;
  cfg.defend = false;  // door open: the claim will actually land
  AdmissionControl adm(cfg);
  cloud->set_admission(&adm);
  InvariantOracle oracle(42);
  oracle.set_admission(&adm);

  oracle.check(*cloud, 1.0);
  ASSERT_TRUE(oracle.ok()) << oracle.violations()[0].to_string();

  const VehicleId fake{(1ULL << 48) | 1};
  adm.note_fabricated(fake);
  ASSERT_TRUE(cloud->offer_join(fake, /*fabricated=*/true));
  ASSERT_TRUE(cloud->is_worker(fake));

  oracle.check(*cloud, 2.0);
  ASSERT_FALSE(oracle.ok());
  bool saw = false;
  for (const auto& v : oracle.violations()) {
    saw |= v.invariant == "auth-sybil-admission";
  }
  EXPECT_TRUE(saw);
}

// Inside the CRL propagation horizon a revoked member is legal; strictly
// past it, surviving membership is the safety violation.
TEST_F(AdmissionOracleFixture, RevokedMemberPastHorizonIsAViolation) {
  auto cloud = make_stationary_cloud(4);
  AdmissionConfig cfg;
  cfg.defend = false;  // eviction sweep off: the member WILL outlive it
  AdmissionControl adm(cfg);
  cloud->set_admission(&adm);
  InvariantOracle oracle(42);
  oracle.set_admission(&adm);

  const VehicleId victim = cloud->worker_ids().front();
  adm.note_revoked(victim, 4.0);
  adm.deliver_crl(victim, /*visible_at=*/5.0, /*horizon_at=*/9.0, 5.0);

  oracle.check(*cloud, 9.0);  // exactly AT the horizon: still legal
  ASSERT_TRUE(oracle.ok()) << oracle.violations()[0].to_string();

  oracle.check(*cloud, 9.5);  // strictly past: contractually evicted by now
  ASSERT_FALSE(oracle.ok());
  bool saw = false;
  for (const auto& v : oracle.violations()) {
    saw |= v.invariant == "auth-revoked-membership";
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace vcl::vcloud

// ---- system wiring ----------------------------------------------------------

namespace vcl::core {
namespace {

TEST(AdversarySystem, DisabledAdversaryBuildsNothing) {
  SystemConfig cfg;
  cfg.scenario.vehicles = 10;
  VehicularCloudSystem system(cfg);
  system.start();
  EXPECT_EQ(system.admission(), nullptr);
  EXPECT_EQ(system.adversary(), nullptr);
  EXPECT_EQ(system.cloud().admission(), nullptr);
}

TEST(AdversarySystem, WiringValidatesTheConfig) {
  SystemConfig cfg;
  cfg.scenario.vehicles = 10;
  cfg.adversary.enabled = true;
  cfg.adversary.sybil_rate = -0.1;
  VehicularCloudSystem system(cfg);
  EXPECT_THROW(system.start(), std::invalid_argument);
}

TEST(AdversarySystem, DefendedSybilClaimIsQuarantinedNotDispatched) {
  SystemConfig cfg;
  cfg.scenario.environment = Environment::kParkingLot;
  cfg.scenario.vehicles = 20;
  cfg.scenario.vehicles_parked = true;
  cfg.architecture = CloudArchitecture::kStationary;
  cfg.stationary_radius = 2000.0;
  cfg.adversary.enabled = true;  // defend defaults to true
  VehicularCloudSystem system(cfg);
  system.start();
  ASSERT_NE(system.admission(), nullptr);

  const VehicleId fake = AdversaryDriver::sybil_identity(1);
  system.admission()->note_fabricated(fake);
  EXPECT_FALSE(system.cloud().offer_join(fake, /*fabricated=*/true));
  EXPECT_FALSE(system.cloud().is_worker(fake));
  EXPECT_TRUE(system.admission()->is_quarantined(fake));
  // Graceful degradation: quarantine costs capacity, never membership.
  system.run_for(10.0);
  EXPECT_FALSE(system.cloud().is_worker(fake));
  EXPECT_EQ(system.admission()->stats().sybil_quarantined, 1u);
}

}  // namespace
}  // namespace vcl::core
