#include <gtest/gtest.h>

#include "cluster/fuzzy_clustering.h"
#include "cluster/moving_zone.h"
#include "cluster/passive_clustering.h"
#include "cluster/speed_clustering.h"
#include "cluster/stability.h"

namespace vcl::cluster {
namespace {

class ClusterFixture : public ::testing::Test {
 protected:
  ClusterFixture()
      : road_(geo::make_manhattan_grid(2, 10, 400.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  VehicleId park_at(double offset) {
    // Link 0 runs 400 m along the bottom row.
    return traffic_.spawn_parked(LinkId{0}, offset);
  }
  VehicleId park_far(int link_steps, double offset) {
    return traffic_.spawn_parked(LinkId{static_cast<std::uint64_t>(link_steps)},
                                 offset);
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

template <typename Manager>
void expect_consistent(const Manager& m) {
  // Every member's head must itself be a head; every head maps to itself.
  for (const auto& [vid, a] : m.assignments()) {
    if (a.role == ClusterRole::kHead) {
      EXPECT_EQ(a.head, VehicleId{vid});
    } else if (a.role == ClusterRole::kMember) {
      EXPECT_EQ(m.role(a.head), ClusterRole::kHead)
          << "member " << vid << " points to non-head";
    }
  }
}

TEST_F(ClusterFixture, SpeedClusteringGroupsCoLocatedVehicles) {
  for (double off : {0.0, 50.0, 100.0, 150.0}) park_at(off);
  // Several beacon rounds: neighbor tables tolerate individual beacon loss.
  for (int i = 0; i < 3; ++i) net_.refresh();
  SpeedClustering mgr(net_);
  mgr.update();
  const auto clusters = mgr.clusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].second.size(), 4u);
  expect_consistent(mgr);
}

TEST_F(ClusterFixture, SpeedClusteringSeparatesDistantGroups) {
  park_at(0.0);
  park_at(60.0);
  // Far group: several links away (>1200 m).
  const auto far_link = LinkId{10};
  traffic_.spawn_parked(far_link, 0.0);
  traffic_.spawn_parked(far_link, 60.0);
  net_.refresh();
  SpeedClustering mgr(net_);
  mgr.update();
  EXPECT_EQ(mgr.clusters().size(), 2u);
  expect_consistent(mgr);
}

TEST_F(ClusterFixture, IsolatedVehicleIsOwnHead) {
  const VehicleId v = park_at(0.0);
  net_.refresh();
  SpeedClustering mgr(net_);
  mgr.update();
  EXPECT_EQ(mgr.role(v), ClusterRole::kHead);
  EXPECT_EQ(mgr.head_of(v), v);
}

TEST_F(ClusterFixture, HysteresisKeepsIncumbentHead) {
  for (double off : {0.0, 50.0, 100.0}) park_at(off);
  net_.refresh();
  SpeedClustering mgr(net_);
  mgr.update();
  const auto first = mgr.clusters();
  ASSERT_EQ(first.size(), 1u);
  const VehicleId head = first[0].first;
  // Re-running without mobility changes must keep the same head.
  for (int i = 0; i < 5; ++i) mgr.update();
  EXPECT_EQ(mgr.clusters()[0].first, head);
}

TEST_F(ClusterFixture, PassiveClusteringFormsClusters) {
  for (double off : {0.0, 40.0, 80.0, 120.0, 160.0}) park_at(off);
  net_.refresh();
  PassiveClustering mgr(net_);
  mgr.update();
  EXPECT_GE(mgr.clusters().size(), 1u);
  expect_consistent(mgr);
}

TEST_F(ClusterFixture, PassiveClusteringDepartedVehiclesPruned) {
  const VehicleId a = park_at(0.0);
  park_at(50.0);
  net_.refresh();
  PassiveClustering mgr(net_);
  mgr.update();
  EXPECT_EQ(mgr.assignments().size(), 2u);
  traffic_.despawn(a);
  net_.refresh();
  mgr.update();
  EXPECT_EQ(mgr.assignments().size(), 1u);
}

TEST(FuzzyMembership, TriangularShapes) {
  EXPECT_DOUBLE_EQ(membership_low(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(membership_low(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(membership_low(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(membership_high(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(membership_high(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(membership_high(20.0, 10.0), 1.0);  // clamped
}

TEST_F(ClusterFixture, FuzzySuitabilityOrdersCandidates) {
  FuzzyClustering mgr(net_);
  // Stable + central + connected beats unstable peripheral.
  const double good = mgr.suitability(0.5, 30.0, 10.0);
  const double bad = mgr.suitability(7.5, 240.0, 1.0);
  EXPECT_GT(good, bad);
  EXPECT_GE(good, 0.0);
  EXPECT_LE(good, 1.0);
}

TEST_F(ClusterFixture, FuzzyClusteringElectsCentralHead) {
  // Line of 5: the middle vehicle is the most central.
  const VehicleId mid = [&] {
    park_at(0.0);
    park_at(70.0);
    const VehicleId m = park_at(140.0);
    park_at(210.0);
    park_at(280.0);
    return m;
  }();
  net_.refresh();
  FuzzyClustering mgr(net_);
  mgr.update();
  expect_consistent(mgr);
  // The central vehicle should head a cluster containing everyone it hears.
  EXPECT_EQ(mgr.role(mid), ClusterRole::kHead);
}

TEST_F(ClusterFixture, MovingZoneCompatiblePredicate) {
  MovingZone mgr(net_);
  EXPECT_TRUE(mgr.compatible({20, 0}, {22, 0}));
  EXPECT_FALSE(mgr.compatible({20, 0}, {-20, 0}));     // opposite heading
  EXPECT_FALSE(mgr.compatible({20, 0}, {30, 0}));      // speed gap
  EXPECT_TRUE(mgr.compatible({0, 0}, {0, 0}));         // both parked
}

TEST_F(ClusterFixture, MovingZoneGroupsParkedVehicles) {
  for (double off : {0.0, 50.0, 100.0}) park_at(off);
  net_.refresh();
  MovingZone mgr(net_);
  mgr.update();
  ASSERT_EQ(mgr.clusters().size(), 1u);
  EXPECT_EQ(mgr.clusters()[0].second.size(), 3u);
  expect_consistent(mgr);
}

TEST_F(ClusterFixture, MovingZoneCaptainIsCentral) {
  park_at(0.0);
  const VehicleId mid = park_at(80.0);
  park_at(160.0);
  net_.refresh();
  MovingZone mgr(net_);
  mgr.update();
  EXPECT_EQ(mgr.role(mid), ClusterRole::kHead);
}

TEST_F(ClusterFixture, MovingZoneSplitsOppositeTraffic) {
  // Two vehicles driving in opposite directions on a highway, side by side.
  const auto highway = geo::make_highway(2000.0, 500.0);
  mobility::TrafficModel traffic(highway, Rng(5));
  net::Network net(sim_, traffic, net::ChannelConfig{}, Rng(6));
  // Eastbound on link 0, westbound on the reverse carriageway.
  const auto east = traffic.spawn({LinkId{0}, LinkId{1}}, 25.0);
  // Find a westbound link (from node on the west carriageway).
  LinkId west_link;
  for (const auto& l : highway.links()) {
    const auto dir = highway.link_direction(l.id);
    if (dir.x < -0.9) {
      west_link = l.id;
      break;
    }
  }
  ASSERT_TRUE(west_link.valid());
  const auto west = traffic.spawn({west_link}, 25.0);
  traffic.step(0.1);
  net.refresh();
  MovingZone mgr(net);
  mgr.update();
  EXPECT_NE(mgr.head_of(east), mgr.head_of(west));
}

TEST_F(ClusterFixture, StabilityTrackerCountsHeadTenure) {
  for (double off : {0.0, 50.0, 100.0}) park_at(off);
  net_.refresh();
  SpeedClustering mgr(net_);
  StabilityTracker tracker(mgr);
  mgr.update();
  tracker.observe(0.0);
  mgr.update();
  tracker.observe(1.0);
  // Stable scene: no reaffiliations, constant cluster count.
  EXPECT_DOUBLE_EQ(tracker.reaffiliation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.cluster_count().mean(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.cluster_size().mean(), 3.0);
}

TEST_F(ClusterFixture, StabilityTrackerDetectsReaffiliation) {
  // Two co-located vehicles; despawn the head and watch the member re-home.
  const VehicleId a = park_at(0.0);
  const VehicleId b = park_at(50.0);
  const VehicleId c = park_at(100.0);
  net_.refresh();
  SpeedClustering mgr(net_);
  StabilityTracker tracker(mgr);
  mgr.update();
  tracker.observe(0.0);
  const VehicleId head = mgr.clusters()[0].first;
  traffic_.despawn(head);
  net_.refresh();
  mgr.update();
  tracker.observe(1.0);
  // The old head's tenure was closed.
  EXPECT_GE(tracker.head_lifetime().count(), 1u);
  (void)a; (void)b; (void)c;
}

TEST_F(ClusterFixture, MembersOfReturnsSortedMembers) {
  for (double off : {0.0, 40.0, 80.0}) park_at(off);
  net_.refresh();
  SpeedClustering mgr(net_);
  mgr.update();
  const VehicleId head = mgr.clusters()[0].first;
  const auto members = mgr.members_of(head);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(members.size(), 3u);
}

}  // namespace
}  // namespace vcl::cluster
