#include <gtest/gtest.h>

#include "auth/authority.h"
#include "auth/crl.h"
#include "auth/group_auth.h"
#include "auth/hybrid_auth.h"
#include "auth/privacy_metrics.h"
#include "auth/pseudonym.h"

namespace vcl::auth {
namespace {

TEST(Crl, RevokedIdsAreFound) {
  Crl crl;
  crl.revoke(42);
  crl.revoke(77);
  EXPECT_TRUE(crl.is_revoked(42));
  EXPECT_TRUE(crl.is_revoked(77));
  EXPECT_FALSE(crl.is_revoked(43));
  EXPECT_EQ(crl.size(), 2u);
}

TEST(Crl, BloomSkipsExactProbesForMisses) {
  Crl crl(1024);
  for (std::uint64_t i = 0; i < 100; ++i) crl.revoke(i);
  for (std::uint64_t i = 1000; i < 2000; ++i) {
    EXPECT_FALSE(crl.is_revoked(i));
  }
  // With ~1% FP target, the vast majority of misses skip the exact set.
  EXPECT_LT(crl.exact_probes(), 100u);
  EXPECT_EQ(crl.bloom_checks(), 1000u);
}

class AuthorityFixture : public ::testing::Test {
 protected:
  AuthorityFixture() : ta_(2024) {
    ta_.register_vehicle(VehicleId{1});
    ta_.register_vehicle(VehicleId{2});
  }
  TrustedAuthority ta_;
};

TEST_F(AuthorityFixture, IssuesOnlyToRegistered) {
  EXPECT_EQ(ta_.issue_pseudonyms(VehicleId{1}, 5).size(), 5u);
  EXPECT_TRUE(ta_.issue_pseudonyms(VehicleId{99}, 5).empty());
}

TEST_F(AuthorityFixture, CertificatesVerify) {
  const auto creds = ta_.issue_pseudonyms(VehicleId{1}, 3);
  for (const auto& c : creds) {
    EXPECT_TRUE(ta_.check_cert(c.cert));
  }
  PseudonymCert forged = creds[0].cert;
  forged.pub ^= 1;
  EXPECT_FALSE(ta_.check_cert(forged));
}

TEST_F(AuthorityFixture, PseudonymIdsAreDistinct) {
  const auto a = ta_.issue_pseudonyms(VehicleId{1}, 10);
  const auto b = ta_.issue_pseudonyms(VehicleId{2}, 10);
  std::set<std::uint64_t> ids;
  for (const auto& c : a) ids.insert(c.cert.pseudo_id);
  for (const auto& c : b) ids.insert(c.cert.pseudo_id);
  EXPECT_EQ(ids.size(), 20u);
}

TEST_F(AuthorityFixture, RevocationHitsAllPseudonyms) {
  const auto creds = ta_.issue_pseudonyms(VehicleId{1}, 5);
  ta_.revoke_vehicle(VehicleId{1});
  for (const auto& c : creds) {
    EXPECT_TRUE(ta_.crl().is_revoked(c.cert.pseudo_id));
  }
  EXPECT_FALSE(ta_.is_registered(VehicleId{1}));
}

TEST_F(AuthorityFixture, OpeningRequiresShareQuorum) {
  const auto creds = ta_.issue_pseudonyms(VehicleId{1}, 1);
  const std::uint64_t pid = creds[0].cert.pseudo_id;
  // One share: refused.
  EXPECT_FALSE(ta_.open(pid, {ta_.escrow_share(0)}).has_value());
  // Two shares (threshold): opens to the right vehicle.
  const auto opened = ta_.open(pid, {ta_.escrow_share(0), ta_.escrow_share(2)});
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, VehicleId{1});
}

TEST_F(AuthorityFixture, OpeningWithWrongSharesFails) {
  const auto creds = ta_.issue_pseudonyms(VehicleId{1}, 1);
  crypto::Share bogus{1, 12345};
  crypto::Share bogus2{2, 54321};
  EXPECT_FALSE(
      ta_.open(creds[0].cert.pseudo_id, {bogus, bogus2}).has_value());
}

// ---- Pseudonym protocol -----------------------------------------------------

class PseudonymFixture : public ::testing::Test {
 protected:
  PseudonymFixture() : ta_(7) {
    ta_.register_vehicle(VehicleId{1});
    auth_ = std::make_unique<PseudonymAuth>(ta_, VehicleId{1}, 10, 60.0);
  }
  TrustedAuthority ta_;
  std::unique_ptr<PseudonymAuth> auth_;
  crypto::OpCounts ops_;
};

TEST_F(PseudonymFixture, SignVerifyRoundTrip) {
  const crypto::Bytes payload{1, 2, 3};
  const auto tag = auth_->sign(payload, 0.0, ops_);
  ASSERT_TRUE(tag.has_value());
  const VerifyOutcome v = PseudonymAuth::verify(ta_, payload, *tag);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.ops.verify, 2u);  // cert + message: Fig. 5's double check
}

TEST_F(PseudonymFixture, TamperRejected) {
  crypto::Bytes payload{1, 2, 3};
  const auto tag = auth_->sign(payload, 0.0, ops_);
  payload[0] = 9;
  EXPECT_FALSE(PseudonymAuth::verify(ta_, payload, *tag).ok);
}

TEST_F(PseudonymFixture, RevokedSenderRejected) {
  const crypto::Bytes payload{5};
  const auto tag = auth_->sign(payload, 0.0, ops_);
  ta_.revoke_vehicle(VehicleId{1});
  const VerifyOutcome v = PseudonymAuth::verify(ta_, payload, *tag);
  EXPECT_FALSE(v.ok);
  EXPECT_STREQ(v.reason, "revoked");
}

TEST_F(PseudonymFixture, RotationChangesPseudonym) {
  const auto id0 = auth_->current_pseudo_id();
  crypto::Bytes p{1};
  (void)auth_->sign(p, 0.0, ops_);
  EXPECT_EQ(auth_->current_pseudo_id(), id0);
  (void)auth_->sign(p, 61.0, ops_);  // past the rotation period
  EXPECT_NE(auth_->current_pseudo_id(), id0);
}

TEST_F(PseudonymFixture, ForgedTagWithoutCertFails) {
  // An unregistered key signing with a self-made "certificate".
  crypto::Drbg drbg(std::uint64_t{99});
  const crypto::Schnorr schnorr(ta_.group());
  const auto kp = schnorr.keygen(drbg);
  AuthTag tag;
  tag.credential_id = 4242;
  tag.ephemeral_pub = kp.pub;
  const crypto::Bytes payload{7};
  tag.msg_sig = schnorr.sign(kp.secret, payload, drbg);
  tag.cert_sig = schnorr.sign(kp.secret, payload, drbg);  // not TA's key
  EXPECT_FALSE(PseudonymAuth::verify(ta_, payload, tag).ok);
}

// ---- Group protocol ----------------------------------------------------------

class GroupFixture : public ::testing::Test {
 protected:
  GroupFixture() : mgr_(1, 99) {
    mgr_.enroll(VehicleId{1});
    mgr_.enroll(VehicleId{2});
  }
  GroupManager mgr_;
  crypto::OpCounts ops_;
};

TEST_F(GroupFixture, MemberSignVerify) {
  GroupAuth member(mgr_, VehicleId{1});
  const crypto::Bytes payload{1, 2};
  const auto tag = member.sign(payload, ops_);
  ASSERT_TRUE(tag.has_value());
  EXPECT_TRUE(GroupAuth::verify(mgr_, payload, *tag).ok);
}

TEST_F(GroupFixture, NonMemberCannotSign) {
  GroupAuth outsider(mgr_, VehicleId{99});
  EXPECT_FALSE(outsider.sign({1}, ops_).has_value());
}

TEST_F(GroupFixture, TamperRejected) {
  GroupAuth member(mgr_, VehicleId{1});
  crypto::Bytes payload{1, 2};
  const auto tag = member.sign(payload, ops_);
  payload[1] = 9;
  EXPECT_FALSE(GroupAuth::verify(mgr_, payload, *tag).ok);
}

TEST_F(GroupFixture, RevocationRotatesEpoch) {
  GroupAuth alice(mgr_, VehicleId{1});
  const crypto::Bytes payload{3};
  const auto old_tag = alice.sign(payload, ops_);
  const auto epoch_before = mgr_.epoch();
  mgr_.revoke(VehicleId{2});
  EXPECT_GT(mgr_.epoch(), epoch_before);
  // Pre-rotation tags no longer verify (stale epoch).
  EXPECT_FALSE(GroupAuth::verify(mgr_, payload, *old_tag).ok);
  // Remaining members keep working with the fresh key.
  const auto new_tag = alice.sign(payload, ops_);
  EXPECT_TRUE(GroupAuth::verify(mgr_, payload, *new_tag).ok);
}

TEST_F(GroupFixture, ManagerOpensIdentity) {
  GroupAuth member(mgr_, VehicleId{2});
  const auto tag = member.sign({1}, ops_);
  const auto opened = mgr_.open(*tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, VehicleId{2});
}

TEST_F(GroupFixture, VerifiableOpeningProvesHonestDecryption) {
  GroupAuth member(mgr_, VehicleId{2});
  const auto tag = member.sign({1}, ops_);
  auto opening = mgr_.open_verifiable(*tag);
  ASSERT_TRUE(opening.has_value());
  EXPECT_EQ(opening->vehicle, VehicleId{2});
  EXPECT_TRUE(GroupManager::check_opening(*tag, mgr_.escrow_pub(), *opening));
}

TEST_F(GroupFixture, FabricatedOpeningRejected) {
  GroupAuth alice(mgr_, VehicleId{1});
  const auto tag = alice.sign({1}, ops_);
  auto opening = mgr_.open_verifiable(*tag);
  ASSERT_TRUE(opening.has_value());
  // A framing manager claims the message decrypts to a different member:
  // altering the claimed element breaks the check.
  GroupManager::VerifiableOpening forged = *opening;
  forged.member_element =
      crypto::default_group().mul(forged.member_element,
                                  crypto::default_group().g());
  EXPECT_FALSE(GroupManager::check_opening(*tag, mgr_.escrow_pub(), forged));
  // Faking the decryption witness itself also fails (the proof binds it).
  GroupManager::VerifiableOpening forged2 = *opening;
  forged2.shared = crypto::default_group().mul(forged2.shared,
                                               crypto::default_group().g());
  EXPECT_FALSE(GroupManager::check_opening(*tag, mgr_.escrow_pub(), forged2));
}

TEST_F(GroupFixture, TagExposesNoSenderId) {
  GroupAuth member(mgr_, VehicleId{1});
  const auto tag = member.sign({1}, ops_);
  // Only the group id is on the wire.
  EXPECT_EQ(tag->credential_id, mgr_.group_id());
  EXPECT_EQ(tag->ephemeral_pub, 0u);
}

// ---- Hybrid protocol ---------------------------------------------------------

class HybridFixture : public ::testing::Test {
 protected:
  HybridFixture() : mgr_(5, 123) {
    mgr_.enroll(VehicleId{1});
    mgr_.enroll(VehicleId{2});
  }
  GroupManager mgr_;
  crypto::OpCounts ops_;
};

TEST_F(HybridFixture, SignVerifyRoundTrip) {
  HybridAuth member(mgr_, VehicleId{1});
  const crypto::Bytes payload{9, 9};
  const auto tag = member.sign(payload, ops_);
  ASSERT_TRUE(tag.has_value());
  EXPECT_TRUE(HybridAuth::verify(mgr_, payload, *tag).ok);
}

TEST_F(HybridFixture, RevocationInvalidatesByEpoch) {
  HybridAuth alice(mgr_, VehicleId{1});
  const crypto::Bytes payload{4};
  const auto tag = alice.sign(payload, ops_);
  mgr_.revoke(VehicleId{2});
  EXPECT_FALSE(HybridAuth::verify(mgr_, payload, *tag).ok);
  // Auto-rotation recovers enrolled members.
  const auto tag2 = alice.sign(payload, ops_);
  EXPECT_TRUE(HybridAuth::verify(mgr_, payload, *tag2).ok);
}

TEST_F(HybridFixture, RevokedMemberCannotRotate) {
  HybridAuth bob(mgr_, VehicleId{2});
  (void)bob.sign({1}, ops_);
  mgr_.revoke(VehicleId{2});
  EXPECT_FALSE(bob.sign({1}, ops_).has_value());
}

TEST_F(HybridFixture, ManagerOpensHybridPseudonym) {
  HybridAuth alice(mgr_, VehicleId{1});
  const auto tag = alice.sign({1}, ops_);
  const auto opened = mgr_.open_hybrid(tag->ephemeral_pub);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, VehicleId{1});
}

TEST_F(HybridFixture, NoCrlNeeded) {
  HybridAuth alice(mgr_, VehicleId{1});
  const crypto::Bytes payload{1};
  const auto tag = alice.sign(payload, ops_);
  const auto v = HybridAuth::verify(mgr_, payload, *tag);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.ops.hash, 0u);  // no CRL lookup in the verify path
}

// ---- Privacy metrics ---------------------------------------------------------

TEST(PrivacyMetrics, StableIdFullyLinkable) {
  std::vector<AirObservation> obs;
  for (int i = 0; i < 10; ++i) {
    obs.push_back({static_cast<double>(i), {0, 0}, 77, VehicleId{1}});
  }
  EXPECT_DOUBLE_EQ(id_linkability(obs), 1.0);
}

TEST(PrivacyMetrics, RotatingIdsUnlinkable) {
  std::vector<AirObservation> obs;
  for (int i = 0; i < 10; ++i) {
    obs.push_back({static_cast<double>(i), {0, 0},
                   static_cast<std::uint64_t>(100 + i), VehicleId{1}});
  }
  EXPECT_DOUBLE_EQ(id_linkability(obs), 0.0);
}

TEST(PrivacyMetrics, GroupTagsHaveGroupSizeAnonymity) {
  std::vector<AirObservation> obs;
  obs.push_back({0.0, {0, 0}, 0, VehicleId{1}});
  obs.push_back({1.0, {0, 0}, 0, VehicleId{2}});
  EXPECT_DOUBLE_EQ(mean_anonymity_set(obs, 25), 25.0);
}

TEST(PrivacyMetrics, ReusedPseudonymShrinksAnonymity) {
  std::vector<AirObservation> obs;
  obs.push_back({0.0, {0, 0}, 55, VehicleId{1}});
  obs.push_back({1.0, {0, 0}, 55, VehicleId{1}});
  EXPECT_DOUBLE_EQ(mean_anonymity_set(obs, 25), 1.0);
}

}  // namespace
}  // namespace vcl::auth
