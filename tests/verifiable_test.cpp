// Tests for SCRA precomputed signing and PTVC-style verifiable computing.
#include <gtest/gtest.h>

#include "auth/scra.h"
#include "crypto/schnorr.h"
#include "vcloud/verifiable.h"

namespace vcl {
namespace {

// ---- SCRA --------------------------------------------------------------------

class ScraFixture : public ::testing::Test {
 protected:
  ScraFixture()
      : group_(crypto::default_group()),
        drbg_(std::uint64_t{1}),
        secret_(drbg_.next_scalar(group_.q())),
        signer_(group_, secret_, 7) {}

  const crypto::SchnorrGroup& group_;
  crypto::Drbg drbg_;
  std::uint64_t secret_;
  auth::ScraSigner signer_;
  crypto::OpCounts ops_;
};

TEST_F(ScraFixture, PrecomputedSignaturesVerifyWithStandardSchnorr) {
  signer_.precompute(5, ops_);
  const crypto::Schnorr schnorr(group_);
  for (int i = 0; i < 5; ++i) {
    const crypto::Bytes msg{static_cast<std::uint8_t>(i), 2, 3};
    const auto sig = signer_.sign(msg, ops_);
    ASSERT_TRUE(sig.has_value());
    EXPECT_TRUE(schnorr.verify(signer_.pub(), msg, *sig));
    crypto::Bytes bad = msg;
    bad[0] ^= 1;
    EXPECT_FALSE(schnorr.verify(signer_.pub(), bad, *sig));
  }
}

TEST_F(ScraFixture, TableIsConsumable) {
  signer_.precompute(2, ops_);
  EXPECT_EQ(signer_.table_remaining(), 2u);
  (void)signer_.sign({1}, ops_);
  (void)signer_.sign({2}, ops_);
  EXPECT_EQ(signer_.table_remaining(), 0u);
  EXPECT_FALSE(signer_.sign({3}, ops_).has_value());  // exhausted
}

TEST_F(ScraFixture, OnlineCostIsHashNotSign) {
  signer_.precompute(3, ops_);
  const auto offline_signs = ops_.sign;
  crypto::OpCounts online;
  (void)signer_.sign({1}, online);
  EXPECT_EQ(online.sign, 0u);   // no exponentiation online
  EXPECT_EQ(online.hash, 1u);   // one hash
  EXPECT_EQ(offline_signs, 3u); // cost was paid up front
}

TEST_F(ScraFixture, EachSignatureUsesFreshNonce) {
  signer_.precompute(3, ops_);
  const auto s1 = signer_.sign({1}, ops_);
  const auto s2 = signer_.sign({1}, ops_);  // same message, new entry
  EXPECT_NE(s1->r, s2->r);  // nonce reuse would leak the key
}

// ---- Verifiable computing ------------------------------------------------------

class VerifiableFixture : public ::testing::Test {
 protected:
  VerifiableFixture()
      : road_(geo::make_manhattan_grid(2, 2, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {
    for (int i = 0; i < 6; ++i) {
      workers_.push_back(traffic_.spawn_parked(LinkId{0}, 15.0 * i));
    }
    net_.refresh();
    cloud_ = std::make_unique<vcloud::VehicularCloud>(
        CloudId{1}, net_,
        vcloud::stationary_membership(traffic_, {50, 0}, 500.0),
        vcloud::fixed_region({50, 0}, 500.0),
        std::make_unique<vcloud::RandomScheduler>(), vcloud::CloudConfig{},
        Rng(3));
    cloud_->refresh();
    sim_.schedule_every(1.0, [this] { cloud_->refresh(); });
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
  std::vector<VehicleId> workers_;
  std::unique_ptr<vcloud::VehicularCloud> cloud_;
  attack::AdversaryRoster cheaters_;
};

TEST_F(VerifiableFixture, HonestWorkersAlwaysAccepted) {
  vcloud::ReplicatedSubmitter submitter(*cloud_, cheaters_, {2, 1.0}, Rng(4));
  submitter.attach(sim_, 1.0);
  for (int i = 0; i < 5; ++i) {
    vcloud::Task t;
    t.work = 3.0;
    submitter.submit(std::move(t));
  }
  sim_.run_until(200.0);
  EXPECT_EQ(submitter.accepted_jobs(), 5u);
  EXPECT_EQ(submitter.rejected_jobs(), 0u);
  EXPECT_EQ(submitter.undetected_errors(), 0u);
}

TEST_F(VerifiableFixture, SingleReplicaAcceptsCheaterResults) {
  // Everyone cheats: with r=1 there is nothing to compare against, so every
  // wrong result is accepted — the unverified baseline PTVC attacks.
  for (const VehicleId w : workers_) cheaters_.add(w);
  vcloud::ReplicatedSubmitter submitter(*cloud_, cheaters_, {1, 1.0}, Rng(4));
  submitter.attach(sim_, 1.0);
  for (int i = 0; i < 5; ++i) {
    vcloud::Task t;
    t.work = 2.0;
    submitter.submit(std::move(t));
  }
  sim_.run_until(200.0);
  EXPECT_EQ(submitter.accepted_jobs(), 5u);
  EXPECT_EQ(submitter.undetected_errors(), 5u);  // all garbage, all accepted
}

TEST_F(VerifiableFixture, ReplicationCatchesLoneCheater) {
  cheaters_.add(workers_[0]);  // one bad apple among six
  vcloud::ReplicatedSubmitter submitter(*cloud_, cheaters_, {3, 1.0}, Rng(4));
  submitter.attach(sim_, 1.0);
  for (int i = 0; i < 8; ++i) {
    vcloud::Task t;
    t.work = 2.0;
    submitter.submit(std::move(t));
  }
  sim_.run_until(400.0);
  // With 3 replicas and one cheater in six workers, a wrong majority needs
  // the cheater twice in one job — impossible (distinct workers per task at
  // a time) — so no undetected errors.
  EXPECT_EQ(submitter.undetected_errors(), 0u);
  EXPECT_GT(submitter.accepted_jobs(), 0u);
  // The cheater's reputation suffered; honest workers' grew.
  EXPECT_LT(submitter.reputation().score(workers_[0].value()), 0.5);
}

TEST_F(VerifiableFixture, ReputationSeparatesHonestFromCheating) {
  cheaters_.add(workers_[0]);
  cheaters_.add(workers_[1]);
  vcloud::ReplicatedSubmitter submitter(*cloud_, cheaters_, {2, 1.0}, Rng(4));
  submitter.attach(sim_, 1.0);
  for (int i = 0; i < 12; ++i) {
    vcloud::Task t;
    t.work = 1.5;
    submitter.submit(std::move(t));
  }
  sim_.run_until(400.0);
  double cheater_score = 0;
  double honest_score = 0;
  std::size_t honest_n = 0;
  for (const VehicleId w : workers_) {
    if (cheaters_.is_malicious(w)) {
      cheater_score = std::max(cheater_score,
                               submitter.reputation().score(w.value()));
    } else if (submitter.reputation().score(w.value()) != 0.5) {
      honest_score += submitter.reputation().score(w.value());
      ++honest_n;
    }
  }
  if (honest_n > 0) {
    EXPECT_GT(honest_score / static_cast<double>(honest_n), cheater_score);
  }
}

}  // namespace
}  // namespace vcl
