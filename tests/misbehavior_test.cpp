// Tests for beacon plausibility checking (§III.D single-message content
// validation) and 2FLIP-style two-factor authentication [38].
#include <gtest/gtest.h>

#include "auth/two_factor.h"
#include "trust/plausibility.h"

namespace vcl {
namespace {

using trust::BeaconClaim;
using trust::PlausibilityChecker;
using trust::PlausibilityVerdict;

BeaconClaim claim(std::uint64_t cred, geo::Vec2 pos, geo::Vec2 vel,
                  SimTime t) {
  return BeaconClaim{cred, pos, vel, t};
}

TEST(Plausibility, HonestTrackStaysPlausible) {
  PlausibilityChecker checker;
  // Vehicle driving east at 20 m/s, beaconing every second.
  for (int t = 0; t < 20; ++t) {
    const auto v = checker.check(
        claim(1, {t * 20.0, 0}, {20, 0}, static_cast<double>(t)));
    EXPECT_EQ(v, PlausibilityVerdict::kPlausible) << "t=" << t;
  }
  EXPECT_EQ(checker.flagged(), 0u);
  EXPECT_EQ(checker.checked(), 20u);
}

TEST(Plausibility, ImpossibleSpeedFlagged) {
  PlausibilityChecker checker;
  EXPECT_EQ(checker.check(claim(1, {0, 0}, {150, 0}, 0.0)),
            PlausibilityVerdict::kSpeedViolation);
}

TEST(Plausibility, TeleportFlagged) {
  PlausibilityChecker checker;
  EXPECT_EQ(checker.check(claim(1, {0, 0}, {20, 0}, 0.0)),
            PlausibilityVerdict::kPlausible);
  // One second later, 2 km away: impossible.
  EXPECT_EQ(checker.check(claim(1, {2000, 0}, {20, 0}, 1.0)),
            PlausibilityVerdict::kPositionJump);
}

TEST(Plausibility, GhostPositionAttackFlagged) {
  // Attacker claims to drive east fast but reports a position far off the
  // predicted trajectory (ghost-vehicle injection).
  PlausibilityChecker checker;
  EXPECT_EQ(checker.check(claim(1, {0, 0}, {30, 0}, 0.0)),
            PlausibilityVerdict::kPlausible);
  EXPECT_EQ(checker.check(claim(1, {0, 100}, {30, 0}, 2.0)),
            PlausibilityVerdict::kKinematicMismatch);
}

TEST(Plausibility, StaleTrackForgotten) {
  PlausibilityChecker checker;
  EXPECT_EQ(checker.check(claim(1, {0, 0}, {20, 0}, 0.0)),
            PlausibilityVerdict::kPlausible);
  // 100 s later anywhere is fine: the track timed out.
  EXPECT_EQ(checker.check(claim(1, {50000, 0}, {20, 0}, 100.0)),
            PlausibilityVerdict::kPlausible);
}

TEST(Plausibility, IndependentTracksPerCredential) {
  PlausibilityChecker checker;
  EXPECT_EQ(checker.check(claim(1, {0, 0}, {20, 0}, 0.0)),
            PlausibilityVerdict::kPlausible);
  // A DIFFERENT credential at a far position is fine (no shared track).
  EXPECT_EQ(checker.check(claim(2, {5000, 0}, {20, 0}, 1.0)),
            PlausibilityVerdict::kPlausible);
  EXPECT_EQ(checker.tracked_senders(), 2u);
}

TEST(Plausibility, ParkedVehicleNeverMisflagged) {
  PlausibilityChecker checker;
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(checker.check(claim(7, {100, 100}, {0, 0},
                                  static_cast<double>(t))),
              PlausibilityVerdict::kPlausible);
  }
}

// ---- Two-factor (2FLIP) ---------------------------------------------------------

class TwoFactorFixture : public ::testing::Test {
 protected:
  TwoFactorFixture()
      : system_key_(32, 0x5a),
        device_(system_key_),
        alice_bio_(crypto::Sha256::hash("alice-fingerprint")) {
    device_.enroll_driver(1, alice_bio_);
  }

  crypto::Bytes system_key_;
  auth::TwoFactorDevice device_;
  crypto::Digest alice_bio_;
  crypto::OpCounts ops_;
};

TEST_F(TwoFactorFixture, UnlockSignVerify) {
  ASSERT_TRUE(device_.unlock(alice_bio_, 0.0).has_value());
  const auto msg = device_.sign({1, 2, 3}, 1.0, ops_);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(auth::TwoFactorDevice::verify(system_key_, *msg, ops_));
}

TEST_F(TwoFactorFixture, LockedDeviceCannotSign) {
  // Stolen OBU: nobody presented a biometric.
  EXPECT_FALSE(device_.sign({1}, 0.0, ops_).has_value());
}

TEST_F(TwoFactorFixture, WrongBiometricRejected) {
  const auto eve_bio = crypto::Sha256::hash("eve-fingerprint");
  EXPECT_FALSE(device_.unlock(eve_bio, 0.0).has_value());
  EXPECT_FALSE(device_.sign({1}, 0.0, ops_).has_value());
}

TEST_F(TwoFactorFixture, UnlockExpires) {
  device_.unlock(alice_bio_, 0.0);
  EXPECT_TRUE(device_.sign({1}, 299.0, ops_).has_value());
  EXPECT_FALSE(device_.sign({1}, 301.0, ops_).has_value());  // stale unlock
}

TEST_F(TwoFactorFixture, TamperDetected) {
  device_.unlock(alice_bio_, 0.0);
  auto msg = device_.sign({1, 2, 3}, 0.0, ops_);
  msg->payload[0] ^= 1;
  EXPECT_FALSE(auth::TwoFactorDevice::verify(system_key_, *msg, ops_));
}

TEST_F(TwoFactorFixture, WrongSystemKeyRejected) {
  device_.unlock(alice_bio_, 0.0);
  const auto msg = device_.sign({1}, 0.0, ops_);
  const crypto::Bytes other_key(32, 0xa5);
  EXPECT_FALSE(auth::TwoFactorDevice::verify(other_key, *msg, ops_));
}

TEST_F(TwoFactorFixture, MultipleDriversBindDistinctly) {
  const auto bob_bio = crypto::Sha256::hash("bob-fingerprint");
  device_.enroll_driver(2, bob_bio);
  device_.unlock(alice_bio_, 0.0);
  const auto alice_msg = device_.sign({9}, 0.0, ops_);
  device_.unlock(bob_bio, 0.0);
  const auto bob_msg = device_.sign({9}, 0.0, ops_);
  // Same payload, same vehicle — but the driver binding differs, so the
  // authority can attribute messages to the responsible driver.
  EXPECT_FALSE(crypto::digest_equal(alice_msg->driver_binding,
                                    bob_msg->driver_binding));
  EXPECT_TRUE(auth::TwoFactorDevice::verify(system_key_, *alice_msg, ops_));
  EXPECT_TRUE(auth::TwoFactorDevice::verify(system_key_, *bob_msg, ops_));
}

TEST_F(TwoFactorFixture, VerificationIsCheap) {
  device_.unlock(alice_bio_, 0.0);
  const auto msg = device_.sign({1}, 0.0, ops_);
  crypto::OpCounts verify_ops;
  (void)auth::TwoFactorDevice::verify(system_key_, *msg, verify_ops);
  EXPECT_EQ(verify_ops.hmac, 1u);    // one MAC, no signatures
  EXPECT_EQ(verify_ops.verify, 0u);  // the DoS-resilience argument
}

}  // namespace
}  // namespace vcl
