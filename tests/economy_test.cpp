// Tests for data-dissemination scheduling (Wu et al. [42]) and the
// credit-incentive ledger (Kong et al. [17]).
#include <gtest/gtest.h>

#include "net/dissemination.h"
#include "vcloud/cloud.h"
#include "vcloud/incentive.h"

namespace vcl {
namespace {

// ---- Dissemination scheduling -------------------------------------------------

TEST(Dissemination, FifoServesOldestFirst) {
  net::DisseminationScheduler sched(net::DisseminationPolicy::kFifo);
  sched.request(VehicleId{1}, FileId{10}, 0.0);
  sched.request(VehicleId{2}, FileId{20}, 1.0);
  EXPECT_EQ(sched.serve_slot(2.0), FileId{10});
  EXPECT_EQ(sched.serve_slot(3.0), FileId{20});
  EXPECT_FALSE(sched.serve_slot(4.0).valid());  // idle
  EXPECT_EQ(sched.served_requests(), 2u);
}

TEST(Dissemination, BroadcastSatisfiesAllRequesters) {
  net::DisseminationScheduler sched(net::DisseminationPolicy::kFifo);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    sched.request(VehicleId{v}, FileId{10}, 0.0);
  }
  EXPECT_EQ(sched.serve_slot(1.0), FileId{10});
  EXPECT_EQ(sched.served_requests(), 5u);  // one slot, five happy requesters
  EXPECT_EQ(sched.pending_requests(), 0u);
}

TEST(Dissemination, MostRequestedMaximizesPerSlot) {
  net::DisseminationScheduler sched(
      net::DisseminationPolicy::kMostRequested);
  sched.request(VehicleId{1}, FileId{10}, 0.0);  // older but lone request
  for (std::uint64_t v = 2; v <= 4; ++v) {
    sched.request(VehicleId{v}, FileId{20}, 1.0);
  }
  EXPECT_EQ(sched.serve_slot(2.0), FileId{20});  // popularity beats age
}

TEST(Dissemination, MostRequestedStarvesUnpopularItems) {
  net::DisseminationScheduler greedy(
      net::DisseminationPolicy::kMostRequested);
  net::DisseminationScheduler fair(net::DisseminationPolicy::kDeficitFair);
  // One unpopular item requested at t=0; a popular item keeps arriving.
  for (auto* s : {&greedy, &fair}) {
    s->request(VehicleId{99}, FileId{1}, 0.0);
  }
  double now = 1.0;
  bool greedy_served_unpopular = false;
  bool fair_served_unpopular = false;
  for (int slot = 0; slot < 20; ++slot, now += 1.0) {
    for (auto* s : {&greedy, &fair}) {
      s->request(VehicleId{static_cast<std::uint64_t>(slot * 2)}, FileId{2},
                 now);
      s->request(VehicleId{static_cast<std::uint64_t>(slot * 2 + 1)},
                 FileId{2}, now);
    }
    if (greedy.serve_slot(now) == FileId{1}) greedy_served_unpopular = true;
    if (fair.serve_slot(now) == FileId{1}) fair_served_unpopular = true;
  }
  EXPECT_FALSE(greedy_served_unpopular);  // starved for all 20 slots
  EXPECT_TRUE(fair_served_unpopular);     // deficit credit forces service
}

TEST(Dissemination, FairnessIndexOrdersPolicies) {
  auto run = [](net::DisseminationPolicy policy) {
    net::DisseminationScheduler sched(policy);
    Rng rng(5);
    double now = 0.0;
    // Zipf-ish demand over 8 items: item i requested with weight 1/(i+1).
    for (int slot = 0; slot < 200; ++slot, now += 1.0) {
      for (int r = 0; r < 3; ++r) {
        double total = 0;
        for (int i = 0; i < 8; ++i) total += 1.0 / (i + 1);
        double x = rng.uniform(0, total);
        std::uint64_t item = 0;
        for (int i = 0; i < 8; ++i) {
          x -= 1.0 / (i + 1);
          if (x <= 0) {
            item = static_cast<std::uint64_t>(i + 1);
            break;
          }
        }
        sched.request(VehicleId{static_cast<std::uint64_t>(slot * 3 + r)},
                      FileId{item}, now);
      }
      sched.serve_slot(now);
    }
    return sched.jain_fairness();
  };
  const double fair = run(net::DisseminationPolicy::kDeficitFair);
  const double greedy = run(net::DisseminationPolicy::kMostRequested);
  EXPECT_GT(fair, greedy);
  EXPECT_GT(fair, 0.5);
}

TEST(Dissemination, PolicyNames) {
  EXPECT_STREQ(to_string(net::DisseminationPolicy::kDeficitFair),
               "deficit_fair");
}

// ---- Incentive ledger -----------------------------------------------------------

TEST(Incentive, InitialBalanceAndCharge) {
  vcloud::IncentiveLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.balance(1), 50.0);
  EXPECT_TRUE(ledger.charge(1, 20.0));
  EXPECT_DOUBLE_EQ(ledger.balance(1), 30.0);
}

TEST(Incentive, FreeRiderGetsThrottled) {
  vcloud::IncentiveLedger ledger;
  EXPECT_TRUE(ledger.charge(1, 50.0));  // spends everything
  EXPECT_FALSE(ledger.can_afford(1, 1.0));
  EXPECT_FALSE(ledger.charge(1, 1.0));
  EXPECT_EQ(ledger.throttled(), 1u);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 0.0);  // failed charge takes nothing
}

TEST(Incentive, LendingRestoresSpendingPower) {
  vcloud::IncentiveLedger ledger;
  ASSERT_TRUE(ledger.charge(1, 50.0));
  ledger.reward(1, 30.0);  // earns 24 at the 0.8 spread
  EXPECT_DOUBLE_EQ(ledger.balance(1), 24.0);
  EXPECT_TRUE(ledger.charge(1, 24.0));
}

TEST(Incentive, RefundRestoresFullPrice) {
  vcloud::IncentiveLedger ledger;
  ASSERT_TRUE(ledger.charge(1, 10.0));
  ledger.refund(1, 10.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 50.0);
}

// Ledger wired into a live cloud through the completion hook.
TEST(Incentive, CloudCompletionRewardsWorkers) {
  const auto road = geo::make_manhattan_grid(2, 2, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(1));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(2));
  for (int i = 0; i < 3; ++i) traffic.spawn_parked(LinkId{0}, 20.0 * i);
  net.refresh();
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, vcloud::stationary_membership(traffic, {20, 0}, 400.0),
      vcloud::fixed_region({20, 0}, 400.0),
      std::make_unique<vcloud::GreedyResourceScheduler>(),
      vcloud::CloudConfig{}, Rng(3));
  cloud.refresh();

  vcloud::IncentiveLedger ledger;
  cloud.set_completion_hook([&](const vcloud::Task& t) {
    ledger.reward(t.worker.value(), t.work);
  });
  const std::uint64_t requester = 9999;
  vcloud::Task t;
  t.work = 10.0;
  ASSERT_TRUE(ledger.charge(requester, t.work));
  cloud.submit(std::move(t));
  sim.run_until(60.0);
  ASSERT_EQ(cloud.stats().completed, 1u);
  // Exactly one worker earned 8 credits on top of its initial 50.
  std::size_t earners = 0;
  for (const auto& [vid, v] : traffic.vehicles()) {
    if (ledger.balance(vid) > 50.0) {
      ++earners;
      EXPECT_DOUBLE_EQ(ledger.balance(vid), 58.0);
    }
  }
  EXPECT_EQ(earners, 1u);
  EXPECT_DOUBLE_EQ(ledger.balance(requester), 40.0);
}

}  // namespace
}  // namespace vcl
