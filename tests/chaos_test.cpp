// Chaos engine tests (DESIGN.md §9): planner determinism and storm shapes,
// config validation, plan JSONL round-trips, the ddmin shrinker, and the
// end-to-end oracle demo — a deliberately seeded lost-task bug is caught by
// the invariant oracle and shrunk to a handful of fault events.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/chaos.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace vcl::fault {
namespace {

ChaosConfig storm_config() {
  ChaosConfig cfg;
  cfg.base.horizon = 100.0;
  cfg.base.vehicle_crash_rate = 0.02;
  cfg.base.broker_crash_rate = 0.01;
  cfg.base.rsu_outage_rate = 0.01;
  cfg.base.blackout_rate = 0.01;
  cfg.base.blackout_lo = {0, 0};
  cfg.base.blackout_hi = {1000, 1000};
  cfg.storms.burst_rate = 0.03;
  cfg.storms.cascade_rate = 0.02;
  cfg.storms.flap_rate = 0.02;
  return cfg;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].at != b[i].at ||
        a[i].vehicle != b[i].vehicle || a[i].rsu != b[i].rsu ||
        a[i].repair_after != b[i].repair_after ||
        a[i].center.x != b[i].center.x || a[i].center.y != b[i].center.y ||
        a[i].radius != b[i].radius || a[i].duration != b[i].duration) {
      return false;
    }
  }
  return true;
}

TEST(ChaosPlanner, DeterministicPerSeed) {
  const ChaosPlanner planner(storm_config());
  const FaultPlan a = planner.plan(42);
  const FaultPlan b = planner.plan(42);
  const FaultPlan c = planner.plan(43);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(plans_equal(a, b));
  EXPECT_FALSE(plans_equal(a, c));
}

TEST(ChaosPlanner, PlansAreSortedAndInsideHorizonStart) {
  const ChaosConfig cfg = storm_config();
  const ChaosPlanner planner(cfg);
  const FaultPlan plan = planner.plan(7);
  ASSERT_FALSE(plan.empty());
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].at, plan[i].at);
  }
  // Storm *arrivals* stay inside [0, horizon); follow-on events (flap
  // cycles, cascade kills) may trail past it but only by a bounded window.
  const SimTime slack =
      std::max({cfg.storms.burst_window,
                cfg.storms.cascade_blackout_duration,
                cfg.storms.flap_period * cfg.storms.flap_cycles});
  for (const FaultEvent& e : plan) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, cfg.base.horizon + slack);
  }
}

TEST(ChaosPlanner, StormShapesShowUp) {
  ChaosConfig cfg = storm_config();
  cfg.base.vehicle_crash_rate = 0.0;  // isolate the storms
  cfg.base.broker_crash_rate = 0.0;
  cfg.base.rsu_outage_rate = 0.0;
  cfg.base.blackout_rate = 0.0;
  const ChaosPlanner planner(cfg);
  // Over a few seeds every storm shape must have fired at least once.
  bool saw_burst = false, saw_cascade = false, saw_flap = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = planner.plan(seed);
    std::size_t crashes = 0, brokers = 0, outages = 0, blackouts = 0;
    for (const FaultEvent& e : plan) {
      crashes += e.kind == FaultKind::kVehicleCrash;
      brokers += e.kind == FaultKind::kBrokerCrash;
      outages += e.kind == FaultKind::kRsuOutage;
      blackouts += e.kind == FaultKind::kRadioBlackout;
    }
    saw_burst |= crashes > 0;
    saw_cascade |= blackouts > 0 && brokers > 0;
    saw_flap |= outages >= static_cast<std::size_t>(cfg.storms.flap_cycles);
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_cascade);
  EXPECT_TRUE(saw_flap);
}

TEST(ChaosPlanner, FlapStormHitsOneExplicitRsu) {
  ChaosConfig cfg;
  cfg.base.horizon = 50.0;
  cfg.storms.flap_rate = 0.1;  // storms only
  const ChaosPlanner planner(cfg);
  const FaultPlan plan = planner.plan(3);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan) {
    ASSERT_EQ(e.kind, FaultKind::kRsuOutage);
    EXPECT_TRUE(e.rsu.valid());  // explicit victim, not "pick random"
    EXPECT_GT(e.repair_after, 0.0);
  }
}

TEST(ChaosValidation, RejectsBadConfigs) {
  // Base-config problems surface through the chaos validator too.
  ChaosConfig negative = storm_config();
  negative.base.vehicle_crash_rate = -1.0;
  EXPECT_FALSE(validate(negative).empty());

  ChaosConfig inverted = storm_config();
  inverted.base.blackout_lo = {10, 10};
  inverted.base.blackout_hi = {0, 0};
  EXPECT_FALSE(validate(inverted).empty());

  // Cascades draw blackout centers even when base blackouts are off.
  ChaosConfig no_box;
  no_box.base.horizon = 10.0;
  no_box.storms.cascade_rate = 0.1;
  EXPECT_FALSE(validate(no_box).empty());

  ChaosConfig negative_storm = storm_config();
  negative_storm.storms.burst_rate = -0.1;
  EXPECT_FALSE(validate(negative_storm).empty());

  EXPECT_TRUE(validate(storm_config()).empty());
  EXPECT_THROW(ChaosPlanner{negative}, std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsBadConfigs) {
  FaultPlanConfig cfg;
  cfg.vehicle_crash_rate = -0.5;
  EXPECT_FALSE(validate(cfg).empty());
  Rng rng(1);
  EXPECT_THROW(make_fault_plan(cfg, rng), std::invalid_argument);

  // blackout_rate > 0 with the box left at its all-zero default would pile
  // every blackout onto the origin: a config error, not a schedule.
  FaultPlanConfig default_box;
  default_box.blackout_rate = 0.1;
  EXPECT_FALSE(validate(default_box).empty());

  FaultPlanConfig ok;
  ok.blackout_rate = 0.1;
  ok.blackout_lo = {0, 0};
  ok.blackout_hi = {100, 100};
  EXPECT_TRUE(validate(ok).empty());
}

TEST(FaultPlanJsonl, RoundTripsPlanAndMeta) {
  const ChaosPlanner planner(storm_config());
  const FaultPlan plan = planner.plan(11);
  ASSERT_FALSE(plan.empty());
  FaultPlanMeta meta;
  meta.seed = 11;
  meta.set("vehicles", 40.0);
  meta.set("intensity", 1.5);

  std::stringstream ss;
  write_fault_plan_jsonl(plan, meta, ss);

  FaultPlan parsed;
  FaultPlanMeta parsed_meta;
  std::string error;
  ASSERT_TRUE(parse_fault_plan_jsonl(ss, parsed, parsed_meta, &error)) << error;
  EXPECT_TRUE(plans_equal(plan, parsed));
  EXPECT_EQ(parsed_meta.seed, 11u);
  EXPECT_DOUBLE_EQ(parsed_meta.get("vehicles", 0.0), 40.0);
  EXPECT_DOUBLE_EQ(parsed_meta.get("intensity", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(parsed_meta.get("absent", -1.0), -1.0);
}

TEST(FaultPlanJsonl, RejectsGarbage) {
  std::stringstream ss("not json at all\n");
  FaultPlan plan;
  FaultPlanMeta meta;
  std::string error;
  EXPECT_FALSE(parse_fault_plan_jsonl(ss, plan, meta, &error));
  EXPECT_FALSE(error.empty());
}

FaultPlan synthetic_plan(std::size_t n) {
  FaultPlan plan;
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kVehicleCrash;
    e.at = static_cast<SimTime>(i);
    e.vehicle = VehicleId{i};
    plan.push_back(e);
  }
  return plan;
}

TEST(Shrinker, FindsMinimalSubsetAndIsOneMinimal) {
  // Failure = plan still contains victims 3 AND 17; everything else is
  // noise the shrinker must strip.
  const auto still_fails = [](const FaultPlan& plan) {
    bool has3 = false, has17 = false;
    for (const FaultEvent& e : plan) {
      has3 |= e.vehicle == VehicleId{3};
      has17 |= e.vehicle == VehicleId{17};
    }
    return has3 && has17;
  };
  const FaultPlan minimal = shrink_fault_plan(synthetic_plan(40), still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].vehicle, VehicleId{3});
  EXPECT_EQ(minimal[1].vehicle, VehicleId{17});  // order preserved
  EXPECT_TRUE(still_fails(minimal));
  // 1-minimal: dropping any single remaining event clears the failure.
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    FaultPlan without = minimal;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(without));
  }
}

TEST(Shrinker, AlwaysFailingPredicateShrinksToEmpty) {
  const FaultPlan minimal = shrink_fault_plan(
      synthetic_plan(10), [](const FaultPlan&) { return true; });
  EXPECT_TRUE(minimal.empty());
}

}  // namespace
}  // namespace vcl::fault

namespace vcl::core {
namespace {

ChaosScenarioConfig short_episode() {
  ChaosScenarioConfig cfg;
  cfg.seed = 5;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  return cfg;
}

TEST(ChaosEpisode, CleanRunHasNoViolationsAndMakesProgress) {
  const ChaosEpisode episode = run_chaos_episode(short_episode());
  EXPECT_TRUE(episode.ok()) << (episode.violations.empty()
                                    ? "?"
                                    : episode.violations[0].to_string());
  EXPECT_GT(episode.checks_run, 0u);
  EXPECT_GT(episode.submitted, 0u);
  EXPECT_GT(episode.completed, 0u);
  EXPECT_GT(episode.plan.size(), 0u);
}

TEST(ChaosEpisode, DeterministicPerConfig) {
  const ChaosEpisode a = run_chaos_episode(short_episode());
  const ChaosEpisode b = run_chaos_episode(short_episode());
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.plan.size(), b.plan.size());
}

TEST(ChaosEpisode, ReproFileRoundTrips) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.intensity = 1.5;
  cfg.storms = false;
  const fault::ChaosPlanner planner(chaos_config_for(cfg));
  const fault::FaultPlan plan = planner.plan(cfg.seed);

  std::stringstream ss;
  write_chaos_repro(cfg, plan, ss);
  ChaosScenarioConfig loaded;
  fault::FaultPlan loaded_plan;
  std::string error;
  ASSERT_TRUE(load_chaos_repro(ss, loaded, loaded_plan, &error)) << error;
  EXPECT_EQ(loaded.seed, cfg.seed);
  EXPECT_EQ(loaded.vehicles, cfg.vehicles);
  EXPECT_DOUBLE_EQ(loaded.duration, cfg.duration);
  EXPECT_DOUBLE_EQ(loaded.intensity, cfg.intensity);
  EXPECT_FALSE(loaded.storms);
  EXPECT_EQ(loaded_plan.size(), plan.size());
}

// The end-to-end demo the chaos engine exists for: arm the deliberate
// lost-task bug (crash recovery "forgets" to requeue), let the oracle catch
// it mid-soak, then shrink the fault schedule to a minimal repro.
TEST(ChaosEpisode, SeededBugIsCaughtAndShrinksSmall) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.inject_requeue_bug = true;
  // Find a failing seed quickly (the bug needs one vehicle crash while a
  // task is running; nearly every seed qualifies).
  ChaosEpisode bad;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    cfg.seed = seed;
    bad = run_chaos_episode(cfg);
    found = !bad.ok();
  }
  ASSERT_TRUE(found) << "seeded bug never tripped the oracle";
  ASSERT_FALSE(bad.violations.empty());
  // The violation record carries the replay context.
  EXPECT_EQ(bad.violations[0].seed, cfg.seed);
  EXPECT_FALSE(bad.violations[0].invariant.empty());

  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        return !run_chaos_episode(cfg, candidate).ok();
      });
  EXPECT_LE(minimal.size(), 5u);
  EXPECT_GE(minimal.size(), 1u);
  EXPECT_FALSE(run_chaos_episode(cfg, minimal).ok());
}

// Same schedule, bug disarmed: the oracle runs the whole episode clean —
// the checker itself does not misfire on healthy recovery paths.
TEST(ChaosEpisode, OracleStaysQuietWithBugDisarmed) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.inject_requeue_bug = true;
  cfg.seed = 1;
  ChaosEpisode bad = run_chaos_episode(cfg);
  cfg.inject_requeue_bug = false;
  const ChaosEpisode good = run_chaos_episode(cfg, bad.plan);
  EXPECT_TRUE(good.ok()) << (good.violations.empty()
                                 ? "?"
                                 : good.violations[0].to_string());
  EXPECT_GT(good.checks_run, 0u);
}

}  // namespace
}  // namespace vcl::core
