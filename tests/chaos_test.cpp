// Chaos engine tests (DESIGN.md §9): planner determinism and storm shapes,
// config validation, plan JSONL round-trips, the ddmin shrinker, and the
// end-to-end oracle demo — a deliberately seeded lost-task bug is caught by
// the invariant oracle and shrunk to a handful of fault events.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/chaos.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace vcl::fault {
namespace {

ChaosConfig storm_config() {
  ChaosConfig cfg;
  cfg.base.horizon = 100.0;
  cfg.base.vehicle_crash_rate = 0.02;
  cfg.base.broker_crash_rate = 0.01;
  cfg.base.rsu_outage_rate = 0.01;
  cfg.base.blackout_rate = 0.01;
  cfg.base.blackout_lo = {0, 0};
  cfg.base.blackout_hi = {1000, 1000};
  cfg.storms.burst_rate = 0.03;
  cfg.storms.cascade_rate = 0.02;
  cfg.storms.flap_rate = 0.02;
  return cfg;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].at != b[i].at ||
        a[i].vehicle != b[i].vehicle || a[i].rsu != b[i].rsu ||
        a[i].repair_after != b[i].repair_after ||
        a[i].center.x != b[i].center.x || a[i].center.y != b[i].center.y ||
        a[i].radius != b[i].radius || a[i].duration != b[i].duration ||
        a[i].attack_tag != b[i].attack_tag ||
        a[i].crl_horizon_after != b[i].crl_horizon_after ||
        a[i].replay_age != b[i].replay_age || a[i].group != b[i].group) {
      return false;
    }
  }
  return true;
}

ChaosConfig attack_storm_config() {
  ChaosConfig cfg;
  cfg.base.horizon = 100.0;
  cfg.base.blackout_lo = {0, 0};
  cfg.base.blackout_hi = {1000, 1000};
  cfg.storms.sybil_rate = 0.05;
  cfg.storms.revoke_rate = 0.05;
  cfg.storms.replay_rate = 0.05;
  return cfg;
}

TEST(ChaosPlanner, DeterministicPerSeed) {
  const ChaosPlanner planner(storm_config());
  const FaultPlan a = planner.plan(42);
  const FaultPlan b = planner.plan(42);
  const FaultPlan c = planner.plan(43);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(plans_equal(a, b));
  EXPECT_FALSE(plans_equal(a, c));
}

TEST(ChaosPlanner, PlansAreSortedAndInsideHorizonStart) {
  const ChaosConfig cfg = storm_config();
  const ChaosPlanner planner(cfg);
  const FaultPlan plan = planner.plan(7);
  ASSERT_FALSE(plan.empty());
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].at, plan[i].at);
  }
  // Storm *arrivals* stay inside [0, horizon); follow-on events (flap
  // cycles, cascade kills) may trail past it but only by a bounded window.
  const SimTime slack =
      std::max({cfg.storms.burst_window,
                cfg.storms.cascade_blackout_duration,
                cfg.storms.flap_period * cfg.storms.flap_cycles});
  for (const FaultEvent& e : plan) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, cfg.base.horizon + slack);
  }
}

TEST(ChaosPlanner, StormShapesShowUp) {
  ChaosConfig cfg = storm_config();
  cfg.base.vehicle_crash_rate = 0.0;  // isolate the storms
  cfg.base.broker_crash_rate = 0.0;
  cfg.base.rsu_outage_rate = 0.0;
  cfg.base.blackout_rate = 0.0;
  const ChaosPlanner planner(cfg);
  // Over a few seeds every storm shape must have fired at least once.
  bool saw_burst = false, saw_cascade = false, saw_flap = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = planner.plan(seed);
    std::size_t crashes = 0, brokers = 0, outages = 0, blackouts = 0;
    for (const FaultEvent& e : plan) {
      crashes += e.kind == FaultKind::kVehicleCrash;
      brokers += e.kind == FaultKind::kBrokerCrash;
      outages += e.kind == FaultKind::kRsuOutage;
      blackouts += e.kind == FaultKind::kRadioBlackout;
    }
    saw_burst |= crashes > 0;
    saw_cascade |= blackouts > 0 && brokers > 0;
    saw_flap |= outages >= static_cast<std::size_t>(cfg.storms.flap_cycles);
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_cascade);
  EXPECT_TRUE(saw_flap);
}

TEST(ChaosPlanner, FlapStormHitsOneExplicitRsu) {
  ChaosConfig cfg;
  cfg.base.horizon = 50.0;
  cfg.storms.flap_rate = 0.1;  // storms only
  const ChaosPlanner planner(cfg);
  const FaultPlan plan = planner.plan(3);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan) {
    ASSERT_EQ(e.kind, FaultKind::kRsuOutage);
    EXPECT_TRUE(e.rsu.valid());  // explicit victim, not "pick random"
    EXPECT_GT(e.repair_after, 0.0);
  }
}

TEST(ChaosPlanner, AttackStormShapes) {
  const ChaosPlanner planner(attack_storm_config());
  bool saw_sybil = false, saw_revoke_pair = false, saw_replay = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = planner.plan(seed);
    for (const FaultEvent& e : plan) {
      switch (e.kind) {
        case FaultKind::kSybilJoin:
          // Fabricated joins fire inside a same-group blackout window.
          EXPECT_NE(e.attack_tag, 0u);
          ASSERT_NE(e.group, 0u);
          {
            bool covered = false;
            for (const FaultEvent& other : plan) {
              if (other.kind == FaultKind::kRadioBlackout &&
                  other.group == e.group) {
                covered |= e.at >= other.at &&
                           e.at <= other.at + other.duration;
              }
            }
            EXPECT_TRUE(covered) << "sybil join outside its blackout";
            saw_sybil = true;
          }
          break;
        case FaultKind::kRevokeIdentity: {
          // Every revoke has exactly one later same-group CRL delivery.
          ASSERT_NE(e.group, 0u);
          std::size_t deliveries = 0;
          for (const FaultEvent& other : plan) {
            if (other.kind == FaultKind::kCrlDeliver &&
                other.group == e.group) {
              ++deliveries;
              EXPECT_GT(other.at, e.at);
              EXPECT_GT(other.crl_horizon_after, 0.0);
            }
          }
          EXPECT_EQ(deliveries, 1u);
          saw_revoke_pair = deliveries == 1;
          break;
        }
        case FaultKind::kReplayInject:
          EXPECT_NE(e.group, 0u);
          EXPECT_NE(e.attack_tag, 0u);
          EXPECT_GT(e.replay_age, 0.0);
          saw_replay = true;
          break;
        default: break;
      }
    }
  }
  EXPECT_TRUE(saw_sybil);
  EXPECT_TRUE(saw_revoke_pair);
  EXPECT_TRUE(saw_replay);
}

TEST(ChaosPlanner, AttackStormsAreDeterministicAndIndependent) {
  const ChaosPlanner planner(attack_storm_config());
  EXPECT_TRUE(plans_equal(planner.plan(9), planner.plan(9)));

  // Fork independence: enabling attack storms must not reshuffle the
  // benign storms' schedules (they draw from their own streams).
  ChaosConfig benign = storm_config();
  ChaosConfig with_attacks = storm_config();
  with_attacks.storms.sybil_rate = 0.05;
  with_attacks.storms.revoke_rate = 0.05;
  with_attacks.storms.replay_rate = 0.05;
  const FaultPlan before = ChaosPlanner(benign).plan(21);
  FaultPlan after = ChaosPlanner(with_attacks).plan(21);
  after.erase(std::remove_if(after.begin(), after.end(),
                             [](const FaultEvent& e) {
                               return e.group != 0;
                             }),
              after.end());
  EXPECT_TRUE(plans_equal(before, after))
      << "attack storms reshuffled the benign schedule";
}

TEST(ChaosValidation, RejectsBadConfigs) {
  // Base-config problems surface through the chaos validator too.
  ChaosConfig negative = storm_config();
  negative.base.vehicle_crash_rate = -1.0;
  EXPECT_FALSE(validate(negative).empty());

  ChaosConfig inverted = storm_config();
  inverted.base.blackout_lo = {10, 10};
  inverted.base.blackout_hi = {0, 0};
  EXPECT_FALSE(validate(inverted).empty());

  // Cascades draw blackout centers even when base blackouts are off.
  ChaosConfig no_box;
  no_box.base.horizon = 10.0;
  no_box.storms.cascade_rate = 0.1;
  EXPECT_FALSE(validate(no_box).empty());

  ChaosConfig negative_storm = storm_config();
  negative_storm.storms.burst_rate = -0.1;
  EXPECT_FALSE(validate(negative_storm).empty());

  EXPECT_TRUE(validate(storm_config()).empty());
  EXPECT_THROW(ChaosPlanner{negative}, std::invalid_argument);

  // Attack-storm problems surface too.
  ChaosConfig sybil_no_box;
  sybil_no_box.base.horizon = 10.0;
  sybil_no_box.storms.sybil_rate = 0.1;  // blackout box required
  EXPECT_FALSE(validate(sybil_no_box).empty());

  ChaosConfig zero_replays = attack_storm_config();
  zero_replays.storms.replay_count = 0;
  EXPECT_FALSE(validate(zero_replays).empty());

  ChaosConfig stale_window = attack_storm_config();
  stale_window.storms.replay_window = 0.0;
  EXPECT_FALSE(validate(stale_window).empty());

  ChaosConfig negative_horizon = attack_storm_config();
  negative_horizon.storms.revoke_crl_horizon = -1.0;
  EXPECT_FALSE(validate(negative_horizon).empty());

  EXPECT_TRUE(validate(attack_storm_config()).empty());
}

TEST(FaultPlanValidation, RejectsBadConfigs) {
  FaultPlanConfig cfg;
  cfg.vehicle_crash_rate = -0.5;
  EXPECT_FALSE(validate(cfg).empty());
  Rng rng(1);
  EXPECT_THROW(make_fault_plan(cfg, rng), std::invalid_argument);

  // blackout_rate > 0 with the box left at its all-zero default would pile
  // every blackout onto the origin: a config error, not a schedule.
  FaultPlanConfig default_box;
  default_box.blackout_rate = 0.1;
  EXPECT_FALSE(validate(default_box).empty());

  FaultPlanConfig ok;
  ok.blackout_rate = 0.1;
  ok.blackout_lo = {0, 0};
  ok.blackout_hi = {100, 100};
  EXPECT_TRUE(validate(ok).empty());
}

TEST(FaultPlanJsonl, RoundTripsPlanAndMeta) {
  const ChaosPlanner planner(storm_config());
  const FaultPlan plan = planner.plan(11);
  ASSERT_FALSE(plan.empty());
  FaultPlanMeta meta;
  meta.seed = 11;
  meta.set("vehicles", 40.0);
  meta.set("intensity", 1.5);

  std::stringstream ss;
  write_fault_plan_jsonl(plan, meta, ss);

  FaultPlan parsed;
  FaultPlanMeta parsed_meta;
  std::string error;
  ASSERT_TRUE(parse_fault_plan_jsonl(ss, parsed, parsed_meta, &error)) << error;
  EXPECT_TRUE(plans_equal(plan, parsed));
  EXPECT_EQ(parsed_meta.seed, 11u);
  EXPECT_DOUBLE_EQ(parsed_meta.get("vehicles", 0.0), 40.0);
  EXPECT_DOUBLE_EQ(parsed_meta.get("intensity", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(parsed_meta.get("absent", -1.0), -1.0);
}

TEST(FaultPlanJsonl, RoundTripsAttackEventsAndGroups) {
  const ChaosPlanner planner(attack_storm_config());
  FaultPlan plan;
  for (std::uint64_t seed = 1; plan.empty() && seed <= 16; ++seed) {
    plan = planner.plan(seed);
  }
  ASSERT_FALSE(plan.empty());
  bool any_group = false;
  for (const FaultEvent& e : plan) any_group |= e.group != 0;
  ASSERT_TRUE(any_group);

  std::stringstream ss;
  write_fault_plan_jsonl(plan, FaultPlanMeta{}, ss);
  FaultPlan parsed;
  FaultPlanMeta meta;
  std::string error;
  ASSERT_TRUE(parse_fault_plan_jsonl(ss, parsed, meta, &error)) << error;
  EXPECT_TRUE(plans_equal(plan, parsed));
}

TEST(FaultPlanJsonl, RejectsGarbage) {
  std::stringstream ss("not json at all\n");
  FaultPlan plan;
  FaultPlanMeta meta;
  std::string error;
  EXPECT_FALSE(parse_fault_plan_jsonl(ss, plan, meta, &error));
  EXPECT_FALSE(error.empty());
}

FaultPlan synthetic_plan(std::size_t n) {
  FaultPlan plan;
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kVehicleCrash;
    e.at = static_cast<SimTime>(i);
    e.vehicle = VehicleId{i};
    plan.push_back(e);
  }
  return plan;
}

TEST(Shrinker, FindsMinimalSubsetAndIsOneMinimal) {
  // Failure = plan still contains victims 3 AND 17; everything else is
  // noise the shrinker must strip.
  const auto still_fails = [](const FaultPlan& plan) {
    bool has3 = false, has17 = false;
    for (const FaultEvent& e : plan) {
      has3 |= e.vehicle == VehicleId{3};
      has17 |= e.vehicle == VehicleId{17};
    }
    return has3 && has17;
  };
  const FaultPlan minimal = shrink_fault_plan(synthetic_plan(40), still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].vehicle, VehicleId{3});
  EXPECT_EQ(minimal[1].vehicle, VehicleId{17});  // order preserved
  EXPECT_TRUE(still_fails(minimal));
  // 1-minimal: dropping any single remaining event clears the failure.
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    FaultPlan without = minimal;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(without));
  }
}

TEST(Shrinker, AlwaysFailingPredicateShrinksToEmpty) {
  const FaultPlan minimal = shrink_fault_plan(
      synthetic_plan(10), [](const FaultPlan&) { return true; });
  EXPECT_TRUE(minimal.empty());
}

TEST(Shrinker, GroupedEventsShrinkAtomically) {
  // 30 noise events plus a causal pair (revoke at index ~10, delivery at
  // ~25) sharing group 7. Failure requires BOTH halves of the pair — the
  // chunking must never strip one without the other, and the minimal plan
  // is exactly the pair, interleaving order preserved.
  FaultPlan plan = synthetic_plan(30);
  FaultEvent revoke;
  revoke.kind = FaultKind::kRevokeIdentity;
  revoke.at = 10.5;
  revoke.group = 7;
  FaultEvent deliver;
  deliver.kind = FaultKind::kCrlDeliver;
  deliver.at = 25.5;
  deliver.crl_horizon_after = 4.0;
  deliver.group = 7;
  plan.insert(plan.begin() + 11, revoke);
  plan.insert(plan.begin() + 26, deliver);

  std::size_t half_pair_seen = 0;
  const auto still_fails = [&](const FaultPlan& candidate) {
    bool has_revoke = false, has_deliver = false;
    for (const FaultEvent& e : candidate) {
      has_revoke |= e.kind == FaultKind::kRevokeIdentity;
      has_deliver |= e.kind == FaultKind::kCrlDeliver;
    }
    if (has_revoke != has_deliver) ++half_pair_seen;
    return has_revoke && has_deliver;
  };
  const FaultPlan minimal = shrink_fault_plan(plan, still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].kind, FaultKind::kRevokeIdentity);
  EXPECT_EQ(minimal[1].kind, FaultKind::kCrlDeliver);
  EXPECT_EQ(minimal[1].crl_horizon_after, 4.0);
  // The shrinker never even PROPOSED a candidate holding half the pair.
  EXPECT_EQ(half_pair_seen, 0u);
}

TEST(Shrinker, DistinctGroupsShrinkIndependently) {
  // Two causal pairs; only group 1 matters. Group 2 must be stripped whole.
  FaultPlan plan;
  for (std::uint64_t g = 1; g <= 2; ++g) {
    FaultEvent revoke;
    revoke.kind = FaultKind::kRevokeIdentity;
    revoke.at = static_cast<SimTime>(g);
    revoke.group = g;
    FaultEvent deliver;
    deliver.kind = FaultKind::kCrlDeliver;
    deliver.at = static_cast<SimTime>(g) + 10.0;
    deliver.group = g;
    plan.push_back(revoke);
    plan.push_back(deliver);
  }
  sort_fault_plan(plan);
  const FaultPlan minimal = shrink_fault_plan(plan, [](const FaultPlan& p) {
    for (const FaultEvent& e : p) {
      if (e.group == 1 && e.kind == FaultKind::kCrlDeliver) return true;
    }
    return false;
  });
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].group, 1u);
  EXPECT_EQ(minimal[1].group, 1u);
}

}  // namespace
}  // namespace vcl::fault

namespace vcl::core {
namespace {

ChaosScenarioConfig short_episode() {
  ChaosScenarioConfig cfg;
  cfg.seed = 5;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  return cfg;
}

TEST(ChaosEpisode, CleanRunHasNoViolationsAndMakesProgress) {
  const ChaosEpisode episode = run_chaos_episode(short_episode());
  EXPECT_TRUE(episode.ok()) << (episode.violations.empty()
                                    ? "?"
                                    : episode.violations[0].to_string());
  EXPECT_GT(episode.checks_run, 0u);
  EXPECT_GT(episode.submitted, 0u);
  EXPECT_GT(episode.completed, 0u);
  EXPECT_GT(episode.plan.size(), 0u);
}

TEST(ChaosEpisode, DeterministicPerConfig) {
  const ChaosEpisode a = run_chaos_episode(short_episode());
  const ChaosEpisode b = run_chaos_episode(short_episode());
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.plan.size(), b.plan.size());
}

TEST(ChaosEpisode, ReproFileRoundTrips) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.intensity = 1.5;
  cfg.storms = false;
  const fault::ChaosPlanner planner(chaos_config_for(cfg));
  const fault::FaultPlan plan = planner.plan(cfg.seed);

  std::stringstream ss;
  write_chaos_repro(cfg, plan, ss);
  ChaosScenarioConfig loaded;
  fault::FaultPlan loaded_plan;
  std::string error;
  ASSERT_TRUE(load_chaos_repro(ss, loaded, loaded_plan, &error)) << error;
  EXPECT_EQ(loaded.seed, cfg.seed);
  EXPECT_EQ(loaded.vehicles, cfg.vehicles);
  EXPECT_DOUBLE_EQ(loaded.duration, cfg.duration);
  EXPECT_DOUBLE_EQ(loaded.intensity, cfg.intensity);
  EXPECT_FALSE(loaded.storms);
  EXPECT_EQ(loaded_plan.size(), plan.size());
}

// Adversary scenario knobs ride in the repro meta record too: one file
// re-creates the exact failing adversarial episode, bug arming included.
TEST(ChaosEpisode, ReproFileRoundTripsAdversaryKnobs) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.adversary = true;
  cfg.inject_revoked_bug = true;
  const fault::ChaosPlanner planner(chaos_config_for(cfg));
  const fault::FaultPlan plan = planner.plan(cfg.seed);

  std::stringstream ss;
  write_chaos_repro(cfg, plan, ss);
  ChaosScenarioConfig loaded;
  fault::FaultPlan loaded_plan;
  std::string error;
  ASSERT_TRUE(load_chaos_repro(ss, loaded, loaded_plan, &error)) << error;
  EXPECT_TRUE(loaded.adversary);
  EXPECT_TRUE(loaded.inject_revoked_bug);
  EXPECT_EQ(loaded_plan.size(), plan.size());
}

// The end-to-end demo the chaos engine exists for: arm the deliberate
// lost-task bug (crash recovery "forgets" to requeue), let the oracle catch
// it mid-soak, then shrink the fault schedule to a minimal repro.
TEST(ChaosEpisode, SeededBugIsCaughtAndShrinksSmall) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.inject_requeue_bug = true;
  // Find a failing seed quickly (the bug needs one vehicle crash while a
  // task is running; nearly every seed qualifies).
  ChaosEpisode bad;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    cfg.seed = seed;
    bad = run_chaos_episode(cfg);
    found = !bad.ok();
  }
  ASSERT_TRUE(found) << "seeded bug never tripped the oracle";
  ASSERT_FALSE(bad.violations.empty());
  // The violation record carries the replay context.
  EXPECT_EQ(bad.violations[0].seed, cfg.seed);
  EXPECT_FALSE(bad.violations[0].invariant.empty());

  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        return !run_chaos_episode(cfg, candidate).ok();
      });
  EXPECT_LE(minimal.size(), 5u);
  EXPECT_GE(minimal.size(), 1u);
  EXPECT_FALSE(run_chaos_episode(cfg, minimal).ok());
}

// Adversarial episode: the §IV attack storms run against the defended
// admission path with the auth invariants armed — and stay clean, with
// every attack shape actually exercised somewhere across a few seeds.
TEST(ChaosEpisode, AdversaryDefendedRunsClean) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.adversary = true;
  cfg.duration = 60.0;
  std::size_t claims = 0, replays = 0, revocations = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    cfg.seed = seed;
    const ChaosEpisode episode = run_chaos_episode(cfg);
    EXPECT_TRUE(episode.ok()) << (episode.violations.empty()
                                      ? "?"
                                      : episode.violations[0].to_string());
    // Graceful degradation, not membership pollution: every fabricated
    // claim lands in quarantine under the strict policy.
    EXPECT_EQ(episode.sybil_admitted, 0u);
    EXPECT_EQ(episode.sybil_quarantined, episode.sybil_claims);
    // Storm replays are minted stale by construction: all rejected.
    EXPECT_EQ(episode.replays_rejected, episode.replays_seen);
    // Revoked members were evicted, and the work survived: progress holds.
    EXPECT_EQ(episode.revoked_evictions, episode.revocations);
    EXPECT_GT(episode.completed, 0u);
    claims += episode.sybil_claims;
    replays += episode.replays_seen;
    revocations += episode.revocations;
  }
  EXPECT_GT(claims, 0u);
  EXPECT_GT(replays, 0u);
  EXPECT_GT(revocations, 0u);
}

TEST(ChaosEpisode, AdversaryEpisodeIsDeterministic) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.adversary = true;
  const ChaosEpisode a = run_chaos_episode(cfg);
  const ChaosEpisode b = run_chaos_episode(cfg);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.sybil_claims, b.sybil_claims);
  EXPECT_EQ(a.replays_seen, b.replays_seen);
  EXPECT_EQ(a.revocations, b.revocations);
  EXPECT_EQ(a.plan.size(), b.plan.size());
}

// The adversary toggle preserves the inertness contract: an episode with
// adversary OFF produces exactly the same outcome as before the adversary
// subsystem existed (same plan, same counters, byte-identical behavior).
TEST(ChaosEpisode, DisabledAdversaryDoesNotPerturbEpisodes) {
  const ChaosScenarioConfig cfg = short_episode();
  const ChaosEpisode off = run_chaos_episode(cfg);
  EXPECT_EQ(off.sybil_claims, 0u);
  EXPECT_EQ(off.replays_seen, 0u);
  EXPECT_EQ(off.revocations, 0u);
  // No attack kinds in a benign plan, and no groups either (ungrouped
  // plans keep the pre-adversary serialization byte for byte).
  for (const fault::FaultEvent& e : off.plan) {
    EXPECT_EQ(e.group, 0u);
    EXPECT_EQ(e.attack_tag, 0u);
  }
}

// The end-to-end §IV demo: arm the deliberate dropped-requeue bug in the
// revocation eviction sweep, let the oracle catch the stranded task, then
// shrink — the minimal plan keeps the revoke/deliver pair intact.
TEST(ChaosEpisode, SeededRevokedBugIsCaughtAndShrinksToCausalPair) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.adversary = true;
  cfg.inject_revoked_bug = true;
  ChaosEpisode bad;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    cfg.seed = seed;
    bad = run_chaos_episode(cfg);
    found = !bad.ok();
  }
  ASSERT_TRUE(found) << "seeded revocation bug never tripped the oracle";
  ASSERT_FALSE(bad.violations.empty());
  EXPECT_EQ(bad.violations[0].seed, cfg.seed);

  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        return !run_chaos_episode(cfg, candidate).ok();
      });
  ASSERT_GE(minimal.size(), 2u);
  EXPECT_LE(minimal.size(), 6u);
  // The causal pair survived shrinking together.
  bool has_revoke = false, has_deliver = false;
  for (const fault::FaultEvent& e : minimal) {
    has_revoke |= e.kind == fault::FaultKind::kRevokeIdentity;
    has_deliver |= e.kind == fault::FaultKind::kCrlDeliver;
  }
  EXPECT_TRUE(has_revoke);
  EXPECT_TRUE(has_deliver);
  EXPECT_FALSE(run_chaos_episode(cfg, minimal).ok());

  // Same schedule, bug disarmed: clean — the defense, not the oracle, was
  // broken.
  cfg.inject_revoked_bug = false;
  EXPECT_TRUE(run_chaos_episode(cfg, minimal).ok());
}

// Same schedule, bug disarmed: the oracle runs the whole episode clean —
// the checker itself does not misfire on healthy recovery paths.
TEST(ChaosEpisode, OracleStaysQuietWithBugDisarmed) {
  ChaosScenarioConfig cfg = short_episode();
  cfg.inject_requeue_bug = true;
  cfg.seed = 1;
  ChaosEpisode bad = run_chaos_episode(cfg);
  cfg.inject_requeue_bug = false;
  const ChaosEpisode good = run_chaos_episode(cfg, bad.plan);
  EXPECT_TRUE(good.ok()) << (good.violations.empty()
                                 ? "?"
                                 : good.violations[0].to_string());
  EXPECT_GT(good.checks_run, 0u);
}

}  // namespace
}  // namespace vcl::core
