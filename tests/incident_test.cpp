// Incident forensics (DESIGN.md §12): the always-on flight recorder, the
// vcl-incident-v1 bundle round-trip, and chaos-episode capture — including
// the determinism contract (same failing config, same bundle bytes,
// serial or on a thread pool).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.h"
#include "exp/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/incident.h"
#include "obs/trace.h"

namespace vcl::obs {
namespace {

TEST(FlightRecorder, RecordsAndCountsPerCategory) {
  FlightRecorder flight(8);
  flight.record(1.0, FlightCategory::kTask, "task.complete", 7, 3, 2.5);
  flight.record(2.0, FlightCategory::kDetector, "detector.evict", 3, 1, 0.5);
  EXPECT_EQ(flight.recorded(), 2u);
  EXPECT_EQ(flight.recorded(FlightCategory::kTask), 1u);
  EXPECT_EQ(flight.recorded(FlightCategory::kDetector), 1u);
  EXPECT_EQ(flight.overwritten(), 0u);

  const std::vector<FlightEvent> tail = flight.tail();
  ASSERT_EQ(tail.size(), 2u);
  // One strict total order: global sequence numbers, category-independent.
  EXPECT_LT(tail[0].seq, tail[1].seq);
  EXPECT_STREQ(tail[0].name, "task.complete");
  EXPECT_EQ(tail[0].a, 7u);
  EXPECT_EQ(tail[0].b, 3u);
  EXPECT_DOUBLE_EQ(tail[0].x, 2.5);
}

TEST(FlightRecorder, OverwriteKeepsNewestPerCategory) {
  FlightRecorder flight(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.record(static_cast<double>(i), FlightCategory::kTask, "task.expire",
                  i);
  }
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.overwritten(), 6u);
  EXPECT_EQ(flight.overwritten(FlightCategory::kTask), 6u);
  const std::vector<FlightEvent> tail = flight.tail();
  ASSERT_EQ(tail.size(), 4u);
  // The retained tail is the newest 4, in recording order.
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 6u + i);
  }
}

// A capture is a stable copy: recording past it (even far enough to wrap
// the ring again) must not disturb an earlier tail, and a later capture
// sees the newer history — the "overwrite during capture" contract the
// incident snapshot relies on (the hook captures mid-run, the run goes on).
TEST(FlightRecorder, CaptureIsStableWhileRecordingContinues) {
  FlightRecorder flight(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    flight.record(static_cast<double>(i), FlightCategory::kFault,
                  "fault.crash", i);
  }
  const std::vector<FlightEvent> first = flight.tail();
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first.front().a, 2u);

  for (std::uint64_t i = 6; i < 20; ++i) {
    flight.record(static_cast<double>(i), FlightCategory::kFault,
                  "fault.crash", i);
  }
  // The first capture is untouched by the later overwrites...
  ASSERT_EQ(first.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].a, 2u + i);
  }
  // ...and a fresh capture shows the newest window.
  const std::vector<FlightEvent> second = flight.tail();
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second.front().a, 16u);
  EXPECT_EQ(flight.overwritten(), 16u);
}

TEST(FlightRecorder, MixedCategoriesInterleaveBySequence) {
  FlightRecorder flight(4);
  flight.record(1.0, FlightCategory::kFault, "fault.crash", 9);
  flight.record(1.5, FlightCategory::kDetector, "detector.evict", 9);
  flight.record(2.0, FlightCategory::kFault, "fault.crash", 4);
  flight.record(2.5, FlightCategory::kLease, "lease.expire", 1, 4);
  const std::vector<FlightEvent> tail = flight.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].cat, FlightCategory::kFault);
  EXPECT_EQ(tail[1].cat, FlightCategory::kDetector);
  EXPECT_EQ(tail[2].cat, FlightCategory::kFault);
  EXPECT_EQ(tail[3].cat, FlightCategory::kLease);
}

TEST(TraceRecorder, OpenSpansAreBegunButNotEnded) {
  TraceRecorder trace(64);
  TraceContext root{trace.new_trace_id(), 0};
  const std::uint64_t open =
      trace.begin_span(1.0, TraceCategory::kTask, "task.life", root);
  TraceContext closed_ctx{root.trace_id, 0};
  closed_ctx.span_id =
      trace.begin_span(2.0, TraceCategory::kTask, "leg.exec", root);
  trace.end_span(3.0, TraceCategory::kTask, "leg.exec", closed_ctx);

  const std::vector<TraceRecorder::Event> spans = trace.open_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, open);
  EXPECT_STREQ(spans[0].name, "task.life");
}

IncidentBundle sample_bundle() {
  IncidentBundle b;
  b.seed = 42;
  b.captured_at = 0.1 + 0.2;  // not exactly representable: %.17g territory
  b.trigger = "task-conservation";
  b.flight_recorded = 12;
  b.flight_overwritten = 3;
  b.broker = 5;
  b.pending = 2;
  b.violations.push_back({59.0, "task-conservation", "task \"lost\"\n", 84});
  b.flight.push_back({50.7175, 9, "fault", "fault.broker.crash", 0, 0, 0.0});
  b.flight.push_back(
      {58.0, 10, "detector", "detector.evict", 0, 1, 7.282512345678901});
  b.windows.push_back({10.0, 15.5, -3.25, 900.125, 400.0, false});
  b.open_spans.push_back({42.0, "task", "task.life", 84, 394});
  b.workers.push_back({3, true, false});
  b.workers.push_back({4, false, true});
  b.tasks.push_back({84, "crash_recovering", 12.5, 30.0, 10.0, 0, 84});
  b.objects.push_back({1, 3});
  b.replicas.push_back({1, 7, 3, true, false});
  b.graphs.push_back({2, false, false, 1});
  b.dag_nodes.push_back({2, 0, true, false, 0});
  return b;
}

TEST(IncidentBundle, RoundTripIsBitIdentical) {
  const IncidentBundle original = sample_bundle();
  std::stringstream first;
  write_incident_bundle(original, first);

  IncidentBundle parsed;
  std::string error;
  std::stringstream in(first.str());
  ASSERT_TRUE(parse_incident_bundle(in, parsed, &error)) << error;

  std::stringstream second;
  write_incident_bundle(parsed, second);
  EXPECT_EQ(first.str(), second.str());

  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_EQ(parsed.trigger, "task-conservation");
  ASSERT_EQ(parsed.violations.size(), 1u);
  EXPECT_EQ(parsed.violations[0].detail, "task \"lost\"\n");
  ASSERT_EQ(parsed.flight.size(), 2u);
  EXPECT_EQ(parsed.flight[1].name, "detector.evict");
  ASSERT_EQ(parsed.workers.size(), 2u);
  EXPECT_TRUE(parsed.workers[0].crashed);
  EXPECT_TRUE(parsed.workers[1].tracked);
}

TEST(IncidentBundle, ParserRejectsMissingMetaAndUnknownRecords) {
  IncidentBundle out;
  std::string error;
  std::stringstream no_meta("{\"rec\":\"flight\"}\n");
  EXPECT_FALSE(parse_incident_bundle(no_meta, out, &error));
  EXPECT_FALSE(error.empty());

  std::stringstream valid;
  write_incident_bundle(sample_bundle(), valid);
  std::stringstream unknown(valid.str() + "{\"rec\":\"mystery\"}\n");
  EXPECT_FALSE(parse_incident_bundle(unknown, out, &error));
}

TEST(IncidentBundle, FlightTailCopyOwnsNames) {
  FlightRecorder flight(4);
  flight.record(1.0, FlightCategory::kQuorum, "quorum.write.failed", 8, 2,
                1.0);
  IncidentBundle b;
  append_flight_tail(b, flight.tail());
  ASSERT_EQ(b.flight.size(), 1u);
  EXPECT_EQ(b.flight[0].cat, "quorum");
  EXPECT_EQ(b.flight[0].name, "quorum.write.failed");
  EXPECT_EQ(b.flight[0].a, 8u);
}

}  // namespace
}  // namespace vcl::obs

namespace vcl::core {
namespace {

ChaosScenarioConfig failing_config() {
  // Same fixture as chaos_test.cpp's seeded-bug test: the requeue bug
  // trips task-conservation on nearly every seed; pin the first that does.
  ChaosScenarioConfig cfg;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  cfg.inject_requeue_bug = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    if (!run_chaos_episode(cfg).ok()) return cfg;
  }
  ADD_FAILURE() << "seeded bug never tripped the oracle";
  return cfg;
}

TEST(IncidentCapture, CleanEpisodeHasNoBundle) {
  ChaosScenarioConfig cfg;
  cfg.seed = 5;
  cfg.vehicles = 20;
  cfg.duration = 40.0;
  cfg.drain = 20.0;
  const ChaosEpisode episode = run_chaos_episode(cfg);
  ASSERT_TRUE(episode.ok());
  EXPECT_EQ(episode.incident, nullptr);
}

TEST(IncidentCapture, ViolationProducesCausallyOrderedBundle) {
  const ChaosScenarioConfig cfg = failing_config();
  const ChaosEpisode episode = run_chaos_episode(cfg);
  ASSERT_FALSE(episode.ok());
  ASSERT_NE(episode.incident, nullptr);
  const obs::IncidentBundle& b = *episode.incident;

  EXPECT_EQ(b.seed, cfg.seed);
  ASSERT_FALSE(episode.violations.empty());
  // The snapshot is pinned to the FIRST violation...
  EXPECT_EQ(b.trigger, episode.violations[0].invariant);
  EXPECT_DOUBLE_EQ(b.captured_at, episode.violations[0].at);
  // ...and the violation list covers everything the oracle stored.
  EXPECT_EQ(b.violations.size(), episode.violations.size());

  // The causal chain must be present and ordered: an injected fault, then
  // the detector eviction it caused, then the violation.
  double first_fault = -1.0;
  double first_evict = -1.0;
  for (const obs::IncidentFlightEvent& e : b.flight) {
    if (first_fault < 0.0 && e.cat == "fault") first_fault = e.t;
    if (first_evict < 0.0 && e.name == "detector.evict") first_evict = e.t;
  }
  ASSERT_GE(first_fault, 0.0) << "no injected fault in the flight tail";
  ASSERT_GE(first_evict, 0.0) << "no detector eviction in the flight tail";
  EXPECT_LE(first_fault, first_evict);
  EXPECT_LE(first_evict, b.captured_at);

  // The state snapshot is populated: membership and the in-flight tasks
  // the conservation check was looking at.
  EXPECT_FALSE(b.workers.empty());
  EXPECT_FALSE(b.tasks.empty());
  EXPECT_GT(b.flight_recorded, 0u);
}

// The `--jobs` contract: the bundle serializes to the same bytes whether
// the episode ran serially or interleaved with others on a thread pool —
// capture reads only sim-state, never wall-clock or scheduling order.
TEST(IncidentCapture, BundleBytesIdenticalSerialVsThreadPool) {
  const ChaosScenarioConfig cfg = failing_config();

  std::stringstream serial;
  {
    const ChaosEpisode episode = run_chaos_episode(cfg);
    ASSERT_NE(episode.incident, nullptr);
    obs::write_incident_bundle(*episode.incident, serial);
  }

  // Eight concurrent replicas of the same episode: every bundle must be
  // byte-identical to the serial one.
  std::vector<std::string> pooled(8);
  {
    exp::ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    futures.reserve(pooled.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      futures.push_back(pool.submit([&, i] {
        const ChaosEpisode episode = run_chaos_episode(cfg);
        if (episode.incident == nullptr) return;
        std::stringstream ss;
        obs::write_incident_bundle(*episode.incident, ss);
        pooled[i] = ss.str();
      }));
    }
    for (auto& f : futures) f.get();
  }
  for (const std::string& bytes : pooled) {
    EXPECT_EQ(bytes, serial.str());
  }
}

}  // namespace
}  // namespace vcl::core
