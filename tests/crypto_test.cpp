#include <gtest/gtest.h>

#include "crypto/chaum_pedersen.h"
#include "crypto/cost_model.h"
#include "crypto/drbg.h"
#include "crypto/elgamal.h"
#include "crypto/group.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/modmath.h"
#include "crypto/schnorr.h"
#include "crypto/shamir.h"
#include "crypto/sha256.h"

namespace vcl::crypto {
namespace {

// ---- SHA-256 (FIPS 180-4 known-answer tests) -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-new-block path.
  const std::string m(64, 'x');
  const Digest d1 = Sha256::hash(m);
  Sha256 h;
  h.update(m.substr(0, 13));
  h.update(m.substr(13));
  EXPECT_EQ(to_hex(h.finalize()), to_hex(d1));
}

TEST(Sha256, DigestPrefix) {
  const Digest d = Sha256::hash("abc");
  EXPECT_EQ(digest_prefix_u64(d), 0xba7816bf8f01cfeaULL);
}

// ---- HMAC (RFC 4231 vectors) ------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_s = "Jefe";
  const Bytes key(key_s.begin(), key_s.end());
  EXPECT_EQ(to_hex(hmac_sha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - "
                              "Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqual) {
  const Digest a = Sha256::hash("x");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// ---- DRBG -------------------------------------------------------------------

TEST(Drbg, Deterministic) {
  Drbg a(std::uint64_t{99}), b(std::uint64_t{99});
  EXPECT_EQ(a.generate(100), b.generate(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(std::uint64_t{1}), b(std::uint64_t{2});
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ScalarInRange) {
  Drbg d(std::uint64_t{5});
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t s = d.next_scalar(997);
    EXPECT_GE(s, 1u);
    EXPECT_LT(s, 997u);
  }
}

TEST(Drbg, SpansBlockBoundaries) {
  Drbg a(std::uint64_t{7});
  Drbg b(std::uint64_t{7});
  Bytes big = a.generate(100);
  Bytes parts;
  for (int i = 0; i < 10; ++i) {
    const Bytes p = b.generate(10);
    parts.insert(parts.end(), p.begin(), p.end());
  }
  EXPECT_EQ(big, parts);
}

// ---- Modular math -----------------------------------------------------------

TEST(ModMath, Basics) {
  EXPECT_EQ(mod_add(10, 8, 13), 5u);
  EXPECT_EQ(mod_sub(3, 8, 13), 8u);
  EXPECT_EQ(mod_mul(7, 8, 13), 4u);
  EXPECT_EQ(mod_pow(2, 10, 1000), 24u);
}

TEST(ModMath, LargeOperandsNoOverflow) {
  const std::uint64_t p = 0xffffffffffffffc5ULL;  // largest 64-bit prime
  const std::uint64_t a = p - 1;
  EXPECT_EQ(mod_mul(a, a, p), 1u);  // (-1)^2 = 1
  EXPECT_EQ(mod_pow(a, 2, p), 1u);
}

TEST(ModMath, Inverse) {
  const std::uint64_t p = 1000000007ULL;
  for (std::uint64_t a : {2ULL, 3ULL, 999999999ULL, 123456789ULL}) {
    const std::uint64_t inv = mod_inv(a, p);
    EXPECT_EQ(mod_mul(a, inv, p), 1u);
  }
}

TEST(ModMath, InverseOfNonCoprimeIsZero) {
  EXPECT_EQ(mod_inv(6, 9), 0u);
}

TEST(ModMath, IsPrimeSmall) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(0));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(ModMath, CarmichaelNumbersRejected) {
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(41041));
  EXPECT_FALSE(is_prime(825265));
}

TEST(ModMath, LargePrimes) {
  EXPECT_TRUE(is_prime(0xffffffffffffffc5ULL));
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 3));
}

// ---- Schnorr group ----------------------------------------------------------

TEST(Group, ParametersAreSafePrime) {
  const SchnorrGroup& g = default_group();
  EXPECT_TRUE(is_prime(g.p()));
  EXPECT_TRUE(is_prime(g.q()));
  EXPECT_EQ(g.p(), 2 * g.q() + 1);
  EXPECT_GT(g.p(), 1ULL << 60);
}

TEST(Group, GeneratorHasOrderQ) {
  const SchnorrGroup& g = default_group();
  EXPECT_EQ(g.pow_g(g.q()), 1u);
  EXPECT_NE(g.pow_g(1), 1u);
  EXPECT_TRUE(g.is_element(g.g()));
}

TEST(Group, DerivationIsDeterministic) {
  const SchnorrGroup a = SchnorrGroup::derive(7);
  const SchnorrGroup b = SchnorrGroup::derive(7);
  EXPECT_EQ(a.p(), b.p());
  EXPECT_EQ(a.g(), b.g());
  const SchnorrGroup c = SchnorrGroup::derive(8);
  EXPECT_NE(a.p(), c.p());
}

TEST(Group, ExponentLawsHold) {
  const SchnorrGroup& g = default_group();
  Drbg d(std::uint64_t{1});
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = d.next_scalar(g.q());
    const std::uint64_t b = d.next_scalar(g.q());
    // g^a * g^b == g^(a+b)
    EXPECT_EQ(g.mul(g.pow_g(a), g.pow_g(b)), g.pow_g(g.scalar_add(a, b)));
    // (g^a)^b == g^(ab)
    EXPECT_EQ(g.pow(g.pow_g(a), b), g.pow_g(g.scalar_mul(a, b)));
  }
}

TEST(Group, HashToScalarNonZero) {
  const SchnorrGroup& g = default_group();
  for (int i = 0; i < 50; ++i) {
    Bytes data{static_cast<std::uint8_t>(i)};
    const std::uint64_t s = g.hash_to_scalar(data);
    EXPECT_GE(s, 1u);
    EXPECT_LT(s, g.q());
  }
}

// ---- Schnorr signatures -----------------------------------------------------

class SchnorrFixture : public ::testing::Test {
 protected:
  SchnorrFixture() : schnorr_(default_group()), drbg_(std::uint64_t{2024}) {}
  Schnorr schnorr_;
  Drbg drbg_;
};

TEST_F(SchnorrFixture, SignVerifyRoundTrip) {
  const SchnorrKeyPair kp = schnorr_.keygen(drbg_);
  const Bytes msg{1, 2, 3, 4};
  const SchnorrSignature sig = schnorr_.sign(kp.secret, msg, drbg_);
  EXPECT_TRUE(schnorr_.verify(kp.pub, msg, sig));
}

TEST_F(SchnorrFixture, TamperedMessageRejected) {
  const SchnorrKeyPair kp = schnorr_.keygen(drbg_);
  Bytes msg{1, 2, 3, 4};
  const SchnorrSignature sig = schnorr_.sign(kp.secret, msg, drbg_);
  msg[0] ^= 1;
  EXPECT_FALSE(schnorr_.verify(kp.pub, msg, sig));
}

TEST_F(SchnorrFixture, WrongKeyRejected) {
  const SchnorrKeyPair kp1 = schnorr_.keygen(drbg_);
  const SchnorrKeyPair kp2 = schnorr_.keygen(drbg_);
  const Bytes msg{9, 9};
  const SchnorrSignature sig = schnorr_.sign(kp1.secret, msg, drbg_);
  EXPECT_FALSE(schnorr_.verify(kp2.pub, msg, sig));
}

TEST_F(SchnorrFixture, TamperedSignatureRejected) {
  const SchnorrKeyPair kp = schnorr_.keygen(drbg_);
  const Bytes msg{5};
  SchnorrSignature sig = schnorr_.sign(kp.secret, msg, drbg_);
  sig.s = schnorr_.group().scalar_add(sig.s, 1);
  EXPECT_FALSE(schnorr_.verify(kp.pub, msg, sig));
}

TEST_F(SchnorrFixture, NonElementPublicKeyRejected) {
  const Bytes msg{5};
  const SchnorrKeyPair kp = schnorr_.keygen(drbg_);
  const SchnorrSignature sig = schnorr_.sign(kp.secret, msg, drbg_);
  EXPECT_FALSE(schnorr_.verify(0, msg, sig));
}

// Property: round trip holds over many random keys and messages.
class SchnorrProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrProperty, RandomRoundTrips) {
  const Schnorr schnorr(default_group());
  Drbg drbg(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 20; ++i) {
    const SchnorrKeyPair kp = schnorr.keygen(drbg);
    const Bytes msg = drbg.generate(static_cast<std::size_t>(1 + i * 7));
    const SchnorrSignature sig = schnorr.sign(kp.secret, msg, drbg);
    EXPECT_TRUE(schnorr.verify(kp.pub, msg, sig));
    Bytes bad = msg;
    bad.back() ^= 0xff;
    EXPECT_FALSE(schnorr.verify(kp.pub, bad, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrProperty, ::testing::Range(1, 6));

// ---- ElGamal ----------------------------------------------------------------

TEST(ElGamal, ElementRoundTrip) {
  const SchnorrGroup& g = default_group();
  const ElGamal eg(g);
  Drbg drbg(std::uint64_t{3});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const std::uint64_t m = g.pow_g(drbg.next_scalar(g.q()));
  const ElGamalCiphertext ct = eg.encrypt(pub, m, drbg);
  EXPECT_EQ(eg.decrypt(secret, ct), m);
}

TEST(ElGamal, WrongSecretGivesWrongPlaintext) {
  const SchnorrGroup& g = default_group();
  const ElGamal eg(g);
  Drbg drbg(std::uint64_t{4});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const std::uint64_t m = g.pow_g(drbg.next_scalar(g.q()));
  const ElGamalCiphertext ct = eg.encrypt(pub, m, drbg);
  EXPECT_NE(eg.decrypt(secret + 1, ct), m);
}

TEST(ElGamal, HybridSealOpen) {
  const SchnorrGroup& g = default_group();
  const ElGamal eg(g);
  Drbg drbg(std::uint64_t{5});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const Bytes plain = drbg.generate(333);
  const HybridCiphertext ct = eg.seal(pub, plain, drbg);
  EXPECT_NE(ct.body, plain);  // actually encrypted
  const auto opened = eg.open(secret, ct);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

TEST(ElGamal, HybridTamperDetected) {
  const SchnorrGroup& g = default_group();
  const ElGamal eg(g);
  Drbg drbg(std::uint64_t{6});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  HybridCiphertext ct = eg.seal(pub, drbg.generate(64), drbg);
  ct.body[10] ^= 1;
  EXPECT_FALSE(eg.open(secret, ct).has_value());
}

TEST(ElGamal, HybridWrongKeyFails) {
  const SchnorrGroup& g = default_group();
  const ElGamal eg(g);
  Drbg drbg(std::uint64_t{7});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const HybridCiphertext ct = eg.seal(pub, drbg.generate(64), drbg);
  EXPECT_FALSE(eg.open(secret + 1, ct).has_value());
}

// ---- Shamir -----------------------------------------------------------------

TEST(Shamir, ReconstructWithExactThreshold) {
  const SchnorrGroup& g = default_group();
  const Shamir sh(g.q());
  Drbg drbg(std::uint64_t{8});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const auto shares = sh.split(secret, 3, 5, drbg);
  ASSERT_EQ(shares.size(), 5u);
  const std::vector<Share> subset{shares[0], shares[2], shares[4]};
  EXPECT_EQ(sh.reconstruct(subset), secret);
}

TEST(Shamir, AllSharesAlsoReconstruct) {
  const SchnorrGroup& g = default_group();
  const Shamir sh(g.q());
  Drbg drbg(std::uint64_t{9});
  const std::uint64_t secret = 123456789;
  const auto shares = sh.split(secret, 2, 4, drbg);
  EXPECT_EQ(sh.reconstruct(shares), secret);
}

TEST(Shamir, BelowThresholdGivesWrongSecret) {
  const SchnorrGroup& g = default_group();
  const Shamir sh(g.q());
  Drbg drbg(std::uint64_t{10});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const auto shares = sh.split(secret, 3, 5, drbg);
  const std::vector<Share> subset{shares[0], shares[1]};
  EXPECT_NE(sh.reconstruct(subset), secret);
}

TEST(Shamir, ThresholdOneIsConstant) {
  const SchnorrGroup& g = default_group();
  const Shamir sh(g.q());
  Drbg drbg(std::uint64_t{11});
  const auto shares = sh.split(42, 1, 3, drbg);
  for (const Share& s : shares) EXPECT_EQ(s.y, 42u);
}

// Property: any qualifying subset reconstructs; swept over (k, n).
class ShamirProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirProperty, QualifyingSubsetsReconstruct) {
  const auto [k, n] = GetParam();
  const SchnorrGroup& g = default_group();
  const Shamir sh(g.q());
  Drbg drbg(std::uint64_t{100 + k * 10 + n});
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const auto shares = sh.split(secret, k, n, drbg);
  // Take the first k, the last k, and a strided k.
  std::vector<Share> first(shares.begin(),
                           shares.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<Share> last(shares.end() - static_cast<std::ptrdiff_t>(k),
                          shares.end());
  EXPECT_EQ(sh.reconstruct(first), secret);
  EXPECT_EQ(sh.reconstruct(last), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{5, 8},
                      std::pair<std::size_t, std::size_t>{7, 7}));

// ---- Merkle -----------------------------------------------------------------

TEST(Merkle, ProofsVerify) {
  std::vector<Bytes> payloads;
  for (int i = 0; i < 7; ++i) payloads.push_back(Bytes{static_cast<std::uint8_t>(i)});
  const MerkleTree tree = MerkleTree::from_payloads(payloads);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(
        MerkleTree::verify(tree.root(), Sha256::hash(payloads[i]), proof));
  }
}

TEST(Merkle, WrongLeafFails) {
  std::vector<Bytes> payloads{{1}, {2}, {3}, {4}};
  const MerkleTree tree = MerkleTree::from_payloads(payloads);
  const MerkleProof proof = tree.prove(1);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), Sha256::hash(Bytes{9}), proof));
}

TEST(Merkle, WrongIndexFails) {
  std::vector<Bytes> payloads{{1}, {2}, {3}, {4}};
  const MerkleTree tree = MerkleTree::from_payloads(payloads);
  MerkleProof proof = tree.prove(1);
  proof.leaf_index = 2;
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), Sha256::hash(payloads[1]), proof));
}

TEST(Merkle, SingleLeaf) {
  const MerkleTree tree = MerkleTree::from_payloads({{42}});
  EXPECT_EQ(tree.root(), Sha256::hash(Bytes{42}));
  EXPECT_TRUE(
      MerkleTree::verify(tree.root(), Sha256::hash(Bytes{42}), tree.prove(0)));
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  const MerkleTree tree{std::vector<Digest>{}};
  EXPECT_EQ(tree.root(), Digest{});
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Bytes> payloads{{1}, {2}, {3}, {4}, {5}};
  const MerkleTree t1 = MerkleTree::from_payloads(payloads);
  payloads[3] = Bytes{99};
  const MerkleTree t2 = MerkleTree::from_payloads(payloads);
  EXPECT_NE(t1.root(), t2.root());
}

// ---- Chaum-Pedersen ---------------------------------------------------------

TEST(ChaumPedersenTest, CompletenessForEqualLogs) {
  const SchnorrGroup& g = default_group();
  const ChaumPedersen cp(g);
  Drbg drbg(std::uint64_t{21});
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t x = drbg.next_scalar(g.q());
    const std::uint64_t h = g.pow_g(drbg.next_scalar(g.q()));  // random base
    const std::uint64_t a = g.pow_g(x);
    const std::uint64_t b = g.pow(h, x);
    const auto proof = cp.prove(x, h, b, drbg);
    EXPECT_TRUE(cp.verify(a, h, b, proof));
  }
}

TEST(ChaumPedersenTest, SoundnessAgainstUnequalLogs) {
  const SchnorrGroup& g = default_group();
  const ChaumPedersen cp(g);
  Drbg drbg(std::uint64_t{22});
  const std::uint64_t x = drbg.next_scalar(g.q());
  const std::uint64_t h = g.pow_g(drbg.next_scalar(g.q()));
  const std::uint64_t a = g.pow_g(x);
  // b uses a DIFFERENT exponent: the statement is false.
  const std::uint64_t b = g.pow(h, g.scalar_add(x, 1));
  const auto proof = cp.prove(x, h, b, drbg);
  EXPECT_FALSE(cp.verify(a, h, b, proof));
}

TEST(ChaumPedersenTest, TamperedProofRejected) {
  const SchnorrGroup& g = default_group();
  const ChaumPedersen cp(g);
  Drbg drbg(std::uint64_t{23});
  const std::uint64_t x = drbg.next_scalar(g.q());
  const std::uint64_t h = g.pow_g(drbg.next_scalar(g.q()));
  const std::uint64_t a = g.pow_g(x);
  const std::uint64_t b = g.pow(h, x);
  auto proof = cp.prove(x, h, b, drbg);
  proof.response = g.scalar_add(proof.response, 1);
  EXPECT_FALSE(cp.verify(a, h, b, proof));
}

TEST(ChaumPedersenTest, NonElementInputsRejected) {
  const SchnorrGroup& g = default_group();
  const ChaumPedersen cp(g);
  Drbg drbg(std::uint64_t{24});
  const std::uint64_t x = drbg.next_scalar(g.q());
  const std::uint64_t h = g.pow_g(2);
  const auto proof = cp.prove(x, h, g.pow(h, x), drbg);
  EXPECT_FALSE(cp.verify(0, h, g.pow(h, x), proof));
}

// ---- Cost model -------------------------------------------------------------

TEST(CostModel, TotalsAccumulate) {
  const CostModel cm;
  OpCounts c;
  c.sign = 2;
  c.verify = 1;
  EXPECT_DOUBLE_EQ(cm.total(c), 2 * cm.sign_s + cm.verify_s);
}

TEST(CostModel, ScaleMultiplies) {
  CostModel cm;
  const SimTime base = cm.cost(Op::kSign);
  cm.scale(0.5);
  EXPECT_DOUBLE_EQ(cm.cost(Op::kSign), base * 0.5);
}

TEST(CostModel, OpCountsCompose) {
  OpCounts a;
  a.sign = 1;
  a.hash = 2;
  OpCounts b;
  b.sign = 3;
  b.abe_decrypt_leaves = 4;
  a += b;
  EXPECT_EQ(a.sign, 4u);
  EXPECT_EQ(a.hash, 2u);
  EXPECT_EQ(a.abe_decrypt_leaves, 4u);
}

}  // namespace
}  // namespace vcl::crypto
