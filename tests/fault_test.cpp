#include <gtest/gtest.h>

#include "core/system.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"

namespace vcl::fault {
namespace {

FaultPlanConfig busy_plan_config() {
  FaultPlanConfig cfg;
  cfg.horizon = 120.0;
  cfg.vehicle_crash_rate = 0.05;
  cfg.broker_crash_rate = 0.01;
  cfg.rsu_outage_rate = 0.02;
  cfg.blackout_rate = 0.02;
  cfg.blackout_lo = {0, 0};
  cfg.blackout_hi = {1000, 1000};
  return cfg;
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultPlanConfig cfg = busy_plan_config();
  Rng a(42), b(42);
  const FaultPlan plan_a = make_fault_plan(cfg, a);
  const FaultPlan plan_b = make_fault_plan(cfg, b);
  ASSERT_FALSE(plan_a.empty());
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].kind, plan_b[i].kind);
    EXPECT_DOUBLE_EQ(plan_a[i].at, plan_b[i].at);
    EXPECT_DOUBLE_EQ(plan_a[i].repair_after, plan_b[i].repair_after);
    EXPECT_DOUBLE_EQ(plan_a[i].duration, plan_b[i].duration);
    EXPECT_DOUBLE_EQ(plan_a[i].center.x, plan_b[i].center.x);
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlanConfig cfg = busy_plan_config();
  Rng a(42), b(43);
  const FaultPlan plan_a = make_fault_plan(cfg, a);
  const FaultPlan plan_b = make_fault_plan(cfg, b);
  bool differs = plan_a.size() != plan_b.size();
  for (std::size_t i = 0; !differs && i < plan_a.size(); ++i) {
    differs = plan_a[i].at != plan_b[i].at || plan_a[i].kind != plan_b[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, SortedAndInsideHorizon) {
  const FaultPlanConfig cfg = busy_plan_config();
  Rng rng(7);
  const FaultPlan plan = make_fault_plan(cfg, rng);
  ASSERT_FALSE(plan.empty());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].at, 0.0);
    EXPECT_LT(plan[i].at, cfg.horizon);
    if (i > 0) EXPECT_LE(plan[i - 1].at, plan[i].at);
    EXPECT_FALSE(to_string(plan[i]).empty());
  }
}

TEST(FaultPlan, ZeroRatesYieldEmptyPlan) {
  FaultPlanConfig cfg;  // all rates default to 0
  Rng rng(1);
  EXPECT_TRUE(make_fault_plan(cfg, rng).empty());
}

TEST(Blackout, ZeroesReceptionInsideRegionOnly) {
  net::Channel channel{net::ChannelConfig{}};
  const geo::Vec2 a{0, 0}, b{30, 0}, far_a{2000, 0}, far_b{2030, 0};
  EXPECT_GT(channel.reception_probability(a, b, 0), 0.0);
  const std::uint64_t token = channel.add_blackout({{10, 0}, 100.0});
  EXPECT_EQ(channel.blackout_count(), 1u);
  EXPECT_DOUBLE_EQ(channel.reception_probability(a, b, 0), 0.0);
  // Both endpoints outside the region: unaffected.
  EXPECT_GT(channel.reception_probability(far_a, far_b, 0), 0.0);
  channel.remove_blackout(token);
  EXPECT_EQ(channel.blackout_count(), 0u);
  EXPECT_GT(channel.reception_probability(a, b, 0), 0.0);
}

// ---- Injector against a live cloud -------------------------------------------

class InjectorFixture : public ::testing::Test {
 protected:
  InjectorFixture()
      : road_(geo::make_manhattan_grid(3, 3, 200.0)),
        traffic_(road_, Rng(1)),
        net_(sim_, traffic_, net::ChannelConfig{}, Rng(2)) {}

  std::unique_ptr<vcloud::VehicularCloud> make_cloud(
      int members, vcloud::CloudConfig config) {
    for (int i = 0; i < members; ++i) {
      traffic_.spawn_parked(LinkId{0}, 10.0 * i);
    }
    net_.refresh();
    auto cloud = std::make_unique<vcloud::VehicularCloud>(
        CloudId{1}, net_,
        vcloud::stationary_membership(traffic_, {100, 0}, 400.0),
        vcloud::fixed_region({100, 0}, 400.0),
        std::make_unique<vcloud::GreedyResourceScheduler>(), config, Rng(3));
    cloud->refresh();
    cloud->attach();
    return cloud;
  }

  geo::RoadNetwork road_;
  sim::Simulator sim_;
  mobility::TrafficModel traffic_;
  net::Network net_;
};

TEST_F(InjectorFixture, VehicleCrashDetectedAndRecovered) {
  vcloud::CloudConfig config;
  config.dependability.detector.enabled = true;
  auto cloud = make_cloud(4, config);
  FaultEvent crash;
  crash.kind = FaultKind::kVehicleCrash;
  crash.at = 5.0;  // victim picked from the live worker pool at fire time
  FaultInjector injector(net_, {crash}, Rng(9));
  injector.register_cloud(*cloud);
  injector.attach();

  vcloud::Task t;
  t.work = 100.0;
  const TaskId id = cloud->submit(t);
  const std::size_t population_before = traffic_.vehicles().size();
  sim_.run_until(600.0);
  EXPECT_EQ(injector.stats().vehicle_crashes, 1u);
  EXPECT_EQ(traffic_.vehicles().size(), population_before - 1);
  // The detector noticed the crash (whether or not the victim held the
  // task) and the task still completed.
  EXPECT_EQ(cloud->stats().crash_kills, 1u);
  EXPECT_EQ(cloud->find_task(id)->state, vcloud::TaskState::kCompleted);
}

TEST_F(InjectorFixture, BrokerCrashTriggersResync) {
  vcloud::CloudConfig config;
  config.dependability.detector.enabled = true;
  config.dependability.broker_resync_delay = 1.0;
  auto cloud = make_cloud(4, config);
  const VehicleId first_broker = cloud->broker();
  ASSERT_TRUE(first_broker.valid());
  FaultEvent crash;
  crash.kind = FaultKind::kBrokerCrash;
  crash.at = 3.0;
  FaultInjector injector(net_, {crash}, Rng(9));
  injector.register_cloud(*cloud);
  injector.attach();
  sim_.run_until(60.0);
  EXPECT_EQ(injector.stats().broker_crashes, 1u);
  EXPECT_TRUE(cloud->broker().valid());
  EXPECT_NE(cloud->broker(), first_broker);
  EXPECT_GE(cloud->stats().broker_resyncs, 1u);
  EXPECT_EQ(cloud->stats().crash_kills, 1u);  // the zombie broker was swept
}

TEST_F(InjectorFixture, RsuOutageIsRepaired) {
  const RsuId rsu = net_.rsus().add({100, 0}, 500.0);
  FaultEvent outage;
  outage.kind = FaultKind::kRsuOutage;
  outage.at = 2.0;
  outage.rsu = rsu;
  outage.repair_after = 5.0;
  FaultInjector injector(net_, {outage}, Rng(9));
  injector.attach();
  sim_.run_until(3.0);
  EXPECT_FALSE(net_.rsus().find(rsu)->online);
  EXPECT_EQ(injector.stats().rsu_outages, 1u);
  sim_.run_until(10.0);
  EXPECT_TRUE(net_.rsus().find(rsu)->online);
  EXPECT_EQ(injector.stats().rsu_repairs, 1u);
}

TEST_F(InjectorFixture, BlackoutWindowInstallsAndExpires) {
  FaultEvent blackout;
  blackout.kind = FaultKind::kRadioBlackout;
  blackout.at = 1.0;
  blackout.center = {100, 0};
  blackout.radius = 5000.0;
  blackout.duration = 4.0;
  FaultInjector injector(net_, {blackout}, Rng(9));
  injector.attach();
  sim_.run_until(2.0);
  EXPECT_EQ(net_.channel().blackout_count(), 1u);
  EXPECT_EQ(injector.stats().blackouts, 1u);
  sim_.run_until(6.0);
  EXPECT_EQ(net_.channel().blackout_count(), 0u);
}

// ---- System-level wiring -------------------------------------------------------

TEST(SystemFaults, InjectorBuiltFromConfigAndFires) {
  core::SystemConfig config;
  config.scenario.environment = core::Environment::kParkingLot;
  config.scenario.vehicles = 30;
  config.scenario.vehicles_parked = true;
  config.architecture = core::CloudArchitecture::kStationary;
  config.stationary_radius = 2000.0;
  config.cloud.dependability.detector.enabled = true;
  config.faults.horizon = 60.0;
  config.faults.vehicle_crash_rate = 0.1;
  core::VehicularCloudSystem system(config);
  system.start();
  ASSERT_NE(system.injector(), nullptr);
  ASSERT_FALSE(system.injector()->plan().empty());
  system.run_for(60.0);
  EXPECT_GE(system.injector()->stats().vehicle_crashes, 1u);
  // Crashed vehicles really vanished and were noticed.
  EXPECT_GE(system.cloud().stats().crash_kills, 1u);
}

TEST(SystemFaults, NoRatesMeansNoInjector) {
  core::SystemConfig config;
  config.scenario.vehicles = 5;
  core::VehicularCloudSystem system(config);
  system.start();
  EXPECT_EQ(system.injector(), nullptr);
}

}  // namespace
}  // namespace vcl::fault
