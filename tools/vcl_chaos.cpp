// vcl_chaos: chaos soak runner with shrinking repros (DESIGN.md §9).
//
// Soak mode runs N seeded chaos episodes (correlated fault storms against
// the full-mitigation parking-lot cloud, invariant oracle attached) in
// parallel on exp::ThreadPool. Every episode is a pure function of its
// seed, so the first invariant violation found is replayed and
// delta-debugged (greedy chunk removal over the FaultPlan) down to a
// minimal failing schedule, written as a repro JSONL next to a
// vcl_traceview-ready trace export of the failing episode.
//
//   vcl_chaos --episodes 200 --seed 1            # soak; exit 1 on violation
//   vcl_chaos --storage --episodes 200           # storage service under chaos
//   vcl_chaos --repro chaos-out/repro.jsonl      # re-run one repro file
//
// Exit codes (the single authoritative statement is in usage()/--help;
// README's chaos section points here): soak 0 = all episodes clean,
// 1 = violation found (repro written), 2 = usage/IO error; repro mode
// 0 = the repro no longer reproduces (fixed), 3 = still reproduces,
// 2 = usage/IO error.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.h"
#include "exp/thread_pool.h"

using namespace vcl;

namespace {

struct Options {
  std::size_t episodes = 50;
  std::uint64_t seed = 1;
  int vehicles = 40;
  double duration = 120.0;
  double intensity = 1.0;
  bool storms = true;
  bool inject_requeue_bug = false;
  bool storage = false;
  bool inject_repair_bug = false;
  bool dag = false;
  bool inject_dag_bug = false;
  bool adversary = false;
  bool inject_revoked_bug = false;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string out_dir = "chaos-out";
  std::string repro_path;  // non-empty = repro mode
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --episodes N      seeded episodes to soak (default 50)\n"
      << "  --seed S          base seed; episode i uses S+i (default 1)\n"
      << "  --vehicles N      parked fleet size per episode (default 40)\n"
      << "  --duration SEC    load window per episode (default 120)\n"
      << "  --intensity X     fault/storm rate multiplier (default 1.0)\n"
      << "  --no-storms       independent Poisson background only\n"
      << "  --jobs J          parallel episodes (default: hardware)\n"
      << "  --out DIR         repro + trace + incident-bundle output dir\n"
      << "                    (default chaos-out; a failing episode writes\n"
      << "                    incident.jsonl there — render with vcl_incident)\n"
      << "  --repro FILE      re-run one repro file instead of soaking\n"
      << "  --storage         run the storage service (leases + quorum\n"
      << "                    replication + repair) under the chaos, with the\n"
      << "                    storage invariants armed and the storage-\n"
      << "                    targeted storm shape in the schedule\n"
      << "  --dag             run the DAG decomposition scheduler (generated\n"
      << "                    task graphs, reliability-aware replication)\n"
      << "                    under the chaos, with the DAG invariants armed\n"
      << "                    and the critical-path-chasing storm shape in\n"
      << "                    the schedule\n"
      << "  --adversary       run the SS-IV adversary under the chaos: sybil\n"
      << "                    bursts inside blackouts, CRL-propagation races,\n"
      << "                    replay floods — against the revocation-aware\n"
      << "                    admission/eviction defenses, with the auth\n"
      << "                    invariants armed\n"
      << "  --inject-requeue-bug  arm the deliberate requeue test-fixture bug\n"
      << "  --inject-repair-bug   arm the deliberate storage-repair bug\n"
      << "                        (implies --storage)\n"
      << "  --inject-dag-bug      arm the deliberate stranded-node DAG bug\n"
      << "                        (implies --dag)\n"
      << "  --inject-revoked-bug  arm the deliberate dropped-requeue bug in\n"
      << "                        the revocation eviction sweep (implies\n"
      << "                        --adversary)\n"
      << "\n"
      << "exit codes:\n"
      << "  soak mode:   0 = all episodes clean\n"
      << "               1 = invariant violation found (shrunk repro written)\n"
      << "               2 = usage or I/O error\n"
      << "  repro mode:  0 = the repro no longer reproduces (bug fixed)\n"
      << "               3 = the repro still reproduces the violation\n"
      << "               2 = usage or I/O error\n";
  return 2;
}

core::ChaosScenarioConfig episode_config(const Options& opt,
                                         std::uint64_t seed) {
  core::ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = opt.vehicles;
  cfg.duration = opt.duration;
  cfg.intensity = opt.intensity;
  cfg.storms = opt.storms;
  cfg.inject_requeue_bug = opt.inject_requeue_bug;
  cfg.storage = opt.storage;
  cfg.inject_repair_bug = opt.inject_repair_bug;
  cfg.dag = opt.dag;
  cfg.inject_dag_bug = opt.inject_dag_bug;
  cfg.adversary = opt.adversary;
  cfg.inject_revoked_bug = opt.inject_revoked_bug;
  return cfg;
}

void print_violations(const core::ChaosEpisode& episode) {
  for (const auto& v : episode.violations) {
    std::cout << "  " << v.to_string() << "\n";
  }
  if (episode.violation_count > episode.violations.size()) {
    std::cout << "  ... and "
              << episode.violation_count - episode.violations.size()
              << " more (storage capped)\n";
  }
}

int run_repro(const Options& opt) {
  std::ifstream in(opt.repro_path);
  if (!in) {
    std::cerr << "error: cannot open " << opt.repro_path << "\n";
    return 2;
  }
  core::ChaosScenarioConfig cfg;
  fault::FaultPlan plan;
  std::string error;
  if (!core::load_chaos_repro(in, cfg, plan, &error)) {
    std::cerr << "error: " << opt.repro_path << ": " << error << "\n";
    return 2;
  }
  std::cout << "replaying " << opt.repro_path << ": seed " << cfg.seed << ", "
            << plan.size() << " fault events, " << cfg.vehicles
            << " vehicles, " << cfg.duration << " s\n";
  std::filesystem::create_directories(opt.out_dir);
  const core::ChaosEpisode episode =
      core::run_chaos_episode(cfg, plan, opt.out_dir);
  std::cout << "episode: " << episode.submitted << " submitted, "
            << episode.completed << " completed, " << episode.expired
            << " expired, " << episode.crashes << " crashes, "
            << episode.checks_run << " oracle checks\n";
  if (cfg.storage) {
    std::cout << "storage: " << episode.storage_writes_acked
              << " writes acked, " << episode.storage_reads_quorum
              << " quorum reads, " << episode.storage_reads_degraded
              << " degraded reads, " << episode.storage_repair_copies
              << " repair copies\n";
  }
  if (cfg.dag) {
    std::cout << "dag: " << episode.dag_graphs_submitted << " graphs ("
              << episode.dag_graphs_completed << " completed, "
              << episode.dag_graphs_failed << " failed), "
              << episode.dag_nodes_succeeded << " nodes succeeded, "
              << episode.dag_backups << " backups\n";
  }
  if (cfg.adversary) {
    std::cout << "adversary: " << episode.sybil_claims << " sybil claims ("
              << episode.sybil_quarantined << " quarantined, "
              << episode.sybil_admitted << " admitted), "
              << episode.replays_seen << " replays ("
              << episode.replays_rejected << " rejected), "
              << episode.revocations << " revocations ("
              << episode.revoked_evictions << " evictions)\n";
  }
  if (episode.ok()) {
    std::cout << "repro is CLEAN (the failure no longer reproduces)\n";
    return 0;
  }
  std::cout << episode.violation_count << " invariant violation(s):\n";
  print_violations(episode);
  std::cout << "trace exported to " << opt.out_dir
            << "/trace.jsonl (vcl_traceview-ready)\n";
  if (episode.incident != nullptr) {
    std::cout << "incident bundle written to " << opt.out_dir
              << "/incident.jsonl (render with vcl_incident)\n";
  }
  return 3;
}

int run_soak(const Options& opt) {
  const std::size_t jobs =
      opt.jobs > 0 ? opt.jobs
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::cout << "soaking " << opt.episodes << " episodes (seeds " << opt.seed
            << ".." << opt.seed + opt.episodes - 1 << ", " << opt.vehicles
            << " vehicles, " << opt.duration << " s load, intensity "
            << opt.intensity << (opt.storms ? ", storms on" : ", storms off")
            << (opt.storage ? ", storage on" : "")
            << (opt.dag ? ", dag on" : "")
            << (opt.adversary ? ", adversary on" : "") << ") on " << jobs
            << " threads\n";

  std::vector<core::ChaosEpisode> episodes(opt.episodes);
  std::vector<char> ran(opt.episodes, 0);
  std::atomic<bool> stop{false};
  {
    exp::ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(opt.episodes);
    for (std::size_t i = 0; i < opt.episodes; ++i) {
      futures.push_back(pool.submit([&, i] {
        if (stop.load(std::memory_order_relaxed)) return;
        episodes[i] = core::run_chaos_episode(
            episode_config(opt, opt.seed + i));
        ran[i] = 1;
        if (!episodes[i].ok()) stop.store(true, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Lowest-index failure wins so the reported seed is deterministic even
  // though the pool finishes episodes in a nondeterministic order.
  std::size_t completed_clean = 0;
  std::size_t failing = opt.episodes;
  for (std::size_t i = 0; i < opt.episodes; ++i) {
    if (!ran[i]) continue;
    if (!episodes[i].ok() && failing == opt.episodes) failing = i;
    if (episodes[i].ok()) ++completed_clean;
  }

  if (failing == opt.episodes) {
    std::size_t checks = 0;
    for (std::size_t i = 0; i < opt.episodes; ++i) checks += episodes[i].checks_run;
    std::cout << "OK: " << completed_clean << " episodes, " << checks
              << " oracle checks, zero invariant violations\n";
    if (opt.storage) {
      std::size_t acked = 0, degraded = 0, repairs = 0;
      for (const core::ChaosEpisode& e : episodes) {
        acked += e.storage_writes_acked;
        degraded += e.storage_reads_degraded;
        repairs += e.storage_repair_copies;
      }
      std::cout << "storage: " << acked << " writes acked, " << degraded
                << " degraded reads, " << repairs << " repair copies\n";
    }
    if (opt.dag) {
      std::size_t graphs = 0, done = 0, failed = 0, backups = 0;
      for (const core::ChaosEpisode& e : episodes) {
        graphs += e.dag_graphs_submitted;
        done += e.dag_graphs_completed;
        failed += e.dag_graphs_failed;
        backups += e.dag_backups;
      }
      std::cout << "dag: " << graphs << " graphs (" << done << " completed, "
                << failed << " failed), " << backups << " backups\n";
    }
    if (opt.adversary) {
      std::size_t claims = 0, quarantined = 0, replays = 0, rejected = 0,
                   revoked = 0, evicted = 0;
      for (const core::ChaosEpisode& e : episodes) {
        claims += e.sybil_claims;
        quarantined += e.sybil_quarantined;
        replays += e.replays_seen;
        rejected += e.replays_rejected;
        revoked += e.revocations;
        evicted += e.revoked_evictions;
      }
      std::cout << "adversary: " << claims << " sybil claims (" << quarantined
                << " quarantined), " << replays << " replays (" << rejected
                << " rejected), " << revoked << " revocations (" << evicted
                << " evictions)\n";
    }
    return 0;
  }

  const std::uint64_t bad_seed = opt.seed + failing;
  const core::ChaosEpisode& bad = episodes[failing];
  std::cout << "FAIL: episode seed " << bad_seed << " ("
            << bad.plan.size() << " fault events) violated "
            << bad.violation_count << " invariant check(s):\n";
  print_violations(bad);

  const core::ChaosScenarioConfig cfg = episode_config(opt, bad_seed);
  std::cout << "shrinking fault plan (" << bad.plan.size()
            << " events) ...\n";
  std::size_t shrink_runs = 0;
  const fault::FaultPlan minimal = fault::shrink_fault_plan(
      bad.plan, [&](const fault::FaultPlan& candidate) {
        ++shrink_runs;
        return !core::run_chaos_episode(cfg, candidate).ok();
      });
  std::cout << "shrunk to " << minimal.size() << " event(s) in "
            << shrink_runs << " episode runs:\n";
  for (const fault::FaultEvent& e : minimal) {
    std::cout << "  " << fault::to_string(e) << "\n";
  }

  std::filesystem::create_directories(opt.out_dir);
  const std::string repro_path = opt.out_dir + "/repro.jsonl";
  {
    std::ofstream out(repro_path);
    core::write_chaos_repro(cfg, minimal, out);
  }
  // Re-run the minimal schedule once more with telemetry on: the exported
  // trace.jsonl is the post-mortem view of the exact failing episode.
  const core::ChaosEpisode final_run =
      core::run_chaos_episode(cfg, minimal, opt.out_dir);
  std::cout << "repro written to " << repro_path << " (re-run with --repro)\n"
            << "trace exported to " << opt.out_dir
            << "/trace.jsonl (vcl_traceview-ready); final run: "
            << final_run.violation_count << " violation(s)\n";
  if (final_run.incident != nullptr) {
    std::cout << "incident bundle written to " << opt.out_dir
              << "/incident.jsonl (render with vcl_incident)\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--episodes") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.episodes = static_cast<std::size_t>(std::stoull(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.seed = static_cast<std::uint64_t>(std::stoull(v));
    } else if (arg == "--vehicles") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.vehicles = std::stoi(v);
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.duration = std::stod(v);
    } else if (arg == "--intensity") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.intensity = std::stod(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.jobs = static_cast<std::size_t>(std::stoull(v));
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.out_dir = v;
    } else if (arg == "--repro") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.repro_path = v;
    } else if (arg == "--no-storms") {
      opt.storms = false;
    } else if (arg == "--storage") {
      opt.storage = true;
    } else if (arg == "--inject-requeue-bug") {
      opt.inject_requeue_bug = true;
    } else if (arg == "--inject-repair-bug") {
      opt.inject_repair_bug = true;
      opt.storage = true;  // the bug lives in the storage repair pipeline
    } else if (arg == "--dag") {
      opt.dag = true;
    } else if (arg == "--inject-dag-bug") {
      opt.inject_dag_bug = true;
      opt.dag = true;  // the bug lives in the DAG resubmit path
    } else if (arg == "--adversary") {
      opt.adversary = true;
    } else if (arg == "--inject-revoked-bug") {
      opt.inject_revoked_bug = true;
      opt.adversary = true;  // the bug lives in the revocation sweep
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.episodes == 0) return usage(argv[0]);
  if (!opt.repro_path.empty()) return run_repro(opt);
  return run_soak(opt);
}
