// vcl_traceview: per-task critical-path latency breakdown from a trace
// JSONL export (DESIGN.md §8).
//
// Reads the JSONL a TraceRecorder wrote (obs::write_telemetry's
// trace.jsonl, or any write_jsonl stream), reassembles each task's causal
// span tree and prints where its end-to-end latency went: broker queueing,
// network (dispatch/input/result transfer), compute, crash recovery — plus
// ring-completeness diagnostics (orphaned spans, overwritten history).
//
//   vcl_traceview out/rep0/trace.jsonl
//   vcl_traceview --json out/rep0/trace.jsonl   # machine-readable
//   vcl_traceview --storage chaos-out/trace.jsonl  # per-object storage ops
//   vcl_traceview --dag dag-out/trace.jsonl     # per-DAG-run critical path
//   some_bench | vcl_traceview -                # read stdin
//
// --dag additionally *asserts* the leg-partition invariant: for a complete
// (unwrapped) trace, every completed node's queue/network/compute/recovery
// legs must partition its end-to-end latency exactly — a nonzero residual
// means the recorder or the reduction is broken, and the tool exits 1.
//
// Unknown root-span categories (a newer recorder's traces) are skipped and
// counted in the diagnostics, never fatal.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_analysis.h"

namespace {

// Partition tolerance for --dag: legs are sums of recorded event-time
// differences, so anything beyond accumulated rounding is a real hole.
constexpr double kPartitionTolerance = 1e-6;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--storage] [--dag] <trace.jsonl | ->\n"
            << "  --json     machine-readable output (tasks + storage ops +\n"
            << "             dag runs + fault windows in one document)\n"
            << "  --storage  per-object storage breakdown (put/get/repair\n"
            << "             latency, storm attribution) instead of the\n"
            << "             per-task table\n"
            << "  --dag      per-DAG-run breakdown: node table, measured\n"
            << "             critical path, leg-partition check (exits 1 on\n"
            << "             a partition violation in a complete trace)\n"
            << "exit codes:\n"
            << "  0  report rendered\n"
            << "  1  unreadable or malformed trace, or (--dag) a\n"
            << "     leg-partition violation in a complete trace\n"
            << "  2  usage error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool storage = false;
  bool dag = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--storage") {
      storage = true;
    } else if (arg == "--dag") {
      dag = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;

  std::vector<vcl::obs::ParsedEvent> events;
  vcl::obs::TraceMeta meta;
  std::string error;
  if (!vcl::obs::parse_trace_jsonl(in, events, meta, &error)) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return 1;
  }

  const vcl::obs::TraceAnalysis analysis(events);
  if (json) {
    analysis.write_json(std::cout, meta);
  } else if (storage) {
    analysis.write_storage_report(std::cout, meta);
  } else if (dag) {
    analysis.write_dag_report(std::cout, meta);
    // The partition assert only binds on complete traces: a wrapped ring
    // legitimately loses legs, and the report already flags it.
    if (meta.complete()) {
      for (const vcl::obs::DagRunBreakdown& run : analysis.dags()) {
        if (run.partition_max_dev > kPartitionTolerance) {
          std::cerr << "error: trace " << run.trace_id
                    << ": node legs do not partition e2e (max deviation "
                    << run.partition_max_dev << " s)\n";
          return 1;
        }
      }
    }
  } else {
    analysis.write_report(std::cout, meta);
  }
  return 0;
}
