// vcl_report: unified run-health report over a run's telemetry exports
// (DESIGN.md §8).
//
// Points at one or more telemetry directories (obs::write_telemetry /
// vcl_chaos / any bench with --telemetry-dir) and merges whatever is there
// — trace.jsonl, metrics.csv, sketches.json, violations.jsonl — into one
// health view: tail-latency tables from the merged quantile sketches,
// per-task and per-storage-op latency attributed to injected fault
// windows (in-storm vs clear-sky), per-component counters, and oracle
// violation records. Sketch merges add integer bucket counts, so the
// report is bit-identical for any directory order.
//
//   vcl_report out/rep0                          # human-readable, stdout
//   vcl_report --json out/rep0 > report.json     # machine-readable
//   vcl_report --out report.json out/rep0 out/rep1  # text to stdout AND
//                                                   # JSON artifact to file
//
// Absent optional artifacts note-and-continue (a per-directory "absent
// (skipped)" note in the output); trace-ring data loss (overwritten
// events, dropped fields) is surfaced as explicit WARNING lines / a
// "warnings" JSON array. Exit codes: the single authoritative statement
// is in usage()/--help.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--json] [--out FILE] DIR [DIR...]\n"
            << "  --json      write the JSON report to stdout instead of\n"
            << "              the human-readable text\n"
            << "  --out FILE  additionally write the JSON report to FILE\n"
            << "              (CI artifact next to the text on stdout)\n"
            << "\n"
            << "Merges trace.jsonl / metrics.csv / sketches.json /\n"
            << "violations.jsonl from each DIR; every artifact is optional\n"
            << "and an absent one is noted and skipped, never fatal. Trace\n"
            << "ring overwrites and dropped fields become WARNING lines (a\n"
            << "\"warnings\" array in --json).\n"
            << "exit codes:\n"
            << "  0  report produced (violations included — the report is\n"
            << "     an observer; gating is the chaos runner's job)\n"
            << "  2  usage error, unreadable/malformed input, or no\n"
            << "     artifact found in any DIR\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out") {
      if (++i >= argc) return usage(argv[0]);
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) return usage(argv[0]);

  vcl::obs::RunHealth health;
  std::string error;
  if (!vcl::obs::build_run_health(dirs, health, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 2;
    }
    vcl::obs::write_health_json(os, health);
  }
  if (json) {
    vcl::obs::write_health_json(std::cout, health);
  } else {
    vcl::obs::write_health_text(std::cout, health);
  }
  return 0;
}
