// vcl_incident: renders a vcl-incident-v1 forensic bundle as a sim-time
// causal timeline (DESIGN.md §12).
//
// A bundle is what core::chaos snapshots at the instant the invariant
// oracle first objects: the flight-recorder tail, the blackout windows
// that were open, the spans still in flight and the membership / task /
// replica / DAG state at capture. This tool lines those up on one clock so
// the causal story reads top to bottom — injected fault, detector
// eviction, retries/repairs, violation — without replaying anything.
//
//   vcl_incident chaos-out/incident.jsonl
//   vcl_incident --json chaos-out/incident.jsonl   # machine-readable
//   vcl_chaos --repro chaos-out/repro.jsonl | ...  # produces the bundle
//
// Trace ids printed for open spans (and traced tasks) cross-link into the
// trace.jsonl written next to the bundle: feed it to vcl_traceview for the
// span tree, or vcl_report for run health.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/incident.h"
#include "obs/json.h"

namespace {

using vcl::obs::IncidentBundle;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [--json] <incident.jsonl | ->\n"
      << "  Renders a vcl-incident-v1 bundle (written by vcl_chaos next to\n"
      << "  the shrunk repro) as a sim-time causal timeline: injected\n"
      << "  faults, detector evictions, lease/quorum/DAG transitions, then\n"
      << "  the invariant violations they led to.\n"
      << "  --json   one vcl-incident-view-v1 JSON document for CI\n"
      << "exit codes:\n"
      << "  0  bundle parsed and a non-empty timeline rendered\n"
      << "  1  malformed bundle, or nothing to render (empty timeline)\n"
      << "  2  usage error or unreadable input\n";
  return 2;
}

// One row of the merged timeline. `rank` breaks sim-time ties so the
// ordering is total and deterministic: window edges first (the cause),
// then flight events in recording order, then the violations they led to.
struct TimelineEntry {
  double t = 0.0;
  int rank = 0;
  std::uint64_t seq = 0;
  std::string kind;    // category column: fault / detector / ... / VIOLATION
  std::string name;
  std::string detail;
};

std::string fmt_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Name-aware rendering of a flight event's (a, b, x) payload: the recorder
// keeps them as two ids and a double, the meaning is per event name.
std::string flight_detail(const vcl::obs::IncidentFlightEvent& e) {
  const std::string& n = e.name;
  if (n == "task.complete") {
    return "task " + std::to_string(e.a) + " on worker " +
           std::to_string(e.b) + ", latency " + fmt_num(e.x) + " s";
  }
  if (n == "task.expire") {
    return "task " + std::to_string(e.a) +
           (e.b != 0 ? " on worker " + std::to_string(e.b) : " (queued)");
  }
  if (n == "detector.evict") {
    return "worker " + std::to_string(e.a) +
           (e.b != 0 ? ", crashed " + fmt_num(e.x) + " s earlier"
                     : " (false positive: worker was alive)");
  }
  if (n == "lease.expire") {
    return "lease " + std::to_string(e.a) + " held by worker " +
           std::to_string(e.b);
  }
  if (n == "quorum.write.failed" || n == "quorum.read.failed" ||
      n == "quorum.read.degraded") {
    return "object " + std::to_string(e.a) + ", client " +
           std::to_string(e.b) + ", " + fmt_num(e.x) + " copies reached";
  }
  if (n == "dag.backup") {
    return "graph " + std::to_string(e.a) + " node " + std::to_string(e.b) +
           ": host predicted to leave, backup launched";
  }
  if (n == "dag.graph.fail") {
    return "graph " + std::to_string(e.a) + ", " + std::to_string(e.b) +
           " nodes had succeeded";
  }
  if (n == "fault.crash") return "vehicle " + std::to_string(e.a);
  if (n == "fault.broker.crash") return "broker " + std::to_string(e.a);
  if (n == "fault.rsu.outage") {
    return "rsu " + std::to_string(e.a) + ", repair in " + fmt_num(e.x) +
           " s";
  }
  if (n == "fault.rsu.repair") return "rsu " + std::to_string(e.a);
  if (n == "fault.blackout.start") {
    return "duration " + fmt_num(e.x) + " s";
  }
  if (n == "fault.blackout.end") return "window " + std::to_string(e.a);
  // Unknown (newer recorder): raw payload, never fatal.
  std::string d = "a=" + std::to_string(e.a) + " b=" + std::to_string(e.b);
  if (e.x != 0.0) d += " x=" + fmt_num(e.x);
  return d;
}

std::vector<TimelineEntry> build_timeline(const IncidentBundle& b) {
  std::vector<TimelineEntry> rows;
  for (const auto& w : b.windows) {
    TimelineEntry open;
    open.t = w.start;
    open.rank = 0;
    open.kind = "fault";
    open.name = "blackout.window.open";
    open.detail = "center (" + fmt_num(w.x) + ", " + fmt_num(w.y) +
                  "), radius " + fmt_num(w.radius) + ", until t=" +
                  fmt_time(w.end) + (w.active ? " [open at capture]" : "");
    rows.push_back(std::move(open));
    // A close edge after capture never happened from the incident's point
    // of view — the open edge already names the scheduled end.
    if (!w.active && w.end <= b.captured_at) {
      TimelineEntry close;
      close.t = w.end;
      close.rank = 0;
      close.kind = "fault";
      close.name = "blackout.window.close";
      close.detail = "opened t=" + fmt_time(w.start);
      rows.push_back(std::move(close));
    }
  }
  for (const auto& e : b.flight) {
    TimelineEntry row;
    row.t = e.t;
    row.rank = 1;
    row.seq = e.seq;
    row.kind = e.cat;
    row.name = e.name;
    row.detail = flight_detail(e);
    rows.push_back(std::move(row));
  }
  std::uint64_t vseq = 0;
  for (const auto& v : b.violations) {
    TimelineEntry row;
    row.t = v.t;
    row.rank = 2;
    row.seq = vseq++;
    row.kind = "VIOLATION";
    row.name = v.invariant;
    row.detail = v.detail;
    if (v.task != 0) row.detail += " [task " + std::to_string(v.task) + "]";
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TimelineEntry& l, const TimelineEntry& r) {
              if (l.t != r.t) return l.t < r.t;
              if (l.rank != r.rank) return l.rank < r.rank;
              return l.seq < r.seq;
            });
  return rows;
}

void write_text(const IncidentBundle& b,
                const std::vector<TimelineEntry>& rows, std::ostream& os) {
  os << "incident: seed " << b.seed << ", trigger \"" << b.trigger
     << "\" at t=" << fmt_time(b.captured_at) << "\n";
  os << "violations: " << b.violations.size()
     << " stored (oracle caps storage, not the count)\n";
  os << "flight recorder: " << b.flight_recorded << " events recorded, "
     << b.flight_overwritten << " overwritten; timeline shows the retained "
     << b.flight.size() << "\n\n";

  os << "causal timeline (sim time):\n";
  std::size_t kind_w = 4;
  for (const TimelineEntry& r : rows) kind_w = std::max(kind_w, r.kind.size());
  for (const TimelineEntry& r : rows) {
    os << "  t=" << fmt_time(r.t) << "  [" << r.kind << "]"
       << std::string(kind_w - r.kind.size() + 1, ' ') << r.name;
    if (!r.detail.empty()) os << "  " << r.detail;
    os << "\n";
  }

  os << "\nstate at capture:\n";
  std::size_t crashed = 0;
  std::size_t tracked = 0;
  for (const auto& w : b.workers) {
    crashed += w.crashed ? 1 : 0;
    tracked += w.tracked ? 1 : 0;
  }
  os << "  cloud: broker "
     << (b.broker != 0 ? std::to_string(b.broker) : std::string("none"))
     << ", " << b.workers.size() << " workers (" << crashed
     << " crashed-undetected, " << tracked << " detector-tracked), "
     << b.pending << " tasks queued\n";
  if (!b.tasks.empty()) {
    os << "  in-flight tasks (" << b.tasks.size() << "):\n";
    for (const auto& t : b.tasks) {
      os << "    task " << t.id << " " << t.state << " progress "
         << fmt_num(t.progress) << "/" << fmt_num(t.work) << " ckpt "
         << fmt_num(t.checkpoint);
      if (t.worker != 0) os << " on worker " << t.worker;
      if (t.trace_id != 0) os << " trace " << t.trace_id;
      os << "\n";
    }
  }
  if (!b.objects.empty()) {
    std::size_t alive = 0;
    std::size_t leased = 0;
    for (const auto& r : b.replicas) {
      alive += r.alive ? 1 : 0;
      leased += r.lease_held ? 1 : 0;
    }
    os << "  storage: " << b.objects.size() << " objects, "
       << b.replicas.size() << " replicas (" << alive << " alive, " << leased
       << " leased)\n";
  }
  if (!b.graphs.empty()) {
    std::size_t terminal = 0;
    for (const auto& g : b.graphs) terminal += g.terminal ? 1 : 0;
    std::size_t stranded = 0;
    for (const auto& n : b.dag_nodes) {
      if (n.submitted && !n.succeeded && n.live_attempts == 0) ++stranded;
    }
    os << "  dag: " << b.graphs.size() << " graphs (" << terminal
       << " terminal), " << b.dag_nodes.size() << " nodes";
    if (stranded != 0) os << ", " << stranded << " STRANDED (no live attempt)";
    os << "\n";
  }
  if (!b.open_spans.empty()) {
    os << "  open spans (work in flight; trace ids match trace.jsonl — see\n"
       << "  vcl_traceview / vcl_report):\n";
    for (const auto& s : b.open_spans) {
      os << "    [" << s.cat << "] " << s.name << " since t="
         << fmt_time(s.begin) << " trace " << s.trace_id << " span "
         << s.span_id << "\n";
    }
  }
}

void write_json(const IncidentBundle& b,
                const std::vector<TimelineEntry>& rows, std::ostream& os) {
  vcl::obs::JsonWriter w(os);
  w.begin_object();
  w.key("meta").value("vcl-incident-view-v1");
  w.key("seed").value(static_cast<std::uint64_t>(b.seed));
  w.key("trigger").value(b.trigger);
  w.key("captured_at").value(b.captured_at);
  w.key("violations").value(static_cast<std::uint64_t>(b.violations.size()));
  w.key("flight_recorded").value(b.flight_recorded);
  w.key("flight_overwritten").value(b.flight_overwritten);
  w.key("broker").value(b.broker);
  w.key("pending").value(b.pending);
  w.key("workers").value(static_cast<std::uint64_t>(b.workers.size()));
  w.key("tasks").value(static_cast<std::uint64_t>(b.tasks.size()));
  w.key("objects").value(static_cast<std::uint64_t>(b.objects.size()));
  w.key("replicas").value(static_cast<std::uint64_t>(b.replicas.size()));
  w.key("graphs").value(static_cast<std::uint64_t>(b.graphs.size()));
  w.key("timeline").begin_array();
  for (const TimelineEntry& r : rows) {
    w.begin_object();
    w.key("t").value(r.t);
    w.key("kind").value(r.kind);
    w.key("name").value(r.name);
    w.key("detail").value(r.detail);
    w.end_object();
  }
  w.end_array();
  w.key("open_spans").begin_array();
  for (const auto& s : b.open_spans) {
    w.begin_object();
    w.key("begin").value(s.begin);
    w.key("cat").value(s.cat);
    w.key("name").value(s.name);
    w.key("trace").value(s.trace_id);
    w.key("span").value(s.span_id);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 2;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;

  IncidentBundle bundle;
  std::string error;
  if (!vcl::obs::parse_incident_bundle(in, bundle, &error)) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return 1;
  }

  const std::vector<TimelineEntry> rows = build_timeline(bundle);
  if (rows.empty()) {
    std::cerr << "error: " << path
              << ": bundle holds no timeline events or violations\n";
    return 1;
  }

  if (json) {
    write_json(bundle, rows, std::cout);
  } else {
    write_text(bundle, rows, std::cout);
  }
  return 0;
}
