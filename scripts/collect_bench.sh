#!/usr/bin/env bash
# Runs the figure-reproducing benches with --json and aggregates their
# vcl-bench-v1 documents into one BENCH_summary.json:
#
#   scripts/collect_bench.sh [--jobs N] [--reps N] [build_dir] [out_file]
#
# Defaults: build_dir=build, out_file=BENCH_summary.json, jobs=1, reps
# unset (each bench keeps its single-replication default). --jobs runs that
# many bench PROCESSES concurrently; --reps is passed through to every bench
# (each then reports mean ±95% CI cells). Every document is validated
# against the shared schema (schema/bench/scalars/tables keys, rectangular
# rows, well-formed {mean, ci95, n} stat cells) before it is merged.
#
# A missing binary, a bench exiting nonzero, or a malformed document fails
# the script with a nonzero exit — CI must never ship a partial summary.
set -euo pipefail

JOBS=1
REPS=""
positional=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)
      JOBS="${2:?--jobs needs a value}"
      shift 2
      ;;
    --reps)
      REPS="${2:?--reps needs a value}"
      shift 2
      ;;
    --help|-h)
      sed -n '2,15p' "$0"
      exit 0
      ;;
    *)
      positional+=("$1")
      shift
      ;;
  esac
done
BUILD_DIR="${positional[0]:-build}"
OUT="${positional[1]:-BENCH_summary.json}"

# The paper-figure benches plus the dependability experiment: the set CI
# tracks over time. Add a bench here once it matters for a figure.
# bench_crypto_micro reports wall-clock timings; since it repeats each
# benchmark (--reps, default 5) its cells carry {mean, ci95, n} stats, so
# bench_diff.py applies CI-overlap instead of exact comparison. Across
# truly unlike hardware --skip-bench bench_crypto_micro still applies.
BENCHES=(
  bench_fig1_resource_pool
  bench_fig2_cloud_comparison
  bench_fig3_secure_pipeline
  bench_fig4_architectures
  bench_fig5_auth_protocols
  bench_dependability
  bench_file_replication
  bench_crypto_micro
  bench_dag_workloads
  bench_adversary
)

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi

# Fail fast on missing binaries BEFORE spending time running anything.
for bench in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not built" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

extra_flags=()
if [[ -n "$REPS" ]]; then
  extra_flags+=(--reps "$REPS")
fi

# Launch each bench (at most $JOBS at a time), then reap every pid and fail
# on the first nonzero exit. Benches are independent processes, so this is
# safe concurrency regardless of each bench's internal --jobs setting.
pids=()
for bench in "${BENCHES[@]}"; do
  # Poll rather than `wait -n`: polling leaves every job un-reaped so the
  # collection loop below can read each bench's own exit status.
  while [[ "$(jobs -rp | wc -l)" -ge "$JOBS" ]]; do
    sleep 0.2
  done
  echo "running $bench ..." >&2
  "$BUILD_DIR/bench/$bench" --json "$tmpdir/$bench.json" \
    "${extra_flags[@]}" > "$tmpdir/$bench.log" 2>&1 &
  pids+=("$!")
done

failed=""
for i in "${!BENCHES[@]}"; do
  if ! wait "${pids[$i]}"; then
    echo "error: ${BENCHES[$i]} exited nonzero; log follows" >&2
    cat "$tmpdir/${BENCHES[$i]}.log" >&2 || true
    failed=1
  fi
done
if [[ -n "$failed" ]]; then
  exit 1
fi

python3 - "$tmpdir" "$OUT" "${BENCHES[@]}" <<'PY'
import json
import sys

tmpdir, out = sys.argv[1], sys.argv[2]
benches = sys.argv[3:]


def check_cell(bench, title, cell):
    """A cell is a plain number, a string, a {mean, ci95, n} stat object,
    or a {p50, p99, p999, n} tail object (quantile-sketch percentiles,
    emitted at any rep count since the sketch pools observations)."""
    if isinstance(cell, dict):
        if set(cell) == {"p50", "p99", "p999", "n"}:
            if not isinstance(cell["n"], int) or cell["n"] < 1:
                sys.exit(f"error: {bench}: tail cell with n={cell['n']!r} "
                         f"in table {title!r}")
            return
        if set(cell) != {"mean", "ci95", "n"}:
            sys.exit(f"error: {bench}: bad stat cell keys {sorted(cell)} "
                     f"in table {title!r}")
        if not isinstance(cell["n"], int) or cell["n"] < 2:
            sys.exit(f"error: {bench}: stat cell with n={cell['n']!r} "
                     f"in table {title!r} (plain cells must stay plain)")
    elif not isinstance(cell, (int, float, str)):
        sys.exit(f"error: {bench}: unsupported cell {cell!r} "
                 f"in table {title!r}")


docs = []
for bench in benches:
    with open(f"{tmpdir}/{bench}.json") as f:
        doc = json.load(f)
    for key in ("schema", "bench", "scalars", "tables"):
        if key not in doc:
            sys.exit(f"error: {bench}: missing '{key}' in document")
    if doc["schema"] != "vcl-bench-v1":
        sys.exit(f"error: {bench}: unexpected schema {doc['schema']!r}")
    if doc["bench"] != bench:
        sys.exit(f"error: {bench}: document names itself {doc['bench']!r}")
    for t in doc["tables"]:
        if any(len(row) != len(t["columns"]) for row in t["rows"]):
            sys.exit(f"error: {bench}: ragged rows in table {t['title']!r}")
        for row in t["rows"]:
            for cell in row:
                check_cell(bench, t["title"], cell)
    docs.append(doc)

with open(out, "w") as f:
    json.dump({"schema": "vcl-bench-summary-v1", "benches": docs}, f, indent=1)
    f.write("\n")
print(f"wrote {out}: {len(docs)} benches, "
      f"{sum(len(d['tables']) for d in docs)} tables")
PY
