#!/usr/bin/env bash
# Runs the figure-reproducing benches with --json and aggregates their
# vcl-bench-v1 documents into one BENCH_summary.json:
#
#   scripts/collect_bench.sh [build_dir] [out_file]
#
# Defaults: build_dir=build, out_file=BENCH_summary.json. Every document is
# validated against the shared schema (schema/bench/scalars/tables keys)
# before it is merged; a bench that fails to run or emits a malformed
# document fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_summary.json}"

# The paper-figure benches plus the dependability experiment: the set CI
# tracks over time. Add a bench here once it matters for a figure.
BENCHES=(
  bench_fig1_resource_pool
  bench_fig2_cloud_comparison
  bench_fig3_secure_pipeline
  bench_fig4_architectures
  bench_fig5_auth_protocols
  bench_dependability
)

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
  echo "running $bench ..." >&2
  "$bin" --json "$tmpdir/$bench.json" > "$tmpdir/$bench.log"
done

python3 - "$tmpdir" "$OUT" "${BENCHES[@]}" <<'PY'
import json
import sys

tmpdir, out = sys.argv[1], sys.argv[2]
benches = sys.argv[3:]

docs = []
for bench in benches:
    with open(f"{tmpdir}/{bench}.json") as f:
        doc = json.load(f)
    for key in ("schema", "bench", "scalars", "tables"):
        if key not in doc:
            sys.exit(f"error: {bench}: missing '{key}' in document")
    if doc["schema"] != "vcl-bench-v1":
        sys.exit(f"error: {bench}: unexpected schema {doc['schema']!r}")
    if doc["bench"] != bench:
        sys.exit(f"error: {bench}: document names itself {doc['bench']!r}")
    for t in doc["tables"]:
        if any(len(row) != len(t["columns"]) for row in t["rows"]):
            sys.exit(f"error: {bench}: ragged rows in table {t['title']!r}")
    docs.append(doc)

with open(out, "w") as f:
    json.dump({"schema": "vcl-bench-summary-v1", "benches": docs}, f, indent=1)
    f.write("\n")
print(f"wrote {out}: {len(docs)} benches, "
      f"{sum(len(d['tables']) for d in docs)} tables")
PY
