#!/usr/bin/env python3
"""Compare two BENCH_summary.json files and flag significant shifts.

Usage:
    scripts/bench_diff.py BASELINE.json CURRENT.json
        [--rel-tol R] [--skip-bench NAME]...

Both inputs are vcl-bench-summary-v1 documents (scripts/collect_bench.sh
output). Cells are matched positionally per (bench, table title, row, col):

* Stat cells ({mean, ci95, n}, written when a bench ran with --reps > 1)
  are flagged when the 95% confidence intervals do NOT overlap:
  |mean_a - mean_b| > ci95_a + ci95_b. Overlapping CIs are treated as
  statistical noise.
* Tail cells ({p50, p99, p999, n}, quantile-sketch percentiles) carry no
  CI; each percentile is compared with --rel-tol (default 0: exact, which
  is correct because sketch merges are bit-identical per config+seed).
  A tail cell against a baseline written before tail cells existed (plain
  or stat cell there) is flagged as a cell-type change, never a KeyError.
* Plain numeric cells are compared exactly by default (single-rep runs are
  deterministic, so any drift is a real behavior change); --rel-tol R
  loosens this to a relative tolerance for machine-dependent numbers.
* String cells must match exactly (they are labels).

Structural drift (benches/tables/rows added or removed) is reported but
only counts as a failure when something present in BOTH documents moved.
--skip-bench NAME (repeatable) excludes a bench entirely — e.g. pass
`--skip-bench bench_crypto_micro` when the two summaries come from
different machines, since its wall-clock cells are hardware-dependent.

A bench present in the baseline but absent from the current summary is an
error, not a note: it usually means the bench was dropped from
collect_bench.sh (or its binary failed to build) and the regression gate
would silently stop covering it. This exits 3 so CI can distinguish
"coverage shrank" from "numbers moved". Benches only in the current
summary stay informational — new coverage is added via a baseline refresh.

Exit status: 0 = no significant differences, 1 = differences found,
2 = bad invocation/unreadable input, 3 = a baseline bench is missing
from the current summary (coverage shrank).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != "vcl-bench-summary-v1":
        sys.exit(f"error: {path}: not a vcl-bench-summary-v1 document")
    return {b["bench"]: b for b in doc["benches"]}


def is_stat(cell):
    return isinstance(cell, dict) and "mean" in cell


def is_tail(cell):
    return isinstance(cell, dict) and "p50" in cell


def fmt(cell):
    if is_stat(cell):
        return f"{cell['mean']:.6g} ±{cell['ci95']:.6g} (n={cell['n']})"
    if is_tail(cell):
        return (f"p50={cell['p50']:.6g} p99={cell['p99']:.6g} "
                f"p999={cell['p999']:.6g} (n={cell['n']})")
    return repr(cell)


def rel_close(a, b, rel_tol):
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return rel_tol > 0 and scale > 0 and abs(a - b) / scale <= rel_tol


def diff_cells(a, b, rel_tol):
    """Returns a reason string when the cells differ significantly."""
    if is_tail(a) != is_tail(b):
        # One side predates tail cells (old baseline) or dropped them:
        # structural, not a latency regression — surfaced via the caller's
        # notes path, never a crash on the missing keys.
        return ("tail cell vs non-tail cell "
                "(baseline predates sketch percentiles?)")
    if is_tail(a):
        for key in ("p50", "p99", "p999"):
            if not rel_close(a[key], b[key], rel_tol):
                return (f"{key} differs (|Δ| = {abs(a[key] - b[key]):.6g})")
        return None
    if is_stat(a) != is_stat(b):
        return "stat cell vs plain cell (reps mismatch between runs?)"
    if is_stat(a):
        delta = abs(a["mean"] - b["mean"])
        if delta > a["ci95"] + b["ci95"]:
            return f"CIs do not overlap (|Δmean| = {delta:.6g})"
        return None
    if isinstance(a, str) or isinstance(b, str):
        return None if a == b else "label changed"
    if rel_close(a, b, rel_tol):
        return None
    return f"values differ (|Δ| = {abs(a - b):.6g})"


def main():
    parser = argparse.ArgumentParser(
        description="Flag significant shifts between two bench summaries.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--rel-tol", type=float, default=0.0,
                        help="relative tolerance for plain numeric cells "
                             "(default 0: exact)")
    parser.add_argument("--skip-bench", action="append", default=[],
                        metavar="NAME",
                        help="exclude a bench (repeatable); use for "
                             "machine-dependent benches across hardware")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    for name in args.skip_bench:
        base.pop(name, None)
        cur.pop(name, None)

    flagged = []
    notes = []
    missing = sorted(set(base) - set(cur))
    for name in sorted(set(cur) - set(base)):
        notes.append(f"bench {name}: only in current")

    for name in sorted(set(base) & set(cur)):
        btables = {t["title"]: t for t in base[name]["tables"]}
        ctables = {t["title"]: t for t in cur[name]["tables"]}
        for title in sorted(set(btables) - set(ctables)):
            notes.append(f"{name}: table {title!r} only in baseline")
        for title in sorted(set(ctables) - set(btables)):
            notes.append(f"{name}: table {title!r} only in current")
        for title in sorted(set(btables) & set(ctables)):
            bt, ct = btables[title], ctables[title]
            if bt["columns"] != ct["columns"]:
                notes.append(f"{name}: table {title!r} columns changed")
                continue
            if len(bt["rows"]) != len(ct["rows"]):
                notes.append(f"{name}: table {title!r} row count "
                             f"{len(bt['rows'])} -> {len(ct['rows'])}")
            for r, (brow, crow) in enumerate(zip(bt["rows"], ct["rows"])):
                for c, (bc, cc) in enumerate(zip(brow, crow)):
                    reason = diff_cells(bc, cc, args.rel_tol)
                    if reason:
                        col = bt["columns"][c] if c < len(bt["columns"]) \
                            else f"col{c}"
                        flagged.append(
                            f"{name} / {title!r} row {r} [{col}]: "
                            f"{fmt(bc)} -> {fmt(cc)} — {reason}")

    for note in notes:
        print(f"note: {note}")
    if missing:
        for name in missing:
            print(f"error: bench {name}: present in baseline but missing "
                  f"from current summary — was it removed from "
                  f"collect_bench.sh, or did its binary fail to build?")
        print(f"\n{len(missing)} baseline bench(es) missing from the "
              f"current summary; the regression gate no longer covers "
              f"them (exit 3)")
        return 3
    if flagged:
        print(f"\n{len(flagged)} significant difference(s):")
        for f in flagged:
            print(f"  {f}")
        return 1
    print("no significant differences"
          + (f" ({len(notes)} structural note(s))" if notes else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
