#include "cluster/stability.h"

namespace vcl::cluster {

void StabilityTracker::observe(SimTime now) {
  const auto& assignments = manager_.assignments();

  // Head tenure tracking.
  for (const auto& [vid, a] : assignments) {
    const bool is_head = a.role == ClusterRole::kHead;
    auto started = head_start_.find(vid);
    if (is_head && started == head_start_.end()) {
      head_start_[vid] = now;
    } else if (!is_head && started != head_start_.end()) {
      head_lifetime_.add(now - started->second);
      head_start_.erase(started);
    }
  }
  // Vehicles that disappeared while head close their tenure.
  for (auto it = head_start_.begin(); it != head_start_.end();) {
    if (assignments.find(it->first) == assignments.end()) {
      head_lifetime_.add(now - it->second);
      it = head_start_.erase(it);
    } else {
      ++it;
    }
  }

  // Re-affiliation: member whose head changed between rounds.
  for (const auto& [vid, a] : assignments) {
    if (a.role != ClusterRole::kMember) continue;
    auto prev = prev_head_.find(vid);
    if (prev != prev_head_.end()) {
      reaffiliations_.add(prev->second != a.head.value());
    }
  }
  prev_head_.clear();
  for (const auto& [vid, a] : assignments) {
    if (a.role == ClusterRole::kMember) prev_head_[vid] = a.head.value();
  }

  // Shape metrics.
  const auto clusters = manager_.clusters();
  cluster_count_.add(static_cast<double>(clusters.size()));
  for (const auto& [head, members] : clusters) {
    cluster_size_.add(static_cast<double>(members.size()));
  }

  // Split/merge detection against the previous round's cluster map.
  std::unordered_map<std::uint64_t, std::uint64_t> cluster_of;
  std::unordered_map<std::uint64_t, std::size_t> sizes;
  for (const auto& [head, members] : clusters) {
    sizes[head.value()] = members.size();
    for (const VehicleId m : members) cluster_of[m.value()] = head.value();
  }
  if (!prev_cluster_sizes_.empty()) {
    // Merge: a previous cluster's head is gone and >= 60% of its members
    // now sit in one existing (previously present) cluster.
    for (const auto& [old_head, old_size] : prev_cluster_sizes_) {
      if (sizes.count(old_head) != 0 || old_size < 2) continue;
      std::unordered_map<std::uint64_t, std::size_t> went_to;
      std::size_t tracked = 0;
      for (const auto& [vid, head] : prev_cluster_of_) {
        if (head != old_head) continue;
        auto now_it = cluster_of.find(vid);
        if (now_it == cluster_of.end()) continue;
        ++tracked;
        ++went_to[now_it->second];
      }
      for (const auto& [dst, count] : went_to) {
        if (prev_cluster_sizes_.count(dst) != 0 && tracked > 0 &&
            count * 10 >= tracked * 6) {
          ++merges_;
          break;
        }
      }
    }
    // Split: a new cluster (head not previously a head) with >= 2 members
    // drew >= 60% of them from one surviving previous cluster.
    for (const auto& [head, size] : sizes) {
      if (prev_cluster_sizes_.count(head) != 0 || size < 2) continue;
      std::unordered_map<std::uint64_t, std::size_t> came_from;
      std::size_t tracked = 0;
      for (const auto& [vid, h] : cluster_of) {
        if (h != head) continue;
        auto prev_it = prev_cluster_of_.find(vid);
        if (prev_it == prev_cluster_of_.end()) continue;
        ++tracked;
        ++came_from[prev_it->second];
      }
      for (const auto& [src, count] : came_from) {
        if (sizes.count(src) != 0 && tracked > 0 &&
            count * 10 >= tracked * 6) {
          ++splits_;
          break;
        }
      }
    }
  }
  prev_cluster_of_ = std::move(cluster_of);
  prev_cluster_sizes_ = std::move(sizes);
}

}  // namespace vcl::cluster
