// Fuzzy-logic cluster-head scoring (after Wu et al. [41]).
//
// Three crisp inputs — velocity deviation from the neighborhood, spatial
// centrality, and degree — pass through triangular membership functions and
// a small Mamdani-style rule base to yield a head-suitability score. The
// fuzzy blend tolerates noisy single metrics better than any one of them
// alone, which is the claim E7 (clustering stability bench) checks.
#pragma once

#include "cluster/cluster_manager.h"

namespace vcl::cluster {

struct FuzzyClusteringConfig {
  double speed_dev_full = 8.0;   // m/s mapped to membership 0 ("high dev")
  double centrality_full = 250.0;  // mean neighbor distance mapped to 0
  double degree_full = 12.0;     // neighbor count mapped to membership 1
  double hysteresis = 0.1;       // scores live in [0,1]
};

// Triangular membership helpers exposed for unit tests.
double membership_low(double x, double full_at);   // 1 at 0, 0 at full_at
double membership_high(double x, double full_at);  // 0 at 0, 1 at full_at

class FuzzyClustering final : public ClusterManager {
 public:
  FuzzyClustering(net::Network& net, FuzzyClusteringConfig config = {})
      : ClusterManager(net), config_(config) {}

  [[nodiscard]] const char* name() const override { return "fuzzy"; }
  void update() override;

  // Suitability in [0,1] given crisp inputs; pure so tests can probe it.
  [[nodiscard]] double suitability(double speed_dev, double mean_dist,
                                   double degree) const;

 private:
  FuzzyClusteringConfig config_;
};

}  // namespace vcl::cluster
