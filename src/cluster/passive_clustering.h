// Passive multi-hop clustering (PMC, Zhang et al. [46]).
//
// Vehicles passively follow the most stable neighbor within N hops: each
// vehicle points at the neighbor with the highest priority (lowest relative
// mobility); chains of "following" relationships terminate at local maxima,
// which become cluster heads. Members further than `max_hops` from their
// head break off and form their own cluster.
#pragma once

#include "cluster/cluster_manager.h"

namespace vcl::cluster {

struct PassiveClusteringConfig {
  int max_hops = 2;
  double hysteresis = 0.5;
};

class PassiveClustering final : public ClusterManager {
 public:
  PassiveClustering(net::Network& net, PassiveClusteringConfig config = {})
      : ClusterManager(net), config_(config) {}

  [[nodiscard]] const char* name() const override { return "pmc"; }
  void update() override;

 private:
  PassiveClusteringConfig config_;
};

}  // namespace vcl::cluster
