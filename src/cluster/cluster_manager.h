// Cluster management base: assignment bookkeeping shared by all protocols.
//
// The paper (§IV.A.1) identifies clusters as the organizational backbone of
// v-clouds: cluster heads coordinate resource sharing, task allocation and
// result aggregation. Concrete protocols (speed-based, passive multi-hop,
// fuzzy, moving-zone) differ only in how they elect heads and affiliate
// members; the bookkeeping, queries and election helpers live here.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace vcl::cluster {

enum class ClusterRole : std::uint8_t { kFree, kHead, kMember };

struct ClusterAssignment {
  VehicleId head;          // == self for heads
  ClusterRole role = ClusterRole::kFree;
  SimTime head_since = 0;  // when `head` last changed for this vehicle
};

class ClusterManager {
 public:
  explicit ClusterManager(net::Network& net) : net_(net) {}
  virtual ~ClusterManager() = default;
  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;
  // Recomputes assignments from the current neighbor tables.
  virtual void update() = 0;

  // Schedules periodic updates (after the network's beacon rounds).
  void attach(SimTime period = 1.0);

  // --- queries ---------------------------------------------------------------
  [[nodiscard]] ClusterRole role(VehicleId v) const;
  // Head of v's cluster (== v when head; invalid id when free/unknown).
  [[nodiscard]] VehicleId head_of(VehicleId v) const;
  [[nodiscard]] SimTime head_since(VehicleId v) const;
  [[nodiscard]] std::vector<VehicleId> members_of(VehicleId head) const;
  // All clusters as (head, members-including-head).
  [[nodiscard]] std::vector<std::pair<VehicleId, std::vector<VehicleId>>>
  clusters() const;
  [[nodiscard]] const std::unordered_map<std::uint64_t, ClusterAssignment>&
  assignments() const {
    return assignments_;
  }

  [[nodiscard]] net::Network& network() { return net_; }

 protected:
  // Score-based election shared by several protocols: local score maxima
  // become heads; other vehicles affiliate with the best-scoring head heard
  // in their neighbor table. `hysteresis` biases the current head's score so
  // marginal score changes do not reshuffle the cluster every round.
  void elect_by_score(const std::unordered_map<std::uint64_t, double>& scores,
                      double hysteresis);

  // Records an assignment, preserving `head_since` when the head is
  // unchanged.
  void assign(VehicleId v, VehicleId head, ClusterRole role);
  // Drops assignments for vehicles that left the simulation.
  void prune_departed();

  net::Network& net_;
  std::unordered_map<std::uint64_t, ClusterAssignment> assignments_;
};

}  // namespace vcl::cluster
