#include "cluster/cluster_manager.h"

#include <algorithm>

namespace vcl::cluster {

void ClusterManager::attach(SimTime period) {
  net_.simulator().schedule_every(period, [this] { update(); }, -1.0,
                                  "cluster.update");
}

ClusterRole ClusterManager::role(VehicleId v) const {
  auto it = assignments_.find(v.value());
  return it == assignments_.end() ? ClusterRole::kFree : it->second.role;
}

VehicleId ClusterManager::head_of(VehicleId v) const {
  auto it = assignments_.find(v.value());
  if (it == assignments_.end() || it->second.role == ClusterRole::kFree) {
    return VehicleId{};
  }
  return it->second.head;
}

SimTime ClusterManager::head_since(VehicleId v) const {
  auto it = assignments_.find(v.value());
  return it == assignments_.end() ? 0.0 : it->second.head_since;
}

std::vector<VehicleId> ClusterManager::members_of(VehicleId head) const {
  std::vector<VehicleId> out;
  for (const auto& [vid, a] : assignments_) {
    if (a.role != ClusterRole::kFree && a.head == head) {
      out.push_back(VehicleId{vid});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<VehicleId, std::vector<VehicleId>>>
ClusterManager::clusters() const {
  std::vector<std::pair<VehicleId, std::vector<VehicleId>>> out;
  for (const auto& [vid, a] : assignments_) {
    if (a.role == ClusterRole::kHead) {
      out.emplace_back(VehicleId{vid}, members_of(VehicleId{vid}));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ClusterManager::assign(VehicleId v, VehicleId head, ClusterRole role) {
  auto& a = assignments_[v.value()];
  if (!(a.head == head) || a.role == ClusterRole::kFree) {
    a.head_since = net_.simulator().now();
  }
  a.head = head;
  a.role = role;
}

void ClusterManager::prune_departed() {
  for (auto it = assignments_.begin(); it != assignments_.end();) {
    if (net_.traffic().find(VehicleId{it->first}) == nullptr) {
      it = assignments_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterManager::elect_by_score(
    const std::unordered_map<std::uint64_t, double>& scores,
    double hysteresis) {
  prune_departed();
  // Snapshot incumbent-biased scores BEFORE any assignment changes, so the
  // election is independent of vehicle iteration order.
  std::unordered_map<std::uint64_t, double> final_scores;
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    auto it = scores.find(vid);
    double s = it == scores.end() ? 0.0 : it->second;
    auto cur = assignments_.find(vid);
    if (cur != assignments_.end() && cur->second.role == ClusterRole::kHead) {
      s += hysteresis;  // sticky headship
    }
    final_scores[vid] = s;
  }
  auto biased = [&](VehicleId v) {
    auto it = final_scores.find(v.value());
    return it == final_scores.end() ? 0.0 : it->second;
  };

  // Pass 1: a vehicle declares itself head when no neighbor outscores it.
  std::vector<VehicleId> heads;
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    const double own = biased(v.id);
    bool is_max = true;
    for (const net::NeighborEntry& n : net_.neighbors(v.id)) {
      const double ns = biased(n.id);
      if (ns > own || (ns == own && n.id.value() < v.id.value())) {
        is_max = false;
        break;
      }
    }
    if (is_max) {
      assign(v.id, v.id, ClusterRole::kHead);
      heads.push_back(v.id);
    }
  }

  // Pass 2: everyone else joins the best head in its neighbor table.
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    if (role(v.id) == ClusterRole::kHead &&
        std::find(heads.begin(), heads.end(), v.id) != heads.end()) {
      continue;
    }
    VehicleId best_head;
    double best_score = -1e300;
    for (const net::NeighborEntry& n : net_.neighbors(v.id)) {
      if (std::find(heads.begin(), heads.end(), n.id) == heads.end()) continue;
      const double s = biased(n.id);
      if (s > best_score) {
        best_score = s;
        best_head = n.id;
      }
    }
    if (best_head.valid()) {
      assign(v.id, best_head, ClusterRole::kMember);
    } else {
      assign(v.id, v.id, ClusterRole::kHead);  // isolated: own cluster
    }
  }
}

}  // namespace vcl::cluster
