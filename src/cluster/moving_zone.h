// Moving-zone grouping (MoZo, Lin et al. [22]).
//
// Vehicles with similar velocity vectors that can hear each other form a
// *moving zone*; the member closest to the zone's kinematic average becomes
// the captain and maintains the membership table. Zones are rebuilt as
// connected components of the "similar velocity AND in radio range"
// relation — zones naturally merge and split as traffic evolves, which is
// exactly the behaviour MoZo exploits for infrastructure-free routing.
#pragma once

#include "cluster/cluster_manager.h"

namespace vcl::cluster {

struct MovingZoneConfig {
  double max_speed_diff = 6.0;    // m/s
  double max_angle_rad = 0.6;     // heading difference (~34 degrees)
  double captain_hysteresis = 30.0;  // meters of centroid-distance slack
};

class MovingZone final : public ClusterManager {
 public:
  MovingZone(net::Network& net, MovingZoneConfig config = {})
      : ClusterManager(net), config_(config) {}

  [[nodiscard]] const char* name() const override { return "mozo"; }
  void update() override;

  // Velocity-compatibility predicate (exposed for tests).
  [[nodiscard]] bool compatible(geo::Vec2 vel_a, geo::Vec2 vel_b) const;

 private:
  MovingZoneConfig config_;
};

}  // namespace vcl::cluster
