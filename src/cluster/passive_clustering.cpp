#include "cluster/passive_clustering.h"

namespace vcl::cluster {

void PassiveClustering::update() {
  prune_departed();
  const auto& vehicles = net_.traffic().vehicles();

  // Priority: stability = negative mean relative speed, with the incumbent
  // hysteresis and id as the final tiebreaker.
  std::unordered_map<std::uint64_t, double> priority;
  for (const auto& [vid, v] : vehicles) {
    const auto& neighbors = net_.neighbors(v.id);
    double rel = 0.0;
    for (const net::NeighborEntry& n : neighbors) rel += (v.vel - n.vel).norm();
    if (!neighbors.empty()) rel /= static_cast<double>(neighbors.size());
    double p = -rel;
    auto cur = assignments_.find(vid);
    if (cur != assignments_.end() && cur->second.role == ClusterRole::kHead) {
      p += config_.hysteresis;
    }
    priority[vid] = p;
  }

  // Neighbor-following: follow the best-priority neighbor that beats one's
  // own priority; local maxima follow themselves.
  std::unordered_map<std::uint64_t, VehicleId> follows;
  for (const auto& [vid, v] : vehicles) {
    VehicleId target = v.id;
    double best = priority[vid];
    for (const net::NeighborEntry& n : net_.neighbors(v.id)) {
      auto it = priority.find(n.id.value());
      if (it == priority.end()) continue;
      if (it->second > best ||
          (it->second == best && n.id.value() < target.value())) {
        best = it->second;
        target = n.id;
      }
    }
    follows[vid] = target;
  }

  // Resolve chains up to max_hops; vehicles whose chain does not reach a
  // fixed point within the bound become their own head.
  for (const auto& [vid, v] : vehicles) {
    VehicleId at = v.id;
    bool reached = false;
    for (int hop = 0; hop <= config_.max_hops; ++hop) {
      const VehicleId next = follows[at.value()];
      if (next == at) {
        reached = true;
        break;
      }
      at = next;
    }
    if (reached && !(at == v.id)) {
      assign(v.id, at, ClusterRole::kMember);
    } else if (reached) {
      assign(v.id, v.id, ClusterRole::kHead);
    } else {
      assign(v.id, v.id, ClusterRole::kHead);  // chain too long: break off
    }
  }

  // Heads that ended up following someone inside the bound are members; make
  // sure every member's head is actually marked head.
  std::vector<VehicleId> promote;
  for (const auto& [vid, a] : assignments_) {
    if (a.role == ClusterRole::kMember) {
      auto head_it = assignments_.find(a.head.value());
      if (head_it != assignments_.end() &&
          head_it->second.role != ClusterRole::kHead) {
        promote.push_back(a.head);
      }
    }
  }
  for (const VehicleId h : promote) assign(h, h, ClusterRole::kHead);
}

}  // namespace vcl::cluster
