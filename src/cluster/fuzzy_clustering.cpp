#include "cluster/fuzzy_clustering.h"

#include <algorithm>

namespace vcl::cluster {

double membership_low(double x, double full_at) {
  if (full_at <= 0.0) return 0.0;
  return std::clamp(1.0 - x / full_at, 0.0, 1.0);
}

double membership_high(double x, double full_at) {
  if (full_at <= 0.0) return 1.0;
  return std::clamp(x / full_at, 0.0, 1.0);
}

double FuzzyClustering::suitability(double speed_dev, double mean_dist,
                                    double degree) const {
  const double stable = membership_low(speed_dev, config_.speed_dev_full);
  const double central = membership_low(mean_dist, config_.centrality_full);
  const double connected = membership_high(degree, config_.degree_full);

  // Rule base (min = AND, max = OR aggregation):
  //  R1: stable AND central            -> strongly suitable
  //  R2: stable AND connected          -> suitable
  //  R3: NOT stable                    -> unsuitable (suppresses the rest)
  const double r1 = std::min(stable, central);
  const double r2 = std::min(stable, connected);
  const double unsuitable = 1.0 - stable;
  const double suitable = std::max(r1, r2);
  // Centroid-style defuzzification over {suitable:1, unsuitable:0}.
  const double denom = suitable + unsuitable;
  return denom > 0.0 ? suitable / denom : 0.0;
}

void FuzzyClustering::update() {
  std::unordered_map<std::uint64_t, double> scores;
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    const auto& neighbors = net_.neighbors(v.id);
    double rel_speed = 0.0;
    double mean_dist = 0.0;
    for (const net::NeighborEntry& n : neighbors) {
      rel_speed += (v.vel - n.vel).norm();
      mean_dist += geo::distance(v.pos, n.pos);
    }
    if (!neighbors.empty()) {
      rel_speed /= static_cast<double>(neighbors.size());
      mean_dist /= static_cast<double>(neighbors.size());
    }
    scores[vid] = suitability(rel_speed, mean_dist,
                              static_cast<double>(neighbors.size()));
  }
  elect_by_score(scores, config_.hysteresis);
}

}  // namespace vcl::cluster
