#include "cluster/speed_clustering.h"

namespace vcl::cluster {

void SpeedClustering::update() {
  std::unordered_map<std::uint64_t, double> scores;
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    const auto& neighbors = net_.neighbors(v.id);
    double rel_speed = 0.0;
    for (const net::NeighborEntry& n : neighbors) {
      rel_speed += (v.vel - n.vel).norm();
    }
    if (!neighbors.empty()) {
      rel_speed /= static_cast<double>(neighbors.size());
    }
    scores[vid] = -config_.speed_weight * rel_speed +
                  config_.degree_weight * static_cast<double>(neighbors.size());
  }
  elect_by_score(scores, config_.hysteresis);
}

}  // namespace vcl::cluster
