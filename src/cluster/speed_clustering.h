// Mobility-based cluster-head election (MOBIC-style baseline).
//
// A vehicle's suitability as head is high when its velocity matches its
// neighborhood (low relative mobility) and it hears many neighbors. This is
// the classical baseline the survey's clustering papers improve upon.
#pragma once

#include "cluster/cluster_manager.h"

namespace vcl::cluster {

struct SpeedClusteringConfig {
  double speed_weight = 1.0;     // penalty per m/s of relative speed
  double degree_weight = 0.2;    // reward per heard neighbor
  double hysteresis = 0.5;       // incumbent-head score bonus
};

class SpeedClustering final : public ClusterManager {
 public:
  SpeedClustering(net::Network& net, SpeedClusteringConfig config = {})
      : ClusterManager(net), config_(config) {}

  [[nodiscard]] const char* name() const override { return "speed"; }
  void update() override;

 private:
  SpeedClusteringConfig config_;
};

}  // namespace vcl::cluster
