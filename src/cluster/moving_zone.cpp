#include "cluster/moving_zone.h"

#include <algorithm>

namespace vcl::cluster {

bool MovingZone::compatible(geo::Vec2 vel_a, geo::Vec2 vel_b) const {
  // Parked/near-stationary vehicles group by proximity alone.
  if (vel_a.norm() < 0.5 && vel_b.norm() < 0.5) return true;
  if (std::abs(vel_a.norm() - vel_b.norm()) > config_.max_speed_diff) {
    return false;
  }
  return geo::angle_between(vel_a, vel_b) <= config_.max_angle_rad;
}

void MovingZone::update() {
  prune_departed();
  const auto& vehicles = net_.traffic().vehicles();

  // Union-find over the compatibility graph from neighbor tables.
  std::unordered_map<std::uint64_t, std::uint64_t> parent;
  std::function<std::uint64_t(std::uint64_t)> find =
      [&](std::uint64_t x) -> std::uint64_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [vid, v] : vehicles) parent[vid] = vid;
  for (const auto& [vid, v] : vehicles) {
    for (const net::NeighborEntry& n : net_.neighbors(v.id)) {
      if (parent.find(n.id.value()) == parent.end()) continue;
      if (!compatible(v.vel, n.vel)) continue;
      const std::uint64_t ra = find(vid);
      const std::uint64_t rb = find(n.id.value());
      if (ra != rb) parent[ra] = rb;
    }
  }

  // Gather zones.
  std::unordered_map<std::uint64_t, std::vector<VehicleId>> zones;
  for (const auto& [vid, v] : vehicles) {
    zones[find(vid)].push_back(v.id);
  }

  // Elect captains: member nearest the zone centroid, with hysteresis for
  // the incumbent captain.
  for (auto& [root, members] : zones) {
    geo::Vec2 centroid;
    for (const VehicleId m : members) {
      centroid += vehicles.at(m.value()).pos;
    }
    centroid = centroid / static_cast<double>(members.size());

    VehicleId captain;
    double best = 1e300;
    for (const VehicleId m : members) {
      double d = geo::distance(vehicles.at(m.value()).pos, centroid);
      auto cur = assignments_.find(m.value());
      if (cur != assignments_.end() &&
          cur->second.role == ClusterRole::kHead) {
        d -= config_.captain_hysteresis;
      }
      if (d < best || (d == best && m.value() < captain.value())) {
        best = d;
        captain = m;
      }
    }
    for (const VehicleId m : members) {
      assign(m, captain,
             m == captain ? ClusterRole::kHead : ClusterRole::kMember);
    }
  }
}

}  // namespace vcl::cluster
