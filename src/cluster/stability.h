// Cluster stability metrics (experiment E7).
//
// Observes a ClusterManager once per round and accumulates the standard
// stability indicators from the VANET clustering literature: cluster-head
// lifetime, member re-affiliation rate, and cluster count/size.
#pragma once

#include <unordered_map>

#include "cluster/cluster_manager.h"
#include "util/stats.h"

namespace vcl::cluster {

class StabilityTracker {
 public:
  explicit StabilityTracker(const ClusterManager& manager)
      : manager_(manager) {}

  // Call once per clustering round (after manager.update()).
  void observe(SimTime now);

  // Mean time a vehicle keeps the head role, seconds (completed tenures).
  [[nodiscard]] const Accumulator& head_lifetime() const {
    return head_lifetime_;
  }
  // Fraction of member observations where the member's head changed since
  // the previous round.
  [[nodiscard]] double reaffiliation_rate() const {
    return reaffiliations_.value();
  }
  [[nodiscard]] const Accumulator& cluster_count() const {
    return cluster_count_;
  }
  [[nodiscard]] const Accumulator& cluster_size() const {
    return cluster_size_;
  }
  // Group-dynamics events (paper §V.A "splitting, merging, re-allocation of
  // the groups"): a merge is a vanished cluster whose members predominantly
  // moved under one surviving head; a split is a new cluster drawing most
  // of its members from one surviving cluster.
  [[nodiscard]] std::size_t merges() const { return merges_; }
  [[nodiscard]] std::size_t splits() const { return splits_; }

 private:
  const ClusterManager& manager_;
  std::unordered_map<std::uint64_t, std::uint64_t> prev_head_;
  std::unordered_map<std::uint64_t, std::uint64_t> prev_cluster_of_;
  std::unordered_map<std::uint64_t, std::size_t> prev_cluster_sizes_;
  std::unordered_map<std::uint64_t, SimTime> head_start_;
  Accumulator head_lifetime_;
  Ratio reaffiliations_;
  Accumulator cluster_count_{/*keep_samples=*/false};
  Accumulator cluster_size_{/*keep_samples=*/false};
  std::size_t merges_ = 0;
  std::size_t splits_ = 0;
};

}  // namespace vcl::cluster
