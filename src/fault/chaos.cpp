#include "fault/chaos.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/json.h"

namespace vcl::fault {

namespace {

// Homogeneous Poisson storm arrivals over [0, horizon].
std::vector<SimTime> storm_arrivals(double rate, SimTime horizon, Rng& rng) {
  std::vector<SimTime> times;
  if (rate <= 0.0 || horizon <= 0.0) return times;
  SimTime t = rng.exponential(rate);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate);
  }
  return times;
}

}  // namespace

std::string validate(const ChaosConfig& config) {
  if (std::string problem = validate(config.base); !problem.empty()) {
    return problem;
  }
  const StormConfig& s = config.storms;
  if (s.burst_rate < 0.0) return "burst_rate is negative";
  if (s.burst_rate > 0.0) {
    if (s.burst_size == 0) return "burst_size is zero";
    if (s.burst_window < 0.0) return "burst_window is negative";
  }
  if (s.cascade_rate < 0.0) return "cascade_rate is negative";
  if (s.cascade_rate > 0.0) {
    if (s.cascade_blackout_duration <= 0.0) {
      return "cascade_blackout_duration must be positive";
    }
    if (s.cascade_broker_kills < 1) return "cascade_broker_kills must be >= 1";
    // Cascade blackout centers draw from the base box even when the base
    // blackout rate is zero, so the box must be usable on its own.
    if (config.base.blackout_lo.x > config.base.blackout_hi.x ||
        config.base.blackout_lo.y > config.base.blackout_hi.y) {
      return "blackout box is inverted (lo > hi)";
    }
    if (config.base.blackout_lo.x == 0.0 && config.base.blackout_lo.y == 0.0 &&
        config.base.blackout_hi.x == 0.0 &&
        config.base.blackout_hi.y == 0.0) {
      return "cascade_rate > 0 but the blackout box was left at its "
             "all-zero default (set it from the road bounding box)";
    }
    if (config.base.blackout_radius < 0.0) return "blackout_radius is negative";
  }
  if (s.flap_rate < 0.0) return "flap_rate is negative";
  if (s.flap_rate > 0.0) {
    if (s.flap_cycles < 1) return "flap_cycles must be >= 1";
    if (s.flap_period <= 0.0) return "flap_period must be positive";
    if (s.flap_outage <= 0.0) return "flap_outage must be positive";
  }
  if (s.dag_rate < 0.0) return "dag_rate is negative";
  if (s.dag_rate > 0.0) {
    if (s.dag_window <= 0.0) return "dag_window must be positive";
    if (s.dag_crashes == 0) return "dag_crashes must be >= 1";
  }
  if (s.sybil_rate < 0.0) return "sybil_rate is negative";
  if (s.sybil_rate > 0.0) {
    if (s.sybil_blackout_duration <= 0.0) {
      return "sybil_blackout_duration must be positive";
    }
    if (s.sybil_count == 0) return "sybil_count must be >= 1";
    // Sybil blackout centers draw from the base box, same as cascades.
    if (config.base.blackout_lo.x > config.base.blackout_hi.x ||
        config.base.blackout_lo.y > config.base.blackout_hi.y) {
      return "blackout box is inverted (lo > hi)";
    }
    if (config.base.blackout_lo.x == 0.0 && config.base.blackout_lo.y == 0.0 &&
        config.base.blackout_hi.x == 0.0 &&
        config.base.blackout_hi.y == 0.0) {
      return "sybil_rate > 0 but the blackout box was left at its "
             "all-zero default (set it from the road bounding box)";
    }
    if (config.base.blackout_radius < 0.0) return "blackout_radius is negative";
  }
  if (s.revoke_rate < 0.0) return "revoke_rate is negative";
  if (s.revoke_rate > 0.0) {
    if (s.revoke_crl_visible < 0.0) return "revoke_crl_visible is negative";
    if (s.revoke_crl_horizon < 0.0) return "revoke_crl_horizon is negative";
  }
  if (s.replay_rate < 0.0) return "replay_rate is negative";
  if (s.replay_rate > 0.0) {
    if (s.replay_window <= 0.0) return "replay_window must be positive";
    if (s.replay_count == 0) return "replay_count must be >= 1";
    if (s.replay_age <= 0.0) return "replay_age must be positive";
  }
  if (s.storage_rate < 0.0) return "storage_rate is negative";
  if (s.storage_rate > 0.0) {
    if (s.storage_blackout_duration <= 0.0) {
      return "storage_blackout_duration must be positive";
    }
    if (s.storage_crashes == 0) return "storage_crashes must be >= 1";
    // Storage blackout centers draw from the base box, same as cascades.
    if (config.base.blackout_lo.x > config.base.blackout_hi.x ||
        config.base.blackout_lo.y > config.base.blackout_hi.y) {
      return "blackout box is inverted (lo > hi)";
    }
    if (config.base.blackout_lo.x == 0.0 && config.base.blackout_lo.y == 0.0 &&
        config.base.blackout_hi.x == 0.0 &&
        config.base.blackout_hi.y == 0.0) {
      return "storage_rate > 0 but the blackout box was left at its "
             "all-zero default (set it from the road bounding box)";
    }
    if (config.base.blackout_radius < 0.0) return "blackout_radius is negative";
  }
  return {};
}

ChaosPlanner::ChaosPlanner(ChaosConfig config) : config_(std::move(config)) {
  if (const std::string problem = validate(config_); !problem.empty()) {
    throw std::invalid_argument("ChaosConfig: " + problem);
  }
}

FaultPlan ChaosPlanner::plan(std::uint64_t seed) const {
  const Rng root(seed);
  const SimTime horizon = config_.base.horizon;
  const StormConfig& storms = config_.storms;

  // The background and each storm shape consume independent forked streams:
  // turning a storm knob never reshuffles the others' schedules.
  Rng base_rng = root.fork(1);
  FaultPlan plan = make_fault_plan(config_.base, base_rng);

  Rng burst_rng = root.fork(2);
  for (const SimTime t :
       storm_arrivals(storms.burst_rate, horizon, burst_rng)) {
    // Poisson scatter around the configured size, never below one crash.
    const std::size_t size =
        1 + static_cast<std::size_t>(burst_rng.poisson(
                storms.burst_size > 1
                    ? static_cast<double>(storms.burst_size - 1)
                    : 0.0));
    for (std::size_t i = 0; i < size; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kVehicleCrash;
      e.at = t + burst_rng.uniform(0.0, std::max(storms.burst_window, 1e-9));
      plan.push_back(e);  // victim picked from the live pool at fire time
    }
  }

  Rng cascade_rng = root.fork(3);
  for (const SimTime t :
       storm_arrivals(storms.cascade_rate, horizon, cascade_rng)) {
    FaultEvent blackout;
    blackout.kind = FaultKind::kRadioBlackout;
    blackout.at = t;
    blackout.center = {cascade_rng.uniform(config_.base.blackout_lo.x,
                                           config_.base.blackout_hi.x),
                       cascade_rng.uniform(config_.base.blackout_lo.y,
                                           config_.base.blackout_hi.y)};
    blackout.radius = config_.base.blackout_radius;
    blackout.duration = storms.cascade_blackout_duration;
    plan.push_back(blackout);
    // Broker kills spaced strictly INSIDE the blackout window: the cloud
    // loses its broker while the heartbeats that would elect a successor's
    // worldview are already being eaten by the channel.
    for (int i = 1; i <= storms.cascade_broker_kills; ++i) {
      FaultEvent kill;
      kill.kind = FaultKind::kBrokerCrash;
      kill.at = t + blackout.duration * static_cast<double>(i) /
                        static_cast<double>(storms.cascade_broker_kills + 1);
      plan.push_back(kill);
    }
  }

  Rng flap_rng = root.fork(4);
  for (const SimTime t :
       storm_arrivals(storms.flap_rate, horizon, flap_rng)) {
    // One explicit victim for the whole storm; the injector maps the id
    // into the deployed range (modulo), so every cycle hits the same RSU.
    const RsuId victim{static_cast<std::uint64_t>(
        flap_rng.uniform_int(0, 1024))};
    for (int i = 0; i < storms.flap_cycles; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kRsuOutage;
      e.at = t + storms.flap_period * static_cast<double>(i);
      e.rsu = victim;
      e.repair_after = storms.flap_outage;
      plan.push_back(e);
    }
  }

  Rng storage_rng = root.fork(5);
  for (const SimTime t :
       storm_arrivals(storms.storage_rate, horizon, storage_rng)) {
    FaultEvent blackout;
    blackout.kind = FaultKind::kRadioBlackout;
    blackout.at = t;
    blackout.center = {storage_rng.uniform(config_.base.blackout_lo.x,
                                           config_.base.blackout_hi.x),
                       storage_rng.uniform(config_.base.blackout_lo.y,
                                           config_.base.blackout_hi.y)};
    blackout.radius = config_.base.blackout_radius;
    blackout.duration = storms.storage_blackout_duration;
    plan.push_back(blackout);
    // One tag for the whole storm: every crash resolves against the SAME
    // object's live holders, so the storm can eat a write quorum of one
    // object while the blackout hides its lease renewals.
    const std::uint64_t tag =
        1 + static_cast<std::uint64_t>(storage_rng.uniform_int(0, 1 << 20));
    for (std::size_t i = 1; i <= storms.storage_crashes; ++i) {
      FaultEvent kill;
      kill.kind = FaultKind::kVehicleCrash;
      kill.at = t + blackout.duration * static_cast<double>(i) /
                        static_cast<double>(storms.storage_crashes + 1);
      kill.storage_tag = tag;
      plan.push_back(kill);
    }
  }

  Rng dag_rng = root.fork(6);
  for (const SimTime t : storm_arrivals(storms.dag_rate, horizon, dag_rng)) {
    // One tag for the whole storm: every crash re-resolves against the SAME
    // DAG run, so the storm chases that run's critical path from host to
    // host as the scheduler re-places the node after each kill.
    const std::uint64_t tag =
        1 + static_cast<std::uint64_t>(dag_rng.uniform_int(0, 1 << 20));
    for (std::size_t i = 0; i < storms.dag_crashes; ++i) {
      FaultEvent kill;
      kill.kind = FaultKind::kVehicleCrash;
      kill.at = t + storms.dag_window * static_cast<double>(i) /
                        static_cast<double>(storms.dag_crashes);
      kill.dag_tag = tag;
      plan.push_back(kill);
    }
  }

  // Attack storms. Each compound storm stamps ONE fresh shrink group on its
  // events so the ddmin shrinker keeps causal pairs (revoke ↔ delivery,
  // blackout ↔ nested joins) atomic. Benign storms stay ungrouped — their
  // plans (and serialized repro files) are byte-identical to before.
  std::uint64_t next_group = 1;

  Rng sybil_rng = root.fork(7);
  for (const SimTime t :
       storm_arrivals(storms.sybil_rate, horizon, sybil_rng)) {
    const std::uint64_t group = next_group++;
    FaultEvent blackout;
    blackout.kind = FaultKind::kRadioBlackout;
    blackout.at = t;
    blackout.center = {sybil_rng.uniform(config_.base.blackout_lo.x,
                                         config_.base.blackout_hi.x),
                       sybil_rng.uniform(config_.base.blackout_lo.y,
                                         config_.base.blackout_hi.y)};
    blackout.radius = config_.base.blackout_radius;
    blackout.duration = storms.sybil_blackout_duration;
    blackout.group = group;
    plan.push_back(blackout);
    // Joins spaced strictly INSIDE the blackout window: the fabricated
    // identities knock exactly while the channel is eating the beacons that
    // would expose them. Distinct tags = distinct fabricated identities.
    for (std::size_t i = 1; i <= storms.sybil_count; ++i) {
      FaultEvent join;
      join.kind = FaultKind::kSybilJoin;
      join.at = t + blackout.duration * static_cast<double>(i) /
                        static_cast<double>(storms.sybil_count + 1);
      join.attack_tag =
          1 + static_cast<std::uint64_t>(sybil_rng.uniform_int(0, 1 << 20));
      join.group = group;
      plan.push_back(join);
    }
  }

  Rng revoke_rng = root.fork(8);
  for (const SimTime t :
       storm_arrivals(storms.revoke_rate, horizon, revoke_rng)) {
    const std::uint64_t group = next_group++;
    // The victim is resolved at fire time (a busy member, so held work is
    // at stake); the delayed delivery finds it again through the group.
    FaultEvent revoke;
    revoke.kind = FaultKind::kRevokeIdentity;
    revoke.at = t;
    revoke.group = group;
    plan.push_back(revoke);
    FaultEvent deliver;
    deliver.kind = FaultKind::kCrlDeliver;
    deliver.at = t + storms.revoke_crl_visible;
    deliver.crl_horizon_after = storms.revoke_crl_horizon;
    deliver.group = group;
    plan.push_back(deliver);
  }

  Rng replay_rng = root.fork(9);
  for (const SimTime t :
       storm_arrivals(storms.replay_rate, horizon, replay_rng)) {
    const std::uint64_t group = next_group++;
    for (std::size_t i = 0; i < storms.replay_count; ++i) {
      FaultEvent inject;
      inject.kind = FaultKind::kReplayInject;
      inject.at = t + storms.replay_window * static_cast<double>(i) /
                          static_cast<double>(storms.replay_count);
      inject.attack_tag =
          1 + static_cast<std::uint64_t>(replay_rng.uniform_int(0, 1 << 20));
      inject.replay_age = storms.replay_age;
      inject.group = group;
      plan.push_back(inject);
    }
  }

  sort_fault_plan(plan);
  return plan;
}

// ---- plan (de)serialization -------------------------------------------------

double FaultPlanMeta::get(const std::string& key, double fallback) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  return fallback;
}

void FaultPlanMeta::set(const std::string& key, double value) {
  for (auto& [k, v] : extra) {
    if (k == key) {
      v = value;
      return;
    }
  }
  extra.emplace_back(key, value);
}

namespace {

// Event times/durations must survive write -> parse bit-exactly (a repro
// file IS the episode), so they bypass json_number's lossy %.12g.
std::string exact_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void write_fault_plan_jsonl(const FaultPlan& plan, const FaultPlanMeta& meta,
                            std::ostream& os) {
  {
    obs::JsonWriter w(os);
    w.begin_object()
        .key("meta").value("vcl-fault-plan-v1")
        .key("seed").value(static_cast<std::uint64_t>(meta.seed))
        .key("events").value(static_cast<std::uint64_t>(plan.size()));
    for (const auto& [key, value] : meta.extra) {
      w.key(key).value_raw(exact_number(value));
    }
    w.end_object();
  }
  os << "\n";
  for (const FaultEvent& e : plan) {
    obs::JsonWriter w(os);
    w.begin_object()
        .key("kind").value(to_string(e.kind))
        .key("at").value_raw(exact_number(e.at));
    switch (e.kind) {
      case FaultKind::kVehicleCrash:
        if (e.vehicle.valid()) {
          w.key("vehicle").value(static_cast<std::uint64_t>(e.vehicle.value()));
        }
        if (e.storage_tag != 0) {
          w.key("storage_tag").value(static_cast<std::uint64_t>(e.storage_tag));
        }
        if (e.dag_tag != 0) {
          w.key("dag_tag").value(static_cast<std::uint64_t>(e.dag_tag));
        }
        break;
      case FaultKind::kBrokerCrash:
        break;
      case FaultKind::kRsuOutage:
        if (e.rsu.valid()) {
          w.key("rsu").value(static_cast<std::uint64_t>(e.rsu.value()));
        }
        w.key("repair_after").value_raw(exact_number(e.repair_after));
        break;
      case FaultKind::kRadioBlackout:
        w.key("x").value_raw(exact_number(e.center.x));
        w.key("y").value_raw(exact_number(e.center.y));
        w.key("radius").value_raw(exact_number(e.radius));
        w.key("duration").value_raw(exact_number(e.duration));
        break;
      case FaultKind::kSybilJoin:
        w.key("attack_tag").value(static_cast<std::uint64_t>(e.attack_tag));
        break;
      case FaultKind::kRevokeIdentity:
        if (e.vehicle.valid()) {
          w.key("vehicle").value(static_cast<std::uint64_t>(e.vehicle.value()));
        }
        break;
      case FaultKind::kCrlDeliver:
        w.key("horizon_after").value_raw(exact_number(e.crl_horizon_after));
        break;
      case FaultKind::kReplayInject:
        w.key("attack_tag").value(static_cast<std::uint64_t>(e.attack_tag));
        w.key("age").value_raw(exact_number(e.replay_age));
        break;
    }
    if (e.group != 0) {
      w.key("group").value(static_cast<std::uint64_t>(e.group));
    }
    w.end_object();
    os << "\n";
  }
}

namespace {

bool parse_kind(const std::string& name, FaultKind& out) {
  if (name == "vehicle_crash") out = FaultKind::kVehicleCrash;
  else if (name == "broker_crash") out = FaultKind::kBrokerCrash;
  else if (name == "rsu_outage") out = FaultKind::kRsuOutage;
  else if (name == "radio_blackout") out = FaultKind::kRadioBlackout;
  else if (name == "sybil_join") out = FaultKind::kSybilJoin;
  else if (name == "revoke_identity") out = FaultKind::kRevokeIdentity;
  else if (name == "crl_deliver") out = FaultKind::kCrlDeliver;
  else if (name == "replay_inject") out = FaultKind::kReplayInject;
  else return false;
  return true;
}

// Flat single-line JSON object scanner (same shape trace_analysis parses):
// string or numeric values only, no nesting.
bool parse_flat_object(const std::string& line,
                       std::vector<std::pair<std::string, std::string>>& strs,
                       std::vector<std::pair<std::string, double>>& nums,
                       std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };
  const auto eat = [&](char c) {
    skip_ws();
    if (pos < line.size() && line[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  const auto read_string = [&](std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < line.size()) {
      const char c = line[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < line.size()) out += line[pos++];
      else out += c;
    }
    return false;
  };
  if (!eat('{')) return fail("line does not start with '{'");
  bool first = true;
  while (true) {
    if (eat('}')) return true;
    if (!first && !eat(',')) return fail("expected ',' between members");
    first = false;
    std::string key;
    if (!read_string(key) || !eat(':')) return fail("malformed key");
    skip_ws();
    if (pos < line.size() && line[pos] == '"') {
      std::string value;
      if (!read_string(value)) return fail("unterminated string value");
      strs.emplace_back(std::move(key), std::move(value));
      continue;
    }
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    const double num = std::strtod(start, &end);
    if (end == start) return fail("malformed value");
    pos += static_cast<std::size_t>(end - start);
    nums.emplace_back(std::move(key), num);
  }
}

}  // namespace

bool parse_fault_plan_jsonl(std::istream& is, FaultPlan& plan,
                            FaultPlanMeta& meta, std::string* error) {
  plan.clear();
  meta = FaultPlanMeta{};
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string line;
  bool saw_meta = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::pair<std::string, std::string>> strs;
    std::vector<std::pair<std::string, double>> nums;
    std::string parse_error;
    if (!parse_flat_object(line, strs, nums, &parse_error)) {
      return fail("line " + std::to_string(line_no) + ": " + parse_error);
    }
    const auto str_of = [&](const char* key) -> const std::string* {
      for (const auto& [k, v] : strs) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    const auto num_of = [&](const char* key, double fallback) {
      for (const auto& [k, v] : nums) {
        if (k == key) return v;
      }
      return fallback;
    };
    if (const std::string* m = str_of("meta"); m != nullptr) {
      if (*m != "vcl-fault-plan-v1") {
        return fail("unsupported schema '" + *m + "'");
      }
      saw_meta = true;
      for (const auto& [k, v] : nums) {
        if (k == "seed") meta.seed = static_cast<std::uint64_t>(v);
        else if (k != "events") meta.extra.emplace_back(k, v);
      }
      continue;
    }
    const std::string* kind_name = str_of("kind");
    if (kind_name == nullptr) {
      return fail("line " + std::to_string(line_no) + ": missing \"kind\"");
    }
    FaultEvent e;
    if (!parse_kind(*kind_name, e.kind)) {
      return fail("line " + std::to_string(line_no) + ": unknown kind '" +
                  *kind_name + "'");
    }
    e.at = num_of("at", 0.0);
    switch (e.kind) {
      case FaultKind::kVehicleCrash: {
        const double v = num_of("vehicle", -1.0);
        if (v >= 0.0) e.vehicle = VehicleId{static_cast<std::uint64_t>(v)};
        e.storage_tag =
            static_cast<std::uint64_t>(num_of("storage_tag", 0.0));
        e.dag_tag = static_cast<std::uint64_t>(num_of("dag_tag", 0.0));
        break;
      }
      case FaultKind::kBrokerCrash:
        break;
      case FaultKind::kRsuOutage: {
        const double r = num_of("rsu", -1.0);
        if (r >= 0.0) e.rsu = RsuId{static_cast<std::uint64_t>(r)};
        e.repair_after = num_of("repair_after", 0.0);
        break;
      }
      case FaultKind::kRadioBlackout:
        e.center = {num_of("x", 0.0), num_of("y", 0.0)};
        e.radius = num_of("radius", 0.0);
        e.duration = num_of("duration", 0.0);
        break;
      case FaultKind::kSybilJoin:
        e.attack_tag = static_cast<std::uint64_t>(num_of("attack_tag", 0.0));
        break;
      case FaultKind::kRevokeIdentity: {
        const double v = num_of("vehicle", -1.0);
        if (v >= 0.0) e.vehicle = VehicleId{static_cast<std::uint64_t>(v)};
        break;
      }
      case FaultKind::kCrlDeliver:
        e.crl_horizon_after = num_of("horizon_after", 0.0);
        break;
      case FaultKind::kReplayInject:
        e.attack_tag = static_cast<std::uint64_t>(num_of("attack_tag", 0.0));
        e.replay_age = num_of("age", 0.0);
        break;
    }
    e.group = static_cast<std::uint64_t>(num_of("group", 0.0));
    plan.push_back(e);
  }
  if (!saw_meta) return fail("missing vcl-fault-plan-v1 meta record");
  return true;
}

// ---- shrinking --------------------------------------------------------------

FaultPlan shrink_fault_plan(
    FaultPlan plan, const std::function<bool(const FaultPlan&)>& still_fails) {
  if (plan.empty()) return plan;

  // Causal units: events sharing a non-zero `group` are one atom — a revoke
  // without its CRL delivery, or a sybil burst without the blackout that
  // covers it, is a different incident, so the shrinker removes or keeps
  // whole groups. Ungrouped events are singleton units, which makes the
  // loop below behave exactly like the old per-event ddmin on plans that
  // carry no groups.
  std::vector<std::size_t> unit_of(plan.size());
  std::size_t unit_count = 0;
  {
    std::vector<std::pair<std::uint64_t, std::size_t>> group_unit;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].group == 0) {
        unit_of[i] = unit_count++;
        continue;
      }
      bool found = false;
      for (const auto& [g, u] : group_unit) {
        if (g == plan[i].group) {
          unit_of[i] = u;
          found = true;
          break;
        }
      }
      if (!found) {
        group_unit.emplace_back(plan[i].group, unit_count);
        unit_of[i] = unit_count++;
      }
    }
  }

  // ddmin over units. `live` holds the kept unit ids in first-appearance
  // order; a candidate materializes by walking the ORIGINAL plan and
  // emitting events whose unit survives, so interleaved background events
  // keep their relative order.
  std::vector<std::size_t> live(unit_count);
  for (std::size_t u = 0; u < unit_count; ++u) live[u] = u;
  const auto materialize = [&](const std::vector<std::size_t>& kept) {
    std::vector<char> keep(unit_count, 0);
    for (const std::size_t u : kept) keep[u] = 1;
    FaultPlan out;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (keep[unit_of[i]] != 0) out.push_back(plan[i]);
    }
    return out;
  };

  std::size_t chunk = std::max<std::size_t>(live.size() / 2, 1);
  while (true) {
    bool removed = false;
    std::size_t i = 0;
    while (i < live.size()) {
      const std::size_t len = std::min(chunk, live.size() - i);
      std::vector<std::size_t> candidate;
      candidate.reserve(live.size() - len);
      candidate.insert(candidate.end(), live.begin(),
                       live.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(),
                       live.begin() + static_cast<std::ptrdiff_t>(i + len),
                       live.end());
      if (still_fails(materialize(candidate))) {
        live = std::move(candidate);
        removed = true;  // the next chunk shifted into position i
      } else {
        i += len;
      }
      if (live.empty()) return {};
    }
    if (chunk > 1) chunk = std::max<std::size_t>(chunk / 2, 1);
    else if (!removed) break;  // single-unit fixpoint: 1-minimal per unit
  }
  return materialize(live);
}

}  // namespace vcl::fault
