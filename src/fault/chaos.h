// ChaosPlanner: seeded generator of *correlated* fault storms (paper §III).
//
// The plain FaultPlanConfig draws each fault class as an independent
// Poisson process — adequate for intensity sweeps, but real dependability
// incidents are compound: a broker dies *while* a radio blackout already
// hides the heartbeats, several workers crash within one second, the same
// RSU flaps up and down faster than anyone re-anchors to it. The planner
// layers three storm shapes on top of the independent background:
//
//  * burst   — a cluster of vehicle crashes packed into a short window
//              (cascaded worker churn; stresses requeue + detector sweep);
//  * cascade — a radio blackout with one or more broker kills fired INSIDE
//              the blackout window (the §III.A worst case: the cloud loses
//              its state holder exactly when it cannot hear anything);
//  * flap    — the same RSU taken down and repaired repeatedly (tests that
//              repeated crash-recover of one victim never corrupts
//              bookkeeping);
//  * storage — a radio blackout with a burst of crashes aimed at ONE storage
//              object's replica holders fired inside the blackout window
//              (the storage worst case: a write quorum of an object dies
//              while lease renewals are already being eaten by the channel).
//              The victims are resolved at fire time through the injector's
//              storage resolver via FaultEvent::storage_tag.
//  * dag     — a burst of crashes that each re-target ONE DAG run's current
//              critical-path holder at fire time (FaultEvent::dag_tag): the
//              storm follows the makespan-determining node as the scheduler
//              re-places it, the worst case for decomposition scheduling.
//
// The output is a plain deterministic FaultPlan — same (config, seed) pair,
// same schedule — so a storm run is exactly replayable, diffable and
// shrinkable like any other plan. write/parse_fault_plan_jsonl serialize a
// plan (plus replay context) to the repo's JSONL house format so any
// schedule can be re-run from a file (tools/vcl_chaos --repro).
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"

namespace vcl::fault {

// Storm intensities over the base config's [0, horizon]. All rates default
// to 0 = that storm shape off; a default StormConfig adds nothing.
struct StormConfig {
  // Burst crashes: Poisson storm arrivals; each storm packs `burst_size`
  // (+/- Poisson scatter) vehicle crashes into [t, t + burst_window].
  double burst_rate = 0.0;  // storms per second
  std::size_t burst_size = 4;
  SimTime burst_window = 2.0;

  // Broker-kill-during-blackout cascades: a blackout of fixed duration with
  // `cascade_broker_kills` broker crashes spaced inside its window. Centers
  // draw from the base config's blackout box.
  double cascade_rate = 0.0;
  SimTime cascade_blackout_duration = 10.0;
  int cascade_broker_kills = 2;

  // Flapping RSU: `flap_cycles` outage/repair cycles of ONE explicit RSU,
  // one cycle every flap_period, each outage lasting flap_outage.
  double flap_rate = 0.0;
  int flap_cycles = 4;
  SimTime flap_period = 3.0;
  SimTime flap_outage = 1.0;

  // Storage-targeted storm: a blackout of fixed duration plus
  // `storage_crashes` vehicle crashes spaced inside its window, all carrying
  // the same storage_tag so the injector burst-kills the live holders of one
  // object while its leases cannot renew. Centers draw from the base box.
  double storage_rate = 0.0;
  SimTime storage_blackout_duration = 8.0;
  std::size_t storage_crashes = 2;

  // DAG-targeted storm: `dag_crashes` vehicle crashes spaced over
  // [t, t + dag_window], all carrying the same dag_tag so each crash
  // re-resolves (at fire time) against the SAME DAG run's current
  // critical-path holder — the storm chases the run's heaviest pending
  // node from host to host as the scheduler re-places it.
  double dag_rate = 0.0;
  SimTime dag_window = 6.0;
  std::size_t dag_crashes = 2;

  // Sybil burst inside a radio blackout (paper §IV.B): a blackout of fixed
  // duration plus `sybil_count` fabricated-identity joins spaced inside its
  // window — the fabricated hosts present themselves exactly while the real
  // holders are dark and verification traffic is being eaten. Centers draw
  // from the base box. The blackout and its joins share one shrink group.
  double sybil_rate = 0.0;
  SimTime sybil_blackout_duration = 8.0;
  std::size_t sybil_count = 3;

  // CRL-propagation race (paper §IV.A): the authority revokes an identity
  // that may hold tasks/leases at storm time; the fresh CRL reaches the
  // RSUs only `revoke_crl_visible` later, and the LAST RSU only
  // `revoke_crl_horizon` after that. Inside the horizon the race is legal;
  // past it a revoked member is a safety violation. The revoke and its
  // delivery share one shrink group.
  double revoke_rate = 0.0;
  SimTime revoke_crl_visible = 2.0;
  SimTime revoke_crl_horizon = 4.0;

  // Replay flood (paper §IV.C): `replay_count` captured join/ack messages
  // re-injected over [t, t + replay_window], each `replay_age` seconds past
  // its original timestamp — stale by construction, so a working freshness
  // window rejects every one. The flood shares one shrink group.
  double replay_rate = 0.0;
  SimTime replay_window = 4.0;
  std::size_t replay_count = 3;
  SimTime replay_age = 5.0;

  [[nodiscard]] bool any() const {
    return burst_rate > 0.0 || cascade_rate > 0.0 || flap_rate > 0.0 ||
           storage_rate > 0.0 || dag_rate > 0.0 || sybil_rate > 0.0 ||
           revoke_rate > 0.0 || replay_rate > 0.0;
  }
};

struct ChaosConfig {
  FaultPlanConfig base;  // independent Poisson background (may be all-zero)
  StormConfig storms;
};

// Like validate(FaultPlanConfig): empty string when sane, else the problem.
// A cascade_rate > 0 requires a usable blackout box in `base` even when
// base.blackout_rate is zero (cascade blackouts draw centers from it).
[[nodiscard]] std::string validate(const ChaosConfig& config);

class ChaosPlanner {
 public:
  // Throws std::invalid_argument when validate(config) reports a problem.
  explicit ChaosPlanner(ChaosConfig config);

  // Deterministic: the plan is a pure function of (config, seed). The base
  // background and each storm shape draw from independent forked streams,
  // so enabling one storm never reshuffles another.
  [[nodiscard]] FaultPlan plan(std::uint64_t seed) const;

  [[nodiscard]] const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
};

// ---- plan (de)serialization -------------------------------------------------
//
// JSONL, one JSON object per line: a leading
//   {"meta":"vcl-fault-plan-v1","seed":S,"events":N,...}
// record carrying replay context (extra numeric fields from `meta` are
// preserved), then one event per line:
//   {"kind":"vehicle_crash","at":12.5,...}
// Invalid ids (unset victim / RSU) are omitted, not written as sentinels.

// Replay context carried in the meta record. `extra` keys are written as
// additional numeric meta fields and round-trip through parse (the chaos
// harness stores vehicles/duration/intensity here).
struct FaultPlanMeta {
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> extra;

  // Convenience lookup; `fallback` when the key is absent.
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  void set(const std::string& key, double value);
};

void write_fault_plan_jsonl(const FaultPlan& plan, const FaultPlanMeta& meta,
                            std::ostream& os);
// Returns false (with `error` set) on a malformed document.
bool parse_fault_plan_jsonl(std::istream& is, FaultPlan& plan,
                            FaultPlanMeta& meta, std::string* error = nullptr);

// ---- shrinking --------------------------------------------------------------

// Greedy delta-debugging (ddmin-style chunk removal): repeatedly tries to
// drop contiguous chunks — halves first, then ever finer down to single
// events — keeping any removal under which `still_fails` stays true. The
// result is 1-minimal per chunk granularity: removing any single remaining
// event makes the failure vanish. `still_fails(plan)` must be true for the
// input plan; the predicate is called O(n log n) times, so keep episode
// runs short. Event order is preserved.
//
// Events sharing a non-zero FaultEvent::group shrink as ONE atomic unit:
// a kRevokeIdentity is meaningless without its paired kCrlDeliver (and a
// sybil burst without its blackout), so the chunking never separates a
// causal pair — it keeps or drops the whole group. Ungrouped plans shrink
// exactly as before.
[[nodiscard]] FaultPlan shrink_fault_plan(
    FaultPlan plan, const std::function<bool(const FaultPlan&)>& still_fails);

}  // namespace vcl::fault
