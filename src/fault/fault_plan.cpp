#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vcl::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVehicleCrash: return "vehicle_crash";
    case FaultKind::kBrokerCrash: return "broker_crash";
    case FaultKind::kRsuOutage: return "rsu_outage";
    case FaultKind::kRadioBlackout: return "radio_blackout";
    case FaultKind::kSybilJoin: return "sybil_join";
    case FaultKind::kRevokeIdentity: return "revoke_identity";
    case FaultKind::kCrlDeliver: return "crl_deliver";
    case FaultKind::kReplayInject: return "replay_inject";
  }
  return "unknown";
}

namespace {

// Draws a homogeneous Poisson arrival sequence over [0, horizon].
std::vector<SimTime> arrivals(double rate, SimTime horizon, Rng& rng) {
  std::vector<SimTime> times;
  if (rate <= 0.0 || horizon <= 0.0) return times;
  SimTime t = rng.exponential(rate);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate);
  }
  return times;
}

}  // namespace

std::string validate(const FaultPlanConfig& config) {
  if (config.horizon < 0.0) return "horizon is negative";
  if (config.vehicle_crash_rate < 0.0) return "vehicle_crash_rate is negative";
  if (config.broker_crash_rate < 0.0) return "broker_crash_rate is negative";
  if (config.rsu_outage_rate < 0.0) return "rsu_outage_rate is negative";
  if (config.rsu_repair_mean < 0.0) return "rsu_repair_mean is negative";
  if (config.blackout_rate < 0.0) return "blackout_rate is negative";
  if (config.blackout_rate > 0.0) {
    if (config.blackout_mean_duration < 0.0) {
      return "blackout_mean_duration is negative";
    }
    if (config.blackout_radius < 0.0) return "blackout_radius is negative";
    if (config.blackout_lo.x > config.blackout_hi.x ||
        config.blackout_lo.y > config.blackout_hi.y) {
      return "blackout box is inverted (lo > hi)";
    }
    if (config.blackout_lo.x == 0.0 && config.blackout_lo.y == 0.0 &&
        config.blackout_hi.x == 0.0 && config.blackout_hi.y == 0.0) {
      return "blackout_rate > 0 but the blackout box was left at its "
             "all-zero default (set it from the road bounding box)";
    }
  }
  return {};
}

FaultPlan make_fault_plan(const FaultPlanConfig& config, Rng& rng) {
  if (const std::string problem = validate(config); !problem.empty()) {
    throw std::invalid_argument("FaultPlanConfig: " + problem);
  }
  FaultPlan plan;

  // Class order is fixed so the RNG consumption sequence — and therefore
  // the plan — is identical for identical (config, seed).
  for (const SimTime t :
       arrivals(config.vehicle_crash_rate, config.horizon, rng)) {
    FaultEvent e;
    e.kind = FaultKind::kVehicleCrash;
    e.at = t;  // victim chosen at fire time from the live worker pool
    plan.push_back(e);
  }
  for (const SimTime t :
       arrivals(config.broker_crash_rate, config.horizon, rng)) {
    FaultEvent e;
    e.kind = FaultKind::kBrokerCrash;
    e.at = t;
    plan.push_back(e);
  }
  for (const SimTime t :
       arrivals(config.rsu_outage_rate, config.horizon, rng)) {
    FaultEvent e;
    e.kind = FaultKind::kRsuOutage;
    e.at = t;  // RSU chosen at fire time (rotates over deployed units)
    e.repair_after = config.rsu_repair_mean > 0.0
                         ? rng.exponential(1.0 / config.rsu_repair_mean)
                         : 0.0;
    plan.push_back(e);
  }
  for (const SimTime t : arrivals(config.blackout_rate, config.horizon, rng)) {
    FaultEvent e;
    e.kind = FaultKind::kRadioBlackout;
    e.at = t;
    e.center = {rng.uniform(config.blackout_lo.x, config.blackout_hi.x),
                rng.uniform(config.blackout_lo.y, config.blackout_hi.y)};
    e.radius = config.blackout_radius;
    e.duration = config.blackout_mean_duration > 0.0
                     ? rng.exponential(1.0 / config.blackout_mean_duration)
                     : 0.0;
    plan.push_back(e);
  }

  sort_fault_plan(plan);
  return plan;
}

void sort_fault_plan(FaultPlan& plan) {
  std::stable_sort(plan.begin(), plan.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

std::string to_string(const FaultEvent& e) {
  std::ostringstream os;
  os << "t=" << e.at << " " << to_string(e.kind);
  switch (e.kind) {
    case FaultKind::kVehicleCrash:
      if (e.vehicle.valid()) os << " v=" << e.vehicle.value();
      if (e.storage_tag != 0) os << " storage_tag=" << e.storage_tag;
      break;
    case FaultKind::kBrokerCrash:
      break;
    case FaultKind::kRsuOutage:
      if (e.rsu.valid()) os << " rsu=" << e.rsu.value();
      os << " repair_after=" << e.repair_after;
      break;
    case FaultKind::kRadioBlackout:
      os << " center=(" << e.center.x << "," << e.center.y << ") r=" << e.radius
         << " dur=" << e.duration;
      break;
    case FaultKind::kSybilJoin:
      os << " attack_tag=" << e.attack_tag;
      break;
    case FaultKind::kRevokeIdentity:
      if (e.vehicle.valid()) os << " v=" << e.vehicle.value();
      break;
    case FaultKind::kCrlDeliver:
      os << " horizon_after=" << e.crl_horizon_after;
      break;
    case FaultKind::kReplayInject:
      os << " attack_tag=" << e.attack_tag << " age=" << e.replay_age;
      break;
  }
  if (e.group != 0) os << " group=" << e.group;
  return os.str();
}

}  // namespace vcl::fault
