// Declarative fault schedules (paper §III: dependability threats).
//
// A FaultPlan is a list of timed fault events generated ONCE from a seeded
// RNG — the same (config, seed) pair always yields the same schedule, so a
// dependability experiment is exactly reproducible and two mitigation
// configurations can be compared under the *identical* fault sequence.
// The plan is pure data; FaultInjector (fault_injector.h) applies it.
#pragma once

#include <string>
#include <vector>

#include "geo/vec2.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::fault {

enum class FaultKind : std::uint8_t {
  kVehicleCrash,    // a worker vanishes mid-task, no handover
  kBrokerCrash,     // the elected broker vanishes (metadata re-sync)
  kRsuOutage,       // an RSU goes offline, repaired later
  kRadioBlackout,   // reception forced to ~0 inside a region for a window
  kSybilJoin,       // a fabricated identity presents itself for admission
  kRevokeIdentity,  // the authority revokes an identity (victim at fire time)
  kCrlDeliver,      // the revocation reaches the RSUs (delayed CRL push)
  kReplayInject,    // a captured join/ack is re-injected past its freshness
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kVehicleCrash;
  SimTime at = 0.0;
  // kVehicleCrash: explicit victim, or invalid = pick a random worker when
  // the event fires (the common case for generated plans).
  VehicleId vehicle;
  // kVehicleCrash, storage-targeted storms: non-zero tag selects a storage
  // object's live holder at fire time through the injector's resolver (the
  // object is tag mod object-count; the victim its smallest-id live holder).
  // Used only when `vehicle` is invalid; 0 = untargeted.
  std::uint64_t storage_tag = 0;
  // kVehicleCrash, DAG-targeted storms: non-zero tag selects a live DAG
  // run's current critical-path holder at fire time through the injector's
  // dag resolver (the run is tag mod live-run-count; the victim the worker
  // running its heaviest-downstream-weight node). Consulted only when both
  // `vehicle` is invalid and storage_tag is 0; 0 = untargeted.
  std::uint64_t dag_tag = 0;
  // kRsuOutage.
  RsuId rsu;
  SimTime repair_after = 0.0;  // outage duration; 0 = never repaired
  // kRadioBlackout.
  geo::Vec2 center;
  double radius = 0.0;
  SimTime duration = 0.0;
  // Adversarial events. kSybilJoin / kReplayInject: non-zero tag selects the
  // fabricated identity (sybil) or the captured message's victim + nonce
  // (replay) deterministically at fire time; 0 = event is inert.
  std::uint64_t attack_tag = 0;
  // kCrlDeliver: extra time after delivery until EVERY RSU holds the fresh
  // CRL (per-RSU propagation spread). The oracle enforces revocation only
  // past this horizon; inside it the race is legal.
  SimTime crl_horizon_after = 0.0;
  // kReplayInject: how stale the captured message is when re-injected
  // (seconds past its original timestamp).
  SimTime replay_age = 0.0;
  // Causal-pair marker: events sharing a non-zero group are one compound
  // storm (revoke ↔ its delayed CRL delivery, blackout ↔ the sybil burst it
  // covers) and are kept or dropped ATOMICALLY by shrink_fault_plan — a
  // revoke without its delivery is not the same incident. 0 = ungrouped.
  std::uint64_t group = 0;
};

// Poisson-process intensities for each fault class over [0, horizon].
struct FaultPlanConfig {
  SimTime horizon = 300.0;
  double vehicle_crash_rate = 0.0;  // crashes per second (per cloud pool)
  double broker_crash_rate = 0.0;
  double rsu_outage_rate = 0.0;
  SimTime rsu_repair_mean = 30.0;  // exponential repair time
  double blackout_rate = 0.0;
  SimTime blackout_mean_duration = 10.0;
  double blackout_radius = 300.0;
  // Blackout centers are drawn uniformly from this box (set from the road
  // network's bounding box by the caller).
  geo::Vec2 blackout_lo;
  geo::Vec2 blackout_hi;
};

using FaultPlan = std::vector<FaultEvent>;

// Config sanity check, run before any plan is generated: negative rates,
// horizons or durations, and — when blackouts are requested — an inverted
// or left-at-default blackout box (which would silently pile every blackout
// at the origin) are configuration errors, not schedules. Returns an empty
// string when the config is valid, else a one-line description of the
// first problem found.
[[nodiscard]] std::string validate(const FaultPlanConfig& config);

// Draws a plan: exponential inter-arrivals per fault class, merged and
// sorted by fire time (ties broken by kind then draw order). Deterministic
// for a given (config, rng-state). Throws std::invalid_argument when
// validate(config) reports a problem.
[[nodiscard]] FaultPlan make_fault_plan(const FaultPlanConfig& config,
                                        Rng& rng);

// Sorts events the way make_fault_plan emits them: by fire time, ties by
// kind then insertion order. Chaos storm generators merge through this so
// any composed plan stays injector-ready.
void sort_fault_plan(FaultPlan& plan);

// One line per event, for logs/tests.
[[nodiscard]] std::string to_string(const FaultEvent& e);

}  // namespace vcl::fault
