#include "fault/fault_injector.h"

#include <algorithm>

namespace vcl::fault {

void FaultInjector::attach() {
  sim::Simulator& sim = net_.simulator();
  for (const FaultEvent& e : plan_) {
    const SimTime delay = std::max(0.0, e.at - sim.now());
    sim.schedule_after(delay, [this, e] { fire(e); }, "fault.event");
  }
}

VehicleId FaultInjector::pick_crash_victim() {
  // Pool = live workers of registered clouds, sorted and deduplicated so the
  // draw is deterministic regardless of cloud registration order.
  std::vector<VehicleId> pool;
  for (const vcloud::VehicularCloud* cloud : clouds_) {
    for (const VehicleId v : cloud->worker_ids()) {
      if (cloud->worker_crashed(v)) continue;  // already dead
      if (net_.traffic().find(v) == nullptr) continue;
      pool.push_back(v);
    }
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  if (pool.empty()) {
    // No cloud workers: any live vehicle will do (still a fault, just not
    // one the cloud feels directly).
    for (const auto& [vid, v] : net_.traffic().vehicles()) {
      pool.push_back(v.id);
    }
    std::sort(pool.begin(), pool.end());
  }
  if (pool.empty()) return VehicleId{};
  return pool[rng_.index(pool.size())];
}

void FaultInjector::crash_vehicle(VehicleId v) {
  if (!v.valid() || net_.traffic().find(v) == nullptr) return;
  // Order matters: the clouds must snapshot in-flight progress while the
  // vehicle still exists; only then does it vanish from traffic.
  for (vcloud::VehicularCloud* cloud : clouds_) cloud->crash_worker(v);
  net_.traffic().despawn(v);
}

void FaultInjector::fire(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kVehicleCrash: {
      VehicleId victim = e.vehicle;
      if (!victim.valid() && e.storage_tag != 0 && storage_resolver_) {
        victim = storage_resolver_(e.storage_tag);
      }
      if (!victim.valid() && e.dag_tag != 0 && dag_resolver_) {
        victim = dag_resolver_(e.dag_tag);
      }
      if (!victim.valid()) victim = pick_crash_victim();
      if (!victim.valid() || net_.traffic().find(victim) == nullptr) return;
      crash_vehicle(victim);
      ++stats_.vehicle_crashes;
      if (trace_ != nullptr) {
        trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                       "fault.crash",
                       {{"vehicle", static_cast<double>(victim.value())}});
      }
      if (flight_ != nullptr) {
        flight_->record(net_.simulator().now(), obs::FlightCategory::kFault,
                        "fault.crash", victim.value());
      }
      return;
    }
    case FaultKind::kBrokerCrash: {
      // Kill the first registered cloud's current broker (round-robin over
      // clouds would add plan-order coupling for little realism gain).
      for (vcloud::VehicularCloud* cloud : clouds_) {
        const VehicleId broker = cloud->broker();
        if (broker.valid() && net_.traffic().find(broker) != nullptr) {
          crash_vehicle(broker);
          ++stats_.broker_crashes;
          if (trace_ != nullptr) {
            trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                           "fault.broker.crash",
                           {{"vehicle", static_cast<double>(broker.value())}});
          }
          if (flight_ != nullptr) {
            flight_->record(net_.simulator().now(),
                            obs::FlightCategory::kFault, "fault.broker.crash",
                            broker.value());
          }
          return;
        }
      }
      return;
    }
    case FaultKind::kRsuOutage: {
      const std::size_t n = net_.rsus().count();
      if (n == 0) return;
      RsuId target = e.rsu;
      if (!target.valid()) {
        target = RsuId{rng_.index(n)};
      } else if (target.value() >= n) {
        // Wrap explicit ids into the deployed range instead of re-rolling:
        // chaos flap storms pick one abstract victim id and rely on every
        // cycle mapping to the SAME physical RSU.
        target = RsuId{target.value() % n};
      }
      const net::Rsu* rsu = net_.rsus().find(target);
      if (rsu == nullptr || !rsu->online) return;
      net_.rsus().set_online(target, false);
      ++stats_.rsu_outages;
      if (trace_ != nullptr) {
        trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                       "fault.rsu.outage",
                       {{"rsu", static_cast<double>(target.value())},
                        {"repair_after", e.repair_after}});
      }
      if (flight_ != nullptr) {
        flight_->record(net_.simulator().now(), obs::FlightCategory::kFault,
                        "fault.rsu.outage", target.value(), 0,
                        e.repair_after);
      }
      if (e.repair_after > 0.0) {
        net_.simulator().schedule_after(
            e.repair_after,
            [this, target] {
              net_.rsus().set_online(target, true);
              ++stats_.rsu_repairs;
              if (trace_ != nullptr) {
                trace_->record(net_.simulator().now(),
                               obs::TraceCategory::kFault, "fault.rsu.repair",
                               {{"rsu", static_cast<double>(target.value())}});
              }
              if (flight_ != nullptr) {
                flight_->record(net_.simulator().now(),
                                obs::FlightCategory::kFault,
                                "fault.rsu.repair", target.value());
              }
            },
            "fault.event");
      }
      return;
    }
    case FaultKind::kRadioBlackout: {
      if (e.duration <= 0.0) return;
      const std::uint64_t token =
          net_.channel().add_blackout({e.center, e.radius});
      ++stats_.blackouts;
      const SimTime start = net_.simulator().now();
      blackout_windows_.push_back(
          {start, start + e.duration, e.center, e.radius});
      if (flight_ != nullptr) {
        flight_->record(start, obs::FlightCategory::kFault,
                        "fault.blackout.start", 0, 0, e.duration);
      }
      if (trace_ != nullptr) {
        trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                       "fault.blackout.start",
                       {{"x", e.center.x},
                        {"y", e.center.y},
                        {"radius", e.radius},
                        {"duration", e.duration}});
        // Explicit storm-window annotation: [start, end] in absolute sim
        // time, so trace_analysis can split latency into in-storm vs
        // clear-sky without re-pairing start/end events across a possibly
        // wrapped ring.
        trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                       "fault.window",
                       {{"start", net_.simulator().now()},
                        {"end", net_.simulator().now() + e.duration},
                        {"radius", e.radius}});
      }
      net_.simulator().schedule_after(
          e.duration,
          [this, token] {
            net_.channel().remove_blackout(token);
            if (trace_ != nullptr) {
              trace_->record(net_.simulator().now(),
                             obs::TraceCategory::kFault, "fault.blackout.end",
                             {{"token", static_cast<double>(token)}});
            }
            if (flight_ != nullptr) {
              flight_->record(net_.simulator().now(),
                              obs::FlightCategory::kFault,
                              "fault.blackout.end", token);
            }
          },
          "fault.event");
      return;
    }
    case FaultKind::kSybilJoin:
    case FaultKind::kRevokeIdentity:
    case FaultKind::kCrlDeliver:
    case FaultKind::kReplayInject: {
      // The injector logs the "cause" half (a fault.* flight event, same as
      // every other injection); the driver behind the handler logs the
      // admission/eviction "decision" half on the auth/attack categories.
      if (!attack_handler_) return;
      const char* name = "";
      switch (e.kind) {
        case FaultKind::kSybilJoin:
          ++stats_.sybil_joins;
          name = "fault.sybil.join";
          break;
        case FaultKind::kRevokeIdentity:
          ++stats_.revocations;
          name = "fault.revoke";
          break;
        case FaultKind::kCrlDeliver:
          ++stats_.crl_deliveries;
          name = "fault.crl.deliver";
          break;
        case FaultKind::kReplayInject:
          ++stats_.replays;
          name = "fault.replay.inject";
          break;
        default: break;
      }
      if (flight_ != nullptr) {
        flight_->record(net_.simulator().now(), obs::FlightCategory::kFault,
                        name, e.attack_tag, e.group);
      }
      if (trace_ != nullptr) {
        trace_->record(net_.simulator().now(), obs::TraceCategory::kFault,
                       name,
                       {{"attack_tag", static_cast<double>(e.attack_tag)},
                        {"group", static_cast<double>(e.group)}});
      }
      attack_handler_(e);
      return;
    }
  }
}

void FaultInjector::register_metrics(obs::MetricsRegistry& metrics) const {
  metrics.gauge("fault.vehicle.crashed", [this] {
    return static_cast<double>(stats_.vehicle_crashes);
  });
  metrics.gauge("fault.broker.crashed", [this] {
    return static_cast<double>(stats_.broker_crashes);
  });
  metrics.gauge("fault.rsu.down", [this] {
    return static_cast<double>(stats_.rsu_outages - stats_.rsu_repairs);
  });
  metrics.gauge("fault.blackout.active", [this] {
    return static_cast<double>(net_.channel().blackout_count());
  });
}

}  // namespace vcl::fault
