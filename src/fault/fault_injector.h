// FaultInjector: applies a FaultPlan to a live simulation (paper §III).
//
// The injector is the adversary the dependability machinery in
// vcloud/dependability.h defends against. It schedules every FaultEvent on
// the sim clock at attach() time; each fires exactly once:
//
//  * kVehicleCrash — picks a victim (a random busy-or-idle worker of a
//    registered cloud, falling back to any live vehicle), tells each
//    registered cloud crash_worker() (zombie bookkeeping: the cloud is NOT
//    notified of the loss) and despawns the vehicle from traffic.
//  * kBrokerCrash — same, but the victim is a registered cloud's current
//    broker: the worst-case single failure (§III.A — broker state IS cloud
//    state).
//  * kRsuOutage — takes an RSU offline and schedules its repair.
//  * kRadioBlackout — installs a Channel blackout region for a window;
//    every transmission with an endpoint inside it is lost (heartbeats
//    included — this is what makes failure detection false-positive).
//
// Victim choice consumes the injector's OWN forked RNG, so the fault
// sequence never perturbs the scenario's other stochastic streams.
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_plan.h"
#include "net/network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vcloud/cloud.h"

namespace vcl::fault {

struct FaultStats {
  std::size_t vehicle_crashes = 0;
  std::size_t broker_crashes = 0;
  std::size_t rsu_outages = 0;
  std::size_t rsu_repairs = 0;
  std::size_t blackouts = 0;
  // Attack events routed to the adversary driver (0 when none is wired).
  std::size_t sybil_joins = 0;
  std::size_t revocations = 0;
  std::size_t crl_deliveries = 0;
  std::size_t replays = 0;
};

// One installed radio-blackout window in absolute sim time. The injector
// keeps every window it opened (they are few), so incident capture can
// list the storms that were active — or recently active — at a violation
// without re-pairing start/end events.
struct BlackoutWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  geo::Vec2 center{};
  double radius = 0.0;
};

class FaultInjector {
 public:
  FaultInjector(net::Network& net, FaultPlan plan, Rng rng)
      : net_(net), plan_(std::move(plan)), rng_(rng) {}

  // Clouds whose workers are crash candidates (and which must be told about
  // crashes so their zombie bookkeeping starts at the right instant).
  void register_cloud(vcloud::VehicularCloud& cloud) {
    clouds_.push_back(&cloud);
  }

  // Resolves a FaultEvent::storage_tag into a concrete victim when a
  // storage-targeted crash fires (installed by the system wiring when the
  // storage service is enabled). May return an invalid id — the injector
  // then falls back to its ordinary victim pool.
  using StorageVictimResolver = std::function<VehicleId(std::uint64_t)>;
  void set_storage_victim_resolver(StorageVictimResolver resolver) {
    storage_resolver_ = std::move(resolver);
  }

  // Resolves a FaultEvent::dag_tag into the worker currently holding a live
  // DAG run's critical-path node (installed by the system wiring when the
  // DAG scheduler is enabled). May return an invalid id — the injector then
  // falls back to its ordinary victim pool.
  using DagVictimResolver = std::function<VehicleId(std::uint64_t)>;
  void set_dag_victim_resolver(DagVictimResolver resolver) {
    dag_resolver_ = std::move(resolver);
  }

  // Routes adversarial events (kSybilJoin / kRevokeIdentity / kCrlDeliver /
  // kReplayInject) to the adversary driver the system wiring installs when
  // adversarial chaos is enabled. Unset = attack events are inert, so a
  // benign run replaying a plan that happens to carry them is unchanged.
  using AttackHandler = std::function<void(const FaultEvent&)>;
  void set_attack_handler(AttackHandler handler) {
    attack_handler_ = std::move(handler);
  }

  // Schedules every planned event. Call once, before (or at) t=0 of the run.
  void attach();

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  // Every blackout window fired so far, in fire order.
  [[nodiscard]] const std::vector<BlackoutWindow>& blackout_windows() const {
    return blackout_windows_;
  }

  // Always-on forensics (DESIGN.md §12): every fired fault also lands in
  // the flight recorder — injected faults are the "cause" half of the
  // causal timeline an incident bundle reconstructs. Null = one branch.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  // Telemetry (off by default): every fired fault becomes a fault.* trace
  // event — the ground truth a trace analysis correlates detection latency
  // and completion dips against.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  void register_metrics(obs::MetricsRegistry& metrics) const;

 private:
  void fire(const FaultEvent& e);
  void crash_vehicle(VehicleId v);
  // Random live worker across registered clouds (sorted pool, injector RNG);
  // falls back to any live vehicle. Invalid when nothing is alive.
  [[nodiscard]] VehicleId pick_crash_victim();

  net::Network& net_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<vcloud::VehicularCloud*> clouds_;
  StorageVictimResolver storage_resolver_;
  DagVictimResolver dag_resolver_;
  AttackHandler attack_handler_;
  FaultStats stats_;
  std::vector<BlackoutWindow> blackout_windows_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace vcl::fault
