// Merkle tree over SHA-256, with membership proofs.
//
// Used by the v-cloud file replication manager to let readers verify chunk
// integrity against a root published by the data owner, and by the audit log
// for tamper-evidence.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.h"

namespace vcl::crypto {

struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<Digest> siblings;  // bottom-up
};

class MerkleTree {
 public:
  // Builds a tree over the leaf digests (empty tree allowed).
  explicit MerkleTree(std::vector<Digest> leaves);

  static MerkleTree from_payloads(const std::vector<Bytes>& payloads);

  [[nodiscard]] Digest root() const;
  [[nodiscard]] std::size_t leaf_count() const { return leaves_; }
  [[nodiscard]] MerkleProof prove(std::size_t leaf_index) const;

  static bool verify(const Digest& root, const Digest& leaf,
                     const MerkleProof& proof);

 private:
  static Digest hash_pair(const Digest& a, const Digest& b);

  std::size_t leaves_ = 0;
  // levels_[0] = leaves (padded to even size per level), last = root level.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace vcl::crypto
