// HMAC-SHA256 (RFC 2104).
#pragma once

#include <string_view>

#include "crypto/sha256.h"

namespace vcl::crypto {

Digest hmac_sha256(const Bytes& key, const std::uint8_t* data,
                   std::size_t len);
Digest hmac_sha256(const Bytes& key, std::string_view msg);
Digest hmac_sha256(const Bytes& key, const Bytes& msg);

// Constant-time-ish digest comparison (all bytes always inspected).
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace vcl::crypto
