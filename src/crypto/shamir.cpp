#include "crypto/shamir.h"

#include <cassert>

#include "crypto/modmath.h"

namespace vcl::crypto {

std::vector<Share> Shamir::split(std::uint64_t secret, std::size_t k,
                                 std::size_t n, Drbg& drbg) const {
  assert(k >= 1 && k <= n);
  // Random polynomial f of degree k-1 with f(0) = secret.
  std::vector<std::uint64_t> coeffs(k);
  coeffs[0] = secret % q_;
  for (std::size_t i = 1; i < k; ++i) coeffs[i] = drbg.next_u64() % q_;

  std::vector<Share> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = i + 1;
    // Horner evaluation mod q.
    std::uint64_t y = 0;
    for (std::size_t c = k; c-- > 0;) {
      y = mod_add(mod_mul(y, x, q_), coeffs[c], q_);
    }
    shares[i] = Share{x, y};
  }
  return shares;
}

std::uint64_t Shamir::lagrange_coefficient(const std::vector<Share>& shares,
                                           std::size_t i) const {
  // lambda_i = prod_{j != i} x_j / (x_j - x_i)  (mod q), evaluated at 0.
  std::uint64_t num = 1;
  std::uint64_t den = 1;
  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (j == i) continue;
    num = mod_mul(num, shares[j].x % q_, q_);
    den = mod_mul(den, mod_sub(shares[j].x, shares[i].x, q_), q_);
  }
  return mod_mul(num, mod_inv(den, q_), q_);
}

std::uint64_t Shamir::reconstruct(const std::vector<Share>& shares) const {
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const std::uint64_t li = lagrange_coefficient(shares, i);
    secret = mod_add(secret, mod_mul(shares[i].y, li, q_), q_);
  }
  return secret;
}

}  // namespace vcl::crypto
