// Cost calibration: maps crypto operation counts onto wall-clock latencies
// of production-grade primitives on OBU-class hardware.
//
// The toy 61-bit group executes orders of magnitude faster than ECDSA-P256
// on a real on-board unit. Experiments that reason about the paper's
// "stringent time constraints" (authorization in milliseconds, §III.C) must
// charge realistic costs: protocols report *operation counts*, and the
// CostModel converts them to simulated seconds. Defaults follow published
// measurements for automotive-grade ARM OBUs (e.g. ~1-5 ms per ECDSA op);
// each figure bench states the numbers it assumes.
#pragma once

#include <cstddef>

#include "util/time.h"

namespace vcl::crypto {

enum class Op {
  kHash,          // SHA-256 over a short message
  kHmac,
  kSign,          // ECDSA/Schnorr-equivalent signature generation
  kVerify,        // signature verification
  kKemEncap,      // public-key encryption / encapsulation
  kKemDecap,
  kGroupSign,     // group signature generation (pairing-free estimate)
  kGroupVerify,
  kAbeEncrypt,    // per policy-tree leaf
  kAbeDecrypt,    // per satisfied leaf
};

struct OpCounts {
  std::size_t hash = 0;
  std::size_t hmac = 0;
  std::size_t sign = 0;
  std::size_t verify = 0;
  std::size_t kem_encap = 0;
  std::size_t kem_decap = 0;
  std::size_t group_sign = 0;
  std::size_t group_verify = 0;
  std::size_t abe_encrypt_leaves = 0;
  std::size_t abe_decrypt_leaves = 0;

  OpCounts& operator+=(const OpCounts& o);
};

class CostModel {
 public:
  // Default: OBU-class ARM Cortex-A (DSRC literature ballpark).
  CostModel() = default;

  [[nodiscard]] SimTime cost(Op op) const;
  [[nodiscard]] SimTime total(const OpCounts& counts) const;

  // Uniformly scales all costs (e.g. 0.1 models a 10x faster OBU).
  void scale(double factor) { scale_ *= factor; }

  // Per-op overrides, seconds.
  SimTime hash_s = 5 * kMicroseconds;
  SimTime hmac_s = 8 * kMicroseconds;
  SimTime sign_s = 1.2 * kMilliseconds;
  SimTime verify_s = 2.0 * kMilliseconds;
  SimTime kem_encap_s = 1.6 * kMilliseconds;
  SimTime kem_decap_s = 1.4 * kMilliseconds;
  SimTime group_sign_s = 6.0 * kMilliseconds;
  SimTime group_verify_s = 9.0 * kMilliseconds;
  SimTime abe_leaf_encrypt_s = 2.2 * kMilliseconds;
  SimTime abe_leaf_decrypt_s = 1.8 * kMilliseconds;

 private:
  double scale_ = 1.0;
};

}  // namespace vcl::crypto
