#include "crypto/modmath.h"

#include <initializer_list>

namespace vcl::crypto {

using u128 = unsigned __int128;

std::uint64_t mod_add(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  a %= m;
  b %= m;
  const std::uint64_t s = a + b;  // cannot overflow: a, b < m <= 2^63 in use,
                                  // but handle the general case anyway
  if (s < a || s >= m) return s - m;
  return s;
}

std::uint64_t mod_sub(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  a %= m;
  b %= m;
  return a >= b ? a - b : a + (m - b);
}

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(u128{a} * b % m);
}

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mod_mul(result, base, m);
    base = mod_mul(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::uint64_t mod_inv(std::uint64_t a, std::uint64_t m) {
  // Extended Euclid on signed 128-bit intermediates.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    const __int128 q = r / new_r;
    const __int128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const __int128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r > 1) return 0;  // not invertible
  if (t < 0) t += m;
  return static_cast<std::uint64_t>(t);
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses decide primality for all n < 2^64.
  for (const std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = mod_pow(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mod_mul(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace vcl::crypto
