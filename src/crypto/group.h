// Schnorr group: prime-order subgroup of Z_p^* with p = 2q + 1 (safe prime).
//
// SIMULATION-GRADE CRYPTOGRAPHY. The modulus is ~61 bits so that all group
// arithmetic fits in unsigned __int128 and runs fast inside the simulator.
// Every protocol built on this group (Schnorr signatures, ElGamal, the
// ABE-style policy encryption) is algebraically faithful — signatures really
// verify, forgeries really fail, decryption really requires satisfying
// attribute shares — but the key size offers NO real-world security. The
// CostModel (crypto/cost_model.h) maps operation counts onto published
// OBU-class ECDSA-P256 timings when an experiment needs absolute latencies.
#pragma once

#include <cstdint>

#include "crypto/sha256.h"

namespace vcl::crypto {

class SchnorrGroup {
 public:
  // Deterministically derives a safe prime p = 2q + 1 (p ~ 2^61) and a
  // generator g of the order-q subgroup from `domain_seed`. Identical seeds
  // give identical groups, so all parties in a scenario share parameters.
  static SchnorrGroup derive(std::uint64_t domain_seed);

  [[nodiscard]] std::uint64_t p() const { return p_; }
  [[nodiscard]] std::uint64_t q() const { return q_; }
  [[nodiscard]] std::uint64_t g() const { return g_; }

  // Group operations (elements are in the order-q subgroup of Z_p^*).
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t pow_g(std::uint64_t exp) const;  // g^exp mod p
  [[nodiscard]] std::uint64_t pow(std::uint64_t base, std::uint64_t exp) const;
  [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;

  // Scalar (exponent) arithmetic mod q.
  [[nodiscard]] std::uint64_t scalar_add(std::uint64_t a,
                                         std::uint64_t b) const;
  [[nodiscard]] std::uint64_t scalar_sub(std::uint64_t a,
                                         std::uint64_t b) const;
  [[nodiscard]] std::uint64_t scalar_mul(std::uint64_t a,
                                         std::uint64_t b) const;
  [[nodiscard]] std::uint64_t scalar_inv(std::uint64_t a) const;

  // Hash arbitrary bytes to a scalar mod q (Fiat-Shamir challenges).
  [[nodiscard]] std::uint64_t hash_to_scalar(const Bytes& data) const;

  [[nodiscard]] bool is_element(std::uint64_t a) const;

 private:
  SchnorrGroup(std::uint64_t p, std::uint64_t q, std::uint64_t g)
      : p_(p), q_(q), g_(g) {}

  std::uint64_t p_;
  std::uint64_t q_;
  std::uint64_t g_;
};

// Process-wide default group (seed 0xVCL). Derivation runs once.
const SchnorrGroup& default_group();

}  // namespace vcl::crypto
