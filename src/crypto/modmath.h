// 64-bit modular arithmetic (via unsigned __int128) and primality testing.
#pragma once

#include <cstdint>

namespace vcl::crypto {

std::uint64_t mod_add(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t mod_sub(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t m);
// Modular inverse of a (coprime with m); 0 when no inverse exists.
std::uint64_t mod_inv(std::uint64_t a, std::uint64_t m);

// Deterministic Miller-Rabin, exact for all 64-bit inputs.
bool is_prime(std::uint64_t n);

}  // namespace vcl::crypto
