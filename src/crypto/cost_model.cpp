#include "crypto/cost_model.h"

namespace vcl::crypto {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  hash += o.hash;
  hmac += o.hmac;
  sign += o.sign;
  verify += o.verify;
  kem_encap += o.kem_encap;
  kem_decap += o.kem_decap;
  group_sign += o.group_sign;
  group_verify += o.group_verify;
  abe_encrypt_leaves += o.abe_encrypt_leaves;
  abe_decrypt_leaves += o.abe_decrypt_leaves;
  return *this;
}

SimTime CostModel::cost(Op op) const {
  switch (op) {
    case Op::kHash: return hash_s * scale_;
    case Op::kHmac: return hmac_s * scale_;
    case Op::kSign: return sign_s * scale_;
    case Op::kVerify: return verify_s * scale_;
    case Op::kKemEncap: return kem_encap_s * scale_;
    case Op::kKemDecap: return kem_decap_s * scale_;
    case Op::kGroupSign: return group_sign_s * scale_;
    case Op::kGroupVerify: return group_verify_s * scale_;
    case Op::kAbeEncrypt: return abe_leaf_encrypt_s * scale_;
    case Op::kAbeDecrypt: return abe_leaf_decrypt_s * scale_;
  }
  return 0.0;
}

SimTime CostModel::total(const OpCounts& c) const {
  return cost(Op::kHash) * static_cast<double>(c.hash) +
         cost(Op::kHmac) * static_cast<double>(c.hmac) +
         cost(Op::kSign) * static_cast<double>(c.sign) +
         cost(Op::kVerify) * static_cast<double>(c.verify) +
         cost(Op::kKemEncap) * static_cast<double>(c.kem_encap) +
         cost(Op::kKemDecap) * static_cast<double>(c.kem_decap) +
         cost(Op::kGroupSign) * static_cast<double>(c.group_sign) +
         cost(Op::kGroupVerify) * static_cast<double>(c.group_verify) +
         cost(Op::kAbeEncrypt) * static_cast<double>(c.abe_encrypt_leaves) +
         cost(Op::kAbeDecrypt) * static_cast<double>(c.abe_decrypt_leaves);
}

}  // namespace vcl::crypto
