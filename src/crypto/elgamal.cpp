#include "crypto/elgamal.h"

#include "crypto/schnorr.h"

namespace vcl::crypto {

ElGamalCiphertext ElGamal::encrypt(std::uint64_t pub, std::uint64_t m,
                                   Drbg& drbg) const {
  const std::uint64_t k = drbg.next_scalar(group_.q());
  ElGamalCiphertext ct;
  ct.c1 = group_.pow_g(k);
  ct.c2 = group_.mul(m, group_.pow(pub, k));
  return ct;
}

std::uint64_t ElGamal::decrypt(std::uint64_t secret,
                               const ElGamalCiphertext& ct) const {
  const std::uint64_t shared = group_.pow(ct.c1, secret);
  return group_.mul(ct.c2, group_.inv(shared));
}

Bytes ElGamal::derive_keystream_key(std::uint64_t shared) {
  Bytes seed;
  append_u64(seed, shared);
  const Digest d = Sha256::hash(seed);
  return Bytes(d.begin(), d.end());
}

HybridCiphertext ElGamal::seal(std::uint64_t pub, const Bytes& plain,
                               Drbg& drbg) const {
  const std::uint64_t k = drbg.next_scalar(group_.q());
  HybridCiphertext ct;
  ct.kem_c1 = group_.pow_g(k);
  const std::uint64_t shared = group_.pow(pub, k);
  const Bytes key = derive_keystream_key(shared);

  Drbg keystream(key);
  ct.body = plain;
  const Bytes pad = keystream.generate(plain.size());
  for (std::size_t i = 0; i < ct.body.size(); ++i) ct.body[i] ^= pad[i];

  Bytes mac_input;
  append_u64(mac_input, ct.kem_c1);
  mac_input.insert(mac_input.end(), ct.body.begin(), ct.body.end());
  ct.tag = hmac_sha256(key, mac_input);
  return ct;
}

std::optional<Bytes> ElGamal::open(std::uint64_t secret,
                                   const HybridCiphertext& ct) const {
  const std::uint64_t shared = group_.pow(ct.kem_c1, secret);
  const Bytes key = derive_keystream_key(shared);

  Bytes mac_input;
  append_u64(mac_input, ct.kem_c1);
  mac_input.insert(mac_input.end(), ct.body.begin(), ct.body.end());
  if (!digest_equal(ct.tag, hmac_sha256(key, mac_input))) return std::nullopt;

  Drbg keystream(key);
  Bytes plain = ct.body;
  const Bytes pad = keystream.generate(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) plain[i] ^= pad[i];
  return plain;
}

}  // namespace vcl::crypto
