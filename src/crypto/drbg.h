// Deterministic random bit generator (hash-counter construction).
//
// Protocol components need reproducible "randomness" that is independent of
// the simulation RNG streams; the DRBG derives bytes as
// SHA256(seed || counter) blocks. Not NIST SP 800-90A — a simulation-grade
// generator with the right interface.
#pragma once

#include <cstdint>

#include "crypto/sha256.h"

namespace vcl::crypto {

class Drbg {
 public:
  explicit Drbg(const Bytes& seed);
  explicit Drbg(std::uint64_t seed);

  // Fills `out` with deterministic pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);
  Bytes generate(std::size_t len);
  std::uint64_t next_u64();
  // Uniform in [1, modulus-1]; rejection-sampled, modulus > 2.
  std::uint64_t next_scalar(std::uint64_t modulus);

 private:
  Bytes seed_;
  std::uint64_t counter_ = 0;
  Digest block_{};
  std::size_t block_used_ = sizeof(Digest);
};

}  // namespace vcl::crypto
