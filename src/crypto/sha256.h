// SHA-256 (FIPS 180-4), implemented from the specification.
//
// This is the one cryptographic primitive in the framework that is real at
// full strength; everything algebraic (signatures, encryption) runs over a
// deliberately small group — see crypto/group.h for the rationale.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vcl::crypto {

using Digest = std::array<std::uint8_t, 32>;
using Bytes = std::vector<std::uint8_t>;

class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(std::string_view s);
  void update(const Bytes& b);

  // Finalizes and returns the digest; the object must not be reused after.
  [[nodiscard]] Digest finalize();

  static Digest hash(std::string_view s);
  static Digest hash(const Bytes& b);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

std::string to_hex(const Digest& d);

// First 8 bytes of a digest as a big-endian integer (convenient for deriving
// group exponents and ids from hashes).
std::uint64_t digest_prefix_u64(const Digest& d);

}  // namespace vcl::crypto
