#include "crypto/group.h"

#include "crypto/drbg.h"
#include "crypto/modmath.h"

namespace vcl::crypto {

SchnorrGroup SchnorrGroup::derive(std::uint64_t domain_seed) {
  Drbg drbg(domain_seed ^ 0x5343484e4f5252ULL /* "SCHNORR" */);
  // Search for q prime with p = 2q + 1 also prime, q ~ 2^60.
  std::uint64_t q = (drbg.next_u64() >> 4) | (1ULL << 60) | 1ULL;
  for (;;) {
    if (is_prime(q)) {
      const std::uint64_t p = 2 * q + 1;
      if (is_prime(p)) {
        // Any a with a^2 != 1 gives a generator g = a^2 of the order-q
        // subgroup (quadratic residues).
        for (std::uint64_t a = 2;; ++a) {
          const std::uint64_t g = mod_mul(a, a, p);
          if (g != 1) return SchnorrGroup(p, q, g);
        }
      }
    }
    q += 2;
  }
}

std::uint64_t SchnorrGroup::mul(std::uint64_t a, std::uint64_t b) const {
  return mod_mul(a, b, p_);
}

std::uint64_t SchnorrGroup::pow_g(std::uint64_t exp) const {
  return mod_pow(g_, exp, p_);
}

std::uint64_t SchnorrGroup::pow(std::uint64_t base, std::uint64_t exp) const {
  return mod_pow(base, exp, p_);
}

std::uint64_t SchnorrGroup::inv(std::uint64_t a) const {
  return mod_inv(a, p_);
}

std::uint64_t SchnorrGroup::scalar_add(std::uint64_t a,
                                       std::uint64_t b) const {
  return mod_add(a, b, q_);
}

std::uint64_t SchnorrGroup::scalar_sub(std::uint64_t a,
                                       std::uint64_t b) const {
  return mod_sub(a, b, q_);
}

std::uint64_t SchnorrGroup::scalar_mul(std::uint64_t a,
                                       std::uint64_t b) const {
  return mod_mul(a, b, q_);
}

std::uint64_t SchnorrGroup::scalar_inv(std::uint64_t a) const {
  return mod_inv(a, q_);
}

std::uint64_t SchnorrGroup::hash_to_scalar(const Bytes& data) const {
  const Digest d = Sha256::hash(data);
  std::uint64_t v = digest_prefix_u64(d) % q_;
  return v == 0 ? 1 : v;
}

bool SchnorrGroup::is_element(std::uint64_t a) const {
  return a != 0 && a < p_ && mod_pow(a, q_, p_) == 1;
}

const SchnorrGroup& default_group() {
  static const SchnorrGroup group = SchnorrGroup::derive(0x76636cULL /*vcl*/);
  return group;
}

}  // namespace vcl::crypto
