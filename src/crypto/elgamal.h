// ElGamal over the Schnorr group, plus a hybrid KEM-DEM for byte payloads.
//
// Group-element encryption carries key material in the ABE construction;
// the hybrid mode (ElGamal KEM + SHA256-counter keystream + HMAC tag) seals
// arbitrary task/data payloads.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/drbg.h"
#include "crypto/group.h"
#include "crypto/hmac.h"

namespace vcl::crypto {

struct ElGamalCiphertext {
  std::uint64_t c1 = 0;  // g^k
  std::uint64_t c2 = 0;  // m * y^k
};

struct HybridCiphertext {
  std::uint64_t kem_c1 = 0;
  Bytes body;   // XOR-keystream encrypted payload
  Digest tag{};  // HMAC over (kem_c1 || body)
};

class ElGamal {
 public:
  explicit ElGamal(const SchnorrGroup& group) : group_(group) {}

  // Element encryption: m must be a subgroup element.
  [[nodiscard]] ElGamalCiphertext encrypt(std::uint64_t pub, std::uint64_t m,
                                          Drbg& drbg) const;
  [[nodiscard]] std::uint64_t decrypt(std::uint64_t secret,
                                      const ElGamalCiphertext& ct) const;

  // Hybrid byte encryption (authenticated).
  [[nodiscard]] HybridCiphertext seal(std::uint64_t pub, const Bytes& plain,
                                      Drbg& drbg) const;
  [[nodiscard]] std::optional<Bytes> open(std::uint64_t secret,
                                          const HybridCiphertext& ct) const;

 private:
  [[nodiscard]] static Bytes derive_keystream_key(std::uint64_t shared);

  const SchnorrGroup& group_;
};

}  // namespace vcl::crypto
