// Chaum-Pedersen proof of discrete-log equality (Fiat-Shamir,
// non-interactive).
//
// Proves knowledge of x with A = g^x and B = h^x for public (g, A, h, B)
// without revealing x. The framework uses it to make identity-escrow
// opening *verifiable*: when a group manager de-anonymizes a message, it
// proves the ElGamal decryption was performed with the real escrow key —
// so a malicious manager cannot frame an innocent member with a fabricated
// "opening" (accountability for the accountability mechanism, §V.B).
#pragma once

#include "crypto/drbg.h"
#include "crypto/group.h"

namespace vcl::crypto {

struct ChaumPedersenProof {
  std::uint64_t commit_g = 0;  // t_g = g^r
  std::uint64_t commit_h = 0;  // t_h = h^r
  std::uint64_t response = 0;  // s = r + c*x mod q
};

class ChaumPedersen {
 public:
  explicit ChaumPedersen(const SchnorrGroup& group) : group_(group) {}

  // Proves log_g(a) == log_h(b) (== x). `g` defaults to the group
  // generator when 0.
  [[nodiscard]] ChaumPedersenProof prove(std::uint64_t x, std::uint64_t h,
                                         std::uint64_t b, Drbg& drbg,
                                         std::uint64_t g = 0) const;

  [[nodiscard]] bool verify(std::uint64_t a, std::uint64_t h, std::uint64_t b,
                            const ChaumPedersenProof& proof,
                            std::uint64_t g = 0) const;

 private:
  [[nodiscard]] std::uint64_t challenge(std::uint64_t g, std::uint64_t a,
                                        std::uint64_t h, std::uint64_t b,
                                        const ChaumPedersenProof& proof) const;

  const SchnorrGroup& group_;
};

}  // namespace vcl::crypto
