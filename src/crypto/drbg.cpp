#include "crypto/drbg.h"

#include <cstring>

namespace vcl::crypto {

Drbg::Drbg(const Bytes& seed) : seed_(seed) {}

Drbg::Drbg(std::uint64_t seed) {
  seed_.resize(8);
  for (int i = 0; i < 8; ++i) {
    seed_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (block_used_ == block_.size()) {
      Sha256 h;
      h.update(seed_);
      std::uint8_t ctr[8];
      for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
      }
      h.update(ctr, sizeof(ctr));
      block_ = h.finalize();
      block_used_ = 0;
      ++counter_;
    }
    const std::size_t take = std::min(len, block_.size() - block_used_);
    std::memcpy(out, block_.data() + block_used_, take);
    block_used_ += take;
    out += take;
    len -= take;
  }
}

Bytes Drbg::generate(std::size_t len) {
  Bytes out(len);
  generate(out.data(), len);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t buf[8];
  generate(buf, sizeof(buf));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
  return v;
}

std::uint64_t Drbg::next_scalar(std::uint64_t modulus) {
  // Rejection sampling keeps the distribution uniform.
  for (;;) {
    const std::uint64_t v = next_u64() % modulus;
    if (v != 0) return v;
  }
}

}  // namespace vcl::crypto
