#include "crypto/schnorr.h"

#include "crypto/drbg.h"

namespace vcl::crypto {

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t read_u64(const Bytes& in, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in.at(offset + static_cast<std::size_t>(i));
  }
  return v;
}

SchnorrKeyPair Schnorr::keygen(Drbg& drbg) const {
  SchnorrKeyPair kp;
  kp.secret = drbg.next_scalar(group_.q());
  kp.pub = group_.pow_g(kp.secret);
  return kp;
}

std::uint64_t Schnorr::challenge(std::uint64_t r, std::uint64_t pub,
                                 const Bytes& msg) const {
  Bytes data;
  data.reserve(16 + msg.size());
  append_u64(data, r);
  append_u64(data, pub);
  data.insert(data.end(), msg.begin(), msg.end());
  return group_.hash_to_scalar(data);
}

SchnorrSignature Schnorr::sign(std::uint64_t secret, const Bytes& msg,
                               Drbg& drbg) const {
  const std::uint64_t k = drbg.next_scalar(group_.q());
  SchnorrSignature sig;
  sig.r = group_.pow_g(k);
  const std::uint64_t pub = group_.pow_g(secret);
  const std::uint64_t e = challenge(sig.r, pub, msg);
  sig.s = group_.scalar_add(k, group_.scalar_mul(e, secret));
  return sig;
}

bool Schnorr::verify(std::uint64_t pub, const Bytes& msg,
                     const SchnorrSignature& sig) const {
  if (!group_.is_element(pub) || !group_.is_element(sig.r)) return false;
  const std::uint64_t e = challenge(sig.r, pub, msg);
  const std::uint64_t lhs = group_.pow_g(sig.s);
  const std::uint64_t rhs = group_.mul(sig.r, group_.pow(pub, e));
  return lhs == rhs;
}

}  // namespace vcl::crypto
