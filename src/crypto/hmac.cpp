#include "crypto/hmac.h"

namespace vcl::crypto {

Digest hmac_sha256(const Bytes& key, const std::uint8_t* data,
                   std::size_t len) {
  constexpr std::size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) {
    const Digest kd = Sha256::hash(k);
    k.assign(kd.begin(), kd.end());
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data, len);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

Digest hmac_sha256(const Bytes& key, std::string_view msg) {
  return hmac_sha256(key, reinterpret_cast<const std::uint8_t*>(msg.data()),
                     msg.size());
}

Digest hmac_sha256(const Bytes& key, const Bytes& msg) {
  return hmac_sha256(key, msg.data(), msg.size());
}

bool digest_equal(const Digest& a, const Digest& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace vcl::crypto
