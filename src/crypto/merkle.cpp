#include "crypto/merkle.h"

namespace vcl::crypto {

Digest MerkleTree::hash_pair(const Digest& a, const Digest& b) {
  Sha256 h;
  h.update(a.data(), a.size());
  h.update(b.data(), b.size());
  return h.finalize();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaves_(leaves.size()) {
  if (leaves.empty()) return;
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    auto& prev = levels_.back();
    if (prev.size() % 2 != 0) prev.push_back(prev.back());  // duplicate last
    std::vector<Digest> next;
    next.reserve(prev.size() / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      next.push_back(hash_pair(prev[i], prev[i + 1]));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleTree MerkleTree::from_payloads(const std::vector<Bytes>& payloads) {
  std::vector<Digest> leaves;
  leaves.reserve(payloads.size());
  for (const Bytes& p : payloads) leaves.push_back(Sha256::hash(p));
  return MerkleTree(std::move(leaves));
}

Digest MerkleTree::root() const {
  if (levels_.empty()) return Digest{};
  return levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t leaf_index) const {
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  std::size_t idx = leaf_index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::size_t sibling = idx ^ 1;
    proof.siblings.push_back(levels_[level][sibling]);
    idx /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, const Digest& leaf,
                        const MerkleProof& proof) {
  Digest acc = leaf;
  std::size_t idx = proof.leaf_index;
  for (const Digest& sib : proof.siblings) {
    acc = (idx % 2 == 0) ? hash_pair(acc, sib) : hash_pair(sib, acc);
    idx /= 2;
  }
  return acc == root;
}

}  // namespace vcl::crypto
