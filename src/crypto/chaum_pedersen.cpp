#include "crypto/chaum_pedersen.h"

#include "crypto/schnorr.h"

namespace vcl::crypto {

std::uint64_t ChaumPedersen::challenge(std::uint64_t g, std::uint64_t a,
                                       std::uint64_t h, std::uint64_t b,
                                       const ChaumPedersenProof& proof) const {
  Bytes data;
  append_u64(data, g);
  append_u64(data, a);
  append_u64(data, h);
  append_u64(data, b);
  append_u64(data, proof.commit_g);
  append_u64(data, proof.commit_h);
  return group_.hash_to_scalar(data);
}

ChaumPedersenProof ChaumPedersen::prove(std::uint64_t x, std::uint64_t h,
                                        std::uint64_t b, Drbg& drbg,
                                        std::uint64_t g) const {
  if (g == 0) g = group_.g();
  const std::uint64_t a = group_.pow(g, x);
  const std::uint64_t r = drbg.next_scalar(group_.q());
  ChaumPedersenProof proof;
  proof.commit_g = group_.pow(g, r);
  proof.commit_h = group_.pow(h, r);
  const std::uint64_t c = challenge(g, a, h, b, proof);
  proof.response = group_.scalar_add(r, group_.scalar_mul(c, x));
  return proof;
}

bool ChaumPedersen::verify(std::uint64_t a, std::uint64_t h, std::uint64_t b,
                           const ChaumPedersenProof& proof,
                           std::uint64_t g) const {
  if (g == 0) g = group_.g();
  if (!group_.is_element(a) || !group_.is_element(b) ||
      !group_.is_element(h)) {
    return false;
  }
  const std::uint64_t c = challenge(g, a, h, b, proof);
  // g^s == t_g * a^c  and  h^s == t_h * b^c
  const bool lhs_ok =
      group_.pow(g, proof.response) ==
      group_.mul(proof.commit_g, group_.pow(a, c));
  const bool rhs_ok =
      group_.pow(h, proof.response) ==
      group_.mul(proof.commit_h, group_.pow(b, c));
  return lhs_ok && rhs_ok;
}

}  // namespace vcl::crypto
