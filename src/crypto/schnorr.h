// Schnorr signatures over a SchnorrGroup (Fiat-Shamir transformed).
//
// sign:   k random, R = g^k, e = H(R || pub || msg) mod q, s = k + e*x mod q
// verify: g^s == R * pub^e
#pragma once

#include <cstdint>

#include "crypto/drbg.h"
#include "crypto/group.h"

namespace vcl::crypto {

struct SchnorrKeyPair {
  std::uint64_t secret = 0;  // x
  std::uint64_t pub = 0;     // y = g^x
};

struct SchnorrSignature {
  std::uint64_t r = 0;  // R = g^k
  std::uint64_t s = 0;

  // Wire size in bytes of a production equivalent (ECDSA-P256-ish); used by
  // overhead accounting, not by the toy encoding.
  static constexpr std::size_t kWireSize = 64;
};

class Schnorr {
 public:
  explicit Schnorr(const SchnorrGroup& group) : group_(group) {}

  [[nodiscard]] SchnorrKeyPair keygen(Drbg& drbg) const;
  [[nodiscard]] SchnorrSignature sign(std::uint64_t secret, const Bytes& msg,
                                      Drbg& drbg) const;
  [[nodiscard]] bool verify(std::uint64_t pub, const Bytes& msg,
                            const SchnorrSignature& sig) const;

  [[nodiscard]] const SchnorrGroup& group() const { return group_; }

 private:
  [[nodiscard]] std::uint64_t challenge(std::uint64_t r, std::uint64_t pub,
                                        const Bytes& msg) const;

  const SchnorrGroup& group_;
};

// Serialization helpers shared by protocol modules.
void append_u64(Bytes& out, std::uint64_t v);
std::uint64_t read_u64(const Bytes& in, std::size_t offset);

}  // namespace vcl::crypto
