// Shamir secret sharing over Z_q (the Schnorr group's scalar field).
//
// Used directly (threshold escrow of group-signature opening keys) and as
// the linear secret-sharing backbone of the policy-tree ABE in src/access.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/group.h"

namespace vcl::crypto {

struct Share {
  std::uint64_t x = 0;  // evaluation point (non-zero)
  std::uint64_t y = 0;  // polynomial value
};

class Shamir {
 public:
  // `modulus` must be prime (use group.q()).
  explicit Shamir(std::uint64_t modulus) : q_(modulus) {}

  // Splits `secret` into `n` shares with reconstruction threshold `k`
  // (1 <= k <= n). Share x-coordinates are 1..n.
  [[nodiscard]] std::vector<Share> split(std::uint64_t secret, std::size_t k,
                                         std::size_t n, Drbg& drbg) const;

  // Lagrange interpolation at x = 0 over any >= k distinct shares.
  [[nodiscard]] std::uint64_t reconstruct(
      const std::vector<Share>& shares) const;

  // Lagrange coefficient for share `i` within the share set (evaluated at 0);
  // exposed for "reconstruction in the exponent" (ABE decryption combines
  // g^{y_i * lambda_i} without learning y_i).
  [[nodiscard]] std::uint64_t lagrange_coefficient(
      const std::vector<Share>& shares, std::size_t i) const;

 private:
  std::uint64_t q_;
};

}  // namespace vcl::crypto
