#include "attack/sybil.h"

namespace vcl::attack {

std::vector<std::uint64_t> SybilFactory::credentials(
    const std::vector<VehicleId>& compromised, std::size_t per_vehicle) {
  std::vector<std::uint64_t> out;
  out.reserve(compromised.size() * per_vehicle);
  for (const VehicleId v : compromised) {
    for (std::size_t i = 0; i < per_vehicle; ++i) {
      out.push_back((1ULL << 48) | (v.value() << 16) | i);
    }
  }
  return out;
}

}  // namespace vcl::attack
