// Sybil identity factory: one compromised vehicle, many credentials.
//
// Against authentication-less or pool-issued-credential systems an attacker
// multiplies its apparent witness count; the E10/E11 benches show how vote
// validators collapse under Sybil amplification while per-vehicle enrollment
// (group protocols) caps it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace vcl::attack {

class SybilFactory {
 public:
  // Derives `per_vehicle` fake credential ids for each compromised vehicle.
  // Credential ids are drawn from a reserved high range so they never
  // collide with honest credentials in a scenario.
  [[nodiscard]] static std::vector<std::uint64_t> credentials(
      const std::vector<VehicleId>& compromised, std::size_t per_vehicle);
};

}  // namespace vcl::attack
