#include "attack/false_data.h"

namespace vcl::attack {

trust::Report FalseDataAttacker::base_report(trust::EventType type,
                                             geo::Vec2 where, SimTime now,
                                             std::size_t idx) {
  trust::Report r;
  r.type = type;
  // Small jitter: colluding attackers avoid byte-identical claims.
  r.location = where + geo::Vec2{rng_.uniform(-20, 20), rng_.uniform(-20, 20)};
  r.time = now + 0.01 * static_cast<double>(idx);
  r.reporter_credential = credentials_.empty()
                              ? 0
                              : credentials_[next_credential_++ %
                                             credentials_.size()];
  // Claim to have witnessed from nearby (plausible distance).
  r.reporter_pos =
      where + geo::Vec2{rng_.uniform(-80, 80), rng_.uniform(-80, 80)};
  r.truthful = false;
  return r;
}

std::vector<trust::Report> FalseDataAttacker::fabricate(trust::EventType type,
                                                        geo::Vec2 where,
                                                        SimTime now,
                                                        std::size_t n_reports) {
  std::vector<trust::Report> out;
  out.reserve(n_reports);
  for (std::size_t i = 0; i < n_reports; ++i) {
    trust::Report r = base_report(type, where, now, i);
    r.positive = true;  // asserts the fake event exists
    r.truth_event = EventId{};  // no ground-truth event behind it
    out.push_back(r);
  }
  return out;
}

std::vector<trust::Report> FalseDataAttacker::deny(
    const trust::GroundTruthEvent& event, SimTime now, std::size_t n_reports) {
  std::vector<trust::Report> out;
  out.reserve(n_reports);
  for (std::size_t i = 0; i < n_reports; ++i) {
    trust::Report r = base_report(event.type, event.location, now, i);
    r.positive = false;  // claims the real event is absent
    r.truth_event = event.id;
    out.push_back(r);
  }
  return out;
}

}  // namespace vcl::attack
