#include "attack/tracker.h"

#include <algorithm>

namespace vcl::attack {

TrackingScore TrackingAdversary::analyze(
    std::vector<auth::AirObservation> obs) const {
  TrackingScore score;
  if (obs.size() < 2) return score;
  std::sort(obs.begin(), obs.end(),
            [](const auth::AirObservation& a, const auth::AirObservation& b) {
              return a.time < b.time;
            });

  // Greedy chaining: each observation either extends an existing chain or
  // starts a new one. Chain state: last observation index.
  struct Chain {
    std::size_t last;
  };
  std::vector<Chain> chains;
  // adversary_link[i] = index of the observation the adversary chained i to
  // (or npos).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> linked_to(obs.size(), kNone);

  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto& o = obs[i];
    std::size_t best_chain = kNone;
    double best_cost = 1e300;
    for (std::size_t c = 0; c < chains.size(); ++c) {
      const auto& prev = obs[chains[c].last];
      const double dt = o.time - prev.time;
      if (dt <= 0.0) continue;
      const bool id_match =
          o.visible_id != 0 && o.visible_id == prev.visible_id;
      const double dist = geo::distance(o.pos, prev.pos);
      const bool kinematic_ok =
          config_.use_kinematics && dist <= config_.max_speed * dt + 15.0;
      if (!id_match && !kinematic_ok) continue;
      // Prefer id matches strongly; otherwise nearest continuation.
      const double cost = id_match ? -1.0 : dist;
      if (cost < best_cost) {
        best_cost = cost;
        best_chain = c;
      }
    }
    if (best_chain == kNone) {
      chains.push_back(Chain{i});
    } else {
      linked_to[i] = chains[best_chain].last;
      chains[best_chain].last = i;
    }
  }
  score.chains = chains.size();

  // Score links.
  std::size_t links = 0;
  std::size_t correct_links = 0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (linked_to[i] == kNone) continue;
    ++links;
    if (obs[i].truth == obs[linked_to[i]].truth) ++correct_links;
  }
  score.link_precision =
      links == 0 ? 0.0
                 : static_cast<double>(correct_links) /
                       static_cast<double>(links);

  // Recall: adjacent ground-truth pairs recovered. Build per-vehicle
  // time-ordered lists.
  std::size_t truth_pairs = 0;
  std::size_t recovered = 0;
  std::unordered_map<std::uint64_t, std::size_t> last_of_vehicle;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    auto it = last_of_vehicle.find(obs[i].truth.value());
    if (it != last_of_vehicle.end()) {
      ++truth_pairs;
      if (linked_to[i] == it->second) ++recovered;
    }
    last_of_vehicle[obs[i].truth.value()] = i;
  }
  score.link_recall = truth_pairs == 0
                          ? 0.0
                          : static_cast<double>(recovered) /
                                static_cast<double>(truth_pairs);
  return score;
}

}  // namespace vcl::attack
