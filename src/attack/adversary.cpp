#include "attack/adversary.h"

#include <algorithm>

namespace vcl::attack {

void AdversaryRoster::recruit(const mobility::TrafficModel& traffic,
                              double fraction, Rng& rng) {
  std::vector<VehicleId> ids;
  ids.reserve(traffic.vehicle_count());
  for (const auto& [vid, v] : traffic.vehicles()) ids.push_back(v.id);
  std::sort(ids.begin(), ids.end());  // deterministic base order
  rng.shuffle(ids);
  const auto n = static_cast<std::size_t>(
      fraction * static_cast<double>(ids.size()) + 0.5);
  for (std::size_t i = 0; i < n && i < ids.size(); ++i) add(ids[i]);
}

std::vector<VehicleId> AdversaryRoster::members() const {
  std::vector<VehicleId> out;
  out.reserve(members_.size());
  for (const std::uint64_t v : members_) out.push_back(VehicleId{v});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vcl::attack
