#include "attack/adversary.h"

#include <algorithm>
#include <stdexcept>

namespace vcl::attack {

std::string validate(const AdversaryConfig& config, std::size_t fleet_size) {
  if (!config.enabled) return {};
  if (config.sybil_rate < 0.0) return "sybil_rate is negative";
  if (config.revoke_rate < 0.0) return "revoke_rate is negative";
  if (config.replay_rate < 0.0) return "replay_rate is negative";
  if (config.sybil_rate > 0.0) {
    if (config.sybil_count == 0) return "sybil_count must be >= 1";
    if (config.sybil_count > fleet_size) {
      return "sybil_count exceeds the fleet size";
    }
  }
  if (config.defend && config.freshness_window <= 0.0) {
    return "freshness_window must be positive";
  }
  return {};
}

void validate_or_throw(const AdversaryConfig& config, std::size_t fleet_size) {
  if (const std::string problem = validate(config, fleet_size);
      !problem.empty()) {
    throw std::invalid_argument("AdversaryConfig: " + problem);
  }
}

void AdversaryRoster::recruit(const mobility::TrafficModel& traffic,
                              double fraction, Rng& rng) {
  std::vector<VehicleId> ids;
  ids.reserve(traffic.vehicle_count());
  for (const auto& [vid, v] : traffic.vehicles()) ids.push_back(v.id);
  std::sort(ids.begin(), ids.end());  // deterministic base order
  rng.shuffle(ids);
  const auto n = static_cast<std::size_t>(
      fraction * static_cast<double>(ids.size()) + 0.5);
  for (std::size_t i = 0; i < n && i < ids.size(); ++i) add(ids[i]);
}

std::vector<VehicleId> AdversaryRoster::members() const {
  std::vector<VehicleId> out;
  out.reserve(members_.size());
  for (const std::uint64_t v : members_) out.push_back(VehicleId{v});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vcl::attack
