// Message suppression / delay at malicious relays (paper §III: "message
// delay and suppression attacks").
//
// A compromised vehicle that is asked to forward a message silently drops it
// (probability `drop_prob`) or sits on it for `delay` seconds before
// forwarding honestly. Implemented by overriding the forwarding hook of the
// underlying protocol (greedy-geo here; the pattern applies to any Router).
#pragma once

#include "attack/adversary.h"
#include "routing/greedy_geo.h"

namespace vcl::attack {

struct SuppressionConfig {
  double drop_prob = 1.0;  // 1.0 = pure suppression; <1 mixes in delays
  SimTime delay = 5.0;     // applied when not dropped
};

class SuppressedGreedyRouter final : public routing::GreedyGeo {
 public:
  SuppressedGreedyRouter(net::Network& net, const AdversaryRoster& roster,
                         SuppressionConfig config, Rng rng,
                         routing::RouterConfig router_config = {})
      : routing::GreedyGeo(net, router_config),
        roster_(roster),
        config_(config),
        rng_(rng) {}

  [[nodiscard]] const char* name() const override {
    return "greedy_geo+suppression";
  }

  [[nodiscard]] std::size_t suppressed() const { return suppressed_; }
  [[nodiscard]] std::size_t delayed() const { return delayed_; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;

 private:
  const AdversaryRoster& roster_;
  SuppressionConfig config_;
  Rng rng_;
  std::size_t suppressed_ = 0;
  std::size_t delayed_ = 0;
};

}  // namespace vcl::attack
