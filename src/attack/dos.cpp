#include "attack/dos.h"

namespace vcl::attack {

void DosFlooder::start() {
  if (active_) return;
  active_ = true;
  // Contention load: each junk message occupies roughly one slot; express
  // the rate as equivalent concurrent transmitters (empirically, rate/10
  // beacons-per-second-equivalents).
  const double load = config_.messages_per_second / 10.0;
  for (const VehicleId v : roster_.members()) {
    net_.set_extra_load(v, load);
  }
  tick_handle_ = net_.simulator().schedule_every(1.0, [this] { tick(); });
}

void DosFlooder::stop() {
  if (!active_) return;
  active_ = false;
  for (const VehicleId v : roster_.members()) net_.set_extra_load(v, 0.0);
  net_.simulator().cancel(tick_handle_);
}

void DosFlooder::tick() {
  if (!active_) return;
  // One representative junk broadcast per flooder per tick keeps the event
  // count tractable; the *channel* effect is carried by the extra load.
  for (const VehicleId v : roster_.members()) {
    if (net_.traffic().find(v) == nullptr) continue;
    net::Message junk;
    junk.id = net_.next_message_id();
    junk.src = net::Address::vehicle(v);
    junk.dst = net::Address::broadcast();
    junk.kind = net::MessageKind::kData;
    junk.size_bytes = config_.junk_bytes;
    junk.created = net_.simulator().now();
    net_.broadcast(junk);
    ++junk_sent_;
  }
}

}  // namespace vcl::attack
