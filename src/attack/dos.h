// Denial-of-service flooding (paper §III: "attackers may send a large
// amount of junk messages so as to block the services").
//
// Flooder vehicles broadcast junk at a configurable rate. Two effects are
// modeled: (1) the junk transmissions consume air time — the flooder
// registers as extra contention load on the channel, eroding reception for
// everyone nearby; (2) victims burn verification budget rejecting junk.
#pragma once

#include "attack/adversary.h"
#include "net/network.h"

namespace vcl::attack {

struct DosConfig {
  double messages_per_second = 50.0;
  std::size_t junk_bytes = 1024;
};

class DosFlooder {
 public:
  DosFlooder(net::Network& net, const AdversaryRoster& roster,
             DosConfig config = {})
      : net_(net), roster_(roster), config_(config) {}

  // Registers contention load and schedules the junk broadcasts.
  void start();
  void stop();

  [[nodiscard]] std::size_t junk_sent() const { return junk_sent_; }
  [[nodiscard]] bool active() const { return active_; }

 private:
  void tick();

  net::Network& net_;
  const AdversaryRoster& roster_;
  DosConfig config_;
  bool active_ = false;
  std::size_t junk_sent_ = 0;
  sim::EventHandle tick_handle_;
};

}  // namespace vcl::attack
