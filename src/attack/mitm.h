// Man-in-the-middle at malicious relays (paper §III: "attackers can
// secretly relay or alter the network packets between two vehicles").
//
// A compromised relay forwards honestly (so the victims believe the path
// works) but flips payload bits with probability `tamper_prob`. Without
// end-to-end authentication the altered payload is consumed; with it, the
// signature check catches every altered message — the defense the paper's
// authentication section presumes.
#pragma once

#include "attack/adversary.h"
#include "routing/greedy_geo.h"

namespace vcl::attack {

struct MitmConfig {
  double tamper_prob = 1.0;
};

class MitmGreedyRouter final : public routing::GreedyGeo {
 public:
  MitmGreedyRouter(net::Network& net, const AdversaryRoster& roster,
                   MitmConfig config, Rng rng,
                   routing::RouterConfig router_config = {})
      : routing::GreedyGeo(net, router_config),
        roster_(roster),
        config_(config),
        rng_(rng) {}

  [[nodiscard]] const char* name() const override { return "greedy+mitm"; }
  [[nodiscard]] std::size_t tampered() const { return tampered_; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;

 private:
  const AdversaryRoster& roster_;
  MitmConfig config_;
  Rng rng_;
  std::size_t tampered_ = 0;
};

}  // namespace vcl::attack
