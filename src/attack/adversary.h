// Adversary population management.
//
// Experiments designate a fraction of vehicles as attacker-controlled; the
// concrete attack classes (false data, Sybil, replay, suppression, DoS,
// tracking) read the roster from here so "20% attackers" means the same set
// across every module in one scenario.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "mobility/traffic.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::attack {

// Adversarial-chaos episode knobs (paper §IV): storm intensities for the
// three attack shapes ChaosPlanner generates, plus the defense-side policy
// the cloud's admission path enforces. `enabled == false` is the inertness
// contract: no storms are drawn, no admission state is allocated, and a run
// is bit-identical to one built before this struct existed.
struct AdversaryConfig {
  bool enabled = false;

  // Storm intensities (storms per second over the episode horizon).
  double sybil_rate = 0.0;
  std::size_t sybil_count = 3;  // fabricated joins per sybil burst
  double revoke_rate = 0.0;
  double replay_rate = 0.0;

  // Defense policy. `defend == false` runs the same storms with admission
  // wide open — the vulnerable baseline the E24 bench compares against.
  bool defend = true;
  SimTime freshness_window = 2.0;  // replayed joins/acks older than this die
  // Fabricated identities the verification policy tolerates as full members
  // (0 under the strict policy: every sybil is quarantined, never admitted).
  std::size_t max_unverified_admissions = 0;
  // DELIBERATE test-only defense bug (passthrough to
  // vcloud::AdmissionConfig::test_drop_revoked_requeue): the revocation
  // eviction sweep drops the evicted worker's held task instead of
  // re-queuing it. Exists to prove the adversarial soak catches, shrinks
  // and replays a seeded defense bug. Never enable outside tests.
  bool test_drop_revoked_requeue = false;
};

// Mirrors validate(FaultPlanConfig): empty string when sane, else a
// one-line description of the first problem. `fleet_size` is the honest
// vehicle population; a sybil burst larger than the fleet is a config
// error, not a storm.
[[nodiscard]] std::string validate(const AdversaryConfig& config,
                                   std::size_t fleet_size);

// Throws std::invalid_argument("AdversaryConfig: ...") when validate()
// reports a problem. Called by the system wiring before any storm is drawn.
void validate_or_throw(const AdversaryConfig& config, std::size_t fleet_size);

class AdversaryRoster {
 public:
  AdversaryRoster() = default;

  // Marks `fraction` of the current vehicle population as malicious.
  void recruit(const mobility::TrafficModel& traffic, double fraction,
               Rng& rng);
  void add(VehicleId v) { members_.insert(v.value()); }

  [[nodiscard]] bool is_malicious(VehicleId v) const {
    return members_.count(v.value()) != 0;
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::vector<VehicleId> members() const;

 private:
  std::unordered_set<std::uint64_t> members_;
};

}  // namespace vcl::attack
