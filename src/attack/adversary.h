// Adversary population management.
//
// Experiments designate a fraction of vehicles as attacker-controlled; the
// concrete attack classes (false data, Sybil, replay, suppression, DoS,
// tracking) read the roster from here so "20% attackers" means the same set
// across every module in one scenario.
#pragma once

#include <unordered_set>
#include <vector>

#include "mobility/traffic.h"
#include "util/rng.h"

namespace vcl::attack {

class AdversaryRoster {
 public:
  AdversaryRoster() = default;

  // Marks `fraction` of the current vehicle population as malicious.
  void recruit(const mobility::TrafficModel& traffic, double fraction,
               Rng& rng);
  void add(VehicleId v) { members_.insert(v.value()); }

  [[nodiscard]] bool is_malicious(VehicleId v) const {
    return members_.count(v.value()) != 0;
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::vector<VehicleId> members() const;

 private:
  std::unordered_set<std::uint64_t> members_;
};

}  // namespace vcl::attack
