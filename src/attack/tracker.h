// Tracking adversary: links pseudonymous air observations into vehicle
// trajectories (paper §III "privacy breach: tracking movements of
// vehicles").
//
// Two linking signals: (1) identifier reuse — same visible id implies same
// vehicle; (2) kinematic continuity — an observation within `max_speed x dt`
// of a trajectory head is chained to it even across an id change. Scoring
// compares chains against ground truth.
#pragma once

#include <vector>

#include "auth/privacy_metrics.h"

namespace vcl::attack {

struct TrackerConfig {
  double max_speed = 40.0;  // m/s bound used for kinematic linking
  bool use_kinematics = true;
};

struct TrackingScore {
  // Fraction of adjacent same-vehicle observation pairs the adversary
  // correctly chained.
  double link_recall = 0.0;
  // Fraction of the adversary's links that are actually same-vehicle.
  double link_precision = 0.0;
  std::size_t chains = 0;
};

class TrackingAdversary {
 public:
  explicit TrackingAdversary(TrackerConfig config = {}) : config_(config) {}

  // Consumes time-ordered observations and scores the reconstruction.
  [[nodiscard]] TrackingScore analyze(
      std::vector<auth::AirObservation> observations) const;

 private:
  TrackerConfig config_;
};

}  // namespace vcl::attack
