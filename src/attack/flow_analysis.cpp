#include "attack/flow_analysis.h"

#include <algorithm>

namespace vcl::attack {

void FlowAnalyzer::observe(VehicleId sender, std::size_t bytes) {
  bytes_by_sender_[sender.value()] += bytes;
  ++observations_;
}

std::vector<VehicleId> FlowAnalyzer::top_talkers(std::size_t k) const {
  std::vector<std::pair<std::size_t, std::uint64_t>> ranked;
  ranked.reserve(bytes_by_sender_.size());
  for (const auto& [vid, bytes] : bytes_by_sender_) {
    ranked.emplace_back(bytes, vid);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic ties
  });
  std::vector<VehicleId> out;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    out.push_back(VehicleId{ranked[i].second});
  }
  return out;
}

double FlowAnalyzer::role_identification_recall(
    const std::vector<VehicleId>& true_coordinators) const {
  if (true_coordinators.empty()) return 0.0;
  const auto guess = top_talkers(true_coordinators.size());
  std::size_t hits = 0;
  for (const VehicleId t : true_coordinators) {
    hits += std::find(guess.begin(), guess.end(), t) != guess.end() ? 1 : 0;
  }
  return static_cast<double>(hits) /
         static_cast<double>(true_coordinators.size());
}

}  // namespace vcl::attack
