#include "attack/replay.h"

namespace vcl::attack {

void ReplayAttacker::capture(const crypto::Bytes& payload,
                             const auth::AuthTag& tag, SimTime now) {
  log_.push_back(CapturedMessage{payload, tag, now});
}

crypto::Bytes make_fresh_payload(const crypto::Bytes& body, SimTime now,
                                 std::uint64_t nonce) {
  crypto::Bytes out;
  crypto::append_u64(out, static_cast<std::uint64_t>(now * 1e6));
  crypto::append_u64(out, nonce);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool FreshnessChecker::accept(const crypto::Bytes& fresh_payload,
                              SimTime now) {
  if (fresh_payload.size() < 16) return false;
  const auto ts_us = crypto::read_u64(fresh_payload, 0);
  const auto nonce = crypto::read_u64(fresh_payload, 8);
  const SimTime ts = static_cast<double>(ts_us) / 1e6;
  if (now - ts > window_ || ts - now > window_) {
    ++stale_;
    return false;
  }
  if (!seen_nonces_.insert(nonce).second) {
    ++duplicate_;
    return false;
  }
  return true;
}

}  // namespace vcl::attack
