#include "attack/suppression.h"

namespace vcl::attack {

void SuppressedGreedyRouter::forward(VehicleId self, const net::Message& msg) {
  // The originator never sabotages its own message; only relays do.
  const bool is_relay = !(msg.src.is_vehicle() && msg.src.as_vehicle() == self)
                        && msg.hops > 0;
  if (is_relay && roster_.is_malicious(self)) {
    if (rng_.bernoulli(config_.drop_prob)) {
      ++suppressed_;
      return;  // silent drop
    }
    ++delayed_;
    net::Message held = msg;
    network().simulator().schedule_after(config_.delay, [this, self, held] {
      if (network().traffic().find(self) != nullptr) {
        routing::GreedyGeo::forward(self, held);
      }
    });
    return;
  }
  routing::GreedyGeo::forward(self, msg);
}

}  // namespace vcl::attack
