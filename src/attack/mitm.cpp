#include "attack/mitm.h"

namespace vcl::attack {

void MitmGreedyRouter::forward(VehicleId self, const net::Message& msg) {
  const bool is_relay = msg.hops > 0 &&
                        !(msg.src.is_vehicle() && msg.src.as_vehicle() == self);
  if (is_relay && roster_.is_malicious(self) && !msg.payload.empty() &&
      rng_.bernoulli(config_.tamper_prob)) {
    net::Message altered = msg;
    // Flip one byte: enough to corrupt content while keeping size/shape
    // (traffic-analysis-resistant tampering).
    const std::size_t at = rng_.index(altered.payload.size());
    altered.payload[at] ^= 0xff;
    ++tampered_;
    routing::GreedyGeo::forward(self, altered);
    return;
  }
  routing::GreedyGeo::forward(self, msg);
}

}  // namespace vcl::attack
