// Traffic-flow analysis (paper §III application-level threats: "analyze
// the characteristics of network flow, such as frequency, size, and
// destination ... to steal critical information").
//
// The adversary only sees WHO transmits HOW MUCH — no payloads. Cluster
// heads/brokers talk far more than members (task dispatch, aggregation,
// membership), so transmission volume alone de-anonymizes the coordinator
// role. The defense is padding: members emit dummy traffic to flatten the
// distribution, traded off against overhead.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace vcl::attack {

class FlowAnalyzer {
 public:
  // One observation per transmission overheard.
  void observe(VehicleId sender, std::size_t bytes);

  // The adversary's guess: the top-k talkers are the coordinators.
  [[nodiscard]] std::vector<VehicleId> top_talkers(std::size_t k) const;

  // Scores the guess against ground truth: |guess ∩ truth| / |truth|.
  [[nodiscard]] double role_identification_recall(
      const std::vector<VehicleId>& true_coordinators) const;

  [[nodiscard]] std::size_t observations() const { return observations_; }
  [[nodiscard]] std::size_t distinct_senders() const {
    return bytes_by_sender_.size();
  }

 private:
  std::unordered_map<std::uint64_t, std::size_t> bytes_by_sender_;
  std::size_t observations_ = 0;
};

}  // namespace vcl::attack
