// False-data injection: fabricate events that never happened and deny
// events that did (paper §III, "data disruption").
#pragma once

#include <vector>

#include "attack/sybil.h"
#include "trust/report.h"
#include "util/rng.h"

namespace vcl::attack {

class FalseDataAttacker {
 public:
  // `credentials` is the pool of sender identities the attacker controls —
  // one per compromised vehicle, multiplied by a Sybil factory if present.
  FalseDataAttacker(std::vector<std::uint64_t> credentials, Rng rng)
      : credentials_(std::move(credentials)), rng_(rng) {}

  // Reports claiming a non-existent event at `where`. Each report uses a
  // distinct controlled credential (cycling when n exceeds the pool).
  [[nodiscard]] std::vector<trust::Report> fabricate(trust::EventType type,
                                                     geo::Vec2 where,
                                                     SimTime now,
                                                     std::size_t n_reports);

  // Denial reports against a real event (claiming the road is clear).
  [[nodiscard]] std::vector<trust::Report> deny(
      const trust::GroundTruthEvent& event, SimTime now,
      std::size_t n_reports);

  [[nodiscard]] std::size_t credential_count() const {
    return credentials_.size();
  }

 private:
  trust::Report base_report(trust::EventType type, geo::Vec2 where,
                            SimTime now, std::size_t idx);

  std::vector<std::uint64_t> credentials_;
  Rng rng_;
  std::size_t next_credential_ = 0;
};

}  // namespace vcl::attack
