// Replay attack and the freshness defense.
//
// The attacker records authenticated (payload, tag) pairs off the air and
// re-injects them later: the signature still verifies, so authentication
// alone does not stop it. The defense binds a timestamp + nonce into the
// signed payload; verifiers reject stale timestamps and remembered nonces.
#pragma once

#include <deque>
#include <unordered_set>

#include "auth/pseudonym.h"
#include "util/time.h"

namespace vcl::attack {

struct CapturedMessage {
  crypto::Bytes payload;
  auth::AuthTag tag;
  SimTime captured_at = 0.0;
};

class ReplayAttacker {
 public:
  void capture(const crypto::Bytes& payload, const auth::AuthTag& tag,
               SimTime now);
  [[nodiscard]] std::size_t captured() const { return log_.size(); }
  // All captured messages, unmodified — ready for re-injection.
  [[nodiscard]] const std::deque<CapturedMessage>& log() const { return log_; }

 private:
  std::deque<CapturedMessage> log_;
};

// Freshness envelope helpers: payload = timestamp || nonce || body.
crypto::Bytes make_fresh_payload(const crypto::Bytes& body, SimTime now,
                                 std::uint64_t nonce);

class FreshnessChecker {
 public:
  explicit FreshnessChecker(SimTime window = 2.0) : window_(window) {}

  // Accepts iff the embedded timestamp is within the window of `now` and the
  // nonce was never seen. Returns false for malformed payloads.
  bool accept(const crypto::Bytes& fresh_payload, SimTime now);

  [[nodiscard]] std::size_t rejected_stale() const { return stale_; }
  [[nodiscard]] std::size_t rejected_duplicate() const { return duplicate_; }

 private:
  SimTime window_;
  std::unordered_set<std::uint64_t> seen_nonces_;
  std::size_t stale_ = 0;
  std::size_t duplicate_ = 0;
};

}  // namespace vcl::attack
