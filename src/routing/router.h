// Router base class: multi-hop message delivery over the one-hop fabric.
//
// A Router installs itself as the network's default vehicle handler; every
// received data message runs the protocol's forwarding decision on the
// receiving vehicle. One router is active per scenario (the benches compare
// protocols across runs, not within one).
//
// Shared machinery: duplicate suppression, TTL/age expiry, carry-and-
// forward buffers with a periodic retry tick, and metrics.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/network.h"
#include "routing/metrics.h"

namespace vcl::routing {

struct RouterConfig {
  int default_ttl = 16;
  SimTime max_age = 30.0;       // drop messages older than this
  SimTime retry_period = 1.0;   // carry-and-forward retry tick
  std::size_t buffer_limit = 64;  // per-vehicle carry buffer
};

class Router {
 public:
  Router(net::Network& net, RouterConfig config = {});
  virtual ~Router() = default;
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  // Installs handlers and the retry tick.
  void attach();

  // Originates a message at `src` for vehicle `dst`. The router stamps id,
  // creation time, TTL and the destination's current position (location-
  // service assumption, standard in geo-routing evaluations).
  MessageId originate(VehicleId src, VehicleId dst,
                      std::size_t size_bytes = 256);

  [[nodiscard]] const RoutingMetrics& metrics() const { return metrics_; }
  RoutingMetrics& metrics() { return metrics_; }
  [[nodiscard]] net::Network& network() { return net_; }

 protected:
  // Protocol hook: decide what the vehicle `self` does with `msg` (which is
  // already known to be non-duplicate, in-TTL and not addressed to self).
  virtual void forward(VehicleId self, const net::Message& msg) = 0;
  // Protocol hook: retry tick for messages parked in the carry buffer.
  virtual void retry(VehicleId self, const net::Message& msg);

  // Common reception path (duplicate/TTL/age checks, delivery detection).
  void on_receive(VehicleId self, const net::Message& msg);

  // Parks a message on `self` until the next retry tick.
  void buffer_message(VehicleId self, const net::Message& msg);

  // One-hop helpers that keep the transmission count honest.
  bool send_to(VehicleId from, net::Address to, net::Message msg);
  std::size_t broadcast_from(VehicleId from, net::Message msg);

  [[nodiscard]] bool seen(VehicleId self, MessageId id) const;
  void mark_seen(VehicleId self, MessageId id);

  net::Network& net_;
  RouterConfig config_;
  RoutingMetrics metrics_;

 private:
  void retry_tick();

  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> seen_;
  std::unordered_map<std::uint64_t, std::deque<net::Message>> buffers_;
};

}  // namespace vcl::routing
