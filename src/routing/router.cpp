#include "routing/router.h"

namespace vcl::routing {

Router::Router(net::Network& net, RouterConfig config)
    : net_(net), config_(config) {}

void Router::attach() {
  net_.set_default_vehicle_handler(
      [this](VehicleId self, const net::Message& msg) {
        on_receive(self, msg);
      });
  net_.simulator().schedule_every(config_.retry_period,
                                  [this] { retry_tick(); }, -1.0,
                                  "routing.retry");
}

MessageId Router::originate(VehicleId src, VehicleId dst,
                            std::size_t size_bytes) {
  net::Message msg;
  msg.id = net_.next_message_id();
  msg.src = net::Address::vehicle(src);
  msg.dst = net::Address::vehicle(dst);
  msg.kind = net::MessageKind::kData;
  msg.size_bytes = size_bytes;
  msg.created = net_.simulator().now();
  msg.ttl = config_.default_ttl;
  if (const auto pos = net_.position_of(msg.dst)) {
    msg.dst_pos = *pos;
    msg.has_dst_pos = true;
  }
  metrics_.on_originate(msg);
  mark_seen(src, msg.id);
  forward(src, msg);
  return msg.id;
}

void Router::on_receive(VehicleId self, const net::Message& msg) {
  if (msg.dst.is_vehicle() && msg.dst.as_vehicle() == self) {
    metrics_.on_deliver(msg, net_.simulator().now());
    return;
  }
  if (seen(self, msg.id)) return;
  mark_seen(self, msg.id);
  if (msg.hops >= msg.ttl) return;
  if (net_.simulator().now() - msg.created > config_.max_age) return;
  forward(self, msg);
}

void Router::buffer_message(VehicleId self, const net::Message& msg) {
  auto& buf = buffers_[self.value()];
  if (buf.size() >= config_.buffer_limit) buf.pop_front();
  buf.push_back(msg);
}

void Router::retry(VehicleId self, const net::Message& msg) {
  forward(self, msg);
}

void Router::retry_tick() {
  const SimTime now = net_.simulator().now();
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    const VehicleId self{it->first};
    if (net_.traffic().find(self) == nullptr) {
      it = buffers_.erase(it);  // carrier left the simulation
      continue;
    }
    std::deque<net::Message> pending;
    pending.swap(it->second);
    ++it;
    for (const net::Message& msg : pending) {
      if (now - msg.created > config_.max_age) continue;
      retry(self, msg);
    }
  }
}

bool Router::send_to(VehicleId from, net::Address to, net::Message msg) {
  msg.src = net::Address::vehicle(from);
  metrics_.on_transmit();
  return net_.send_via(msg, to);
}

std::size_t Router::broadcast_from(VehicleId from, net::Message msg) {
  msg.src = net::Address::vehicle(from);
  metrics_.on_transmit();
  return net_.broadcast(msg);
}

bool Router::seen(VehicleId self, MessageId id) const {
  auto it = seen_.find(self.value());
  return it != seen_.end() && it->second.count(id.value()) != 0;
}

void Router::mark_seen(VehicleId self, MessageId id) {
  seen_[self.value()].insert(id.value());
}

}  // namespace vcl::routing
