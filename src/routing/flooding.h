// Flooding with duplicate suppression: the delivery-ratio upper bound and
// overhead worst case among the protocols (baseline for E6).
#pragma once

#include "routing/router.h"

namespace vcl::routing {

class Flooding final : public Router {
 public:
  explicit Flooding(net::Network& net, RouterConfig config = {})
      : Router(net, config) {}

  [[nodiscard]] const char* name() const override { return "flooding"; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;
};

}  // namespace vcl::routing
