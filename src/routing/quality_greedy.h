// Quality-weighted greedy forwarding.
//
// The E16 ablation shows plain greedy-geo degrading when neighbor tables
// accumulate marginal entries: maximum geographic progress is usually a
// far-away neighbor over a lossy link. QualityGreedy scores candidates by
// expected progress — progress x estimated reception probability (from the
// channel model at the entry's last known position) — which keeps hops on
// reliable links without giving up on progress.
#pragma once

#include "routing/router.h"

namespace vcl::routing {

class QualityGreedy final : public Router {
 public:
  explicit QualityGreedy(net::Network& net, RouterConfig config = {})
      : Router(net, config) {}

  [[nodiscard]] const char* name() const override { return "quality_greedy"; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;
};

}  // namespace vcl::routing
