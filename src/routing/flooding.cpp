#include "routing/flooding.h"

namespace vcl::routing {

void Flooding::forward(VehicleId self, const net::Message& msg) {
  // Deliver directly when the destination happens to be in range; the
  // broadcast covers it too, but the unicast attempt reduces miss chances
  // at no extra model cost.
  broadcast_from(self, msg);
}

}  // namespace vcl::routing
