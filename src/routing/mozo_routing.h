// MoZo routing (Lin, Kang et al. [22]): moving-zone based delivery using
// pure V2V communication.
//
// Within a zone, the captain's membership table yields the next hop
// directly. Across zones, messages travel greedily between captains until
// they reach the destination's zone. The zone structure is provided by a
// MovingZone cluster manager kept updated alongside the router.
#pragma once

#include "cluster/moving_zone.h"
#include "routing/router.h"

namespace vcl::routing {

class MozoRouting final : public Router {
 public:
  MozoRouting(net::Network& net, cluster::MovingZone& zones,
              RouterConfig config = {})
      : Router(net, config), zones_(zones) {}

  [[nodiscard]] const char* name() const override { return "mozo"; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;

 private:
  cluster::MovingZone& zones_;
};

}  // namespace vcl::routing
