// Delivery / latency / overhead accounting shared by all routing protocols.
#pragma once

#include <unordered_set>

#include "net/message.h"
#include "util/stats.h"

namespace vcl::routing {

class RoutingMetrics {
 public:
  void on_originate(const net::Message& msg);
  // Records first delivery of a message to its destination; duplicates are
  // ignored. `now` is the delivery time.
  void on_deliver(const net::Message& msg, SimTime now);
  void on_transmit() { ++transmissions_; }

  [[nodiscard]] std::size_t originated() const { return originated_; }
  [[nodiscard]] std::size_t delivered() const { return delivered_.size(); }
  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  [[nodiscard]] double delivery_ratio() const;
  // Transmissions per originated message (protocol overhead).
  [[nodiscard]] double overhead() const;
  [[nodiscard]] const Accumulator& delay() const { return delay_; }
  [[nodiscard]] const Accumulator& hops() const { return hops_; }
  [[nodiscard]] bool was_delivered(MessageId id) const {
    return delivered_.count(id.value()) != 0;
  }

 private:
  std::size_t originated_ = 0;
  std::size_t transmissions_ = 0;
  std::unordered_set<std::uint64_t> delivered_;
  Accumulator delay_;
  Accumulator hops_;
};

// Predicted seconds two nodes stay within `range`, given their kinematics
// (constant-velocity extrapolation; used by CBLTR-style head/next-hop
// selection). Returns +inf when they never separate, 0 when already out of
// range.
double link_lifetime(geo::Vec2 pos_a, geo::Vec2 vel_a, geo::Vec2 pos_b,
                     geo::Vec2 vel_b, double range);

}  // namespace vcl::routing
