#include "routing/metrics.h"

#include <cmath>
#include <limits>

namespace vcl::routing {

void RoutingMetrics::on_originate(const net::Message& msg) {
  (void)msg;
  ++originated_;
}

void RoutingMetrics::on_deliver(const net::Message& msg, SimTime now) {
  if (!delivered_.insert(msg.id.value()).second) return;
  delay_.add(now - msg.created);
  hops_.add(static_cast<double>(msg.hops));
}

double RoutingMetrics::delivery_ratio() const {
  return originated_ == 0
             ? 0.0
             : static_cast<double>(delivered_.size()) /
                   static_cast<double>(originated_);
}

double RoutingMetrics::overhead() const {
  return originated_ == 0 ? 0.0
                          : static_cast<double>(transmissions_) /
                                static_cast<double>(originated_);
}

double link_lifetime(geo::Vec2 pos_a, geo::Vec2 vel_a, geo::Vec2 pos_b,
                     geo::Vec2 vel_b, double range) {
  const geo::Vec2 dp = pos_b - pos_a;
  const geo::Vec2 dv = vel_b - vel_a;
  const double c = dp.norm2() - range * range;
  if (c > 0.0) return 0.0;  // already out of range
  const double a = dv.norm2();
  if (a < 1e-12) return std::numeric_limits<double>::infinity();
  const double b = 2.0 * dp.dot(dv);
  // Solve |dp + t dv|^2 = range^2 for the positive root.
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return std::numeric_limits<double>::infinity();
  const double t = (-b + std::sqrt(disc)) / (2.0 * a);
  return t < 0.0 ? 0.0 : t;
}

}  // namespace vcl::routing
