#include "routing/greedy_geo.h"

namespace vcl::routing {

void GreedyGeo::forward(VehicleId self, const net::Message& msg) {
  // Direct delivery when the destination is a live neighbor.
  const VehicleId dst = msg.dst.as_vehicle();
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    if (n.id == dst) {
      if (send_to(self, msg.dst, msg)) return;
      break;
    }
  }
  if (!msg.has_dst_pos) {
    // No location info: degrade to a single local broadcast.
    broadcast_from(self, msg);
    return;
  }
  const mobility::VehicleState* me = net_.traffic().find(self);
  if (me == nullptr) return;
  const double my_dist = geo::distance(me->pos, msg.dst_pos);

  VehicleId best;
  double best_dist = my_dist;
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    const double d = geo::distance(n.pos, msg.dst_pos);
    if (d < best_dist) {
      best_dist = d;
      best = n.id;
    }
  }
  if (best.valid()) {
    if (send_to(self, net::Address::vehicle(best), msg)) return;
  }
  // Local maximum or hop loss: carry and retry after the vehicle has moved.
  buffer_message(self, msg);
}

}  // namespace vcl::routing
