// Greedy geographic forwarding with carry-and-forward recovery (GPSR-lite).
//
// Each hop forwards to the neighbor that makes the most progress toward the
// destination's position. When no neighbor is closer than the current
// carrier (a local maximum), the message is buffered and retried on the
// carry tick — the standard VANET recovery once the vehicle has moved.
#pragma once

#include "routing/router.h"

namespace vcl::routing {

class GreedyGeo : public Router {
 public:
  explicit GreedyGeo(net::Network& net, RouterConfig config = {})
      : Router(net, config) {}

  [[nodiscard]] const char* name() const override { return "greedy_geo"; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;
};

}  // namespace vcl::routing
