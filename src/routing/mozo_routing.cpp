#include "routing/mozo_routing.h"

namespace vcl::routing {

void MozoRouting::forward(VehicleId self, const net::Message& msg) {
  const VehicleId dst = msg.dst.as_vehicle();

  // Direct delivery when the destination is in range.
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    if (n.id == dst) {
      if (send_to(self, msg.dst, msg)) return;
      break;
    }
  }

  const VehicleId my_zone = zones_.head_of(self);
  const VehicleId dst_zone = zones_.head_of(dst);

  if (my_zone.valid() && my_zone == dst_zone) {
    // Same zone: the captain's member table yields the destination's fresh
    // position; relay greedily toward it, preferring intra-zone members
    // (they share our trajectory, so links last).
    const mobility::VehicleState* d = net_.traffic().find(dst);
    const mobility::VehicleState* me = net_.traffic().find(self);
    if (d != nullptr && me != nullptr) {
      const double my_dist = geo::distance(me->pos, d->pos);
      VehicleId best;
      double best_score = 0.0;
      for (const net::NeighborEntry& n : net_.neighbors(self)) {
        const double progress = my_dist - geo::distance(n.pos, d->pos);
        if (progress <= 0.0) continue;
        const bool in_zone = zones_.head_of(n.id) == my_zone;
        const double score = progress * (in_zone ? 1.5 : 1.0);
        if (score > best_score) {
          best_score = score;
          best = n.id;
        }
      }
      if (best.valid() && send_to(self, net::Address::vehicle(best), msg)) {
        return;
      }
    }
  } else if (msg.has_dst_pos) {
    // Inter-zone: greedy toward the destination, preferring captains (they
    // have the freshest zone-level knowledge and the longest tenure).
    const mobility::VehicleState* me = net_.traffic().find(self);
    if (me == nullptr) return;
    const double my_dist = geo::distance(me->pos, msg.dst_pos);
    VehicleId best;
    double best_score = 0.0;
    for (const net::NeighborEntry& n : net_.neighbors(self)) {
      const double progress = my_dist - geo::distance(n.pos, msg.dst_pos);
      if (progress <= 0.0) continue;
      const bool is_captain = zones_.role(n.id) == cluster::ClusterRole::kHead;
      const double score = progress * (is_captain ? 1.5 : 1.0);
      if (score > best_score) {
        best_score = score;
        best = n.id;
      }
    }
    if (best.valid() && send_to(self, net::Address::vehicle(best), msg)) {
      return;
    }
  }
  buffer_message(self, msg);
}

}  // namespace vcl::routing
