#include "routing/bus_ferry.h"

namespace vcl::routing {

void BusRegistry::register_bus(VehicleId bus, std::vector<LinkId> loop) {
  loops_[bus.value()] = std::move(loop);
}

bool BusRegistry::is_bus(VehicleId v) const {
  return loops_.count(v.value()) != 0;
}

bool BusRegistry::route_covers(VehicleId bus, geo::Vec2 pos, double radius,
                               const geo::RoadNetwork& net) const {
  auto it = loops_.find(bus.value());
  if (it == loops_.end()) return false;
  for (const LinkId link : it->second) {
    // Sample the link coarsely; loops repeat, so checking distinct links
    // once would suffice, but loops are short and this is simple.
    const double len = net.link(link).length;
    for (double off = 0.0; off <= len; off += 100.0) {
      if (geo::distance(net.position_on_link(link, off), pos) <= radius) {
        return true;
      }
    }
  }
  return false;
}

std::vector<LinkId> build_loop_route(const geo::RoadNetwork& net,
                                     const std::vector<NodeId>& stops,
                                     int repetitions) {
  if (stops.size() < 2) return {};
  std::vector<LinkId> one_loop;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    const NodeId from = stops[i];
    const NodeId to = stops[(i + 1) % stops.size()];
    const auto leg = net.shortest_path(from, to);
    if (!leg) return {};
    one_loop.insert(one_loop.end(), leg->begin(), leg->end());
  }
  std::vector<LinkId> route;
  route.reserve(one_loop.size() * static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    route.insert(route.end(), one_loop.begin(), one_loop.end());
  }
  return route;
}

void BusFerryRouting::forward(VehicleId self, const net::Message& msg) {
  const VehicleId dst = msg.dst.as_vehicle();
  // Direct delivery always wins.
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    if (n.id == dst) {
      if (send_to(self, msg.dst, msg)) return;
      break;
    }
  }
  if (!msg.has_dst_pos) {
    broadcast_from(self, msg);
    return;
  }
  const mobility::VehicleState* me = net_.traffic().find(self);
  if (me == nullptr) return;
  const double my_dist = geo::distance(me->pos, msg.dst_pos);

  // A carrying bus holds on until the destination area (its trajectory is
  // the plan; greedy hops off the bus would squander it) — unless a
  // neighbor makes direct final delivery possible above.
  if (buses_.is_bus(self) && my_dist > ferry_config_.delivery_radius) {
    buffer_message(self, msg);
    return;
  }

  // Greedy progress among ordinary neighbors.
  VehicleId best;
  double best_dist = my_dist;
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    const double d = geo::distance(n.pos, msg.dst_pos);
    if (d < best_dist) {
      best_dist = d;
      best = n.id;
    }
  }
  if (best.valid() && send_to(self, net::Address::vehicle(best), msg)) {
    return;
  }

  // Stalled: look for a bus whose published loop passes the destination.
  if (!buses_.is_bus(self)) {
    for (const net::NeighborEntry& n : net_.neighbors(self)) {
      if (!buses_.is_bus(n.id)) continue;
      if (!buses_.route_covers(n.id, msg.dst_pos,
                               ferry_config_.delivery_radius,
                               net_.traffic().network())) {
        continue;
      }
      if (send_to(self, net::Address::vehicle(n.id), msg)) {
        ++handoffs_;
        return;
      }
    }
  }
  buffer_message(self, msg);
}

}  // namespace vcl::routing
