// Bus-trajectory-based routing (after Sun et al. [36]: "bus
// trajectory-based street-centric routing for message delivery in urban
// VANETs").
//
// Buses run fixed, published loops — the one piece of future-proof
// knowledge a sparse network has. The router behaves greedily while
// progress is possible; when a carrier stalls it hands the message to a
// neighboring bus whose published trajectory passes near the destination;
// the bus carries it (ignoring greedy temptation) until the destination —
// or a vehicle near it — enters radio range. DTN-style ferrying with
// predictable ferries.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "routing/router.h"

namespace vcl::routing {

// Published bus trajectories: which streets each bus will visit, forever.
class BusRegistry {
 public:
  void register_bus(VehicleId bus, std::vector<LinkId> loop);

  [[nodiscard]] bool is_bus(VehicleId v) const;
  // Does the bus's published loop pass within `radius` of `pos`?
  [[nodiscard]] bool route_covers(VehicleId bus, geo::Vec2 pos, double radius,
                                  const geo::RoadNetwork& net) const;
  [[nodiscard]] std::size_t bus_count() const { return loops_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<LinkId>> loops_;
};

// Builds a cyclic route visiting `stops` in order, repeated `repetitions`
// times (buses need no arrival handler within the simulation horizon).
// Empty on unreachable stops.
std::vector<LinkId> build_loop_route(const geo::RoadNetwork& net,
                                     const std::vector<NodeId>& stops,
                                     int repetitions);

struct BusFerryConfig {
  double delivery_radius = 250.0;  // bus hands off when this close to dst
  // Ferrying is delay-tolerant: messages live for minutes (a bus ride),
  // not the seconds-scale lifetime of connected-path routing.
  SimTime message_ttl = 900.0;
};

class BusFerryRouting final : public Router {
 public:
  BusFerryRouting(net::Network& net, const BusRegistry& buses,
                  BusFerryConfig ferry_config = {}, RouterConfig config = {})
      : Router(net, dtn_config(config, ferry_config)),
        buses_(buses),
        ferry_config_(ferry_config) {}

  [[nodiscard]] const char* name() const override { return "bus_ferry"; }
  [[nodiscard]] std::size_t ferry_handoffs() const { return handoffs_; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;

 private:
  static RouterConfig dtn_config(RouterConfig base,
                                 const BusFerryConfig& ferry) {
    base.max_age = std::max(base.max_age, ferry.message_ttl);
    base.default_ttl = std::max(base.default_ttl, 64);  // long bus chains
    return base;
  }

  const BusRegistry& buses_;
  BusFerryConfig ferry_config_;
  std::size_t handoffs_ = 0;
};

}  // namespace vcl::routing
