// Cluster-Based Lifetime Routing (after Abuashour & Kadoch's CBLTR [1]).
//
// Next-hop selection maximizes the *expected link lifetime* among neighbors
// that make geographic progress: favoring links that will survive longest
// trades a little per-hop progress for far fewer broken-route retransmits
// in high-relative-speed traffic.
#pragma once

#include "routing/router.h"

namespace vcl::routing {

struct CbltrConfig {
  double min_progress = 5.0;  // meters of required progress per hop
};

class Cbltr final : public Router {
 public:
  Cbltr(net::Network& net, CbltrConfig cbltr_config = {},
        RouterConfig config = {})
      : Router(net, config), cbltr_config_(cbltr_config) {}

  [[nodiscard]] const char* name() const override { return "cbltr"; }

 protected:
  void forward(VehicleId self, const net::Message& msg) override;

 private:
  CbltrConfig cbltr_config_;
};

}  // namespace vcl::routing
