#include "routing/cbltr.h"

#include <algorithm>

namespace vcl::routing {

void Cbltr::forward(VehicleId self, const net::Message& msg) {
  const VehicleId dst = msg.dst.as_vehicle();
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    if (n.id == dst) {
      if (send_to(self, msg.dst, msg)) return;
      break;
    }
  }
  if (!msg.has_dst_pos) {
    broadcast_from(self, msg);
    return;
  }
  const mobility::VehicleState* me = net_.traffic().find(self);
  if (me == nullptr) return;
  const double my_dist = geo::distance(me->pos, msg.dst_pos);
  const double range = net_.channel().config().max_range;

  VehicleId best;
  double best_lifetime = -1.0;
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    const double progress = my_dist - geo::distance(n.pos, msg.dst_pos);
    if (progress < cbltr_config_.min_progress) continue;
    const double life =
        link_lifetime(me->pos, me->vel, n.pos, n.vel, range);
    if (life > best_lifetime) {
      best_lifetime = life;
      best = n.id;
    }
  }
  if (best.valid() && send_to(self, net::Address::vehicle(best), msg)) {
    return;
  }
  buffer_message(self, msg);
}

}  // namespace vcl::routing
