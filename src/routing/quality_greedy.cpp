#include "routing/quality_greedy.h"

namespace vcl::routing {

void QualityGreedy::forward(VehicleId self, const net::Message& msg) {
  const VehicleId dst = msg.dst.as_vehicle();
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    if (n.id == dst) {
      if (send_to(self, msg.dst, msg)) return;
      break;
    }
  }
  if (!msg.has_dst_pos) {
    broadcast_from(self, msg);
    return;
  }
  const mobility::VehicleState* me = net_.traffic().find(self);
  if (me == nullptr) return;
  const double my_dist = geo::distance(me->pos, msg.dst_pos);
  const std::size_t density = net_.local_density(me->pos);

  VehicleId best;
  double best_score = 0.0;
  for (const net::NeighborEntry& n : net_.neighbors(self)) {
    const double progress = my_dist - geo::distance(n.pos, msg.dst_pos);
    if (progress <= 0.0) continue;
    const double p =
        net_.channel().reception_probability(me->pos, n.pos, density);
    const double score = progress * p;  // expected progress this hop
    if (score > best_score) {
      best_score = score;
      best = n.id;
    }
  }
  if (best.valid() && send_to(self, net::Address::vehicle(best), msg)) {
    return;
  }
  buffer_message(self, msg);
}

}  // namespace vcl::routing
