#include "core/system.h"

#include <stdexcept>

namespace vcl::core {

const char* to_string(CloudArchitecture a) {
  switch (a) {
    case CloudArchitecture::kStationary: return "stationary";
    case CloudArchitecture::kInfrastructureBased: return "infrastructure";
    case CloudArchitecture::kDynamic: return "dynamic";
  }
  return "unknown";
}

std::unique_ptr<vcloud::Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return std::make_unique<vcloud::RandomScheduler>();
    case SchedulerKind::kGreedy:
      return std::make_unique<vcloud::GreedyResourceScheduler>();
    case SchedulerKind::kDwellAware:
      return std::make_unique<vcloud::DwellAwareScheduler>();
  }
  return std::make_unique<vcloud::RandomScheduler>();
}

VehicularCloudSystem::VehicularCloudSystem(SystemConfig config)
    : config_(std::move(config)),
      scenario_(config_.scenario),
      zones_(scenario_.network()),
      ta_(config_.scenario.seed ^ 0x5441) {}

void VehicularCloudSystem::start() {
  if (started_) return;
  started_ = true;
  scenario_.start();
  scenario_.network().refresh();
  zones_.attach(config_.cluster_period);
  zones_.update();

  // Register the initial population with the TA.
  for (const auto& [vid, v] : scenario_.traffic().vehicles()) {
    ta_.register_vehicle(v.id);
  }

  auto& net = scenario_.network();
  vcloud::VehicularCloud::MembershipFn membership;
  vcloud::VehicularCloud::RegionFn region;
  const auto [lo, hi] = scenario_.road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};

  switch (config_.architecture) {
    case CloudArchitecture::kStationary:
      membership = vcloud::stationary_membership(scenario_.traffic(), center,
                                                 config_.stationary_radius);
      region = vcloud::fixed_region(center, config_.stationary_radius);
      break;
    case CloudArchitecture::kInfrastructureBased: {
      // Anchor to the RSU nearest the map center (deploy one if none).
      if (net.rsus().count() == 0) {
        net.rsus().add(center, config_.scenario.rsu_range);
      }
      RsuId best{0};
      double best_d = 1e300;
      for (const auto& r : net.rsus().all()) {
        const double d = geo::distance(r.pos, center);
        if (d < best_d) {
          best_d = d;
          best = r.id;
        }
      }
      membership = vcloud::rsu_membership(net, best);
      region = vcloud::rsu_region(net, best);
      break;
    }
    case CloudArchitecture::kDynamic: {
      membership = vcloud::largest_cluster_membership(zones_);
      region = vcloud::members_centroid_region(
          scenario_.traffic(), membership,
          config_.scenario.channel.max_range);
      break;
    }
  }

  cloud_ = std::make_unique<vcloud::VehicularCloud>(
      CloudId{1}, net, std::move(membership), std::move(region),
      make_scheduler(config_.scheduler), config_.cloud,
      scenario_.fork_rng(7));
  // The flight recorder is always on (DESIGN.md §12): unlike telemetry it
  // is wired unconditionally — fixed memory, no RNG, no scheduling impact,
  // so the run stays bit-identical while the black box fills.
  cloud_->set_flight(&flight_);
  if (config_.invariant_oracle) {
    // Attach before the initial refresh so the very first end-of-round scan
    // is already checked.
    oracle_ = std::make_unique<vcloud::InvariantOracle>(config_.scenario.seed);
    cloud_->set_oracle(oracle_.get());
  }
  // Adversarial admission before the initial refresh: the control is
  // RNG-free and inert until an attack event fires, but the eviction sweep
  // and arrival gate must cover every refresh from the first.
  if (config_.adversary.enabled) {
    attack::validate_or_throw(
        config_.adversary,
        static_cast<std::size_t>(config_.scenario.vehicles));
    vcloud::AdmissionConfig adm;
    adm.defend = config_.adversary.defend;
    adm.freshness_window = config_.adversary.freshness_window;
    adm.max_unverified_admissions =
        config_.adversary.max_unverified_admissions;
    adm.test_drop_revoked_requeue =
        config_.adversary.test_drop_revoked_requeue;
    admission_ = std::make_unique<vcloud::AdmissionControl>(adm);
    admission_->set_flight(&flight_);
    cloud_->set_admission(admission_.get());
    // The auth invariants only arm on a defended run: with the door
    // deliberately open (the E24 vulnerable baseline) membership pollution
    // is the expected outcome, not a safety violation.
    if (oracle_ != nullptr && config_.adversary.defend) {
      oracle_->set_admission(admission_.get());
    }
  }
  cloud_->attach();
  cloud_->refresh();

  // Fault injection: the plan is drawn from its own forked stream so the
  // fault schedule is a pure function of (config, seed) and never perturbs
  // mobility/channel/cloud randomness.
  fault::FaultPlanConfig faults = config_.faults;
  if (faults.blackout_lo.x == 0.0 && faults.blackout_lo.y == 0.0 &&
      faults.blackout_hi.x == 0.0 && faults.blackout_hi.y == 0.0) {
    faults.blackout_lo = lo;
    faults.blackout_hi = hi;
  }
  Rng plan_rng = scenario_.fork_rng(13);
  // An explicit plan (chaos storms, or a shrunk repro replayed from a file)
  // wins over generation; the fork above still happens so the other streams
  // are identical either way.
  fault::FaultPlan plan = config_.fault_plan.empty()
                              ? fault::make_fault_plan(faults, plan_rng)
                              : config_.fault_plan;
  if (!plan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        net, std::move(plan), scenario_.fork_rng(14));
    injector_->register_cloud(*cloud_);
    injector_->set_flight(&flight_);
    injector_->attach();
  }

  // Adversary driver after the injector: it is the injector's attack-event
  // resolver, landing planned kSybilJoin / kRevokeIdentity / kCrlDeliver /
  // kReplayInject events on concrete victims. RNG-free — victim choice is
  // a pure function of the planned event and sorted membership.
  if (config_.adversary.enabled && injector_ != nullptr) {
    adversary_ = std::make_unique<AdversaryDriver>(*cloud_, *admission_, ta_);
    injector_->set_attack_handler(
        [this](const fault::FaultEvent& e) { adversary_->handle(e); });
  }

  // Storage after faults: the injector exists, so storage-targeted storms
  // can resolve their victims against live placements. The service's RNG is
  // its own fork — enabling storage never reshuffles the other streams.
  if (config_.storage.enabled) {
    storage_ = std::make_unique<storage::StorageService>(
        net, *cloud_, config_.storage, scenario_.fork_rng(21));
    storage_->set_flight(&flight_);
    storage_->attach();
    if (oracle_ != nullptr) {
      oracle_->set_storage(storage_.get());
      storage_->set_oracle(oracle_.get());
    }
    if (injector_ != nullptr) {
      injector_->set_storage_victim_resolver(
          [this](std::uint64_t tag) { return storage_->storm_victim(tag); });
    }
  }

  // DAG decomposition scheduling after storage: it claims the cloud's
  // terminal hook and registers as a chaos storm target, both of which need
  // the cloud and injector already built. Its RNG is its own fork —
  // enabling the DAG layer never reshuffles the other streams.
  if (config_.dag.enabled) {
    if (const std::string problem =
            dag::validate(config_.dag, config_.scenario.vehicles);
        !problem.empty()) {
      throw std::invalid_argument("DagConfig: " + problem);
    }
    dag_ = std::make_unique<dag::DagScheduler>(net, *cloud_, config_.dag,
                                               scenario_.fork_rng(23));
    dag_->set_flight(&flight_);
    dag_->attach();
    if (oracle_ != nullptr) {
      oracle_->set_dag(dag_.get());
      dag_->set_oracle(oracle_.get());
    }
    if (injector_ != nullptr) {
      injector_->set_dag_victim_resolver(
          [this](std::uint64_t tag) { return dag_->storm_victim(tag); });
    }
  }

  // Telemetry last: every subsystem exists, so the recorder and the gauges
  // can be threaded through in one place. Telemetry reads state and emits
  // events but never perturbs RNG streams or scheduling of the workload
  // itself (the sampler adds kernel events, which is why it is opt-in).
  if (config_.telemetry.any()) {
    telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
    if (config_.telemetry.tracing) {
      net.set_trace(&telemetry_->trace);
      cloud_->set_trace(&telemetry_->trace);
      if (injector_ != nullptr) injector_->set_trace(&telemetry_->trace);
      if (storage_ != nullptr) storage_->set_trace(&telemetry_->trace);
      if (dag_ != nullptr) dag_->set_trace(&telemetry_->trace);
      telemetry_->trace.record(scenario_.simulator().now(),
                               obs::TraceCategory::kSim, "sim.start",
                               {{"vehicles",
                                 static_cast<double>(config_.scenario.vehicles)}});
    }
    if (config_.telemetry.metrics) {
      net.register_metrics(telemetry_->metrics);
      cloud_->register_metrics(telemetry_->metrics);
      if (injector_ != nullptr) {
        injector_->register_metrics(telemetry_->metrics);
      }
      if (storage_ != nullptr) {
        storage_->register_metrics(telemetry_->metrics);
      }
      telemetry_->metrics.gauge("sim.event.count", [this] {
        return static_cast<double>(scenario_.simulator().events_processed());
      });
      telemetry_->metrics.gauge("sim.queue.high_water", [this] {
        return static_cast<double>(scenario_.simulator().queue_high_water());
      });
      telemetry_->metrics.start_sampling(scenario_.simulator(),
                                         config_.telemetry.sample_period);
    }
    if (config_.telemetry.profile_kernel) {
      scenario_.simulator().enable_profiling(true);
    }
  }
}

void VehicularCloudSystem::run_for(SimTime seconds) {
  start();
  scenario_.run_for(seconds);
}

TaskId VehicularCloudSystem::submit(vcloud::Task spec) {
  start();
  return cloud_->submit(std::move(spec));
}

std::vector<TaskId> VehicularCloudSystem::submit_workload(
    const vcloud::WorkloadConfig& workload, std::size_t n) {
  start();
  vcloud::WorkloadGenerator gen(workload, scenario_.fork_rng(8));
  std::vector<TaskId> ids;
  ids.reserve(n);
  for (vcloud::Task& t : gen.batch(scenario_.simulator().now(), n)) {
    ids.push_back(cloud_->submit(std::move(t)));
  }
  return ids;
}

}  // namespace vcl::core
