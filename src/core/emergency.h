// Emergency-mode management (paper §V.A "V-cloud management").
//
// The authority can flip a region into emergency mode: infrastructure inside
// the disaster radius goes dark (earthquake/hurricane case), registered
// listeners — clouds, role managers, routing — adapt, and on all-clear the
// infrastructure restores. E13 measures how fast each architecture regains
// throughput after the switch.
#pragma once

#include <functional>
#include <vector>

#include "net/network.h"

namespace vcl::core {

enum class OperatingMode : std::uint8_t { kNormal, kEmergency };

const char* to_string(OperatingMode m);

class EmergencyController {
 public:
  using ModeListener = std::function<void(OperatingMode, geo::Vec2 center,
                                          double radius)>;

  explicit EmergencyController(net::Network& net) : net_(net) {}

  // Declares an emergency centered at `center`: every RSU within `radius`
  // fails, mode flips, listeners fire. Idempotent while already in
  // emergency.
  void declare_emergency(geo::Vec2 center, double radius);
  // Restores all failed RSUs and returns to normal mode.
  void all_clear();

  void add_listener(ModeListener listener);

  [[nodiscard]] OperatingMode mode() const { return mode_; }
  [[nodiscard]] std::size_t mode_switches() const { return switches_; }
  [[nodiscard]] SimTime last_switch_at() const { return last_switch_; }
  [[nodiscard]] std::size_t rsus_failed() const { return failed_.size(); }

 private:
  void notify(geo::Vec2 center, double radius);

  net::Network& net_;
  OperatingMode mode_ = OperatingMode::kNormal;
  std::vector<ModeListener> listeners_;
  std::vector<RsuId> failed_;
  std::size_t switches_ = 0;
  SimTime last_switch_ = 0.0;
};

}  // namespace vcl::core
