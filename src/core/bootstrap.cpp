#include "core/bootstrap.h"

namespace vcl::core {

BootstrapProtocol::BootstrapProtocol(net::Network& net,
                                     auth::TrustedAuthority& ta,
                                     BootstrapConfig config)
    : net_(net), ta_(ta), config_(config), drbg_(std::uint64_t{0xB007}) {}

void BootstrapProtocol::attach(SimTime period) {
  net_.simulator().schedule_every(period, [this] { step(); }, -1.0,
                                  "core.bootstrap");
}

JoinState BootstrapProtocol::state(VehicleId v) const {
  auto it = records_.find(v.value());
  return it == records_.end() ? JoinState::kUnregistered : it->second.state;
}

std::size_t BootstrapProtocol::joined_count() const {
  std::size_t n = 0;
  for (const auto& [vid, r] : records_) {
    n += r.state == JoinState::kJoined ? 1 : 0;
  }
  return n;
}

SimTime BootstrapProtocol::registration_latency(VehicleId v,
                                                bool via_rsu) const {
  // Round trip (request + response) at the channel's hop delay, plus the
  // TA-side issuance: one certificate signature per pseudonym in the pool.
  const mobility::VehicleState* s = net_.traffic().find(v);
  const std::size_t density =
      s != nullptr ? net_.local_density(s->pos) : 0;
  SimTime rtt = 2.0 * net_.channel().hop_delay(512, density);
  if (!via_rsu) rtt *= config_.relay_penalty;
  const SimTime issuance =
      config_.costs.cost(crypto::Op::kSign) *
      static_cast<double>(config_.pseudonym_pool);
  return rtt + issuance;
}

void BootstrapProtocol::complete_join(VehicleId v, bool via_rsu) {
  auto it = records_.find(v.value());
  if (it == records_.end()) return;
  JoinRecord& rec = it->second;
  if (rec.state != JoinState::kRegistering) return;
  if (net_.traffic().find(v) == nullptr) {
    records_.erase(it);  // left before the handshake finished
    return;
  }
  rec.state = JoinState::kJoined;
  rec.joined_at = net_.simulator().now();
  rec.via_rsu = via_rsu;
  join_latency_.add(rec.joined_at - rec.started);
  (via_rsu ? via_rsu_ : via_relay_) += 1;

  // Issue the credential pool and a DH key for session establishment.
  ta_.register_vehicle(v);
  signers_[v.value()] = std::make_unique<auth::PseudonymAuth>(
      ta_, v, config_.pseudonym_pool);
  const crypto::Schnorr schnorr(ta_.group());
  dh_keys_[v.value()] = schnorr.keygen(drbg_);
}

void BootstrapProtocol::step() {
  const SimTime now = net_.simulator().now();
  for (const auto& [vid, vehicle] : net_.traffic().vehicles()) {
    const VehicleId v = vehicle.id;
    JoinRecord& rec = records_[v.value()];
    switch (rec.state) {
      case JoinState::kUnregistered: {
        if (rec.started == 0.0) rec.started = now;
        const bool rsu = net_.reachable_rsu(v) != nullptr;
        bool relay = false;
        if (!rsu) {
          for (const net::NeighborEntry& n : net_.neighbors(v)) {
            if (joined(n.id)) {
              relay = true;
              break;
            }
          }
        }
        if (!rsu && !relay) break;  // keep listening
        rec.state = JoinState::kRegistering;
        const SimTime latency = registration_latency(v, rsu);
        net_.simulator().schedule_after(
            latency, [this, v, rsu] { complete_join(v, rsu); });
        break;
      }
      case JoinState::kRegistering:
      case JoinState::kJoined:
        break;
    }
  }
  // Drop records of departed vehicles (joined stats already accumulated).
  for (auto it = records_.begin(); it != records_.end();) {
    if (net_.traffic().find(VehicleId{it->first}) == nullptr) {
      signers_.erase(it->first);
      dh_keys_.erase(it->first);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<crypto::Digest> BootstrapProtocol::session_key(
    VehicleId a, VehicleId b) const {
  auto ka = dh_keys_.find(a.value());
  auto kb = dh_keys_.find(b.value());
  if (ka == dh_keys_.end() || kb == dh_keys_.end()) return std::nullopt;
  // Shared secret g^{xy}, computed from a's secret and b's public key (the
  // same value either way — that is the point of DH).
  const auto& group = ta_.group();
  const std::uint64_t shared =
      group.pow(kb->second.pub, ka->second.secret);
  crypto::Bytes bytes;
  crypto::append_u64(bytes, shared);
  return crypto::Sha256::hash(bytes);
}

auth::PseudonymAuth* BootstrapProtocol::signer(VehicleId v) {
  auto it = signers_.find(v.value());
  return it == signers_.end() ? nullptr : it->second.get();
}

}  // namespace vcl::core
