// Virtual Traffic Lights: V2V intersection management without
// infrastructure (after Tonguz et al.'s VTL line — the "one vehicle serves
// as one of a group-decision-makers when crossing an intersection" role the
// paper's §III.A uses as its running example of dynamic role assignment).
//
// At each signalized intersection, the approaching vehicles elect a leader
// (the closest vehicle to the junction); the leader acts as the light:
// it grants green to the approach group with the greater demand, holding
// each phase at least `min_phase` seconds to avoid thrashing, and yields
// leadership when it crosses or leaves. No RSU is involved — the exact
// infrastructure-reduction argument of the paper, applied to the paper's
// own example application.
#pragma once

#include "mobility/intersection.h"
#include "net/network.h"

namespace vcl::core {

struct VtlConfig {
  double detection_radius = 120.0;  // how far the leader "sees" demand
  SimTime min_phase = 6.0;
  SimTime decision_period = 1.0;
};

class VtlController {
 public:
  VtlController(net::Network& net, VtlConfig config = {});

  // Schedules periodic leader election + phase decisions.
  void attach();
  void decide();  // public for tests

  // Right-of-way oracle for TrafficModel::set_right_of_way.
  [[nodiscard]] bool can_enter(LinkId link, VehicleId v) const;

  // Introspection / metrics.
  [[nodiscard]] VehicleId leader(NodeId node) const;
  [[nodiscard]] std::size_t leader_changes() const { return leader_changes_; }
  [[nodiscard]] const mobility::IntersectionMap& intersections() const {
    return map_;
  }

 private:
  struct JunctionState {
    VehicleId leader;
    mobility::ApproachGroup green = mobility::ApproachGroup::kEastWest;
    SimTime phase_started = 0.0;
  };

  void decide_junction(NodeId node, JunctionState& state);

  net::Network& net_;
  VtlConfig config_;
  mobility::IntersectionMap map_;
  std::unordered_map<std::uint64_t, JunctionState> junctions_;
  std::size_t leader_changes_ = 0;
};

// Stopped-time meter: fraction of fleet time spent (nearly) standing, the
// intersection-efficiency metric for E18.
class StopMeter {
 public:
  explicit StopMeter(mobility::TrafficModel& traffic) : traffic_(traffic) {}

  void attach(sim::Simulator& sim, SimTime period = 1.0);
  void sample();

  [[nodiscard]] double stopped_fraction() const {
    return samples_ == 0 ? 0.0
                         : static_cast<double>(stopped_) /
                               static_cast<double>(samples_);
  }
  [[nodiscard]] double mean_speed() const { return speed_.mean(); }

 private:
  mobility::TrafficModel& traffic_;
  std::size_t samples_ = 0;
  std::size_t stopped_ = 0;
  Accumulator speed_{/*keep_samples=*/false};
};

}  // namespace vcl::core
