#include "core/vtl.h"

namespace vcl::core {

VtlController::VtlController(net::Network& net, VtlConfig config)
    : net_(net), config_(config), map_(net.traffic().network()) {}

void VtlController::attach() {
  net_.simulator().schedule_every(config_.decision_period,
                                  [this] { decide(); });
}

VehicleId VtlController::leader(NodeId node) const {
  auto it = junctions_.find(node.value());
  return it == junctions_.end() ? VehicleId{} : it->second.leader;
}

void VtlController::decide_junction(NodeId node, JunctionState& state) {
  const geo::Vec2 center = map_.network().node(node).pos;
  const SimTime now = net_.simulator().now();

  // Demand per approach group and leader candidate = nearest approaching
  // vehicle. "Approaching" = on an incoming link, heading for this node.
  std::size_t demand_ew = 0;
  std::size_t demand_ns = 0;
  VehicleId nearest;
  double nearest_dist = config_.detection_radius;
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    if (v.parked) continue;
    if (map_.network().link(v.link).to != node) continue;
    const double dist = geo::distance(v.pos, center);
    if (dist > config_.detection_radius) continue;
    if (mobility::approach_group(map_.network(), v.link) ==
        mobility::ApproachGroup::kEastWest) {
      ++demand_ew;
    } else {
      ++demand_ns;
    }
    if (dist < nearest_dist) {
      nearest_dist = dist;
      nearest = v.id;
    }
  }

  // Leader election: the nearest approaching vehicle serves; if the old
  // leader is still approaching, it keeps the role (stability).
  const mobility::VehicleState* old_leader =
      state.leader.valid() ? net_.traffic().find(state.leader) : nullptr;
  const bool old_still_approaching =
      old_leader != nullptr && !old_leader->parked &&
      map_.network().link(old_leader->link).to == node &&
      geo::distance(old_leader->pos, center) <= config_.detection_radius;
  if (!old_still_approaching) {
    if (state.leader.valid() || nearest.valid()) {
      if (!(state.leader == nearest)) ++leader_changes_;
    }
    state.leader = nearest;
  }

  // Phase decision by the leader: serve the group with more demand, with a
  // minimum-phase hold.
  if (!state.leader.valid()) return;  // empty junction: hold current state
  if (now - state.phase_started < config_.min_phase) return;
  const mobility::ApproachGroup wanted =
      demand_ew >= demand_ns ? mobility::ApproachGroup::kEastWest
                             : mobility::ApproachGroup::kNorthSouth;
  if (wanted != state.green) {
    state.green = wanted;
    state.phase_started = now;
  }
}

void VtlController::decide() {
  for (const NodeId node : map_.signalized()) {
    decide_junction(node, junctions_[node.value()]);
  }
}

bool VtlController::can_enter(LinkId link, VehicleId /*v*/) const {
  const NodeId node = map_.network().link(link).to;
  if (!map_.is_signalized(node)) return true;
  auto it = junctions_.find(node.value());
  if (it == junctions_.end()) return true;  // no decision yet: uncontrolled
  // With no leader present the junction is empty enough to treat as
  // uncontrolled (first-come first-served).
  if (!it->second.leader.valid()) return true;
  return mobility::approach_group(map_.network(), link) == it->second.green;
}

void StopMeter::attach(sim::Simulator& sim, SimTime period) {
  sim.schedule_every(period, [this] { sample(); });
}

void StopMeter::sample() {
  for (const auto& [vid, v] : traffic_.vehicles()) {
    if (v.parked) continue;
    ++samples_;
    stopped_ += v.speed < 0.5 ? 1 : 0;
    speed_.add(v.speed);
  }
}

}  // namespace vcl::core
