#include "core/scenario.h"

namespace vcl::core {

geo::RoadNetwork Scenario::build_road(const ScenarioConfig& config) {
  switch (config.environment) {
    case Environment::kCity:
      return geo::make_manhattan_grid(config.grid_rows, config.grid_cols,
                                      config.grid_spacing);
    case Environment::kHighway:
      return geo::make_highway(config.highway_length);
    case Environment::kParkingLot:
      return geo::make_parking_lot(config.lot_rows, config.lot_cols);
  }
  return geo::make_manhattan_grid(4, 4, 200.0);
}

Scenario::Scenario(ScenarioConfig config)
    : config_(config),
      road_(build_road(config)),
      traffic_(road_, Rng(config.seed).fork(1)),
      trips_(traffic_,
             [&config] {
               mobility::TripGeneratorConfig tg;
               tg.target_population = config.vehicles;
               tg.automation_weights = config.automation_weights;
               return tg;
             }(),
             Rng(config.seed).fork(2)),
      net_(sim_, traffic_, config.channel, Rng(config.seed).fork(3)) {
  if (config_.rsu_spacing > 0.0) {
    net_.rsus().place_grid(road_, config_.rsu_spacing, config_.rsu_range);
  }
}

void Scenario::park_population() {
  Rng rng = fork_rng(4);
  for (int i = 0; i < config_.vehicles; ++i) {
    const auto link =
        LinkId{static_cast<std::uint64_t>(rng.index(road_.link_count()))};
    const double offset = rng.uniform(0.0, road_.link(link).length);
    traffic_.spawn_parked(link, offset);
  }
}

void Scenario::start() {
  if (started_) return;
  started_ = true;
  if (config_.vehicles_parked) {
    park_population();
  } else {
    trips_.prefill();
    traffic_.attach(sim_, config_.mobility_dt);
    trips_.attach(sim_);
  }
  net_.start_beacons(config_.beacon_period);
}

void Scenario::run_for(SimTime seconds) {
  start();
  sim_.run_until(sim_.now() + seconds);
}

}  // namespace vcl::core
