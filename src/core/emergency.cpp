#include "core/emergency.h"

namespace vcl::core {

const char* to_string(OperatingMode m) {
  switch (m) {
    case OperatingMode::kNormal: return "normal";
    case OperatingMode::kEmergency: return "emergency";
  }
  return "unknown";
}

void EmergencyController::add_listener(ModeListener listener) {
  listeners_.push_back(std::move(listener));
}

void EmergencyController::notify(geo::Vec2 center, double radius) {
  for (const ModeListener& l : listeners_) l(mode_, center, radius);
}

void EmergencyController::declare_emergency(geo::Vec2 center, double radius) {
  if (mode_ == OperatingMode::kEmergency) return;
  mode_ = OperatingMode::kEmergency;
  ++switches_;
  last_switch_ = net_.simulator().now();
  failed_.clear();
  for (const net::Rsu& r : net_.rsus().all()) {
    if (r.online && geo::distance(r.pos, center) <= radius) {
      net_.rsus().set_online(r.id, false);
      failed_.push_back(r.id);
    }
  }
  notify(center, radius);
}

void EmergencyController::all_clear() {
  if (mode_ == OperatingMode::kNormal) return;
  mode_ = OperatingMode::kNormal;
  ++switches_;
  last_switch_ = net_.simulator().now();
  for (const RsuId id : failed_) net_.rsus().set_online(id, true);
  failed_.clear();
  notify({0, 0}, 0.0);
}

}  // namespace vcl::core
