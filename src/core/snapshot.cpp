#include "core/snapshot.h"

namespace vcl::core {

TopologyArchive::TopologyArchive(net::Network& net, SnapshotConfig config,
                                 CredentialFn credential_of)
    : net_(net), config_(config), credential_of_(std::move(credential_of)) {
  if (!credential_of_) {
    credential_of_ = [](VehicleId v) { return v.value(); };
  }
}

void TopologyArchive::attach() {
  net_.simulator().schedule_every(config_.period, [this] { capture(); }, -1.0,
                                  "core.snapshot");
}

void TopologyArchive::capture() {
  TopologySnapshot snap;
  snap.taken_at = net_.simulator().now();
  snap.entries.reserve(net_.traffic().vehicle_count());
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    snap.entries.push_back(
        SnapshotEntry{v.id, credential_of_(v.id), v.pos});
  }
  snapshots_.push_back(std::move(snap));
  while (snapshots_.size() > config_.retention) snapshots_.pop_front();
}

std::vector<SnapshotEntry> TopologyArchive::query(geo::Vec2 where,
                                                  double radius, SimTime t0,
                                                  SimTime t1) const {
  std::vector<SnapshotEntry> out;
  for (const TopologySnapshot& snap : snapshots_) {
    if (snap.taken_at < t0 || snap.taken_at > t1) continue;
    for (const SnapshotEntry& e : snap.entries) {
      if (geo::distance(e.pos, where) <= radius) out.push_back(e);
    }
  }
  return out;
}

std::size_t TopologyArchive::records_held() const {
  std::size_t n = 0;
  for (const TopologySnapshot& snap : snapshots_) n += snap.entries.size();
  return n;
}

}  // namespace vcl::core
