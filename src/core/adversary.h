// AdversaryDriver: turns planned attack events into concrete §IV attacks.
//
// The fault layer plans attack storms abstractly (kSybilJoin with an
// attack_tag, kRevokeIdentity with a causal group, ...) because it cannot
// name victims: fault depends on vcloud, not on the full system. This
// driver is the resolver the system wiring installs as the injector's
// AttackHandler — it owns the mapping from planned events to the concrete
// identities and modules they hit:
//
//  * kSybilJoin — mints a fabricated credential id in the reserved Sybil
//    high range (no real vehicle behind it), registers it with the
//    admission control and presents the join claim to the cloud. Fired
//    inside a planned blackout: the verification channel is exactly what
//    the storm has darkened.
//  * kRevokeIdentity — deterministically picks the most damaging victim
//    (smallest-id BUSY non-crashed member, i.e. one holding a task; falls
//    back to the smallest-id member), revokes it at the authority and
//    tells the admission control — but NOT the RSUs. The gap until the
//    paired kCrlDeliver IS the §IV revocation-propagation race.
//  * kCrlDeliver — the fresh CRL reaches the cloud's RSUs: looks up the
//    paired revocation's victim via the event group and delivers it with
//    the planned propagation horizon. Eviction (when defending) acts from
//    here; the oracle's revoked-membership invariant arms past the horizon.
//  * kReplayInject — replays a captured message of a once-seen member past
//    its freshness window: through the admission control's REAL
//    attack::FreshnessChecker gate, then (if it survives — defense off, or
//    a fresh-enough capture) lands the harm: a replayed heartbeat keeps a
//    crashed zombie alive on the detector's books, a replayed join
//    re-admits a departed identity as a ghost member.
//
// Victim choice is deterministic and RNG-free: the planned event's tag and
// group plus sorted membership decide everything, so episodes stay a pure
// function of (config, seed) and `--jobs N` soaks are order-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "auth/authority.h"
#include "fault/fault_plan.h"
#include "util/ids.h"
#include "vcloud/admission.h"
#include "vcloud/cloud.h"

namespace vcl::core {

struct AdversaryDriverStats {
  std::size_t sybil_claims = 0;      // fabricated join claims presented
  std::size_t sybil_members = 0;     // claims that became members
  std::size_t revocations = 0;       // authority-side revokes driven
  std::size_t crl_deliveries = 0;    // CRLs delivered to the cloud's RSUs
  std::size_t replays = 0;           // replayed messages injected
  std::size_t replays_delivered = 0; // replays that survived the gate
  std::size_t skipped_no_victim = 0; // events dropped: nobody to attack
};

class AdversaryDriver {
 public:
  AdversaryDriver(vcloud::VehicularCloud& cloud,
                  vcloud::AdmissionControl& admission,
                  auth::TrustedAuthority& authority)
      : cloud_(cloud), admission_(admission), authority_(authority) {}

  // The injector's AttackHandler: fires at the event's planned time, so
  // `e.at` is the current sim time.
  void handle(const fault::FaultEvent& e);

  [[nodiscard]] const AdversaryDriverStats& stats() const { return stats_; }

  // Fabricated credential ids live in the same reserved high range as
  // attack::SybilFactory, so they can never collide with a scenario
  // vehicle id.
  [[nodiscard]] static VehicleId sybil_identity(std::uint64_t attack_tag) {
    return VehicleId{(1ULL << 48) | attack_tag};
  }

 private:
  void handle_sybil_join(const fault::FaultEvent& e);
  void handle_revoke(const fault::FaultEvent& e);
  void handle_crl_deliver(const fault::FaultEvent& e);
  void handle_replay(const fault::FaultEvent& e);
  // Smallest-id busy (task-holding) non-crashed genuine member; falls back
  // to the smallest-id non-crashed genuine member. Never a fabricated or
  // already-revoked identity. Invalid when no such member exists.
  [[nodiscard]] VehicleId pick_revocation_victim() const;
  // Folds the cloud's current members into the ever-seen roster (insertion
  // order, deduped) — the capture pool replays draw victims from.
  void remember_members();

  vcloud::VehicularCloud& cloud_;
  vcloud::AdmissionControl& admission_;
  auth::TrustedAuthority& authority_;
  AdversaryDriverStats stats_;
  // Planned revocation group -> concrete victim (pairs kRevokeIdentity with
  // its kCrlDeliver).
  std::unordered_map<std::uint64_t, VehicleId> group_victim_;
  std::unordered_map<std::uint64_t, bool> revoked_;
  // Every genuine identity ever seen as a member, in first-seen order.
  std::vector<VehicleId> ever_members_;
  std::unordered_map<std::uint64_t, bool> ever_seen_;
};

}  // namespace vcl::core
