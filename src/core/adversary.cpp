#include "core/adversary.h"

namespace vcl::core {

void AdversaryDriver::handle(const fault::FaultEvent& e) {
  // Every attack observes membership first: replay victims must be drawn
  // from identities that were ACTUALLY members at some point (a captured
  // message exists for them), and the roster must grow deterministically
  // with the event sequence, not with wall-clock sampling.
  remember_members();
  switch (e.kind) {
    case fault::FaultKind::kSybilJoin: handle_sybil_join(e); break;
    case fault::FaultKind::kRevokeIdentity: handle_revoke(e); break;
    case fault::FaultKind::kCrlDeliver: handle_crl_deliver(e); break;
    case fault::FaultKind::kReplayInject: handle_replay(e); break;
    default: break;  // benign kinds never reach the attack handler
  }
}

void AdversaryDriver::remember_members() {
  for (const VehicleId v : cloud_.worker_ids()) {
    if (admission_.is_fabricated(v)) continue;
    auto [it, inserted] = ever_seen_.emplace(v.value(), true);
    (void)it;
    if (inserted) ever_members_.push_back(v);
  }
}

void AdversaryDriver::handle_sybil_join(const fault::FaultEvent& e) {
  const VehicleId fake = sybil_identity(e.attack_tag);
  ++stats_.sybil_claims;
  admission_.note_fabricated(fake);
  if (cloud_.offer_join(fake, /*fabricated=*/true)) ++stats_.sybil_members;
}

VehicleId AdversaryDriver::pick_revocation_victim() const {
  VehicleId fallback;
  for (const VehicleId v : cloud_.worker_ids()) {  // sorted ascending
    if (admission_.is_fabricated(v)) continue;
    if (revoked_.count(v.value()) != 0) continue;
    if (cloud_.worker_crashed(v)) continue;
    if (cloud_.running_on(v).valid()) return v;  // busy: maximum damage
    if (!fallback.valid()) fallback = v;
  }
  return fallback;
}

void AdversaryDriver::handle_revoke(const fault::FaultEvent& e) {
  const VehicleId victim = pick_revocation_victim();
  if (!victim.valid()) {
    ++stats_.skipped_no_victim;
    return;  // no group mapping either: the paired delivery skips too
  }
  revoked_[victim.value()] = true;
  if (e.group != 0) group_victim_[e.group] = victim;
  // Authority-side truth first (every pseudonym dies), then the admission
  // control's bookkeeping. NO RSU learns anything yet — the window until
  // the paired kCrlDeliver is the revocation-propagation race.
  authority_.revoke_vehicle(victim);
  admission_.note_revoked(victim, e.at);
  ++stats_.revocations;
}

void AdversaryDriver::handle_crl_deliver(const fault::FaultEvent& e) {
  const auto it = group_victim_.find(e.group);
  if (it == group_victim_.end()) {
    ++stats_.skipped_no_victim;
    return;
  }
  admission_.deliver_crl(it->second, /*visible_at=*/e.at,
                         /*horizon_at=*/e.at + e.crl_horizon_after, e.at);
  ++stats_.crl_deliveries;
}

void AdversaryDriver::handle_replay(const fault::FaultEvent& e) {
  if (ever_members_.empty()) {
    ++stats_.skipped_no_victim;
    return;
  }
  const VehicleId victim =
      ever_members_[e.attack_tag % ever_members_.size()];
  ++stats_.replays;
  // The captured message was minted `replay_age` ago; its nonce is the
  // planned tag (a flood re-sending one capture shares the tag, so the
  // nonce memory alone kills the duplicates even inside the window).
  if (!admission_.accept_replay(e.at - e.replay_age, e.attack_tag, e.at)) {
    return;
  }
  ++stats_.replays_delivered;
  // Land the harm. Even tags replay a heartbeat (keeps a crashed zombie
  // alive on the detector's books); odd tags replay a join (re-admits a
  // departed identity as a ghost member).
  if (e.attack_tag % 2 == 0) {
    cloud_.replayed_heartbeat(victim);
  } else {
    cloud_.offer_join(victim, /*fabricated=*/false);
  }
}

}  // namespace vcl::core
