// VehicularCloudSystem: the library's top-level facade.
//
// Wires a Scenario with clustering, one of the three Fig. 4 cloud
// architectures, a scheduler, authentication and (optionally) attack
// machinery into a running system with a small task-submission API. The
// examples and several benches are written entirely against this class.
#pragma once

#include <memory>

#include "attack/adversary.h"
#include "auth/authority.h"
#include "cluster/moving_zone.h"
#include "core/adversary.h"
#include "core/scenario.h"
#include "dag/scheduler.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "storage/service.h"
#include "vcloud/cloud.h"
#include "vcloud/invariant_oracle.h"

namespace vcl::core {

enum class CloudArchitecture : std::uint8_t {
  kStationary,
  kInfrastructureBased,
  kDynamic,
};

const char* to_string(CloudArchitecture a);

enum class SchedulerKind : std::uint8_t { kRandom, kGreedy, kDwellAware };

std::unique_ptr<vcloud::Scheduler> make_scheduler(SchedulerKind kind);

struct SystemConfig {
  ScenarioConfig scenario;
  CloudArchitecture architecture = CloudArchitecture::kDynamic;
  SchedulerKind scheduler = SchedulerKind::kDwellAware;
  vcloud::CloudConfig cloud;
  // Stationary clouds anchor here (defaults to the road bounding-box
  // center).
  double stationary_radius = 400.0;
  SimTime cluster_period = 1.0;
  // Fault injection (paper §III): all rates default to 0 = no faults. The
  // blackout box is filled from the road bounding box unless set explicitly.
  fault::FaultPlanConfig faults;
  // A non-empty explicit plan (chaos storms, a shrunk repro loaded from a
  // file) bypasses `faults` generation entirely and is injected as-is.
  fault::FaultPlan fault_plan;
  // Runtime safety checking (DESIGN.md §9): attach a vcloud::InvariantOracle
  // to the cloud. Off by default — a disabled run pays one branch per hook
  // and stays bit-identical to the seed (same contract as telemetry).
  bool invariant_oracle = false;
  // Dependable object storage over the cloud's members (DESIGN.md §10):
  // leases, quorum replication, self-healing repair. Off by default — when
  // storage.enabled is false no service is built, no hooks are installed and
  // the run is bit-identical to the seed.
  storage::StorageConfig storage;
  // DAG task-graph workloads (DESIGN.md §11): decomposition scheduling of
  // dependency graphs over the broker, with blind-k or reliability-aware
  // replication. Off by default — when dag.enabled is false no scheduler is
  // built, no hooks are installed and the run is bit-identical to the seed.
  dag::DagConfig dag;
  // Adversarial chaos (paper §IV, DESIGN.md §13): revocation-aware
  // admission/eviction on the broker path, the replay freshness gate and
  // sybil quarantine, plus the AdversaryDriver that lands planned attack
  // events (kSybilJoin / kRevokeIdentity / kCrlDeliver / kReplayInject) on
  // concrete victims. Off by default — when adversary.enabled is false no
  // admission control or driver is built, every hook is one branch, and the
  // run is bit-identical to the seed.
  attack::AdversaryConfig adversary;
  // Observability (DESIGN.md §6): tracing, metric sampling and kernel
  // profiling, all off by default — a disabled run pays one branch per
  // would-be event and stays bit-identical to the seed.
  obs::TelemetryConfig telemetry;
};

class VehicularCloudSystem {
 public:
  explicit VehicularCloudSystem(SystemConfig config);

  // Builds the world and the cloud; must be called before submit/run.
  void start();
  void run_for(SimTime seconds);

  // Submits a task spec to the cloud.
  TaskId submit(vcloud::Task spec);
  // Generates and submits `n` tasks from the workload config.
  std::vector<TaskId> submit_workload(const vcloud::WorkloadConfig& workload,
                                      std::size_t n);

  [[nodiscard]] Scenario& scenario() { return scenario_; }
  [[nodiscard]] vcloud::VehicularCloud& cloud() { return *cloud_; }
  [[nodiscard]] cluster::MovingZone& clusters() { return zones_; }
  [[nodiscard]] auth::TrustedAuthority& authority() { return ta_; }
  // Present only when the fault config has a non-empty plan.
  [[nodiscard]] fault::FaultInjector* injector() { return injector_.get(); }
  // Present only when any telemetry piece is enabled in the config.
  [[nodiscard]] obs::Telemetry* telemetry() { return telemetry_.get(); }
  // Present only when config.invariant_oracle is set.
  [[nodiscard]] vcloud::InvariantOracle* oracle() { return oracle_.get(); }
  // Present only when config.storage.enabled is set.
  [[nodiscard]] storage::StorageService* storage() { return storage_.get(); }
  // Present only when config.dag.enabled is set.
  [[nodiscard]] dag::DagScheduler* dag() { return dag_.get(); }
  // Present only when config.adversary.enabled is set.
  [[nodiscard]] vcloud::AdmissionControl* admission() {
    return admission_.get();
  }
  // Present only when config.adversary.enabled is set AND a fault plan
  // exists (the driver resolves planned attack events; without an injector
  // there is nothing to resolve).
  [[nodiscard]] AdversaryDriver* adversary() { return adversary_.get(); }
  // ALWAYS present (DESIGN.md §12): the fixed-memory forensic flight
  // recorder is wired into every subsystem at start(), telemetry on or
  // off. RNG-neutral and allocation-free after construction, so runs are
  // bit-identical with or without anyone reading it.
  [[nodiscard]] obs::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const obs::FlightRecorder& flight() const { return flight_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
  Scenario scenario_;
  obs::FlightRecorder flight_;
  cluster::MovingZone zones_;
  auth::TrustedAuthority ta_;
  std::unique_ptr<vcloud::VehicularCloud> cloud_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<vcloud::InvariantOracle> oracle_;
  std::unique_ptr<storage::StorageService> storage_;
  std::unique_ptr<dag::DagScheduler> dag_;
  std::unique_ptr<vcloud::AdmissionControl> admission_;
  std::unique_ptr<AdversaryDriver> adversary_;
  bool started_ = false;
};

}  // namespace vcl::core
