#include "core/pipeline.h"

namespace vcl::core {

const char* to_string(AuthProtocolKind p) {
  switch (p) {
    case AuthProtocolKind::kPseudonym: return "pseudonym";
    case AuthProtocolKind::kGroup: return "group";
    case AuthProtocolKind::kHybrid: return "hybrid";
  }
  return "unknown";
}

PipelineResult SecurePipeline::process(const AuthInput& auth_in,
                                       const AuthzInput& authz_in,
                                       const TrustInput& trust_in,
                                       SimTime now) {
  PipelineResult result;
  crypto::OpCounts ops;

  // Stage 1: authentication ("does the vehicle have a valid identity?").
  auth::VerifyOutcome verdict;
  switch (auth_in.protocol) {
    case AuthProtocolKind::kPseudonym:
      verdict = auth::PseudonymAuth::verify(*auth_in.ta, auth_in.payload,
                                            auth_in.tag);
      break;
    case AuthProtocolKind::kGroup:
      verdict = auth::GroupAuth::verify(*auth_in.manager, auth_in.payload,
                                        auth_in.tag);
      break;
    case AuthProtocolKind::kHybrid:
      verdict = auth::HybridAuth::verify(*auth_in.manager, auth_in.payload,
                                         auth_in.tag);
      break;
  }
  ops += verdict.ops;
  result.authenticated = verdict.ok;
  if (!verdict.ok) {
    result.rejected_at = "authentication";
    result.latency = config_.costs.total(ops);
    result.within_budget = result.latency <= config_.budget;
    return result;
  }

  // Stage 2: authorization ("what resources / actions are allowed?").
  if (authz_in.package != nullptr) {
    const auto plain = authz_in.package->access(
        *authz_in.key, authz_in.attrs, authz_in.accessor, now, ops);
    result.authorized = plain.has_value();
    if (!result.authorized) {
      result.rejected_at = "authorization";
      result.latency = config_.costs.total(ops);
      result.within_budget = result.latency <= config_.budget;
      return result;
    }
  } else {
    result.authorized = true;  // stage disabled
  }

  // Stage 3: trust validation ("do I need to verify data trustworthiness?").
  if (config_.require_trust_validation && trust_in.validator != nullptr &&
      trust_in.cluster != nullptr) {
    const trust::TrustDecision decision =
        trust_in.validator->evaluate(*trust_in.cluster);
    ops.hash += trust_in.cluster->reports.size();  // content checks
    result.trusted = decision.score > config_.trust_threshold;
    if (!result.trusted) {
      result.rejected_at = "trust";
      result.latency = config_.costs.total(ops);
      result.within_budget = result.latency <= config_.budget;
      return result;
    }
  } else {
    result.trusted = true;
  }

  result.accepted = true;
  result.latency = config_.costs.total(ops);
  result.within_budget = result.latency <= config_.budget;
  return result;
}

}  // namespace vcl::core
