#include "core/chaos.h"

#include <fstream>
#include <memory>

#include "core/system.h"
#include "dag/generator.h"
#include "obs/json.h"
#include "obs/telemetry.h"

namespace vcl::core {

namespace {

ScenarioConfig scenario_for(const ChaosScenarioConfig& config) {
  ScenarioConfig scenario;
  scenario.environment = Environment::kParkingLot;
  scenario.seed = config.seed;
  scenario.vehicles = config.vehicles;
  scenario.vehicles_parked = true;
  // A small RSU deployment so outage/flap events act on real units.
  scenario.rsu_spacing = 400.0;
  return scenario;
}

SystemConfig system_for(const ChaosScenarioConfig& config) {
  SystemConfig sys;
  sys.scenario = scenario_for(config);
  sys.architecture = CloudArchitecture::kStationary;
  sys.stationary_radius = 5000.0;
  // Full mitigation mode (the bench_dependability "full" cell): chaos must
  // exercise every recovery path, not the trivially-safe baseline.
  vcloud::DependabilityConfig& dep = sys.cloud.dependability;
  dep.detector.enabled = true;
  dep.detector.missed_beats_to_kill = 6;
  dep.checkpoint.enabled = true;
  dep.checkpoint.period = 5.0;
  dep.retry.enabled = true;
  dep.speculation.enabled = true;
  dep.broker_resync_delay = 0.5;
  dep.test_drop_crash_requeue = config.inject_requeue_bug;
  sys.invariant_oracle = true;
  if (config.storage) {
    sys.storage.enabled = true;  // canonical N=3 / W=2 / R=2 deployment
    sys.storage.test_drop_repair_replace = config.inject_repair_bug;
  }
  if (config.adversary) {
    sys.adversary.enabled = true;
    sys.adversary.defend = true;  // episodes test the defended path
    // Storm replays are minted well past this window (ChaosConfig's
    // replay_age default), so a defended episode rejects the whole flood.
    sys.adversary.freshness_window = 4.0;
    sys.adversary.test_drop_revoked_requeue = config.inject_revoked_bug;
  }
  if (config.dag) {
    sys.dag.enabled = true;
    // Reliability-aware: the policy with the most moving parts (backup
    // launches, dwell predictions on crashed hosts) — what chaos is for.
    sys.dag.policy = dag::DagPolicy::kReliabilityAware;
    sys.dag.replicas = 2;
    // Attempts only terminate completed or expired (the cloud requeues
    // crashes internally), so a graph deadline is what makes the failure
    // path — and the seeded stranded-node bug behind it — reachable.
    sys.dag.graph_deadline = 30.0;
    sys.dag.test_drop_failed_resubmit = config.inject_dag_bug;
  }
  return sys;
}

// Deterministic client op mix for storage episodes: no RNG — the op index
// alone decides put vs get and which client/object is involved, so the
// stream is identical whatever the fault schedule does.
constexpr std::size_t kStorageObjects = 8;
constexpr std::size_t kStorageClients = 4;
constexpr SimTime kStorageOpPeriod = 0.7;

// DAG episodes submit one generated graph per period; shapes cycle through
// the generator's canon (chain, fork-join, diamond, layered).
constexpr SimTime kDagSubmitPeriod = 6.0;

// Snapshots the whole system into a vcl-incident-v1 bundle at the instant
// `first` fired. Runs inside the oracle's violation hook — i.e. inside a
// cloud refresh or terminal transition — so it only reads const accessors
// and never touches the simulator. Ids use the bundle convention 0 = none
// (Id<Tag>'s internal invalid value is UINT64_MAX, never serialized).
obs::IncidentBundle snapshot_incident(VehicularCloudSystem& system,
                                      const ChaosScenarioConfig& config,
                                      const vcloud::InvariantViolation& first) {
  obs::IncidentBundle b;
  b.seed = config.seed;
  b.captured_at = first.at;
  b.trigger = first.invariant;

  const obs::FlightRecorder& flight = system.flight();
  b.flight_recorded = flight.recorded();
  b.flight_overwritten = flight.overwritten();
  obs::append_flight_tail(b, flight.tail());

  const vcloud::VehicularCloud& cloud = system.cloud();
  b.broker = cloud.broker().valid() ? cloud.broker().value() : 0;
  b.pending = cloud.pending_count();
  for (VehicleId v : cloud.worker_ids()) {
    obs::IncidentWorker w;
    w.id = v.value();
    w.crashed = cloud.worker_crashed(v);
    w.tracked = cloud.detector().tracked(v);
    b.workers.push_back(w);
  }
  cloud.for_each_task([&b](const vcloud::Task& t) {
    if (t.terminal()) return;
    obs::IncidentTask it;
    it.id = t.id.value();
    it.state = vcloud::to_string(t.state);
    it.progress = t.progress;
    it.work = t.work;
    it.checkpoint = t.checkpoint_progress;
    it.worker = t.worker.valid() ? t.worker.value() : 0;
    it.trace_id = t.trace.trace_id;
    b.tasks.push_back(it);
  });

  if (const fault::FaultInjector* inj = system.injector(); inj != nullptr) {
    for (const fault::BlackoutWindow& w : inj->blackout_windows()) {
      obs::IncidentWindow iw;
      iw.start = w.start;
      iw.end = w.end;
      iw.x = w.center.x;
      iw.y = w.center.y;
      iw.radius = w.radius;
      iw.active = first.at >= w.start && first.at <= w.end;
      b.windows.push_back(iw);
    }
  }

  if (const obs::Telemetry* tel = system.telemetry(); tel != nullptr) {
    for (const obs::TraceRecorder::Event& e : tel->trace.open_spans()) {
      obs::IncidentOpenSpan s;
      s.begin = e.t;
      s.cat = obs::to_string(e.cat);
      s.name = e.name;
      s.trace_id = e.trace_id;
      s.span_id = e.span_id;
      b.open_spans.push_back(s);
    }
  }

  if (const storage::StorageService* store = system.storage();
      store != nullptr) {
    store->for_each_object([&b](const vcloud::StorageObjectView& o) {
      obs::IncidentObject io;
      io.id = o.object.valid() ? o.object.value() : 0;
      io.acked_version = o.acked_version;
      b.objects.push_back(io);
      for (const vcloud::StorageReplicaView& r : o.replicas) {
        obs::IncidentReplica ir;
        ir.object = io.id;
        ir.holder = r.holder.valid() ? r.holder.value() : 0;
        ir.version = r.version;
        ir.alive = r.alive;
        ir.lease_held = r.lease_held;
        b.replicas.push_back(ir);
      }
    });
  }

  if (const dag::DagScheduler* dsched = system.dag(); dsched != nullptr) {
    dsched->for_each_graph([&b](const vcloud::DagGraphView& g) {
      obs::IncidentDagGraph ig;
      ig.id = g.id;
      ig.terminal = g.terminal;
      ig.completed = g.completed;
      ig.intermediates_held = g.intermediates_held;
      b.graphs.push_back(ig);
      if (g.nodes == nullptr) return;
      for (std::size_t i = 0; i < g.nodes->size(); ++i) {
        const vcloud::DagNodeStateView& n = (*g.nodes)[i];
        obs::IncidentDagNode in;
        in.graph = g.id;
        in.node = i;
        in.submitted = n.submitted;
        in.succeeded = n.succeeded;
        in.live_attempts = n.live_attempts;
        b.dag_nodes.push_back(in);
      }
    });
  }

  return b;
}

}  // namespace

fault::ChaosConfig chaos_config_for(const ChaosScenarioConfig& config) {
  fault::ChaosConfig chaos;
  chaos.base.horizon = config.duration;
  chaos.base.vehicle_crash_rate = 0.02 * config.intensity;
  chaos.base.broker_crash_rate = 0.005 * config.intensity;
  chaos.base.rsu_outage_rate = 0.01 * config.intensity;
  chaos.base.rsu_repair_mean = 10.0;
  chaos.base.blackout_rate = 0.01 * config.intensity;
  chaos.base.blackout_mean_duration = 5.0;
  chaos.base.blackout_radius = 400.0;
  // The planner draws blackout centers itself, so the box the system would
  // normally backfill at start() has to be resolved here. A bare Scenario
  // (never started) is just the road graph — cheap.
  Scenario probe(scenario_for(config));
  const auto [lo, hi] = probe.road().bounding_box();
  chaos.base.blackout_lo = lo;
  chaos.base.blackout_hi = hi;
  if (config.storms) {
    chaos.storms.burst_rate = 0.02 * config.intensity;
    chaos.storms.cascade_rate = 0.01 * config.intensity;
    chaos.storms.flap_rate = 0.01 * config.intensity;
    if (config.storage) {
      // Storage worst case: burst-crash a write quorum of one object's
      // holders inside a blackout that is already eating lease renewals.
      chaos.storms.storage_rate = 0.01 * config.intensity;
    }
    if (config.dag) {
      // DAG worst case: repeatedly crash whichever worker currently holds
      // a live run's critical-path node, chasing re-placements.
      chaos.storms.dag_rate = 0.01 * config.intensity;
    }
    if (config.adversary) {
      // §IV worst cases: fabricated joins inside a verification blackout,
      // revocations racing their CRL to the RSUs while the victim holds
      // work, and captured-message floods past the freshness window.
      chaos.storms.sybil_rate = 0.02 * config.intensity;
      chaos.storms.revoke_rate = 0.01 * config.intensity;
      chaos.storms.replay_rate = 0.01 * config.intensity;
      chaos.storms.replay_window = 4.0;  // matches the episode freshness gate
      chaos.storms.replay_age = 6.0;     // every storm replay is stale
    }
  }
  return chaos;
}

ChaosEpisode run_chaos_episode(const ChaosScenarioConfig& config) {
  const fault::ChaosPlanner planner(chaos_config_for(config));
  return run_chaos_episode(config, planner.plan(config.seed));
}

ChaosEpisode run_chaos_episode(const ChaosScenarioConfig& config,
                               fault::FaultPlan plan,
                               const std::string& telemetry_dir) {
  SystemConfig sys = system_for(config);
  sys.fault_plan = std::move(plan);
  if (!telemetry_dir.empty()) {
    sys.telemetry.tracing = true;
    sys.telemetry.metrics = true;
  }

  VehicularCloudSystem system(sys);
  system.start();

  // Incident capture (DESIGN.md §12): snapshot the system at the FIRST
  // violation, inside the oracle's report() — the state the checker
  // actually objected to, not the drained end-of-episode state. Later
  // violations only append to the bundle's violation list after the run.
  auto incident = std::make_shared<obs::IncidentBundle>();
  bool incident_captured = false;
  if (system.oracle() != nullptr) {
    system.oracle()->set_violation_hook(
        [&system, &config, &incident,
         &incident_captured](const vcloud::InvariantViolation& v) {
          if (incident_captured) return;
          incident_captured = true;
          *incident = snapshot_incident(system, config, v);
        });
  }

  vcloud::WorkloadGenerator workload({30.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  const SimTime load_until = config.duration;
  sim.schedule_every(config.submit_period, [&] {
    if (sim.now() < load_until) system.cloud().submit(workload.next(sim.now()));
  });
  std::size_t storage_op = 0;
  if (config.storage && system.storage() != nullptr) {
    storage::StorageService& store = *system.storage();
    std::vector<FileId> objects;
    objects.reserve(kStorageObjects);
    for (std::size_t i = 0; i < kStorageObjects; ++i) {
      objects.push_back(store.create(sim.now()));
    }
    sim.schedule_every(kStorageOpPeriod, [&store, &sim, &storage_op, objects,
                                          load_until] {
      if (sim.now() >= load_until) return;
      const std::size_t op = storage_op++;
      const FileId object = objects[op % objects.size()];
      const std::uint64_t client = op % kStorageClients;
      // Two reads per write: the monotonic-reads invariant needs plenty of
      // read pairs per client, and writes still touch every object often.
      if (op % 3 == 0) {
        store.put(client, object, sim.now());
      } else {
        store.get(client, object, sim.now());
      }
    });
  }
  if (config.dag && system.dag() != nullptr) {
    // Deterministic graph stream: its own forked RNG, so enabling the DAG
    // layer never reshuffles the task workload or the fault schedule. Light
    // graphs, so a healthy episode completes them well inside the graph
    // deadline and only injected chaos pushes one over it.
    dag::DagWorkloadConfig graphs;
    graphs.mean_node_work = 6.0;
    graphs.mean_transfer_mb = 0.5;
    graphs.mean_output_mb = 0.2;
    graphs.chain_length = 4;
    graphs.fanout = 4;
    graphs.layers = 3;
    graphs.layer_width = 2;
    auto gen = std::make_shared<dag::DagWorkloadGenerator>(
        graphs, system.scenario().fork_rng(78));
    dag::DagScheduler& dsched = *system.dag();
    sim.schedule_every(kDagSubmitPeriod, [&dsched, &sim, gen, load_until] {
      if (sim.now() < load_until) {
        dsched.submit_graph(gen->next(), sim.now());
      }
    });
  }
  system.run_for(config.duration + config.drain);

  if (incident_captured && system.oracle() != nullptr) {
    // The trigger snapshot keeps captured_at/trigger/state from the first
    // violation; the violation list is refreshed to the oracle's full
    // stored set so the bundle names everything the episode tripped.
    incident->violations.clear();
    for (const vcloud::InvariantViolation& v : system.oracle()->violations()) {
      obs::IncidentViolation iv;
      iv.t = v.at;
      iv.invariant = v.invariant;
      iv.detail = v.detail;
      iv.task = v.task.valid() ? v.task.value() : 0;
      incident->violations.push_back(std::move(iv));
    }
  }

  if (!telemetry_dir.empty() && system.telemetry() != nullptr) {
    obs::write_telemetry(*system.telemetry(), telemetry_dir);
    // Oracle violations ride next to the trace so tools/vcl_report can fold
    // them into the run-health report: one flat JSON object per line
    // (vcl-violations-v1), written even when empty — an existing-but-empty
    // file distinguishes "checked clean" from "never exported".
    if (system.oracle() != nullptr) {
      std::ofstream os(telemetry_dir + "/violations.jsonl");
      if (os) {
        {
          obs::JsonWriter w(os);
          w.begin_object();
          w.key("meta").value("vcl-violations-v1");
          w.key("seed").value(config.seed);
          w.key("checks_run").value(
              static_cast<std::uint64_t>(system.oracle()->checks_run()));
          w.key("violations").value(
              static_cast<std::uint64_t>(system.oracle()->violation_count()));
          w.end_object();
        }
        os << '\n';
        for (const vcloud::InvariantViolation& v :
             system.oracle()->violations()) {
          obs::JsonWriter w(os);
          w.begin_object();
          w.key("t").value(v.at);
          w.key("invariant").value(v.invariant);
          w.key("detail").value(v.detail);
          if (v.task.valid()) {
            w.key("task").value(static_cast<double>(v.task.value()));
          }
          w.key("seed").value(v.seed);
          w.end_object();
          os << '\n';
        }
      }
    }
    // The forensic bundle rides next to the repro and the trace
    // (vcl-incident-v1, rendered by tools/vcl_incident). Only written when
    // a violation actually fired — absence means "episode was clean".
    if (incident_captured) {
      std::ofstream os(telemetry_dir + "/incident.jsonl");
      if (os) obs::write_incident_bundle(*incident, os);
    }
  }

  ChaosEpisode episode;
  episode.seed = config.seed;
  episode.plan = sys.fault_plan;
  if (incident_captured) episode.incident = incident;
  const vcloud::InvariantOracle* oracle = system.oracle();
  if (oracle != nullptr) {
    episode.violations = oracle->violations();
    episode.violation_count = oracle->violation_count();
    episode.checks_run = oracle->checks_run();
  }
  const vcloud::CloudStats& stats = system.cloud().stats();
  episode.submitted = stats.submitted;
  episode.completed = stats.completed;
  episode.expired = stats.expired;
  if (system.injector() != nullptr) {
    episode.crashes = system.injector()->stats().vehicle_crashes +
                      system.injector()->stats().broker_crashes;
  }
  if (system.storage() != nullptr) {
    const storage::StorageStats& st = system.storage()->stats();
    episode.storage_writes_acked = st.writes_acked;
    episode.storage_reads_quorum = st.reads_quorum;
    episode.storage_reads_degraded = st.reads_degraded;
    episode.storage_repair_copies = st.repair_copies;
  }
  if (system.dag() != nullptr) {
    const dag::DagStats& ds = system.dag()->stats();
    episode.dag_graphs_submitted = ds.graphs_submitted;
    episode.dag_graphs_completed = ds.graphs_completed;
    episode.dag_graphs_failed = ds.graphs_failed;
    episode.dag_nodes_succeeded = ds.nodes_succeeded;
    episode.dag_backups = ds.backups;
  }
  if (system.admission() != nullptr) {
    const vcloud::AdmissionStats& as = system.admission()->stats();
    episode.sybil_claims = as.sybil_claims;
    episode.sybil_quarantined = as.sybil_quarantined;
    episode.sybil_admitted = as.sybil_admitted;
    episode.replays_seen = as.replays_seen;
    episode.replays_rejected = as.replays_rejected;
    episode.revocations = as.revocations;
    episode.revoked_evictions = as.revoked_evictions;
  }
  return episode;
}

void write_chaos_repro(const ChaosScenarioConfig& config,
                       const fault::FaultPlan& plan, std::ostream& os) {
  fault::FaultPlanMeta meta;
  meta.seed = config.seed;
  meta.set("vehicles", static_cast<double>(config.vehicles));
  meta.set("duration", config.duration);
  meta.set("drain", config.drain);
  meta.set("intensity", config.intensity);
  meta.set("storms", config.storms ? 1.0 : 0.0);
  meta.set("submit_period", config.submit_period);
  meta.set("inject_requeue_bug", config.inject_requeue_bug ? 1.0 : 0.0);
  meta.set("storage", config.storage ? 1.0 : 0.0);
  meta.set("inject_repair_bug", config.inject_repair_bug ? 1.0 : 0.0);
  meta.set("dag", config.dag ? 1.0 : 0.0);
  meta.set("inject_dag_bug", config.inject_dag_bug ? 1.0 : 0.0);
  meta.set("adversary", config.adversary ? 1.0 : 0.0);
  meta.set("inject_revoked_bug", config.inject_revoked_bug ? 1.0 : 0.0);
  fault::write_fault_plan_jsonl(plan, meta, os);
}

bool load_chaos_repro(std::istream& is, ChaosScenarioConfig& config,
                      fault::FaultPlan& plan, std::string* error) {
  fault::FaultPlanMeta meta;
  if (!fault::parse_fault_plan_jsonl(is, plan, meta, error)) return false;
  ChaosScenarioConfig defaults;
  config.seed = meta.seed;
  config.vehicles = static_cast<int>(
      meta.get("vehicles", static_cast<double>(defaults.vehicles)));
  config.duration = meta.get("duration", defaults.duration);
  config.drain = meta.get("drain", defaults.drain);
  config.intensity = meta.get("intensity", defaults.intensity);
  config.storms = meta.get("storms", defaults.storms ? 1.0 : 0.0) != 0.0;
  config.submit_period = meta.get("submit_period", defaults.submit_period);
  config.inject_requeue_bug = meta.get("inject_requeue_bug", 0.0) != 0.0;
  config.storage = meta.get("storage", 0.0) != 0.0;
  config.inject_repair_bug = meta.get("inject_repair_bug", 0.0) != 0.0;
  config.dag = meta.get("dag", 0.0) != 0.0;
  config.inject_dag_bug = meta.get("inject_dag_bug", 0.0) != 0.0;
  config.adversary = meta.get("adversary", 0.0) != 0.0;
  config.inject_revoked_bug = meta.get("inject_revoked_bug", 0.0) != 0.0;
  return true;
}

}  // namespace vcl::core
