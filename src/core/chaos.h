// Chaos episode harness (DESIGN.md §9): one seeded, self-contained
// adversarial run of the full system with the invariant oracle attached.
//
// An *episode* is a parking-lot stationary cloud (the bench_dependability
// fixture) in full mitigation mode — failure detector, ack/retry,
// checkpoints, speculation — serving a steady deadline-bearing task stream
// while a fault::ChaosPlanner schedule (independent Poisson background
// plus correlated storms) tears at it. The vcloud::InvariantOracle checks
// global safety at every refresh and terminal transition; the episode
// result pairs any violations with the exact FaultPlan that produced them,
// which is the piece the oracle itself cannot carry (vcloud does not
// depend on fault).
//
// Everything is a pure function of ChaosScenarioConfig: same config, same
// episode, byte for byte — which is what makes soak failures replayable
// (tools/vcl_chaos --repro) and fault plans shrinkable.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "obs/incident.h"
#include "vcloud/invariant_oracle.h"

namespace vcl::core {

struct ChaosScenarioConfig {
  std::uint64_t seed = 1;
  int vehicles = 40;
  SimTime duration = 120.0;  // load window; faults also stop here
  SimTime drain = 40.0;      // deadlines settle everything in flight
  // Scales every fault and storm rate together (1.0 = the defaults below).
  double intensity = 1.0;
  bool storms = true;            // correlated storms on top of the background
  SimTime submit_period = 0.5;   // one task per period during the load window
  // Arms the deliberate lost-task bug in crash recovery (see
  // DependabilityConfig::test_drop_crash_requeue). Test fixture only.
  bool inject_requeue_bug = false;
  // Runs the storage service (leases + quorum replication + repair) under
  // the same chaos: a handful of replicated objects served by a steady
  // client read/write mix, the storage invariants armed in the oracle, and
  // — when storms are on — the storage-targeted storm shape added to the
  // schedule.
  bool storage = false;
  // Arms the deliberate lost-replica bug in storage repair (see
  // StorageConfig::test_drop_repair_replace). Test fixture only.
  bool inject_repair_bug = false;
  // Runs the DAG decomposition scheduler under the same chaos: a steady
  // stream of generated task graphs (reliability-aware policy), the DAG
  // invariants armed in the oracle, and — when storms are on — the
  // critical-path-chasing storm shape added to the schedule.
  bool dag = false;
  // Arms the deliberate stranded-node bug in the DAG scheduler (see
  // DagConfig::test_drop_failed_resubmit). Test fixture only.
  bool inject_dag_bug = false;
  // Runs the §IV adversary under the same chaos: attack storms (sybil
  // bursts inside blackouts, CRL-propagation races, replay floods) added to
  // the schedule, the revocation-aware admission/eviction defenses on the
  // broker path, and the auth invariants armed in the oracle.
  bool adversary = false;
  // Arms the deliberate dropped-requeue bug in the revocation eviction
  // sweep (see AdversaryConfig::test_drop_revoked_requeue). Test fixture
  // only.
  bool inject_revoked_bug = false;
};

// The fault/storm schedule an episode with this config faces. The blackout
// box is derived from the scenario's road bounding box.
[[nodiscard]] fault::ChaosConfig chaos_config_for(
    const ChaosScenarioConfig& config);

struct ChaosEpisode {
  std::uint64_t seed = 0;
  fault::FaultPlan plan;  // the schedule the episode actually ran
  std::vector<vcloud::InvariantViolation> violations;  // capped at kMaxStored
  std::size_t violation_count = 0;  // uncapped total
  std::size_t checks_run = 0;
  // Headline outcome numbers (full stats live in the trace export).
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t crashes = 0;  // injected vehicle + broker crashes
  // Storage outcome (zero when ChaosScenarioConfig::storage is off).
  std::size_t storage_writes_acked = 0;
  std::size_t storage_reads_quorum = 0;
  std::size_t storage_reads_degraded = 0;
  std::size_t storage_repair_copies = 0;
  // DAG outcome (zero when ChaosScenarioConfig::dag is off).
  std::size_t dag_graphs_submitted = 0;
  std::size_t dag_graphs_completed = 0;
  std::size_t dag_graphs_failed = 0;
  std::size_t dag_nodes_succeeded = 0;
  std::size_t dag_backups = 0;
  // Adversary outcome (zero when ChaosScenarioConfig::adversary is off).
  std::size_t sybil_claims = 0;
  std::size_t sybil_quarantined = 0;
  std::size_t sybil_admitted = 0;
  std::size_t replays_seen = 0;
  std::size_t replays_rejected = 0;
  std::size_t revocations = 0;
  std::size_t revoked_evictions = 0;
  // Forensic snapshot captured at the instant of the FIRST violation
  // (DESIGN.md §12): flight-recorder tail, open fault windows, in-flight
  // spans, membership/task/replica/DAG state — everything vcl_incident
  // needs to render the causal timeline. Null when the episode was clean.
  // shared_ptr keeps ChaosEpisode cheaply copyable for the soak harness.
  std::shared_ptr<obs::IncidentBundle> incident;

  [[nodiscard]] bool ok() const { return violation_count == 0; }
};

// Generates the plan for `config` (ChaosPlanner, seed = config.seed) and
// runs it. Deterministic.
[[nodiscard]] ChaosEpisode run_chaos_episode(const ChaosScenarioConfig& config);

// Runs an explicit plan instead (shrink candidates, loaded repro files).
// When `telemetry_dir` is non-empty the episode records traces + metrics
// and exports them there (trace.jsonl is vcl_traceview-ready).
[[nodiscard]] ChaosEpisode run_chaos_episode(const ChaosScenarioConfig& config,
                                             fault::FaultPlan plan,
                                             const std::string& telemetry_dir =
                                                 {});

// Repro files: the fault-plan JSONL with the episode scenario knobs carried
// in the meta record, so one file re-creates the exact failing episode.
void write_chaos_repro(const ChaosScenarioConfig& config,
                       const fault::FaultPlan& plan, std::ostream& os);
bool load_chaos_repro(std::istream& is, ChaosScenarioConfig& config,
                      fault::FaultPlan& plan, std::string* error = nullptr);

}  // namespace vcl::core
