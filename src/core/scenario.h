// Scenario: one self-contained simulated world.
//
// Owns the simulator, road network, traffic, trip generation and network
// fabric in construction order, wired and started with one call — the
// common harness every example, test and bench builds on.
#pragma once

#include <memory>

#include "mobility/trip_generator.h"
#include "net/network.h"

namespace vcl::core {

enum class Environment : std::uint8_t { kCity, kHighway, kParkingLot };

struct ScenarioConfig {
  Environment environment = Environment::kCity;
  std::uint64_t seed = 42;

  // City grid.
  int grid_rows = 6;
  int grid_cols = 6;
  double grid_spacing = 200.0;
  // Highway.
  double highway_length = 5000.0;
  // Parking lot.
  int lot_rows = 8;
  int lot_cols = 8;

  int vehicles = 100;
  bool vehicles_parked = false;  // park the population (stationary clouds)
  // Automation-level mix, indexed by SAE level 0..5 (normalized weights).
  std::vector<double> automation_weights = {0.05, 0.15, 0.3, 0.3, 0.15, 0.05};

  double mobility_dt = 0.1;
  SimTime beacon_period = 1.0;
  net::ChannelConfig channel;
  // RSU deployment: grid spacing in meters; 0 = no infrastructure.
  double rsu_spacing = 0.0;
  double rsu_range = 500.0;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  // Prefills traffic and attaches the periodic activities. Idempotent.
  void start();
  // Convenience: run the simulation forward `seconds`.
  void run_for(SimTime seconds);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const geo::RoadNetwork& road() const { return road_; }
  [[nodiscard]] mobility::TrafficModel& traffic() { return traffic_; }
  [[nodiscard]] mobility::TripGenerator& trips() { return trips_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return Rng(config_.seed).fork(salt);
  }

 private:
  static geo::RoadNetwork build_road(const ScenarioConfig& config);
  void park_population();

  ScenarioConfig config_;
  sim::Simulator sim_;
  geo::RoadNetwork road_;
  mobility::TrafficModel traffic_;
  mobility::TripGenerator trips_;
  net::Network net_;
  bool started_ = false;
};

}  // namespace vcl::core
