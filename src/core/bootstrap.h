// Secure v-cloud initialization (paper §V.A "V-cloud initialization").
//
// When a vehicle first logs into the VANET it must: hear neighbors (hello
// beacons), register with the authority — directly through an RSU when
// covered, else relayed by an already-joined neighbor — obtain its
// pseudonym pool, and establish pairwise session keys with its neighbors
// (real Diffie-Hellman in the Schnorr group). The protocol is a per-vehicle
// state machine driven off the beacon rounds; joining latency and the
// RSU-vs-relay mix are the measurable outputs.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "auth/pseudonym.h"
#include "net/network.h"
#include "util/stats.h"

namespace vcl::core {

enum class JoinState : std::uint8_t {
  kUnregistered,  // just spawned; listening for hellos
  kRegistering,   // registration round-trip in flight
  kJoined,
};

struct JoinRecord {
  JoinState state = JoinState::kUnregistered;
  SimTime started = 0.0;
  SimTime joined_at = 0.0;
  bool via_rsu = false;  // direct RSU registration vs neighbor relay
};

struct BootstrapConfig {
  std::size_t pseudonym_pool = 8;
  crypto::CostModel costs;
  // A relay path adds hops; modeled as a multiplier on the RSU RTT.
  double relay_penalty = 2.0;
};

class BootstrapProtocol {
 public:
  BootstrapProtocol(net::Network& net, auth::TrustedAuthority& ta,
                    BootstrapConfig config = {});

  // Drives the state machines once per period.
  void attach(SimTime period = 1.0);
  void step();  // public for tests

  [[nodiscard]] JoinState state(VehicleId v) const;
  [[nodiscard]] bool joined(VehicleId v) const {
    return state(v) == JoinState::kJoined;
  }
  [[nodiscard]] std::size_t joined_count() const;
  [[nodiscard]] std::size_t via_rsu_count() const { return via_rsu_; }
  [[nodiscard]] std::size_t via_relay_count() const { return via_relay_; }
  [[nodiscard]] const Accumulator& join_latency() const {
    return join_latency_;
  }

  // Pairwise session key between two joined vehicles (Diffie-Hellman in
  // the Schnorr group, keys derived on demand); nullopt unless both are
  // joined. Symmetric: session_key(a,b) == session_key(b,a).
  [[nodiscard]] std::optional<crypto::Digest> session_key(VehicleId a,
                                                          VehicleId b) const;

  // The vehicle's signer handle once joined (for the auth protocols).
  [[nodiscard]] auth::PseudonymAuth* signer(VehicleId v);

 private:
  [[nodiscard]] SimTime registration_latency(VehicleId v, bool via_rsu) const;
  void complete_join(VehicleId v, bool via_rsu);

  net::Network& net_;
  auth::TrustedAuthority& ta_;
  BootstrapConfig config_;
  std::unordered_map<std::uint64_t, JoinRecord> records_;
  std::unordered_map<std::uint64_t, std::unique_ptr<auth::PseudonymAuth>>
      signers_;
  std::unordered_map<std::uint64_t, crypto::SchnorrKeyPair> dh_keys_;
  crypto::Drbg drbg_;
  Accumulator join_latency_;
  std::size_t via_rsu_ = 0;
  std::size_t via_relay_ = 0;
};

}  // namespace vcl::core
