// Secure message pipeline (paper Fig. 3 / E4): authenticate -> authorize ->
// validate trustworthiness, under a latency budget.
//
// The pipeline answers Fig. 3's four questions in order — does the sender
// have a valid identity? what may it access? is the action allowed on this
// data? does the content need (and pass) trust validation? — charging every
// cryptographic step at production rates through the CostModel, so the
// "stringent time constraints" of §III are measurable.
#pragma once

#include <optional>

#include "access/sticky_package.h"
#include "auth/group_auth.h"
#include "auth/hybrid_auth.h"
#include "trust/validators.h"

namespace vcl::core {

enum class AuthProtocolKind : std::uint8_t { kPseudonym, kGroup, kHybrid };

const char* to_string(AuthProtocolKind p);

struct PipelineConfig {
  crypto::CostModel costs;
  SimTime budget = 100 * kMilliseconds;  // end-to-end deadline per message
  bool require_trust_validation = true;
  double trust_threshold = 0.5;
};

struct PipelineResult {
  bool authenticated = false;
  bool authorized = false;
  bool trusted = false;        // content validation outcome (if run)
  bool accepted = false;       // all enabled stages passed
  SimTime latency = 0.0;       // modeled processing time
  bool within_budget = false;
  const char* rejected_at = "";  // stage name when !accepted
};

// One verifier-side pipeline instance. Stages are pluggable: the
// authenticator is chosen per message (tag + protocol), authorization runs
// against a sticky package, trust validation against the report cluster the
// message belongs to.
class SecurePipeline {
 public:
  explicit SecurePipeline(PipelineConfig config) : config_(config) {}

  struct AuthInput {
    AuthProtocolKind protocol = AuthProtocolKind::kPseudonym;
    const auth::TrustedAuthority* ta = nullptr;       // pseudonym
    const auth::GroupManager* manager = nullptr;      // group / hybrid
    crypto::Bytes payload;
    auth::AuthTag tag;
  };

  struct AuthzInput {
    access::StickyPackage* package = nullptr;  // nullptr = skip stage
    const access::AbeUserKey* key = nullptr;
    access::AttributeSet attrs;
    std::uint64_t accessor = 0;
  };

  struct TrustInput {
    const trust::Validator* validator = nullptr;  // nullptr = skip stage
    const trust::EventCluster* cluster = nullptr;
  };

  [[nodiscard]] PipelineResult process(const AuthInput& auth_in,
                                       const AuthzInput& authz_in,
                                       const TrustInput& trust_in,
                                       SimTime now);

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
};

}  // namespace vcl::core
