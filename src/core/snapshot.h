// Topology archive: authority-side snapshots for attacker identification
// (paper §V.A: "the authority should be able to ... recover the snapshot of
// the topology in an area so as to identify the attackers ... the more
// management data recorded, the more possible that the user privacy will be
// violated").
//
// A bounded ring of periodic snapshots (who was where, under which
// credential) supports forensic queries — "which credentials were within R
// of position P around time T?" — while exposing the exact management/
// privacy trade-off: retention and sampling rate determine both forensic
// recall and the volume of location data at risk.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "net/network.h"

namespace vcl::core {

struct SnapshotEntry {
  VehicleId vehicle;        // resolvable only by the authority
  std::uint64_t credential; // what was visible on the air
  geo::Vec2 pos;
};

struct TopologySnapshot {
  SimTime taken_at = 0.0;
  std::vector<SnapshotEntry> entries;
};

struct SnapshotConfig {
  SimTime period = 5.0;
  std::size_t retention = 60;  // snapshots kept (ring buffer)
};

class TopologyArchive {
 public:
  // `credential_of` maps a vehicle to its currently visible credential
  // (pseudonym id etc.); defaults to the raw vehicle id.
  using CredentialFn = std::function<std::uint64_t(VehicleId)>;

  TopologyArchive(net::Network& net, SnapshotConfig config = {},
                  CredentialFn credential_of = {});

  void attach();
  void capture();  // public for tests

  // Forensics: all entries within `radius` of `where` in snapshots taken in
  // [t0, t1].
  [[nodiscard]] std::vector<SnapshotEntry> query(geo::Vec2 where,
                                                 double radius, SimTime t0,
                                                 SimTime t1) const;

  [[nodiscard]] std::size_t snapshot_count() const {
    return snapshots_.size();
  }
  // Total location records held — the privacy-exposure metric.
  [[nodiscard]] std::size_t records_held() const;
  [[nodiscard]] SimTime oldest() const {
    return snapshots_.empty() ? 0.0 : snapshots_.front().taken_at;
  }

 private:
  net::Network& net_;
  SnapshotConfig config_;
  CredentialFn credential_of_;
  std::deque<TopologySnapshot> snapshots_;
};

}  // namespace vcl::core
