// Deterministic random number generation.
//
// Every stochastic component draws from an `Rng` seeded from the scenario
// seed, so a scenario replays bit-identically. `fork()` derives independent
// child streams (e.g. one per vehicle) without correlated sequences.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace vcl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  double normal(double mean, double stddev);
  double exponential(double rate);
  bool bernoulli(double p);
  int poisson(double mean);

  // Picks a uniformly random element index of a container of size n (n > 0).
  std::size_t index(std::size_t n);

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace vcl
