// Aligned plain-text table printer for experiment harnesses.
//
// Every bench binary reports its results through this class so the output
// format is uniform and grep-friendly:
//
//   Table t("E6: routing", {"protocol", "density", "delivery", "latency_ms"});
//   t.add_row({"mozo", "40", "0.93", "81.2"});
//   t.print(std::cout);
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vcl {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  // Structured access for machine-readable exporters (obs::BenchReporter).
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& cells() const {
    return rows_;
  }

  // Formats a double with a fixed number of decimals (helper for callers).
  static std::string num(double v, int decimals = 3);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vcl
