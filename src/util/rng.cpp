#include "util/rng.h"

#include <algorithm>

namespace vcl {
namespace {

// SplitMix64 finalizer: decorrelates derived seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::uint64_t salt) const {
  return Rng(mix(seed_ ^ mix(salt)));
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<int>(mean)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace vcl
