#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace vcl {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace vcl
