// Strong identifier types used across the framework.
//
// A plain `uint64_t` invites accidental mixing of vehicle ids, cluster ids
// and message ids; the `Id<Tag>` wrapper makes each id family a distinct
// type while remaining a trivially copyable value.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace vcl {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

 private:
  std::uint64_t value_ = kInvalid;
};

struct VehicleTag {};
struct NodeTag {};     // road-network intersection
struct LinkTag {};     // road-network directed link
struct MessageTag {};
struct ClusterTag {};
struct CloudTag {};
struct TaskTag {};
struct FileTag {};
struct EventTag {};    // physical event observed by vehicles (trust module)
struct RsuTag {};

using VehicleId = Id<VehicleTag>;
using NodeId = Id<NodeTag>;
using LinkId = Id<LinkTag>;
using MessageId = Id<MessageTag>;
using ClusterId = Id<ClusterTag>;
using CloudId = Id<CloudTag>;
using TaskId = Id<TaskTag>;
using FileId = Id<FileTag>;
using EventId = Id<EventTag>;
using RsuId = Id<RsuTag>;

}  // namespace vcl

namespace std {
template <typename Tag>
struct hash<vcl::Id<Tag>> {
  size_t operator()(vcl::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
