// Statistics accumulators used by experiments and runtime metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vcl {

// Streaming accumulator (Welford) with optional sample retention for
// percentile queries. Retention is on by default; experiments that stream
// millions of values can disable it.
class Accumulator {
 public:
  explicit Accumulator(bool keep_samples = true)
      : keep_samples_(keep_samples) {}

  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  // Percentile in [0, 100] via linear interpolation over retained samples.
  // Contract: requires construction with keep_samples=true; when retention
  // is disabled the query is unanswerable and returns quiet NaN — loudly
  // unusable downstream (tables print "nan", JSON emits null) instead of a
  // silent 0.0 that reads like a real latency. Retaining-but-empty returns
  // 0.0 ("no data yet"). It never interpolates from moments; callers that
  // stream without retention should use QuantileSketch instead.
  [[nodiscard]] double percentile(double p) const;

  // Folds `other` into this accumulator (Chan's parallel Welford update):
  // count/sum/min/max/mean/variance become those of the union. Samples are
  // appended only when BOTH sides retain them; merging a non-retaining
  // accumulator into a retaining one leaves percentile() covering only the
  // locally retained values. Used by the metrics sampler to combine
  // per-component accumulators.
  void merge(const Accumulator& other);

 private:
  bool keep_samples_;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Two-sided 95% Student-t critical value for `df` degrees of freedom
// (exact table through df=30, standard stepdown to the normal 1.960
// asymptote beyond). Used by the experiment engine to turn per-replication
// scatter into confidence intervals; df=0 returns 0 (no interval from one
// observation).
double student_t95(std::size_t df);

// 95% confidence half-width of the mean of `reps`, treating each retained
// observation as one independent replication: t * stddev / sqrt(n). Returns
// 0 when fewer than two observations exist.
double ci95_half_width(const Accumulator& reps);

// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Ratio counter for success/failure style metrics.
class Ratio {
 public:
  void hit() { ++hits_; ++total_; }
  void miss() { ++total_; }
  void add(bool success) { success ? hit() : miss(); }

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double value() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }

 private:
  std::size_t hits_ = 0;
  std::size_t total_ = 0;
};

}  // namespace vcl
