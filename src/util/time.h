// Simulation time.
//
// Time is kept as double seconds. All modules agree on this unit; helper
// constants make call sites read naturally (e.g. `50 * kMilliseconds`).
#pragma once

namespace vcl {

using SimTime = double;  // seconds since simulation start

inline constexpr SimTime kMilliseconds = 1e-3;
inline constexpr SimTime kMicroseconds = 1e-6;
inline constexpr SimTime kSeconds = 1.0;
inline constexpr SimTime kMinutes = 60.0;
inline constexpr SimTime kHours = 3600.0;

}  // namespace vcl
