#include "util/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vcl {

QuantileSketch::QuantileSketch(double relative_error, std::size_t max_buckets)
    : alpha_(relative_error), max_buckets_(std::max<std::size_t>(max_buckets, 2)) {
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch: relative_error must be in (0, 1)");
  }
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

std::int32_t QuantileSketch::index_of(double x) const {
  // ceil(log_gamma(x)): the smallest i with gamma^i >= x.
  return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
}

double QuantileSketch::value_of(std::int32_t index) const {
  // Midpoint (harmonic) representative: within alpha of every bucket value.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::observe_moments(double x, std::uint64_t n) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += n;
  sum_ += x * static_cast<double>(n);
}

void QuantileSketch::add_n(double x, std::uint64_t n) {
  if (n == 0) return;
  if (!(x >= kMinTrackable)) {  // zero, negatives and NaN all land here
    const double clamped = std::isnan(x) ? 0.0 : std::max(x, 0.0);
    observe_moments(clamped, n);
    zero_count_ += n;
    return;
  }
  observe_moments(x, n);
  buckets_[index_of(x)] += n;
  collapse_if_needed();
}

void QuantileSketch::add_bucket(std::int32_t index, std::uint64_t count) {
  if (count == 0) return;
  observe_moments(value_of(index), count);
  buckets_[index] += count;
  collapse_if_needed();
}

void QuantileSketch::add_zero(std::uint64_t count) {
  if (count == 0) return;
  observe_moments(0.0, count);
  zero_count_ += count;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.alpha_ != alpha_ || other.max_buckets_ != max_buckets_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: incompatible sketch layout "
        "(relative_error/max_buckets differ)");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  collapse_if_needed();
}

void QuantileSketch::collapse_if_needed() {
  // Collapse the LOWEST buckets into the cutoff bucket: tail quantiles stay
  // alpha-accurate, only the low extreme coarsens. std::map iteration is
  // index-ascending, so the survivor set is a deterministic function of the
  // bucket multiset alone.
  while (buckets_.size() > max_buckets_) {
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  // Target rank over the merged counts; integer arithmetic keeps the walk
  // bit-identical however the counts were assembled.
  const auto rank = static_cast<std::uint64_t>(
      clamped_q * static_cast<double>(count_ - 1));
  double estimate = 0.0;
  if (rank < zero_count_) {
    estimate = 0.0;
  } else {
    std::uint64_t cumulative = zero_count_;
    estimate = min_;  // overwritten unless the walk falls through (rounding)
    for (const auto& [index, n] : buckets_) {
      cumulative += n;
      if (cumulative > rank) {
        estimate = value_of(index);
        break;
      }
    }
  }
  return std::clamp(estimate, min_, max_);
}

std::vector<QuantileSketch::Bucket> QuantileSketch::buckets() const {
  std::vector<Bucket> out;
  out.reserve(buckets_.size());
  for (const auto& [index, n] : buckets_) out.push_back({index, n});
  return out;
}

}  // namespace vcl
