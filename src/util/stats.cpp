#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace vcl {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (keep_samples_) {
    samples_.push_back(x);
    sorted_ = false;
  }
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
    mean_ = other.mean_;
    m2_ = other.m2_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (keep_samples_ && other.keep_samples_) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
}

double Accumulator::percentile(double p) const {
  // Documented contract: NaN without retention — never a moment estimate,
  // never a silent zero masquerading as a measured latency.
  if (!keep_samples_) return std::numeric_limits<double>::quiet_NaN();
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double student_t95(std::size_t df) {
  // t_{0.975, df}: standard two-sided 95% table.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double ci95_half_width(const Accumulator& reps) {
  if (reps.count() < 2) return 0.0;
  return student_t95(reps.count() - 1) * reps.stddev() /
         std::sqrt(static_cast<double>(reps.count()));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  // Clamp in double space BEFORE the integer cast: casting a double outside
  // the integer's range is undefined (on x86 a huge positive value wraps to
  // the most-negative integer and would land in the first bucket).
  const double pos = std::clamp(
      (x - lo_) / span * static_cast<double>(counts_.size()), 0.0,
      static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << "): "
       << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace vcl
