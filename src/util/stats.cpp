#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vcl {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (keep_samples_) {
    samples_.push_back(x);
    sorted_ = false;
  }
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << "): "
       << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace vcl
