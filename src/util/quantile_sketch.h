// Mergeable fixed-memory streaming quantile sketch (DDSketch-style).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace vcl {

// Relative-error quantile sketch over non-negative values (latencies).
//
// Values map to logarithmic buckets index = ceil(log_gamma(x)) with
// gamma = (1 + alpha) / (1 - alpha); the bucket midpoint estimate
// 2 * gamma^i / (gamma + 1) is within `alpha` relative error of any value
// in the bucket, so quantile() is alpha-relative-accurate for every rank.
// Memory is bounded: at most `max_buckets` buckets are kept and the lowest
// buckets collapse together when the bound is hit (tail quantiles — the
// ones we care about — keep full accuracy; only the low extreme degrades).
//
// Merging adds bucket counts, which are integers, so merge() commutes and
// associates exactly while every operand stays within the collapse bound:
// quantiles of a fold are bit-identical for ANY fold order. Floating-point
// `sum()` is the one order-sensitive field, which is why exp::Replicator
// still folds replication sketches in fixed rep order (like Accumulator).
//
// Values below kMinTrackable (including zero and any negatives) count into
// a dedicated zero bucket and are reported as 0.0 by quantile().
class QuantileSketch {
 public:
  static constexpr double kMinTrackable = 1e-9;

  explicit QuantileSketch(double relative_error = 0.01,
                          std::size_t max_buckets = 2048);

  void add(double x) { add_n(x, 1); }
  void add_n(double x, std::uint64_t n);

  // Folds `other` into this sketch (bucket-count addition). Both sides must
  // share relative_error and max_buckets; mismatched layouts throw
  // std::invalid_argument — merging incompatible buckets would silently
  // corrupt every quantile.
  void merge(const QuantileSketch& other);

  // Quantile estimate for rank q in [0, 1]; NaN when empty. The estimate is
  // clamped into [min(), max()], preserving the relative-error bound while
  // pinning q=0 / q=1 to the exact extremes.
  [[nodiscard]] double quantile(double q) const;
  // Percentile in [0, 100]; mirrors Accumulator::percentile's scale.
  [[nodiscard]] double percentile(double p) const {
    return quantile(p / 100.0);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double relative_error() const { return alpha_; }
  [[nodiscard]] std::size_t max_buckets() const { return max_buckets_; }
  // Live bucket count (excludes the zero bucket): the memory footprint,
  // constant in sample count and ≤ max_buckets by construction.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t zero_count() const { return zero_count_; }

  // Snapshot access for serialization (obs::write_telemetry) and
  // reconstruction (tools/vcl_report); buckets come back sorted by index.
  struct Bucket {
    std::int32_t index;
    std::uint64_t count;
  };
  [[nodiscard]] std::vector<Bucket> buckets() const;
  // Restores one serialized bucket: adds `count` observations at the
  // bucket's representative value (exactly reproducing quantile state; the
  // moment fields min/max/sum are restored to bucket-boundary accuracy).
  void add_bucket(std::int32_t index, std::uint64_t count);
  void add_zero(std::uint64_t count);

 private:
  [[nodiscard]] std::int32_t index_of(double x) const;
  [[nodiscard]] double value_of(std::int32_t index) const;
  void observe_moments(double x, std::uint64_t n);
  void collapse_if_needed();

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::size_t max_buckets_;
  std::map<std::int32_t, std::uint64_t> buckets_;  // ordered: walk ascending
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vcl
