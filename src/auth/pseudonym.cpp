#include "auth/pseudonym.h"

namespace vcl::auth {

PseudonymAuth::PseudonymAuth(TrustedAuthority& ta, VehicleId v,
                             std::size_t pool_size, SimTime rotation_period)
    : ta_(ta),
      drbg_(0x505345ULL ^ v.value() /* per-vehicle stream */),
      pool_(ta.issue_pseudonyms(v, pool_size)),
      rotation_period_(rotation_period) {}

std::uint64_t PseudonymAuth::current_pseudo_id() const {
  return pool_.empty() ? 0 : pool_[current_].cert.pseudo_id;
}

std::size_t PseudonymAuth::pool_remaining() const {
  return pool_.empty() ? 0 : pool_.size() - current_;
}

std::optional<AuthTag> PseudonymAuth::sign(const crypto::Bytes& payload,
                                           SimTime now,
                                           crypto::OpCounts& ops) {
  if (pool_.empty()) return std::nullopt;
  if (now - last_rotation_ >= rotation_period_ && current_ + 1 < pool_.size()) {
    ++current_;
    last_rotation_ = now;
  }
  const PseudonymCredential& cred = pool_[current_];
  const crypto::Schnorr schnorr(ta_.group());
  AuthTag tag;
  tag.credential_id = cred.cert.pseudo_id;
  tag.ephemeral_pub = cred.cert.pub;
  tag.cert_sig = cred.cert.ta_sig;
  tag.msg_sig = schnorr.sign(cred.secret, payload, drbg_);
  // Wire: pseudo id (8) + pub (33-equivalent) + 2 signatures (64 each).
  tag.wire_bytes = 8 + 33 + 2 * crypto::SchnorrSignature::kWireSize;
  ops.sign += 1;
  return tag;
}

VerifyOutcome PseudonymAuth::verify(const TrustedAuthority& ta,
                                    const crypto::Bytes& payload,
                                    const AuthTag& tag) {
  VerifyOutcome out;
  // 1. TA certificate on the pseudonym key.
  out.ops.verify += 1;
  const PseudonymCert cert{tag.credential_id, tag.ephemeral_pub, tag.cert_sig};
  if (!ta.check_cert(cert)) {
    out.reason = "bad certificate";
    return out;
  }
  // 2. CRL lookup (hash-cost accounted; exact probes only on Bloom hits).
  out.ops.hash += 1;
  if (ta.crl().is_revoked(tag.credential_id)) {
    out.reason = "revoked";
    return out;
  }
  // 3. Message signature under the pseudonym key.
  out.ops.verify += 1;
  const crypto::Schnorr schnorr(ta.group());
  if (!schnorr.verify(tag.ephemeral_pub, payload, tag.msg_sig)) {
    out.reason = "bad signature";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace vcl::auth
