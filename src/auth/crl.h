// Certificate revocation list with a Bloom-filter fast path.
//
// Pseudonym-based protocols force every verifier to check the sender's
// certificate against the CRL; with large pseudonym pools the CRL grows as
// (revoked vehicles x pool size), which is exactly the overhead Fig. 5 holds
// against pseudonym schemes. The Bloom filter gives the common "not revoked"
// answer in O(k) hashes; positives fall back to the exact set.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace vcl::auth {

class Crl {
 public:
  // `expected_entries` sizes the Bloom filter (10 bits/entry, ~1% FP).
  explicit Crl(std::size_t expected_entries = 4096);

  void revoke(std::uint64_t credential_id);
  [[nodiscard]] bool is_revoked(std::uint64_t credential_id) const;
  [[nodiscard]] std::size_t size() const { return exact_.size(); }

  // Exact-set membership probes performed (Bloom misses skip these);
  // exposed so benches can show the Bloom filter's effect.
  [[nodiscard]] std::size_t exact_probes() const { return exact_probes_; }
  [[nodiscard]] std::size_t bloom_checks() const { return bloom_checks_; }

 private:
  [[nodiscard]] std::uint64_t bloom_hash(std::uint64_t id, int k) const;

  std::vector<bool> bits_;
  std::unordered_set<std::uint64_t> exact_;
  mutable std::size_t exact_probes_ = 0;
  mutable std::size_t bloom_checks_ = 0;
};

}  // namespace vcl::auth
