#include "auth/hybrid_auth.h"

namespace vcl::auth {

HybridAuth::HybridAuth(GroupManager& manager, VehicleId v)
    : manager_(manager),
      vehicle_(v),
      drbg_(0x485942ULL ^ (v.value() * 0x9e3779b9ULL)) {}

bool HybridAuth::rotate(crypto::OpCounts& ops) {
  const crypto::Schnorr schnorr(crypto::default_group());
  crypto::SchnorrKeyPair fresh = schnorr.keygen(drbg_);
  const auto cert = manager_.certify_member_key(vehicle_, fresh.pub);
  if (!cert) return false;
  key_ = fresh;
  cert_ = *cert;
  cert_epoch_ = manager_.epoch();
  ops.sign += 1;  // manager-side certification cost
  return true;
}

std::optional<AuthTag> HybridAuth::sign(const crypto::Bytes& payload,
                                        crypto::OpCounts& ops) {
  if (cert_epoch_ != manager_.epoch()) {
    if (!rotate(ops)) return std::nullopt;
  }
  const crypto::Schnorr schnorr(crypto::default_group());
  AuthTag tag;
  tag.credential_id = manager_.group_id();
  tag.epoch = cert_epoch_;
  tag.ephemeral_pub = key_.pub;
  tag.cert_sig = cert_;
  tag.msg_sig = schnorr.sign(key_.secret, payload, drbg_);
  tag.wire_bytes = 8 + 8 + 33 + 2 * crypto::SchnorrSignature::kWireSize;
  ops.sign += 1;
  return tag;
}

VerifyOutcome HybridAuth::verify(const GroupManager& manager,
                                 const crypto::Bytes& payload,
                                 const AuthTag& tag) {
  VerifyOutcome out;
  out.ops.verify += 1;
  if (!manager.check_member_cert(tag.ephemeral_pub, tag.epoch, tag.cert_sig)) {
    out.reason = "bad or stale certificate";
    return out;
  }
  out.ops.verify += 1;
  const crypto::Schnorr schnorr(crypto::default_group());
  if (!schnorr.verify(tag.ephemeral_pub, payload, tag.msg_sig)) {
    out.reason = "bad signature";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace vcl::auth
