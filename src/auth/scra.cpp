#include "auth/scra.h"

namespace vcl::auth {

ScraSigner::ScraSigner(const crypto::SchnorrGroup& group,
                       std::uint64_t secret, std::uint64_t seed)
    : group_(group),
      secret_(secret),
      pub_(group.pow_g(secret)),
      drbg_(seed ^ 0x53435241ULL /* "SCRA" */) {}

void ScraSigner::precompute(std::size_t n, crypto::OpCounts& ops) {
  for (std::size_t i = 0; i < n; ++i) {
    Precomputed p;
    p.k = drbg_.next_scalar(group_.q());
    p.r = group_.pow_g(p.k);
    table_.push_back(p);
  }
  ops.sign += n;  // the exponentiation cost, paid offline
}

std::optional<crypto::SchnorrSignature> ScraSigner::sign(
    const crypto::Bytes& msg, crypto::OpCounts& ops) {
  if (table_.empty()) return std::nullopt;
  const Precomputed p = table_.front();
  table_.pop_front();
  // Challenge exactly as crypto::Schnorr computes it, so standard
  // verification accepts the signature.
  crypto::Bytes data;
  crypto::append_u64(data, p.r);
  crypto::append_u64(data, pub_);
  data.insert(data.end(), msg.begin(), msg.end());
  const std::uint64_t e = group_.hash_to_scalar(data);
  crypto::SchnorrSignature sig;
  sig.r = p.r;
  sig.s = group_.scalar_add(p.k, group_.scalar_mul(e, secret_));
  ops.hash += 1;  // online cost: one hash + scalar arithmetic
  return sig;
}

}  // namespace vcl::auth
