// Pseudonym-based authentication (paper §IV.B.1, first family).
//
// Each vehicle holds a pre-issued pool of TA-certified pseudonym key pairs
// and rotates through them. Verification = TA-cert check + CRL lookup +
// message-signature check (two signature verifications per message — the
// "high message authentication overhead" of Fig. 5). Privacy: unlinkable
// across rotations to outsiders, but the TA can always open, and reusing a
// pseudonym between rotations is linkable (the tracking adversary in
// src/attack exploits exactly this window).
#pragma once

#include <optional>

#include "auth/authority.h"
#include "crypto/cost_model.h"
#include "util/time.h"

namespace vcl::auth {

// Wire format common to all three protocol families; unused fields are
// zero. `wire_bytes` models the production-equivalent message overhead.
struct AuthTag {
  std::uint64_t credential_id = 0;  // pseudonym id / group id
  std::uint64_t epoch = 0;          // group key epoch (group/hybrid)
  std::uint64_t ephemeral_pub = 0;
  crypto::SchnorrSignature msg_sig;
  crypto::SchnorrSignature cert_sig;
  crypto::ElGamalCiphertext opening;  // escrowed identity (group/hybrid)
  crypto::Digest group_mac{};
  std::size_t wire_bytes = 0;
};

struct VerifyOutcome {
  bool ok = false;
  const char* reason = "";
  crypto::OpCounts ops;  // what the verifier spent
};

class PseudonymAuth {
 public:
  // Draws `pool_size` credentials from the TA for vehicle `v`.
  PseudonymAuth(TrustedAuthority& ta, VehicleId v, std::size_t pool_size,
                SimTime rotation_period = 60.0);

  [[nodiscard]] static const char* name() { return "pseudonym"; }

  // Signs a payload at simulation time `now`, rotating pseudonyms on
  // schedule. Returns nullopt when the pool is exhausted or empty.
  std::optional<AuthTag> sign(const crypto::Bytes& payload, SimTime now,
                              crypto::OpCounts& ops);

  // Stateless verification against the TA's public material.
  static VerifyOutcome verify(const TrustedAuthority& ta,
                              const crypto::Bytes& payload, const AuthTag& tag);

  [[nodiscard]] std::uint64_t current_pseudo_id() const;
  [[nodiscard]] std::size_t pool_remaining() const;

 private:
  TrustedAuthority& ta_;
  crypto::Drbg drbg_;
  std::vector<PseudonymCredential> pool_;
  std::size_t current_ = 0;
  SimTime rotation_period_;
  SimTime last_rotation_ = 0.0;
};

}  // namespace vcl::auth
