#include "auth/authority.h"

namespace vcl::auth {

crypto::Bytes cert_body(std::uint64_t pseudo_id, std::uint64_t pub) {
  crypto::Bytes b;
  crypto::append_u64(b, pseudo_id);
  crypto::append_u64(b, pub);
  return b;
}

TrustedAuthority::TrustedAuthority(std::uint64_t seed,
                                   std::size_t opening_threshold,
                                   std::size_t opening_authorities)
    : group_(crypto::default_group()),
      drbg_(seed ^ 0x5441ULL /* "TA" */),
      schnorr_(group_),
      keypair_(schnorr_.keygen(drbg_)),
      threshold_(opening_threshold) {
  escrow_secret_ = drbg_.next_scalar(group_.q());
  const crypto::Shamir shamir(group_.q());
  escrow_shares_ =
      shamir.split(escrow_secret_, opening_threshold, opening_authorities,
                   drbg_);
}

void TrustedAuthority::register_vehicle(VehicleId v) {
  registered_[v.value()] = true;
}

bool TrustedAuthority::is_registered(VehicleId v) const {
  auto it = registered_.find(v.value());
  return it != registered_.end() && it->second;
}

crypto::SchnorrSignature TrustedAuthority::certify(std::uint64_t pseudo_id,
                                                   std::uint64_t pub) {
  return schnorr_.sign(keypair_.secret, cert_body(pseudo_id, pub), drbg_);
}

bool TrustedAuthority::check_cert(const PseudonymCert& cert) const {
  return schnorr_.verify(keypair_.pub, cert_body(cert.pseudo_id, cert.pub),
                         cert.ta_sig);
}

std::vector<PseudonymCredential> TrustedAuthority::issue_pseudonyms(
    VehicleId v, std::size_t n) {
  std::vector<PseudonymCredential> out;
  if (!is_registered(v)) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PseudonymCredential cred;
    cred.secret = drbg_.next_scalar(group_.q());
    cred.cert.pub = group_.pow_g(cred.secret);
    cred.cert.pseudo_id = next_pseudo_id_++;
    cred.cert.ta_sig = certify(cred.cert.pseudo_id, cred.cert.pub);
    escrow_map_[cred.cert.pseudo_id] = v;
    issued_[v.value()].push_back(cred.cert.pseudo_id);
    out.push_back(cred);
  }
  return out;
}

void TrustedAuthority::revoke_vehicle(VehicleId v) {
  auto it = issued_.find(v.value());
  if (it == issued_.end()) return;
  for (const std::uint64_t pid : it->second) crl_.revoke(pid);
  registered_[v.value()] = false;
}

crypto::Share TrustedAuthority::escrow_share(std::size_t i) const {
  return escrow_shares_.at(i);
}

std::optional<VehicleId> TrustedAuthority::open(
    std::uint64_t pseudo_id, const std::vector<crypto::Share>& shares) const {
  if (shares.size() < threshold_) return std::nullopt;
  const crypto::Shamir shamir(group_.q());
  if (shamir.reconstruct(shares) != escrow_secret_) return std::nullopt;
  auto it = escrow_map_.find(pseudo_id);
  if (it == escrow_map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vcl::auth
