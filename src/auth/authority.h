// Trusted authority (TA): vehicle registration, pseudonym issuance,
// revocation and threshold-escrowed identity opening.
//
// The paper's central tension (§III.B): vehicles must be *accountable*
// (liability requires recovering real identities) yet *private* (no party
// should track them casually). The TA resolves it the way the surveyed
// schemes do — pseudonyms unlinkable to outsiders, with the
// pseudonym-to-identity map escrowed so that `open()` requires a quorum of
// authority shares (Shamir threshold) rather than one curious insider.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "auth/crl.h"
#include "crypto/elgamal.h"
#include "crypto/schnorr.h"
#include "crypto/shamir.h"
#include "util/ids.h"

namespace vcl::auth {

struct PseudonymCert {
  std::uint64_t pseudo_id = 0;
  std::uint64_t pub = 0;                 // pseudonym public key
  crypto::SchnorrSignature ta_sig;       // TA signature over (pseudo_id, pub)
};

// A vehicle's private view of one pseudonym.
struct PseudonymCredential {
  PseudonymCert cert;
  std::uint64_t secret = 0;
};

class TrustedAuthority {
 public:
  // `opening_threshold` of `opening_authorities` shares are needed to
  // de-anonymize a credential.
  TrustedAuthority(std::uint64_t seed, std::size_t opening_threshold = 2,
                   std::size_t opening_authorities = 3);

  [[nodiscard]] std::uint64_t public_key() const { return keypair_.pub; }
  [[nodiscard]] const crypto::SchnorrGroup& group() const { return group_; }

  // --- registration & pseudonyms --------------------------------------------
  void register_vehicle(VehicleId v);
  [[nodiscard]] bool is_registered(VehicleId v) const;

  // Issues `n` pseudonym credentials to a registered vehicle; records the
  // pseudo_id -> vehicle escrow mapping.
  std::vector<PseudonymCredential> issue_pseudonyms(VehicleId v,
                                                    std::size_t n);

  // Signs (pseudo_id, pub) — exposed so group managers can reuse the TA's
  // certificate format in the hybrid protocol.
  [[nodiscard]] crypto::SchnorrSignature certify(std::uint64_t pseudo_id,
                                                 std::uint64_t pub);
  [[nodiscard]] bool check_cert(const PseudonymCert& cert) const;

  // --- revocation -------------------------------------------------------------
  // Revokes every pseudonym ever issued to the vehicle.
  void revoke_vehicle(VehicleId v);
  [[nodiscard]] const Crl& crl() const { return crl_; }
  [[nodiscard]] Crl& crl() { return crl_; }

  // --- identity opening (threshold escrow) ------------------------------------
  // Recovers the real identity behind a pseudonym using `shares` of the
  // escrow key (>= threshold distinct authority shares required).
  [[nodiscard]] std::optional<VehicleId> open(
      std::uint64_t pseudo_id, const std::vector<crypto::Share>& shares) const;
  // Authority share `i` (0-based) for quorum assembly.
  [[nodiscard]] crypto::Share escrow_share(std::size_t i) const;
  [[nodiscard]] std::size_t opening_threshold() const { return threshold_; }

  crypto::Drbg& drbg() { return drbg_; }

 private:
  const crypto::SchnorrGroup& group_;
  crypto::Drbg drbg_;
  crypto::Schnorr schnorr_;
  crypto::SchnorrKeyPair keypair_;
  Crl crl_;

  // Escrow: pseudo_id -> vehicle, sealed under an escrow secret split among
  // the authorities. (The map itself is stored encrypted-at-rest in a real
  // deployment; here the secrecy is enforced by requiring a share quorum in
  // the API.)
  std::uint64_t escrow_secret_;
  std::size_t threshold_;
  std::vector<crypto::Share> escrow_shares_;
  std::unordered_map<std::uint64_t, VehicleId> escrow_map_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> issued_;
  std::unordered_map<std::uint64_t, bool> registered_;
  std::uint64_t next_pseudo_id_ = 1;
};

// Serializes (pseudo_id, pub) for certificate signing.
crypto::Bytes cert_body(std::uint64_t pseudo_id, std::uint64_t pub);

}  // namespace vcl::auth
