#include "auth/privacy_metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace vcl::auth {

double id_linkability(const std::vector<AirObservation>& observations) {
  // Group observations by ground-truth vehicle, in time order.
  std::map<std::uint64_t, std::vector<const AirObservation*>> by_vehicle;
  for (const AirObservation& o : observations) {
    by_vehicle[o.truth.value()].push_back(&o);
  }
  std::size_t pairs = 0;
  std::size_t linkable = 0;
  for (auto& [vid, obs] : by_vehicle) {
    std::sort(obs.begin(), obs.end(),
              [](const AirObservation* a, const AirObservation* b) {
                return a->time < b->time;
              });
    for (std::size_t i = 1; i < obs.size(); ++i) {
      ++pairs;
      if (obs[i]->visible_id != 0 &&
          obs[i]->visible_id == obs[i - 1]->visible_id) {
        ++linkable;
      }
    }
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(linkable) /
                          static_cast<double>(pairs);
}

double mean_anonymity_set(const std::vector<AirObservation>& observations,
                          std::size_t group_size) {
  if (observations.empty()) return 0.0;
  std::map<std::uint64_t, std::set<std::uint64_t>> vehicles_per_id;
  for (const AirObservation& o : observations) {
    if (o.visible_id != 0) {
      vehicles_per_id[o.visible_id].insert(o.truth.value());
    }
  }
  double total = 0.0;
  for (const AirObservation& o : observations) {
    if (o.visible_id == 0) {
      total += static_cast<double>(group_size);
    } else {
      total += static_cast<double>(vehicles_per_id[o.visible_id].size());
    }
  }
  return total / static_cast<double>(observations.size());
}

}  // namespace vcl::auth
