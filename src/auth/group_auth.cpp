#include "auth/group_auth.h"

namespace vcl::auth {
namespace {

crypto::Bytes mac_body(const crypto::Bytes& payload, std::uint64_t group_id,
                       std::uint64_t epoch) {
  crypto::Bytes b;
  crypto::append_u64(b, group_id);
  crypto::append_u64(b, epoch);
  b.insert(b.end(), payload.begin(), payload.end());
  return b;
}

}  // namespace

GroupManager::GroupManager(std::uint64_t group_id, std::uint64_t seed)
    : group_id_(group_id), drbg_(seed ^ 0x47525550ULL /* "GRUP" */) {
  const crypto::Schnorr schnorr(crypto::default_group());
  escrow_key_ = schnorr.keygen(drbg_);
  rotate_key();
}

void GroupManager::rotate_key() {
  group_key_ = drbg_.generate(32);
  ++epoch_;
}

std::uint64_t GroupManager::enroll(VehicleId v) {
  auto it = members_.find(v.value());
  if (it != members_.end()) return it->second;
  const std::uint64_t mid = next_member_id_++;
  members_[v.value()] = mid;
  by_member_id_[mid] = v;
  return mid;
}

bool GroupManager::is_enrolled(VehicleId v) const {
  return members_.count(v.value()) != 0;
}

void GroupManager::revoke(VehicleId v) {
  auto it = members_.find(v.value());
  if (it == members_.end()) return;
  by_member_id_.erase(it->second);
  members_.erase(it);
  hybrid_certs_.clear();  // epoch rotation voids all hybrid certificates
  rotate_key();  // forward security: the leaver cannot MAC in the new epoch
}

namespace {
crypto::Bytes hybrid_cert_body(std::uint64_t group_id, std::uint64_t epoch,
                               std::uint64_t pub) {
  crypto::Bytes b;
  crypto::append_u64(b, group_id);
  crypto::append_u64(b, epoch);
  crypto::append_u64(b, pub);
  return b;
}
}  // namespace

std::optional<crypto::SchnorrSignature> GroupManager::certify_member_key(
    VehicleId v, std::uint64_t pseudo_pub) {
  if (!is_enrolled(v)) return std::nullopt;
  hybrid_certs_[pseudo_pub] = v;
  const crypto::Schnorr schnorr(crypto::default_group());
  return schnorr.sign(escrow_key_.secret,
                      hybrid_cert_body(group_id_, epoch_, pseudo_pub), drbg_);
}

bool GroupManager::check_member_cert(
    std::uint64_t pseudo_pub, std::uint64_t epoch,
    const crypto::SchnorrSignature& sig) const {
  if (epoch != epoch_) return false;  // stale epoch == revoked
  const crypto::Schnorr schnorr(crypto::default_group());
  return schnorr.verify(escrow_key_.pub,
                        hybrid_cert_body(group_id_, epoch, pseudo_pub), sig);
}

std::optional<VehicleId> GroupManager::open_hybrid(
    std::uint64_t pseudo_pub) const {
  auto it = hybrid_certs_.find(pseudo_pub);
  if (it == hybrid_certs_.end()) return std::nullopt;
  return it->second;
}

std::optional<VehicleId> GroupManager::open(const AuthTag& tag) const {
  const crypto::ElGamal eg(crypto::default_group());
  const std::uint64_t m = eg.decrypt(escrow_key_.secret, tag.opening);
  // The member id is encoded as g^mid, recover by bounded search (member
  // counts are small; a real scheme uses a different embedding).
  const auto& grp = crypto::default_group();
  std::uint64_t acc = grp.g();
  for (std::uint64_t mid = 1; mid <= next_member_id_; ++mid) {
    if (acc == m) {
      auto it = by_member_id_.find(mid);
      if (it == by_member_id_.end()) return std::nullopt;
      return it->second;
    }
    acc = grp.mul(acc, grp.g());
  }
  return std::nullopt;
}

std::optional<GroupManager::VerifiableOpening> GroupManager::open_verifiable(
    const AuthTag& tag) {
  const auto vehicle = open(tag);
  if (!vehicle) return std::nullopt;
  const auto& grp = crypto::default_group();
  VerifiableOpening out;
  out.vehicle = *vehicle;
  out.shared = grp.pow(tag.opening.c1, escrow_key_.secret);
  out.member_element = grp.mul(tag.opening.c2, grp.inv(out.shared));
  // Prove log_g(escrow_pub) == log_{c1}(shared) — i.e. the same secret key
  // produced both, which is exactly "decryption was honest".
  const crypto::ChaumPedersen cp(grp);
  out.proof = cp.prove(escrow_key_.secret, tag.opening.c1, out.shared, drbg_);
  return out;
}

bool GroupManager::check_opening(const AuthTag& tag, std::uint64_t escrow_pub,
                                 const VerifiableOpening& opening) {
  const auto& grp = crypto::default_group();
  const crypto::ChaumPedersen cp(grp);
  if (!cp.verify(escrow_pub, tag.opening.c1, opening.shared, opening.proof)) {
    return false;
  }
  // The claimed member element must match the proven decryption.
  return opening.member_element ==
         grp.mul(tag.opening.c2, grp.inv(opening.shared));
}

GroupAuth::GroupAuth(GroupManager& manager, VehicleId v)
    : manager_(manager),
      vehicle_(v),
      drbg_(0x4d454d42ULL ^ v.value() /* per-member stream */) {}

std::optional<AuthTag> GroupAuth::sign(const crypto::Bytes& payload,
                                       crypto::OpCounts& ops) {
  if (!manager_.is_enrolled(vehicle_)) return std::nullopt;
  AuthTag tag;
  tag.credential_id = manager_.group_id();
  tag.group_mac = crypto::hmac_sha256(
      manager_.group_key(),
      mac_body(payload, manager_.group_id(), manager_.epoch()));
  // Escrow the member id for manager-side opening (encoded as g^mid).
  const auto& grp = crypto::default_group();
  const crypto::ElGamal eg(grp);
  // Re-derive member id via enroll (idempotent for enrolled members).
  const std::uint64_t mid = manager_.enroll(vehicle_);
  tag.opening = eg.encrypt(manager_.escrow_pub(), grp.pow_g(mid), drbg_);
  // Wire bytes of a production group signature (BBS04-class): ~192 bytes.
  tag.wire_bytes = 8 + 192;
  ops.group_sign += 1;
  return tag;
}

VerifyOutcome GroupAuth::verify(const GroupManager& manager,
                                const crypto::Bytes& payload,
                                const AuthTag& tag) {
  VerifyOutcome out;
  out.ops.group_verify += 1;
  if (tag.credential_id != manager.group_id()) {
    out.reason = "wrong group";
    return out;
  }
  const crypto::Digest expected = crypto::hmac_sha256(
      manager.group_key(),
      mac_body(payload, manager.group_id(), manager.epoch()));
  if (!crypto::digest_equal(expected, tag.group_mac)) {
    out.reason = "bad group mac (forged, tampered, or stale epoch)";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace vcl::auth
