#include "auth/two_factor.h"

namespace vcl::auth {
namespace {

crypto::Digest bind_driver(const crypto::Digest& biometric_hash,
                           const crypto::Bytes& payload) {
  crypto::Sha256 h;
  h.update(biometric_hash.data(), biometric_hash.size());
  h.update(payload);
  return h.finalize();
}

crypto::Digest mac_message(const crypto::Bytes& system_key,
                           const crypto::Bytes& payload,
                           const crypto::Digest& binding) {
  crypto::Bytes body = payload;
  body.insert(body.end(), binding.begin(), binding.end());
  return crypto::hmac_sha256(system_key, body);
}

}  // namespace

TwoFactorDevice::TwoFactorDevice(crypto::Bytes system_key,
                                 TwoFactorConfig config)
    : system_key_(std::move(system_key)), config_(config) {}

void TwoFactorDevice::enroll_driver(std::uint64_t driver_id,
                                    const crypto::Digest& biometric_hash) {
  drivers_[driver_id] = biometric_hash;
}

std::optional<std::uint64_t> TwoFactorDevice::unlock(
    const crypto::Digest& biometric_sample, SimTime now) {
  for (const auto& [driver, enrolled] : drivers_) {
    if (crypto::digest_equal(enrolled, biometric_sample)) {
      unlocked_driver_ = driver;
      unlocked_at_ = now;
      return driver;
    }
  }
  return std::nullopt;
}

bool TwoFactorDevice::is_unlocked(SimTime now) const {
  return unlocked_driver_.has_value() &&
         now - unlocked_at_ <= config_.unlock_validity;
}

std::optional<TwoFactorMessage> TwoFactorDevice::sign(
    const crypto::Bytes& payload, SimTime now, crypto::OpCounts& ops) {
  if (!is_unlocked(now)) return std::nullopt;
  TwoFactorMessage msg;
  msg.payload = payload;
  msg.driver_binding = bind_driver(drivers_.at(*unlocked_driver_), payload);
  msg.mac = mac_message(system_key_, payload, msg.driver_binding);
  ops.hash += 1;
  ops.hmac += 1;
  return msg;
}

bool TwoFactorDevice::verify(const crypto::Bytes& system_key,
                             const TwoFactorMessage& msg,
                             crypto::OpCounts& ops) {
  ops.hmac += 1;
  return crypto::digest_equal(
      msg.mac, mac_message(system_key, msg.payload, msg.driver_binding));
}

}  // namespace vcl::auth
