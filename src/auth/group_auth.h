// Group-based authentication (paper §IV.B.1, second family; after [34],[15]).
//
// A group manager (cluster head or RSU) enrolls members and distributes a
// shared group MAC key plus the manager's escrow public key. A member tags a
// message with (a) an HMAC under the group key — any member can verify, no
// outsider can forge — and (b) an ElGamal encryption of its member id under
// the manager's key, so only the manager can de-anonymize ("conditional
// privacy ... known to the group coordinators", Fig. 5 / §IV.B).
//
// Simulation-grade honesty note: a shared-MAC scheme lets a malicious
// *insider* frame another member, which real group signatures prevent; the
// CostModel therefore charges full group-signature costs so latency results
// transfer, and the limitation is documented in DESIGN.md.
#pragma once

#include <optional>
#include <unordered_map>

#include "auth/pseudonym.h"
#include "crypto/chaum_pedersen.h"

namespace vcl::auth {

class GroupManager {
 public:
  GroupManager(std::uint64_t group_id, std::uint64_t seed);

  [[nodiscard]] std::uint64_t group_id() const { return group_id_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t escrow_pub() const { return escrow_key_.pub; }
  [[nodiscard]] const crypto::Bytes& group_key() const { return group_key_; }

  // Enrolls a member; returns its member id within the group.
  std::uint64_t enroll(VehicleId v);
  [[nodiscard]] bool is_enrolled(VehicleId v) const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  // Removes a member and rotates the group key (new epoch); remaining
  // members must refresh their key material (re-`enrolled` state persists).
  void revoke(VehicleId v);

  // Opens the escrowed identity in a tag (manager-only capability).
  [[nodiscard]] std::optional<VehicleId> open(const AuthTag& tag) const;

  // Verifiable opening: the result carries a Chaum-Pedersen proof that the
  // ElGamal escrow was decrypted with the manager's real key, so third
  // parties (judges, disputants) can check the de-anonymization was honest
  // rather than fabricated — accountability for the opener (§V.B).
  struct VerifiableOpening {
    VehicleId vehicle;
    std::uint64_t shared = 0;          // c1^sk, the decryption witness
    std::uint64_t member_element = 0;  // recovered g^member_id
    crypto::ChaumPedersenProof proof;
  };
  [[nodiscard]] std::optional<VerifiableOpening> open_verifiable(
      const AuthTag& tag);
  // Anyone can check an opening against the tag and the manager's public
  // escrow key.
  [[nodiscard]] static bool check_opening(const AuthTag& tag,
                                          std::uint64_t escrow_pub,
                                          const VerifiableOpening& opening);

  // --- hybrid-protocol support ------------------------------------------------
  // Certifies a member's self-generated pseudonym key for the current
  // epoch; records pub -> vehicle so the manager retains opening capability.
  // Returns nullopt when the vehicle is not enrolled.
  std::optional<crypto::SchnorrSignature> certify_member_key(
      VehicleId v, std::uint64_t pseudo_pub);
  [[nodiscard]] bool check_member_cert(std::uint64_t pseudo_pub,
                                       std::uint64_t epoch,
                                       const crypto::SchnorrSignature& sig) const;
  // Opens a hybrid pseudonym (current epoch only).
  [[nodiscard]] std::optional<VehicleId> open_hybrid(
      std::uint64_t pseudo_pub) const;

 private:
  void rotate_key();

  std::uint64_t group_id_;
  crypto::Drbg drbg_;
  crypto::Bytes group_key_;
  crypto::SchnorrKeyPair escrow_key_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> members_;  // vehicle -> mid
  std::unordered_map<std::uint64_t, VehicleId> by_member_id_;
  std::unordered_map<std::uint64_t, VehicleId> hybrid_certs_;  // pub -> vehicle
  std::uint64_t next_member_id_ = 1;
};

class GroupAuth {
 public:
  // Member-side handle; the vehicle must already be enrolled.
  GroupAuth(GroupManager& manager, VehicleId v);

  [[nodiscard]] static const char* name() { return "group"; }

  // Tags a payload. Fails when the vehicle is not (or no longer) enrolled.
  std::optional<AuthTag> sign(const crypto::Bytes& payload,
                              crypto::OpCounts& ops);

  // Member-side verification (needs only public group state + group key).
  static VerifyOutcome verify(const GroupManager& manager,
                              const crypto::Bytes& payload,
                              const AuthTag& tag);

 private:
  GroupManager& manager_;
  VehicleId vehicle_;
  crypto::Drbg drbg_;
};

}  // namespace vcl::auth
