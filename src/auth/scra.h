// Structure-free Compact Real-time Authentication (after Yavuz et al.
// [44], SCRA): shift the expensive part of signing OFFLINE.
//
// The idea, realized here with Schnorr algebra: during idle time the signer
// precomputes nonce commitments (k_i, R_i = g^{k_i}); signing a message
// online is then one hash and one scalar multiply-add — no exponentiation —
// which meets the "real-time constraints" of safety messaging. Verification
// is unchanged (the verifier cannot tell a precomputed signature apart).
// The table is consumable: each entry signs exactly one message (nonce
// reuse leaks the key, as in all Schnorr-like schemes), so table size vs
// refill cadence is the operational trade-off E3 quantifies.
#pragma once

#include <deque>

#include "auth/pseudonym.h"

namespace vcl::auth {

class ScraSigner {
 public:
  // Holds the long-term key; the table starts empty.
  ScraSigner(const crypto::SchnorrGroup& group, std::uint64_t secret,
             std::uint64_t seed);

  // Offline phase: precompute `n` nonce commitments. Charged as `n` sign
  // ops in `ops` (the expensive exponentiations happen here).
  void precompute(std::size_t n, crypto::OpCounts& ops);

  // Online phase: sign with a precomputed entry. Charged as ONE HASH op —
  // the whole point of the scheme. Fails when the table is empty.
  std::optional<crypto::SchnorrSignature> sign(const crypto::Bytes& msg,
                                               crypto::OpCounts& ops);

  [[nodiscard]] std::size_t table_remaining() const { return table_.size(); }
  [[nodiscard]] std::uint64_t pub() const { return pub_; }

 private:
  struct Precomputed {
    std::uint64_t k = 0;
    std::uint64_t r = 0;  // g^k
  };

  const crypto::SchnorrGroup& group_;
  std::uint64_t secret_;
  std::uint64_t pub_;
  crypto::Drbg drbg_;
  std::deque<Precomputed> table_;
};

}  // namespace vcl::auth
