// Two-factor lightweight authentication (after Wang et al. [38], 2FLIP):
// something the VEHICLE has (a tamper-proof device holding the system MAC
// key) plus something the DRIVER is (a biometric sample hashed on board).
//
// The TPD only MACs messages while a fresh biometric unlock is present, so
// a stolen OBU cannot speak, and one vehicle cleanly serves multiple
// drivers (each unlocks with their own enrolled biometric). Verification is
// one HMAC under the system key — DoS-resilient cheapness is the scheme's
// selling point. Per 2FLIP, non-repudiation binds the driver hash into the
// MAC'd payload so the authority can attribute messages to the driver, not
// just the vehicle.
#pragma once

#include <optional>
#include <unordered_map>

#include "crypto/cost_model.h"
#include "crypto/hmac.h"
#include "util/time.h"

namespace vcl::auth {

struct TwoFactorMessage {
  crypto::Bytes payload;
  crypto::Digest driver_binding{};  // H(driver biometric hash || payload)
  crypto::Digest mac{};             // HMAC(system_key, payload || binding)
};

struct TwoFactorConfig {
  SimTime unlock_validity = 300.0;  // biometric freshness window
};

class TwoFactorDevice {
 public:
  // `system_key` is the network-wide MAC key provisioned into every TPD.
  TwoFactorDevice(crypto::Bytes system_key, TwoFactorConfig config = {});

  // Enrolls a driver's biometric template (hash thereof) with the device.
  void enroll_driver(std::uint64_t driver_id,
                     const crypto::Digest& biometric_hash);

  // Presents a biometric sample: unlocks the device for the validity
  // window when it matches an enrolled driver. Returns the driver id.
  std::optional<std::uint64_t> unlock(const crypto::Digest& biometric_sample,
                                      SimTime now);
  void lock() { unlocked_driver_.reset(); }
  [[nodiscard]] bool is_unlocked(SimTime now) const;

  // Signs a payload; fails when locked or the unlock expired (the stolen-
  // OBU case). Ops: one hash + one HMAC.
  std::optional<TwoFactorMessage> sign(const crypto::Bytes& payload,
                                       SimTime now, crypto::OpCounts& ops);

  // Any device holding the system key verifies with one HMAC.
  static bool verify(const crypto::Bytes& system_key,
                     const TwoFactorMessage& msg, crypto::OpCounts& ops);

 private:
  crypto::Bytes system_key_;
  TwoFactorConfig config_;
  std::unordered_map<std::uint64_t, crypto::Digest> drivers_;
  std::optional<std::uint64_t> unlocked_driver_;
  SimTime unlocked_at_ = 0.0;
};

}  // namespace vcl::auth
