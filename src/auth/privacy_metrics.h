// Privacy quantification for the authentication protocols (Fig. 5 / E3).
//
// Observations are what an eavesdropper sees on the air: time, position and
// whatever identifier the protocol exposes (pseudonym id, or nothing for
// group-MAC tags). Linkability measures how often consecutive sightings of
// the same physical vehicle carry an identical identifier — the handle a
// tracking adversary needs; anonymity-set size measures how many candidates
// an observed tag could belong to.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec2.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::auth {

struct AirObservation {
  SimTime time = 0.0;
  geo::Vec2 pos;
  // Identifier visible on the wire; 0 means "no per-sender identifier"
  // (group MACs expose only the group id).
  std::uint64_t visible_id = 0;
  // Ground truth (not visible to the adversary; used for scoring only).
  VehicleId truth;
};

// Fraction of consecutive same-vehicle observation pairs whose visible ids
// match and are non-zero. 1.0 = fully linkable, 0.0 = unlinkable.
double id_linkability(const std::vector<AirObservation>& observations);

// Mean anonymity-set size over observations: for an observation with a
// visible id, the number of distinct ground-truth vehicles that ever showed
// that id (pseudonym reuse shrinks it to 1); for id-less observations, the
// candidate count `group_size`.
double mean_anonymity_set(const std::vector<AirObservation>& observations,
                          std::size_t group_size);

}  // namespace vcl::auth
