#include "auth/crl.h"

#include <algorithm>

namespace vcl::auth {
namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Crl::Crl(std::size_t expected_entries)
    : bits_(std::max<std::size_t>(expected_entries * 10, 64), false) {}

std::uint64_t Crl::bloom_hash(std::uint64_t id, int k) const {
  return splitmix(id ^ (0x1234567ULL * static_cast<std::uint64_t>(k + 1))) %
         bits_.size();
}

void Crl::revoke(std::uint64_t credential_id) {
  exact_.insert(credential_id);
  for (int k = 0; k < 7; ++k) bits_[bloom_hash(credential_id, k)] = true;
}

bool Crl::is_revoked(std::uint64_t credential_id) const {
  ++bloom_checks_;
  for (int k = 0; k < 7; ++k) {
    if (!bits_[bloom_hash(credential_id, k)]) return false;
  }
  ++exact_probes_;
  return exact_.count(credential_id) != 0;
}

}  // namespace vcl::auth
