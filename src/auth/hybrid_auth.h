// Hybrid authentication (paper §IV.B.1, third family; after Rajput et
// al. [31]).
//
// Members self-generate short-lived pseudonym keys and have the group
// manager certify them per epoch. Verification is two signature checks —
// but *no CRL lookup*: revocation is an epoch rotation that silently
// invalidates every outstanding certificate, so the verifier-side cost
// neither grows with the revocation history (pseudonym pain) nor leaks
// membership to coordinators beyond the certification moment.
#pragma once

#include "auth/group_auth.h"

namespace vcl::auth {

class HybridAuth {
 public:
  HybridAuth(GroupManager& manager, VehicleId v);

  [[nodiscard]] static const char* name() { return "hybrid"; }

  // Obtains a fresh manager-certified pseudonym for the current epoch.
  // Returns false when the vehicle is not enrolled.
  bool rotate(crypto::OpCounts& ops);

  // Signs a payload; auto-rotates when the held certificate's epoch is
  // stale. Fails when not enrolled.
  std::optional<AuthTag> sign(const crypto::Bytes& payload,
                              crypto::OpCounts& ops);

  static VerifyOutcome verify(const GroupManager& manager,
                              const crypto::Bytes& payload,
                              const AuthTag& tag);

  [[nodiscard]] std::uint64_t current_pub() const { return key_.pub; }

 private:
  GroupManager& manager_;
  VehicleId vehicle_;
  crypto::Drbg drbg_;
  crypto::SchnorrKeyPair key_{};
  crypto::SchnorrSignature cert_{};
  std::uint64_t cert_epoch_ = 0;  // 0 = no certificate yet
};

}  // namespace vcl::auth
