#include "access/sticky_package.h"

namespace vcl::access {

StickyPackage::StickyPackage(const AbeAuthority& authority,
                             const crypto::Bytes& data, Policy policy,
                             const crypto::Bytes& owner_key,
                             std::uint64_t object_id, crypto::Drbg& drbg,
                             crypto::OpCounts& ops)
    : object_id_(object_id),
      sealed_(authority.seal(data, policy, drbg, ops)),
      policy_text_(policy.to_string()) {
  envelope_tag_ = envelope_mac(owner_key);
  ops.hmac += 1;
}

crypto::Digest StickyPackage::envelope_mac(
    const crypto::Bytes& owner_key) const {
  crypto::Bytes b;
  crypto::append_u64(b, object_id_);
  b.insert(b.end(), policy_text_.begin(), policy_text_.end());
  crypto::append_u64(b, sealed_.header.c0);
  // Bind the DEM tag so body swaps are also caught at the envelope level.
  b.insert(b.end(), sealed_.tag.begin(), sealed_.tag.end());
  return crypto::hmac_sha256(owner_key, b);
}

bool StickyPackage::verify_envelope(const crypto::Bytes& owner_key) const {
  return crypto::digest_equal(envelope_tag_, envelope_mac(owner_key));
}

std::optional<crypto::Bytes> StickyPackage::access(const AbeUserKey& key,
                                                   const AttributeSet& attrs,
                                                   std::uint64_t accessor,
                                                   SimTime now,
                                                   crypto::OpCounts& ops) {
  auto plain = AbeAuthority::open(sealed_, key, attrs, ops);
  AuditRecord rec;
  rec.time = now;
  rec.accessor = accessor;
  rec.object = object_id_;
  rec.action = "read";
  rec.granted = plain.has_value();
  log_.append(rec);
  return plain;
}

}  // namespace vcl::access
