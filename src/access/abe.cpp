#include "access/abe.h"

#include <functional>

#include "crypto/modmath.h"
#include "crypto/shamir.h"

namespace vcl::access {

AbeAuthority::AbeAuthority(std::uint64_t seed)
    : group_(crypto::default_group()), master_seed_(seed) {
  crypto::Drbg drbg(seed ^ 0x414245ULL /* "ABE" */);
  y_ = drbg.next_scalar(group_.q());
  big_y_ = group_.pow_g(y_);
}

std::uint64_t AbeAuthority::attr_secret(const Attribute& a) const {
  crypto::Bytes b;
  crypto::append_u64(b, master_seed_);
  b.insert(b.end(), a.begin(), a.end());
  return group_.hash_to_scalar(b);
}

AbeUserKey AbeAuthority::keygen(const AttributeSet& attrs) const {
  AbeUserKey key;
  for (const Attribute& a : attrs.all()) {
    const std::uint64_t t = attr_secret(a);
    key.components[a] = group_.scalar_mul(y_, group_.scalar_inv(t));
  }
  return key;
}

AbeCiphertext AbeAuthority::encrypt(std::uint64_t m, const Policy& policy,
                                    crypto::Drbg& drbg,
                                    crypto::OpCounts& ops) const {
  AbeCiphertext ct(policy.clone());
  const std::uint64_t s = drbg.next_scalar(group_.q());
  ct.c0 = group_.mul(m % group_.p(), group_.pow(big_y_, s));
  ct.leaf_components.resize(policy.leaf_count());

  const crypto::Shamir shamir(group_.q());
  // Recursively share `secret` down the tree.
  std::function<void(const PolicyNode&, std::uint64_t)> share =
      [&](const PolicyNode& node, std::uint64_t secret) {
        switch (node.kind) {
          case GateKind::kLeaf: {
            const std::uint64_t t = attr_secret(node.attribute);
            ct.leaf_components[node.leaf_id] = {
                node.attribute, group_.pow_g(group_.scalar_mul(t, secret))};
            ops.abe_encrypt_leaves += 1;
            return;
          }
          case GateKind::kOr:
            for (const auto& c : node.children) share(*c, secret);
            return;
          case GateKind::kAnd: {
            const auto shares = shamir.split(secret, node.children.size(),
                                             node.children.size(), drbg);
            for (std::size_t i = 0; i < node.children.size(); ++i) {
              share(*node.children[i], shares[i].y);
            }
            return;
          }
          case GateKind::kThreshold: {
            const auto shares =
                shamir.split(secret, node.threshold, node.children.size(),
                             drbg);
            for (std::size_t i = 0; i < node.children.size(); ++i) {
              share(*node.children[i], shares[i].y);
            }
            return;
          }
        }
      };
  share(ct.policy.root(), s);
  return ct;
}

std::optional<std::uint64_t> AbeAuthority::decrypt(const AbeCiphertext& ct,
                                                   const AbeUserKey& key,
                                                   const AttributeSet& attrs,
                                                   crypto::OpCounts& ops) {
  const auto& group = crypto::default_group();
  const crypto::Shamir shamir(group.q());

  // Recursive combine: returns g^{y * secret_of_node} when satisfiable.
  std::function<std::optional<std::uint64_t>(const PolicyNode&)> combine =
      [&](const PolicyNode& node) -> std::optional<std::uint64_t> {
    switch (node.kind) {
      case GateKind::kLeaf: {
        if (!attrs.has(node.attribute)) return std::nullopt;
        auto it = key.components.find(node.attribute);
        if (it == key.components.end()) return std::nullopt;
        const auto& [attr, c_leaf] = ct.leaf_components[node.leaf_id];
        if (attr != node.attribute) return std::nullopt;  // malformed
        ops.abe_decrypt_leaves += 1;
        return group.pow(c_leaf, it->second);  // g^{y * s_leaf}
      }
      case GateKind::kOr:
        for (const auto& c : node.children) {
          if (auto v = combine(*c)) return v;
        }
        return std::nullopt;
      case GateKind::kAnd:
      case GateKind::kThreshold: {
        const std::size_t need = node.kind == GateKind::kAnd
                                     ? node.children.size()
                                     : node.threshold;
        // Collect satisfied children with their Shamir x-coordinates.
        std::vector<crypto::Share> xs;      // x only; y unused
        std::vector<std::uint64_t> values;  // g^{y * share_i}
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          if (xs.size() == need) break;
          if (auto v = combine(*node.children[i])) {
            xs.push_back(crypto::Share{i + 1, 0});
            values.push_back(*v);
          }
        }
        if (xs.size() < need) return std::nullopt;
        // Lagrange interpolation in the exponent.
        std::uint64_t acc = 1;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          const std::uint64_t li = shamir.lagrange_coefficient(xs, i);
          acc = group.mul(acc, group.pow(values[i], li));
        }
        return acc;
      }
    }
    return std::nullopt;
  };

  const auto ys = combine(ct.policy.root());  // Y^s
  if (!ys) return std::nullopt;
  return group.mul(ct.c0, group.inv(*ys));
}

namespace {

crypto::Bytes dem_key(std::uint64_t m) {
  crypto::Bytes b;
  crypto::append_u64(b, m);
  const crypto::Digest d = crypto::Sha256::hash(b);
  return crypto::Bytes(d.begin(), d.end());
}

}  // namespace

AbePackage AbeAuthority::seal(const crypto::Bytes& plain, const Policy& policy,
                              crypto::Drbg& drbg,
                              crypto::OpCounts& ops) const {
  // Random group element as the DEM key seed.
  const std::uint64_t m = group_.pow_g(drbg.next_scalar(group_.q()));
  AbePackage pkg(encrypt(m, policy, drbg, ops));
  const crypto::Bytes key = dem_key(m);
  crypto::Drbg keystream(key);
  pkg.body = plain;
  const crypto::Bytes pad = keystream.generate(plain.size());
  for (std::size_t i = 0; i < pkg.body.size(); ++i) pkg.body[i] ^= pad[i];
  pkg.tag = crypto::hmac_sha256(key, pkg.body);
  ops.hmac += 1;
  return pkg;
}

std::optional<crypto::Bytes> AbeAuthority::open(const AbePackage& pkg,
                                                const AbeUserKey& key,
                                                const AttributeSet& attrs,
                                                crypto::OpCounts& ops) {
  const auto m = decrypt(pkg.header, key, attrs, ops);
  if (!m) return std::nullopt;
  const crypto::Bytes dk = dem_key(*m);
  ops.hmac += 1;
  if (!crypto::digest_equal(pkg.tag, crypto::hmac_sha256(dk, pkg.body))) {
    return std::nullopt;
  }
  crypto::Drbg keystream(dk);
  crypto::Bytes plain = pkg.body;
  const crypto::Bytes pad = keystream.generate(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) plain[i] ^= pad[i];
  return plain;
}

}  // namespace vcl::access
