// Context-dependent role/attribute assignment (paper §III.C).
//
// A vehicle's access rights follow its context: cluster role, location
// zone, speed band, automation level, and the scenario mode (normal vs
// emergency). The RoleManager projects a VehicleContext onto an
// AttributeSet through an ordered rule list; emergency escalation rules
// grant additional attributes that exist only while the emergency flag is
// set — the "additional permissions ... granted in milliseconds" case.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "access/attribute.h"
#include "mobility/vehicle.h"

namespace vcl::access {

struct VehicleContext {
  bool is_cluster_head = false;
  std::string zone;  // location zone label, e.g. "z12"
  double speed = 0.0;
  mobility::AutomationLevel automation =
      mobility::AutomationLevel::kConditionalAutomation;
  bool emergency = false;
};

struct RoleRule {
  std::string name;
  std::function<bool(const VehicleContext&)> applies;
  std::vector<Attribute> grants;
  bool emergency_only = false;
};

class RoleManager {
 public:
  // Constructs with the standard rule set (head/member, zone, speed band,
  // automation level, emergency escalations). Custom rules can be added.
  RoleManager();

  void add_rule(RoleRule rule);

  // Projects a context onto attributes; deterministic and pure.
  [[nodiscard]] AttributeSet attributes_for(const VehicleContext& ctx) const;

  // Number of attributes that differ between two contexts' projections —
  // the "policy churn" a context switch causes (E12 measures the cost).
  [[nodiscard]] std::size_t switch_delta(const VehicleContext& before,
                                         const VehicleContext& after) const;

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

 private:
  std::vector<RoleRule> rules_;
};

}  // namespace vcl::access
