// Attributes: the vocabulary access-control policies speak.
//
// v-cloud roles are contextual (paper §III.C): the same vehicle is
// "role:head" in one group and "role:buffer" in the next, its "zone:" and
// "level:" attributes shift with location and automation mode. Attributes
// are plain strings with a `key:value` convention; AttributeSet is the
// requester's current projection.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace vcl::access {

using Attribute = std::string;

class AttributeSet {
 public:
  AttributeSet() = default;
  AttributeSet(std::initializer_list<Attribute> attrs) : attrs_(attrs) {}

  void add(const Attribute& a) { attrs_.insert(a); }
  void remove(const Attribute& a) { attrs_.erase(a); }
  [[nodiscard]] bool has(const Attribute& a) const {
    return attrs_.count(a) != 0;
  }
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }
  [[nodiscard]] const std::set<Attribute>& all() const { return attrs_; }
  [[nodiscard]] bool empty() const { return attrs_.empty(); }

  // Replaces every attribute sharing `key:` with the new value, e.g.
  // set_keyed("role", "head") swaps role:* for role:head.
  void set_keyed(const std::string& key, const std::string& value);
  [[nodiscard]] std::string get_keyed(const std::string& key) const;

  friend bool operator==(const AttributeSet& a, const AttributeSet& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::set<Attribute> attrs_;
};

}  // namespace vcl::access
