#include "access/role_manager.h"

#include <algorithm>

namespace vcl::access {

RoleManager::RoleManager() {
  add_rule({"head",
            [](const VehicleContext& c) { return c.is_cluster_head; },
            {"role:head", "can:aggregate", "can:assign-tasks"},
            false});
  add_rule({"member",
            [](const VehicleContext& c) { return !c.is_cluster_head; },
            {"role:member"},
            false});
  add_rule({"zone",
            [](const VehicleContext& c) { return !c.zone.empty(); },
            {},  // grant is synthesized below (zone:<label>)
            false});
  add_rule({"slow",
            [](const VehicleContext& c) { return c.speed < 5.0; },
            {"band:slow", "can:buffer-content"},
            false});
  add_rule({"fast",
            [](const VehicleContext& c) { return c.speed >= 25.0; },
            {"band:fast"},
            false});
  add_rule({"automation-high",
            [](const VehicleContext& c) {
              return c.automation >=
                     mobility::AutomationLevel::kHighAutomation;
            },
            {"level:high", "can:sense-rich"},
            false});
  add_rule({"emergency-read",
            [](const VehicleContext&) { return true; },
            {"emergency:responder", "can:read-safety-data"},
            true});
}

void RoleManager::add_rule(RoleRule rule) { rules_.push_back(std::move(rule)); }

AttributeSet RoleManager::attributes_for(const VehicleContext& ctx) const {
  AttributeSet out;
  for (const RoleRule& rule : rules_) {
    if (rule.emergency_only && !ctx.emergency) continue;
    if (!rule.applies(ctx)) continue;
    for (const Attribute& a : rule.grants) out.add(a);
    if (rule.name == "zone" && !ctx.zone.empty()) {
      out.add("zone:" + ctx.zone);
    }
  }
  return out;
}

std::size_t RoleManager::switch_delta(const VehicleContext& before,
                                      const VehicleContext& after) const {
  const AttributeSet a = attributes_for(before);
  const AttributeSet b = attributes_for(after);
  std::size_t delta = 0;
  for (const Attribute& x : a.all()) {
    if (!b.has(x)) ++delta;
  }
  for (const Attribute& x : b.all()) {
    if (!a.has(x)) ++delta;
  }
  return delta;
}

}  // namespace vcl::access
