#include "access/policy.h"

#include <cctype>
#include <functional>
#include <sstream>

namespace vcl::access {
namespace {

// Recursive-descent parser over the grammar in the header.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<PolicyNode> run() {
    auto node = parse_expr();
    skip_ws();
    if (node == nullptr || pos_ != text_.size()) return nullptr;
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool is_attr_char(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
           c == '_' || c == '-' || c == '.';
  }

  std::unique_ptr<PolicyNode> parse_expr() {
    auto first = parse_term();
    if (first == nullptr) return nullptr;
    if (!peek('|')) return first;
    auto node = std::make_unique<PolicyNode>();
    node->kind = GateKind::kOr;
    node->children.push_back(std::move(first));
    while (eat('|')) {
      auto next = parse_term();
      if (next == nullptr) return nullptr;
      node->children.push_back(std::move(next));
    }
    return node;
  }

  std::unique_ptr<PolicyNode> parse_term() {
    auto first = parse_factor();
    if (first == nullptr) return nullptr;
    if (!peek('&')) return first;
    auto node = std::make_unique<PolicyNode>();
    node->kind = GateKind::kAnd;
    node->children.push_back(std::move(first));
    while (eat('&')) {
      auto next = parse_factor();
      if (next == nullptr) return nullptr;
      node->children.push_back(std::move(next));
    }
    return node;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::unique_ptr<PolicyNode> parse_factor() {
    skip_ws();
    if (eat('(')) {
      auto inner = parse_expr();
      if (inner == nullptr || !eat(')')) return nullptr;
      return inner;
    }
    // Threshold: INT 'of' '(' ... ')'
    const std::size_t save = pos_;
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::size_t k = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        k = k * 10 + static_cast<std::size_t>(text_[pos_] - '0');
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == 'o' &&
          text_[pos_ + 1] == 'f') {
        pos_ += 2;
        if (!eat('(')) return nullptr;
        auto node = std::make_unique<PolicyNode>();
        node->kind = GateKind::kThreshold;
        node->threshold = k;
        do {
          auto child = parse_expr();
          if (child == nullptr) return nullptr;
          node->children.push_back(std::move(child));
        } while (eat(','));
        if (!eat(')')) return nullptr;
        if (k == 0 || k > node->children.size()) return nullptr;
        return node;
      }
      pos_ = save;  // not a threshold: fall through to attribute
    }
    // Attribute leaf.
    skip_ws();
    std::string attr;
    while (pos_ < text_.size() && is_attr_char(text_[pos_])) {
      attr.push_back(text_[pos_]);
      ++pos_;
    }
    if (attr.empty()) return nullptr;
    auto node = std::make_unique<PolicyNode>();
    node->kind = GateKind::kLeaf;
    node->attribute = attr;
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool node_satisfied(const PolicyNode& node, const AttributeSet& attrs) {
  switch (node.kind) {
    case GateKind::kLeaf:
      return attrs.has(node.attribute);
    case GateKind::kAnd:
      for (const auto& c : node.children) {
        if (!node_satisfied(*c, attrs)) return false;
      }
      return !node.children.empty();
    case GateKind::kOr:
      for (const auto& c : node.children) {
        if (node_satisfied(*c, attrs)) return true;
      }
      return false;
    case GateKind::kThreshold: {
      std::size_t n = 0;
      for (const auto& c : node.children) {
        if (node_satisfied(*c, attrs)) ++n;
      }
      return n >= node.threshold;
    }
  }
  return false;
}

std::unique_ptr<PolicyNode> clone_node(const PolicyNode& node) {
  auto out = std::make_unique<PolicyNode>();
  out->kind = node.kind;
  out->attribute = node.attribute;
  out->threshold = node.threshold;
  out->leaf_id = node.leaf_id;
  for (const auto& c : node.children) out->children.push_back(clone_node(*c));
  return out;
}

void node_to_string(const PolicyNode& node, std::ostringstream& os) {
  switch (node.kind) {
    case GateKind::kLeaf:
      os << node.attribute;
      return;
    case GateKind::kAnd:
    case GateKind::kOr: {
      os << "(";
      const char* sep = node.kind == GateKind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) os << sep;
        node_to_string(*node.children[i], os);
      }
      os << ")";
      return;
    }
    case GateKind::kThreshold: {
      os << node.threshold << "of(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) os << ", ";
        node_to_string(*node.children[i], os);
      }
      os << ")";
      return;
    }
  }
}

}  // namespace

Policy::Policy(std::unique_ptr<PolicyNode> root) : root_(std::move(root)) {
  index_leaves();
}

std::optional<Policy> Policy::parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.run();
  if (root == nullptr) return std::nullopt;
  return Policy(std::move(root));
}

Policy Policy::single(const Attribute& attr) {
  auto node = std::make_unique<PolicyNode>();
  node->kind = GateKind::kLeaf;
  node->attribute = attr;
  return Policy(std::move(node));
}

Policy Policy::clone() const { return Policy(clone_node(*root_)); }

void Policy::index_leaves() {
  leaf_count_ = 0;
  std::function<void(PolicyNode&)> walk = [&](PolicyNode& n) {
    if (n.kind == GateKind::kLeaf) {
      n.leaf_id = leaf_count_++;
      return;
    }
    for (auto& c : n.children) walk(*c);
  };
  walk(*root_);
}

bool Policy::satisfied(const AttributeSet& attrs) const {
  return node_satisfied(*root_, attrs);
}

std::vector<Attribute> Policy::leaves() const {
  std::vector<Attribute> out(leaf_count_);
  std::function<void(const PolicyNode&)> walk = [&](const PolicyNode& n) {
    if (n.kind == GateKind::kLeaf) {
      out[n.leaf_id] = n.attribute;
      return;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(*root_);
  return out;
}

std::string Policy::to_string() const {
  std::ostringstream os;
  node_to_string(*root_, os);
  return os.str();
}

}  // namespace vcl::access
