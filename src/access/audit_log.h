// Tamper-evident audit log (paper §V.C: "any access to the data will
// trigger automatic logging actions for future auditing").
//
// Entries are hash-chained: entry_hash_i = H(entry_i || entry_hash_{i-1}),
// so truncation or in-place edits are detectable from the head hash alone.
#pragma once

#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::access {

struct AuditRecord {
  SimTime time = 0.0;
  std::uint64_t accessor = 0;   // requester credential/vehicle id
  std::uint64_t object = 0;     // package/file id
  std::string action;           // "read", "write", "denied", ...
  bool granted = false;
};

class AuditLog {
 public:
  void append(const AuditRecord& record);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<AuditRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const crypto::Digest& head() const { return head_; }

  // Recomputes the chain and compares with the stored head.
  [[nodiscard]] bool verify_chain() const;

  // Test/attack hook: mutate a record in place (then verify_chain fails).
  std::vector<AuditRecord>& mutable_records() { return records_; }

 private:
  static crypto::Digest hash_record(const AuditRecord& r,
                                    const crypto::Digest& prev);

  std::vector<AuditRecord> records_;
  crypto::Digest head_{};
};

}  // namespace vcl::access
