#include "access/attribute.h"

namespace vcl::access {

void AttributeSet::set_keyed(const std::string& key, const std::string& value) {
  const std::string prefix = key + ":";
  for (auto it = attrs_.begin(); it != attrs_.end();) {
    if (it->rfind(prefix, 0) == 0) {
      it = attrs_.erase(it);
    } else {
      ++it;
    }
  }
  attrs_.insert(prefix + value);
}

std::string AttributeSet::get_keyed(const std::string& key) const {
  const std::string prefix = key + ":";
  for (const Attribute& a : attrs_) {
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return "";
}

}  // namespace vcl::access
