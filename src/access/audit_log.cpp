#include "access/audit_log.h"

#include "crypto/hmac.h"
#include "crypto/schnorr.h"

namespace vcl::access {

crypto::Digest AuditLog::hash_record(const AuditRecord& r,
                                     const crypto::Digest& prev) {
  crypto::Sha256 h;
  crypto::Bytes b;
  crypto::append_u64(b, static_cast<std::uint64_t>(r.time * 1e6));
  crypto::append_u64(b, r.accessor);
  crypto::append_u64(b, r.object);
  crypto::append_u64(b, r.granted ? 1 : 0);
  h.update(b);
  h.update(r.action);
  h.update(prev.data(), prev.size());
  return h.finalize();
}

void AuditLog::append(const AuditRecord& record) {
  records_.push_back(record);
  head_ = hash_record(record, head_);
}

bool AuditLog::verify_chain() const {
  crypto::Digest acc{};
  for (const AuditRecord& r : records_) {
    acc = hash_record(r, acc);
  }
  return crypto::digest_equal(acc, head_);
}

}  // namespace vcl::access
