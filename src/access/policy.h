// Policy trees: AND / OR / k-of-n threshold gates over attribute leaves.
//
// Textual form parsed by Policy::parse:
//   expr   := term ('|' term)*            -- OR
//   term   := factor ('&' factor)*        -- AND
//   factor := ATTR | '(' expr ')' | INT 'of' '(' expr (',' expr)* ')'
// Example: "(role:head & zone:a3) | 2of(level:4, sensor:lidar, owner:fleet)"
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "access/attribute.h"

namespace vcl::access {

enum class GateKind : std::uint8_t { kLeaf, kAnd, kOr, kThreshold };

struct PolicyNode {
  GateKind kind = GateKind::kLeaf;
  Attribute attribute;   // kLeaf
  std::size_t threshold = 0;  // kThreshold: k of children
  std::vector<std::unique_ptr<PolicyNode>> children;

  // Leaf ids are assigned in depth-first order by Policy.
  std::size_t leaf_id = 0;
};

class Policy {
 public:
  // Parses the textual form; nullopt on syntax errors.
  static std::optional<Policy> parse(const std::string& text);
  // Single-leaf convenience.
  static Policy single(const Attribute& attr);

  Policy(Policy&&) = default;
  Policy& operator=(Policy&&) = default;
  // Deep copy (policies travel with data packages).
  [[nodiscard]] Policy clone() const;

  [[nodiscard]] bool satisfied(const AttributeSet& attrs) const;
  [[nodiscard]] const PolicyNode& root() const { return *root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }
  // All leaf attributes in leaf-id order.
  [[nodiscard]] std::vector<Attribute> leaves() const;
  [[nodiscard]] std::string to_string() const;

 private:
  explicit Policy(std::unique_ptr<PolicyNode> root);
  void index_leaves();

  std::unique_ptr<PolicyNode> root_;
  std::size_t leaf_count_ = 0;
};

}  // namespace vcl::access
