// Policy-tree attribute-based encryption (ciphertext-policy), built on
// Shamir secret sharing in the exponent of the Schnorr group.
//
// Construction (Goyal/SmartVeh-style, pairing-free):
//   Setup:    master secret y, public Y = g^y; per-attribute secret
//             t_a = H(master_seed, a), public T_a = g^{t_a}.
//   Encrypt:  random s; C0 = m * Y^s; share s down the policy tree
//             (AND = n-of-n Shamir, OR = duplication, k-of-n = Shamir);
//             each leaf for attribute a carries C_leaf = g^{t_a * s_leaf}.
//   KeyGen:   user key for attribute a is d_a = y / t_a (mod q).
//   Decrypt:  C_leaf^{d_a} = g^{y * s_leaf}; Lagrange-combine up the tree to
//             Y^s; m = C0 / Y^s.
//
// Functional completeness is exact: decryption succeeds IFF the attribute
// set satisfies the policy tree (property-tested). LIMITATION (documented in
// DESIGN.md): keys are not per-user randomized, so two users can pool
// attributes (collusion) — acceptable for a simulation substrate, never for
// production. Costs are charged per leaf via the CostModel so the paper's
// "authorization within stringent time constraints" experiments (E12) see
// production-shaped latencies.
#pragma once

#include <optional>
#include <unordered_map>

#include "access/policy.h"
#include "crypto/cost_model.h"
#include "crypto/elgamal.h"
#include "crypto/schnorr.h"

namespace vcl::access {

// Per-user decryption key: attribute -> d_a.
struct AbeUserKey {
  std::unordered_map<Attribute, std::uint64_t> components;
};

struct AbeCiphertext {
  std::uint64_t c0 = 0;  // m * Y^s
  // leaf_id -> (attribute, g^{t_a * s_leaf})
  std::vector<std::pair<Attribute, std::uint64_t>> leaf_components;
  Policy policy;

  explicit AbeCiphertext(Policy p) : policy(std::move(p)) {}
  AbeCiphertext(AbeCiphertext&&) = default;
  AbeCiphertext& operator=(AbeCiphertext&&) = default;
};

// Hybrid package: ABE-wrapped key + authenticated byte payload.
struct AbePackage {
  AbeCiphertext header;
  crypto::Bytes body;
  crypto::Digest tag{};

  explicit AbePackage(AbeCiphertext h) : header(std::move(h)) {}
};

class AbeAuthority {
 public:
  explicit AbeAuthority(std::uint64_t seed);

  // Issues the key components for an attribute set.
  [[nodiscard]] AbeUserKey keygen(const AttributeSet& attrs) const;

  // Encrypts a group element under a policy.
  [[nodiscard]] AbeCiphertext encrypt(std::uint64_t m, const Policy& policy,
                                      crypto::Drbg& drbg,
                                      crypto::OpCounts& ops) const;
  // Seals an arbitrary byte payload under a policy (hybrid).
  [[nodiscard]] AbePackage seal(const crypto::Bytes& plain,
                                const Policy& policy, crypto::Drbg& drbg,
                                crypto::OpCounts& ops) const;

  // Decryption is authority-independent given the ciphertext + user key; it
  // lives here for symmetry and access to the group.
  [[nodiscard]] static std::optional<std::uint64_t> decrypt(
      const AbeCiphertext& ct, const AbeUserKey& key,
      const AttributeSet& attrs, crypto::OpCounts& ops);
  [[nodiscard]] static std::optional<crypto::Bytes> open(
      const AbePackage& pkg, const AbeUserKey& key, const AttributeSet& attrs,
      crypto::OpCounts& ops);

  [[nodiscard]] std::uint64_t public_key() const { return big_y_; }

 private:
  [[nodiscard]] std::uint64_t attr_secret(const Attribute& a) const;

  const crypto::SchnorrGroup& group_;
  std::uint64_t master_seed_;
  std::uint64_t y_;      // master secret
  std::uint64_t big_y_;  // Y = g^y
};

}  // namespace vcl::access
