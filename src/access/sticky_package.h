// Sticky data-policy packages (paper §V.C "Constructing data-policy
// package").
//
// The package tightly couples a data item with its access-control policy:
// the payload is ABE-sealed under the policy (enforcement travels with the
// data — no online policy server), the policy text and metadata are bound
// by an HMAC under the owner's sealing key (tamper-evidence), and every
// access attempt — granted or denied — appends to the package's audit log.
#pragma once

#include <optional>
#include <string>

#include "access/abe.h"
#include "access/audit_log.h"

namespace vcl::access {

class StickyPackage {
 public:
  // Seals `data` under `policy`. `owner_key` is the owner's package-sealing
  // MAC key; `object_id` identifies the data item in audit records.
  StickyPackage(const AbeAuthority& authority, const crypto::Bytes& data,
                Policy policy, const crypto::Bytes& owner_key,
                std::uint64_t object_id, crypto::Drbg& drbg,
                crypto::OpCounts& ops);

  StickyPackage(StickyPackage&&) = default;

  // Attempts access: checks envelope integrity, evaluates the policy via
  // actual ABE decryption, logs the attempt, and returns the plaintext on
  // success. `accessor` is the requester's credential id (pseudonymous).
  std::optional<crypto::Bytes> access(const AbeUserKey& key,
                                      const AttributeSet& attrs,
                                      std::uint64_t accessor, SimTime now,
                                      crypto::OpCounts& ops);

  // Integrity of the policy/metadata envelope under the owner's key.
  [[nodiscard]] bool verify_envelope(const crypto::Bytes& owner_key) const;

  [[nodiscard]] const std::string& policy_text() const { return policy_text_; }
  [[nodiscard]] const AuditLog& log() const { return log_; }
  [[nodiscard]] std::uint64_t object_id() const { return object_id_; }

  // Attack hook: tamper with the recorded policy text (envelope check must
  // then fail).
  void tamper_policy_text(const std::string& text) { policy_text_ = text; }

 private:
  [[nodiscard]] crypto::Digest envelope_mac(
      const crypto::Bytes& owner_key) const;

  std::uint64_t object_id_;
  AbePackage sealed_;
  std::string policy_text_;
  crypto::Digest envelope_tag_{};
  AuditLog log_;
};

}  // namespace vcl::access
