#include "dag/generator.h"

#include <algorithm>

namespace vcl::dag {

const char* to_string(DagShape shape) {
  switch (shape) {
    case DagShape::kChain: return "chain";
    case DagShape::kForkJoin: return "fork-join";
    case DagShape::kDiamond: return "diamond";
    case DagShape::kLayered: return "layered";
  }
  return "unknown";
}

TaskGraph DagWorkloadGenerator::make(DagShape shape) {
  TaskGraph g;
  switch (shape) {
    case DagShape::kChain: {
      const std::size_t n = std::max<std::size_t>(2, config_.chain_length);
      std::size_t prev = g.add_node(draw_work(), draw_output());
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t cur = g.add_node(draw_work(), draw_output());
        g.add_edge(prev, cur, draw_transfer());
        prev = cur;
      }
      break;
    }
    case DagShape::kForkJoin: {
      const std::size_t fan = std::max<std::size_t>(2, config_.fanout);
      const std::size_t source = g.add_node(draw_work(), draw_output());
      std::vector<std::size_t> maps;
      maps.reserve(fan);
      for (std::size_t i = 0; i < fan; ++i) {
        const std::size_t m = g.add_node(draw_work(), draw_output());
        g.add_edge(source, m, draw_transfer());
        maps.push_back(m);
      }
      const std::size_t reduce = g.add_node(draw_work(), draw_output());
      for (const std::size_t m : maps) g.add_edge(m, reduce, draw_transfer());
      break;
    }
    case DagShape::kDiamond: {
      const std::size_t source = g.add_node(draw_work(), draw_output());
      const std::size_t left = g.add_node(draw_work(), draw_output());
      const std::size_t right = g.add_node(draw_work(), draw_output());
      const std::size_t fusion = g.add_node(draw_work(), draw_output());
      g.add_edge(source, left, draw_transfer());
      g.add_edge(source, right, draw_transfer());
      g.add_edge(left, fusion, draw_transfer());
      g.add_edge(right, fusion, draw_transfer());
      break;
    }
    case DagShape::kLayered: {
      const std::size_t layers = std::max<std::size_t>(2, config_.layers);
      const std::size_t width = std::max<std::size_t>(1, config_.layer_width);
      std::vector<std::size_t> prev_layer;
      for (std::size_t l = 0; l < layers; ++l) {
        std::vector<std::size_t> layer;
        layer.reserve(width);
        for (std::size_t i = 0; i < width; ++i) {
          const std::size_t u = g.add_node(draw_work(), draw_output());
          layer.push_back(u);
          if (l == 0) continue;
          bool connected = false;
          for (const std::size_t p : prev_layer) {
            if (rng_.bernoulli(config_.edge_prob)) {
              g.add_edge(p, u, draw_transfer());
              connected = true;
            }
          }
          if (!connected) {
            // Keep the layering honest: every non-source node depends on
            // at least one node of the previous layer.
            const std::size_t p = prev_layer[rng_.index(prev_layer.size())];
            g.add_edge(p, u, draw_transfer());
          }
        }
        prev_layer = std::move(layer);
      }
      break;
    }
  }
  g.seal();
  return g;
}

TaskGraph DagWorkloadGenerator::next() {
  static constexpr DagShape kCycle[] = {DagShape::kChain, DagShape::kForkJoin,
                                        DagShape::kDiamond, DagShape::kLayered};
  const DagShape shape = kCycle[next_shape_ % 4];
  ++next_shape_;
  return make(shape);
}

}  // namespace vcl::dag
