#include "dag/scheduler.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vcl::dag {

const char* to_string(DagPolicy policy) {
  switch (policy) {
    case DagPolicy::kNone: return "none";
    case DagPolicy::kBlindK: return "blind-k";
    case DagPolicy::kReliabilityAware: return "reliability-aware";
  }
  return "unknown";
}

std::string validate(const DagConfig& config, std::size_t fleet_size) {
  if (config.replicas == 0) {
    return "replicas must be >= 1 (k attempts per node)";
  }
  if (config.max_node_attempts < config.replicas) {
    std::ostringstream os;
    os << "max_node_attempts (" << config.max_node_attempts
       << ") must be >= replicas (" << config.replicas << ")";
    return os.str();
  }
  if (config.dwell_margin <= 0.0) {
    std::ostringstream os;
    os << "dwell_margin must be > 0 (got " << config.dwell_margin << ")";
    return os.str();
  }
  if (config.check_period <= 0.0) {
    std::ostringstream os;
    os << "check_period must be > 0 (got " << config.check_period << ")";
    return os.str();
  }
  if (config.graph_deadline < 0.0) {
    std::ostringstream os;
    os << "graph_deadline must be >= 0 (got " << config.graph_deadline << ")";
    return os.str();
  }
  if (fleet_size > 0 && config.replicas > fleet_size) {
    std::ostringstream os;
    os << "replication factor " << config.replicas << " exceeds the fleet ("
       << fleet_size << " vehicles): k copies can never run on distinct hosts";
    return os.str();
  }
  return {};
}

DagScheduler::DagScheduler(net::Network& net, vcloud::VehicularCloud& cloud,
                           DagConfig config, Rng rng)
    : net_(net), cloud_(cloud), config_(config), rng_(rng) {
  const std::string problem = validate(config_);
  if (!problem.empty()) {
    throw std::invalid_argument("DagConfig: " + problem);
  }
}

void DagScheduler::attach() {
  cloud_.set_terminal_hook([this](const vcloud::Task& task, SimTime now) {
    on_task_terminal(task, now);
  });
  if (config_.policy == DagPolicy::kReliabilityAware) {
    net_.simulator().schedule_every(
        config_.check_period, [this] { reliability_scan(); }, -1.0,
        "dag.check");
  }
}

std::uint64_t DagScheduler::submit_graph(TaskGraph graph, SimTime now) {
  if (!graph.sealed()) graph.seal();
  const std::uint64_t id = next_graph_id_++;
  GraphRun& g = graphs_[id];
  g.id = id;
  g.graph = std::move(graph);
  g.submitted_at = now;
  g.deadline =
      config_.graph_deadline > 0.0 ? now + config_.graph_deadline : 0.0;
  g.nodes.assign(g.graph.size(), NodeRun{});
  ++stats_.graphs_submitted;

  if (trace_ != nullptr) {
    g.trace.trace_id = trace_->new_trace_id();
    g.trace.span_id = trace_->begin_span(
        now, obs::TraceCategory::kDag, "dag.run",
        obs::TraceContext{g.trace.trace_id, 0},
        {{"graph", static_cast<double>(id)},
         {"nodes", static_cast<double>(g.graph.size())},
         {"work", g.graph.total_work()}});
    // The dependency edges ride along as instants so trace analysis can
    // rebuild the graph and walk the true critical path (DESIGN.md §8).
    for (const DagEdge& e : g.graph.edges()) {
      trace_->record(now, obs::TraceCategory::kDag, "dag.edge", g.trace,
                     {{"from", static_cast<double>(e.from)},
                      {"to", static_cast<double>(e.to)},
                      {"mb", e.transfer_mb}});
    }
  }

  // Sources are ready immediately.
  for (std::size_t i = 0; i < g.graph.size(); ++i) {
    if (g.graph.parents(i).empty()) submit_node(g, i, now);
  }
  return id;
}

bool DagScheduler::node_ready(const GraphRun& g, std::size_t node) const {
  for (const std::size_t p : g.graph.parents(node)) {
    if (!g.nodes[p].succeeded) return false;
  }
  return true;
}

void DagScheduler::submit_node(GraphRun& g, std::size_t node, SimTime now) {
  NodeRun& n = g.nodes[node];
  n.submitted = true;
  n.ready_at = now;
  // Consume the parked parent outputs: they ship broker->worker as the
  // node's dispatch input from here on.
  const std::size_t inputs = g.graph.parents(node).size();
  g.intermediates_held -= std::min(g.intermediates_held, inputs);
  stats_.transfers += inputs;
  stats_.transfer_mb += g.graph.input_mb(node);

  std::size_t copies = 1;
  if (config_.policy == DagPolicy::kBlindK) {
    copies = std::min(config_.replicas, config_.max_node_attempts);
  }
  for (std::size_t c = 0; c < copies; ++c) {
    submit_attempt(g, node, now);
    if (c > 0) ++stats_.blind_replicas;
  }
}

void DagScheduler::submit_attempt(GraphRun& g, std::size_t node,
                                  SimTime now) {
  NodeRun& n = g.nodes[node];
  vcloud::Task spec;
  spec.work = g.graph.node(node).work;
  spec.input_mb = g.graph.input_mb(node);
  spec.output_mb = g.graph.node(node).output_mb;
  spec.deadline = g.deadline;
  // Pre-stamp the dag.run context: the cloud parents the attempt's
  // task.life span under it instead of rooting a fresh trace, so the whole
  // graph run is one trace tree.
  if (trace_ != nullptr && g.trace.trace_id != 0) spec.trace = g.trace;
  const TaskId id = cloud_.submit(std::move(spec));
  task_to_node_[id.value()] = {g.id, node};
  n.attempts.push_back(id);
  ++n.attempt_count;
  ++n.live;
  ++stats_.nodes_submitted;
  if (trace_ != nullptr && g.trace.trace_id != 0) {
    trace_->record(now, obs::TraceCategory::kDag, "dag.node", g.trace,
                   {{"node", static_cast<double>(node)},
                    {"task", static_cast<double>(id.value())},
                    {"attempt", static_cast<double>(n.attempt_count)}});
  }
}

void DagScheduler::on_task_terminal(const vcloud::Task& task, SimTime now) {
  const auto it = task_to_node_.find(task.id.value());
  if (it == task_to_node_.end()) return;  // not a DAG attempt
  const auto [gid, node] = it->second;
  task_to_node_.erase(it);
  // Copy everything needed NOW: submit_attempt below rehashes the cloud's
  // task table and `task` may dangle.
  const bool completed = task.state == vcloud::TaskState::kCompleted;

  GraphRun& g = graphs_.at(gid);
  NodeRun& n = g.nodes[node];
  if (n.live > 0) --n.live;

  if (g.terminal() || n.succeeded) return;  // late loser / moot graph

  if (completed) {
    commit_success(g, node, now);
    return;
  }
  // The attempt failed or expired. While siblings are still live the node
  // is covered; once the last one dies the node needs a resubmission (or
  // the graph is out of budget/time and fails).
  if (n.live > 0) return;
  if (config_.test_drop_failed_resubmit) return;  // the seeded bug: strand it
  const bool out_of_time = g.deadline > 0.0 && now >= g.deadline;
  if (!out_of_time && n.attempt_count < config_.max_node_attempts) {
    ++stats_.resubmits;
    submit_attempt(g, node, now);
    return;
  }
  fail_graph(g, now);
}

void DagScheduler::commit_success(GraphRun& g, std::size_t node,
                                  SimTime now) {
  NodeRun& n = g.nodes[node];
  n.succeeded = true;
  n.finished_at = now;
  ++g.succeeded_count;
  ++stats_.nodes_succeeded;
  stats_.node_latency.add(now - n.ready_at);
  stats_.node_latency_tail.add(now - n.ready_at);
  if (oracle_ != nullptr) oracle_->on_dag_node_terminal(g.id, node, now);
  // Park one intermediate per outgoing edge; each is consumed when the
  // child is submitted.
  g.intermediates_held += g.graph.children(node).size();
  for (const std::size_t child : g.graph.children(node)) {
    if (!g.nodes[child].submitted && node_ready(g, child)) {
      submit_node(g, child, now);
    }
  }
  if (g.succeeded_count == g.graph.size()) complete_graph(g, now);
}

void DagScheduler::complete_graph(GraphRun& g, SimTime now) {
  g.completed = true;
  ++stats_.graphs_completed;
  stats_.makespan.add(now - g.submitted_at);
  // Every child consumed its parents' parked outputs on submission and
  // sink outputs were delivered on the result path, so nothing may remain
  // parked — the oracle's dag-no-orphaned-intermediates invariant checks
  // exactly this, which is why the count is NOT zeroed here.
  close_graph_trace(g, now, obs::kOutcomeCompleted);
}

void DagScheduler::fail_graph(GraphRun& g, SimTime now) {
  g.failed = true;
  ++stats_.graphs_failed;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kDag, "dag.graph.fail", g.id,
                    g.succeeded_count);
  }
  // The broker discards the parked outputs of a failed graph.
  g.intermediates_held = 0;
  close_graph_trace(g, now, obs::kOutcomeFailed);
}

void DagScheduler::close_graph_trace(GraphRun& g, SimTime now,
                                     double outcome) {
  if (trace_ == nullptr || g.trace.span_id == 0) return;
  trace_->end_span(now, obs::TraceCategory::kDag, "dag.run", g.trace,
                   {{"outcome", outcome},
                    {"succeeded", static_cast<double>(g.succeeded_count)}});
  g.trace.span_id = 0;
}

void DagScheduler::reliability_scan() {
  const SimTime now = net_.simulator().now();
  for (auto& [gid, g] : graphs_) {
    if (g.terminal()) continue;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      NodeRun& n = g.nodes[i];
      if (!n.submitted || n.succeeded) continue;
      if (n.live >= config_.replicas) continue;  // replica budget spent
      if (n.attempt_count >= config_.max_node_attempts) continue;
      // At risk when any live running attempt sits on a host predicted to
      // leave before the attempt can finish. A crashed or despawned host
      // predicts zero dwell, so its attempt is flagged immediately —
      // before the failure detector declares the worker dead.
      bool at_risk = false;
      for (const TaskId tid : n.attempts) {
        const vcloud::Task* task = cloud_.find_task(tid);
        if (task == nullptr || task->terminal()) continue;
        if (task->state != vcloud::TaskState::kRunning ||
            !task->worker.valid()) {
          continue;  // queued/migrating: the broker still holds it
        }
        const vcloud::ResourceProfile* profile =
            cloud_.worker_profile(task->worker);
        const double rate =
            profile != nullptr && profile->compute > 0.0 ? profile->compute
                                                         : 1.0;
        const double expected_remaining = task->remaining() / rate;
        const double dwell = cloud_.worker_dwell(task->worker);
        if (dwell < config_.dwell_margin * expected_remaining) {
          at_risk = true;
          break;
        }
      }
      if (at_risk) {
        ++stats_.backups;
        if (flight_ != nullptr) {
          flight_->record(now, obs::FlightCategory::kDag, "dag.backup", g.id,
                          i);
        }
        submit_attempt(g, i, now);
      }
    }
  }
}

VehicleId DagScheduler::storm_victim(std::uint64_t tag) const {
  std::vector<const GraphRun*> live;
  for (const auto& [gid, g] : graphs_) {
    if (!g.terminal()) live.push_back(&g);
  }
  if (live.empty()) return VehicleId{};
  const GraphRun& g = *live[tag % live.size()];
  // The node with the heaviest downstream critical weight among nodes with
  // a running attempt is the current critical-path holder; ties break to
  // the smallest index, attempts to the earliest task id — deterministic.
  VehicleId victim;
  double best = -1.0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const NodeRun& n = g.nodes[i];
    if (!n.submitted || n.succeeded || n.live == 0) continue;
    if (g.graph.critical_weight(i) <= best) continue;
    for (const TaskId tid : n.attempts) {
      const vcloud::Task* task = cloud_.find_task(tid);
      if (task == nullptr || task->state != vcloud::TaskState::kRunning ||
          !task->worker.valid()) {
        continue;
      }
      best = g.graph.critical_weight(i);
      victim = task->worker;
      break;
    }
  }
  return victim;
}

bool DagScheduler::all_done() const {
  for (const auto& [gid, g] : graphs_) {
    if (!g.terminal()) return false;
  }
  return true;
}

std::size_t DagScheduler::active_graphs() const {
  std::size_t n = 0;
  for (const auto& [gid, g] : graphs_) {
    if (!g.terminal()) ++n;
  }
  return n;
}

bool DagScheduler::graph_completed(std::uint64_t id) const {
  const auto it = graphs_.find(id);
  return it != graphs_.end() && it->second.completed;
}

bool DagScheduler::graph_failed(std::uint64_t id) const {
  const auto it = graphs_.find(id);
  return it != graphs_.end() && it->second.failed;
}

void DagScheduler::for_each_graph(
    const std::function<void(const vcloud::DagGraphView&)>& fn) const {
  for (const auto& [gid, g] : graphs_) {
    std::vector<vcloud::DagNodeStateView> nodes;
    nodes.reserve(g.nodes.size());
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      vcloud::DagNodeStateView v;
      v.submitted = g.nodes[i].submitted;
      v.succeeded = g.nodes[i].succeeded;
      v.live_attempts = g.nodes[i].live;
      v.parents = g.graph.parents(i);
      nodes.push_back(std::move(v));
    }
    vcloud::DagGraphView view;
    view.id = g.id;
    view.terminal = g.terminal();
    view.completed = g.completed;
    view.intermediates_held = g.intermediates_held;
    view.nodes = &nodes;
    fn(view);
  }
}

}  // namespace vcl::dag
