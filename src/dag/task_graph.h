// TaskGraph: a validated DAG of dependent subtasks (paper §II.C's
// sensor-fusion / map-reduce pipelines; arXiv 2210.07337's decomposition
// model).
//
// Nodes are subtasks with a compute weight (work units, executed by one
// cloud worker) and an output size; edges are data dependencies carrying a
// transfer size — a node's input_mb at dispatch is the sum of its incoming
// transfers, so routing an intermediate between hosts is charged on the
// same channel model ordinary task inputs use.
//
// seal() freezes the graph: it validates (edge bounds, negative weights,
// acyclicity — a cycle is reported by naming the offending back-edge),
// builds per-node parent/child lists, a deterministic topological order
// (Kahn's algorithm, smallest-ready-index-first, so the order is a pure
// function of the construction sequence) and each node's downstream
// critical weight — the work on the heaviest dependency chain rooted at
// the node, which the chaos storm shape uses to find the current
// critical-path holder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vcl::dag {

struct DagNode {
  double work = 10.0;      // compute weight, work units
  double output_mb = 0.1;  // produced intermediate / final result size
};

struct DagEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double transfer_mb = 0.0;  // shipped from->to once `from` succeeds
};

class TaskGraph {
 public:
  // Returns the new node's index.
  std::size_t add_node(DagNode node);
  std::size_t add_node(double work, double output_mb = 0.1) {
    return add_node(DagNode{work, output_mb});
  }
  void add_edge(std::size_t from, std::size_t to, double transfer_mb = 0.0);

  // Validates and freezes the graph; throws std::invalid_argument with the
  // first problem (same messages check() reports). Idempotent.
  void seal();
  [[nodiscard]] bool sealed() const { return sealed_; }

  // Empty string when the graph is a well-formed DAG, else a one-line
  // description of the first problem: empty graph, out-of-range or
  // self-loop edges, negative node/edge weights, or a cycle — reported as
  // "cycle: back-edge N->M closes a dependency cycle".
  [[nodiscard]] std::string check() const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const DagNode& node(std::size_t i) const { return nodes_[i]; }
  [[nodiscard]] const std::vector<DagEdge>& edges() const { return edges_; }

  // The following require seal().
  [[nodiscard]] const std::vector<std::size_t>& parents(std::size_t i) const {
    return parents_[i];
  }
  [[nodiscard]] const std::vector<std::size_t>& children(std::size_t i) const {
    return children_[i];
  }
  // Deterministic topological order over node indices.
  [[nodiscard]] const std::vector<std::size_t>& topo_order() const {
    return topo_;
  }
  // Work on the heaviest dependency chain starting at (and including) i.
  [[nodiscard]] double critical_weight(std::size_t i) const {
    return critical_weight_[i];
  }
  // Sum of incoming transfer sizes: the node's dispatch input.
  [[nodiscard]] double input_mb(std::size_t i) const { return input_mb_[i]; }
  // Total work across all nodes (benches: offered load per graph).
  [[nodiscard]] double total_work() const;

 private:
  std::vector<DagNode> nodes_;
  std::vector<DagEdge> edges_;
  // Built by seal():
  std::vector<std::vector<std::size_t>> parents_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> topo_;
  std::vector<double> critical_weight_;
  std::vector<double> input_mb_;
  bool sealed_ = false;
};

// Free-function spelling of TaskGraph::check(), mirroring fault::validate /
// storage::validate: empty string when sane, else the first problem.
[[nodiscard]] std::string validate(const TaskGraph& graph);

}  // namespace vcl::dag
