// DagScheduler: decomposition scheduling of TaskGraphs on a VehicularCloud
// (arXiv 2210.07337's reliability-aware replication, paper §III.A).
//
// The scheduler turns graph nodes into ordinary broker tasks: a node
// becomes *ready* when every parent committed terminal success, at which
// point its attempts are submitted to the cloud (the broker's own
// Scheduler still picks the worker). Intermediate outputs route between
// hosts on the same channel model every task uses — a parent's output
// ships worker->broker on the result path, is parked at the broker per
// child edge, and is consumed as the child's dispatch input
// (input_mb = sum of incoming transfer sizes).
//
// Placement/replication policies at equal replica budget k:
//
//   none        one attempt per node; failures resubmit (up to
//               max_node_attempts) only after the cloud detects them;
//   blind-k     k attempts per node up front, first finisher wins — the
//               classic baseline that pays k× load for every node;
//   reliability-aware
//               one attempt up front; a periodic scan ("dag.check")
//               compares each running host's predicted dwell time against
//               the node's expected remaining execution time and launches
//               a backup attempt only when the host is predicted to leave
//               before the node finishes (dwell < margin × remaining/rate),
//               capped at k live attempts per node. Crashed hosts predict
//               zero dwell, so backups launch before the failure detector
//               even fires.
//
// The scheduler claims the cloud's terminal hook (every attempt's terminal
// transition routes back here), is deterministic per (config, seed), and
// follows the telemetry inertness contract: null trace/oracle = one branch
// per would-be event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dag/task_graph.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/quantile_sketch.h"
#include "util/stats.h"
#include "vcloud/cloud.h"
#include "vcloud/invariant_oracle.h"

namespace vcl::dag {

enum class DagPolicy : std::uint8_t { kNone, kBlindK, kReliabilityAware };

const char* to_string(DagPolicy policy);

struct DagConfig {
  bool enabled = false;        // gate used by core::SystemConfig wiring
  DagPolicy policy = DagPolicy::kNone;
  std::size_t replicas = 2;    // k: attempts per node (blind-k up front;
                               // reliability-aware live-attempt cap)
  std::size_t max_node_attempts = 6;  // total attempt budget per node
  double dwell_margin = 1.25;  // safety factor on expected remaining time
  SimTime check_period = 1.0;  // reliability-aware scan period
  SimTime graph_deadline = 0.0;  // relative deadline per graph (0 = none)
  // TEST-ONLY deliberate bug: when a node's last live attempt fails, the
  // scheduler forgets to resubmit (and to fail the graph) — the node is
  // stranded with zero live attempts on a live graph, which the oracle's
  // dag-node-liveness invariant must catch (tests/dag_test.cpp). Never set
  // outside tests.
  bool test_drop_failed_resubmit = false;
};

// Empty string when sane, else a one-line description of the first problem
// (same contract as storage::validate): k >= 1, attempt budget >= k,
// positive margin/period, and — when the fleet size is known (> 0) — a
// replication factor that the fleet can actually host.
[[nodiscard]] std::string validate(const DagConfig& config,
                                   std::size_t fleet_size = 0);

struct DagStats {
  std::size_t graphs_submitted = 0;
  std::size_t graphs_completed = 0;
  std::size_t graphs_failed = 0;
  std::size_t nodes_submitted = 0;  // attempts handed to the broker
  std::size_t nodes_succeeded = 0;
  std::size_t resubmits = 0;        // failure-driven re-attempts
  std::size_t backups = 0;          // reliability-aware risk backups
  std::size_t blind_replicas = 0;   // blind-k extra up-front attempts
  std::size_t transfers = 0;        // parent->child intermediates routed
  double transfer_mb = 0.0;
  Accumulator makespan{/*keep_samples=*/false};  // graph submit -> complete, s
  Accumulator node_latency{/*keep_samples=*/false};  // ready -> success, s
  QuantileSketch node_latency_tail;
};

class DagScheduler final : public vcloud::DagIntrospection {
 public:
  // Throws std::invalid_argument when validate(config) reports a problem.
  DagScheduler(net::Network& net, vcloud::VehicularCloud& cloud,
               DagConfig config, Rng rng);

  // Claims the cloud's terminal hook and (reliability-aware policy only)
  // schedules the periodic "dag.check" scan. Call once, after the cloud's
  // attach().
  void attach();

  // Submits a sealed graph (seals it if the caller has not); source nodes
  // are handed to the broker immediately. Returns the graph's id.
  std::uint64_t submit_graph(TaskGraph graph, SimTime now);

  [[nodiscard]] const DagStats& stats() const { return stats_; }
  [[nodiscard]] const DagConfig& config() const { return config_; }
  // True when every submitted graph reached a terminal state.
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::size_t active_graphs() const;
  [[nodiscard]] bool graph_completed(std::uint64_t id) const;
  [[nodiscard]] bool graph_failed(std::uint64_t id) const;

  // Deterministic victim resolution for DAG-targeted chaos storms: the
  // worker currently running the heaviest-downstream-critical-weight node
  // of the graph selected by `tag` among live graphs (tag mod count,
  // ascending id). Invalid when nothing qualifies — the injector falls
  // back to its ordinary victim pool.
  [[nodiscard]] VehicleId storm_victim(std::uint64_t tag) const;

  // Nullable hookups, same inertness contract as the cloud's.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  void set_oracle(vcloud::InvariantOracle* oracle) { oracle_ = oracle; }
  // Always-on forensics (DESIGN.md §12): backup launches and graph
  // failures land in the flight recorder.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  // --- DagIntrospection (invariant oracle view) ------------------------------
  void for_each_graph(
      const std::function<void(const vcloud::DagGraphView&)>& fn)
      const override;

 private:
  struct NodeRun {
    bool submitted = false;
    bool succeeded = false;
    std::size_t live = 0;           // attempts not yet terminal
    std::size_t attempt_count = 0;  // attempts ever launched
    std::vector<TaskId> attempts;   // every attempt's broker task id
    SimTime ready_at = 0.0;         // when the node was first submitted
    SimTime finished_at = 0.0;
  };
  struct GraphRun {
    std::uint64_t id = 0;
    TaskGraph graph;
    SimTime submitted_at = 0.0;
    SimTime deadline = 0.0;  // absolute; 0 = none
    std::vector<NodeRun> nodes;
    std::size_t succeeded_count = 0;
    std::size_t intermediates_held = 0;  // parked parent outputs at broker
    bool completed = false;
    bool failed = false;
    obs::TraceContext trace;  // dag.run root span

    [[nodiscard]] bool terminal() const { return completed || failed; }
  };

  // The cloud's terminal hook: routes every attempt terminal back to its
  // node. `task` may dangle once a follow-up submit rehashes the cloud's
  // task table, so everything needed is copied up front.
  void on_task_terminal(const vcloud::Task& task, SimTime now);
  void commit_success(GraphRun& g, std::size_t node, SimTime now);
  void submit_node(GraphRun& g, std::size_t node, SimTime now);
  void submit_attempt(GraphRun& g, std::size_t node, SimTime now);
  void complete_graph(GraphRun& g, SimTime now);
  void fail_graph(GraphRun& g, SimTime now);
  void close_graph_trace(GraphRun& g, SimTime now, double outcome);
  // Periodic reliability-aware scan ("dag.check").
  void reliability_scan();
  [[nodiscard]] bool node_ready(const GraphRun& g, std::size_t node) const;

  net::Network& net_;
  vcloud::VehicularCloud& cloud_;
  DagConfig config_;
  Rng rng_;
  std::map<std::uint64_t, GraphRun> graphs_;  // ordered: deterministic scans
  // Broker task id -> (graph id, node index) for live attempts.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
      task_to_node_;
  std::uint64_t next_graph_id_ = 1;
  DagStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  vcloud::InvariantOracle* oracle_ = nullptr;
};

}  // namespace vcl::dag
