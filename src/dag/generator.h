// Canonical DAG workload shapes (paper §II.C scenario families):
//
//   chain     A->B->C->...            a sensor processing pipeline
//   fork-join source->N maps->reduce  map-reduce over member vehicles
//   diamond   src->{A,B}->fusion      two-branch sensor fusion
//   layered   L layers x W nodes,     randomized mixed workloads; every
//             random inter-layer      non-source node keeps >=1 parent so
//             edges                   no layer is trivially independent
//
// Node work and edge transfer sizes are exponential draws from the
// generator's own forked Rng stream (the usual Rng::fork discipline), so a
// stream of graphs is a pure function of (config, seed).
#pragma once

#include "dag/task_graph.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::dag {

enum class DagShape : std::uint8_t { kChain, kForkJoin, kDiamond, kLayered };

const char* to_string(DagShape shape);

struct DagWorkloadConfig {
  double mean_node_work = 15.0;     // exponential, work units per node
  double mean_transfer_mb = 1.0;    // exponential, MB per edge
  double mean_output_mb = 0.5;      // exponential, MB per node output
  std::size_t chain_length = 6;
  std::size_t fanout = 6;           // fork-join branch count
  std::size_t layers = 4;           // layered-random depth
  std::size_t layer_width = 3;
  double edge_prob = 0.5;           // layered-random inter-layer edge prob
};

class DagWorkloadGenerator {
 public:
  DagWorkloadGenerator(DagWorkloadConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  // One graph of the given shape, sealed and ready to submit.
  [[nodiscard]] TaskGraph make(DagShape shape);
  // Cycles the four shapes deterministically (chain, fork-join, diamond,
  // layered, chain, ...) with fresh random weights each time.
  [[nodiscard]] TaskGraph next();

 private:
  [[nodiscard]] double draw_work() {
    return rng_.exponential(1.0 / config_.mean_node_work);
  }
  [[nodiscard]] double draw_transfer() {
    return rng_.exponential(1.0 / config_.mean_transfer_mb);
  }
  [[nodiscard]] double draw_output() {
    return rng_.exponential(1.0 / config_.mean_output_mb);
  }

  DagWorkloadConfig config_;
  Rng rng_;
  std::size_t next_shape_ = 0;
};

}  // namespace vcl::dag
