#include "dag/task_graph.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vcl::dag {

std::size_t TaskGraph::add_node(DagNode node) {
  sealed_ = false;
  nodes_.push_back(node);
  return nodes_.size() - 1;
}

void TaskGraph::add_edge(std::size_t from, std::size_t to,
                         double transfer_mb) {
  sealed_ = false;
  edges_.push_back(DagEdge{from, to, transfer_mb});
}

std::string TaskGraph::check() const {
  if (nodes_.empty()) return "graph has no nodes";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].work < 0.0) {
      std::ostringstream os;
      os << "node " << i << " has negative work " << nodes_[i].work;
      return os.str();
    }
    if (nodes_[i].output_mb < 0.0) {
      std::ostringstream os;
      os << "node " << i << " has negative output_mb " << nodes_[i].output_mb;
      return os.str();
    }
  }
  for (const DagEdge& e : edges_) {
    if (e.from >= nodes_.size() || e.to >= nodes_.size()) {
      std::ostringstream os;
      os << "edge " << e.from << "->" << e.to << " references a node outside "
         << "0.." << nodes_.size() - 1;
      return os.str();
    }
    if (e.from == e.to) {
      std::ostringstream os;
      os << "edge " << e.from << "->" << e.to << " is a self-loop";
      return os.str();
    }
    if (e.transfer_mb < 0.0) {
      std::ostringstream os;
      os << "edge " << e.from << "->" << e.to << " has negative transfer_mb "
         << e.transfer_mb;
      return os.str();
    }
  }

  // Cycle detection: iterative DFS with tricolor marking. The first edge
  // into a node still on the stack is the back-edge that closes the cycle;
  // naming it makes the error actionable.
  std::vector<std::vector<std::size_t>> children(nodes_.size());
  for (const DagEdge& e : edges_) children[e.from].push_back(e.to);
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nodes_.size(), kWhite);
  for (std::size_t root = 0; root < nodes_.size(); ++root) {
    if (color[root] != kWhite) continue;
    // Stack of (node, next-child cursor).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [u, cursor] = stack.back();
      if (cursor == children[u].size()) {
        color[u] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::size_t v = children[u][cursor++];
      if (color[v] == kGray) {
        std::ostringstream os;
        os << "cycle: back-edge " << u << "->" << v
           << " closes a dependency cycle";
        return os.str();
      }
      if (color[v] == kWhite) {
        color[v] = kGray;
        stack.emplace_back(v, 0);
      }
    }
  }
  return {};
}

void TaskGraph::seal() {
  const std::string problem = check();
  if (!problem.empty()) {
    throw std::invalid_argument("TaskGraph: " + problem);
  }
  parents_.assign(nodes_.size(), {});
  children_.assign(nodes_.size(), {});
  input_mb_.assign(nodes_.size(), 0.0);
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const DagEdge& e : edges_) {
    children_[e.from].push_back(e.to);
    parents_[e.to].push_back(e.from);
    input_mb_[e.to] += e.transfer_mb;
    ++indegree[e.to];
  }
  for (auto& v : parents_) std::sort(v.begin(), v.end());
  for (auto& v : children_) std::sort(v.begin(), v.end());

  // Kahn's algorithm, always taking the smallest ready index: the order is
  // deterministic regardless of edge insertion order.
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.insert(i);
  }
  while (!ready.empty()) {
    const std::size_t u = *ready.begin();
    ready.erase(ready.begin());
    topo_.push_back(u);
    for (const std::size_t v : children_[u]) {
      if (--indegree[v] == 0) ready.insert(v);
    }
  }

  // Downstream critical weight: reverse topological DP.
  critical_weight_.assign(nodes_.size(), 0.0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const std::size_t u = *it;
    double heaviest_child = 0.0;
    for (const std::size_t v : children_[u]) {
      heaviest_child = std::max(heaviest_child, critical_weight_[v]);
    }
    critical_weight_[u] = nodes_[u].work + heaviest_child;
  }
  sealed_ = true;
}

double TaskGraph::total_work() const {
  double sum = 0.0;
  for (const DagNode& n : nodes_) sum += n.work;
  return sum;
}

std::string validate(const TaskGraph& graph) { return graph.check(); }

}  // namespace vcl::dag
