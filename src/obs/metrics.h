// MetricsRegistry: named runtime metrics plus a periodic time-series
// sampler (DESIGN.md §6).
//
// Components register metrics once at wiring time — counters they bump,
// gauges the registry polls, histograms they feed — under dotted
// `subsystem.noun.verb` names ("net.unicast.sent", "cloud.member.count").
// The sampler rides Simulator::schedule_every and snapshots every metric
// each period; the resulting time series exports to CSV and JSON so a run's
// dynamics (queue depth over time, member churn, detection latency) are a
// plot away instead of a single end-of-run number.
//
// Registration is O(log n) map insertion; the handles returned are stable
// for the registry's lifetime (node-based map), so the per-event cost of a
// counter bump is one pointer-indirect add.
#pragma once

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/quantile_sketch.h"
#include "util/stats.h"
#include "util/time.h"

namespace vcl::obs {

class MetricsRegistry {
 public:
  // Monotonic count (events, bytes, kills). Double-valued so work units
  // and megabytes fit too.
  class Counter {
   public:
    void inc(double d = 1.0) { value_ += d; }
    [[nodiscard]] double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  using GaugeFn = std::function<double()>;

  // Returns the counter registered under `name`, creating it on first use.
  Counter& counter(const std::string& name);
  // Registers (or replaces) a polled gauge.
  void gauge(const std::string& name, GaugeFn fn);
  // Returns the distribution registered under `name` (samples retained for
  // percentile queries; use Accumulator::merge to fold per-component ones).
  // Memory grows with sample count — prefer sketch() for hot paths.
  Accumulator& histogram(const std::string& name);
  // Returns the tail-quantile sketch registered under `name`: fixed-memory
  // DDSketch-style distribution for hot paths that stream millions of
  // observations. Contributes `<name>.count/.p50/.p99/.p999` columns to the
  // sampled time series and a full snapshot to sketches.json on export.
  QuantileSketch& sketch(const std::string& name);
  // Registers a component-owned sketch by reference (the sketch analogue of
  // a gauge: the component feeds it on its hot path, the registry samples
  // and exports it). The sketch must outlive the registry's sampling run.
  void sketch_view(const std::string& name, const QuantileSketch& s);

  // Current value of any metric by name (histograms report their mean,
  // sketches their p99); 0 when unknown.
  [[nodiscard]] double value(const std::string& name) const;
  [[nodiscard]] std::size_t metric_count() const;

  // --- time series ------------------------------------------------------------
  // Samples every metric each `period` sim-seconds. Columns are fixed at
  // the first sample (sorted metric names; histograms contribute
  // `<name>.count` and `<name>.mean`); metrics registered after that are
  // picked up only by a fresh sampling run.
  void start_sampling(sim::Simulator& sim, SimTime period);
  // Takes one snapshot now (also what the periodic sampler calls).
  void sample(SimTime now);

  [[nodiscard]] const std::vector<std::string>& series_columns() const {
    return columns_;
  }
  // True when any sketch (owned or view) is registered.
  [[nodiscard]] bool has_sketches() const {
    return !sketches_.empty() || !sketch_views_.empty();
  }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

  // CSV: header `t,<col>,...` then one row per sample.
  void write_csv(std::ostream& os) const;
  // JSON: {"columns":[...],"samples":[[t,...],...]}
  void write_json(std::ostream& os) const;
  // Full sketch snapshots, one vcl-sketch-v1 document: every registered
  // sketch's layout + bucket counts, so tools (vcl_report) can reconstruct
  // and merge exact quantile state across replications.
  void write_sketches_json(std::ostream& os) const;

 private:
  void capture_columns();
  [[nodiscard]] std::vector<double> snapshot_row() const;
  // Owned sketch or registered view under `name`; nullptr when unknown.
  [[nodiscard]] const QuantileSketch* find_sketch(const std::string& name) const;

  struct Sample {
    SimTime t;
    std::vector<double> values;
  };

  // std::map: deterministic column order and stable node addresses.
  std::map<std::string, Counter> counters_;
  std::map<std::string, GaugeFn> gauges_;
  std::map<std::string, Accumulator> histograms_;
  std::map<std::string, QuantileSketch> sketches_;
  std::map<std::string, const QuantileSketch*> sketch_views_;
  std::vector<std::string> columns_;
  std::vector<Sample> samples_;
};

}  // namespace vcl::obs
