// Trace analysis: turn an exported trace JSONL back into per-task causal
// trees and a critical-path latency breakdown (DESIGN.md §8).
//
// The paper's dependability question (§V) is *where* a task's latency goes
// when the cloud churns underneath it: queueing at the broker, dispatch and
// result transfer over the lossy V2V channel, compute on the worker, or
// crash detection + recovery. The cloud emits contiguous `leg.*` spans that
// partition each task's lifetime; this module reassembles them per trace_id
// and reduces each tree to one breakdown row whose legs sum to the
// end-to-end latency. `tools/vcl_traceview` is a thin CLI over this.
//
// The parser understands exactly the flat JSONL the TraceRecorder writes
// (one object per line, string/number values, a leading metadata record) —
// it is not a general JSON parser.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace vcl::obs {

// One parsed JSONL line.
struct ParsedEvent {
  double t = 0.0;
  std::string cat;
  std::string name;
  char ph = 'i';  // 'i' instant, 'B' begin, 'E' end
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::map<std::string, double> fields;  // every other numeric key
};

// The leading metadata record: ring completeness accounting.
struct TraceMeta {
  bool present = false;
  std::uint64_t capacity = 0;
  std::uint64_t recorded = 0;
  std::uint64_t retained = 0;
  std::uint64_t overwritten = 0;
  std::uint64_t dropped_fields = 0;

  // A wrapped ring lost its oldest events: span pairing is best-effort.
  [[nodiscard]] bool complete() const { return present && overwritten == 0; }
};

// Parses recorder-shaped JSONL. Returns false (with `error` set) on a
// malformed line; unknown keys are kept as numeric fields when numeric and
// ignored otherwise.
bool parse_trace_jsonl(std::istream& is, std::vector<ParsedEvent>& out,
                       TraceMeta& meta, std::string* error = nullptr);

// A reassembled duration span.
struct Span {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  double begin = 0.0;
  double end = -1.0;  // < 0: orphaned (no end retained)
  std::map<std::string, double> fields;  // begin fields, end fields merged in

  [[nodiscard]] bool closed() const { return end >= 0.0; }
  [[nodiscard]] double duration() const { return closed() ? end - begin : 0.0; }
};

// Critical-path latency decomposition of one task's causal tree. The four
// legs partition [submit, finish]; `other` catches any uncovered remainder
// (nonzero only when the ring wrapped or the run ended mid-task).
struct TaskBreakdown {
  std::uint64_t trace_id = 0;
  double task = -1.0;  // task id (root span field), -1 when absent
  std::string outcome = "open";  // completed / expired / failed / open
  double submit = 0.0;
  double finish = 0.0;   // == submit while the root span is still open
  double queueing = 0.0;  // broker queue (incl. post-recovery requeues)
  double network = 0.0;   // dispatch ack wait + input transfer + result return
  double compute = 0.0;   // execution on the worker (input time excluded)
  double recovery = 0.0;  // crash -> declared dead -> requeued, migrations
  double other = 0.0;     // lifetime not covered by any closed leg span
  int retries = 0;        // task.retry instants in the tree
  int crashes = 0;        // exec legs ended by a worker crash
  int migrations = 0;     // migration legs
  std::size_t orphaned_spans = 0;  // begun, never closed
  std::vector<Span> spans;         // the tree, in begin order

  [[nodiscard]] double end_to_end() const { return finish - submit; }
  [[nodiscard]] double legs_sum() const {
    return queueing + network + compute + recovery + other;
  }
};

// Groups span/instant events by trace_id and reduces each tree.
class TraceAnalysis {
 public:
  explicit TraceAnalysis(const std::vector<ParsedEvent>& events);

  // One breakdown per trace_id, ordered by trace_id.
  [[nodiscard]] const std::vector<TaskBreakdown>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] const TaskBreakdown* find(std::uint64_t trace_id) const;

  // Diagnostics across all trees.
  [[nodiscard]] std::size_t orphaned_spans() const { return orphaned_; }
  // End events whose begin was overwritten by the ring.
  [[nodiscard]] std::size_t unmatched_ends() const { return unmatched_ends_; }

  // Human-readable report: per-task table, aggregate legs, diagnostics.
  void write_report(std::ostream& os, const TraceMeta& meta) const;
  // Machine-readable equivalent (one JSON document).
  void write_json(std::ostream& os, const TraceMeta& meta) const;

 private:
  std::vector<TaskBreakdown> tasks_;
  std::size_t orphaned_ = 0;
  std::size_t unmatched_ends_ = 0;
};

}  // namespace vcl::obs
