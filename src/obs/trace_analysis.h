// Trace analysis: turn an exported trace JSONL back into per-task causal
// trees and a critical-path latency breakdown (DESIGN.md §8).
//
// The paper's dependability question (§V) is *where* a task's latency goes
// when the cloud churns underneath it: queueing at the broker, dispatch and
// result transfer over the lossy V2V channel, compute on the worker, or
// crash detection + recovery. The cloud emits contiguous `leg.*` spans that
// partition each task's lifetime; this module reassembles them per trace_id
// and reduces each tree to one breakdown row whose legs sum to the
// end-to-end latency. `tools/vcl_traceview` is a thin CLI over this.
//
// The parser understands exactly the flat JSONL the TraceRecorder writes
// (one object per line, string/number values, a leading metadata record) —
// it is not a general JSON parser.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace vcl::obs {

// One parsed JSONL line.
struct ParsedEvent {
  double t = 0.0;
  std::string cat;
  std::string name;
  char ph = 'i';  // 'i' instant, 'B' begin, 'E' end
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::map<std::string, double> fields;  // every other numeric key
};

// The leading metadata record: ring completeness accounting.
struct TraceMeta {
  bool present = false;
  std::uint64_t capacity = 0;
  std::uint64_t recorded = 0;
  std::uint64_t retained = 0;
  std::uint64_t overwritten = 0;
  std::uint64_t dropped_fields = 0;

  // A wrapped ring lost its oldest events: span pairing is best-effort.
  [[nodiscard]] bool complete() const { return present && overwritten == 0; }
};

// Parses recorder-shaped JSONL. Returns false (with `error` set) on a
// malformed line; unknown keys are kept as numeric fields when numeric and
// ignored otherwise.
bool parse_trace_jsonl(std::istream& is, std::vector<ParsedEvent>& out,
                       TraceMeta& meta, std::string* error = nullptr);

// A fault window [start, end] in absolute sim time, as stamped by the
// injector's "fault.window" annotation (with "fault.blackout.start"
// {duration} understood as a fallback for traces predating the
// annotation). Windows are the storm-attribution ground truth: any
// task/storage-op lifetime overlapping one counts as in-storm time.
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] bool contains(double t) const {
    return t >= start && t <= end;
  }
};

// Extracts fault windows from parsed events and merges overlaps: the
// result is sorted and disjoint (a union, so overlap accounting never
// double-counts concurrent storms).
[[nodiscard]] std::vector<FaultWindow> extract_fault_windows(
    const std::vector<ParsedEvent>& events);

// Seconds of [begin, end] covered by the (disjoint, sorted) window union.
[[nodiscard]] double storm_overlap(const std::vector<FaultWindow>& windows,
                                   double begin, double end);

// A reassembled duration span.
struct Span {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  double begin = 0.0;
  double end = -1.0;  // < 0: orphaned (no end retained)
  std::map<std::string, double> fields;  // begin fields, end fields merged in

  [[nodiscard]] bool closed() const { return end >= 0.0; }
  [[nodiscard]] double duration() const { return closed() ? end - begin : 0.0; }
};

// Critical-path latency decomposition of one task's causal tree. The four
// legs partition [submit, finish]; `other` catches any uncovered remainder
// (nonzero only when the ring wrapped or the run ended mid-task).
struct TaskBreakdown {
  std::uint64_t trace_id = 0;
  double task = -1.0;  // task id (root span field), -1 when absent
  std::string outcome = "open";  // completed / expired / failed / open
  double submit = 0.0;
  double finish = 0.0;   // == submit while the root span is still open
  double queueing = 0.0;  // broker queue (incl. post-recovery requeues)
  double network = 0.0;   // dispatch ack wait + input transfer + result return
  double compute = 0.0;   // execution on the worker (input time excluded)
  double recovery = 0.0;  // crash -> declared dead -> requeued, migrations
  double other = 0.0;     // lifetime not covered by any closed leg span
  int retries = 0;        // task.retry instants in the tree
  int crashes = 0;        // exec legs ended by a worker crash
  int migrations = 0;     // migration legs
  double storm = 0.0;     // lifetime seconds inside injected fault windows
  std::size_t orphaned_spans = 0;  // begun, never closed
  std::vector<Span> spans;         // the tree, in begin order

  [[nodiscard]] double end_to_end() const { return finish - submit; }
  // Lifetime outside every fault window (e2e == storm + clear_sky).
  [[nodiscard]] double clear_sky() const { return end_to_end() - storm; }
  [[nodiscard]] double legs_sum() const {
    return queueing + network + compute + recovery + other;
  }
};

// One storage operation's causal tree, reduced. Roots named
// "storage.put" / "storage.get" / "storage.repair" route here instead of
// the task breakdown; attempt legs partition the op's virtual timeline
// (legs == e2e for closed ops), and the replica instants in the tree
// carry the holder set the op touched.
struct StorageOpBreakdown {
  std::uint64_t trace_id = 0;
  std::string kind;        // "put" / "get" / "repair"
  double object = -1.0;    // object id (root span field), -1 when absent
  double begin = 0.0;
  double end = 0.0;
  bool closed = false;     // root span end retained
  bool ok = false;         // put acked / get answered / repair always true
  bool degraded = false;   // stale-risk get
  int attempts = 0;        // storage.leg.attempt spans seen
  double legs = 0.0;       // summed closed attempt-leg durations
  double storm = 0.0;      // op seconds inside injected fault windows
  bool in_storm = false;   // overlaps a window (true for zero-length ops
                           // that *start* inside one, e.g. repair cycles)
  std::vector<std::uint64_t> replicas;  // holders, ascending, deduplicated

  [[nodiscard]] double e2e() const { return end - begin; }
};

// One DAG node's reduced latency inside a dag.run tree. The winning
// (successful) attempt's leg spans are classified exactly like a
// standalone task's — queue / network / compute / recovery partition the
// attempt's task.life lifetime, `other` catches whatever no closed leg
// covers. For a complete trace |other| ~ 0 for every completed node; that
// is the partition invariant `vcl_traceview --dag` asserts.
struct DagNodeBreakdown {
  std::size_t node = 0;   // node index within the graph
  double task = -1.0;     // winning attempt's task id, -1 when none seen
  int attempts = 0;       // dag.node submission instants for this node
  std::string outcome = "open";  // completed / expired / failed / open
  double submit = 0.0;    // winning attempt's task.life begin
  double finish = 0.0;    // == submit while still open
  double queueing = 0.0;
  double network = 0.0;
  double compute = 0.0;
  double recovery = 0.0;
  double other = 0.0;     // lifetime not covered by any closed leg span
  int crashes = 0;        // exec legs (any attempt) ended by a crash
  bool on_critical_path = false;

  [[nodiscard]] double end_to_end() const { return finish - submit; }
  [[nodiscard]] double legs_sum() const {
    return queueing + network + compute + recovery + other;
  }
};

// One DAG run's causal tree, reduced: the dag.run root span, its per-node
// winning-attempt breakdowns, the dependency edges (from dag.edge
// instants), and the measured critical path — the dependency chain whose
// summed node end-to-end latencies is longest. This is the *true* critical
// path of the run as executed (retries, backup attempts and storms
// included), not the static critical weight of the graph.
struct DagRunBreakdown {
  std::uint64_t trace_id = 0;
  double graph = -1.0;    // graph id (root span field), -1 when absent
  std::string outcome = "open";  // completed / failed / open
  double begin = 0.0;
  double end = 0.0;       // last event time while the root is still open
  bool closed = false;    // root span end retained
  std::size_t nodes_declared = 0;  // "nodes" field on the root span
  std::vector<DagNodeBreakdown> nodes;  // indexed by node id
  // Dependency edges (from, to) reconstructed from dag.edge instants.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::vector<std::size_t> critical_path;  // node ids, source -> sink
  double critical_len = 0.0;  // summed node e2e along critical_path
  // max |other| over completed nodes: 0 for a complete, clean trace.
  double partition_max_dev = 0.0;
  double storm = 0.0;     // run seconds inside injected fault windows

  [[nodiscard]] double makespan() const { return end - begin; }
};

// Groups span/instant events by trace_id and reduces each tree: task roots
// (task.life) to TaskBreakdowns, storage roots to StorageOpBreakdowns,
// dag.run roots to DagRunBreakdowns. Trees with any other root name are
// skipped and counted in unknown_roots() — a newer recorder never crashes
// an older analyzer.
class TraceAnalysis {
 public:
  explicit TraceAnalysis(const std::vector<ParsedEvent>& events);

  // One breakdown per trace_id, ordered by trace_id.
  [[nodiscard]] const std::vector<TaskBreakdown>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] const TaskBreakdown* find(std::uint64_t trace_id) const;
  [[nodiscard]] const std::vector<StorageOpBreakdown>& storage_ops() const {
    return storage_ops_;
  }
  // One breakdown per dag.run tree, ordered by trace_id.
  [[nodiscard]] const std::vector<DagRunBreakdown>& dags() const {
    return dags_;
  }
  // Injected fault windows (sorted, disjoint) the breakdowns were
  // attributed against.
  [[nodiscard]] const std::vector<FaultWindow>& fault_windows() const {
    return windows_;
  }

  // Diagnostics across all trees.
  [[nodiscard]] std::size_t orphaned_spans() const { return orphaned_; }
  // End events whose begin was overwritten by the ring.
  [[nodiscard]] std::size_t unmatched_ends() const { return unmatched_ends_; }
  // Trees whose root span name is neither task.life nor storage.* —
  // skipped, not fatal.
  [[nodiscard]] std::size_t unknown_roots() const { return unknown_roots_; }

  // Human-readable report: per-task table, aggregate legs, diagnostics.
  void write_report(std::ostream& os, const TraceMeta& meta) const;
  // Per-object storage breakdown (put/get/repair latency, storm split).
  void write_storage_report(std::ostream& os, const TraceMeta& meta) const;
  // Per-DAG-run breakdown: node table, measured critical path, partition
  // deviation (vcl_traceview --dag).
  void write_dag_report(std::ostream& os, const TraceMeta& meta) const;
  // Machine-readable equivalent (one JSON document: tasks + storage ops +
  // fault windows + diagnostics).
  void write_json(std::ostream& os, const TraceMeta& meta) const;

 private:
  void write_diagnostics(std::ostream& os, const TraceMeta& meta) const;
  void reduce_dag(std::uint64_t trace_id, const std::vector<Span>& spans,
                  const std::vector<const ParsedEvent*>& evs,
                  const Span* root, double last_t);

  std::vector<TaskBreakdown> tasks_;
  std::vector<StorageOpBreakdown> storage_ops_;
  std::vector<DagRunBreakdown> dags_;
  std::vector<FaultWindow> windows_;
  std::size_t orphaned_ = 0;
  std::size_t unmatched_ends_ = 0;
  std::size_t unknown_roots_ = 0;
};

}  // namespace vcl::obs
