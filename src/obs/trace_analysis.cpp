#include "obs/trace_analysis.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"
#include "util/table.h"

namespace vcl::obs {

namespace {

// ---- flat JSONL line scanner ------------------------------------------------

struct Scanner {
  const std::string& line;
  std::size_t pos = 0;

  explicit Scanner(const std::string& l) : line(l) {}

  void skip_ws() {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < line.size() && line[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos < line.size() ? line[pos] : '\0';
  }

  bool read_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < line.size()) {
      const char c = line[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < line.size()) {
        const char esc = line[pos++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Decoded only far enough to stay in sync; recorder names are
            // ASCII string literals so this never fires in practice.
            pos = std::min(pos + 4, line.size());
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool read_number(double& out) {
    skip_ws();
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

bool parse_line(const std::string& line, ParsedEvent& ev, bool& is_meta,
                TraceMeta& meta, std::string* error) {
  Scanner s(line);
  if (!s.eat('{')) {
    if (error != nullptr) *error = "line does not start with '{'";
    return false;
  }
  is_meta = false;
  bool first = true;
  while (true) {
    if (s.eat('}')) break;
    if (!first && !s.eat(',')) {
      if (error != nullptr) *error = "expected ',' between members";
      return false;
    }
    first = false;
    std::string key;
    if (!s.read_string(key) || !s.eat(':')) {
      if (error != nullptr) *error = "malformed key";
      return false;
    }
    if (s.peek() == '"') {
      std::string value;
      if (!s.read_string(value)) {
        if (error != nullptr) *error = "unterminated string value";
        return false;
      }
      if (key == "cat") {
        ev.cat = value;
      } else if (key == "name") {
        ev.name = value;
      } else if (key == "ph") {
        ev.ph = value.empty() ? 'i' : value[0];
      } else if (key == "meta") {
        is_meta = true;
      }
      continue;
    }
    double num = 0.0;
    if (std::isalpha(static_cast<unsigned char>(s.peek()))) {
      // Tolerate null/true/false values: consume the word, keep nothing.
      while (s.pos < line.size() &&
             std::isalpha(static_cast<unsigned char>(line[s.pos]))) {
        ++s.pos;
      }
      continue;
    }
    if (!s.read_number(num)) {
      if (error != nullptr) *error = "malformed value for key '" + key + "'";
      return false;
    }
    if (key == "t") {
      ev.t = num;
    } else if (key == "trace") {
      ev.trace_id = static_cast<std::uint64_t>(num);
    } else if (key == "span") {
      ev.span_id = static_cast<std::uint64_t>(num);
    } else if (key == "parent") {
      ev.parent_id = static_cast<std::uint64_t>(num);
    } else if (key == "capacity") {
      meta.capacity = static_cast<std::uint64_t>(num);
    } else if (key == "recorded") {
      meta.recorded = static_cast<std::uint64_t>(num);
    } else if (key == "retained") {
      meta.retained = static_cast<std::uint64_t>(num);
    } else if (key == "overwritten") {
      meta.overwritten = static_cast<std::uint64_t>(num);
    } else if (key == "dropped_fields") {
      meta.dropped_fields = static_cast<std::uint64_t>(num);
    } else {
      ev.fields[key] = num;
    }
  }
  return true;
}

std::string outcome_label(double code) {
  if (code == kOutcomeCompleted) return "completed";
  if (code == kOutcomeExpired) return "expired";
  if (code == kOutcomeFailed) return "failed";
  return "unknown";
}

}  // namespace

bool parse_trace_jsonl(std::istream& is, std::vector<ParsedEvent>& out,
                       TraceMeta& meta, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    ParsedEvent ev;
    bool is_meta = false;
    std::string why;
    if (!parse_line(line, ev, is_meta, meta, &why)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " + why;
      }
      return false;
    }
    if (is_meta) {
      meta.present = true;
      continue;
    }
    out.push_back(std::move(ev));
  }
  return true;
}

TraceAnalysis::TraceAnalysis(const std::vector<ParsedEvent>& events) {
  // Group by trace id, preserving event order within each tree.
  std::map<std::uint64_t, std::vector<const ParsedEvent*>> by_trace;
  for (const ParsedEvent& ev : events) {
    if (ev.trace_id != 0) by_trace[ev.trace_id].push_back(&ev);
  }

  for (const auto& [trace_id, evs] : by_trace) {
    TaskBreakdown task;
    task.trace_id = trace_id;

    // Reassemble spans: begins open, ends close (by span id).
    std::map<std::uint64_t, std::size_t> open;  // span id -> index in spans
    for (const ParsedEvent* ev : evs) {
      if (ev->ph == 'B') {
        Span span;
        span.name = ev->name;
        span.span_id = ev->span_id;
        span.parent_id = ev->parent_id;
        span.begin = ev->t;
        span.fields = ev->fields;
        open[span.span_id] = task.spans.size();
        task.spans.push_back(std::move(span));
      } else if (ev->ph == 'E') {
        auto it = open.find(ev->span_id);
        if (it == open.end()) {
          ++unmatched_ends_;  // begin lost to the ring
          continue;
        }
        Span& span = task.spans[it->second];
        span.end = ev->t;
        for (const auto& [k, v] : ev->fields) span.fields[k] = v;
        open.erase(it);
      } else if (ev->name == "task.retry") {
        ++task.retries;
      }
    }

    // Root span: the parentless one (task.life). Without it (ring wrap) the
    // tree still reports legs, anchored to the earliest/latest event seen.
    const Span* root = nullptr;
    for (const Span& s : task.spans) {
      if (s.parent_id == 0) {
        root = &s;
        break;
      }
    }
    double last_t = evs.empty() ? 0.0 : evs.back()->t;
    if (root != nullptr) {
      task.submit = root->begin;
      auto it = root->fields.find("task");
      if (it != root->fields.end()) task.task = it->second;
      if (root->closed()) {
        task.finish = root->end;
        auto oc = root->fields.find("outcome");
        task.outcome =
            oc != root->fields.end() ? outcome_label(oc->second) : "unknown";
      } else {
        task.finish = std::max(last_t, task.submit);
        task.outcome = "open";
      }
    } else {
      task.submit = evs.empty() ? 0.0 : evs.front()->t;
      task.finish = last_t;
      task.outcome = "open";
    }

    for (const Span& s : task.spans) {
      if (!s.closed()) {
        if (&s != root) ++task.orphaned_spans;
        continue;
      }
      if (s.parent_id == 0) continue;  // the root itself
      const double dur = s.duration();
      if (s.name == "leg.queue") {
        task.queueing += dur;
      } else if (s.name == "leg.dispatch" || s.name == "leg.result") {
        task.network += dur;
      } else if (s.name == "leg.exec") {
        // The exec leg starts with the input transfer (its planned length
        // rides the span as "input_s"); that slice is network, the rest is
        // compute. A crash can end the leg mid-transfer, hence the clamp.
        double input = 0.0;
        auto it = s.fields.find("input_s");
        if (it != s.fields.end()) input = std::min(it->second, dur);
        task.network += input;
        task.compute += dur - input;
      } else if (s.name == "leg.recover" || s.name == "leg.migrate") {
        task.recovery += dur;
        if (s.name == "leg.migrate") ++task.migrations;
      }
      // Any other span name falls into the residual below.
      auto crashed = s.fields.find("crashed");
      if (crashed != s.fields.end() && crashed->second > 0.0) ++task.crashes;
    }
    // Residual lifetime no classified leg covers (ring wrap, still-open
    // legs): keeps legs_sum() == end_to_end() by construction.
    task.other = task.end_to_end() - (task.queueing + task.network +
                                      task.compute + task.recovery);
    orphaned_ += task.orphaned_spans;
    tasks_.push_back(std::move(task));
  }
}

const TaskBreakdown* TraceAnalysis::find(std::uint64_t trace_id) const {
  for (const TaskBreakdown& t : tasks_) {
    if (t.trace_id == trace_id) return &t;
  }
  return nullptr;
}

void TraceAnalysis::write_report(std::ostream& os,
                                 const TraceMeta& meta) const {
  Table table("per-task critical-path latency breakdown (seconds)",
              {"trace", "task", "outcome", "e2e", "queue", "network",
               "compute", "recovery", "other", "retries", "crashes"});
  double sum_e2e = 0, sum_q = 0, sum_n = 0, sum_c = 0, sum_r = 0, sum_o = 0;
  std::size_t closed = 0;
  for (const TaskBreakdown& t : tasks_) {
    table.add_row({std::to_string(t.trace_id),
                   t.task >= 0 ? Table::num(t.task, 0) : "?", t.outcome,
                   Table::num(t.end_to_end(), 3), Table::num(t.queueing, 3),
                   Table::num(t.network, 3), Table::num(t.compute, 3),
                   Table::num(t.recovery, 3), Table::num(t.other, 3),
                   std::to_string(t.retries), std::to_string(t.crashes)});
    if (t.outcome != "open") {
      sum_e2e += t.end_to_end();
      sum_q += t.queueing;
      sum_n += t.network;
      sum_c += t.compute;
      sum_r += t.recovery;
      sum_o += t.other;
      ++closed;
    }
  }
  table.print(os);
  if (closed > 0) {
    const double n = static_cast<double>(closed);
    os << "\naggregate over " << closed
       << " finished tasks (mean seconds/task):\n"
       << "  e2e " << Table::num(sum_e2e / n, 3) << " = queue "
       << Table::num(sum_q / n, 3) << " + network " << Table::num(sum_n / n, 3)
       << " + compute " << Table::num(sum_c / n, 3) << " + recovery "
       << Table::num(sum_r / n, 3) << " + other " << Table::num(sum_o / n, 3)
       << "\n";
  }
  os << "\ndiagnostics:\n";
  if (meta.present) {
    os << "  ring: " << meta.recorded << " recorded, " << meta.overwritten
       << " overwritten"
       << (meta.complete() ? " (complete trace)" : " (RING WRAPPED: pairing is best-effort)")
       << ", " << meta.dropped_fields << " dropped fields\n";
  } else {
    os << "  ring: no metadata record (pre-metadata trace or truncated file)\n";
  }
  os << "  orphaned spans (begun, never closed): " << orphaned_ << "\n"
     << "  unmatched ends (begin overwritten): " << unmatched_ends_ << "\n";
}

void TraceAnalysis::write_json(std::ostream& os, const TraceMeta& meta) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-traceview-v1");
  w.key("meta").begin_object();
  w.key("present").value(meta.present);
  w.key("recorded").value(meta.recorded);
  w.key("overwritten").value(meta.overwritten);
  w.key("dropped_fields").value(meta.dropped_fields);
  w.key("complete").value(meta.complete());
  w.end_object();
  w.key("tasks").begin_array();
  for (const TaskBreakdown& t : tasks_) {
    w.begin_object();
    w.key("trace").value(t.trace_id);
    w.key("task").value(t.task);
    w.key("outcome").value(t.outcome);
    w.key("e2e").value(t.end_to_end());
    w.key("queue").value(t.queueing);
    w.key("network").value(t.network);
    w.key("compute").value(t.compute);
    w.key("recovery").value(t.recovery);
    w.key("other").value(t.other);
    w.key("retries").value(static_cast<std::uint64_t>(
        t.retries < 0 ? 0 : t.retries));
    w.key("crashes").value(static_cast<std::uint64_t>(
        t.crashes < 0 ? 0 : t.crashes));
    w.key("migrations").value(static_cast<std::uint64_t>(
        t.migrations < 0 ? 0 : t.migrations));
    w.key("orphaned_spans").value(
        static_cast<std::uint64_t>(t.orphaned_spans));
    w.end_object();
  }
  w.end_array();
  w.key("diagnostics").begin_object();
  w.key("orphaned_spans").value(static_cast<std::uint64_t>(orphaned_));
  w.key("unmatched_ends").value(static_cast<std::uint64_t>(unmatched_ends_));
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
