#include "obs/trace_analysis.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"
#include "util/table.h"

namespace vcl::obs {

namespace {

// ---- flat JSONL line scanner ------------------------------------------------

struct Scanner {
  const std::string& line;
  std::size_t pos = 0;

  explicit Scanner(const std::string& l) : line(l) {}

  void skip_ws() {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < line.size() && line[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos < line.size() ? line[pos] : '\0';
  }

  bool read_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < line.size()) {
      const char c = line[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < line.size()) {
        const char esc = line[pos++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Decoded only far enough to stay in sync; recorder names are
            // ASCII string literals so this never fires in practice.
            pos = std::min(pos + 4, line.size());
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool read_number(double& out) {
    skip_ws();
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

bool parse_line(const std::string& line, ParsedEvent& ev, bool& is_meta,
                TraceMeta& meta, std::string* error) {
  Scanner s(line);
  if (!s.eat('{')) {
    if (error != nullptr) *error = "line does not start with '{'";
    return false;
  }
  is_meta = false;
  bool first = true;
  while (true) {
    if (s.eat('}')) break;
    if (!first && !s.eat(',')) {
      if (error != nullptr) *error = "expected ',' between members";
      return false;
    }
    first = false;
    std::string key;
    if (!s.read_string(key) || !s.eat(':')) {
      if (error != nullptr) *error = "malformed key";
      return false;
    }
    if (s.peek() == '"') {
      std::string value;
      if (!s.read_string(value)) {
        if (error != nullptr) *error = "unterminated string value";
        return false;
      }
      if (key == "cat") {
        ev.cat = value;
      } else if (key == "name") {
        ev.name = value;
      } else if (key == "ph") {
        ev.ph = value.empty() ? 'i' : value[0];
      } else if (key == "meta") {
        is_meta = true;
      }
      continue;
    }
    double num = 0.0;
    if (std::isalpha(static_cast<unsigned char>(s.peek()))) {
      // Tolerate null/true/false values: consume the word, keep nothing.
      while (s.pos < line.size() &&
             std::isalpha(static_cast<unsigned char>(line[s.pos]))) {
        ++s.pos;
      }
      continue;
    }
    if (!s.read_number(num)) {
      if (error != nullptr) *error = "malformed value for key '" + key + "'";
      return false;
    }
    if (key == "t") {
      ev.t = num;
    } else if (key == "trace") {
      ev.trace_id = static_cast<std::uint64_t>(num);
    } else if (key == "span") {
      ev.span_id = static_cast<std::uint64_t>(num);
    } else if (key == "parent") {
      ev.parent_id = static_cast<std::uint64_t>(num);
    } else if (key == "capacity") {
      meta.capacity = static_cast<std::uint64_t>(num);
    } else if (key == "recorded") {
      meta.recorded = static_cast<std::uint64_t>(num);
    } else if (key == "retained") {
      meta.retained = static_cast<std::uint64_t>(num);
    } else if (key == "overwritten") {
      meta.overwritten = static_cast<std::uint64_t>(num);
    } else if (key == "dropped_fields") {
      meta.dropped_fields = static_cast<std::uint64_t>(num);
    } else {
      ev.fields[key] = num;
    }
  }
  return true;
}

std::string outcome_label(double code) {
  if (code == kOutcomeCompleted) return "completed";
  if (code == kOutcomeExpired) return "expired";
  if (code == kOutcomeFailed) return "failed";
  return "unknown";
}

}  // namespace

bool parse_trace_jsonl(std::istream& is, std::vector<ParsedEvent>& out,
                       TraceMeta& meta, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    ParsedEvent ev;
    bool is_meta = false;
    std::string why;
    if (!parse_line(line, ev, is_meta, meta, &why)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " + why;
      }
      return false;
    }
    if (is_meta) {
      meta.present = true;
      continue;
    }
    out.push_back(std::move(ev));
  }
  return true;
}

TraceAnalysis::TraceAnalysis(const std::vector<ParsedEvent>& events) {
  // Fault windows first: both task and storage breakdowns are attributed
  // against them below.
  windows_ = extract_fault_windows(events);

  // Group by trace id, preserving event order within each tree.
  std::map<std::uint64_t, std::vector<const ParsedEvent*>> by_trace;
  for (const ParsedEvent& ev : events) {
    if (ev.trace_id != 0) by_trace[ev.trace_id].push_back(&ev);
  }

  for (const auto& [trace_id, evs] : by_trace) {
    TaskBreakdown task;
    task.trace_id = trace_id;
    std::vector<std::uint64_t> replica_holders;

    // Reassemble spans: begins open, ends close (by span id).
    std::map<std::uint64_t, std::size_t> open;  // span id -> index in spans
    for (const ParsedEvent* ev : evs) {
      if (ev->ph == 'B') {
        Span span;
        span.name = ev->name;
        span.span_id = ev->span_id;
        span.parent_id = ev->parent_id;
        span.begin = ev->t;
        span.fields = ev->fields;
        open[span.span_id] = task.spans.size();
        task.spans.push_back(std::move(span));
      } else if (ev->ph == 'E') {
        auto it = open.find(ev->span_id);
        if (it == open.end()) {
          ++unmatched_ends_;  // begin lost to the ring
          continue;
        }
        Span& span = task.spans[it->second];
        span.end = ev->t;
        for (const auto& [k, v] : ev->fields) span.fields[k] = v;
        open.erase(it);
      } else if (ev->name == "task.retry") {
        ++task.retries;
      } else if (ev->name.rfind("storage.replica.", 0) == 0 ||
                 ev->name == "storage.repair.replica") {
        const auto h = ev->fields.find("holder");
        if (h != ev->fields.end()) {
          replica_holders.push_back(static_cast<std::uint64_t>(h->second));
        }
      }
    }

    // Root span: the parentless one. task.life roots (and rootless trees —
    // ring wrap) reduce to a task breakdown; storage.* roots to a storage
    // op; anything else is a newer recorder's category — skip and count.
    const Span* root = nullptr;
    for (const Span& s : task.spans) {
      if (s.parent_id == 0) {
        root = &s;
        break;
      }
    }
    double last_t = evs.empty() ? 0.0 : evs.back()->t;

    if (root != nullptr && root->name.rfind("storage.", 0) == 0) {
      StorageOpBreakdown op;
      op.trace_id = trace_id;
      op.kind = root->name.substr(8);
      const auto obj = root->fields.find("object");
      if (obj != root->fields.end()) op.object = obj->second;
      op.begin = root->begin;
      op.closed = root->closed();
      op.end = op.closed ? root->end : std::max(last_t, root->begin);
      const auto field_of = [&root](const char* key) {
        const auto it = root->fields.find(key);
        return it == root->fields.end() ? 0.0 : it->second;
      };
      if (op.kind == "put") {
        op.ok = field_of("acked") > 0.0;
      } else if (op.kind == "get") {
        op.ok = field_of("ok") > 0.0;
        op.degraded = field_of("degraded") > 0.0;
      } else {
        op.ok = true;  // a repair cycle that ran is a repair cycle that ran
      }
      for (const Span& s : task.spans) {
        if (&s == root) continue;
        if (!s.closed()) {
          // Orphaned leg (run ended mid-op): attempted, but no duration.
          if (s.name == "storage.leg.attempt") ++op.attempts;
          ++orphaned_;
          continue;
        }
        if (s.name == "storage.leg.attempt") {
          ++op.attempts;
          op.legs += s.duration();
        }
      }
      std::sort(replica_holders.begin(), replica_holders.end());
      replica_holders.erase(
          std::unique(replica_holders.begin(), replica_holders.end()),
          replica_holders.end());
      op.replicas = std::move(replica_holders);
      op.storm = storm_overlap(windows_, op.begin, op.end);
      op.in_storm = op.storm > 0.0;
      for (const FaultWindow& w : windows_) {
        if (w.contains(op.begin)) op.in_storm = true;
      }
      storage_ops_.push_back(std::move(op));
      continue;
    }
    if (root != nullptr && root->name == "dag.run") {
      reduce_dag(trace_id, task.spans, evs, root, last_t);
      continue;
    }
    if (root != nullptr && root->name != "task.life") {
      ++unknown_roots_;  // skip-and-count: never fatal, never misfiled
      continue;
    }
    if (root != nullptr) {
      task.submit = root->begin;
      auto it = root->fields.find("task");
      if (it != root->fields.end()) task.task = it->second;
      if (root->closed()) {
        task.finish = root->end;
        auto oc = root->fields.find("outcome");
        task.outcome =
            oc != root->fields.end() ? outcome_label(oc->second) : "unknown";
      } else {
        task.finish = std::max(last_t, task.submit);
        task.outcome = "open";
      }
    } else {
      task.submit = evs.empty() ? 0.0 : evs.front()->t;
      task.finish = last_t;
      task.outcome = "open";
    }

    for (const Span& s : task.spans) {
      if (!s.closed()) {
        if (&s != root) ++task.orphaned_spans;
        continue;
      }
      if (s.parent_id == 0) continue;  // the root itself
      const double dur = s.duration();
      if (s.name == "leg.queue") {
        task.queueing += dur;
      } else if (s.name == "leg.dispatch" || s.name == "leg.result") {
        task.network += dur;
      } else if (s.name == "leg.exec") {
        // The exec leg starts with the input transfer (its planned length
        // rides the span as "input_s"); that slice is network, the rest is
        // compute. A crash can end the leg mid-transfer, hence the clamp.
        double input = 0.0;
        auto it = s.fields.find("input_s");
        if (it != s.fields.end()) input = std::min(it->second, dur);
        task.network += input;
        task.compute += dur - input;
      } else if (s.name == "leg.recover" || s.name == "leg.migrate") {
        task.recovery += dur;
        if (s.name == "leg.migrate") ++task.migrations;
      }
      // Any other span name falls into the residual below.
      auto crashed = s.fields.find("crashed");
      if (crashed != s.fields.end() && crashed->second > 0.0) ++task.crashes;
    }
    // Residual lifetime no classified leg covers (ring wrap, still-open
    // legs): keeps legs_sum() == end_to_end() by construction.
    task.other = task.end_to_end() - (task.queueing + task.network +
                                      task.compute + task.recovery);
    task.storm = storm_overlap(windows_, task.submit, task.finish);
    orphaned_ += task.orphaned_spans;
    tasks_.push_back(std::move(task));
  }
}

void TraceAnalysis::reduce_dag(std::uint64_t trace_id,
                               const std::vector<Span>& spans,
                               const std::vector<const ParsedEvent*>& evs,
                               const Span* root, double last_t) {
  DagRunBreakdown run;
  run.trace_id = trace_id;
  const auto root_field = [&root](const char* key) {
    const auto it = root->fields.find(key);
    return it == root->fields.end() ? -1.0 : it->second;
  };
  run.graph = root_field("graph");
  const double declared = root_field("nodes");
  if (declared > 0.0) run.nodes_declared = static_cast<std::size_t>(declared);
  run.begin = root->begin;
  run.closed = root->closed();
  run.end = run.closed ? root->end : std::max(last_t, run.begin);
  if (run.closed) {
    const auto oc = root->fields.find("outcome");
    run.outcome =
        oc != root->fields.end() ? outcome_label(oc->second) : "unknown";
  }

  // dag.node instants join task ids to node indices; dag.edge instants
  // rebuild the dependency structure the scheduler walked.
  std::map<double, std::size_t> task_to_node;
  std::map<std::size_t, int> attempts_of;
  std::size_t max_node = 0;
  bool any_node = false;
  for (const ParsedEvent* ev : evs) {
    if (ev->name == "dag.node") {
      const auto n = ev->fields.find("node");
      const auto t = ev->fields.find("task");
      if (n == ev->fields.end()) continue;
      const auto node = static_cast<std::size_t>(n->second);
      if (t != ev->fields.end()) task_to_node[t->second] = node;
      ++attempts_of[node];
      max_node = std::max(max_node, node);
      any_node = true;
    } else if (ev->name == "dag.edge") {
      const auto f = ev->fields.find("from");
      const auto to = ev->fields.find("to");
      if (f == ev->fields.end() || to == ev->fields.end()) continue;
      const auto from = static_cast<std::size_t>(f->second);
      const auto dest = static_cast<std::size_t>(to->second);
      run.edges.emplace_back(from, dest);
      max_node = std::max(max_node, std::max(from, dest));
      any_node = true;
    }
  }
  const std::size_t n_nodes =
      std::max(run.nodes_declared, any_node ? max_node + 1 : 0);
  run.nodes.resize(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    run.nodes[i].node = i;
    const auto a = attempts_of.find(i);
    if (a != attempts_of.end()) run.nodes[i].attempts = a->second;
  }

  // Per node, pick the *winning* attempt: the task.life child that closed
  // with outcome completed (the scheduler commits exactly one). Its legs
  // become the node's breakdown; a node with no winner keeps its latest
  // attempt's timings so failed runs still report where time went.
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : spans) by_id[s.span_id] = &s;
  const auto owning_life = [&by_id](const Span& s) -> const Span* {
    const Span* cur = &s;
    for (int hops = 0; hops < 64 && cur->parent_id != 0; ++hops) {
      const auto it = by_id.find(cur->parent_id);
      if (it == by_id.end()) return nullptr;  // parent lost to the ring
      cur = it->second;
      if (cur->name == "task.life") return cur;
    }
    return nullptr;
  };

  std::map<std::size_t, const Span*> winner_of;  // node -> winning task.life
  for (const Span& s : spans) {
    if (s.name != "task.life") continue;
    const auto t = s.fields.find("task");
    if (t == s.fields.end()) continue;
    const auto node_it = task_to_node.find(t->second);
    if (node_it == task_to_node.end()) continue;
    const std::size_t node = node_it->second;
    if (node >= run.nodes.size()) continue;
    const auto oc = s.fields.find("outcome");
    const bool completed = s.closed() && oc != s.fields.end() &&
                           oc->second == kOutcomeCompleted;
    auto& slot = winner_of[node];
    const auto slot_oc =
        slot != nullptr ? slot->fields.find("outcome") : s.fields.end();
    const bool slot_completed = slot != nullptr && slot->closed() &&
                                slot_oc != slot->fields.end() &&
                                slot_oc->second == kOutcomeCompleted;
    if (slot == nullptr || (completed && !slot_completed) ||
        (completed == slot_completed && s.begin > slot->begin)) {
      slot = &s;
    }
  }
  for (const auto& [node, life] : winner_of) {
    DagNodeBreakdown& nb = run.nodes[node];
    const auto t = life->fields.find("task");
    if (t != life->fields.end()) nb.task = t->second;
    nb.submit = life->begin;
    if (life->closed()) {
      nb.finish = life->end;
      const auto oc = life->fields.find("outcome");
      nb.outcome =
          oc != life->fields.end() ? outcome_label(oc->second) : "unknown";
    } else {
      nb.finish = std::max(last_t, nb.submit);
    }
  }

  // Leg classification, winning attempt only — same rules as the per-task
  // reduction, so each node's legs partition its winning attempt's e2e.
  for (const Span& s : spans) {
    if (s.name.rfind("leg.", 0) != 0) continue;
    const Span* life = owning_life(s);
    if (life == nullptr) continue;
    const auto t = life->fields.find("task");
    if (t == life->fields.end()) continue;
    const auto node_it = task_to_node.find(t->second);
    if (node_it == task_to_node.end() || node_it->second >= run.nodes.size()) {
      continue;
    }
    DagNodeBreakdown& nb = run.nodes[node_it->second];
    const auto crashed = s.fields.find("crashed");
    if (crashed != s.fields.end() && crashed->second > 0.0) ++nb.crashes;
    const auto win = winner_of.find(node_it->second);
    if (win == winner_of.end() || win->second != life) continue;
    if (!s.closed()) continue;
    const double dur = s.duration();
    if (s.name == "leg.queue") {
      nb.queueing += dur;
    } else if (s.name == "leg.dispatch" || s.name == "leg.result") {
      nb.network += dur;
    } else if (s.name == "leg.exec") {
      double input = 0.0;
      const auto in = s.fields.find("input_s");
      if (in != s.fields.end()) input = std::min(in->second, dur);
      nb.network += input;
      nb.compute += dur - input;
    } else if (s.name == "leg.recover" || s.name == "leg.migrate") {
      nb.recovery += dur;
    }
  }
  for (auto& nb : run.nodes) {
    nb.other = nb.end_to_end() -
               (nb.queueing + nb.network + nb.compute + nb.recovery);
    if (nb.outcome == "completed") {
      run.partition_max_dev =
          std::max(run.partition_max_dev, std::abs(nb.other));
    }
  }

  // Measured critical path: longest dependency chain by summed node e2e,
  // via DP in topological order over the reconstructed edges.
  const std::size_t n = run.nodes.size();
  if (n > 0) {
    std::vector<std::vector<std::size_t>> children(n);
    std::vector<std::size_t> indeg(n, 0);
    for (const auto& [from, to] : run.edges) {
      if (from >= n || to >= n) continue;
      children[from].push_back(to);
      ++indeg[to];
    }
    std::vector<double> dist(n, 0.0);
    std::vector<std::size_t> pred(n, n);  // n == "no predecessor"
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) order.push_back(i);
    }
    for (std::size_t i = 0; i < n; ++i) dist[i] = run.nodes[i].end_to_end();
    for (std::size_t qi = 0; qi < order.size(); ++qi) {
      const std::size_t u = order[qi];
      for (const std::size_t v : children[u]) {
        const double through = dist[u] + run.nodes[v].end_to_end();
        if (through > dist[v]) {
          dist[v] = through;
          pred[v] = u;
        }
        if (--indeg[v] == 0) order.push_back(v);
      }
    }
    std::size_t sink = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (dist[i] > dist[sink]) sink = i;
    }
    run.critical_len = dist[sink];
    for (std::size_t cur = sink; cur != n; cur = pred[cur]) {
      run.critical_path.push_back(cur);
      if (run.critical_path.size() > n) break;  // cycle guard (bad trace)
    }
    std::reverse(run.critical_path.begin(), run.critical_path.end());
    for (const std::size_t i : run.critical_path) {
      run.nodes[i].on_critical_path = true;
    }
  }

  run.storm = storm_overlap(windows_, run.begin, run.end);
  for (const Span& s : spans) {
    if (!s.closed() && &s != root) ++orphaned_;
  }
  dags_.push_back(std::move(run));
}

std::vector<FaultWindow> extract_fault_windows(
    const std::vector<ParsedEvent>& events) {
  std::vector<FaultWindow> raw;
  bool have_annotations = false;
  for (const ParsedEvent& ev : events) {
    if (ev.name == "fault.window") {
      const auto s = ev.fields.find("start");
      const auto e = ev.fields.find("end");
      if (s != ev.fields.end() && e != ev.fields.end() &&
          e->second > s->second) {
        raw.push_back({s->second, e->second});
        have_annotations = true;
      }
    }
  }
  if (!have_annotations) {
    // Pre-annotation trace: reconstruct blackout windows from the start
    // events' planned duration.
    for (const ParsedEvent& ev : events) {
      if (ev.name != "fault.blackout.start") continue;
      const auto d = ev.fields.find("duration");
      if (d != ev.fields.end() && d->second > 0.0) {
        raw.push_back({ev.t, ev.t + d->second});
      }
    }
  }
  std::sort(raw.begin(), raw.end(), [](const FaultWindow& a,
                                       const FaultWindow& b) {
    return a.start < b.start;
  });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : raw) {
    if (!merged.empty() && w.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double storm_overlap(const std::vector<FaultWindow>& windows, double begin,
                     double end) {
  double covered = 0.0;
  for (const FaultWindow& w : windows) {
    covered += std::max(0.0, std::min(end, w.end) - std::max(begin, w.start));
  }
  return covered;
}

const TaskBreakdown* TraceAnalysis::find(std::uint64_t trace_id) const {
  for (const TaskBreakdown& t : tasks_) {
    if (t.trace_id == trace_id) return &t;
  }
  return nullptr;
}

void TraceAnalysis::write_diagnostics(std::ostream& os,
                                      const TraceMeta& meta) const {
  os << "\ndiagnostics:\n";
  if (meta.present) {
    os << "  ring: " << meta.recorded << " recorded, " << meta.overwritten
       << " overwritten"
       << (meta.complete() ? " (complete trace)" : " (RING WRAPPED: pairing is best-effort)")
       << ", " << meta.dropped_fields << " dropped fields\n";
  } else {
    os << "  ring: no metadata record (pre-metadata trace or truncated file)\n";
  }
  os << "  orphaned spans (begun, never closed): " << orphaned_ << "\n"
     << "  unmatched ends (begin overwritten): " << unmatched_ends_ << "\n"
     << "  unknown root categories (skipped): " << unknown_roots_ << "\n"
     << "  fault windows: " << windows_.size() << "\n";
}

void TraceAnalysis::write_report(std::ostream& os,
                                 const TraceMeta& meta) const {
  Table table("per-task critical-path latency breakdown (seconds)",
              {"trace", "task", "outcome", "e2e", "queue", "network",
               "compute", "recovery", "other", "storm", "retries",
               "crashes"});
  double sum_e2e = 0, sum_q = 0, sum_n = 0, sum_c = 0, sum_r = 0, sum_o = 0;
  double sum_storm = 0;
  std::size_t closed = 0;
  for (const TaskBreakdown& t : tasks_) {
    table.add_row({std::to_string(t.trace_id),
                   t.task >= 0 ? Table::num(t.task, 0) : "?", t.outcome,
                   Table::num(t.end_to_end(), 3), Table::num(t.queueing, 3),
                   Table::num(t.network, 3), Table::num(t.compute, 3),
                   Table::num(t.recovery, 3), Table::num(t.other, 3),
                   Table::num(t.storm, 3), std::to_string(t.retries),
                   std::to_string(t.crashes)});
    if (t.outcome != "open") {
      sum_e2e += t.end_to_end();
      sum_q += t.queueing;
      sum_n += t.network;
      sum_c += t.compute;
      sum_r += t.recovery;
      sum_o += t.other;
      sum_storm += t.storm;
      ++closed;
    }
  }
  table.print(os);
  if (closed > 0) {
    const double n = static_cast<double>(closed);
    os << "\naggregate over " << closed
       << " finished tasks (mean seconds/task):\n"
       << "  e2e " << Table::num(sum_e2e / n, 3) << " = queue "
       << Table::num(sum_q / n, 3) << " + network " << Table::num(sum_n / n, 3)
       << " + compute " << Table::num(sum_c / n, 3) << " + recovery "
       << Table::num(sum_r / n, 3) << " + other " << Table::num(sum_o / n, 3)
       << "\n"
       << "  in-storm " << Table::num(sum_storm / n, 3) << " + clear-sky "
       << Table::num((sum_e2e - sum_storm) / n, 3) << " ("
       << windows_.size() << " fault windows)\n";
  }
  write_diagnostics(os, meta);
}

void TraceAnalysis::write_storage_report(std::ostream& os,
                                         const TraceMeta& meta) const {
  // Per-object aggregation of the storage op breakdowns.
  struct ObjectAgg {
    std::size_t puts = 0, gets = 0, repairs = 0;
    std::size_t acked = 0, degraded = 0;
    double put_s = 0, put_max = 0, get_s = 0, get_max = 0;
    std::size_t storm_ops = 0;
    double storm_s = 0, total_s = 0;
  };
  std::map<double, ObjectAgg> objects;
  for (const StorageOpBreakdown& op : storage_ops_) {
    ObjectAgg& agg = objects[op.object];
    if (op.kind == "put") {
      ++agg.puts;
      agg.acked += op.ok ? 1 : 0;
      agg.put_s += op.e2e();
      agg.put_max = std::max(agg.put_max, op.e2e());
    } else if (op.kind == "get") {
      ++agg.gets;
      agg.degraded += op.degraded ? 1 : 0;
      agg.get_s += op.e2e();
      agg.get_max = std::max(agg.get_max, op.e2e());
    } else {
      ++agg.repairs;
    }
    if (op.in_storm) ++agg.storm_ops;
    agg.storm_s += op.storm;
    agg.total_s += op.e2e();
  }

  Table table("per-object storage op breakdown (seconds)",
              {"object", "puts", "acked", "put_mean", "put_max", "gets",
               "degraded", "get_mean", "get_max", "repairs", "storm_ops"});
  for (const auto& [object, agg] : objects) {
    table.add_row(
        {object >= 0 ? Table::num(object, 0) : "?", std::to_string(agg.puts),
         std::to_string(agg.acked),
         Table::num(agg.puts ? agg.put_s / static_cast<double>(agg.puts) : 0.0,
                    3),
         Table::num(agg.put_max, 3), std::to_string(agg.gets),
         std::to_string(agg.degraded),
         Table::num(agg.gets ? agg.get_s / static_cast<double>(agg.gets) : 0.0,
                    3),
         Table::num(agg.get_max, 3), std::to_string(agg.repairs),
         std::to_string(agg.storm_ops)});
  }
  table.print(os);
  double storm_s = 0, total_s = 0;
  std::size_t in_storm = 0;
  for (const StorageOpBreakdown& op : storage_ops_) {
    storm_s += op.storm;
    total_s += op.e2e();
    in_storm += op.in_storm ? 1 : 0;
  }
  os << "\n" << storage_ops_.size() << " storage ops, " << in_storm
     << " overlapping a fault window (" << windows_.size() << " windows); "
     << "op time " << Table::num(total_s, 3) << " s total, "
     << Table::num(storm_s, 3) << " s in-storm, "
     << Table::num(total_s - storm_s, 3) << " s clear-sky\n";
  write_diagnostics(os, meta);
}

void TraceAnalysis::write_dag_report(std::ostream& os,
                                     const TraceMeta& meta) const {
  if (dags_.empty()) {
    os << "no dag.run trees in this trace (was the DAG scheduler enabled "
          "and the dag category unmasked?)\n";
    write_diagnostics(os, meta);
    return;
  }
  for (const DagRunBreakdown& run : dags_) {
    os << "dag run: trace " << run.trace_id << ", graph "
       << (run.graph >= 0 ? Table::num(run.graph, 0) : "?") << ", "
       << run.outcome << ", makespan " << Table::num(run.makespan(), 3)
       << " s, " << run.nodes.size() << " nodes, " << run.edges.size()
       << " edges, in-storm " << Table::num(run.storm, 3) << " s\n";
    Table table("per-node winning-attempt breakdown (seconds)",
                {"node", "task", "attempts", "outcome", "e2e", "queue",
                 "network", "compute", "recovery", "other", "crit"});
    for (const DagNodeBreakdown& nb : run.nodes) {
      table.add_row({std::to_string(nb.node),
                     nb.task >= 0 ? Table::num(nb.task, 0) : "?",
                     std::to_string(nb.attempts), nb.outcome,
                     Table::num(nb.end_to_end(), 3),
                     Table::num(nb.queueing, 3), Table::num(nb.network, 3),
                     Table::num(nb.compute, 3), Table::num(nb.recovery, 3),
                     Table::num(nb.other, 3),
                     nb.on_critical_path ? "*" : ""});
    }
    table.print(os);
    os << "critical path:";
    for (std::size_t i = 0; i < run.critical_path.size(); ++i) {
      os << (i == 0 ? " " : " -> ") << run.critical_path[i];
    }
    os << " (" << Table::num(run.critical_len, 3)
       << " s of node time on the path)\n"
       << "leg partition max deviation: "
       << Table::num(run.partition_max_dev, 9) << " s\n\n";
  }
  write_diagnostics(os, meta);
}

void TraceAnalysis::write_json(std::ostream& os, const TraceMeta& meta) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-traceview-v1");
  w.key("meta").begin_object();
  w.key("present").value(meta.present);
  w.key("recorded").value(meta.recorded);
  w.key("overwritten").value(meta.overwritten);
  w.key("dropped_fields").value(meta.dropped_fields);
  w.key("complete").value(meta.complete());
  w.end_object();
  w.key("tasks").begin_array();
  for (const TaskBreakdown& t : tasks_) {
    w.begin_object();
    w.key("trace").value(t.trace_id);
    w.key("task").value(t.task);
    w.key("outcome").value(t.outcome);
    w.key("e2e").value(t.end_to_end());
    w.key("queue").value(t.queueing);
    w.key("network").value(t.network);
    w.key("compute").value(t.compute);
    w.key("recovery").value(t.recovery);
    w.key("other").value(t.other);
    w.key("storm").value(t.storm);
    w.key("clear").value(t.clear_sky());
    w.key("retries").value(static_cast<std::uint64_t>(
        t.retries < 0 ? 0 : t.retries));
    w.key("crashes").value(static_cast<std::uint64_t>(
        t.crashes < 0 ? 0 : t.crashes));
    w.key("migrations").value(static_cast<std::uint64_t>(
        t.migrations < 0 ? 0 : t.migrations));
    w.key("orphaned_spans").value(
        static_cast<std::uint64_t>(t.orphaned_spans));
    w.end_object();
  }
  w.end_array();
  w.key("storage").begin_array();
  for (const StorageOpBreakdown& op : storage_ops_) {
    w.begin_object();
    w.key("trace").value(op.trace_id);
    w.key("kind").value(op.kind);
    w.key("object").value(op.object);
    w.key("begin").value(op.begin);
    w.key("end").value(op.end);
    w.key("e2e").value(op.e2e());
    w.key("closed").value(op.closed);
    w.key("ok").value(op.ok);
    w.key("degraded").value(op.degraded);
    w.key("attempts").value(
        static_cast<std::uint64_t>(op.attempts < 0 ? 0 : op.attempts));
    w.key("legs").value(op.legs);
    w.key("storm").value(op.storm);
    w.key("in_storm").value(op.in_storm);
    w.key("replicas").begin_array();
    for (const std::uint64_t holder : op.replicas) w.value(holder);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("dags").begin_array();
  for (const DagRunBreakdown& run : dags_) {
    w.begin_object();
    w.key("trace").value(run.trace_id);
    w.key("graph").value(run.graph);
    w.key("outcome").value(run.outcome);
    w.key("makespan").value(run.makespan());
    w.key("closed").value(run.closed);
    w.key("storm").value(run.storm);
    w.key("critical_len").value(run.critical_len);
    w.key("partition_max_dev").value(run.partition_max_dev);
    w.key("critical_path").begin_array();
    for (const std::size_t i : run.critical_path) {
      w.value(static_cast<std::uint64_t>(i));
    }
    w.end_array();
    w.key("nodes").begin_array();
    for (const DagNodeBreakdown& nb : run.nodes) {
      w.begin_object();
      w.key("node").value(static_cast<std::uint64_t>(nb.node));
      w.key("task").value(nb.task);
      w.key("attempts").value(
          static_cast<std::uint64_t>(nb.attempts < 0 ? 0 : nb.attempts));
      w.key("outcome").value(nb.outcome);
      w.key("e2e").value(nb.end_to_end());
      w.key("queue").value(nb.queueing);
      w.key("network").value(nb.network);
      w.key("compute").value(nb.compute);
      w.key("recovery").value(nb.recovery);
      w.key("other").value(nb.other);
      w.key("critical").value(nb.on_critical_path);
      w.end_object();
    }
    w.end_array();
    w.key("edges").begin_array();
    for (const auto& [from, to] : run.edges) {
      w.begin_object();
      w.key("from").value(static_cast<std::uint64_t>(from));
      w.key("to").value(static_cast<std::uint64_t>(to));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("fault_windows").begin_array();
  for (const FaultWindow& win : windows_) {
    w.begin_object();
    w.key("start").value(win.start);
    w.key("end").value(win.end);
    w.end_object();
  }
  w.end_array();
  w.key("diagnostics").begin_object();
  w.key("orphaned_spans").value(static_cast<std::uint64_t>(orphaned_));
  w.key("unmatched_ends").value(static_cast<std::uint64_t>(unmatched_ends_));
  w.key("unknown_roots").value(static_cast<std::uint64_t>(unknown_roots_));
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
