#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace vcl::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kCloud: return "cloud";
    case TraceCategory::kTask: return "task";
    case TraceCategory::kFault: return "fault";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity, std::uint32_t category_mask)
    : mask_(category_mask), ring_(std::max<std::size_t>(capacity, 1)) {}

void TraceRecorder::record(SimTime t, TraceCategory cat, const char* name,
                           std::initializer_list<Field> fields) {
  if (!enabled(cat)) return;
  Event& ev = ring_[head_];
  ev.t = t;
  ev.cat = cat;
  ev.name = name;
  ev.n_fields = 0;
  for (const Field& f : fields) {
    if (ev.n_fields == kMaxFields) break;
    ev.fields[ev.n_fields++] = f;
  }
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  ++recorded_;
}

void TraceRecorder::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const Event& ev : events()) {
    JsonWriter w(os);
    w.begin_object();
    w.key("t").value(ev.t);
    w.key("cat").value(to_string(ev.cat));
    w.key("name").value(ev.name);
    for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
      w.key(ev.fields[i].key).value(ev.fields[i].value);
    }
    w.end_object();
    os << '\n';
  }
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event& ev : events()) {
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(to_string(ev.cat));
    w.key("ph").value("i");  // instant event
    w.key("s").value("g");   // global scope: full-height marker
    w.key("ts").value(ev.t * 1e6);  // sim seconds -> trace microseconds
    w.key("pid").value(std::uint64_t{1});
    // One track per category keeps the viewer readable.
    w.key("tid").value(
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(ev.cat)));
    w.key("args").begin_object();
    for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
      w.key(ev.fields[i].key).value(ev.fields[i].value);
    }
    w.end_object();
    w.end_object();
  }
  // Name the per-category tracks (metadata events).
  for (std::size_t c = 0; c < kTraceCategoryCount; ++c) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(c));
    w.key("args").begin_object();
    w.key("name").value(to_string(static_cast<TraceCategory>(c)));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
