#include "obs/trace.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"

namespace vcl::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kCloud: return "cloud";
    case TraceCategory::kTask: return "task";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kStorage: return "storage";
    case TraceCategory::kDag: return "dag";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity, std::uint32_t category_mask)
    : mask_(category_mask), ring_(std::max<std::size_t>(capacity, 1)) {}

TraceRecorder::Event& TraceRecorder::push(
    SimTime t, TraceCategory cat, TracePhase phase, const char* name,
    std::initializer_list<Field> fields) {
  Event& ev = ring_[head_];
  ev.t = t;
  ev.cat = cat;
  ev.phase = phase;
  ev.name = name;
  ev.trace_id = 0;
  ev.span_id = 0;
  ev.parent_id = 0;
  ev.n_fields = 0;
  for (const Field& f : fields) {
    if (ev.n_fields == kMaxFields) {
      ++dropped_fields_;
      continue;
    }
    ev.fields[ev.n_fields++] = f;
  }
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  ++recorded_;
  return ev;
}

void TraceRecorder::record(SimTime t, TraceCategory cat, const char* name,
                           std::initializer_list<Field> fields) {
  if (!enabled(cat)) return;
  push(t, cat, TracePhase::kInstant, name, fields);
}

void TraceRecorder::record(SimTime t, TraceCategory cat, const char* name,
                           TraceContext ctx,
                           std::initializer_list<Field> fields) {
  if (!enabled(cat)) return;
  Event& ev = push(t, cat, TracePhase::kInstant, name, fields);
  ev.trace_id = ctx.trace_id;
  ev.parent_id = ctx.span_id;
}

std::uint64_t TraceRecorder::begin_span(SimTime t, TraceCategory cat,
                                        const char* name, TraceContext parent,
                                        std::initializer_list<Field> fields) {
  if (!enabled(cat)) return 0;
  Event& ev = push(t, cat, TracePhase::kBegin, name, fields);
  ev.trace_id = parent.trace_id;
  ev.span_id = next_span_id_++;
  ev.parent_id = parent.span_id;
  return ev.span_id;
}

void TraceRecorder::end_span(SimTime t, TraceCategory cat, const char* name,
                             TraceContext ctx,
                             std::initializer_list<Field> fields) {
  if (!enabled(cat) || ctx.span_id == 0) return;
  Event& ev = push(t, cat, TracePhase::kEnd, name, fields);
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
}

void TraceRecorder::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
  dropped_fields_ = 0;
  next_trace_id_ = 1;
  next_span_id_ = 1;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecorder::Event> TraceRecorder::open_spans() const {
  // One linear pass over the retained window: collect begins in order,
  // erase each one its end closes. What survives is still open.
  std::vector<Event> open;
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = ring_[(start + i) % ring_.size()];
    if (e.phase == TracePhase::kBegin) {
      open.push_back(e);
    } else if (e.phase == TracePhase::kEnd) {
      for (std::size_t j = open.size(); j > 0; --j) {
        if (open[j - 1].span_id == e.span_id) {
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(j - 1));
          break;
        }
      }
    }
  }
  return open;
}

namespace {

const char* phase_label(TracePhase p) {
  switch (p) {
    case TracePhase::kInstant: return "i";
    case TracePhase::kBegin: return "B";
    case TracePhase::kEnd: return "E";
  }
  return "i";
}

}  // namespace

void TraceRecorder::write_jsonl(std::ostream& os) const {
  {
    // Metadata first: a consumer must be able to tell a wrapped ring (some
    // begins/ends lost) from a complete trace before trusting span pairing.
    JsonWriter w(os);
    w.begin_object();
    w.key("meta").value("vcl-trace-v1");
    w.key("capacity").value(static_cast<std::uint64_t>(ring_.size()));
    w.key("recorded").value(recorded_);
    w.key("retained").value(static_cast<std::uint64_t>(count_));
    w.key("overwritten").value(overwritten());
    w.key("dropped_fields").value(dropped_fields_);
    w.end_object();
    os << '\n';
  }
  for (const Event& ev : events()) {
    JsonWriter w(os);
    w.begin_object();
    w.key("t").value(ev.t);
    w.key("cat").value(to_string(ev.cat));
    w.key("name").value(ev.name);
    if (ev.phase != TracePhase::kInstant) {
      w.key("ph").value(phase_label(ev.phase));
    }
    if (ev.trace_id != 0) w.key("trace").value(ev.trace_id);
    if (ev.span_id != 0) w.key("span").value(ev.span_id);
    if (ev.parent_id != 0) w.key("parent").value(ev.parent_id);
    for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
      w.key(ev.fields[i].key).value(ev.fields[i].value);
    }
    w.end_object();
    os << '\n';
  }
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  // Traced entities (trace ids) render as their own rows; instant events
  // with no context stay on the per-category tracks (tids 0..4).
  constexpr std::uint64_t kTraceTidBase = 1000;
  const std::vector<Event> evs = events();

  // Pair span begins with their ends so matched spans can be emitted as
  // complete "X" slices (Perfetto nests those into flame rows without
  // needing balanced B/E ordering).
  std::unordered_map<std::uint64_t, std::size_t> begin_of;  // span -> index
  std::unordered_map<std::uint64_t, std::size_t> end_of;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (evs[i].phase == TracePhase::kBegin) begin_of[evs[i].span_id] = i;
    if (evs[i].phase == TracePhase::kEnd) end_of[evs[i].span_id] = i;
  }

  const auto emit_args = [](JsonWriter& w, const Event& ev,
                            const Event* end_ev) {
    w.key("args").begin_object();
    for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
      w.key(ev.fields[i].key).value(ev.fields[i].value);
    }
    if (end_ev != nullptr) {
      for (std::uint8_t i = 0; i < end_ev->n_fields; ++i) {
        w.key(end_ev->fields[i].key).value(end_ev->fields[i].value);
      }
    }
    w.end_object();
  };
  const auto tid_of = [&](const Event& ev) {
    return ev.trace_id != 0 ? kTraceTidBase + ev.trace_id
                            : static_cast<std::uint64_t>(
                                  static_cast<std::uint8_t>(ev.cat));
  };

  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  // Ring/drop accounting up front: a consumer must not treat a wrapped
  // ring as a complete trace.
  w.key("otherData").begin_object();
  w.key("recorded").value(recorded_);
  w.key("retained").value(static_cast<std::uint64_t>(count_));
  w.key("overwritten").value(overwritten());
  w.key("dropped_fields").value(dropped_fields_);
  w.end_object();
  w.key("traceEvents").begin_array();
  std::vector<std::uint64_t> trace_rows;  // distinct trace ids, first-seen
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& ev = evs[i];
    if (ev.trace_id != 0 &&
        std::find(trace_rows.begin(), trace_rows.end(), ev.trace_id) ==
            trace_rows.end()) {
      trace_rows.push_back(ev.trace_id);
    }
    if (ev.phase == TracePhase::kEnd && begin_of.count(ev.span_id) > 0) {
      continue;  // folded into its begin's "X" slice below
    }
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(to_string(ev.cat));
    const Event* end_ev = nullptr;
    if (ev.phase == TracePhase::kInstant) {
      w.key("ph").value("i");
      w.key("s").value(ev.trace_id != 0 ? "t" : "g");
    } else if (ev.phase == TracePhase::kBegin) {
      auto end_it = end_of.find(ev.span_id);
      if (end_it != end_of.end()) {
        end_ev = &evs[end_it->second];
        w.key("ph").value("X");
        w.key("dur").value((end_ev->t - ev.t) * 1e6);
      } else {
        w.key("ph").value("B");  // orphaned: never closed before export
      }
    } else {
      w.key("ph").value("E");  // begin lost to the ring
    }
    w.key("ts").value(ev.t * 1e6);  // sim seconds -> trace microseconds
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(tid_of(ev));
    emit_args(w, ev, end_ev);
    w.end_object();
  }
  // Name the tracks (metadata events): categories, then one row per trace.
  const auto thread_name = [&w](std::uint64_t tid, const std::string& name) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(tid);
    w.key("args").begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  };
  for (std::size_t c = 0; c < kTraceCategoryCount; ++c) {
    thread_name(c, to_string(static_cast<TraceCategory>(c)));
  }
  for (const std::uint64_t id : trace_rows) {
    thread_name(kTraceTidBase + id, "trace " + std::to_string(id));
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
