// Incident bundles (DESIGN.md §12): the `vcl-incident-v1` forensic
// snapshot captured at the instant an invariant violation fires.
//
// A repro file replays a failure; a bundle *explains* it without a replay:
// the flight-recorder tail (the causal event history that led here), the
// fault windows that were open, the spans still in flight, and the
// membership / task / replica / DAG-node state at the moment the oracle
// objected. `core::chaos` fills one on the first violation of an episode
// and writes it next to the shrunk repro; `tools/vcl_incident` renders it
// as a causal timeline.
//
// Everything here is plain data — strings, ids, doubles — because vcl_obs
// sits below vcloud/storage/dag in the layer graph: the subsystems cannot
// be named here, so their state arrives already flattened. Sim times are
// serialized with %.17g and re-emitted from the parsed values, so
// write → parse → re-write is bit-identical (the determinism contract the
// `--jobs` tests pin down).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/time.h"

namespace vcl::obs {

struct IncidentViolation {
  SimTime t = 0.0;
  std::string invariant;
  std::string detail;
  std::uint64_t task = 0;  // 0 = not task-scoped
};

// One retained flight-recorder event (names become owned strings here —
// a bundle outlives the run that produced it).
struct IncidentFlightEvent {
  SimTime t = 0.0;
  std::uint64_t seq = 0;
  std::string cat;
  std::string name;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double x = 0.0;
};

// An injected radio-blackout window [start, end] (absolute sim time).
struct IncidentWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  double x = 0.0;
  double y = 0.0;
  double radius = 0.0;
  bool active = false;  // still open at capture time
};

// A trace span begun but not yet ended at capture (work in flight). Only
// present when the episode also ran with tracing on; the trace/span ids
// cross-link into trace.jsonl (vcl_traceview).
struct IncidentOpenSpan {
  SimTime begin = 0.0;
  std::string cat;
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct IncidentWorker {
  std::uint64_t id = 0;
  bool crashed = false;  // zombie: physically dead, not yet evicted
  bool tracked = false;  // failure detector has it on its books
};

// A non-terminal task at capture time.
struct IncidentTask {
  std::uint64_t id = 0;
  std::string state;
  double progress = 0.0;
  double work = 0.0;
  double checkpoint = 0.0;
  std::uint64_t worker = 0;    // 0 = unassigned
  std::uint64_t trace_id = 0;  // 0 = untraced run
};

struct IncidentObject {
  std::uint64_t id = 0;
  std::uint64_t acked_version = 0;
};

struct IncidentReplica {
  std::uint64_t object = 0;
  std::uint64_t holder = 0;
  std::uint64_t version = 0;
  bool alive = false;
  bool lease_held = false;
};

struct IncidentDagGraph {
  std::uint64_t id = 0;
  bool terminal = false;
  bool completed = false;
  std::uint64_t intermediates_held = 0;
};

struct IncidentDagNode {
  std::uint64_t graph = 0;
  std::uint64_t node = 0;
  bool submitted = false;
  bool succeeded = false;
  std::uint64_t live_attempts = 0;
};

struct IncidentBundle {
  std::uint64_t seed = 0;
  SimTime captured_at = 0.0;  // sim time of the triggering violation
  std::string trigger;        // its invariant name
  std::uint64_t flight_recorded = 0;
  std::uint64_t flight_overwritten = 0;
  std::uint64_t broker = 0;  // 0 = no broker at capture
  std::uint64_t pending = 0;

  std::vector<IncidentViolation> violations;
  std::vector<IncidentFlightEvent> flight;
  std::vector<IncidentWindow> windows;
  std::vector<IncidentOpenSpan> open_spans;
  std::vector<IncidentWorker> workers;
  std::vector<IncidentTask> tasks;
  std::vector<IncidentObject> objects;
  std::vector<IncidentReplica> replicas;
  std::vector<IncidentDagGraph> graphs;
  std::vector<IncidentDagNode> dag_nodes;
};

// Copies a flight-recorder tail into the bundle (names become owned).
void append_flight_tail(IncidentBundle& bundle,
                        const std::vector<FlightEvent>& tail);

// JSONL: a vcl-incident-v1 meta line, then one flat record per line in a
// fixed section order. Deterministic byte-for-byte for equal bundles.
void write_incident_bundle(const IncidentBundle& bundle, std::ostream& os);
// Strict inverse of the writer: a re-emitted parse is bit-identical.
// Returns false (with `error` set) on malformed input.
bool parse_incident_bundle(std::istream& is, IncidentBundle& bundle,
                           std::string* error = nullptr);

}  // namespace vcl::obs
