// FlightRecorder: always-on, fixed-memory forensic event log (DESIGN.md
// §12).
//
// The trace recorder answers "what happened?" only when telemetry was
// switched on before the run; a production incident rarely grants that
// favor. The flight recorder is the black box that is ALWAYS running: a
// small per-category ring of key lifecycle events — task terminal
// transitions, failure-detector evictions, lease expiries, quorum
// degradations, DAG backup launches, fault window edges — recorded at the
// cost of one branch plus one ring write per event. It never touches an
// RNG stream, never allocates after construction, and never changes
// scheduling, so a run with the recorder attached is bit-identical to one
// without (and across any `--jobs` level: each system owns its recorder).
//
// Per-category rings (rather than one shared ring) keep a chatty category
// (task terminals) from evicting the rare one that explains the incident
// (the single lease expiry an hour ago). A global sequence number stamped
// on every event lets `tail()` merge the rings back into one totally
// ordered history — the ordering ties at equal sim time are resolved by
// record order, which is itself deterministic.
//
// The payload is deliberately tiny and flat: two integer ids + one double.
// Names are string literals owned by the call sites (same contract as
// TraceRecorder fields), so recording is allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace vcl::obs {

enum class FlightCategory : std::uint8_t {
  kTask = 0,      // task.complete / task.expire / task.fail
  kDetector = 1,  // detector.evict (crash kill or false positive)
  kLease = 2,     // lease.expire
  kQuorum = 3,    // quorum.read.degraded / quorum.read.failed / write.failed
  kDag = 4,       // dag.backup / dag.graph.fail
  kFault = 5,     // fault.* injections + blackout window edges
  kAuth = 6,      // auth.revoke / auth.crl.deliver / auth.evict decisions
  kAttack = 7,    // attack.sybil.* / attack.replay.* admission outcomes
};
inline constexpr std::size_t kFlightCategoryCount = 8;

[[nodiscard]] const char* to_string(FlightCategory c);

struct FlightEvent {
  SimTime t = 0.0;
  FlightCategory cat = FlightCategory::kTask;
  const char* name = "";
  std::uint64_t a = 0;  // primary id (task / worker / object / graph)
  std::uint64_t b = 0;  // secondary id (worker / holder / node / flag)
  double x = 0.0;       // one numeric payload (latency, duration, ...)
  std::uint64_t seq = 0;  // global record order across all categories
};

class FlightRecorder {
 public:
  // 256 events x 8 categories x ~56 bytes ≈ 115 KiB per system: cheap
  // enough to leave on for every run, deep enough that the causal chain
  // behind a violation (fault → detection → recovery → failure) survives
  // even when one category is chatty.
  static constexpr std::size_t kDefaultPerCategory = 256;

  explicit FlightRecorder(std::size_t per_category = kDefaultPerCategory);

  void record(SimTime t, FlightCategory cat, const char* name,
              std::uint64_t a = 0, std::uint64_t b = 0, double x = 0.0);

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t recorded(FlightCategory c) const {
    return ring(c).recorded;
  }
  [[nodiscard]] std::uint64_t overwritten() const;
  [[nodiscard]] std::uint64_t overwritten(FlightCategory c) const {
    const Ring& r = ring(c);
    return r.recorded - r.count;
  }
  [[nodiscard]] std::size_t per_category_capacity() const {
    return rings_[0].slots.size();
  }
  void clear();

  // Retained events merged across every category, oldest first (global
  // sequence order). This is the "flight-recorder tail" an incident bundle
  // snapshots.
  [[nodiscard]] std::vector<FlightEvent> tail() const;

 private:
  struct Ring {
    std::vector<FlightEvent> slots;
    std::size_t head = 0;   // next write slot
    std::size_t count = 0;  // retained (<= capacity)
    std::uint64_t recorded = 0;
  };

  [[nodiscard]] const Ring& ring(FlightCategory c) const {
    return rings_[static_cast<std::size_t>(c)];
  }

  std::array<Ring, kFlightCategoryCount> rings_;
  std::uint64_t recorded_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace vcl::obs
