// Run-health report (tools/vcl_report): merges one or more telemetry
// export directories — trace.jsonl, metrics.csv, sketches.json,
// violations.jsonl — into a single health view: tail-latency tables,
// storm-attributed task/storage latency, per-component counters, and
// oracle violation records.
//
// Every artifact is optional: a bench export has no violations, a
// metrics-off run has no sketches. Missing files just leave their section
// empty; a file that exists but cannot be parsed fails the build with an
// error message (silent partial reports would lie).
//
// Multiple directories (one per replication) merge exactly where the data
// is mergeable: quantile sketches add bucket counts (bit-identical for any
// directory order), counters sum, trace-derived aggregates accumulate.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_analysis.h"
#include "util/quantile_sketch.h"

namespace vcl::obs {

// One oracle violation record from violations.jsonl.
struct ReportViolation {
  double t = 0.0;
  std::string invariant;
  std::string detail;
  double task = -1.0;  // -1 when the violation is not task-scoped
  std::uint64_t seed = 0;
};

// Everything the report knows about a run (or a set of replications).
struct RunHealth {
  std::vector<std::string> dirs;
  bool have_trace = false;
  bool have_metrics = false;
  bool have_sketches = false;
  bool have_violations = false;

  // Per-directory "optional artifact absent (skipped)" notes and explicit
  // data-loss warnings (ring overwrite, dropped fields), both in
  // deterministic directory order. Warnings are the report's loud channel:
  // a wrapped trace ring silently truncates every downstream table, so the
  // reader is told instead of left to notice a too-small task count.
  std::vector<std::string> notes;
  std::vector<std::string> warnings;

  // --- trace-derived (trace.jsonl) ----------------------------------------
  TraceMeta trace_meta;  // from the last directory parsed
  // Ring-loss totals summed across every parsed trace (trace_meta above
  // keeps only the last raw meta record).
  std::uint64_t trace_overwritten = 0;
  std::uint64_t trace_dropped_fields = 0;
  std::size_t traces_wrapped = 0;  // directories whose ring wrapped
  std::size_t tasks = 0;
  std::size_t tasks_closed = 0;
  double task_e2e_s = 0.0;
  double task_queue_s = 0.0;
  double task_network_s = 0.0;
  double task_compute_s = 0.0;
  double task_recovery_s = 0.0;
  double task_other_s = 0.0;
  double task_storm_s = 0.0;
  QuantileSketch task_e2e_tail;
  // Storage ops, with put/get latency attributed to fault windows: an op
  // overlapping a window lands in the *_storm sketch, the rest in *_clear.
  std::size_t storage_ops = 0;
  std::size_t storage_in_storm = 0;
  double storage_storm_s = 0.0;
  double storage_total_s = 0.0;
  QuantileSketch put_tail, put_storm_tail, put_clear_tail;
  QuantileSketch get_tail, get_storm_tail, get_clear_tail;
  std::size_t fault_windows = 0;
  double fault_window_s = 0.0;
  std::size_t orphaned_spans = 0;
  std::size_t unmatched_ends = 0;
  std::size_t unknown_roots = 0;

  // --- metrics.csv: final-row value per column, summed across dirs --------
  std::map<std::string, double> counters;

  // --- sketches.json: reconstructed + merged across dirs ------------------
  std::map<std::string, QuantileSketch> sketches;

  // --- violations.jsonl ---------------------------------------------------
  std::uint64_t checks_run = 0;
  std::uint64_t violation_count = 0;            // uncapped total
  std::vector<ReportViolation> violations;      // stored records
};

// Loads whatever artifacts exist under each directory and merges them.
// Returns false (with `error` set) only when a present file is malformed
// or none of the directories held any artifact at all.
bool build_run_health(const std::vector<std::string>& dirs, RunHealth& out,
                      std::string* error = nullptr);

// Human-readable report: artifact inventory, tail tables, task breakdown,
// storm-attributed storage latency, counters, violations, diagnostics.
void write_health_text(std::ostream& os, const RunHealth& h);
// Machine-readable equivalent, one JSON document (schema vcl-report-v1).
void write_health_json(std::ostream& os, const RunHealth& h);

}  // namespace vcl::obs
