#include "obs/bench_output.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace vcl::obs {

BenchReporter::BenchReporter(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)),
      start_(std::chrono::steady_clock::now()) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      path_ = argv[i + 1];
      break;
    }
  }
}

void BenchReporter::add(const Table& table) {
  tables_.push_back(TableCopy{table.title(), table.columns(), table.cells()});
}

void BenchReporter::add_scalar(const std::string& key, double value) {
  scalars_[key] = value;
}

std::string BenchReporter::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-bench-v1");
  w.key("bench").value(bench_name_);
  w.key("scalars").begin_object();
  auto scalars = scalars_;
  scalars.try_emplace(
      "wall_s", std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count());
  for (const auto& [key, value] : scalars) w.key(key).value(value);
  w.end_object();
  w.key("tables").begin_array();
  for (const TableCopy& t : tables_) {
    w.begin_object();
    w.key("title").value(t.title);
    w.key("columns").begin_array();
    for (const std::string& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const std::string& cell : row) w.value_auto(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

bool BenchReporter::write() const {
  if (!enabled()) return true;
  std::ofstream out(path_);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace vcl::obs
