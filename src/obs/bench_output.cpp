#include "obs/bench_output.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace vcl::obs {

BenchReporter::BenchReporter(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)),
      start_(std::chrono::steady_clock::now()) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      path_ = argv[i + 1];
      break;
    }
  }
}

void BenchReporter::add(const Table& table) {
  tables_.push_back(
      TableCopy{table.title(), table.columns(), table.cells(), {}});
}

void BenchReporter::add(const Table& table, TableStats stats) {
  tables_.push_back(TableCopy{table.title(), table.columns(), table.cells(),
                              std::move(stats)});
}

void BenchReporter::add_scalar(const std::string& key, double value) {
  scalars_[key] = value;
}

std::string BenchReporter::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-bench-v1");
  w.key("bench").value(bench_name_);
  w.key("scalars").begin_object();
  auto scalars = scalars_;
  scalars.try_emplace(
      "wall_s", std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count());
  for (const auto& [key, value] : scalars) w.key(key).value(value);
  w.end_object();
  w.key("tables").begin_array();
  for (const TableCopy& t : tables_) {
    w.begin_object();
    w.key("title").value(t.title);
    w.key("columns").begin_array();
    for (const std::string& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      w.begin_array();
      for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
        const std::optional<CellStat>* stat = nullptr;
        if (r < t.stats.size() && c < t.stats[r].size()) {
          stat = &t.stats[r][c];
        }
        if (stat != nullptr && stat->has_value() && (*stat)->has_tail) {
          w.begin_object();
          w.key("p50").value((*stat)->p50);
          w.key("p99").value((*stat)->p99);
          w.key("p999").value((*stat)->p999);
          w.key("n").value(static_cast<std::uint64_t>((*stat)->n));
          w.end_object();
        } else if (stat != nullptr && stat->has_value()) {
          w.begin_object();
          w.key("mean").value((*stat)->mean);
          w.key("ci95").value((*stat)->ci95);
          w.key("n").value(static_cast<std::uint64_t>((*stat)->n));
          w.end_object();
        } else {
          w.value_auto(t.rows[r][c]);
        }
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

bool BenchReporter::write() const {
  if (!enabled()) return true;
  std::ofstream out(path_);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace vcl::obs
