// Telemetry: the per-run observability bundle (DESIGN.md §6).
//
// One TelemetryConfig block rides SystemConfig; everything defaults OFF so
// seed determinism and performance are untouched — instrumented code sees a
// null TraceRecorder pointer and pays one branch per would-be event. When
// any piece is enabled, VehicularCloudSystem::start() builds a Telemetry,
// threads the recorder through net/vcloud/fault, registers each subsystem's
// metrics and starts the sampler and the kernel profiler.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcl::obs {

struct TelemetryConfig {
  // Structured sim-time event tracing (TraceRecorder).
  bool tracing = false;
  std::uint32_t trace_categories = kAllTraceCategories;
  std::size_t trace_capacity = 1 << 16;

  // Periodic metric sampling (MetricsRegistry time series).
  bool metrics = false;
  SimTime sample_period = 1.0;

  // Per-label wall-clock/event attribution in sim::Simulator.
  bool profile_kernel = false;

  [[nodiscard]] bool any() const {
    return tracing || metrics || profile_kernel;
  }
};

struct Telemetry {
  explicit Telemetry(const TelemetryConfig& cfg)
      : config(cfg), trace(cfg.trace_capacity, cfg.trace_categories) {}

  TelemetryConfig config;
  TraceRecorder trace;
  MetricsRegistry metrics;
};

// Writes the bundle into `dir` (created if missing): `trace.jsonl` and
// `trace_chrome.json` when tracing is on, `metrics.csv` (plus
// `sketches.json` when any tail sketches are registered) when sampling is.
// This is the per-replication export path exp::Campaign routes through
// `--telemetry-dir <dir>/cell<c>/rep<k>/`. Returns false on any IO error.
bool write_telemetry(const Telemetry& telemetry, const std::string& dir);

}  // namespace vcl::obs
