#include "obs/telemetry.h"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace vcl::obs {

bool write_telemetry(const Telemetry& telemetry, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const auto write_file = [&dir](const std::string& name, auto&& emit) {
    std::ofstream os(dir + "/" + name);
    if (!os) return false;
    emit(os);
    return os.good();
  };

  bool ok = true;
  if (telemetry.config.tracing) {
    ok &= write_file("trace.jsonl",
                     [&](std::ostream& os) { telemetry.trace.write_jsonl(os); });
    ok &= write_file("trace_chrome.json", [&](std::ostream& os) {
      telemetry.trace.write_chrome_trace(os);
    });
  }
  if (telemetry.config.metrics) {
    ok &= write_file("metrics.csv", [&](std::ostream& os) {
      telemetry.metrics.write_csv(os);
    });
    if (telemetry.metrics.has_sketches()) {
      ok &= write_file("sketches.json", [&](std::ostream& os) {
        telemetry.metrics.write_sketches_json(os);
      });
    }
  }
  return ok;
}

}  // namespace vcl::obs
