// BenchReporter: the shared machine-readable output path for bench_*.
//
// Every bench binary owns one reporter: it parses `--json <path>` from the
// command line, collects the same Tables the bench prints to stdout, and on
// write() emits one JSON document in the single vcl-bench-v1 schema:
//
//   {
//     "schema": "vcl-bench-v1",
//     "bench": "bench_fig1_resource_pool",
//     "scalars": {"wall_s": 1.7},
//     "tables": [
//       {"title": "...", "columns": ["mix", ...], "rows": [["today", 40, ...]]}
//     ]
//   }
//
// Cells that parse fully as numbers are emitted as JSON numbers, the rest
// as strings — downstream tooling (scripts/collect_bench.sh, plotting)
// consumes every bench through this one schema, never bespoke formats.
// Without `--json` the reporter is inert and the bench behaves exactly as
// before.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/table.h"

namespace vcl::obs {

// Cross-replication statistics for one table cell (experiment engine,
// DESIGN.md §7). A cell carrying one is emitted as
// {"mean": m, "ci95": c, "n": reps} instead of a plain number — still
// vcl-bench-v1; consumers that only read plain cells see them whenever
// replication is off (n == 1 cells are never annotated).
struct CellStat {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t n = 0;
  // Tail-quantile cell (pooled QuantileSketch, DESIGN.md §7): when set the
  // cell is emitted as {"p50": ..., "p99": ..., "p999": ..., "n": count}
  // instead of {"mean","ci95","n"}. Unlike mean cells, a tail cell is
  // emitted as an object even at n == 1 — the text form ("a/b/c") is not a
  // number, so the object IS the machine-readable value. `n` holds the
  // pooled observation count, not the replication count.
  bool has_tail = false;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Per-table stat annotations: stats[row][col] aligned with the Table's
// rows/columns; std::nullopt marks an unannotated cell. Rows may be absent
// or short — missing entries mean "plain cell".
using TableStats = std::vector<std::vector<std::optional<CellStat>>>;

class BenchReporter {
 public:
  // `bench_name` names the binary; argv is scanned for `--json <path>`
  // (unknown flags are ignored so benches stay forgiving).
  BenchReporter(std::string bench_name, int argc, char** argv);

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Snapshots a finished table (call after the bench filled it).
  void add(const Table& table);
  // Same, with cross-replication per-cell statistics (see TableStats).
  void add(const Table& table, TableStats stats);
  // Top-level named result (wall-clock, pass/fail counts, config knobs).
  void add_scalar(const std::string& key, double value);

  // Writes the document; no-op without --json. Returns false on IO error.
  bool write() const;

  // The document as a string (testing / in-process consumers).
  [[nodiscard]] std::string to_json() const;

 private:
  struct TableCopy {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
    TableStats stats;  // empty when the table carries no annotations
  };

  std::string bench_name_;
  std::string path_;
  // Construction time: to_json() derives a free "wall_s" scalar from it
  // unless the bench set one explicitly.
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, double> scalars_;
  std::vector<TableCopy> tables_;
};

}  // namespace vcl::obs
