#include "obs/report.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/table.h"

namespace vcl::obs {

namespace {

// ---- minimal JSON value parser ---------------------------------------------
// Just enough for our own exports (sketches.json, violations.jsonl): no
// surrogate pairs, no exotic numbers. Malformed input returns false rather
// than guessing.

struct Jv {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Jv> arr;
  std::vector<std::pair<std::string, Jv>> obj;

  [[nodiscard]] const Jv* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_or(const std::string& key, double def) const {
    const Jv* v = find(key);
    return v != nullptr && v->kind == kNum ? v->num : def;
  }
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& def) const {
    const Jv* v = find(key);
    return v != nullptr && v->kind == kStr ? v->str : def;
  }
};

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            pos = std::min(pos + 4, text.size());
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse(Jv& out) {
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Jv::kObj;
      if (eat('}')) return true;
      while (true) {
        std::string key;
        Jv value;
        if (!parse_string(key) || !eat(':') || !parse(value)) return false;
        out.obj.emplace_back(std::move(key), std::move(value));
        if (eat('}')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Jv::kArr;
      if (eat(']')) return true;
      while (true) {
        Jv value;
        if (!parse(value)) return false;
        out.arr.push_back(std::move(value));
        if (eat(']')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '"') {
      out.kind = Jv::kStr;
      return parse_string(out.str);
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = Jv::kNull;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = Jv::kBool;
      out.b = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = Jv::kBool;
      pos += 5;
      return true;
    }
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    out.num = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = Jv::kNum;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

// ---- per-artifact loaders ---------------------------------------------------

bool load_metrics_csv(const std::string& path, RunHealth& h,
                      std::string* error) {
  std::ifstream is(path);
  std::string header;
  if (!std::getline(is, header)) return fail(error, path + ": empty file");
  std::vector<std::string> columns;
  {
    std::stringstream ss(header);
    std::string col;
    while (std::getline(ss, col, ',')) columns.push_back(col);
  }
  std::string line;
  std::string last;
  while (std::getline(is, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return true;  // header-only: registered but never sampled
  std::stringstream ss(last);
  std::string cell;
  std::size_t i = 0;
  while (std::getline(ss, cell, ',') && i < columns.size()) {
    if (columns[i] != "t") {
      h.counters[columns[i]] += std::strtod(cell.c_str(), nullptr);
    }
    ++i;
  }
  if (i != columns.size()) {
    return fail(error, path + ": final row has " + std::to_string(i) +
                           " cells, header has " +
                           std::to_string(columns.size()));
  }
  return true;
}

bool load_sketches_json(const std::string& path, RunHealth& h,
                        std::string* error) {
  std::string text;
  if (!read_file(path, text)) return fail(error, path + ": unreadable");
  JsonParser parser(text);
  Jv doc;
  if (!parser.parse(doc) || doc.kind != Jv::kObj) {
    return fail(error, path + ": malformed JSON");
  }
  const Jv* sketches = doc.find("sketches");
  if (sketches == nullptr || sketches->kind != Jv::kArr) {
    return fail(error, path + ": no \"sketches\" array");
  }
  for (const Jv& s : sketches->arr) {
    if (s.kind != Jv::kObj) return fail(error, path + ": non-object sketch");
    const std::string name = s.str_or("name", "");
    if (name.empty()) return fail(error, path + ": sketch without a name");
    const double alpha = s.num_or("relative_error", 0.01);
    const auto max_buckets =
        static_cast<std::size_t>(s.num_or("max_buckets", 2048));
    QuantileSketch sketch(alpha, max_buckets);
    sketch.add_zero(static_cast<std::uint64_t>(s.num_or("zero_count", 0)));
    const Jv* buckets = s.find("buckets");
    if (buckets != nullptr && buckets->kind == Jv::kArr) {
      for (const Jv& b : buckets->arr) {
        if (b.kind != Jv::kArr || b.arr.size() != 2) {
          return fail(error, path + ": malformed bucket in " + name);
        }
        sketch.add_bucket(static_cast<std::int32_t>(b.arr[0].num),
                          static_cast<std::uint64_t>(b.arr[1].num));
      }
    }
    auto [it, inserted] = h.sketches.try_emplace(name, sketch);
    if (!inserted) it->second.merge(sketch);
  }
  return true;
}

bool load_violations_jsonl(const std::string& path, RunHealth& h,
                           std::string* error) {
  std::ifstream is(path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonParser parser(line);
    Jv doc;
    if (!parser.parse(doc) || doc.kind != Jv::kObj) {
      return fail(error,
                  path + ": line " + std::to_string(lineno) + " malformed");
    }
    if (doc.find("meta") != nullptr) {
      h.checks_run += static_cast<std::uint64_t>(doc.num_or("checks_run", 0));
      h.violation_count +=
          static_cast<std::uint64_t>(doc.num_or("violations", 0));
      continue;
    }
    ReportViolation v;
    v.t = doc.num_or("t", 0.0);
    v.invariant = doc.str_or("invariant", "?");
    v.detail = doc.str_or("detail", "");
    v.task = doc.num_or("task", -1.0);
    v.seed = static_cast<std::uint64_t>(doc.num_or("seed", 0));
    h.violations.push_back(std::move(v));
  }
  return true;
}

bool load_trace_jsonl(const std::string& path, RunHealth& h,
                      std::string* error) {
  std::ifstream is(path);
  std::vector<ParsedEvent> events;
  TraceMeta meta;
  std::string why;
  if (!parse_trace_jsonl(is, events, meta, &why)) {
    return fail(error, path + ": " + why);
  }
  h.trace_meta = meta;
  if (meta.present) {
    h.trace_overwritten += meta.overwritten;
    h.trace_dropped_fields += meta.dropped_fields;
    if (!meta.complete()) ++h.traces_wrapped;
  }
  const TraceAnalysis analysis(events);
  for (const TaskBreakdown& t : analysis.tasks()) {
    ++h.tasks;
    if (t.outcome == "open") continue;
    ++h.tasks_closed;
    h.task_e2e_s += t.end_to_end();
    h.task_queue_s += t.queueing;
    h.task_network_s += t.network;
    h.task_compute_s += t.compute;
    h.task_recovery_s += t.recovery;
    h.task_other_s += t.other;
    h.task_storm_s += t.storm;
    h.task_e2e_tail.add(t.end_to_end());
  }
  for (const StorageOpBreakdown& op : analysis.storage_ops()) {
    ++h.storage_ops;
    h.storage_total_s += op.e2e();
    h.storage_storm_s += op.storm;
    if (op.in_storm) ++h.storage_in_storm;
    if (op.kind == "put") {
      h.put_tail.add(op.e2e());
      (op.in_storm ? h.put_storm_tail : h.put_clear_tail).add(op.e2e());
    } else if (op.kind == "get") {
      h.get_tail.add(op.e2e());
      (op.in_storm ? h.get_storm_tail : h.get_clear_tail).add(op.e2e());
    }
  }
  h.fault_windows += analysis.fault_windows().size();
  for (const FaultWindow& w : analysis.fault_windows()) {
    h.fault_window_s += w.end - w.start;
  }
  h.orphaned_spans += analysis.orphaned_spans();
  h.unmatched_ends += analysis.unmatched_ends();
  h.unknown_roots += analysis.unknown_roots();
  return true;
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

// ---- output helpers ---------------------------------------------------------

void tail_row(Table& table, const std::string& name,
              const QuantileSketch& s) {
  table.add_row({name, std::to_string(s.count()), Table::num(s.mean(), 3),
                 Table::num(s.count() ? s.percentile(50) : 0.0, 3),
                 Table::num(s.count() ? s.percentile(99) : 0.0, 3),
                 Table::num(s.count() ? s.percentile(99.9) : 0.0, 3),
                 Table::num(s.max(), 3)});
}

void tail_json(JsonWriter& w, const char* key, const QuantileSketch& s) {
  w.key(key).begin_object();
  w.key("count").value(s.count());
  w.key("mean").value(s.mean());
  w.key("p50").value(s.count() ? s.percentile(50) : 0.0);
  w.key("p99").value(s.count() ? s.percentile(99) : 0.0);
  w.key("p999").value(s.count() ? s.percentile(99.9) : 0.0);
  w.key("min").value(s.min());
  w.key("max").value(s.max());
  w.end_object();
}

}  // namespace

bool build_run_health(const std::vector<std::string>& dirs, RunHealth& out,
                      std::string* error) {
  if (dirs.empty()) return fail(error, "no directories given");
  out.dirs = dirs;
  for (const std::string& dir : dirs) {
    const std::string trace = dir + "/trace.jsonl";
    const std::string metrics = dir + "/metrics.csv";
    const std::string sketches = dir + "/sketches.json";
    const std::string violations = dir + "/violations.jsonl";
    // Optional inputs note-and-continue: an absent artifact only empties
    // its section, but the note says so explicitly — "no storage table"
    // should never make a reader wonder whether the run or the report
    // dropped it.
    if (file_exists(trace)) {
      if (!load_trace_jsonl(trace, out, error)) return false;
      out.have_trace = true;
    } else {
      out.notes.push_back(dir + ": trace.jsonl absent (skipped)");
    }
    if (file_exists(metrics)) {
      if (!load_metrics_csv(metrics, out, error)) return false;
      out.have_metrics = true;
    } else {
      out.notes.push_back(dir + ": metrics.csv absent (skipped)");
    }
    if (file_exists(sketches)) {
      if (!load_sketches_json(sketches, out, error)) return false;
      out.have_sketches = true;
    } else {
      out.notes.push_back(dir + ": sketches.json absent (skipped)");
    }
    if (file_exists(violations)) {
      if (!load_violations_jsonl(violations, out, error)) return false;
      out.have_violations = true;
    } else {
      out.notes.push_back(dir + ": violations.jsonl absent (skipped)");
    }
  }
  if (out.trace_overwritten > 0) {
    out.warnings.push_back(
        "trace ring wrapped in " + std::to_string(out.traces_wrapped) +
        " director" + (out.traces_wrapped == 1 ? "y" : "ies") + ": " +
        std::to_string(out.trace_overwritten) +
        " events overwritten — oldest history lost, span pairing and every "
        "trace-derived table below are truncated (raise TraceRecorder "
        "capacity)");
  }
  if (out.trace_dropped_fields > 0) {
    out.warnings.push_back(
        std::to_string(out.trace_dropped_fields) +
        " trace event fields dropped (beyond the per-event field cap) — "
        "recorded events are missing payload columns");
  }
  if (!out.have_trace && !out.have_metrics && !out.have_sketches &&
      !out.have_violations) {
    return fail(error, "no telemetry artifacts found under the given "
                       "directories (expected trace.jsonl / metrics.csv / "
                       "sketches.json / violations.jsonl)");
  }
  return true;
}

void write_health_text(std::ostream& os, const RunHealth& h) {
  os << "vcl_report: run health over " << h.dirs.size() << " director"
     << (h.dirs.size() == 1 ? "y" : "ies") << "\n";
  os << "artifacts: trace " << (h.have_trace ? "yes" : "no") << ", metrics "
     << (h.have_metrics ? "yes" : "no") << ", sketches "
     << (h.have_sketches ? "yes" : "no") << ", violations "
     << (h.have_violations ? "yes" : "no") << "\n";
  for (const std::string& note : h.notes) os << "note: " << note << "\n";
  os << "\n";
  for (const std::string& warning : h.warnings) {
    os << "WARNING: " << warning << "\n";
  }
  if (!h.warnings.empty()) os << "\n";

  // Verdict first: the line a CI log reader needs.
  if (h.have_violations) {
    os << (h.violation_count == 0
               ? "oracle: CLEAN"
               : "oracle: " + std::to_string(h.violation_count) +
                     " VIOLATION(S)")
       << " (" << h.checks_run << " checks run)\n\n";
  }

  if (h.have_sketches && !h.sketches.empty()) {
    Table table("tail latency (merged sketches, seconds)",
                {"metric", "count", "mean", "p50", "p99", "p999", "max"});
    for (const auto& [name, sketch] : h.sketches) {
      tail_row(table, name, sketch);
    }
    table.print(os);
    os << "\n";
  }

  if (h.have_trace && h.tasks_closed > 0) {
    const double n = static_cast<double>(h.tasks_closed);
    os << "tasks: " << h.tasks << " traced, " << h.tasks_closed
       << " finished; mean seconds/task:\n"
       << "  e2e " << Table::num(h.task_e2e_s / n, 3) << " = queue "
       << Table::num(h.task_queue_s / n, 3) << " + network "
       << Table::num(h.task_network_s / n, 3) << " + compute "
       << Table::num(h.task_compute_s / n, 3) << " + recovery "
       << Table::num(h.task_recovery_s / n, 3) << " + other "
       << Table::num(h.task_other_s / n, 3) << "\n"
       << "  in-storm " << Table::num(h.task_storm_s / n, 3)
       << " + clear-sky "
       << Table::num((h.task_e2e_s - h.task_storm_s) / n, 3) << "\n\n";
  }

  if (h.have_trace && h.storage_ops > 0) {
    Table table("storage op latency, storm-attributed (seconds)",
                {"ops", "count", "mean", "p50", "p99", "p999", "max"});
    tail_row(table, "put (all)", h.put_tail);
    tail_row(table, "put (in-storm)", h.put_storm_tail);
    tail_row(table, "put (clear)", h.put_clear_tail);
    tail_row(table, "get (all)", h.get_tail);
    tail_row(table, "get (in-storm)", h.get_storm_tail);
    tail_row(table, "get (clear)", h.get_clear_tail);
    table.print(os);
    os << h.storage_ops << " storage ops, " << h.storage_in_storm
       << " in-storm; " << h.fault_windows << " fault windows covering "
       << Table::num(h.fault_window_s, 1) << " s\n\n";
  }

  if (h.have_metrics && !h.counters.empty()) {
    Table table("final counters (summed across directories)",
                {"metric", "value"});
    for (const auto& [name, value] : h.counters) {
      table.add_row({name, Table::num(value, 3)});
    }
    table.print(os);
    os << "\n";
  }

  if (!h.violations.empty()) {
    os << "violation records (" << h.violations.size() << " stored of "
       << h.violation_count << " total):\n";
    for (const ReportViolation& v : h.violations) {
      os << "  t=" << Table::num(v.t, 2) << " [" << v.invariant << "] "
         << v.detail << "\n";
    }
    os << "\n";
  }

  os << "diagnostics: " << h.orphaned_spans << " orphaned spans, "
     << h.unmatched_ends << " unmatched ends, " << h.unknown_roots
     << " unknown roots";
  if (h.trace_meta.present) {
    os << "; ring "
       << (h.traces_wrapped == 0
               ? "complete"
               : "WRAPPED (" + std::to_string(h.trace_overwritten) +
                     " events overwritten)");
    if (h.trace_dropped_fields > 0) {
      os << ", " << h.trace_dropped_fields << " fields dropped";
    }
  }
  os << "\n";
}

void write_health_json(std::ostream& os, const RunHealth& h) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-report-v1");
  w.key("dirs").begin_array();
  for (const std::string& dir : h.dirs) w.value(dir);
  w.end_array();
  w.key("artifacts").begin_object();
  w.key("trace").value(h.have_trace);
  w.key("metrics").value(h.have_metrics);
  w.key("sketches").value(h.have_sketches);
  w.key("violations").value(h.have_violations);
  w.end_object();
  w.key("notes").begin_array();
  for (const std::string& note : h.notes) w.value(note);
  w.end_array();
  w.key("warnings").begin_array();
  for (const std::string& warning : h.warnings) w.value(warning);
  w.end_array();

  w.key("tails").begin_object();
  for (const auto& [name, sketch] : h.sketches) {
    tail_json(w, name.c_str(), sketch);
  }
  w.end_object();

  w.key("tasks").begin_object();
  w.key("traced").value(static_cast<std::uint64_t>(h.tasks));
  w.key("finished").value(static_cast<std::uint64_t>(h.tasks_closed));
  w.key("e2e_s").value(h.task_e2e_s);
  w.key("queue_s").value(h.task_queue_s);
  w.key("network_s").value(h.task_network_s);
  w.key("compute_s").value(h.task_compute_s);
  w.key("recovery_s").value(h.task_recovery_s);
  w.key("other_s").value(h.task_other_s);
  w.key("storm_s").value(h.task_storm_s);
  w.key("clear_s").value(h.task_e2e_s - h.task_storm_s);
  tail_json(w, "e2e_tail", h.task_e2e_tail);
  w.end_object();

  w.key("storage").begin_object();
  w.key("ops").value(static_cast<std::uint64_t>(h.storage_ops));
  w.key("in_storm_ops").value(static_cast<std::uint64_t>(h.storage_in_storm));
  w.key("op_time_s").value(h.storage_total_s);
  w.key("storm_time_s").value(h.storage_storm_s);
  w.key("put").begin_object();
  tail_json(w, "all", h.put_tail);
  tail_json(w, "in_storm", h.put_storm_tail);
  tail_json(w, "clear", h.put_clear_tail);
  w.end_object();
  w.key("get").begin_object();
  tail_json(w, "all", h.get_tail);
  tail_json(w, "in_storm", h.get_storm_tail);
  tail_json(w, "clear", h.get_clear_tail);
  w.end_object();
  w.end_object();

  w.key("fault_windows").begin_object();
  w.key("count").value(static_cast<std::uint64_t>(h.fault_windows));
  w.key("seconds").value(h.fault_window_s);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : h.counters) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("oracle").begin_object();
  w.key("checks_run").value(h.checks_run);
  w.key("violations").value(h.violation_count);
  w.key("records").begin_array();
  for (const ReportViolation& v : h.violations) {
    w.begin_object();
    w.key("t").value(v.t);
    w.key("invariant").value(v.invariant);
    w.key("detail").value(v.detail);
    if (v.task >= 0) w.key("task").value(v.task);
    w.key("seed").value(v.seed);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("diagnostics").begin_object();
  w.key("orphaned_spans").value(static_cast<std::uint64_t>(h.orphaned_spans));
  w.key("unmatched_ends").value(static_cast<std::uint64_t>(h.unmatched_ends));
  w.key("unknown_roots").value(static_cast<std::uint64_t>(h.unknown_roots));
  w.key("ring_complete").value(h.have_trace && h.traces_wrapped == 0);
  w.key("trace_overwritten").value(h.trace_overwritten);
  w.key("trace_dropped_fields").value(h.trace_dropped_fields);
  w.key("traces_wrapped").value(static_cast<std::uint64_t>(h.traces_wrapped));
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
